// The fault-injection chaos sweep — the acceptance harness of the
// robustness PR.  For every injection site of the runtime, under every
// injector kind, execution tier and force size, one fault is armed in
// the middle of an acceptance-corpus program and the run must end,
// within a hard deadline, in exactly one of two states:
//
//   - correct output (the injection did not fire, or was a pure delay);
//   - a clean abort carrying the injected failure (a Panic injection) or
//     the external deadline (a Stall injection ended by cancellation).
//
// Never a hang, never a silently wrong answer.  The injection plan is
// process-global, so these tests are strictly sequential.
package repro_test

import (
	"context"
	"errors"
	"fmt"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/forcelang"
	"repro/internal/interp"
)

// chaosProgram maps each in-process injection site to the corpus
// program that actually exercises it.  (The aot.* sites run in the
// driver process; they are covered by TestChaosThroughForcerun.)
var chaosProgram = map[string]string{
	faultinject.BarrierEnter:   "shared-scalar-traffic",
	faultinject.BarrierSection: "shared-scalar-traffic",
	faultinject.BarrierExit:    "shared-scalar-traffic",
	faultinject.ReduceContrib:  "reductions",
	faultinject.ReduceCombine:  "reductions",
	faultinject.ReduceRelease:  "reductions",
	faultinject.AsyncProduce:   "async-wave",
	faultinject.AsyncConsume:   "async-wave",
	faultinject.AsyncCopy:      "async-copy-void",
	faultinject.AskforPut:      "askfor-put",
	faultinject.AskforTake:     "askfor-put",
	faultinject.EnginePark:     "askfor-put",
	faultinject.EngineSteal:    "askfor-put",
	faultinject.EngineHand:     "askfor-put",
}

func equivProgram(t *testing.T, name string) corpus.Program {
	t.Helper()
	for _, p := range corpus.Equiv {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("corpus program %q not found", name)
	return corpus.Program{}
}

// chaosNPs is the force-size sweep: {1, 2, 8} per the acceptance
// criterion, subsampled to {2} under -short.  async-copy-void is the
// one corpus program written for exactly one process.
func chaosNPs(progName string) []int {
	if progName == "async-copy-void" {
		return []int{1}
	}
	if testing.Short() {
		return []int{2}
	}
	return []int{1, 2, 8}
}

func chaosModes() []interp.ExecMode {
	if testing.Short() {
		return []interp.ExecMode{interp.ExecTree, interp.ExecChunked}
	}
	return interp.ExecModes()
}

func sortedLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// runInterp runs prog at np under mode with ctx bounding the run and a
// hard harness deadline catching any non-poison-responsive hang.
func runInterp(t *testing.T, ctx context.Context, prog *forcelang.Program, np int, mode interp.ExecMode) (string, error) {
	t.Helper()
	var sb strings.Builder
	errc := make(chan error, 1)
	go func() {
		errc <- interp.Run(prog, interp.Config{NP: np, Stdout: &sb, Exec: mode, Context: ctx})
	}()
	select {
	case err := <-errc:
		return sb.String(), err
	case <-time.After(60 * time.Second):
		t.Fatalf("np=%d %s: run did not return — the force is hung", np, mode)
		return "", nil
	}
}

// TestChaosSweep is the sweep itself: site × injector × tier × np.
func TestChaosSweep(t *testing.T) {
	type refKey struct {
		name string
		np   int
		mode interp.ExecMode
	}
	refs := map[refKey]string{}
	reference := func(t *testing.T, name string, prog *forcelang.Program, np int, mode interp.ExecMode) string {
		k := refKey{name, np, mode}
		if out, ok := refs[k]; ok {
			return out
		}
		faultinject.Disable()
		out, err := runInterp(t, context.Background(), prog, np, mode)
		if err != nil {
			t.Fatalf("clean reference run failed: %v", err)
		}
		refs[k] = sortedLines(out)
		return refs[k]
	}

	seed := int64(0)
	for _, site := range faultinject.Sites {
		progName, ok := chaosProgram[site]
		if !ok {
			continue // driver-process site, covered through forcerun
		}
		src := equivProgram(t, progName)
		prog := forcelang.MustParse(src.Src)
		for _, kind := range faultinject.Kinds() {
			for _, mode := range chaosModes() {
				for _, np := range chaosNPs(progName) {
					seed++
					name := fmt.Sprintf("%s/%s/%s/np%d", site, kind, mode, np)
					t.Run(name, func(t *testing.T) {
						want := reference(t, progName, prog, np, mode)

						plan := faultinject.NewPlan(seed).
							Add(faultinject.Injection{Site: site, Kind: kind, After: -1, Pid: -1})
						faultinject.Enable(plan)
						defer faultinject.Disable()

						// A Stall can only end by external cancellation, so
						// those runs carry a tight deadline; Panic and Delay
						// runs get hang-catching headroom only.
						limit := 10 * time.Second
						if kind == faultinject.Stall {
							limit = 500 * time.Millisecond
						}
						ctx, cancel := context.WithTimeout(context.Background(), limit)
						defer cancel()
						out, err := runInterp(t, ctx, prog, np, mode)

						fired := plan.Fired(site)
						if err == nil {
							if got := sortedLines(out); got != want {
								t.Fatalf("fired=%v: wrong output\ngot:\n%s\nwant:\n%s", fired, got, want)
							}
							if fired && kind != faultinject.Delay {
								t.Fatalf("%s injection fired yet the run reported success", kind)
							}
							return
						}
						switch kind {
						case faultinject.Delay:
							t.Fatalf("delay injection broke the run: %v", err)
						case faultinject.Panic:
							if !fired || !strings.Contains(err.Error(), "fault injected at "+site) {
								t.Fatalf("fired=%v: abort does not carry the injected failure: %v", fired, err)
							}
						case faultinject.Stall:
							if !fired || !errors.Is(err, context.DeadlineExceeded) {
								t.Fatalf("fired=%v: stalled run ended with %v, want the deadline", fired, err)
							}
						}
					})
				}
			}
		}
	}
}

// buildTool compiles one cmd/ binary for integration subtests.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// TestChaosThroughForcerun covers the FORCE_FAULTS arming path and the
// driver-process aot.* sites end to end through the CLI.
func TestChaosThroughForcerun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs forcerun with the go toolchain")
	}
	bin := buildForcerun(t)
	prog := writeProgram(t, equivProgram(t, "shared-scalar-traffic").Src)

	t.Run("interp-panic", func(t *testing.T) {
		out, code := runForcerunEnv(t, 30*time.Second,
			[]string{"FORCE_FAULTS=barrier.enter=panic/after=0"}, bin, "-np", "4", prog)
		if code != 1 || !strings.Contains(out, "fault injected at barrier.enter") {
			t.Errorf("exit=%d output:\n%s", code, out)
		}
	})

	t.Run("malformed-spec", func(t *testing.T) {
		out, code := runForcerunEnv(t, 30*time.Second,
			[]string{"FORCE_FAULTS=bogus=panic"}, bin, "-np", "4", prog)
		if code != 2 || !strings.Contains(out, "unknown site") {
			t.Errorf("exit=%d output:\n%s", code, out)
		}
	})

	t.Run("stall-ended-by-timeout", func(t *testing.T) {
		out, code := runForcerunEnv(t, 60*time.Second,
			[]string{"FORCE_FAULTS=barrier.enter=stall/after=0"}, bin,
			"-np", "4", "-timeout", "500ms", prog)
		if code != 1 || !strings.Contains(out, "wall-clock deadline exceeded after 500ms") {
			t.Errorf("exit=%d output:\n%s", code, out)
		}
	})

	cacheDir := t.TempDir()
	t.Run("aot-build-panic", func(t *testing.T) {
		// A fault in the cold build path exercises the tier's graceful
		// degradation: forcerun falls back to the interpreter and the run
		// still produces correct output — the chaos contract's "correct
		// output" arm, not its abort arm.
		out, code := runForcerunEnv(t, 3*time.Minute,
			[]string{"FORCE_FAULTS=aot.build=panic/after=0", "FORCE_CACHE=" + cacheDir}, bin,
			"-np", "4", "-exec", "aot", prog)
		if code != 0 || !strings.Contains(out, "20100") {
			t.Errorf("exit=%d output:\n%s", code, out)
		}
	})

	t.Run("aot-exec-panic", func(t *testing.T) {
		// The build site is unarmed now, so a cold build succeeds and the
		// exec site fires in the driver just before running the binary.
		out, code := runForcerunEnv(t, 3*time.Minute,
			[]string{"FORCE_FAULTS=aot.exec=panic/after=0", "FORCE_CACHE=" + cacheDir}, bin,
			"-np", "4", "-exec", "aot", prog)
		if code != 1 || !strings.Contains(out, "fault injected at aot.exec") {
			t.Errorf("exit=%d output:\n%s", code, out)
		}
	})
}

// TestWallClockTimeout is the -timeout satellite: a stalled program is
// bounded by the wall-clock deadline under all four execution tiers,
// and -timeout composes with -hang-timeout (whichever fires first).
func TestWallClockTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs forcerun with the go toolchain")
	}
	bin := buildForcerun(t)
	prog := writeProgram(t, stallSrc)

	for _, execMode := range []string{"tree", "compiled", "chunked"} {
		t.Run(execMode, func(t *testing.T) {
			out, code := runForcerun(t, 60*time.Second, bin,
				"-np", "4", "-exec", execMode, "-timeout", "1s", prog)
			if code != 1 || !strings.Contains(out, "wall-clock deadline exceeded after 1s") {
				t.Errorf("exit=%d output:\n%s", code, out)
			}
		})
	}

	t.Run("aot", func(t *testing.T) {
		// Pre-warm the cache through forcec -cache (building under the
		// wall clock would eat the deadline), then the native run itself
		// is killed at the deadline: process group down, orphan reaped,
		// deadline reported.
		cacheDir := t.TempDir()
		forcec := buildTool(t, "./cmd/forcec")
		out, code := runForcerunEnv(t, 3*time.Minute, []string{"FORCE_CACHE=" + cacheDir},
			forcec, "-cache", prog)
		if code != 0 {
			t.Fatalf("forcec -cache exit=%d:\n%s", code, out)
		}
		start := time.Now()
		out, code = runForcerunEnv(t, 60*time.Second, []string{"FORCE_CACHE=" + cacheDir}, bin,
			"-np", "4", "-exec", "aot", "-timeout", "2s", prog)
		if code != 1 || !strings.Contains(out, "wall-clock deadline exceeded after 2s") {
			t.Errorf("exit=%d output:\n%s", code, out)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Errorf("killed native run returned after %v, want prompt group kill", elapsed)
		}
	})

	t.Run("composes-with-hang-timeout", func(t *testing.T) {
		// Stall watchdog first: it wins and reports the blocked site.
		out, code := runForcerun(t, 60*time.Second, bin,
			"-np", "4", "-hang-timeout", "1s", "-timeout", "30s", prog)
		if code != 1 || !strings.Contains(out, "force stalled") || !strings.Contains(out, "appears stalled") {
			t.Errorf("watchdog-first: exit=%d output:\n%s", code, out)
		}
		// Wall clock first: the deadline wins, no stall report.
		out, code = runForcerun(t, 60*time.Second, bin,
			"-np", "4", "-hang-timeout", "30s", "-timeout", "500ms", prog)
		if code != 1 || !strings.Contains(out, "wall-clock deadline exceeded") {
			t.Errorf("deadline-first: exit=%d output:\n%s", code, out)
		}
		if strings.Contains(out, "appears stalled") {
			t.Errorf("deadline-first: spurious stall report:\n%s", out)
		}
	})
}
