package engine

import "sync/atomic"

// Deque is a Chase-Lev work-stealing deque.  One goroutine — the owner —
// calls Push and Pop, which operate LIFO on the bottom end and are
// lock-free (a single CAS only when competing for the last element).
// Any number of thieves call Steal, which takes from the top end FIFO
// through a CAS race.  Steal may fail spuriously when it loses that race;
// callers treat a failed steal as "try another victim", never as "the
// deque is empty forever".
//
// The implementation follows Chase & Lev, "Dynamic Circular Work-Stealing
// Deque" (SPAA 2005), with the simplifications a garbage-collected
// runtime affords: the circular array grows by copying into a fresh ring
// (thieves still reading the old ring stay correct because claimed slots
// are never rewritten there), and elements are boxed so every slot access
// is a pointer atomic the race detector understands.
type Deque[T any] struct {
	top    atomic.Int64 // next index to steal (only ever increases)
	bottom atomic.Int64 // next index to push (owner-written)
	ring   atomic.Pointer[ring[T]]
}

// ring is one power-of-two circular array generation.
type ring[T any] struct {
	mask int64
	slot []atomic.Pointer[T]
}

func newRing[T any](capacity int) *ring[T] {
	return &ring[T]{mask: int64(capacity) - 1, slot: make([]atomic.Pointer[T], capacity)}
}

func (r *ring[T]) at(i int64) *atomic.Pointer[T] { return &r.slot[i&r.mask] }

// grow copies the live window [top, bottom) into a ring twice the size.
func (r *ring[T]) grow(top, bottom int64) *ring[T] {
	nr := newRing[T](2 * len(r.slot))
	for i := top; i < bottom; i++ {
		nr.at(i).Store(r.at(i).Load())
	}
	return nr
}

// NewDeque creates an empty deque with at least the given initial
// capacity (rounded up to a power of two, minimum 8).  The deque grows
// without bound as needed.
func NewDeque[T any](capacity int) *Deque[T] {
	c := 8
	for c < capacity {
		c *= 2
	}
	d := &Deque[T]{}
	d.ring.Store(newRing[T](c))
	return d
}

// Size reports the number of queued elements.  It is exact for the owner
// between its own operations and a momentary snapshot for everyone else.
func (d *Deque[T]) Size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Push appends v at the bottom, boxing it.  Owner only.
func (d *Deque[T]) Push(v T) {
	p := new(T)
	*p = v
	d.PushRef(p)
}

// PushRef appends an already-boxed element at the bottom.  Owner only.
// Callers that recycle boxes (the stealing pool's free lists) use the
// Ref forms to avoid an allocation per element; the box must not be
// written again until it comes back out of the deque.
func (d *Deque[T]) PushRef(p *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t >= int64(len(r.slot)) {
		r = r.grow(t, b)
		d.ring.Store(r)
	}
	r.at(b).Store(p)
	d.bottom.Store(b + 1)
}

// Pop removes and returns the most recently pushed element.  Owner only.
func (d *Deque[T]) Pop() (T, bool) {
	var zero T
	p, ok := d.PopRef()
	if !ok {
		return zero, false
	}
	return *p, true
}

// PopRef is Pop returning the box.  Owner only.
func (d *Deque[T]) PopRef() (*T, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Already empty; restore the canonical empty state.
		d.bottom.Store(t)
		return nil, false
	}
	r := d.ring.Load()
	p := r.at(b).Load()
	if t == b {
		// Last element: race thieves for it through top.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		if !won {
			return nil, false
		}
	}
	return p, true
}

// Steal removes and returns the oldest element.  Any goroutine.  A false
// return means the deque looked empty or the thief lost a race, not that
// it will stay empty.
func (d *Deque[T]) Steal() (T, bool) {
	var zero T
	p, ok := d.StealRef()
	if !ok {
		return zero, false
	}
	return *p, true
}

// StealRef is Steal returning the box.  Any goroutine.
func (d *Deque[T]) StealRef() (*T, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	r := d.ring.Load()
	p := r.at(t).Load()
	if p == nil || !d.top.CompareAndSwap(t, t+1) {
		return nil, false
	}
	return p, true
}
