// Package engine is the work-distribution substrate of the Force runtime:
// a persistent force of worker goroutines, Chase-Lev work-stealing
// deques, and the WorkSource abstraction that lets one distribution layer
// serve all three of the paper's generic constructs (DOALL, Pcase,
// Askfor).
//
// The paper's execution model creates the force once — "the number of
// processes is fixed only when the force is created" — and then reuses it
// for the whole program.  Engine realizes that literally: New starts NP
// long-lived workers (each paying the machine's process-creation cost
// exactly once), and every Run dispatches a program to the same workers,
// so repeated Runs cost a handoff, not a re-spawn.  The package sits at
// the bottom of the runtime stack; internal/sched builds its Stealing
// discipline on the deques and internal/core builds Force/Proc on the
// workers and pools.
package engine

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/poison"
)

// Engine is a persistent force of NP worker goroutines.  Workers are
// started by New and survive across Run invocations until Close (or until
// the Engine is garbage collected, which closes it via a finalizer).
// Run must not be called concurrently with itself or with Close.
type Engine struct {
	np int
	sh *workerShared
	// jb is the engine's reusable job descriptor: Run is never
	// concurrent with itself (documented above), so every dispatch can
	// reuse one job instead of allocating — part of the runtime's
	// zero-allocation steady state.  Cleared after each dispatch so a
	// finished Run's body closure is not pinned until the next one.
	jb job
}

// workerShared is the state workers reference.  It deliberately does not
// point back at the Engine, so an abandoned Engine becomes unreachable,
// its finalizer runs, and the workers exit instead of leaking.
type workerShared struct {
	jobs []chan *job
	quit chan struct{}
	stop sync.Once
}

// job is one Run dispatched to every worker.
type job struct {
	body   func(pid int)
	cell   *poison.Cell // nil on plain Run
	wg     sync.WaitGroup
	mu     sync.Mutex
	panics []any
}

// run executes the job body in one worker.  Its deferred recover is the
// engine's fault boundary: a poison.Abort means this process was merely
// unwinding after a *peer's* failure poisoned the force, so it is
// discarded (the original failure is in the cell); any other panic IS
// the failure — it is recorded in the cell, which poisons the force and
// wakes every blocked peer.  Either way the worker survives to serve
// the next Run.
func (j *job) run(pid int) {
	defer j.wg.Done()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if j.cell != nil {
			if _, ok := r.(poison.Abort); ok {
				// A peer failed first; this process only unwound.
				return
			}
			// First failure wins; later ones lose the race and are
			// dropped, matching the old first-panic reporting.
			j.cell.Poison(r)
			return
		}
		// Plain Run has no cell: collect every panic (Abort included —
		// swallowing it here would turn an externally poisoned body
		// into a silent success).
		j.mu.Lock()
		j.panics = append(j.panics, r)
		j.mu.Unlock()
	}()
	j.body(pid)
}

// Option configures an Engine.
type Option func(*config)

type config struct {
	start func(pid int)
}

// WithWorkerStart installs a hook each worker runs once at startup,
// before New returns — the place the machine profile's process-creation
// cost is paid.
func WithWorkerStart(fn func(pid int)) Option {
	return func(c *config) { c.start = fn }
}

// New starts np persistent workers and returns when all are running
// (start hooks, if any, have completed).
func New(np int, opts ...Option) *Engine {
	if np <= 0 {
		panic(fmt.Sprintf("engine: np = %d, need np >= 1", np))
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	sh := &workerShared{jobs: make([]chan *job, np), quit: make(chan struct{})}
	var ready sync.WaitGroup
	for id := 0; id < np; id++ {
		sh.jobs[id] = make(chan *job, 1)
		ready.Add(1)
		go worker(id, sh.jobs[id], sh.quit, cfg.start, &ready)
	}
	ready.Wait()
	e := &Engine{np: np, sh: sh}
	runtime.SetFinalizer(e, (*Engine).Close)
	return e
}

func worker(id int, jobs <-chan *job, quit <-chan struct{}, start func(pid int), ready *sync.WaitGroup) {
	if start != nil {
		start(id)
		start = nil // drop the hook so it cannot pin its captures for the worker's lifetime
	}
	ready.Done()
	for {
		select {
		case j := <-jobs:
			j.run(id)
		case <-quit:
			return
		}
	}
}

// NP returns the number of workers.
func (e *Engine) NP() int { return e.np }

// Run executes body in every worker, as process ids 0..NP-1, and returns
// when all have finished.  If any worker's body panics, Run re-panics
// with the first recorded panic value after all workers have stopped —
// the same whole-force failure semantics the spawn-per-run driver had.
func (e *Engine) Run(body func(pid int)) {
	e.jb.body, e.jb.cell = body, nil
	e.dispatch(&e.jb)
}

// RunCell is Run under the fault-containment protocol: the first
// worker panic poisons the cell (waking peers blocked in poison-aware
// primitives) instead of merely being collected, and poison.Abort
// unwinds from those peers are recovered and discarded at the job
// boundary.  RunCell itself returns normally; the caller owns the cell
// and decides how to surface cell.Value().
func (e *Engine) RunCell(cell *poison.Cell, body func(pid int)) {
	e.jb.body, e.jb.cell = body, cell
	e.dispatch(&e.jb)
}

func (e *Engine) dispatch(j *job) {
	select {
	case <-e.sh.quit:
		panic("engine: Run on a closed Engine")
	default:
	}
	j.wg.Add(e.np)
	for _, ch := range e.sh.jobs {
		ch <- j
	}
	j.wg.Wait()
	var first any
	if len(j.panics) > 0 {
		first = j.panics[0]
	}
	j.body, j.cell = nil, nil
	clear(j.panics)
	j.panics = j.panics[:0]
	if first != nil {
		panic(first)
	}
}

// Close stops the workers.  Idempotent; safe on an Engine that is also
// subject to finalization.
func (e *Engine) Close() {
	e.sh.stop.Do(func() { close(e.sh.quit) })
}
