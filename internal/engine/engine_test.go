package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestRunAllWorkers(t *testing.T) {
	const np = 8
	e := New(np)
	defer e.Close()
	if e.NP() != np {
		t.Fatalf("NP() = %d", e.NP())
	}
	var seen sync.Map
	var count atomic.Int64
	e.Run(func(pid int) {
		count.Add(1)
		if _, dup := seen.LoadOrStore(pid, true); dup {
			t.Errorf("duplicate pid %d", pid)
		}
	})
	if count.Load() != np {
		t.Errorf("ran %d workers, want %d", count.Load(), np)
	}
}

// TestRunReuse is the persistent-force property: many Runs on one engine
// all execute on the same NP workers.
func TestRunReuse(t *testing.T) {
	const np, runs = 4, 50
	e := New(np)
	defer e.Close()
	var total atomic.Int64
	for r := 0; r < runs; r++ {
		e.Run(func(pid int) { total.Add(1) })
	}
	if got := total.Load(); got != np*runs {
		t.Errorf("total = %d, want %d", got, np*runs)
	}
}

func TestWorkerStartRunsOncePerWorker(t *testing.T) {
	var starts atomic.Int64
	e := New(5, WithWorkerStart(func(pid int) { starts.Add(1) }))
	defer e.Close()
	if starts.Load() != 5 {
		t.Fatalf("start hook ran %d times before New returned, want 5", starts.Load())
	}
	e.Run(func(pid int) {})
	e.Run(func(pid int) {})
	if starts.Load() != 5 {
		t.Errorf("start hook re-ran on Run: %d", starts.Load())
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	e := New(3)
	defer e.Close()
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Errorf("recovered %v, want boom", r)
			}
		}()
		e.Run(func(pid int) { panic("boom") })
	}()
	// The workers must survive a panicking job.
	var ok atomic.Bool
	e.Run(func(pid int) { ok.Store(true) })
	if !ok.Load() {
		t.Error("engine dead after panic")
	}
}

func TestCloseIdempotentAndRunPanics(t *testing.T) {
	e := New(2)
	e.Close()
	e.Close()
	defer func() {
		if recover() == nil {
			t.Error("Run on closed engine did not panic")
		}
	}()
	e.Run(func(pid int) {})
}

func TestDequeLIFOAndFIFO(t *testing.T) {
	d := NewDeque[int](2)
	for i := 0; i < 10; i++ {
		d.Push(i)
	}
	if d.Size() != 10 {
		t.Fatalf("Size = %d", d.Size())
	}
	if v, ok := d.Pop(); !ok || v != 9 {
		t.Errorf("Pop = %d,%v, want 9 (LIFO)", v, ok)
	}
	if v, ok := d.Steal(); !ok || v != 0 {
		t.Errorf("Steal = %d,%v, want 0 (FIFO)", v, ok)
	}
	seen := map[int]bool{}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("drained %d elements, want 8", len(seen))
	}
	if _, ok := d.Steal(); ok {
		t.Error("Steal from empty deque succeeded")
	}
}

// TestDequeConcurrentExactlyOnce hammers one owner against several
// thieves and checks every pushed element is consumed exactly once.
func TestDequeConcurrentExactlyOnce(t *testing.T) {
	const items, thieves = 20000, 4
	d := NewDeque[int](8)
	var got [items]atomic.Int32
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					got[v].Add(1)
					continue
				}
				select {
				case <-stop:
					// Final sweep after the owner stopped.
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						got[v].Add(1)
					}
				default:
				}
			}
		}()
	}
	for i := 0; i < items; i++ {
		d.Push(i)
		if i%3 == 0 {
			if v, ok := d.Pop(); ok {
				got[v].Add(1)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		got[v].Add(1)
	}
	close(stop)
	wg.Wait()
	for i := range got {
		if n := got[i].Load(); n != 1 {
			t.Fatalf("element %d consumed %d times", i, n)
		}
	}
}

// drain runs np goroutines against a pool the way core.Askfor does and
// returns the number of executed tasks.
func drain(np int, p Pool, body func(task any, put func(pid int, t any), pid int)) int64 {
	var ran atomic.Int64
	var wg sync.WaitGroup
	for pid := 0; pid < np; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for {
				task, ok := p.Next(pid)
				if !ok {
					return
				}
				ran.Add(1)
				body(task, p.Put, pid)
				p.Done(pid)
			}
		}(pid)
	}
	wg.Wait()
	return ran.Load()
}

// TestPoolUnbalancedTreeTerminates is the put-heavy termination check for
// both pool disciplines: an unbalanced (left-deep) tree expansion whose
// node count is known in advance must execute every node exactly once and
// terminate, under the race detector, for every NP.
func TestPoolUnbalancedTreeTerminates(t *testing.T) {
	// Left-deep tree: a node (d, heavy=true) spawns a heavy child and
	// width light leaves; total nodes = depth*(width+1) + 1.
	const depth, width = 200, 8
	want := int64(depth*(width+1) + 1)
	for _, kind := range PoolKinds() {
		for _, np := range []int{1, 2, 4, 8} {
			p := NewPool(kind, np, []any{depth}, nil)
			ran := drain(np, p, func(task any, put func(pid int, t any), pid int) {
				d := task.(int)
				if d > 0 {
					put(pid, d-1) // the heavy spine
					for w := 0; w < width; w++ {
						put(pid, 0) // light leaves
					}
				}
			})
			if ran != want {
				t.Errorf("%s np=%d: ran %d tasks, want %d", kind, np, ran, want)
			}
		}
	}
}

// TestPoolPutThenBlockStaysLive: a body that puts a task and then blocks
// until that task has executed must not deadlock — the freshly put task
// (which lands in the putter's hand slot) has to be stealable by the
// other processes.  Regression test for the hand slot withholding work.
func TestPoolPutThenBlockStaysLive(t *testing.T) {
	for _, kind := range PoolKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const np = 2
			p := NewPool(kind, np, []any{"parent"}, nil)
			childDone := make(chan struct{})
			done := make(chan struct{})
			go func() {
				drain(np, p, func(task any, put func(pid int, t any), pid int) {
					switch task.(string) {
					case "parent":
						put(pid, "child")
						<-childDone // block until the child has run
					case "child":
						close(childDone)
					}
				})
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("pool deadlocked: put task was withheld from the force")
			}
		})
	}
}

func TestPoolEmptySeed(t *testing.T) {
	for _, kind := range PoolKinds() {
		p := NewPool(kind, 3, nil, nil)
		if ran := drain(3, p, func(any, func(int, any), int) {}); ran != 0 {
			t.Errorf("%s: empty pool ran %d tasks", kind, ran)
		}
	}
}

func TestPoolSeedDistribution(t *testing.T) {
	for _, kind := range PoolKinds() {
		const np, tasks = 4, 100
		seed := make([]any, tasks)
		sum := 0
		for i := range seed {
			seed[i] = i
			sum += i
		}
		p := NewPool(kind, np, seed, nil)
		var got atomic.Int64
		ran := drain(np, p, func(task any, _ func(int, any), _ int) {
			got.Add(int64(task.(int)))
		})
		if ran != tasks || got.Load() != int64(sum) {
			t.Errorf("%s: ran %d sum %d, want %d sum %d", kind, ran, got.Load(), tasks, sum)
		}
	}
}

func TestSpanSourceCoversSpace(t *testing.T) {
	for _, np := range []int{1, 3, 8, 150} {
		for _, n := range []int{0, 1, 7, 1000} {
			src := NewSpanSource(np, n, 0)
			var mu sync.Mutex
			hits := make([]int, n)
			var wg sync.WaitGroup
			for pid := 0; pid < np; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					for {
						sp, ok := src.NextSpan(pid)
						if !ok {
							return
						}
						mu.Lock()
						for i := sp.Lo; i < sp.Hi; i++ {
							hits[i]++
						}
						mu.Unlock()
					}
				}(pid)
			}
			wg.Wait()
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("np=%d n=%d: ordinal %d executed %d times", np, n, i, h)
				}
			}
		}
	}
}

func TestSpanSourceAsWorkSource(t *testing.T) {
	var src WorkSource = NewSpanSource(2, 10, 3)
	total := 0
	for {
		task, ok := src.Next(0)
		if !ok {
			break
		}
		sp := task.(Span)
		if sp.Hi-sp.Lo > 3 {
			t.Errorf("span %v exceeds grain 3", sp)
		}
		total += sp.Hi - sp.Lo
	}
	// Process 1's seeded block is stolen once 0 runs dry.
	if total != 10 {
		t.Errorf("drained %d ordinals through one process, want 10", total)
	}
}
