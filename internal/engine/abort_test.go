package engine

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/poison"
)

var errFail = errors.New("worker failed")

// TestRunCellPoisonsOnFirstPanic: the job boundary records the first
// failure in the cell, discards Abort unwinds from peers, and RunCell
// returns normally (the caller owns the cell).
func TestRunCellPoisonsOnFirstPanic(t *testing.T) {
	e := New(4)
	defer e.Close()
	c := poison.NewCell()
	e.RunCell(c, func(pid int) {
		if pid == 2 {
			panic(errFail)
		}
		// Peers block on the cell and unwind with Abort, which the job
		// boundary must swallow.
		poison.Wait(c, func() bool { return false })
	})
	if !c.Poisoned() || c.Value() != any(errFail) {
		t.Fatalf("cell holds %v, want %v", c.Value(), errFail)
	}
	// The workers survived: the engine serves the next run after Reset.
	c.Reset()
	var ran atomic.Int32
	e.RunCell(c, func(pid int) { ran.Add(1) })
	if ran.Load() != 4 {
		t.Fatalf("after aborted run, next run reached %d workers, want 4", ran.Load())
	}
}

// TestRunCellFirstFailureWins: concurrent failures record exactly one
// value and no worker dies.
func TestRunCellFirstFailureWins(t *testing.T) {
	e := New(8)
	defer e.Close()
	c := poison.NewCell()
	e.RunCell(c, func(pid int) { panic(pid) })
	if !c.Poisoned() {
		t.Fatal("cell not poisoned")
	}
	if _, ok := c.Value().(int); !ok {
		t.Fatalf("cell holds %T, want a pid", c.Value())
	}
}

// TestPoolPoisonWakesParkedWorkers: workers parked in Next (no tasks,
// outstanding work never finishing) unwind when the cell is poisoned —
// both pool disciplines.
func TestPoolPoisonWakesParkedWorkers(t *testing.T) {
	for _, kind := range PoolKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			c := poison.NewCell()
			p := NewPool(kind, 3, []any{1}, c)
			defer p.Close()
			// pid 0 takes the only task and never calls Done; pids 1-2
			// park in Next.
			if _, ok := p.Next(0); !ok {
				t.Fatal("seed task missing")
			}
			unwound := make(chan any, 2)
			for pid := 1; pid <= 2; pid++ {
				go func(pid int) {
					defer func() { unwound <- recover() }()
					p.Next(pid)
				}(pid)
			}
			time.Sleep(10 * time.Millisecond)
			c.Poison(errFail)
			for i := 0; i < 2; i++ {
				select {
				case r := <-unwound:
					if _, ok := r.(poison.Abort); !ok {
						t.Fatalf("parked worker unwound with %v (%T), want poison.Abort", r, r)
					}
				case <-time.After(30 * time.Second):
					t.Fatal("parked worker did not wake on poison")
				}
			}
		})
	}
}

// TestPoolCloseCancelsSubscription: a closed pool's hook is gone, so
// poisoning after Close must not touch it (guarded indirectly: Close
// then Poison must not panic or deadlock).
func TestPoolCloseCancelsSubscription(t *testing.T) {
	for _, kind := range PoolKinds() {
		c := poison.NewCell()
		p := NewPool(kind, 2, nil, c)
		p.Close()
		c.Poison(errFail)
	}
}
