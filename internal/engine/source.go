package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/poison"
)

// WorkSource is the unified work-distribution interface: every Force
// construct that deals out work at run time — selfscheduled DOALL loops,
// selfscheduled Pcase, and the Askfor pool — draws tasks from one.  Next
// returns the next task for process pid; ok is false when pid's work is
// exhausted (for a dynamic source, when the whole pool has drained).
//
// The paper's three "generic constructs" (§3.3) differ only in where
// their tasks come from: a static index space (DOALL), a static block
// list (Pcase), or a run-time-growing pool (Askfor).  A WorkSource
// captures exactly that difference, so one distribution substrate — the
// per-process work-stealing deques of this package — can serve all three.
type WorkSource interface {
	Next(pid int) (task any, ok bool)
}

// Pool is a dynamic WorkSource: tasks may be added while the pool is
// being drained — the Askfor's "request during run time that a new
// concurrent instance of the code segment is executed".  Every task
// handed out by Next must be matched by exactly one Done call; the pool
// terminates (Next returns ok=false everywhere) when no task is queued
// and none is executing.
type Pool interface {
	WorkSource
	// Put adds a task on behalf of process pid.  It must be called by
	// the goroutine that is pid — tasks land on pid's own deque.
	Put(pid int, task any)
	// Done records that a task returned by Next finished executing.
	Done(pid int)
	// Close retires the pool: it cancels the pool's poison
	// subscription, so a pool that outlives its construct does not pin
	// the cell.  A closed pool must not be used again.
	Close()
}

// PoolKind selects a Pool implementation.
type PoolKind int

const (
	// StealingPool distributes tasks over per-process Chase-Lev deques:
	// lock-free local put/get, steal-half on miss.  The default.
	StealingPool PoolKind = iota
	// MonitorPool is the historical baseline: one central queue behind a
	// mutex and condition variable, the [LO83] askfor monitor discipline
	// (and this repository's runtime before the engine existed).
	MonitorPool
)

// String returns the pool kind's short name.
func (k PoolKind) String() string {
	switch k {
	case StealingPool:
		return "stealing"
	case MonitorPool:
		return "monitor"
	default:
		return fmt.Sprintf("engine.PoolKind(%d)", int(k))
	}
}

// GoName returns the kind's Go identifier within this package, the form
// code generators emit.
func (k PoolKind) GoName() string {
	if k == MonitorPool {
		return "MonitorPool"
	}
	return "StealingPool"
}

// PoolKinds lists the pool implementations in presentation order.
func PoolKinds() []PoolKind { return []PoolKind{MonitorPool, StealingPool} }

// ParsePoolKind converts a short name into a PoolKind.
func ParsePoolKind(s string) (PoolKind, error) {
	for _, k := range PoolKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("engine: unknown pool kind %q", s)
}

// NewPool creates a task pool for np processes, pre-loaded with the seed
// tasks.  The constructor must complete before any process uses the pool
// (the core runtime publishes it through a sync.Once).  A non-nil cell
// binds the pool to the force's fault-containment protocol: a process
// parked waiting for tasks unwinds with poison.Abort when the force is
// poisoned (a peer died mid-task, so the pool can never drain).  Call
// Close when the construct retires to release the poison subscription.
func NewPool(kind PoolKind, np int, seed []any, cell *poison.Cell) Pool {
	if np <= 0 {
		panic(fmt.Sprintf("engine: np = %d, need np >= 1", np))
	}
	switch kind {
	case StealingPool:
		p := &stealingPool{
			np:     np,
			deques: make([]*Deque[any], np),
			hands:  make([]handSlot, np),
			free:   make([]freeList, np),
			pc:     cell,
		}
		p.cond = sync.NewCond(&p.mu)
		for i := range p.deques {
			p.deques[i] = NewDeque[any](16)
		}
		for i, t := range seed {
			p.deques[i%np].Push(t)
		}
		p.outstanding.Store(int64(len(seed)))
		p.unsub = poison.SubscribeBroadcast(cell, &p.mu, p.cond)
		return p
	case MonitorPool:
		p := &monitorPool{pc: cell}
		p.cond = sync.NewCond(&p.mu)
		p.queue = append(p.queue, seed...)
		p.outstanding = len(p.queue)
		p.unsub = poison.SubscribeBroadcast(cell, &p.mu, p.cond)
		return p
	default:
		panic(fmt.Sprintf("engine: unknown pool kind %d", int(kind)))
	}
}

// stealingPool distributes tasks over per-process deques.  Termination
// uses an outstanding counter (queued + executing tasks); idle processes
// spin briefly, then park on a condition variable that Put and the final
// Done poke.
//
// Each process additionally keeps one "hand" slot (the Go scheduler's
// runnext idea): a freshly put task parks there, displacing the previous
// occupant onto the shared deque.  The putter almost always consumes its
// own newest task next (depth-first expansion), so the hand turns that
// round trip into one atomic swap — and because the hand is an atomic
// box pointer, thieves can raid it once every deque is dry, so a task is
// never withheld from the force while its putter blocks inside a body.
//
// Tasks travel in boxes (*any) that each worker recycles through a
// private free list, so steady-state Put/Next traffic allocates nothing:
// a box moves hand → deque → claimant and returns to the claimant's free
// list for its next Put.
type stealingPool struct {
	np          int
	deques      []*Deque[any]
	hands       []handSlot
	free        []freeList
	outstanding atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	sleepers atomic.Int32 // processes parked (or committing to park); mutated under mu

	pc    *poison.Cell
	unsub func()
}

// Close cancels the pool's poison subscription.
func (p *stealingPool) Close() {
	if p.unsub != nil {
		p.unsub()
		p.unsub = nil
	}
}

// handSlot holds the owner's newest task as an atomic box pointer;
// padded so neighbouring slots do not false-share a cache line.
type handSlot struct {
	p atomic.Pointer[any]
	_ [56]byte
}

// freeList is a worker-private cache of task boxes.
type freeList struct {
	boxes []*any
	_     [40]byte
}

// box wraps a task, reusing a cached box when the worker has one.
func (p *stealingPool) box(pid int, task any) *any {
	fl := &p.free[pid]
	if n := len(fl.boxes); n > 0 {
		b := fl.boxes[n-1]
		fl.boxes = fl.boxes[:n-1]
		*b = task
		return b
	}
	b := new(any)
	*b = task
	return b
}

// unbox extracts a claimed box's task and caches the box for reuse by
// this worker.  Safe because a box has exactly one claimant: deque
// claims go through the top CAS, hand claims through Swap.
func (p *stealingPool) unbox(pid int, b *any) any {
	t := *b
	*b = nil // do not pin the task value while the box idles in the cache
	fl := &p.free[pid]
	if len(fl.boxes) < 64 {
		fl.boxes = append(fl.boxes, b)
	}
	return t
}

func (p *stealingPool) Put(pid int, task any) {
	p.outstanding.Add(1)
	b := p.box(pid, task)
	if old := p.hands[pid].p.Swap(b); old != nil {
		p.deques[pid].PushRef(old)
	}
	// The swap (seq-cst RMW) precedes this load; a parker increments
	// sleepers (seq-cst) before re-checking hands and deques, so one
	// side always observes the other — the classic Dekker handshake.
	// One task wakes one worker: a woken worker that loses the ensuing
	// steal race re-parks, and the drain broadcast in Done catches
	// stragglers.
	if p.sleepers.Load() > 0 {
		p.mu.Lock()
		p.cond.Signal()
		p.mu.Unlock()
	}
}

func (p *stealingPool) Done(pid int) {
	if p.outstanding.Add(-1) == 0 {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

func (p *stealingPool) Next(pid int) (any, bool) {
	own := p.deques[pid]
	if b := p.hands[pid].p.Swap(nil); b != nil {
		return p.unbox(pid, b), true
	}
	for spin := 0; ; spin++ {
		p.pc.Check()
		if b, ok := own.PopRef(); ok {
			return p.unbox(pid, b), true
		}
		faultinject.Fire(faultinject.EngineSteal, pid, p.pc)
		for i := 1; i < p.np; i++ {
			if b, ok := p.stealHalf(own, p.deques[(pid+i)%p.np]); ok {
				return p.unbox(pid, b), true
			}
		}
		if p.outstanding.Load() == 0 {
			return nil, false
		}
		if spin < 2 {
			runtime.Gosched()
			continue
		}
		// Last resort before parking: raid the hand slots.  Raids stay
		// off the steal sweep to preserve the owners' locality; they
		// only matter when every deque is dry — either momentarily, or
		// because a putter is blocked inside its body with the
		// successor task still in its hand.
		faultinject.Fire(faultinject.EngineHand, pid, p.pc)
		for i := 1; i < p.np; i++ {
			if b := p.hands[(pid+i)%p.np].p.Swap(nil); b != nil {
				return p.unbox(pid, b), true
			}
		}
		// Park until a Put lands, the pool drains, the force is
		// poisoned, or a steal race we lost leaves visible work to
		// re-contest.  A poison wake falls through to the loop head,
		// whose Check unwinds this process.
		faultinject.Fire(faultinject.EnginePark, pid, p.pc)
		p.mu.Lock()
		p.sleepers.Add(1)
		for !p.workVisible() && p.outstanding.Load() > 0 && !p.pc.Poisoned() {
			p.cond.Wait()
		}
		p.sleepers.Add(-1)
		p.mu.Unlock()
	}
}

// stealHalf takes one task from the victim and migrates up to half of the
// victim's remaining backlog onto the thief's own deque, so a process that
// ran dry refills in one raid instead of returning per task.  Boxes move
// whole; migration allocates nothing.
func (p *stealingPool) stealHalf(own, victim *Deque[any]) (*any, bool) {
	b, ok := victim.StealRef()
	if !ok {
		return nil, false
	}
	for n := victim.Size() / 2; n > 0; n-- {
		extra, ok := victim.StealRef()
		if !ok {
			break
		}
		own.PushRef(extra)
	}
	return b, true
}

func (p *stealingPool) workVisible() bool {
	for _, d := range p.deques {
		if d.Size() > 0 {
			return true
		}
	}
	for i := range p.hands {
		if p.hands[i].p.Load() != nil {
			return true
		}
	}
	return false
}

// monitorPool is the central-queue baseline, semantically identical to the
// pre-engine askforState monitor: one mutex, one condition variable, LIFO
// dispatch.
type monitorPool struct {
	mu          sync.Mutex
	cond        *sync.Cond
	queue       []any
	outstanding int // queued + currently executing tasks

	pc    *poison.Cell
	unsub func()
}

// Close cancels the pool's poison subscription.
func (p *monitorPool) Close() {
	if p.unsub != nil {
		p.unsub()
		p.unsub = nil
	}
}

func (p *monitorPool) Put(pid int, task any) {
	p.mu.Lock()
	p.queue = append(p.queue, task)
	p.outstanding++
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *monitorPool) Done(pid int) {
	p.mu.Lock()
	p.outstanding--
	done := p.outstanding == 0
	p.mu.Unlock()
	if done {
		p.cond.Broadcast()
	}
}

func (p *monitorPool) Next(pid int) (any, bool) {
	faultinject.Fire(faultinject.EnginePark, pid, p.pc)
	p.mu.Lock()
	for len(p.queue) == 0 && p.outstanding > 0 && !p.pc.Poisoned() {
		p.cond.Wait()
	}
	if p.pc.Poisoned() {
		p.mu.Unlock()
		p.pc.Check()
	}
	if p.outstanding == 0 {
		p.mu.Unlock()
		return nil, false
	}
	t := p.queue[len(p.queue)-1]
	p.queue = p.queue[:len(p.queue)-1]
	p.mu.Unlock()
	return t, true
}

// Span is a half-open interval [Lo, Hi) of loop ordinals.
type Span struct{ Lo, Hi int }

// SpanSource distributes a static ordinal space [0, n) over per-process
// stealing deques: process p's deque is seeded with the p-th contiguous
// block, local work is popped lock-free, and a process that runs dry
// steals a block from a victim.  Blocks split lazily — a popped or stolen
// block larger than the grain returns only its lower half and pushes the
// rest back — so stealing always finds large chunks early and the tail
// load-balances at grain granularity.
//
// SpanSource backs the sched package's Stealing discipline (DOALL loops)
// and the selfscheduled Pcase; as a WorkSource it yields Span tasks.
type SpanSource struct {
	np, grain int
	deques    []*Deque[Span]
}

// NewSpanSource creates a source over the ordinal space [0, n) for np
// processes.  grain is the largest interval Next hands out; grain <= 0
// selects max(1, n/(8·np)).
func NewSpanSource(np, n, grain int) *SpanSource {
	if np <= 0 {
		panic(fmt.Sprintf("engine: np = %d, need np >= 1", np))
	}
	if grain <= 0 {
		grain = n / (8 * np)
		if grain < 1 {
			grain = 1
		}
	}
	s := &SpanSource{np: np, grain: grain, deques: make([]*Deque[Span], np)}
	for i := range s.deques {
		s.deques[i] = NewDeque[Span](8)
	}
	// Seed contiguous blocks, sizes differing by at most one.
	base, rem := n/np, n%np
	lo := 0
	for p := 0; p < np; p++ {
		size := base
		if p < rem {
			size++
		}
		if size > 0 {
			s.deques[p].Push(Span{lo, lo + size})
		}
		lo += size
	}
	return s
}

// NextSpan returns the next interval for process pid, ok=false when the
// space looks exhausted.  Like all selfscheduling the assignment of
// ordinals to processes is nondeterministic; each ordinal is returned
// exactly once.
func (s *SpanSource) NextSpan(pid int) (Span, bool) {
	own := s.deques[pid]
	if sp, ok := own.Pop(); ok {
		return s.split(own, sp), true
	}
	for attempt := 0; attempt < 2; attempt++ {
		for i := 1; i < s.np; i++ {
			if sp, ok := s.deques[(pid+i)%s.np].Steal(); ok {
				return s.split(own, sp), true
			}
		}
		runtime.Gosched()
	}
	return Span{}, false
}

// split halves sp down to the grain, keeping the upper parts on the own
// deque where thieves can find them.
func (s *SpanSource) split(own *Deque[Span], sp Span) Span {
	for sp.Hi-sp.Lo > s.grain {
		mid := sp.Lo + (sp.Hi-sp.Lo)/2
		own.Push(Span{mid, sp.Hi})
		sp.Hi = mid
	}
	return sp
}

// Next implements WorkSource; the task is a Span.
func (s *SpanSource) Next(pid int) (any, bool) {
	sp, ok := s.NextSpan(pid)
	if !ok {
		return nil, false
	}
	return sp, true
}
