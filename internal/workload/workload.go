// Package workload provides deterministic workload generators for the
// benchmark harness: calibrated spin-work, per-iteration cost models
// (uniform, triangular, bursty, pseudo-random), and seeded numeric data.
// Benchmarks use spin-work rather than sleeps so that measured shapes —
// who wins, where crossovers fall — are stable across timer resolutions,
// and all randomness is seeded so every run sees the same workload.
package workload

import (
	"math"
	"math/rand"
)

// Spin performs units of deterministic busy work and returns a value that
// depends on the computation, preventing dead-code elimination.
func Spin(units int) uint64 {
	var x uint64 = 88172645463325252
	for i := 0; i < units; i++ {
		// xorshift64 step: cheap, fixed-latency integer work.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// SpinSink accumulates Spin results; benchmarks store into it to keep the
// compiler honest.
var SpinSink uint64

// Cost is a per-iteration cost model mapping iteration ordinal (0-based)
// to spin-work units.
type Cost func(i int) int

// Uniform gives every iteration the same cost.
func Uniform(units int) Cost {
	return func(int) int { return units }
}

// Triangular makes iteration i cost proportionally to i+1, the classic
// skewed loop (triangular matrix sweeps).  The mean cost over n
// iterations is units*(n+1)/2.
func Triangular(units int) Cost {
	return func(i int) int { return units * (i + 1) }
}

// Bursty gives every k-th iteration heavy cost and the rest light cost.
func Bursty(light, heavy, k int) Cost {
	if k <= 0 {
		k = 1
	}
	return func(i int) int {
		if i%k == 0 {
			return heavy
		}
		return light
	}
}

// RandomCost draws iteration costs uniformly from [lo, hi] with a fixed
// seed, so every run (and every scheduler) sees the same cost vector.
func RandomCost(lo, hi int, n int, seed int64) Cost {
	rng := rand.New(rand.NewSource(seed))
	costs := make([]int, n)
	for i := range costs {
		costs[i] = lo + rng.Intn(hi-lo+1)
	}
	return func(i int) int {
		if i < 0 || i >= n {
			return lo
		}
		return costs[i]
	}
}

// Total sums a cost model over n iterations.
func Total(c Cost, n int) int {
	t := 0
	for i := 0; i < n; i++ {
		t += c(i)
	}
	return t
}

// Matrix returns a seeded n×n matrix in row-major order with entries in
// [-1, 1).
func Matrix(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.Float64()*2 - 1
	}
	return m
}

// Vector returns a seeded vector of length n with entries in [-1, 1).
func Vector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

// DiagonallyDominant returns a seeded n×n system matrix guaranteed
// nonsingular: off-diagonal entries in [-1, 1), diagonal set to the row's
// absolute sum plus one.  Gaussian elimination on it is stable without
// pivoting, and with pivoting exercises the pivot-selection path.
func DiagonallyDominant(n int, seed int64) []float64 {
	m := Matrix(n, seed)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				sum += math.Abs(m[i*n+j])
			}
		}
		m[i*n+i] = sum + 1
	}
	return m
}

// SystemWithSolution builds (A, b, x) with A diagonally dominant and
// b = A·x for a known x, so solvers can be verified against x directly.
func SystemWithSolution(n int, seed int64) (a, b, x []float64) {
	a = DiagonallyDominant(n, seed)
	x = make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b = make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		b[i] = s
	}
	return a, b, x
}

// Grid returns an n×n grid with fixed boundary values (1 on the top edge,
// 0 elsewhere), the standard Laplace/Jacobi test problem.
func Grid(n int) []float64 {
	g := make([]float64, n*n)
	for j := 0; j < n; j++ {
		g[j] = 1 // top row
	}
	return g
}
