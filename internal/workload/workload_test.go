package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpinDeterministicAndNonZero(t *testing.T) {
	a := Spin(1000)
	b := Spin(1000)
	if a != b {
		t.Error("Spin not deterministic")
	}
	if a == 0 {
		t.Error("Spin returned 0")
	}
	if Spin(0) == 0 {
		t.Error("Spin(0) seed value lost")
	}
}

func TestCostModels(t *testing.T) {
	u := Uniform(5)
	if u(0) != 5 || u(99) != 5 {
		t.Error("uniform cost varies")
	}
	tr := Triangular(2)
	if tr(0) != 2 || tr(9) != 20 {
		t.Errorf("triangular: %d %d", tr(0), tr(9))
	}
	bu := Bursty(1, 100, 10)
	if bu(0) != 100 || bu(1) != 1 || bu(10) != 100 {
		t.Error("bursty pattern wrong")
	}
	if Bursty(1, 9, 0)(5) != 9 && Bursty(1, 9, 0)(5) != 1 {
		t.Error("bursty k=0 must not panic")
	}
}

func TestRandomCostSeededAndBounded(t *testing.T) {
	c1 := RandomCost(3, 9, 100, 42)
	c2 := RandomCost(3, 9, 100, 42)
	for i := 0; i < 100; i++ {
		if c1(i) != c2(i) {
			t.Fatal("RandomCost not seeded deterministically")
		}
		if c1(i) < 3 || c1(i) > 9 {
			t.Fatalf("cost %d out of bounds", c1(i))
		}
	}
	if c1(-1) != 3 || c1(100) != 3 {
		t.Error("out-of-range ordinals must return lo")
	}
}

func TestTotal(t *testing.T) {
	if got := Total(Uniform(2), 10); got != 20 {
		t.Errorf("Total uniform = %d", got)
	}
	if got := Total(Triangular(1), 4); got != 10 {
		t.Errorf("Total triangular = %d", got)
	}
}

func TestMatrixVectorSeeded(t *testing.T) {
	a := Matrix(8, 7)
	b := Matrix(8, 7)
	c := Matrix(8, 8)
	if len(a) != 64 {
		t.Fatalf("len = %d", len(a))
	}
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
		if a[i] < -1 || a[i] >= 1 {
			t.Fatalf("entry %g out of range", a[i])
		}
	}
	if !same || !diff {
		t.Error("seeding broken")
	}
	v := Vector(5, 3)
	if len(v) != 5 {
		t.Error("vector length")
	}
}

func TestDiagonallyDominant(t *testing.T) {
	n := 12
	m := DiagonallyDominant(n, 5)
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				off += math.Abs(m[i*n+j])
			}
		}
		if m[i*n+i] <= off {
			t.Fatalf("row %d not dominant: diag %g vs off %g", i, m[i*n+i], off)
		}
	}
}

func TestSystemWithSolution(t *testing.T) {
	n := 10
	a, b, x := workloadSystem(n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		if math.Abs(s-b[i]) > 1e-9 {
			t.Fatalf("row %d: Ax=%g b=%g", i, s, b[i])
		}
	}
}

func workloadSystem(n int) (a, b, x []float64) { return SystemWithSolution(n, 11) }

func TestGrid(t *testing.T) {
	g := Grid(4)
	for j := 0; j < 4; j++ {
		if g[j] != 1 {
			t.Error("top boundary not 1")
		}
	}
	for i := 4; i < 16; i++ {
		if g[i] != 0 {
			t.Error("interior not 0")
		}
	}
}

// Property: Total(Triangular(u), n) equals the closed form u*n*(n+1)/2.
func TestQuickTriangularClosedForm(t *testing.T) {
	prop := func(uRaw, nRaw uint8) bool {
		u := int(uRaw)%5 + 1
		n := int(nRaw) % 100
		return Total(Triangular(u), n) == u*n*(n+1)/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
