package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/poison"
)

// arm installs a plan for the test and guarantees it is torn down, so a
// failing case cannot leave the process-global gate armed for the next
// test.  Tests arming plans must not run in parallel.
func arm(t *testing.T, p *Plan) {
	t.Helper()
	Enable(p)
	t.Cleanup(Disable)
}

func TestParseSpecGrammar(t *testing.T) {
	p, err := ParseSpec("seed=7, barrier.enter=panic ,askfor.take=stall")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed() != 7 {
		t.Errorf("seed = %d, want 7", p.Seed())
	}
	for _, site := range []string{BarrierEnter, AskforTake} {
		a := p.sites[site]
		if a == nil {
			t.Fatalf("site %s not armed", site)
		}
		if want := seededAfter(7, site); a.inj.After != want {
			t.Errorf("%s: After = %d, want seeded %d", site, a.inj.After, want)
		}
	}
	if p.sites[BarrierEnter].inj.Kind != Panic || p.sites[AskforTake].inj.Kind != Stall {
		t.Error("kinds not parsed")
	}
}

func TestParseSpecArgs(t *testing.T) {
	p, err := ParseSpec("barrier.exit=delay/5ms/after=2/pid=1")
	if err != nil {
		t.Fatal(err)
	}
	inj := p.sites[BarrierExit].inj
	if inj.Kind != Delay || inj.Delay != 5*time.Millisecond || inj.After != 2 || inj.Pid != 1 {
		t.Errorf("parsed injection %+v", inj)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"seed=x",
		"nonsite=panic",
		"barrier.enter=explode",
		"barrier.enter",
		"barrier.enter=delay/bogus",
		"barrier.enter=panic/after=-1",
		"barrier.enter=panic/pid=-2",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
	// The empty spec is a valid empty plan (FORCE_FAULTS="" disarms).
	if p, err := ParseSpec(""); err != nil || len(p.sites) != 0 {
		t.Errorf("ParseSpec(\"\") = %v, %v", p, err)
	}
}

// TestSeededPlacementDeterministic: the same seed places the same
// injection regardless of arming order or plan identity, and different
// seeds spread placements — the property letting one seed pin a whole
// sweep's timing.
func TestSeededPlacementDeterministic(t *testing.T) {
	for _, site := range Sites {
		a := NewPlan(42).Add(Injection{Site: site, Kind: Panic, After: -1, Pid: -1})
		b := NewPlan(42).Add(Injection{Site: site, Kind: Stall, After: -1, Pid: -1})
		if x, y := a.sites[site].inj.After, b.sites[site].inj.After; x != y {
			t.Errorf("%s: seed 42 placed After=%d then After=%d", site, x, y)
		}
		if got := a.sites[site].inj.After; got < 0 || got > 3 {
			t.Errorf("%s: After = %d, want [0, 4)", site, got)
		}
	}
}

// TestFireOneShot: an After=2 injection skips two hits, fires on the
// third with the 1-based hit count, and never fires again.
func TestFireOneShot(t *testing.T) {
	p := NewPlan(0).Add(Injection{Site: BarrierEnter, Kind: Panic, After: 2, Pid: -1})
	arm(t, p)
	c := poison.NewCell()
	fire := func() (e *Error) {
		defer func() {
			if r := recover(); r != nil {
				e = r.(*Error)
			}
		}()
		Fire(BarrierEnter, 0, c)
		return nil
	}
	for i := 0; i < 2; i++ {
		if e := fire(); e != nil {
			t.Fatalf("hit %d fired early: %v", i+1, e)
		}
	}
	e := fire()
	if e == nil {
		t.Fatal("chosen hit did not fire")
	}
	if e.Site != BarrierEnter || e.Hit != 3 {
		t.Errorf("fired %+v, want site=%s hit=3", e, BarrierEnter)
	}
	if !strings.Contains(e.Error(), "fault injected at barrier.enter") {
		t.Errorf("message %q", e.Error())
	}
	if !p.Fired(BarrierEnter) || !p.FiredAny() {
		t.Error("fired latch not set")
	}
	if e := fire(); e != nil {
		t.Errorf("injection fired twice: %v", e)
	}
}

// TestFirePidRestriction: pid-restricted injections ignore other
// processes' traffic entirely — their hits do not advance the counter —
// and pid-less call sites (pid -1) bypass the restriction.
func TestFirePidRestriction(t *testing.T) {
	p := NewPlan(0).Add(Injection{Site: BarrierExit, Kind: Panic, After: 0, Pid: 2})
	arm(t, p)
	c := poison.NewCell()
	Fire(BarrierExit, 0, c) // wrong pid: must not fire, must not count
	Fire(BarrierExit, 1, c)
	fired := func(pid int) (ok bool) {
		defer func() { ok = recover() != nil }()
		Fire(BarrierExit, pid, c)
		return false
	}
	if !fired(2) {
		t.Error("restricted pid did not fire on its first hit")
	}
}

func TestFireDisabledIsNoop(t *testing.T) {
	Disable()
	Fire(BarrierEnter, 0, nil) // must not panic, must not dereference
	if err := FireErr(AOTBuild, nil); err != nil {
		t.Errorf("disabled FireErr = %v", err)
	}
	if Enabled() {
		t.Error("Enabled() after Disable")
	}
}

func TestFireDelay(t *testing.T) {
	p := NewPlan(0).Add(Injection{Site: ReduceContrib, Kind: Delay, Delay: 20 * time.Millisecond, Pid: -1})
	arm(t, p)
	start := time.Now()
	Fire(ReduceContrib, 0, poison.NewCell())
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("delay injector returned after %v, want >= 20ms", d)
	}
}

// TestStallReleasedByDisable: a stalled process resumes (without
// unwinding) when the plan is removed, so a chaos case tearing down
// cannot leak a goroutine forever.
func TestStallReleasedByDisable(t *testing.T) {
	p := NewPlan(0).Add(Injection{Site: EnginePark, Kind: Stall, After: 0, Pid: -1})
	arm(t, p)
	c := poison.NewCell()
	done := make(chan struct{})
	go func() {
		defer close(done)
		Fire(EnginePark, 0, c)
	}()
	select {
	case <-done:
		t.Fatal("stall returned before release")
	case <-time.After(30 * time.Millisecond):
	}
	Disable()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stall not released by Disable")
	}
}

// TestStallUnwoundByPoison: poisoning the cell (what external
// cancellation does) unwinds a stalled process with the distinguished
// abort panic, exactly like any poisoned waiter.
func TestStallUnwoundByPoison(t *testing.T) {
	p := NewPlan(0).Add(Injection{Site: AskforTake, Kind: Stall, After: 0, Pid: -1})
	arm(t, p)
	c := poison.NewCell()
	unwound := make(chan any, 1)
	go func() {
		defer func() { unwound <- recover() }()
		Fire(AskforTake, 0, c)
		unwound <- nil
	}()
	time.Sleep(20 * time.Millisecond)
	c.PoisonExternal(errors.New("canceled"))
	select {
	case v := <-unwound:
		if v == nil {
			t.Fatal("stall returned normally instead of unwinding on poison")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poison did not unwind the stalled process")
	}
}

// TestFireErrStall: the error-path stall (aot sites) surfaces the
// poison as an error instead of a panic, and a nil cell stalls until
// the plan is disabled.
func TestFireErrStall(t *testing.T) {
	p := NewPlan(0).Add(Injection{Site: AOTExec, Kind: Stall, After: 0, Pid: -1})
	arm(t, p)
	c := poison.NewCell()
	errc := make(chan error, 1)
	go func() { errc <- FireErr(AOTExec, c) }()
	time.Sleep(20 * time.Millisecond)
	want := errors.New("deadline")
	c.PoisonExternal(want)
	select {
	case err := <-errc:
		if !errors.Is(err, want) {
			t.Errorf("stalled FireErr = %v, want %v", err, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("FireErr stall did not observe the poison")
	}
}

func TestFireErrPanicKindReturnsError(t *testing.T) {
	arm(t, NewPlan(0).Add(Injection{Site: AOTBuild, Kind: Panic, After: 0, Pid: -1}))
	err := FireErr(AOTBuild, nil)
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != AOTBuild {
		t.Errorf("FireErr = %v, want *Error at %s", err, AOTBuild)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%s) = %v, %v", k, got, err)
		}
	}
}
