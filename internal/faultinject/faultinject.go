// Package faultinject is the runtime's chaos harness: a registry of
// named injection sites threaded through every hot blocking point of
// the Force runtime (barrier enter/section/exit, reduce
// contribute/combine/release, asynchronous-variable
// produce/consume/copy, askfor put/take, engine park/steal/hand-raid,
// aot build/exec), and a small set of injectors — panic, fixed delay,
// stall-forever — selected by a seeded deterministic plan.
//
// The point is to PROVE the fault-containment and cancellation
// properties instead of asserting them: the chaos sweep (chaos_test.go
// at the repository root, CI's chaos job) runs the acceptance corpus
// with one injection armed per site and requires, within a hard
// deadline, either byte-identical correct output or a clean abort
// carrying the injected first failure — never a deadlock, never a
// silently wrong answer.  That is the robustness scoreboard a
// multi-tenant forced daemon needs before it can cancel arbitrary
// tenants' Runs on request.
//
// Injection is OFF by default and gated by one package-level atomic: a
// disabled Fire is a single atomic load and a predictable branch, so
// the hooks can live on hot paths permanently (the same trick as the
// race detector's annotations).  Plans come from the FORCE_FAULTS
// environment variable (forcerun arms it at startup) or from the
// programmatic API (Enable/Disable); both are process-global, so tests
// arming plans must not run in parallel with each other.
//
// Plan syntax (FORCE_FAULTS):
//
//	spec     = entry *("," entry)
//	entry    = "seed=" int | site "=" kind ["/" arg]...
//	kind     = "panic" | "delay" | "stall"
//	arg      = duration           (delay length, default 2ms)
//	         | "after=" int       (skip the first N hits of the site)
//	         | "pid=" int         (fire only in force process P; needs the
//	                               caller to pass a pid, else ignored)
//
// Example: FORCE_FAULTS="seed=7,barrier.enter=panic,askfor.take=stall"
// When "after" is not given it is derived deterministically from the
// seed and the site name, so one seed pins the whole sweep's timing
// without hand-placing every injection.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/poison"
)

// The injection sites, one per hot blocking point of the runtime.  The
// site name is the FORCE_FAULTS key and the chaos sweep's coordinate.
const (
	BarrierEnter   = "barrier.enter"   // core.Proc.Barrier*, before the Sync
	BarrierSection = "barrier.section" // inside the single-process barrier section
	BarrierExit    = "barrier.exit"    // core.Proc.Barrier*, after the Sync
	ReduceContrib  = "reduce.contribute"
	ReduceCombine  = "reduce.combine" // inside the combining function
	ReduceRelease  = "reduce.release" // a waiter about to await the episode result
	AsyncProduce   = "async.produce"
	AsyncConsume   = "async.consume"
	AsyncCopy      = "async.copy"
	AskforPut      = "askfor.put"
	AskforTake     = "askfor.take"
	EnginePark     = "engine.park" // an askfor worker about to park for tasks
	EngineSteal    = "engine.steal"
	EngineHand     = "engine.hand" // the hand-slot raid of last resort
	AOTBuild       = "aot.build"   // the native tier's go-build cold path
	AOTExec        = "aot.exec"    // about to exec the cached native binary
	FusedJoin      = "fuse.join"   // the single collective closing a fused DOALL+reduction
)

// Sites lists every injection site, in sweep order.
var Sites = []string{
	BarrierEnter, BarrierSection, BarrierExit,
	ReduceContrib, ReduceCombine, ReduceRelease,
	AsyncProduce, AsyncConsume, AsyncCopy,
	AskforPut, AskforTake,
	EnginePark, EngineSteal, EngineHand,
	AOTBuild, AOTExec,
	FusedJoin,
}

// Kind selects an injector.
type Kind int

const (
	// Panic panics with *Error at the site — the "a process died right
	// here" fault.  The poison protocol must turn it into a clean
	// whole-force abort carrying this exact failure.
	Panic Kind = iota
	// Delay sleeps the process at the site — the "one process is slow"
	// fault.  The run must still produce correct output.
	Delay
	// Stall blocks the process at the site until the force is poisoned
	// (or the plan is disabled) — the "a process hung forever" fault.
	// Only external cancellation (a deadline, a watchdog) can end such
	// a run; the stalled process then unwinds like any poisoned waiter.
	Stall
)

// String returns the kind's FORCE_FAULTS spelling.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Stall:
		return "stall"
	default:
		return fmt.Sprintf("faultinject.Kind(%d)", int(k))
	}
}

// Kinds lists the injectors in sweep order.
func Kinds() []Kind { return []Kind{Panic, Delay, Stall} }

// ParseKind converts a FORCE_FAULTS spelling into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "panic":
		return Panic, nil
	case "delay":
		return Delay, nil
	case "stall":
		return Stall, nil
	default:
		return 0, fmt.Errorf("faultinject: unknown injector %q (want panic, delay or stall)", s)
	}
}

// Error is the panic value (and aot-path error value) of the Panic
// injector: a distinguished type so the chaos harness — and
// interp.Run's recover — can tell an injected fault from a genuine
// runtime bug.
type Error struct {
	Site string
	Hit  int // which hit of the site fired (1-based)
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault injected at %s (hit %d)", e.Site, e.Hit)
}

// Injection arms one site.
type Injection struct {
	Site  string
	Kind  Kind
	Delay time.Duration // Delay injector only; 0 means 2ms
	// After skips the first After hits of the site before firing (the
	// seeded plan's placement knob).  Negative means "derive from the
	// plan seed and the site name".
	After int
	// Pid restricts the injection to one force process; -1 (the
	// default in NewPlan/parsing) fires in whichever process hits the
	// chosen occurrence.  Sites fired without pid information (aot
	// build/exec run on the driver) ignore the restriction.
	Pid int
}

// armed is one site's live state: the spec plus the hit counter.  Each
// injection fires exactly once — chaos cases assert one fault, not a
// fault storm — so `fired` latches.
type armed struct {
	inj   Injection
	hits  atomic.Int64
	fired atomic.Bool
}

// Plan is an armed set of injections.  Build one with NewPlan/Add or
// ParseSpec, then install it with Enable.
type Plan struct {
	seed  int64
	sites map[string]*armed
}

// NewPlan creates an empty plan with the given seed.  The seed
// deterministically places injections whose After is negative.
func NewPlan(seed int64) *Plan {
	return &Plan{seed: seed, sites: map[string]*armed{}}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// Add arms one injection (replacing any previous one for the site) and
// returns the plan for chaining.  An After < 0 is resolved now, from
// the seed and the site name, so the placement is deterministic per
// (seed, site) and independent of arming order.
func (p *Plan) Add(inj Injection) *Plan {
	if !knownSite(inj.Site) {
		panic(fmt.Sprintf("faultinject: unknown site %q", inj.Site))
	}
	if inj.After < 0 {
		inj.After = seededAfter(p.seed, inj.Site)
	}
	if inj.Kind == Delay && inj.Delay <= 0 {
		inj.Delay = 2 * time.Millisecond
	}
	p.sites[inj.Site] = &armed{inj: inj}
	return p
}

// Fired reports whether the plan's injection at site has fired.
func (p *Plan) Fired(site string) bool {
	a := p.sites[site]
	return a != nil && a.fired.Load()
}

// FiredAny reports whether any injection of the plan has fired.
func (p *Plan) FiredAny() bool {
	for _, a := range p.sites {
		if a.fired.Load() {
			return true
		}
	}
	return false
}

func knownSite(s string) bool {
	for _, k := range Sites {
		if k == s {
			return true
		}
	}
	return false
}

// seededAfter derives a deterministic skip count in [0, 4) from the
// seed and the site name, so one seed places every site's injection.
func seededAfter(seed int64, site string) int {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s", seed, site)
	return int(h.Sum64() % 4)
}

// ParseSpec parses a FORCE_FAULTS plan specification (see the package
// comment for the grammar).
func ParseSpec(spec string) (*Plan, error) {
	entries := []string{}
	for _, e := range strings.Split(spec, ",") {
		if e = strings.TrimSpace(e); e != "" {
			entries = append(entries, e)
		}
	}
	// First pass: the seed, so placement is independent of entry order.
	var seed int64
	for _, e := range entries {
		if v, ok := strings.CutPrefix(e, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q", v)
			}
			seed = n
		}
	}
	p := NewPlan(seed)
	for _, e := range entries {
		if strings.HasPrefix(e, "seed=") {
			continue
		}
		site, rest, ok := strings.Cut(e, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad entry %q (want site=kind[/arg]...)", e)
		}
		if !knownSite(site) {
			return nil, fmt.Errorf("faultinject: unknown site %q", site)
		}
		args := strings.Split(rest, "/")
		kind, err := ParseKind(args[0])
		if err != nil {
			return nil, err
		}
		inj := Injection{Site: site, Kind: kind, After: -1, Pid: -1}
		for _, a := range args[1:] {
			switch {
			case strings.HasPrefix(a, "after="):
				n, err := strconv.Atoi(a[len("after="):])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faultinject: bad after %q", a)
				}
				inj.After = n
			case strings.HasPrefix(a, "pid="):
				n, err := strconv.Atoi(a[len("pid="):])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faultinject: bad pid %q", a)
				}
				inj.Pid = n
			default:
				d, err := time.ParseDuration(a)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("faultinject: bad injector argument %q", a)
				}
				inj.Delay = d
			}
		}
		p.Add(inj)
	}
	return p, nil
}

// The global gate: an atomic bool consulted first by every Fire, so a
// disabled harness costs the hot paths one predictable load.  The plan
// itself travels in an atomic pointer; Enable/Disable are the only
// writers.
var (
	gate atomic.Bool
	cur  atomic.Pointer[Plan]
)

// Enabled reports whether a plan is installed.
func Enabled() bool { return gate.Load() }

// Enable installs the plan process-wide.  A nil plan disables.
func Enable(p *Plan) {
	if p == nil {
		Disable()
		return
	}
	cur.Store(p)
	gate.Store(true)
}

// Disable removes the installed plan.  Stalled processes whose stall
// watches the plan (nil-cell sites) resume; stalls inside a poisoned
// force have already unwound.
func Disable() {
	gate.Store(false)
	cur.Store(nil)
}

// Fire is the hot-path hook: a no-op (one atomic load) unless a plan is
// enabled and arms this site.  pid is the firing force process (-1 when
// the caller has no process identity); c is the force's poison cell,
// which a Stall watches so a stalled process still unwinds when the
// force is cancelled or a peer fails.  May panic with *Error (Panic
// injector) or poison.Abort (a Stall ended by poison).
func Fire(site string, pid int, c *poison.Cell) {
	if !gate.Load() {
		return
	}
	fire(site, pid, c)
}

// FireErr is Fire for error-returning paths (the aot tier): the Panic
// injector returns *Error instead of panicking, Delay sleeps, and
// Stall blocks until the plan is disabled or the cell (possibly nil)
// poisons, then reports the stall as an error.
func FireErr(site string, c *poison.Cell) error {
	if !gate.Load() {
		return nil
	}
	return fireErr(site, c)
}

// take claims the site's injection if this (pid, hit) is the chosen
// occurrence.  The hit counter advances on every call so "after" counts
// real traffic; the fired latch makes each injection one-shot.
func take(site string, pid int) (*Plan, *armed, int) {
	p := cur.Load()
	if p == nil {
		return nil, nil, 0
	}
	a := p.sites[site]
	if a == nil || a.fired.Load() {
		return nil, nil, 0
	}
	if a.inj.Pid >= 0 && pid >= 0 && pid != a.inj.Pid {
		return nil, nil, 0
	}
	hit := int(a.hits.Add(1))
	if hit != a.inj.After+1 {
		return nil, nil, 0
	}
	if !a.fired.CompareAndSwap(false, true) {
		return nil, nil, 0
	}
	return p, a, hit
}

func fire(site string, pid int, c *poison.Cell) {
	p, a, hit := take(site, pid)
	if a == nil {
		return
	}
	switch a.inj.Kind {
	case Panic:
		panic(&Error{Site: site, Hit: hit})
	case Delay:
		time.Sleep(a.inj.Delay)
	case Stall:
		// Block like a lost waiter: poison (external cancel or a peer's
		// failure) unwinds us with poison.Abort via poison.Wait; a
		// disabled/replaced plan releases us to resume normally, so a
		// harness tearing down after a failed case cannot leak a
		// goroutine forever.
		poison.Wait(c, func() bool { return cur.Load() != p })
	}
}

func fireErr(site string, c *poison.Cell) error {
	p, a, hit := take(site, -1)
	if a == nil {
		return nil
	}
	switch a.inj.Kind {
	case Panic:
		return &Error{Site: site, Hit: hit}
	case Delay:
		time.Sleep(a.inj.Delay)
		return nil
	case Stall:
		released := func() bool { return cur.Load() != p }
		if c != nil {
			// Unwind-free variant of the stall: wait out the poison (or
			// the plan) and surface the cancellation as an error.
			for !released() && !c.Poisoned() {
				time.Sleep(time.Millisecond)
			}
			if err := c.Err(); err != nil {
				return err
			}
			return nil
		}
		for !released() {
			time.Sleep(time.Millisecond)
		}
		return nil
	}
	return nil
}
