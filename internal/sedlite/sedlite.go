// Package sedlite is a small stream editor: the first of the two
// preprocessor passes in the Force compilation pipeline (paper §4.3: "The
// stream editor sed translates the Force syntax into parameterized
// function macros").
//
// A Script is an ordered list of commands applied to every input line:
//
//	s<del>pattern<del>replacement<del>[flags]   substitute
//	<del>pattern<del>d                          delete matching lines
//
// where <del> is any punctuation delimiter (conventionally /).  Patterns
// are Go regular expressions; replacements use sed-style \1..\9 group
// references (translated internally to Go's ${n}) and & for the whole
// match.  Flags: g (replace all occurrences), i (case-insensitive match).
// Lines starting with # in a script source are comments.
//
// The subset is exactly what the Force front end needs; it is not a full
// sed.  Deviations from POSIX sed are documented on Parse.
package sedlite

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// Command is one compiled script command.
type Command struct {
	pattern *regexp.Regexp
	replace string
	global  bool
	delete  bool
	src     string
}

// String returns the command's source text.
func (c Command) String() string { return c.src }

// Script is a compiled, ordered command list.
type Script struct {
	cmds []Command
}

// Commands returns the number of commands in the script.
func (s *Script) Commands() int { return len(s.cmds) }

// Parse compiles a script: one command per line, blank lines and #-comment
// lines ignored.  Unlike POSIX sed there are no addresses, hold space, or
// multi-line commands; those features are not used by the Force rules.
func Parse(src string) (*Script, error) {
	s := &Script{}
	for ln, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		cmd, err := parseCommand(trimmed)
		if err != nil {
			return nil, fmt.Errorf("sedlite: line %d: %w", ln+1, err)
		}
		s.cmds = append(s.cmds, cmd)
	}
	return s, nil
}

// MustParse is Parse panicking on error, for compiled-in rule sets.
func MustParse(src string) *Script {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func parseCommand(line string) (Command, error) {
	if strings.HasPrefix(line, "s") && len(line) > 1 && isDelim(rune(line[1])) {
		return parseSubst(line)
	}
	if isDelim(rune(line[0])) {
		return parseDelete(line)
	}
	return Command{}, fmt.Errorf("unrecognized command %q", line)
}

func isDelim(r rune) bool {
	return strings.ContainsRune("/|#!,;:%", r) && r != '\\'
}

// splitFields splits body into fields separated by unescaped occurrences
// of del; an escaped delimiter (\<del>) becomes a literal delimiter.
func splitFields(body string, del byte) []string {
	var fields []string
	var cur strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c == '\\' && i+1 < len(body) && body[i+1] == del {
			cur.WriteByte(del)
			i++
			continue
		}
		if c == del {
			fields = append(fields, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteByte(c)
	}
	fields = append(fields, cur.String())
	return fields
}

func parseSubst(line string) (Command, error) {
	del := line[1]
	fields := splitFields(line[2:], del)
	if len(fields) != 3 {
		return Command{}, fmt.Errorf("substitute needs s%cpat%crepl%c[flags], got %q", del, del, del, line)
	}
	pat, repl, flags := fields[0], fields[1], fields[2]
	cmd := Command{src: line}
	for _, f := range flags {
		switch f {
		case 'g':
			cmd.global = true
		case 'i':
			pat = "(?i)" + pat
		default:
			return Command{}, fmt.Errorf("unknown flag %q in %q", string(f), line)
		}
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return Command{}, fmt.Errorf("pattern %q: %w", pat, err)
	}
	cmd.pattern = re
	cmd.replace = translateReplacement(repl)
	return cmd, nil
}

func parseDelete(line string) (Command, error) {
	del := line[0]
	fields := splitFields(line[1:], del)
	if len(fields) != 2 || fields[1] != "d" {
		return Command{}, fmt.Errorf("delete needs %cpattern%cd, got %q", del, del, line)
	}
	re, err := regexp.Compile(fields[0])
	if err != nil {
		return Command{}, fmt.Errorf("pattern %q: %w", fields[0], err)
	}
	return Command{pattern: re, delete: true, src: line}, nil
}

// translateReplacement converts sed-style \1..\9 and & references to Go's
// ${n} / ${0}, and protects literal $ from Go's expander.
func translateReplacement(repl string) string {
	var out strings.Builder
	for i := 0; i < len(repl); i++ {
		c := repl[i]
		switch {
		case c == '\\' && i+1 < len(repl) && repl[i+1] >= '1' && repl[i+1] <= '9':
			fmt.Fprintf(&out, "${%c}", repl[i+1])
			i++
		case c == '\\' && i+1 < len(repl) && repl[i+1] == '&':
			out.WriteByte('&')
			i++
		case c == '\\' && i+1 < len(repl) && repl[i+1] == '\\':
			out.WriteByte('\\')
			i++
		case c == '&':
			out.WriteString("${0}")
		case c == '$':
			out.WriteString("$$")
		default:
			out.WriteByte(c)
		}
	}
	return out.String()
}

// ApplyLine runs the script over one line.  The second result is false
// when a delete command removed the line.
func (s *Script) ApplyLine(line string) (string, bool) {
	for _, c := range s.cmds {
		if c.delete {
			if c.pattern.MatchString(line) {
				return "", false
			}
			continue
		}
		if c.global {
			line = c.pattern.ReplaceAllString(line, c.replace)
		} else if loc := c.pattern.FindStringSubmatchIndex(line); loc != nil {
			buf := make([]byte, 0, len(line))
			buf = append(buf, line[:loc[0]]...)
			buf = c.pattern.ExpandString(buf, c.replace, line, loc)
			buf = append(buf, line[loc[1]:]...)
			line = string(buf)
		}
	}
	return line, true
}

// Apply runs the script over a whole text, line by line, preserving the
// trailing-newline shape of the input.
func (s *Script) Apply(text string) string {
	var out strings.Builder
	lines := strings.Split(text, "\n")
	trailingNewline := strings.HasSuffix(text, "\n")
	if trailingNewline {
		lines = lines[:len(lines)-1]
	}
	for _, line := range lines {
		res, keep := s.ApplyLine(line)
		if !keep {
			continue
		}
		out.WriteString(res)
		out.WriteByte('\n')
	}
	result := out.String()
	if !trailingNewline {
		result = strings.TrimSuffix(result, "\n")
	}
	return result
}

// Run streams r through the script to w.
func (s *Script) Run(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	bw := bufio.NewWriter(w)
	for sc.Scan() {
		line, keep := s.ApplyLine(sc.Text())
		if !keep {
			continue
		}
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return bw.Flush()
}
