package sedlite

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseErrors(t *testing.T) {
	bad := []string{
		"q",                 // unknown command
		"s/a/b",             // missing field
		"s/a/b/x",           // unknown flag
		"s/[/b/",            // bad regexp
		"/pat/x",            // delete needs d
		"/[/d",              // bad regexp in delete
		"substitute please", // not a command
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("s/a/b")
}

func TestCommentsAndBlanks(t *testing.T) {
	s, err := Parse("# a comment\n\n  \ns/a/b/\n# another\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Commands() != 1 {
		t.Errorf("Commands() = %d, want 1", s.Commands())
	}
}

func TestSubstituteFirstVsGlobal(t *testing.T) {
	first := MustParse("s/o/0/")
	global := MustParse("s/o/0/g")
	if got, _ := first.ApplyLine("foo boo"); got != "f0o boo" {
		t.Errorf("first-only = %q", got)
	}
	if got, _ := global.ApplyLine("foo boo"); got != "f00 b00" {
		t.Errorf("global = %q", got)
	}
}

func TestCaseInsensitive(t *testing.T) {
	s := MustParse("s/barrier/BARRIER()/i")
	if got, _ := s.ApplyLine("  Barrier  "); got != "  BARRIER()  " {
		t.Errorf("got %q", got)
	}
}

func TestGroupReferences(t *testing.T) {
	s := MustParse(`s/DO ([0-9]+) ([A-Z]+) = (.*)/do_loop(\1,\2,\3)/`)
	got, _ := s.ApplyLine("DO 100 K = START, LAST, INCR")
	want := "do_loop(100,K,START, LAST, INCR)"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestAmpersandWholeMatch(t *testing.T) {
	s := MustParse(`s/[0-9]+/<&>/g`)
	if got, _ := s.ApplyLine("a1 b22"); got != "a<1> b<22>" {
		t.Errorf("got %q", got)
	}
	esc := MustParse(`s/x/\&/`)
	if got, _ := esc.ApplyLine("x"); got != "&" {
		t.Errorf("escaped & = %q", got)
	}
}

func TestLiteralDollarInReplacement(t *testing.T) {
	s := MustParse(`s/cost/$5/`)
	if got, _ := s.ApplyLine("cost"); got != "$5" {
		t.Errorf("got %q", got)
	}
}

func TestEscapedBackslash(t *testing.T) {
	s := MustParse(`s/x/\\n/`)
	if got, _ := s.ApplyLine("x"); got != `\n` {
		t.Errorf("got %q", got)
	}
}

func TestAlternateDelimiter(t *testing.T) {
	s := MustParse(`s|/usr/bin|/opt|`)
	if got, _ := s.ApplyLine("/usr/bin/f77"); got != "/opt/f77" {
		t.Errorf("got %q", got)
	}
}

func TestEscapedDelimiter(t *testing.T) {
	s := MustParse(`s/a\/b/X/`)
	if got, _ := s.ApplyLine("a/b"); got != "X" {
		t.Errorf("got %q", got)
	}
}

func TestDeleteCommand(t *testing.T) {
	s := MustParse("/^C /d")
	if _, keep := s.ApplyLine("C comment line"); keep {
		t.Error("comment line not deleted")
	}
	if got, keep := s.ApplyLine("  code"); !keep || got != "  code" {
		t.Error("code line deleted or changed")
	}
}

func TestOrderedApplication(t *testing.T) {
	s := MustParse("s/a/b/g\ns/b/c/g")
	if got, _ := s.ApplyLine("aba"); got != "ccc" {
		t.Errorf("got %q, want ccc (commands apply in order)", got)
	}
}

func TestApplyPreservesShape(t *testing.T) {
	s := MustParse("s/a/b/g")
	if got := s.Apply("a\na\n"); got != "b\nb\n" {
		t.Errorf("trailing newline: got %q", got)
	}
	if got := s.Apply("a\na"); got != "b\nb" {
		t.Errorf("no trailing newline: got %q", got)
	}
	if got := s.Apply(""); got != "" {
		t.Errorf("empty input: got %q", got)
	}
}

func TestApplyDeletesLines(t *testing.T) {
	s := MustParse("/skip/d")
	got := s.Apply("keep1\nskip me\nkeep2\n")
	if got != "keep1\nkeep2\n" {
		t.Errorf("got %q", got)
	}
}

func TestRunStreaming(t *testing.T) {
	s := MustParse("s/force/FORCE/g\n/^#/d")
	in := strings.NewReader("# header\nthe force\nmay the force\n")
	var out strings.Builder
	if err := s.Run(in, &out); err != nil {
		t.Fatal(err)
	}
	want := "the FORCE\nmay the FORCE\n"
	if out.String() != want {
		t.Errorf("got %q, want %q", out.String(), want)
	}
}

func TestCommandString(t *testing.T) {
	s := MustParse("s/a/b/")
	if s.cmds[0].String() != "s/a/b/" {
		t.Errorf("String() = %q", s.cmds[0].String())
	}
}

// Property: a substitution with an empty-effect pattern (no match) leaves
// any line unchanged.
func TestQuickNoMatchIsIdentity(t *testing.T) {
	s := MustParse("s/ZZQQX/none/g")
	prop := func(line string) bool {
		if strings.Contains(line, "ZZQQX") || strings.ContainsRune(line, '\n') {
			return true
		}
		got, keep := s.ApplyLine(line)
		return keep && got == line
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: global replacement of a literal with a literal matches
// strings.ReplaceAll.
func TestQuickLiteralGlobalMatchesStrings(t *testing.T) {
	s := MustParse("s/ab/XY/g")
	prop := func(parts []bool) bool {
		var in strings.Builder
		for _, p := range parts {
			if p {
				in.WriteString("ab")
			} else {
				in.WriteString("q")
			}
		}
		got, _ := s.ApplyLine(in.String())
		return got == strings.ReplaceAll(in.String(), "ab", "XY")
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
