package poison

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFirstPoisonWins(t *testing.T) {
	c := NewCell()
	if c.Poisoned() || c.Err() != nil || c.Value() != nil {
		t.Fatal("fresh cell reports poisoned")
	}
	e1, e2 := errors.New("first"), errors.New("second")
	if !c.Poison(e1) {
		t.Fatal("first Poison lost")
	}
	if c.Poison(e2) {
		t.Fatal("second Poison won")
	}
	if !c.Poisoned() || c.Err() != e1 || c.Value() != any(e1) {
		t.Fatalf("cell holds %v, want %v", c.Value(), e1)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done not closed after Poison")
	}
}

func TestNonErrorValue(t *testing.T) {
	c := NewCell()
	c.Poison("boom")
	if c.Value() != any("boom") {
		t.Fatalf("Value = %v", c.Value())
	}
	if c.Err() == nil || c.Err().Error() != "panic: boom" {
		t.Fatalf("Err = %v", c.Err())
	}
}

func TestNilCellSafe(t *testing.T) {
	var c *Cell
	if c.Poisoned() || c.Poison("x") || c.Err() != nil || c.Value() != nil {
		t.Fatal("nil cell not inert")
	}
	if c.Done() != nil {
		t.Fatal("nil cell Done not nil")
	}
	c.Check()
	c.Reset()
	c.Subscribe(func() { t.Fatal("subscriber ran on nil cell") })()
	ok := false
	Wait(c, func() bool { ok = !ok; return ok })
}

func TestCheckPanicsWithAbort(t *testing.T) {
	c := NewCell()
	c.Poison(errors.New("dead"))
	defer func() {
		r := recover()
		ab, ok := r.(Abort)
		if !ok {
			t.Fatalf("recovered %T, want Abort", r)
		}
		if ab.Err == nil || ab.Err.Error() != "dead" {
			t.Fatalf("Abort.Err = %v", ab.Err)
		}
	}()
	c.Check()
}

func TestWaitReturnsOnPred(t *testing.T) {
	c := NewCell()
	var flag atomic.Bool
	go func() {
		time.Sleep(5 * time.Millisecond)
		flag.Store(true)
	}()
	Wait(c, flag.Load)
}

func TestWaitAbortsOnPoison(t *testing.T) {
	c := NewCell()
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		Wait(c, func() bool { return false })
	}()
	time.Sleep(2 * time.Millisecond)
	c.Poison(errors.New("stop"))
	select {
	case r := <-done:
		if _, ok := r.(Abort); !ok {
			t.Fatalf("waiter unwound with %T, want Abort", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("poisoned waiter did not wake")
	}
}

// awaitCount polls until the counter reaches want (hooks run on their
// own goroutines).
func awaitCount(t *testing.T, what string, n *atomic.Int32, want int32) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for n.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", what, n.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubscribeAndCancel(t *testing.T) {
	c := NewCell()
	var ran, cancelled atomic.Int32
	c.Subscribe(func() { ran.Add(1) })
	cancel := c.Subscribe(func() { cancelled.Add(1) })
	cancel()
	c.Poison("x")
	awaitCount(t, "subscriber runs", &ran, 1)
	time.Sleep(20 * time.Millisecond)
	if cancelled.Load() != 0 {
		t.Fatal("cancelled subscriber still ran")
	}
	// Subscribing to an already-poisoned cell fires right away (on its
	// own goroutine).
	var late atomic.Int32
	c.Subscribe(func() { late.Add(1) })
	awaitCount(t, "late subscriber runs", &late, 1)
}

// TestPoisonHooksCannotDeadlockEachOther: a hook blocked on a lock
// held by a waiter that a *different* hook must wake — concurrent
// dispatch means Poison itself never wedges on hook ordering.
func TestPoisonHooksCannotDeadlockEachOther(t *testing.T) {
	c := NewCell()
	var mu sync.Mutex
	release := make(chan struct{})
	mu.Lock()                                      // held until the second hook releases it
	c.Subscribe(func() { mu.Lock(); mu.Unlock() }) //nolint:staticcheck // models a barrier's broadcast hook
	c.Subscribe(func() { <-release })
	done := make(chan struct{})
	go func() {
		c.Poison("x")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Poison blocked on a subscriber hook")
	}
	close(release)
	mu.Unlock()
}

func TestResetRearms(t *testing.T) {
	c := NewCell()
	var wakes atomic.Int32
	c.Subscribe(func() { wakes.Add(1) })
	c.Poison(errors.New("run 1"))
	c.Reset()
	if c.Poisoned() || c.Err() != nil || c.Value() != nil {
		t.Fatal("Reset did not clear the cell")
	}
	select {
	case <-c.Done():
		t.Fatal("Done still closed after Reset")
	default:
	}
	// Subscribers survive Reset: the next run's poison wakes them again.
	if !c.Poison(errors.New("run 2")) {
		t.Fatal("re-poison after Reset lost")
	}
	awaitCount(t, "subscriber wakes", &wakes, 2)
	if c.Err().Error() != "run 2" {
		t.Fatalf("Err = %v after re-poison", c.Err())
	}
}

func TestPoisonRace(t *testing.T) {
	c := NewCell()
	var wins atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if c.Poison(i) {
				wins.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d winners, want exactly 1", wins.Load())
	}
}
