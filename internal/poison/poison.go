// Package poison implements the Force runtime's fault-containment
// protocol: a per-run cancellation cell that every blocking primitive of
// the runtime observes.
//
// The 1989 system had nothing here — "a process which panics while its
// peers are inside a barrier leaves them blocked, exactly as an aborted
// process did on the 1989 machines" was this repository's documented
// behaviour through PR 3, and it is disqualifying for a runtime that has
// to run unattended: a single non-uniform runtime error turned into a
// whole-force hang (or, under Go's all-asleep detector, a raw goroutine
// dump).  Modern many-task runtimes treat fault propagation as a
// first-class runtime service; this package is that service for the
// Force.
//
// The protocol has three parts:
//
//   - Cell: an atomic poison flag plus a first-failure slot.  The first
//     process to fail records its panic value and poisons the cell
//     (later failures lose the race and are dropped — the force reports
//     the *first* failure, as the single-process path always did).
//     Poisoning closes a broadcast channel and runs subscriber hooks, so
//     primitives parked on channels or condition variables wake.
//   - Abort: the distinguished panic value blocked peers unwind with
//     when they observe poison.  The engine recovers Abort at the job
//     boundary and discards it — the original failure is in the cell.
//   - Wait: the shared bounded spin-then-park wait policy.  Every
//     spinning primitive of the runtime (barrier release waits, reduce
//     episode waits, lock acquisition inside condition-encoding
//     constructs) waits through it, so a waiter observes poison within
//     one park interval, and an oversubscribed waiter stops pinning a
//     core instead of spinning unboundedly.
//
// A nil *Cell is valid everywhere and means "no poison wired": Poisoned
// reports false, Check is a no-op, and Wait degenerates to the plain
// spin-then-park policy.  That keeps the primitives usable standalone
// (unit tests, benchmarks) without a runtime above them.
package poison

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Abort is the distinguished panic value a process unwinds with after
// observing that its force was poisoned.  It is not an error in itself:
// the failure that poisoned the force travels in the Cell, and the
// engine's job boundary recovers and discards Abort panics.
type Abort struct {
	// Err describes the first failure, for debugging an Abort that
	// escapes the runtime (it never should).
	Err error
}

func (a Abort) String() string {
	return fmt.Sprintf("poison.Abort(force aborted by: %v)", a.Err)
}

// AsError converts a recovered panic value into an error: errors pass
// through, anything else is wrapped.
func AsError(v any) error {
	switch e := v.(type) {
	case nil:
		return nil
	case error:
		return e
	default:
		return fmt.Errorf("panic: %v", v)
	}
}

// Cause classifies WHY a cell was poisoned.  The distinction matters at
// the Run boundary: an internal failure (a process panicked) re-panics
// out of Run, while an external cancellation (a context deadline, a
// watchdog, a graceful shutdown) is an expected, service-shaped outcome
// that core.Force.RunContext returns as an error.
type Cause int

const (
	// CauseNone: the cell is not poisoned.
	CauseNone Cause = iota
	// CauseFailure: a process of the force panicked (the PR-4 protocol's
	// original, and only, cause).
	CauseFailure
	// CauseExternal: something OUTSIDE the force asked it to stop — a
	// context's cancellation or deadline, forcerun's stall watchdog, or
	// a draining Force.Shutdown.  The poison value is the cancellation
	// error (context.Canceled, context.DeadlineExceeded, a watchdog
	// report).
	CauseExternal
)

// String returns the cause's short name.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseFailure:
		return "failure"
	case CauseExternal:
		return "external"
	default:
		return fmt.Sprintf("poison.Cause(%d)", int(c))
	}
}

// Cell is the cancellation cell of one force: an atomic poison flag and
// the first failure's panic value, tagged with its Cause.  A Cell is
// created once per force and rearmed (Reset) between runs, so
// primitives bind to it once.
//
// All methods are safe on a nil *Cell, which behaves as a cell that is
// never poisoned.
type Cell struct {
	flag atomic.Bool

	mu    sync.Mutex
	val   any
	cause Cause
	ch    chan struct{}
	subs  map[int]func()
	next  int
}

// NewCell returns an armed, unpoisoned cell.
func NewCell() *Cell {
	return &Cell{ch: make(chan struct{})}
}

// Poison records v as the force's first failure (CauseFailure) and
// broadcasts: the wake channel closes and every subscriber hook runs.
// Only the first call wins; Poison reports whether this call was it.
// Poisoning a nil cell reports false.
func (c *Cell) Poison(v any) bool { return c.PoisonCause(v, CauseFailure) }

// PoisonExternal poisons the cell with an external cancellation: err is
// recorded as the poison value under CauseExternal.  Context wiring
// (core.Force.RunContext), stall watchdogs and graceful shutdowns use
// it; the Run boundary returns external poisons as errors instead of
// re-panicking them.
func (c *Cell) PoisonExternal(err error) bool { return c.PoisonCause(err, CauseExternal) }

// PoisonCause is Poison with an explicit cause.  First caller wins,
// whatever its cause — the force reports its FIRST termination reason.
func (c *Cell) PoisonCause(v any, cause Cause) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	if c.flag.Load() {
		c.mu.Unlock()
		return false
	}
	c.val = v
	c.cause = cause
	c.flag.Store(true)
	close(c.ch)
	subs := make([]func(), 0, len(c.subs))
	for _, fn := range c.subs {
		subs = append(subs, fn)
	}
	c.mu.Unlock()
	// Each hook runs in its own goroutine: hooks take primitive locks
	// (condition-variable broadcasts), and a primitive's lock can be
	// held by a process whose own wake depends on a *different* hook —
	// a barrier section parked in an asynchronous variable, say.
	// Sequential dispatch could then deadlock the abort protocol on
	// hook ordering; concurrent dispatch cannot.
	for _, fn := range subs {
		go fn()
	}
	return true
}

// Poisoned reports whether the cell is poisoned.  Lock-free; this is the
// check on every hot wait path.
func (c *Cell) Poisoned() bool {
	return c != nil && c.flag.Load()
}

// Value returns the first failure's panic value (nil when unpoisoned).
func (c *Cell) Value() any {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val
}

// Cause returns why the cell was poisoned (CauseNone when unpoisoned).
func (c *Cell) Cause() Cause {
	if c == nil {
		return CauseNone
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cause
}

// Err returns the first failure as an error (nil when unpoisoned).
func (c *Cell) Err() error {
	if !c.Poisoned() {
		return nil
	}
	return AsError(c.Value())
}

// Done returns the wake channel: closed when the cell is poisoned,
// recreated by Reset.  A nil cell returns a nil channel (blocks forever
// in a select — the correct degenerate behaviour).
func (c *Cell) Done() <-chan struct{} {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	ch := c.ch
	c.mu.Unlock()
	return ch
}

// Check panics with Abort if the cell is poisoned; otherwise (and on a
// nil cell) it is a single atomic load.
func (c *Cell) Check() {
	if c.Poisoned() {
		panic(Abort{Err: c.Err()})
	}
}

// Subscribe registers a hook run once per poisoning.  Hooks wake
// primitives that park on their own condition variables and cannot
// select on Done; each hook runs on its own goroutine (see Poison).
// Subscribing while the cell is ALREADY poisoned still registers the
// hook (it also fires once right away): the registration must survive
// a Reset, or a primitive bound during the poisoned window would be
// deaf to every later poisoning — a silent reintroduction of the hang
// this package eliminates.  The returned cancel function unregisters
// the hook; primitives with a shorter lifetime than the cell
// (per-construct pools) must call it when retired, or the hook pins
// them for the cell's lifetime.
func (c *Cell) Subscribe(fn func()) (cancel func()) {
	if c == nil {
		return func() {}
	}
	c.mu.Lock()
	poisonedNow := c.flag.Load()
	if c.subs == nil {
		c.subs = map[int]func(){}
	}
	id := c.next
	c.next++
	c.subs[id] = fn
	c.mu.Unlock()
	if poisonedNow {
		go fn()
	}
	return func() {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
	}
}

// SubscribeBroadcast registers the canonical condition-variable wake
// hook: lock-then-unlock mu before broadcasting, so a waiter between
// its poison check and cond.Wait (it holds mu there) cannot miss the
// wakeup.  Shared by every parked primitive (the cond barrier, the
// cond asynchronous variable, both engine pools).  Returns the cancel,
// or a no-op when no cell is wired.
func SubscribeBroadcast(c *Cell, mu sync.Locker, cond *sync.Cond) (cancel func()) {
	if c == nil {
		return func() {}
	}
	return c.Subscribe(func() {
		mu.Lock()
		mu.Unlock() //nolint:staticcheck // empty critical section orders the broadcast
		cond.Broadcast()
	})
}

// Rebind is the SetPoison lifecycle shared by rebindable parked
// primitives: cancel the previous broadcast subscription (if any) and
// take a new one on c.  A nil c just cancels.
func Rebind(cancel func(), c *Cell, mu sync.Locker, cond *sync.Cond) func() {
	if cancel != nil {
		cancel()
	}
	if c == nil {
		return nil
	}
	return SubscribeBroadcast(c, mu, cond)
}

// Reset rearms a poisoned cell for the next run: the failure slot
// clears and a fresh wake channel is installed.  Subscribers persist —
// they belong to primitives whose lifetime is the force's, not the
// run's.  Reset must only be called while no process can block on the
// cell (between runs).  A no-op on an unpoisoned or nil cell.
func (c *Cell) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.flag.Load() {
		c.val = nil
		c.cause = CauseNone
		c.ch = make(chan struct{})
		c.flag.Store(false)
	}
	c.mu.Unlock()
}

// The shared wait policy: a bounded yield-spiced spin catches fast
// releases under real parallelism, after which the waiter parks in
// escalating sleeps — on an oversubscribed machine (more processes than
// CPUs, the 1989 normality and the CI box's too) parked waiters leave
// the scheduler to the processes that still owe progress instead of
// cycling through the run queue, and a poisoned waiter wakes within one
// park interval.
const (
	spinBudget = 256
	yieldEvery = 8
	parkFloor  = 5 * time.Microsecond
	parkCeil   = 200 * time.Microsecond
	relayCeil  = 20 * time.Microsecond
)

// Wait blocks until pred reports true, spinning briefly and then
// parking, and panics with Abort if c is poisoned first.  pred must be
// side-effect-free until it returns true (it is re-evaluated
// arbitrarily often); a pred that acquires a resource on success (a
// TryLock) is fine, because Wait returns immediately on the first true.
func Wait(c *Cell, pred func() bool) { waitCeil(c, pred, parkCeil) }

// WaitRelay is Wait with a much shorter park ceiling, for waits whose
// release is a sequential handoff (the two-lock barrier's BARWOT
// relay, an asynchronous variable's E/F pair): each hop of a relay
// chain pays the waiter's current park interval as wake latency, so a
// long park would multiply down the whole chain.
func WaitRelay(c *Cell, pred func() bool) { waitCeil(c, pred, relayCeil) }

func waitCeil(c *Cell, pred func() bool, ceil time.Duration) {
	for i := 0; i < spinBudget; i++ {
		if pred() {
			return
		}
		c.Check()
		if i%yieldEvery == yieldEvery-1 {
			runtime.Gosched()
		}
	}
	d := parkFloor
	for {
		if pred() {
			return
		}
		c.Check()
		time.Sleep(d)
		if d < ceil {
			d *= 2
		}
	}
}
