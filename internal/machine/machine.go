// Package machine models the machine-dependent layer of the Force
// implementation (paper §4.1): the small set of primitives — locks, shared
// memory designation, asynchronous-variable support, process creation and
// termination — that differed across the six multiprocessors the Force was
// ported to, and that the entire machine-independent layer is built on.
//
// A Profile bundles one machine's choices.  Porting the Force meant
// rewriting only these; correspondingly, every higher-level package in this
// repository takes its lock factory, async-variable implementation, memory
// policy and creation model from a Profile, and the conformance suite runs
// the same programs across all profiles (experiment T1).
//
// The historical profiles are reconstructions from the paper's text; where
// the paper is silent (e.g. the Flex/32 creation model) the choice is
// documented on the profile and in DESIGN.md.  Creation costs are scaled
// stand-ins preserving the paper's ordering — "the standard UNIX fork/join
// process control model ... has a large process creation and context
// switching cost", while on the HEP "one can create processes with a
// subroutine call" — not measured 1989 values.
package machine

import (
	"fmt"
	"time"

	"repro/internal/asyncvar"
	"repro/internal/lock"
	"repro/internal/shm"
)

// CreationModel is how a machine created the force of processes (§4.1.1).
type CreationModel int

const (
	// ForkCopy is the standard UNIX fork/join model: "a complete copy of
	// the data and stack is produced for each forked process" (Encore,
	// Sequent).  Creation is expensive, which "prevents fine grained
	// parallelism, unless the parallelism is not enclosed inside the
	// program structure".
	ForkCopy CreationModel = iota
	// ForkSharedData is the Alliant variation: "all data segments are
	// shared and only the stack is considered private".
	ForkSharedData
	// CreateCall is the HEP model: "one can create processes with a
	// subroutine call", executed by a new process in parallel with the
	// caller; a return terminates it independently.
	CreateCall
)

// String returns the model's short name.
func (m CreationModel) String() string {
	switch m {
	case ForkCopy:
		return "fork-copy"
	case ForkSharedData:
		return "fork-shared-data"
	case CreateCall:
		return "create-call"
	default:
		return fmt.Sprintf("machine.CreationModel(%d)", int(m))
	}
}

// Profile is one machine's machine-dependent macro set.
type Profile struct {
	// Name is the canonical lower-case machine name.
	Name string
	// Description summarizes the historical machine.
	Description string
	// Lock is the machine's generic lock mechanism (§4.1.3).
	Lock lock.Kind
	// Async selects the asynchronous-variable realization: hardware
	// full/empty on the HEP, the two-lock scheme elsewhere (§4.2).
	Async asyncvar.Impl
	// Creation is the process-creation model (§4.1.1).
	Creation CreationModel
	// CreationCost is the simulated per-process creation overhead; the
	// Force driver pays it once per process at startup.
	CreationCost time.Duration
	// ShmPolicy is the shared-memory designation mechanism (§4.1.2).
	ShmPolicy shm.Policy
	// PageSize is the sharing granularity for the page-based policies.
	PageSize int
	// ScarceLocks records the paper's caveat that "in some machines,
	// locks may be scarce resources"; profiles with the flag set keep
	// lock-hungry programs honest in the conformance report.
	ScarceLocks bool
	// Hardware full/empty support is implied by Async == Channel.
}

// LockFactory returns the define_lock constructor for this machine.
func (p Profile) LockFactory() func() lock.Lock { return lock.Factory(p.Lock) }

// NewLock creates one lock using the machine's mechanism.
func (p Profile) NewLock() lock.Lock { return lock.New(p.Lock) }

// NewArena creates a shared-memory arena under the machine's policy; base
// is the simulated load address.
func (p Profile) NewArena(base int) *shm.Arena {
	return shm.NewArena(p.ShmPolicy, p.PageSize, base)
}

// NewAsync creates an asynchronous variable using the machine's
// realization.  (A free function because Go methods cannot introduce type
// parameters.)
func NewAsync[T any](p Profile) asyncvar.V[T] {
	return asyncvar.New[T](p.Async, p.LockFactory())
}

// PayCreationCost busy-waits for the profile's per-process creation
// overhead.  A busy wait, not a sleep, so that sub-millisecond costs
// remain meaningful under coarse timer granularity and benchmark shapes
// stay deterministic.
func (p Profile) PayCreationCost() {
	if p.CreationCost <= 0 {
		return
	}
	deadline := time.Now().Add(p.CreationCost)
	for time.Now().Before(deadline) {
	}
}

// The historical profiles.  Creation costs keep the paper's ordering
// (fork-copy ≫ fork-shared-data ≫ create-call) at magnitudes small enough
// for fast tests.
var (
	// HEP: Denelcor HEP — hardware full/empty bit on every memory cell,
	// process creation by subroutine call, compile-time sharing through
	// COMMON.
	HEP = Profile{
		Name:         "hep",
		Description:  "Denelcor HEP: hardware full/empty memory, create-call processes, compile-time sharing",
		Lock:         lock.TTAS, // generic locks synthesized over F/E cells; spin-class behaviour
		Async:        asyncvar.Channel,
		Creation:     CreateCall,
		CreationCost: 2 * time.Microsecond,
		ShmPolicy:    shm.CompileTime,
		PageSize:     1024,
	}
	// Flex32: Flexible Computer Flex/32 — combined spin-then-system-call
	// locks, compile-time sharing.  The paper does not state its creation
	// model; we use fork-copy (it ran a UNIX derivative).
	Flex32 = Profile{
		Name:         "flex32",
		Description:  "Flex/32: combined locks, compile-time sharing, fork-style creation (model choice documented)",
		Lock:         lock.Combined,
		Async:        asyncvar.TwoLock,
		Creation:     ForkCopy,
		CreationCost: 150 * time.Microsecond,
		ShmPolicy:    shm.CompileTime,
		PageSize:     4096,
	}
	// Encore: Encore Multimax — test&set spin locks, UNIX fork/join,
	// run-time shared pages padded at both ends.
	Encore = Profile{
		Name:         "encore",
		Description:  "Encore Multimax: test&set spin locks, fork/join creation, run-time padded shared pages",
		Lock:         lock.TAS,
		Async:        asyncvar.TwoLock,
		Creation:     ForkCopy,
		CreationCost: 200 * time.Microsecond,
		ShmPolicy:    shm.RunTimePadded,
		PageSize:     4096,
	}
	// Sequent: Sequent Balance — test&set spin locks, UNIX fork/join,
	// link-time sharing via the two-run startup protocol.
	Sequent = Profile{
		Name:         "sequent",
		Description:  "Sequent Balance: test&set spin locks, fork/join creation, link-time sharing (two-pass)",
		Lock:         lock.TAS,
		Async:        asyncvar.TwoLock,
		Creation:     ForkCopy,
		CreationCost: 200 * time.Microsecond,
		ShmPolicy:    shm.LinkTime,
		PageSize:     4096,
	}
	// Alliant: Alliant FX/8 — fork with shared data segments and private
	// stacks; sharing must start at a page boundary.
	Alliant = Profile{
		Name:         "alliant",
		Description:  "Alliant FX/8: shared-data fork, page-start run-time sharing",
		Lock:         lock.TTAS,
		Async:        asyncvar.TwoLock,
		Creation:     ForkSharedData,
		CreationCost: 60 * time.Microsecond,
		ShmPolicy:    shm.RunTimePageStart,
		PageSize:     4096,
	}
	// Cray2: Cray-2 — operating-system locks ("the operating system
	// handles a list of locked processes in cooperation with the
	// scheduler"), scarce lock resources.
	Cray2 = Profile{
		Name:         "cray2",
		Description:  "Cray-2: system-call locks (scarce), compile-time sharing, fork-style creation",
		Lock:         lock.System,
		Async:        asyncvar.TwoLock,
		Creation:     ForkCopy,
		CreationCost: 120 * time.Microsecond,
		ShmPolicy:    shm.CompileTime,
		PageSize:     4096,
		ScarceLocks:  true,
	}
	// Native is the modern no-simulation profile used by default: Go
	// primitives, zero creation cost.
	Native = Profile{
		Name:         "native",
		Description:  "native Go: sync.Mutex locks, channel async vars, free creation",
		Lock:         lock.System,
		Async:        asyncvar.Channel,
		Creation:     CreateCall,
		CreationCost: 0,
		ShmPolicy:    shm.RunTimePadded,
		PageSize:     4096,
	}
)

// All returns every profile, Native last, in the order the paper lists the
// machines.
func All() []Profile {
	return []Profile{HEP, Flex32, Encore, Sequent, Alliant, Cray2, Native}
}

// Historical returns the six 1989 machines, without Native.
func Historical() []Profile {
	return []Profile{HEP, Flex32, Encore, Sequent, Alliant, Cray2}
}

// ByName looks a profile up by its canonical name.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("machine: unknown machine %q", name)
}
