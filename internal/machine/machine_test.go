package machine

import (
	"testing"
	"time"

	"repro/internal/asyncvar"
	"repro/internal/lock"
	"repro/internal/shm"
)

func TestAllProfilesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All() {
		if p.Name == "" || p.Description == "" {
			t.Errorf("profile %+v missing name or description", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
		if p.PageSize <= 0 {
			t.Errorf("%s: page size %d", p.Name, p.PageSize)
		}
		if p.CreationCost < 0 {
			t.Errorf("%s: negative creation cost", p.Name)
		}
	}
	if len(All()) != 7 {
		t.Errorf("All() has %d profiles, want 7 (six machines + native)", len(All()))
	}
	if len(Historical()) != 6 {
		t.Errorf("Historical() has %d profiles, want the paper's six", len(Historical()))
	}
	for _, p := range Historical() {
		if p.Name == "native" {
			t.Error("Historical() contains native")
		}
	}
}

func TestByName(t *testing.T) {
	for _, p := range All() {
		got, err := ByName(p.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", p.Name, err)
		}
		if got.Name != p.Name {
			t.Errorf("ByName(%q).Name = %q", p.Name, got.Name)
		}
	}
	if _, err := ByName("vax"); err == nil {
		t.Error("ByName(vax) succeeded")
	}
}

func TestPaperAssignments(t *testing.T) {
	// §4.1.3 lock categories.
	if Sequent.Lock != lock.TAS || Encore.Lock != lock.TAS {
		t.Error("Sequent/Encore must use test&set software locks")
	}
	if Cray2.Lock != lock.System {
		t.Error("Cray-2 must use system call locks")
	}
	if Flex32.Lock != lock.Combined {
		t.Error("Flex/32 must use combined locks")
	}
	// §4.2: only the HEP has hardware full/empty.
	for _, p := range Historical() {
		wantChannel := p.Name == "hep"
		if (p.Async == asyncvar.Channel) != wantChannel {
			t.Errorf("%s: async impl %v", p.Name, p.Async)
		}
	}
	// §4.1.2 sharing mechanisms.
	if HEP.ShmPolicy != shm.CompileTime || Flex32.ShmPolicy != shm.CompileTime {
		t.Error("HEP and Flex/32 share at compile time")
	}
	if Sequent.ShmPolicy != shm.LinkTime {
		t.Error("Sequent shares at link time")
	}
	if Encore.ShmPolicy != shm.RunTimePadded {
		t.Error("Encore shares at run time with padding")
	}
	if Alliant.ShmPolicy != shm.RunTimePageStart {
		t.Error("Alliant sharing must start at a page boundary")
	}
	// §4.1.1 creation models.
	if HEP.Creation != CreateCall {
		t.Error("HEP creates processes by subroutine call")
	}
	if Encore.Creation != ForkCopy || Sequent.Creation != ForkCopy {
		t.Error("Encore and Sequent use the UNIX fork/join model")
	}
	if Alliant.Creation != ForkSharedData {
		t.Error("Alliant uses the shared-data fork variation")
	}
	// Paper's cost ordering: fork-copy ≫ shared-data fork ≫ create-call.
	if !(Encore.CreationCost > Alliant.CreationCost && Alliant.CreationCost > HEP.CreationCost) {
		t.Error("creation costs do not preserve the paper's ordering")
	}
	if !Cray2.ScarceLocks {
		t.Error("Cray-2 locks are a scarce resource in the paper")
	}
}

func TestCreationModelString(t *testing.T) {
	cases := map[CreationModel]string{
		ForkCopy:       "fork-copy",
		ForkSharedData: "fork-shared-data",
		CreateCall:     "create-call",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
	if got := CreationModel(9).String(); got != "machine.CreationModel(9)" {
		t.Errorf("unknown model String() = %q", got)
	}
}

func TestLockFactoryProducesMachineKind(t *testing.T) {
	l := Cray2.NewLock()
	if _, ok := l.(*lock.SystemLock); !ok {
		t.Errorf("Cray2.NewLock() = %T, want *lock.SystemLock", l)
	}
	f := Sequent.LockFactory()
	if _, ok := f().(*lock.TASLock); !ok {
		t.Error("Sequent.LockFactory() does not produce TAS locks")
	}
}

func TestNewArena(t *testing.T) {
	a := Encore.NewArena(100)
	if a.Policy() != shm.RunTimePadded || a.PageSize() != 4096 {
		t.Errorf("Encore arena: policy %v page %d", a.Policy(), a.PageSize())
	}
}

func TestNewAsyncRoundTrips(t *testing.T) {
	for _, p := range All() {
		v := NewAsync[int](p)
		v.Produce(13)
		if got := v.Consume(); got != 13 {
			t.Errorf("%s: async round trip = %d", p.Name, got)
		}
	}
}

func TestPayCreationCost(t *testing.T) {
	start := time.Now()
	Native.PayCreationCost() // zero cost: returns immediately
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Errorf("zero-cost creation took %v", elapsed)
	}
	p := Profile{CreationCost: 200 * time.Microsecond}
	start = time.Now()
	p.PayCreationCost()
	if elapsed := time.Since(start); elapsed < 200*time.Microsecond {
		t.Errorf("creation cost %v paid in %v", p.CreationCost, elapsed)
	}
}
