package lock

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		TAS:      "tas",
		TTAS:     "ttas",
		Ticket:   "ticket",
		System:   "system",
		Combined: "combined",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, s)
		}
	}
	if got := Kind(99).String(); got != "lock.Kind(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded, want error")
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(unknown) did not panic")
		}
	}()
	New(Kind(42))
}

func TestBasicLockUnlock(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			l := New(k)
			l.Lock()
			l.Unlock()
			l.Lock()
			l.Unlock()
		})
	}
}

// TestMutualExclusion increments a plain int from many goroutines under
// each lock kind; any lost update means mutual exclusion was violated.
func TestMutualExclusion(t *testing.T) {
	const (
		goroutines = 8
		increments = 2000
	)
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			l := New(k)
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < increments; i++ {
						l.Lock()
						counter++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if want := goroutines * increments; counter != want {
				t.Errorf("counter = %d, want %d", counter, want)
			}
		})
	}
}

func TestTryLock(t *testing.T) {
	for _, k := range []Kind{TAS, TTAS, System, Combined} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			l := New(k).(TryLocker)
			if !l.TryLock() {
				t.Fatal("TryLock on fresh lock failed")
			}
			if l.TryLock() {
				t.Fatal("TryLock on held lock succeeded")
			}
			l.Unlock()
			if !l.TryLock() {
				t.Fatal("TryLock after Unlock failed")
			}
			l.Unlock()
		})
	}
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	for _, k := range []Kind{TAS, TTAS, Ticket} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("Unlock of unlocked lock did not panic")
				}
			}()
			New(k).Unlock()
		})
	}
}

func TestCombinedLockBudgets(t *testing.T) {
	for _, budget := range []int{-1, 0, 1, 1000} {
		l := NewCombinedLock(budget)
		l.Lock()
		done := make(chan struct{})
		go func() {
			l.Lock()
			l.Unlock()
			close(done)
		}()
		l.Unlock()
		<-done
	}
}

// TestTicketFIFO checks that a ticket lock grants the lock in arrival
// order: a holder releases, and the earliest-arrived waiter must win.
func TestTicketFIFO(t *testing.T) {
	l := new(TicketLock)
	l.Lock()

	const waiters = 4
	order := make(chan int, waiters)
	arrived := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		go func() {
			// Serialize arrival: ticket i must be drawn before
			// ticket i+1 launches.
			arrived <- struct{}{}
			l.Lock()
			order <- i
			l.Unlock()
		}()
		<-arrived
		// Wait until the goroutine has actually drawn its ticket.
		for l.next.Load() != uint64(i+2) {
			runtime.Gosched()
		}
	}
	l.Unlock()
	for i := 0; i < waiters; i++ {
		if got := <-order; got != i {
			t.Fatalf("ticket order: got %d at position %d", got, i)
		}
	}
}

func TestSetGetIsStable(t *testing.T) {
	s := NewSet(Factory(TAS))
	a := s.Get("alpha")
	b := s.Get("alpha")
	if a != b {
		t.Error("Set.Get returned different locks for the same name")
	}
	if s.Get("beta") == a {
		t.Error("Set.Get returned the same lock for different names")
	}
}

func TestSetNilFactoryDefaults(t *testing.T) {
	s := NewSet(nil)
	l := s.Get("x")
	if _, ok := l.(*SystemLock); !ok {
		t.Errorf("nil-factory Set produced %T, want *SystemLock", l)
	}
}

func TestSetWithMutualExclusion(t *testing.T) {
	s := NewSet(Factory(TTAS))
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.With("ctr", func() { counter++ })
			}
		}()
	}
	wg.Wait()
	if counter != 8*500 {
		t.Errorf("counter = %d, want %d", counter, 8*500)
	}
}

func TestSetNames(t *testing.T) {
	s := NewSet(Factory(System))
	s.Get("a")
	s.Get("b")
	s.Get("a")
	names := s.Names()
	if len(names) != 2 {
		t.Fatalf("Names() = %v, want 2 entries", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Errorf("Names() = %v, want {a,b}", names)
	}
}

// TestConcurrentSetCreation races many goroutines creating the same named
// lock; all must observe the same instance.
func TestConcurrentSetCreation(t *testing.T) {
	s := NewSet(Factory(TAS))
	const n = 16
	results := make(chan Lock, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- s.Get("shared")
		}()
	}
	wg.Wait()
	close(results)
	first := <-results
	for l := range results {
		if l != first {
			t.Fatal("concurrent Get returned different lock instances")
		}
	}
}

// Property: for any interleaving of k workers each doing m guarded
// increments under any lock kind, the final count is k*m.
func TestQuickMutualExclusion(t *testing.T) {
	prop := func(kindIdx uint8, workers, incs uint8) bool {
		kinds := Kinds()
		k := kinds[int(kindIdx)%len(kinds)]
		w := int(workers)%6 + 1
		m := int(incs)%200 + 1
		l := New(k)
		counter := 0
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < m; i++ {
					l.Lock()
					counter++
					l.Unlock()
				}
			}()
		}
		wg.Wait()
		return counter == w*m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
