// Package lock provides the generic lock mechanisms of the Force's
// machine-dependent layer (paper §4.1.3).
//
// The Force implementation uses only four low-level lock macros —
// define_lock, init_lock, lock and unlock — and builds every higher-level
// synchronization construct on top of them.  The paper classifies the lock
// support found on its six host machines into three categories:
//
//   - software locks: spinning with test&set on shared variables
//     (Sequent, Encore)
//   - system call locks: the operating system parks waiters in cooperation
//     with the scheduler (Cray)
//   - combined locks: spin for a limited time, then make a system call
//     (Flex)
//
// This package implements each category (plus a ticket lock used as an
// ablation and the TTAS refinement of test&set) behind a single Lock
// interface so that barriers, selfscheduled loops, critical sections and
// asynchronous variables can be built once and retargeted by swapping the
// lock constructor, exactly as the Force retargeted machines by swapping
// its low-level macro file.
package lock

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/poison"
)

// Lock is the generic lock mechanism underlying every Force synchronization
// construct.  The zero value of each implementation is an initialized,
// unlocked lock (the init_lock macro of the paper corresponds to Go zero
// initialization).
type Lock interface {
	// Lock acquires the lock, blocking until it is available.
	Lock()
	// Unlock releases the lock.  Unlocking an unheld lock is a programming
	// error; implementations may panic or silently corrupt state, exactly
	// as the 1989 primitives did.
	Unlock()
}

// TryLocker is implemented by locks that support a non-blocking acquire.
type TryLocker interface {
	Lock
	// TryLock attempts the acquire once and reports whether it succeeded.
	TryLock() bool
}

// Kind names a lock implementation.  It is the unit of machine dependence:
// a machine profile selects a Kind and every construct built on locks
// follows.
type Kind int

const (
	// TAS is a test-and-set spin lock: the "software lock" of Sequent and
	// Encore.  Every acquire attempt performs a read-modify-write.
	TAS Kind = iota
	// TTAS is test-and-test-and-set: spins reading until the lock looks
	// free, then attempts the atomic swap.  Reduces coherence traffic.
	TTAS
	// Ticket is a FIFO ticket lock (ablation; not in the paper's taxonomy
	// but standard in later shared-memory practice).
	Ticket
	// System models the "system call lock" of the Cray-2: waiters are
	// parked by the scheduler rather than spinning.  Implemented with
	// sync.Mutex, whose slow path parks goroutines in the Go runtime.
	System
	// Combined models the Flex/32 lock: spin for a bounded number of
	// attempts, then fall back to parking.
	Combined
)

var kindNames = map[Kind]string{
	TAS:      "tas",
	TTAS:     "ttas",
	Ticket:   "ticket",
	System:   "system",
	Combined: "combined",
}

// String returns the short name of the kind ("tas", "ttas", "ticket",
// "system", "combined").
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("lock.Kind(%d)", int(k))
}

// ParseKind converts a short name into a Kind.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("lock: unknown kind %q", s)
}

// Kinds lists all implemented kinds in presentation order.
func Kinds() []Kind { return []Kind{TAS, TTAS, Ticket, System, Combined} }

// New returns a fresh, unlocked lock of the given kind.
func New(k Kind) Lock {
	switch k {
	case TAS:
		return new(TASLock)
	case TTAS:
		return new(TTASLock)
	case Ticket:
		return new(TicketLock)
	case System:
		return new(SystemLock)
	case Combined:
		return NewCombinedLock(defaultSpinBudget)
	default:
		panic(fmt.Sprintf("lock: unknown kind %d", int(k)))
	}
}

// Factory returns a constructor for the given kind, used by machine
// profiles as the define_lock macro.
func Factory(k Kind) func() Lock {
	return func() Lock { return New(k) }
}

// Acquire acquires l while observing the poison cell: when the force is
// poisoned before the acquire succeeds, Acquire unwinds with
// poison.Abort instead of blocking forever.  It is the acquire used
// wherever a lock *encodes a condition* — the two-lock barrier's
// BARWIN/BARWOT relay and the two-lock asynchronous variable's E/F pair
// block precisely until another process makes progress, so a dead peer
// turns the plain Lock() into a permanent hang.  With a nil cell (or a
// lock without TryLock) Acquire degenerates to Lock().
//
// Plain mutual-exclusion locks (critical sections, accumulator locks)
// do not need Acquire: their holders release on unwind, so waiters
// drain naturally and observe poison at the next construct.
func Acquire(l Lock, c *poison.Cell) {
	if c == nil {
		l.Lock()
		return
	}
	tl, ok := l.(TryLocker)
	if !ok {
		l.Lock()
		return
	}
	if tl.TryLock() {
		return
	}
	// Relay-tuned parking: lock-encoded conditions release by
	// sequential handoff, so a waiter's park interval is pure wake
	// latency on every hop of the chain.
	poison.WaitRelay(c, tl.TryLock)
}

// spinYield is called inside spin loops.  Gosched keeps spinning goroutines
// from starving the holder when GOMAXPROCS is smaller than the number of
// spinners — the same reason 1989 spin locks backed off on bus traffic.
func spinYield(iter int) {
	if iter%spinsBeforeYield == spinsBeforeYield-1 {
		runtime.Gosched()
	}
}

const (
	spinsBeforeYield  = 16
	defaultSpinBudget = 128
)

// TASLock is a test-and-set spin lock on a shared word, the software lock
// of the Sequent Balance and Encore Multimax ports (§4.1.3).
type TASLock struct {
	state atomic.Int32
}

var _ TryLocker = (*TASLock)(nil)

// Lock spins performing atomic swaps until the lock is acquired.
func (l *TASLock) Lock() {
	for i := 0; !l.TryLock(); i++ {
		spinYield(i)
	}
}

// TryLock performs a single test-and-set attempt.
func (l *TASLock) TryLock() bool {
	return l.state.Swap(1) == 0
}

// Unlock releases the lock.
func (l *TASLock) Unlock() {
	if l.state.Swap(0) == 0 {
		panic("lock: unlock of unlocked TASLock")
	}
}

// TTASLock is a test-and-test-and-set spin lock: it spins on a plain read
// and only issues the atomic swap when the lock appears free.
type TTASLock struct {
	state atomic.Int32
}

var _ TryLocker = (*TTASLock)(nil)

// Lock spins reading until the word looks free, then swaps.
func (l *TTASLock) Lock() {
	for i := 0; ; i++ {
		if l.state.Load() == 0 && l.state.Swap(1) == 0 {
			return
		}
		spinYield(i)
	}
}

// TryLock performs one test-then-set attempt.
func (l *TTASLock) TryLock() bool {
	return l.state.Load() == 0 && l.state.Swap(1) == 0
}

// Unlock releases the lock.
func (l *TTASLock) Unlock() {
	if l.state.Swap(0) == 0 {
		panic("lock: unlock of unlocked TTASLock")
	}
}

// TicketLock is a FIFO spin lock: arrivals take a ticket and spin until the
// now-serving counter reaches it.  Provides fairness the TAS variants lack.
type TicketLock struct {
	next    atomic.Uint64
	serving atomic.Uint64
}

var _ TryLocker = (*TicketLock)(nil)

// Lock takes the next ticket and waits for it to be served.
func (l *TicketLock) Lock() {
	t := l.next.Add(1) - 1
	for i := 0; l.serving.Load() != t; i++ {
		spinYield(i)
	}
}

// TryLock acquires only when the lock is free: it takes the currently
// served ticket iff no other ticket is outstanding.  A failed CAS means
// some ticket holder is ahead, i.e. the lock is held or contended.
func (l *TicketLock) TryLock() bool {
	s := l.serving.Load()
	return l.next.CompareAndSwap(s, s+1)
}

// Unlock advances the serving counter, admitting the next ticket holder.
func (l *TicketLock) Unlock() {
	s := l.serving.Load()
	if l.next.Load() == s {
		panic("lock: unlock of unlocked TicketLock")
	}
	l.serving.Store(s + 1)
}

// SystemLock is the "system call" lock category: acquisition failures park
// the caller with the scheduler.  sync.Mutex provides exactly this shape in
// the Go runtime (fast-path CAS, slow-path park).
type SystemLock struct {
	mu sync.Mutex
}

var _ TryLocker = (*SystemLock)(nil)

// Lock acquires the underlying mutex.
func (l *SystemLock) Lock() { l.mu.Lock() }

// Unlock releases the underlying mutex.
func (l *SystemLock) Unlock() { l.mu.Unlock() }

// TryLock attempts a non-blocking acquire.
func (l *SystemLock) TryLock() bool { return l.mu.TryLock() }

// CombinedLock is the Flex/32 category: spin for a bounded budget, then
// fall back to a parking acquire.  The spin phase wins when hold times are
// short; the parking phase bounds wasted cycles when they are long.
type CombinedLock struct {
	budget int
	mu     sync.Mutex
}

var _ TryLocker = (*CombinedLock)(nil)

// NewCombinedLock returns a combined lock that spins for budget attempts
// before parking.  A budget of zero degenerates to a pure system lock.
func NewCombinedLock(budget int) *CombinedLock {
	if budget < 0 {
		budget = 0
	}
	return &CombinedLock{budget: budget}
}

// Lock spins up to the budget, then parks on the mutex.
func (l *CombinedLock) Lock() {
	for i := 0; i < l.budget; i++ {
		if l.mu.TryLock() {
			return
		}
		spinYield(i)
	}
	l.mu.Lock()
}

// TryLock attempts a single non-blocking acquire.
func (l *CombinedLock) TryLock() bool { return l.mu.TryLock() }

// Unlock releases the lock.
func (l *CombinedLock) Unlock() { l.mu.Unlock() }

// Set is a named collection of locks, mirroring the Force's named critical
// sections and lock variables: define_lock(name) creates, lock(name) /
// unlock(name) operate.  Lookup is lock-free after first use of a name via
// sync.Map; creation races resolve to a single winner.
type Set struct {
	factory func() Lock
	locks   sync.Map // string -> Lock
}

// NewSet returns a Set whose locks are created by the given factory.
func NewSet(factory func() Lock) *Set {
	if factory == nil {
		factory = Factory(System)
	}
	return &Set{factory: factory}
}

// Get returns the lock with the given name, creating it on first use.
func (s *Set) Get(name string) Lock {
	if l, ok := s.locks.Load(name); ok {
		return l.(Lock)
	}
	l, _ := s.locks.LoadOrStore(name, s.factory())
	return l.(Lock)
}

// With runs fn while holding the named lock.
func (s *Set) With(name string, fn func()) {
	l := s.Get(name)
	l.Lock()
	defer l.Unlock()
	fn()
}

// Names returns the names of all locks created so far, in no particular
// order.
func (s *Set) Names() []string {
	var names []string
	s.locks.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	return names
}
