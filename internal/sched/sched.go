// Package sched implements the Force's work-distribution mechanisms for
// DOALL loops (paper §3.3, §4.2).
//
// The paper distinguishes two scheduling disciplines:
//
//   - prescheduled: indices are distributed at compile time as a pure
//     function of the process id and the number of processes — "completely
//     machine independent, since only the number of executing processes is
//     needed to distribute the index values among processes";
//   - selfscheduled: a shared loop index, protected by a lock, is advanced
//     at run time by processes looking for more work — the paper's
//     expansion listing shows the lock(LOOP100)/K = K_shared/unlock
//     protocol exactly.
//
// This package provides both, plus the chunked and guided refinements that
// later systems (and the Force user's manual) added, plus the Stealing
// discipline built on internal/engine's per-process work-stealing deques,
// behind one Scheduler interface.  Iteration spaces are Fortran DO ranges (Start, Last, Incr
// with either sign); schedulers hand out *ordinals* 0..Count()-1 and Range
// maps ordinals back to index values, which keeps every discipline correct
// for negative strides and empty loops.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/poison"
)

// Range describes a Fortran-style loop header: DO I = Start, Last, Incr.
// Incr must be non-zero.  The range is empty when the start already lies
// beyond the limit in the direction of travel, matching Fortran trip-count
// semantics.
type Range struct {
	Start, Last, Incr int
}

// Seq returns the unit-stride range [0, n).
func Seq(n int) Range { return Range{Start: 0, Last: n - 1, Incr: 1} }

// Count returns the trip count of the range.
func (r Range) Count() int {
	if r.Incr == 0 {
		panic("sched: Range with zero increment")
	}
	var span int
	if r.Incr > 0 {
		span = r.Last - r.Start
	} else {
		span = r.Start - r.Last
	}
	if span < 0 {
		return 0
	}
	step := r.Incr
	if step < 0 {
		step = -step
	}
	return span/step + 1
}

// Index maps an ordinal k in [0, Count()) to its index value.
func (r Range) Index(k int) int { return r.Start + k*r.Incr }

// String renders the range as a loop header fragment.
func (r Range) String() string {
	return fmt.Sprintf("%d, %d, %d", r.Start, r.Last, r.Incr)
}

// Scheduler distributes the ordinals of one loop execution across the
// force.  Next returns the half-open ordinal interval [lo, hi) that pid
// should execute next; ok is false when pid's work is exhausted.  A
// Scheduler is valid for a single loop execution (one episode).
type Scheduler interface {
	Next(pid int) (lo, hi int, ok bool)
}

// Kind names a scheduling discipline.
type Kind int

const (
	// PreschedBlock splits the ordinal space into np contiguous blocks,
	// block p going to process p.
	PreschedBlock Kind = iota
	// PreschedCyclic deals ordinals round-robin: process p executes
	// ordinals p, p+np, p+2np, ... — the distribution the paper's
	// prescheduled DO loop uses.
	PreschedCyclic
	// SelfLock is the paper's selfscheduled loop: a shared index guarded
	// by a loop lock, one iteration per acquisition.
	SelfLock
	// SelfAtomic replaces the lock with a fetch-and-add (ablation: what a
	// machine with hardware atomic add would do).
	SelfAtomic
	// Chunk is selfscheduling with a fixed chunk size > 1, trading load
	// balance for lower acquisition traffic.
	Chunk
	// Guided hands out chunks of remaining/np (minimum 1), shrinking as
	// the loop drains.
	Guided
	// TSS is trapezoid self-scheduling (Tzen & Ni): chunk sizes decrease
	// linearly from n/(2·np) to 1, fixing guided scheduling's oversized
	// first chunks while keeping its small tail.  A post-1989 extension
	// included as an ablation.
	TSS
	// Stealing is the engine-backed discipline: each process owns a
	// Chase-Lev deque seeded with one contiguous block and splits it
	// lazily as it pops; a process that runs dry steals a block from a
	// victim.  Unlike the shared-counter selfscheduled variants there is
	// no central point of contention, so it is the discipline of choice
	// for fine grains at large NP.  A post-1989 extension (Blumofe &
	// Leiserson's work stealing applied to loop scheduling).
	Stealing
)

var kindNames = map[Kind]string{
	PreschedBlock:  "presched-block",
	PreschedCyclic: "presched-cyclic",
	SelfLock:       "selfsched-lock",
	SelfAtomic:     "selfsched-atomic",
	Chunk:          "selfsched-chunk",
	Guided:         "guided",
	TSS:            "tss",
	Stealing:       "stealing",
}

// kindGoNames are the Go identifiers of the kinds, for code generators
// emitting sched.<name> against this package.
var kindGoNames = map[Kind]string{
	PreschedBlock:  "PreschedBlock",
	PreschedCyclic: "PreschedCyclic",
	SelfLock:       "SelfLock",
	SelfAtomic:     "SelfAtomic",
	Chunk:          "Chunk",
	Guided:         "Guided",
	TSS:            "TSS",
	Stealing:       "Stealing",
}

// GoName returns the kind's Go identifier within this package, the form
// internal/codegen emits into generated programs.
func (k Kind) GoName() string {
	if s, ok := kindGoNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// String returns the discipline's short name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("sched.Kind(%d)", int(k))
}

// ParseKind converts a short name into a Kind.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown kind %q", s)
}

// ParseSelfschedKind is ParseKind restricted to the run-time
// (selfscheduled) disciplines — the valid arguments of a -selfsched
// flag.  The prescheduled kinds are rejected rather than accepted:
// PreschedBlock is Kind zero, which the interp and codegen configs
// treat as "unset", so letting it through would silently select the
// default instead of erroring.
func ParseSelfschedKind(s string) (Kind, error) {
	k, err := ParseKind(s)
	if err != nil {
		return 0, err
	}
	if k == PreschedBlock || k == PreschedCyclic {
		return 0, fmt.Errorf("sched: %q is a prescheduled discipline (selfscheduled ones: %s, %s, %s, %s, %s, %s)",
			s, SelfLock, SelfAtomic, Chunk, Guided, TSS, Stealing)
	}
	return k, nil
}

// Kinds lists all disciplines in presentation order.
func Kinds() []Kind {
	return []Kind{PreschedBlock, PreschedCyclic, SelfLock, SelfAtomic, Chunk, Guided, TSS, Stealing}
}

// Config carries the parameters a discipline may need.
type Config struct {
	// ChunkSize applies to Chunk (default 16 when zero) and, as the
	// split grain, to Stealing (default n/(8·np) when zero).
	ChunkSize int
	// LockFactory supplies the loop lock for SelfLock and Guided; nil
	// defaults to system locks.  This is the machine-dependent hook: the
	// paper's selfsched macro "will call generic machine dependent macros
	// for the declaration of shared variables and for synchronization".
	LockFactory func() lock.Lock
}

// New creates a one-episode Scheduler for the given discipline, force size
// and range.
func New(k Kind, np int, r Range, cfg Config) Scheduler {
	if np <= 0 {
		panic(fmt.Sprintf("sched: np = %d, need np >= 1", np))
	}
	n := r.Count()
	switch k {
	case PreschedBlock:
		return &blockSched{np: np, n: n, done: make([]atomic.Bool, np)}
	case PreschedCyclic:
		return &cyclicSched{np: np, n: n, cursors: make([]paddedInt, np)}
	case SelfLock:
		f := cfg.LockFactory
		if f == nil {
			f = lock.Factory(lock.System)
		}
		return &lockSelfSched{n: n, lock: f()}
	case SelfAtomic:
		return &atomicSelfSched{n: n, chunk: 1}
	case Chunk:
		c := cfg.ChunkSize
		if c <= 0 {
			c = 16
		}
		return &atomicSelfSched{n: n, chunk: c}
	case Guided:
		return &guidedSched{np: np, n: n}
	case TSS:
		return newTSSSched(np, n)
	case Stealing:
		return &stealingSched{src: engine.NewSpanSource(np, n, cfg.ChunkSize)}
	default:
		panic(fmt.Sprintf("sched: unknown kind %d", int(k)))
	}
}

// blockSched: contiguous blocks, remainder spread one-per-process over the
// first n%np processes so block sizes differ by at most one.
type blockSched struct {
	np, n int
	done  []atomic.Bool
}

func (s *blockSched) Next(pid int) (int, int, bool) {
	if pid < 0 || pid >= s.np {
		panic(fmt.Sprintf("sched: pid %d out of range [0,%d)", pid, s.np))
	}
	if s.done[pid].Swap(true) {
		return 0, 0, false
	}
	base := s.n / s.np
	rem := s.n % s.np
	lo := pid*base + min(pid, rem)
	size := base
	if pid < rem {
		size++
	}
	if size == 0 {
		return 0, 0, false
	}
	return lo, lo + size, true
}

// cyclicSched deals single ordinals round-robin with no shared mutable
// state: each process advances a private cursor (cache-line padded so
// neighbouring cursors do not false-share).
type cyclicSched struct {
	np, n   int
	cursors []paddedInt
}

type paddedInt struct {
	v int
	_ [56]byte
}

func (s *cyclicSched) Next(pid int) (int, int, bool) {
	if pid < 0 || pid >= s.np {
		panic(fmt.Sprintf("sched: pid %d out of range [0,%d)", pid, s.np))
	}
	k := pid + s.cursors[pid].v*s.np
	if k >= s.n {
		return 0, 0, false
	}
	s.cursors[pid].v++
	return k, k + 1, true
}

// lockSelfSched is the paper's selfscheduled loop: the shared index
// K_shared lives behind the loop lock; each acquisition takes one
// iteration.  The expansion listing's
//
//	lock(LOOP100); K = K_shared; K_shared = K + INCR; unlock(LOOP100)
//
// becomes, on ordinals, a guarded post-increment.
type lockSelfSched struct {
	n      int
	lock   lock.Lock
	kShare int // next ordinal to hand out; guarded by lock
}

func (s *lockSelfSched) Next(pid int) (int, int, bool) {
	s.lock.Lock()
	k := s.kShare
	s.kShare = k + 1
	s.lock.Unlock()
	if k >= s.n {
		return 0, 0, false
	}
	return k, k + 1, true
}

// atomicSelfSched is the fetch-and-add variant, optionally chunked.
type atomicSelfSched struct {
	n     int
	chunk int
	next  atomic.Int64
}

func (s *atomicSelfSched) Next(pid int) (int, int, bool) {
	lo := int(s.next.Add(int64(s.chunk))) - s.chunk
	if lo >= s.n {
		return 0, 0, false
	}
	hi := lo + s.chunk
	if hi > s.n {
		hi = s.n
	}
	return lo, hi, true
}

// guidedSched hands out remaining/np-sized chunks via a CAS loop, shrinking
// geometrically toward single iterations.
type guidedSched struct {
	np, n int
	next  atomic.Int64
}

func (s *guidedSched) Next(pid int) (int, int, bool) {
	for {
		lo := int(s.next.Load())
		if lo >= s.n {
			return 0, 0, false
		}
		size := (s.n - lo + s.np - 1) / s.np
		if size < 1 {
			size = 1
		}
		hi := lo + size
		if hi > s.n {
			hi = s.n
		}
		if s.next.CompareAndSwap(int64(lo), int64(hi)) {
			return lo, hi, true
		}
	}
}

// stealingSched adapts an engine.SpanSource — per-process Chase-Lev
// deques with lazy block splitting — to the Scheduler interface.  The
// ChunkSize config doubles as the split grain (0 selects the source's
// n/(8·np) default).
type stealingSched struct {
	src *engine.SpanSource
}

func (s *stealingSched) Next(pid int) (int, int, bool) {
	sp, ok := s.src.NextSpan(pid)
	return sp.Lo, sp.Hi, ok
}

// tssSched precomputes the trapezoid chunk boundaries at construction —
// first chunk n/(2·np), last chunk 1, linear decrease — and deals chunks
// through one fetch-and-add, so the distribution itself is deterministic
// (which process gets which chunk is not, as with all selfscheduling).
type tssSched struct {
	bounds []int // chunk k covers [bounds[k], bounds[k+1])
	next   atomic.Int64
}

func newTSSSched(np, n int) *tssSched {
	s := &tssSched{}
	first := n / (2 * np)
	if first < 1 {
		first = 1
	}
	// Number of chunks for a linear first..1 trapezoid.
	c := (2*n + first) / (first + 1)
	if c < 1 {
		c = 1
	}
	dec := 0.0
	if c > 1 {
		dec = float64(first-1) / float64(c-1)
	}
	s.bounds = append(s.bounds, 0)
	pos := 0
	size := float64(first)
	for pos < n {
		step := int(size + 0.5)
		if step < 1 {
			step = 1
		}
		pos += step
		if pos > n {
			pos = n
		}
		s.bounds = append(s.bounds, pos)
		size -= dec
	}
	return s
}

func (s *tssSched) Next(pid int) (int, int, bool) {
	k := int(s.next.Add(1)) - 1
	if k >= len(s.bounds)-1 {
		return 0, 0, false
	}
	return s.bounds[k], s.bounds[k+1], true
}

// ForEach is a single-construct driver used by tests, benchmarks, and the
// interpreter's standalone mode: it runs body(pid, index) for every index
// of r, distributed over np goroutines under discipline k.  The core
// runtime package embeds the same loop inside long-lived force processes
// instead.
func ForEach(k Kind, np int, r Range, cfg Config, body func(pid, index int)) {
	s := New(k, np, r, cfg)
	var wg sync.WaitGroup
	for p := 0; p < np; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			Drive(s, pid, r, body)
		}(p)
	}
	wg.Wait()
}

// Drive exhausts scheduler s for one process, translating ordinals to
// index values of r.
func Drive(s Scheduler, pid int, r Range, body func(pid, index int)) {
	DriveWith(nil, s, pid, r, body)
}

// DriveWith is Drive under the fault-containment protocol: between work
// assignments the process checks the poison cell and unwinds with
// poison.Abort when the force has been poisoned, so a loop does not
// keep executing iterations for a run that is already dead.  A nil cell
// degrades to Drive.
func DriveWith(c *poison.Cell, s Scheduler, pid int, r Range, body func(pid, index int)) {
	for {
		c.Check()
		lo, hi, ok := s.Next(pid)
		if !ok {
			return
		}
		for k := lo; k < hi; k++ {
			body(pid, r.Index(k))
		}
	}
}
