package sched

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/lock"
)

func TestRangeCount(t *testing.T) {
	cases := []struct {
		r    Range
		want int
	}{
		{Range{1, 10, 1}, 10},
		{Range{1, 10, 2}, 5},
		{Range{1, 10, 3}, 4},
		{Range{10, 1, -1}, 10},
		{Range{10, 1, -3}, 4},
		{Range{5, 5, 1}, 1},
		{Range{5, 5, -1}, 1},
		{Range{6, 5, 1}, 0},
		{Range{5, 6, -1}, 0},
		{Range{0, -1, 1}, 0},
		{Seq(7), 7},
		{Seq(0), 0},
	}
	for _, c := range cases {
		if got := c.r.Count(); got != c.want {
			t.Errorf("Count(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestRangeZeroIncrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Count with Incr=0 did not panic")
		}
	}()
	Range{1, 10, 0}.Count()
}

func TestRangeIndex(t *testing.T) {
	r := Range{10, 1, -3} // 10, 7, 4, 1
	want := []int{10, 7, 4, 1}
	for k, w := range want {
		if got := r.Index(k); got != w {
			t.Errorf("Index(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestRangeString(t *testing.T) {
	if got := (Range{2, 9, 3}).String(); got != "2, 9, 3" {
		t.Errorf("String() = %q", got)
	}
}

func TestKindStringAndParse(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded")
	}
	if got := Kind(55).String(); got != "sched.Kind(55)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with np=0 did not panic")
		}
	}()
	New(PreschedBlock, 0, Seq(4), Config{})
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with unknown kind did not panic")
		}
	}()
	New(Kind(42), 2, Seq(4), Config{})
}

// collect runs a full parallel loop and returns the multiset of executed
// index values.
func collect(t *testing.T, k Kind, np int, r Range, cfg Config) []int {
	t.Helper()
	var mu sync.Mutex
	var got []int
	ForEach(k, np, r, cfg, func(pid, index int) {
		mu.Lock()
		got = append(got, index)
		mu.Unlock()
	})
	sort.Ints(got)
	return got
}

func expected(r Range) []int {
	n := r.Count()
	out := make([]int, n)
	for k := 0; k < n; k++ {
		out[k] = r.Index(k)
	}
	sort.Ints(out)
	return out
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEveryIndexExactlyOnce is the fundamental DOALL property: every
// discipline executes each index value exactly once, for positive and
// negative strides, empty loops, and np larger than the trip count.
func TestEveryIndexExactlyOnce(t *testing.T) {
	ranges := []Range{
		{1, 100, 1},
		{1, 100, 7},
		{100, 1, -1},
		{50, -50, -13},
		{3, 3, 1},
		{4, 3, 1},   // empty
		{-5, 20, 4}, // negative start
	}
	cfg := Config{ChunkSize: 4, LockFactory: lock.Factory(lock.TTAS)}
	for _, k := range Kinds() {
		for _, np := range []int{1, 2, 3, 8, 150} {
			for _, r := range ranges {
				got := collect(t, k, np, r, cfg)
				want := expected(r)
				if !equal(got, want) {
					t.Errorf("%v np=%d r=%v: got %d indices, want %d (multisets differ)",
						k, np, r, len(got), len(want))
				}
			}
		}
	}
}

// TestPreschedBlockShape verifies block scheduling is contiguous and
// balanced to within one iteration.
func TestPreschedBlockShape(t *testing.T) {
	const np, n = 4, 10
	s := New(PreschedBlock, np, Seq(n), Config{})
	sizes := make([]int, np)
	prevHi := 0
	for pid := 0; pid < np; pid++ {
		lo, hi, ok := s.Next(pid)
		if !ok {
			t.Fatalf("pid %d got no block", pid)
		}
		if lo != prevHi {
			t.Errorf("pid %d block starts at %d, want %d (contiguous)", pid, lo, prevHi)
		}
		prevHi = hi
		sizes[pid] = hi - lo
		if _, _, again := s.Next(pid); again {
			t.Errorf("pid %d got a second block", pid)
		}
	}
	if prevHi != n {
		t.Errorf("blocks cover [0,%d), want [0,%d)", prevHi, n)
	}
	for _, sz := range sizes {
		if sz < n/np || sz > n/np+1 {
			t.Errorf("block sizes %v unbalanced", sizes)
		}
	}
}

// TestPreschedCyclicShape verifies each process gets exactly the ordinals
// congruent to its pid.
func TestPreschedCyclicShape(t *testing.T) {
	const np, n = 3, 11
	s := New(PreschedCyclic, np, Seq(n), Config{})
	for pid := 0; pid < np; pid++ {
		want := pid
		for {
			lo, hi, ok := s.Next(pid)
			if !ok {
				break
			}
			if hi != lo+1 {
				t.Fatalf("cyclic handed a chunk [%d,%d)", lo, hi)
			}
			if lo != want {
				t.Errorf("pid %d got ordinal %d, want %d", pid, lo, want)
			}
			want += np
		}
		if want-np >= n {
			// fine: last dealt ordinal within range
			_ = want
		}
	}
}

// TestSelfschedDrainsAroundStuckProcess is the load-balancing property
// stated deterministically: while one process is held inside a long
// iteration, the rest of the force must be able to drain every other
// iteration (with block prescheduling this program would deadlock).
// Only the one-iteration-per-acquire disciplines give the exact
// guarantee; chunked variants keep whole chunks on the stuck process.
func TestSelfschedDrainsAroundStuckProcess(t *testing.T) {
	const np, n = 4, 64
	for _, k := range []Kind{SelfLock, SelfAtomic} {
		var done atomic.Int64
		ForEach(k, np, Seq(n), Config{}, func(pid, index int) {
			if index == 0 {
				// Stay inside iteration 0 until every other
				// iteration has completed on other processes.
				for done.Load() < n-1 {
					runtime.Gosched()
				}
				return
			}
			done.Add(1)
		})
		if done.Load() != n-1 {
			t.Errorf("%v: drained %d iterations", k, done.Load())
		}
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	const np, n = 4, 128
	s := New(Guided, np, Seq(n), Config{})
	var sizes []int
	for {
		lo, hi, ok := s.Next(0)
		if !ok {
			break
		}
		sizes = append(sizes, hi-lo)
	}
	if len(sizes) < 2 {
		t.Fatalf("guided handed out %d chunks, want several", len(sizes))
	}
	if sizes[0] != n/np {
		t.Errorf("first guided chunk = %d, want %d", sizes[0], n/np)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Errorf("guided chunks grew: %v", sizes)
			break
		}
	}
	if last := sizes[len(sizes)-1]; last != 1 {
		t.Errorf("last guided chunk = %d, want 1", last)
	}
}

func TestTSSChunksShrinkLinearly(t *testing.T) {
	const np, n = 4, 1024
	s := New(TSS, np, Seq(n), Config{})
	var sizes []int
	prevHi := 0
	for {
		lo, hi, ok := s.Next(0)
		if !ok {
			break
		}
		if lo != prevHi {
			t.Fatalf("chunks not contiguous: [%d,%d) after %d", lo, hi, prevHi)
		}
		prevHi = hi
		sizes = append(sizes, hi-lo)
	}
	if prevHi != n {
		t.Fatalf("chunks cover [0,%d), want [0,%d)", prevHi, n)
	}
	if sizes[0] != n/(2*np) {
		t.Errorf("first chunk = %d, want %d", sizes[0], n/(2*np))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Errorf("chunk sizes grew: %v", sizes)
			break
		}
	}
	if last := sizes[len(sizes)-1]; last > sizes[0]/2+1 {
		t.Errorf("last chunk %d did not shrink from first %d", last, sizes[0])
	}
}

func TestTSSTinyLoops(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7} {
		s := New(TSS, 8, Seq(n), Config{})
		total := 0
		for {
			lo, hi, ok := s.Next(0)
			if !ok {
				break
			}
			total += hi - lo
		}
		if total != n {
			t.Errorf("n=%d: TSS covered %d iterations", n, total)
		}
	}
}

func TestChunkSizeRespected(t *testing.T) {
	s := New(Chunk, 2, Seq(100), Config{ChunkSize: 8})
	lo, hi, ok := s.Next(0)
	if !ok || hi-lo != 8 {
		t.Errorf("chunk = [%d,%d), want size 8", lo, hi)
	}
	// Default chunk size when zero.
	s = New(Chunk, 2, Seq(100), Config{})
	lo, hi, ok = s.Next(0)
	if !ok || hi-lo != 16 {
		t.Errorf("default chunk = [%d,%d), want size 16", lo, hi)
	}
}

func TestPidOutOfRangePanics(t *testing.T) {
	for _, k := range []Kind{PreschedBlock, PreschedCyclic} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range pid did not panic")
				}
			}()
			s := New(k, 2, Seq(10), Config{})
			s.Next(5)
		})
	}
}

// Property: for any (kind, np, range), the multiset of scheduled indices
// equals the sequential loop's indices.
func TestQuickCoverage(t *testing.T) {
	prop := func(kindIdx, npRaw uint8, start int8, count, incrRaw uint8) bool {
		kinds := Kinds()
		k := kinds[int(kindIdx)%len(kinds)]
		np := int(npRaw)%6 + 1
		incr := int(incrRaw)%7 - 3
		if incr == 0 {
			incr = 1
		}
		n := int(count) % 120
		r := Range{Start: int(start), Last: int(start) + (n-1)*incr, Incr: incr}
		if n == 0 {
			r = Range{Start: int(start), Last: int(start) - incr, Incr: incr}
		}
		var mu sync.Mutex
		var got []int
		ForEach(k, np, r, Config{ChunkSize: 3}, func(pid, index int) {
			mu.Lock()
			got = append(got, index)
			mu.Unlock()
		})
		sort.Ints(got)
		return equal(got, expected(r))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
