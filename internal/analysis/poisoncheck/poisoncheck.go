// Package poisoncheck is a repo-local Go linter for the runtime's
// fault-containment invariants — the properties the poison protocol
// (PR 4) and the chaos harness (PR 8) rely on but the compiler cannot
// enforce:
//
//	spinloop   In the blocking-primitive packages (internal/barrier,
//	           internal/reduce, internal/asyncvar, internal/engine), a
//	           for-loop that yields (runtime.Gosched or time.Sleep) is
//	           a wait loop; it must observe the poison cell — a
//	           Check/Poisoned/Wait/WaitRelay call or a <-...Done()
//	           receive in its condition or body — or be literally
//	           bounded (`i < 64`-shaped condition), so a poisoned
//	           force cannot leave a process spinning forever.
//	select     In internal/barrier, internal/reduce and
//	           internal/asyncvar, a select with no default blocks; one
//	           of its cases must receive from a ...Done() channel so
//	           poison wakes the waiter.  (internal/engine is exempt:
//	           its worker dispatch select legitimately blocks on the
//	           jobs/quit pair outside any force.)
//	firesite   Everywhere, the site argument of faultinject.Fire and
//	           FireErr must be one of the constants the faultinject
//	           package registers (or a string literal equal to one),
//	           so the chaos sweep's FORCE_FAULTS coordinates can never
//	           drift from the sites that actually fire.
//
// The checker is built on the standard library's go/parser and go/ast
// only — the module has no golang.org/x/tools dependency, so it runs
// as `go run ./cmd/poisoncheck` in CI rather than as a `go vet
// -vettool` plugin.  It is purely syntactic: no type information, no
// build, no imports outside the stdlib.
package poisoncheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one invariant violation.
type Finding struct {
	Pos     token.Position
	Rule    string // "spinloop", "select", "firesite"
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// spinPackages need every yielding loop to observe poison.
var spinPackages = []string{
	"internal/barrier", "internal/reduce", "internal/asyncvar", "internal/engine",
}

// selectPackages need every blocking select to carry a Done() case.
var selectPackages = []string{
	"internal/barrier", "internal/reduce", "internal/asyncvar",
}

// Run checks the repository rooted at root and returns the findings
// sorted by position.
func Run(root string) ([]Finding, error) {
	sites, err := loadSites(root)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	fset := token.NewFileSet()
	check := func(dir string, spin, sel bool) error {
		files, err := parseDir(fset, filepath.Join(root, dir))
		if err != nil {
			return err
		}
		for _, file := range files {
			findings = append(findings, CheckFile(fset, file, Rules{
				Spinloop: spin, Select: sel, FireSites: sites,
			})...)
		}
		return nil
	}
	spin := map[string]bool{}
	for _, d := range spinPackages {
		spin[d] = true
	}
	sel := map[string]bool{}
	for _, d := range selectPackages {
		sel[d] = true
	}
	// The firesite rule applies everywhere except inside faultinject
	// itself (which manipulates raw site strings by design).
	dirs, err := goPackageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		if dir == "internal/faultinject" {
			continue
		}
		if err := check(dir, spin[dir], sel[dir]); err != nil {
			return nil, err
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos.Filename != findings[j].Pos.Filename {
			return findings[i].Pos.Filename < findings[j].Pos.Filename
		}
		return findings[i].Pos.Line < findings[j].Pos.Line
	})
	return findings, nil
}

// Rules selects which checks CheckFile applies; FireSites nil disables
// the firesite rule.
type Rules struct {
	Spinloop  bool
	Select    bool
	FireSites map[string]bool // registered site names (values, e.g. "barrier.enter")
}

// CheckFile applies the enabled rules to one parsed file.
func CheckFile(fset *token.FileSet, file *ast.File, rules Rules) []Finding {
	var findings []Finding
	add := func(pos token.Pos, rule, format string, args ...interface{}) {
		findings = append(findings, Finding{
			Pos: fset.Position(pos), Rule: rule, Message: fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.ForStmt:
			if rules.Spinloop && loopYields(t) && !literallyBounded(t) && !observesPoison(t) {
				add(t.Pos(), "spinloop",
					"yielding wait loop neither observes the poison cell (Check/Poisoned/Wait/<-Done()) nor is literally bounded")
			}
		case *ast.SelectStmt:
			if rules.Select && !selectHasDefault(t) && !selectHasDoneCase(t) {
				add(t.Pos(), "select",
					"blocking select has no <-...Done() case: poison cannot wake this waiter")
			}
		case *ast.CallExpr:
			if rules.FireSites != nil {
				if name, ok := fireCall(t); ok {
					checkFireSite(t, name, rules.FireSites, add)
				}
			}
		}
		return true
	})
	return findings
}

// loopYields reports whether the loop body calls runtime.Gosched or
// time.Sleep — the signature of a spin-wait.
func loopYields(loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if pkg, name, ok := selectorParts(call.Fun); ok {
				if (pkg == "runtime" && name == "Gosched") || (pkg == "time" && name == "Sleep") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// literallyBounded matches the `for i := 0; i < 64; i++` shape: a
// condition comparing an identifier against an integer literal.  Such a
// loop terminates regardless of poison.
func literallyBounded(loop *ast.ForStmt) bool {
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return false
	}
	isIntLit := func(e ast.Expr) bool {
		lit, ok := e.(*ast.BasicLit)
		return ok && lit.Kind == token.INT
	}
	_, lIdent := cond.X.(*ast.Ident)
	_, rIdent := cond.Y.(*ast.Ident)
	return (lIdent && isIntLit(cond.Y)) || (rIdent && isIntLit(cond.X))
}

// poisonObservers are the method names that consult the poison cell.
var poisonObservers = map[string]bool{
	"Check": true, "Poisoned": true, "Wait": true, "WaitRelay": true,
}

// observesPoison reports whether the loop's condition or body consults
// the poison cell: a Check/Poisoned/Wait/WaitRelay call or a receive
// from a Done() channel.
func observesPoison(loop *ast.ForStmt) bool {
	found := false
	see := func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.CallExpr:
			if _, name, ok := selectorParts(t.Fun); ok && poisonObservers[name] {
				found = true
			}
		case *ast.UnaryExpr:
			if t.Op == token.ARROW && isDoneCall(t.X) {
				found = true
			}
		}
		return !found
	}
	if loop.Cond != nil {
		ast.Inspect(loop.Cond, see)
	}
	ast.Inspect(loop.Body, see)
	return found
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if comm, ok := c.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

func selectHasDoneCase(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		comm, ok := c.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		recv := func(e ast.Expr) bool {
			u, ok := e.(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW && isDoneCall(u.X)
		}
		switch t := comm.Comm.(type) {
		case *ast.ExprStmt:
			if recv(t.X) {
				return true
			}
		case *ast.AssignStmt:
			for _, r := range t.Rhs {
				if recv(r) {
					return true
				}
			}
		}
	}
	return false
}

// isDoneCall matches `<anything>.Done()`.
func isDoneCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	_, name, ok := selectorParts(call.Fun)
	return ok && name == "Done"
}

// fireCall matches faultinject.Fire / faultinject.FireErr, returning
// the function name.
func fireCall(call *ast.CallExpr) (string, bool) {
	pkg, name, ok := selectorParts(call.Fun)
	if !ok || pkg != "faultinject" {
		return "", false
	}
	if name == "Fire" || name == "FireErr" {
		return name, true
	}
	return "", false
}

func checkFireSite(call *ast.CallExpr, name string, sites map[string]bool, add func(token.Pos, string, string, ...interface{})) {
	if len(call.Args) == 0 {
		return
	}
	switch arg := call.Args[0].(type) {
	case *ast.SelectorExpr:
		pkg, ok := arg.X.(*ast.Ident)
		if !ok || pkg.Name != "faultinject" {
			add(call.Pos(), "firesite", "%s site must be a faultinject.* constant", name)
			return
		}
		if !sites["$"+arg.Sel.Name] {
			add(call.Pos(), "firesite", "%s site faultinject.%s is not a registered injection site", name, arg.Sel.Name)
		}
	case *ast.BasicLit:
		if arg.Kind != token.STRING {
			add(call.Pos(), "firesite", "%s site must be a faultinject.* constant or a registered site string", name)
			return
		}
		v, err := strconv.Unquote(arg.Value)
		if err != nil || !sites[v] {
			add(call.Pos(), "firesite", "%s site %s is not a registered injection site", name, arg.Value)
		}
	default:
		add(call.Pos(), "firesite", "%s site must be a faultinject.* constant or a registered site string, not a computed value", name)
	}
}

// selectorParts splits pkg.Name selector calls; for method values like
// r.pc.Check it returns the receiver's final identifier and the method.
func selectorParts(e ast.Expr) (string, string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		return x.Name, sel.Sel.Name, true
	case *ast.SelectorExpr:
		return x.Sel.Name, sel.Sel.Name, true
	default:
		return "", sel.Sel.Name, true
	}
}

// loadSites parses internal/faultinject and collects the registered
// site constants: the map carries both the string value ("barrier.enter")
// and the constant name keyed as "$Name" ("$BarrierEnter").
func loadSites(root string) (map[string]bool, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, filepath.Join(root, "internal", "faultinject"))
	if err != nil {
		return nil, err
	}
	sites := map[string]bool{}
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					v, err := strconv.Unquote(lit.Value)
					if err != nil || !strings.Contains(v, ".") {
						continue // site names are dotted; skip unrelated consts
					}
					sites[v] = true
					sites["$"+name.Name] = true
				}
			}
		}
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("poisoncheck: no injection sites found under %s/internal/faultinject", root)
	}
	return sites, nil
}

// parseDir parses every non-test .go file in dir.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// goPackageDirs lists every directory under root that contains .go
// files, as root-relative slash paths, skipping testdata and hidden
// directories.
func goPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			base := filepath.Base(path)
			if strings.HasPrefix(base, ".") && path != root || base == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			rel = filepath.ToSlash(rel)
			if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
				dirs = append(dirs, rel)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// Walk order already groups files by directory, but be safe.
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}
