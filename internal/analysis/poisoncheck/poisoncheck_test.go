package poisoncheck

import (
	"go/parser"
	"go/token"
	"testing"
)

// TestRepositoryIsClean runs the full linter over the real tree: the
// runtime must satisfy its own fault-containment invariants.
func TestRepositoryIsClean(t *testing.T) {
	findings, err := Run("../../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func checkSrc(t *testing.T, src string, rules Rules) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return CheckFile(fset, file, rules)
}

func testSites() map[string]bool {
	return map[string]bool{
		"barrier.enter": true, "$BarrierEnter": true,
	}
}

func TestSpinloopUnboundedWithoutPoison(t *testing.T) {
	src := `package p
func bad() {
	for {
		if ready() { return }
		runtime.Gosched()
	}
}`
	got := checkSrc(t, src, Rules{Spinloop: true})
	if len(got) != 1 || got[0].Rule != "spinloop" {
		t.Errorf("want one spinloop finding, got %v", got)
	}
}

func TestSpinloopObservingPoisonIsClean(t *testing.T) {
	src := `package p
func ok() {
	for {
		pc.Check()
		if ready() { return }
		runtime.Gosched()
	}
}`
	if got := checkSrc(t, src, Rules{Spinloop: true}); len(got) != 0 {
		t.Errorf("poison-observing loop flagged: %v", got)
	}
}

func TestSpinloopDoneReceiveIsClean(t *testing.T) {
	src := `package p
func ok() {
	for !stop {
		select {
		case <-pc.Done():
			return
		default:
		}
		time.Sleep(time.Millisecond)
	}
}`
	if got := checkSrc(t, src, Rules{Spinloop: true}); len(got) != 0 {
		t.Errorf("Done-receiving loop flagged: %v", got)
	}
}

func TestSpinloopLiterallyBoundedIsClean(t *testing.T) {
	src := `package p
func ok() {
	for attempt := 0; attempt < 2; attempt++ {
		runtime.Gosched()
	}
}`
	if got := checkSrc(t, src, Rules{Spinloop: true}); len(got) != 0 {
		t.Errorf("bounded retry loop flagged: %v", got)
	}
}

func TestSpinloopNonYieldingLoopIgnored(t *testing.T) {
	// Unbounded loops that never yield are structure-building loops
	// with breaks, not waits; they are out of scope.
	src := `package p
func ok() {
	for {
		if done() { break }
		n = n * 2
	}
}`
	if got := checkSrc(t, src, Rules{Spinloop: true}); len(got) != 0 {
		t.Errorf("non-yielding loop flagged: %v", got)
	}
}

func TestSelectWithoutDoneCase(t *testing.T) {
	src := `package p
func bad() {
	select {
	case v := <-ch:
		use(v)
	}
}`
	got := checkSrc(t, src, Rules{Select: true})
	if len(got) != 1 || got[0].Rule != "select" {
		t.Errorf("want one select finding, got %v", got)
	}
}

func TestSelectWithDoneCaseIsClean(t *testing.T) {
	src := `package p
func ok() {
	select {
	case v := <-ch:
		use(v)
	case <-pc.Done():
		pc.Check()
	}
}`
	if got := checkSrc(t, src, Rules{Select: true}); len(got) != 0 {
		t.Errorf("Done-carrying select flagged: %v", got)
	}
}

func TestSelectWithDefaultIsClean(t *testing.T) {
	src := `package p
func ok() {
	select {
	case <-ch:
	default:
	}
}`
	if got := checkSrc(t, src, Rules{Select: true}); len(got) != 0 {
		t.Errorf("non-blocking select flagged: %v", got)
	}
}

func TestFireSiteConstant(t *testing.T) {
	src := `package p
func ok() {
	faultinject.Fire(faultinject.BarrierEnter, pid, pc)
}`
	if got := checkSrc(t, src, Rules{FireSites: testSites()}); len(got) != 0 {
		t.Errorf("registered constant flagged: %v", got)
	}
}

func TestFireSiteUnknownConstant(t *testing.T) {
	src := `package p
func bad() {
	faultinject.Fire(faultinject.Bogus, pid, pc)
}`
	got := checkSrc(t, src, Rules{FireSites: testSites()})
	if len(got) != 1 || got[0].Rule != "firesite" {
		t.Errorf("want one firesite finding, got %v", got)
	}
}

func TestFireSiteStringLiteral(t *testing.T) {
	ok := `package p
func ok() { faultinject.FireErr("barrier.enter", nil) }`
	if got := checkSrc(t, ok, Rules{FireSites: testSites()}); len(got) != 0 {
		t.Errorf("registered literal flagged: %v", got)
	}
	bad := `package p
func bad() { faultinject.FireErr("barrier.typo", nil) }`
	got := checkSrc(t, bad, Rules{FireSites: testSites()})
	if len(got) != 1 || got[0].Rule != "firesite" {
		t.Errorf("want one firesite finding, got %v", got)
	}
}

func TestFireSiteComputedValue(t *testing.T) {
	src := `package p
func bad() { faultinject.Fire(siteFor(kind), pid, pc) }`
	got := checkSrc(t, src, Rules{FireSites: testSites()})
	if len(got) != 1 || got[0].Rule != "firesite" {
		t.Errorf("want one firesite finding, got %v", got)
	}
}

// TestLoadSites checks the registry parser against the real faultinject
// package: all 17 sites, by value and by constant name.
func TestLoadSites(t *testing.T) {
	sites, err := loadSites("../../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"barrier.enter", "$BarrierEnter", "aot.exec", "$AOTExec", "engine.park", "$EnginePark", "fuse.join", "$FusedJoin"} {
		if !sites[want] {
			t.Errorf("missing site %q", want)
		}
	}
	values := 0
	for k := range sites {
		if k[0] != '$' {
			values++
		}
	}
	if values != 17 {
		t.Errorf("found %d site values, want 17", values)
	}
}
