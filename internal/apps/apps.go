// Package apps contains Force-style parallel applications of the kind the
// language evolved from ("a parallel programming language ... which
// evolved in the course of implementing numerical algorithms", paper §2):
// matrix multiplication, Gaussian elimination, Jacobi iteration, parallel
// prefix, adaptive quadrature (the Askfor showcase), histogramming, and
// an N-body step.
//
// Every application comes in two forms: a sequential baseline (Seq*) and
// a Force program (*Proc) written against the core runtime — work
// distributed by DOALLs, coordination by barriers with barrier sections,
// reductions by critical sections, dynamic work by Askfor — plus a
// convenience wrapper that runs the Force program on a fresh force.  The
// pairs power both the correctness tests (parallel equals sequential)
// and the T8 application-speedup experiment.
package apps

import (
	"repro/internal/core"
	"repro/internal/sched"
)

// runOn executes program on the force and returns after Join.
func runOn(f *core.Force, program func(p *core.Proc)) {
	f.Run(program)
}

// Idx2 flattens a row-major (i, j) index for an n-column matrix.
func Idx2(i, j, n int) int { return i*n + j }

var _ = sched.Seq // sched is part of this package's public signatures
