package apps

import (
	"repro/internal/core"
	"repro/internal/sched"
)

// SeqScan computes the inclusive prefix sum of v sequentially.
func SeqScan(v []float64) []float64 {
	out := make([]float64, len(v))
	run := 0.0
	for i, x := range v {
		run += x
		out[i] = run
	}
	return out
}

// scanShared holds the double buffer of the parallel scan.
type scanShared struct {
	cur, next []float64
}

// ScanProc computes the inclusive prefix sum inside a force with the
// Hillis–Steele log-step algorithm: ceil(log2 n) prescheduled DOALL
// passes, the buffer swap in a barrier section after each pass.
func ScanProc(p *core.Proc, st *scanShared) {
	n := len(st.cur)
	for d := 1; d < n; d *= 2 {
		dd := d
		p.PreschedBlockDo(sched.Seq(n), func(i int) {
			if i >= dd {
				st.next[i] = st.cur[i] + st.cur[i-dd]
			} else {
				st.next[i] = st.cur[i]
			}
		})
		p.BarrierSection(func() {
			st.cur, st.next = st.next, st.cur
		})
	}
}

// Scan runs the parallel prefix sum on a fresh force program.
func Scan(f *core.Force, v []float64) []float64 {
	st := &scanShared{
		cur:  append([]float64(nil), v...),
		next: make([]float64, len(v)),
	}
	runOn(f, func(p *core.Proc) { ScanProc(p, st) })
	return st.cur
}
