package apps

import (
	"math"

	"repro/internal/core"
	"repro/internal/sched"
)

// JacobiResult reports a Jacobi run: the final grid and the number of
// sweeps performed.
type JacobiResult struct {
	Grid   []float64
	Sweeps int
}

// SeqJacobi relaxes the interior of an n×n grid (boundary fixed) until
// the maximum point change drops below tol or maxSweeps is reached.
func SeqJacobi(grid []float64, n int, tol float64, maxSweeps int) JacobiResult {
	cur := append([]float64(nil), grid...)
	next := append([]float64(nil), grid...)
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		maxDiff := 0.0
		for i := 1; i < n-1; i++ {
			maxDiff = math.Max(maxDiff, relaxRow(cur, next, i, n))
		}
		cur, next = next, cur
		if maxDiff < tol {
			return JacobiResult{Grid: cur, Sweeps: sweep}
		}
	}
	return JacobiResult{Grid: cur, Sweeps: maxSweeps}
}

// relaxRow computes row i of the sweep and returns the row's maximum point
// change.  Row slices are hoisted so the kernel is identical for the
// sequential and parallel versions.
func relaxRow(cur, next []float64, i, n int) float64 {
	up := cur[(i-1)*n : i*n]
	mid := cur[i*n : (i+1)*n]
	down := cur[(i+1)*n : (i+2)*n]
	out := next[i*n : (i+1)*n]
	maxDiff := 0.0
	for j := 1; j < n-1; j++ {
		v := 0.25 * (up[j] + down[j] + mid[j-1] + mid[j+1])
		d := math.Abs(v - mid[j])
		if d > maxDiff {
			maxDiff = d
		}
		out[j] = v
	}
	return maxDiff
}

// jacobiShared is the shared state of the parallel sweep.
type jacobiShared struct {
	cur, next []float64
	maxDiff   float64
	done      bool
	sweeps    int
}

// JacobiProc runs the Jacobi iteration inside a force: interior rows are
// a prescheduled DOALL per sweep, each process folds its local maximum
// change into the shared residual under a critical section, and the
// barrier section swaps the grids and decides convergence for everyone —
// barriers, criticals and DOALLs in the exact composition the Force was
// designed around.
func JacobiProc(p *core.Proc, st *jacobiShared, n int, tol float64, maxSweeps int) {
	for {
		localMax := 0.0
		// Hoist the buffer pointers once per sweep: they change only in
		// the swap section, which the loop-exit barrier orders.
		cur, next := st.cur, st.next
		p.PreschedBlockDo(sched.Range{Start: 1, Last: n - 2, Incr: 1}, func(i int) {
			if d := relaxRow(cur, next, i, n); d > localMax {
				localMax = d
			}
		})
		p.Critical("jacobi-residual", func() {
			if localMax > st.maxDiff {
				st.maxDiff = localMax
			}
		})
		p.BarrierSection(func() {
			st.cur, st.next = st.next, st.cur
			st.sweeps++
			st.done = st.maxDiff < tol || st.sweeps >= maxSweeps
			st.maxDiff = 0
		})
		if st.done {
			return
		}
		// No extra barrier needed before the next sweep: its DOALL
		// cannot complete (and so no process can reach the next swap
		// section) until every process has passed this done check.
	}
}

// Jacobi runs the parallel iteration on a fresh force program.
func Jacobi(f *core.Force, grid []float64, n int, tol float64, maxSweeps int) JacobiResult {
	st := &jacobiShared{
		cur:  append([]float64(nil), grid...),
		next: append([]float64(nil), grid...),
	}
	runOn(f, func(p *core.Proc) { JacobiProc(p, st, n, tol, maxSweeps) })
	return JacobiResult{Grid: st.cur, Sweeps: st.sweeps}
}
