package apps

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sched"
)

// SeqSolve solves the n×n system a·x = b by Gaussian elimination with
// partial pivoting, sequentially.  a and b are not modified.
func SeqSolve(a, b []float64, n int) ([]float64, error) {
	m := append([]float64(nil), a...)
	rhs := append([]float64(nil), b...)
	for k := 0; k < n; k++ {
		// Partial pivot.
		piv := k
		for i := k + 1; i < n; i++ {
			if math.Abs(m[Idx2(i, k, n)]) > math.Abs(m[Idx2(piv, k, n)]) {
				piv = i
			}
		}
		if m[Idx2(piv, k, n)] == 0 {
			return nil, fmt.Errorf("apps: singular matrix at column %d", k)
		}
		if piv != k {
			swapRows(m, rhs, piv, k, n)
		}
		for i := k + 1; i < n; i++ {
			eliminateRow(m, rhs, i, k, n)
		}
	}
	return backSubstitute(m, rhs, n), nil
}

// eliminateRow subtracts the pivot-row multiple from row i, columns k..n-1.
// Row slices are hoisted so the kernel is identical for the sequential and
// parallel versions.
func eliminateRow(m, rhs []float64, i, k, n int) {
	prow := m[k*n+k : k*n+n]
	ri := m[i*n+k : i*n+n]
	f := ri[0] / prow[0]
	if f == 0 {
		return
	}
	for j := range ri {
		ri[j] -= f * prow[j]
	}
	rhs[i] -= f * rhs[k]
}

func swapRows(m, rhs []float64, r1, r2, n int) {
	for j := 0; j < n; j++ {
		m[Idx2(r1, j, n)], m[Idx2(r2, j, n)] = m[Idx2(r2, j, n)], m[Idx2(r1, j, n)]
	}
	rhs[r1], rhs[r2] = rhs[r2], rhs[r1]
}

func backSubstitute(m, rhs []float64, n int) []float64 {
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= m[Idx2(i, j, n)] * x[j]
		}
		x[i] = s / m[Idx2(i, i, n)]
	}
	return x
}

// GaussState is the shared state of the parallel solver: the working copy
// of the system and the result/error cells written in barrier sections.
type GaussState struct {
	M, RHS []float64
	N      int
	X      []float64
	Err    error
}

// NewGaussState copies the system into working storage.
func NewGaussState(a, b []float64, n int) *GaussState {
	return &GaussState{
		M:   append([]float64(nil), a...),
		RHS: append([]float64(nil), b...),
		N:   n,
	}
}

// SolveProc runs Gaussian elimination with partial pivoting inside a
// force: pivot selection and row swap happen in a barrier section (one
// process while the force is suspended — the classic Force idiom), the
// eliminations below the pivot are a selfscheduled DOALL over rows, and
// back-substitution runs in a final barrier section.
func SolveProc(p *core.Proc, st *GaussState) {
	n := st.N
	for k := 0; k < n; k++ {
		kk := k
		p.BarrierSection(func() {
			if st.Err != nil {
				return
			}
			piv := kk
			for i := kk + 1; i < n; i++ {
				if math.Abs(st.M[Idx2(i, kk, n)]) > math.Abs(st.M[Idx2(piv, kk, n)]) {
					piv = i
				}
			}
			if st.M[Idx2(piv, kk, n)] == 0 {
				st.Err = fmt.Errorf("apps: singular matrix at column %d", kk)
				return
			}
			if piv != kk {
				swapRows(st.M, st.RHS, piv, kk, n)
			}
		})
		if st.Err != nil {
			// All processes observe the error after the section and
			// leave the elimination loop together.
			return
		}
		p.DoAll(sched.Chunk, sched.Range{Start: kk + 1, Last: n - 1, Incr: 1}, func(i int) {
			eliminateRow(st.M, st.RHS, i, kk, n)
		})
	}
	p.BarrierSection(func() {
		st.X = backSubstitute(st.M, st.RHS, n)
	})
}

// Solve runs the parallel solver on a fresh force program.
func Solve(f *core.Force, a, b []float64, n int) ([]float64, error) {
	st := NewGaussState(a, b, n)
	runOn(f, func(p *core.Proc) { SolveProc(p, st) })
	return st.X, st.Err
}
