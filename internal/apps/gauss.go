package apps

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sched"
)

// SeqSolve solves the n×n system a·x = b by Gaussian elimination with
// partial pivoting, sequentially.  a and b are not modified.
func SeqSolve(a, b []float64, n int) ([]float64, error) {
	m := append([]float64(nil), a...)
	rhs := append([]float64(nil), b...)
	for k := 0; k < n; k++ {
		// Partial pivot.
		piv := k
		for i := k + 1; i < n; i++ {
			if math.Abs(m[Idx2(i, k, n)]) > math.Abs(m[Idx2(piv, k, n)]) {
				piv = i
			}
		}
		if m[Idx2(piv, k, n)] == 0 {
			return nil, fmt.Errorf("apps: singular matrix at column %d", k)
		}
		if piv != k {
			swapRows(m, rhs, piv, k, n)
		}
		for i := k + 1; i < n; i++ {
			eliminateRow(m, rhs, i, k, n)
		}
	}
	return backSubstitute(m, rhs, n), nil
}

// eliminateRow subtracts the pivot-row multiple from row i, columns k..n-1.
// Row slices are hoisted so the kernel is identical for the sequential and
// parallel versions.
func eliminateRow(m, rhs []float64, i, k, n int) {
	prow := m[k*n+k : k*n+n]
	ri := m[i*n+k : i*n+n]
	f := ri[0] / prow[0]
	if f == 0 {
		return
	}
	for j := range ri {
		ri[j] -= f * prow[j]
	}
	rhs[i] -= f * rhs[k]
}

func swapRows(m, rhs []float64, r1, r2, n int) {
	for j := 0; j < n; j++ {
		m[Idx2(r1, j, n)], m[Idx2(r2, j, n)] = m[Idx2(r2, j, n)], m[Idx2(r1, j, n)]
	}
	rhs[r1], rhs[r2] = rhs[r2], rhs[r1]
}

func backSubstitute(m, rhs []float64, n int) []float64 {
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= m[Idx2(i, j, n)] * x[j]
		}
		x[i] = s / m[Idx2(i, i, n)]
	}
	return x
}

// GaussState is the shared state of the parallel solver: the working copy
// of the system and the result/error cells written in barrier sections.
type GaussState struct {
	M, RHS []float64
	N      int
	X      []float64
	Err    error
}

// NewGaussState copies the system into working storage.
func NewGaussState(a, b []float64, n int) *GaussState {
	return &GaussState{
		M:   append([]float64(nil), a...),
		RHS: append([]float64(nil), b...),
		N:   n,
	}
}

// pivotChoice is the element type of the pivot-selection reduction: the
// winning magnitude and its row.
type pivotChoice struct {
	val float64
	row int
}

// combinePivot is the argmax operator: larger magnitude wins; ties break
// to the lower row, matching SeqSolve's first-maximum scan, so the
// parallel solver eliminates in exactly the sequential pivot order.
// Associative and commutative, as every reduction operator must be.
func combinePivot(a, b pivotChoice) pivotChoice {
	if b.val > a.val || (b.val == a.val && b.row >= 0 && (a.row < 0 || b.row < a.row)) {
		return b
	}
	return a
}

// SolveProc runs Gaussian elimination with partial pivoting inside a
// force: pivot selection is a global argmax reduction — each process
// scans its prescheduled share of the remaining rows privately, then one
// collective combines the candidates and its reduction section (one
// process, force suspended) performs the row swap — and the eliminations
// below the pivot are a selfscheduled DOALL over rows.  Back-substitution
// runs in a final barrier section.  Before the reduction subsystem the
// whole pivot scan ran serially in a barrier section; the reduction turns
// it into distributed work plus a log-cost combine.
func SolveProc(p *core.Proc, st *GaussState) {
	n := st.N
	for k := 0; k < n; k++ {
		kk := k
		best := pivotChoice{val: -1, row: -1}
		p.PreschedDo(sched.Range{Start: kk, Last: n - 1, Incr: 1}, func(i int) {
			if v := math.Abs(st.M[Idx2(i, kk, n)]); v > best.val || (v == best.val && i < best.row) {
				best = pivotChoice{val: v, row: i}
			}
		})
		core.ReduceSection(p, best, combinePivot, func(win pivotChoice) {
			if st.Err != nil {
				return
			}
			if win.row < 0 || win.val == 0 {
				st.Err = fmt.Errorf("apps: singular matrix at column %d", kk)
				return
			}
			if win.row != kk {
				swapRows(st.M, st.RHS, win.row, kk, n)
			}
		})
		if st.Err != nil {
			// All processes observe the error after the reduction and
			// leave the elimination loop together.
			return
		}
		p.DoAll(sched.Chunk, sched.Range{Start: kk + 1, Last: n - 1, Incr: 1}, func(i int) {
			eliminateRow(st.M, st.RHS, i, kk, n)
		})
	}
	p.BarrierSection(func() {
		st.X = backSubstitute(st.M, st.RHS, n)
	})
}

// Solve runs the parallel solver on a fresh force program.
func Solve(f *core.Force, a, b []float64, n int) ([]float64, error) {
	st := NewGaussState(a, b, n)
	runOn(f, func(p *core.Proc) { SolveProc(p, st) })
	return st.X, st.Err
}
