package apps

import (
	"math"

	"repro/internal/core"
	"repro/internal/sched"
)

// Bodies is a flat SoA particle system in two dimensions.
type Bodies struct {
	X, Y   []float64
	VX, VY []float64
	Mass   []float64
}

// NewBodies builds n bodies in a deterministic ring configuration.
func NewBodies(n int) *Bodies {
	b := &Bodies{
		X: make([]float64, n), Y: make([]float64, n),
		VX: make([]float64, n), VY: make([]float64, n),
		Mass: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		b.X[i] = math.Cos(theta)
		b.Y[i] = math.Sin(theta)
		b.VX[i] = -math.Sin(theta) * 0.1
		b.VY[i] = math.Cos(theta) * 0.1
		b.Mass[i] = 1 + 0.01*float64(i%5)
	}
	return b
}

// Clone deep-copies the system.
func (b *Bodies) Clone() *Bodies {
	return &Bodies{
		X:    append([]float64(nil), b.X...),
		Y:    append([]float64(nil), b.Y...),
		VX:   append([]float64(nil), b.VX...),
		VY:   append([]float64(nil), b.VY...),
		Mass: append([]float64(nil), b.Mass...),
	}
}

const nbodySoftening = 1e-3

// accel computes the acceleration on body i from all others.
func (b *Bodies) accel(i int) (ax, ay float64) {
	for j := range b.X {
		if j == i {
			continue
		}
		dx := b.X[j] - b.X[i]
		dy := b.Y[j] - b.Y[i]
		r2 := dx*dx + dy*dy + nbodySoftening
		inv := b.Mass[j] / (r2 * math.Sqrt(r2))
		ax += dx * inv
		ay += dy * inv
	}
	return ax, ay
}

// SeqNBodyStep advances the system one leapfrog step of size dt,
// sequentially.
func SeqNBodyStep(b *Bodies, dt float64) {
	n := len(b.X)
	ax := make([]float64, n)
	ay := make([]float64, n)
	for i := 0; i < n; i++ {
		ax[i], ay[i] = b.accel(i)
	}
	for i := 0; i < n; i++ {
		b.VX[i] += ax[i] * dt
		b.VY[i] += ay[i] * dt
		b.X[i] += b.VX[i] * dt
		b.Y[i] += b.VY[i] * dt
	}
}

// NBodyStepProc advances one step inside a force: the O(n²) acceleration
// phase is a selfscheduled DOALL (iteration costs are uniform here, but
// the discipline is selectable for the T3 experiment), the integration
// phase a prescheduled DOALL; the loop-exit barriers separate the phases.
func NBodyStepProc(p *core.Proc, kind sched.Kind, b *Bodies, dt float64, ax, ay []float64) {
	n := len(b.X)
	p.DoAll(kind, sched.Seq(n), func(i int) {
		ax[i], ay[i] = b.accel(i)
	})
	p.PreschedBlockDo(sched.Seq(n), func(i int) {
		b.VX[i] += ax[i] * dt
		b.VY[i] += ay[i] * dt
		b.X[i] += b.VX[i] * dt
		b.Y[i] += b.VY[i] * dt
	})
}

// NBodySteps runs steps leapfrog steps on a fresh force program.
func NBodySteps(f *core.Force, kind sched.Kind, b *Bodies, dt float64, steps int) {
	n := len(b.X)
	ax := make([]float64, n)
	ay := make([]float64, n)
	runOn(f, func(p *core.Proc) {
		for s := 0; s < steps; s++ {
			NBodyStepProc(p, kind, b, dt, ax, ay)
		}
	})
}

// Energy returns the system's kinetic + potential energy (for invariance
// checks).
func (b *Bodies) Energy() float64 {
	e := 0.0
	n := len(b.X)
	for i := 0; i < n; i++ {
		e += 0.5 * b.Mass[i] * (b.VX[i]*b.VX[i] + b.VY[i]*b.VY[i])
		for j := i + 1; j < n; j++ {
			dx := b.X[j] - b.X[i]
			dy := b.Y[j] - b.Y[i]
			e -= b.Mass[i] * b.Mass[j] / math.Sqrt(dx*dx+dy*dy+nbodySoftening)
		}
	}
	return e
}
