package apps

import (
	"math"

	"repro/internal/core"
	"repro/internal/sched"
)

// SORResult reports a red-black SOR run.
type SORResult struct {
	Grid   []float64
	Sweeps int
}

// sorColorRow relaxes the cells of one colour in row i with relaxation
// factor omega, returning the row's maximum change.  Red cells satisfy
// (i+j) even, black cells (i+j) odd; within a colour all updates are
// independent, which is what makes Gauss–Seidel parallelizable at all.
func sorColorRow(g []float64, i, n, color int, omega float64) float64 {
	row := g[i*n : (i+1)*n]
	up := g[(i-1)*n : i*n]
	down := g[(i+1)*n : (i+2)*n]
	maxDiff := 0.0
	start := 1 + (i+1+color)%2
	for j := start; j < n-1; j += 2 {
		v := 0.25 * (up[j] + down[j] + row[j-1] + row[j+1])
		d := omega * (v - row[j])
		if a := math.Abs(d); a > maxDiff {
			maxDiff = a
		}
		row[j] += d
	}
	return maxDiff
}

// SeqSOR runs red-black successive over-relaxation sequentially until the
// maximum point change drops below tol or maxSweeps is reached.
func SeqSOR(grid []float64, n int, omega, tol float64, maxSweeps int) SORResult {
	g := append([]float64(nil), grid...)
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		maxDiff := 0.0
		for color := 0; color < 2; color++ {
			for i := 1; i < n-1; i++ {
				if d := sorColorRow(g, i, n, color, omega); d > maxDiff {
					maxDiff = d
				}
			}
		}
		if maxDiff < tol {
			return SORResult{Grid: g, Sweeps: sweep}
		}
	}
	return SORResult{Grid: g, Sweeps: maxSweeps}
}

// sorShared is the shared state of the parallel iteration.
type sorShared struct {
	g       []float64
	maxDiff float64
	done    bool
	sweeps  int
}

// SORProc runs red-black SOR inside a force: each colour's rows are a
// prescheduled DOALL (the loop-exit barrier separates the colours, which
// is the correctness requirement of the method — black cells read only
// red neighbours and vice versa), residual folding is a critical section,
// and the convergence decision is a barrier section.  Unlike Jacobi, SOR
// updates in place: the two-colour schedule is what the Force-era codes
// used to keep Gauss–Seidel's convergence rate on a parallel machine.
func SORProc(p *core.Proc, st *sorShared, n int, omega, tol float64, maxSweeps int) {
	for {
		localMax := 0.0
		for color := 0; color < 2; color++ {
			c := color
			p.PreschedBlockDo(sched.Range{Start: 1, Last: n - 2, Incr: 1}, func(i int) {
				if d := sorColorRow(st.g, i, n, c, omega); d > localMax {
					localMax = d
				}
			})
		}
		p.Critical("sor-residual", func() {
			if localMax > st.maxDiff {
				st.maxDiff = localMax
			}
		})
		p.BarrierSection(func() {
			st.sweeps++
			st.done = st.maxDiff < tol || st.sweeps >= maxSweeps
			st.maxDiff = 0
		})
		if st.done {
			return
		}
	}
}

// SOR runs the parallel iteration on a fresh force program.
func SOR(f *core.Force, grid []float64, n int, omega, tol float64, maxSweeps int) SORResult {
	st := &sorShared{g: append([]float64(nil), grid...)}
	runOn(f, func(p *core.Proc) { SORProc(p, st, n, omega, tol, maxSweeps) })
	return SORResult{Grid: st.g, Sweeps: st.sweeps}
}
