package apps

import (
	"math"

	"repro/internal/core"
)

// Integrand is a one-dimensional function to integrate.
type Integrand func(x float64) float64

// Witch is the classic test integrand 4/(1+x²); its integral over [0,1]
// is π.
func Witch(x float64) float64 { return 4 / (1 + x*x) }

// Spike is a sharply peaked integrand that defeats uniform partitioning,
// the case adaptive quadrature (and hence Askfor) exists for.
func Spike(x float64) float64 {
	return 1/((x-0.3)*(x-0.3)+1e-3) + 1/((x-0.9)*(x-0.9)+4e-4)
}

// Costly wraps an integrand with units of extra deterministic work per
// evaluation, modelling an expensive physics kernel; the experiments use
// it to set the task grain (fine grains expose construct overhead, the
// paper's §4.1.1 concern).
func Costly(f Integrand, units int) Integrand {
	return func(x float64) float64 {
		acc := 0.0
		for i := 1; i <= units; i++ {
			acc += 1 / (float64(i) + x*x)
		}
		if acc < 0 { // never: acc is a sum of positive terms
			return acc
		}
		return f(x)
	}
}

// simpson is the three-point Simpson estimate on [a, b].
func simpson(f Integrand, a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

// SeqQuad integrates f over [a, b] by adaptive Simpson recursion with the
// given absolute tolerance.
func SeqQuad(f Integrand, a, b, tol float64) float64 {
	m := (a + b) / 2
	fa, fm, fb := f(a), f(m), f(b)
	return seqQuadStep(f, a, b, fa, fm, fb, simpson(f, a, b, fa, fm, fb), tol)
}

func seqQuadStep(f Integrand, a, b, fa, fm, fb, whole, tol float64) float64 {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := simpson(f, a, m, fa, flm, fm)
	right := simpson(f, m, b, fm, frm, fb)
	if math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return seqQuadStep(f, a, m, fa, flm, fm, left, tol/2) +
		seqQuadStep(f, m, b, fm, frm, fb, right, tol/2)
}

// quadTask is one Askfor work unit: an interval with cached endpoint
// values and its Simpson estimate.
type quadTask struct {
	a, b       float64
	fa, fm, fb float64
	whole      float64
	tol        float64
}

// QuadProc integrates inside a force using Askfor — the construct for
// work whose degree of concurrency "is not known at compile time": each
// interval either converges (its contribution folds into the shared sum
// under a critical section) or splits, putting two subinterval tasks back
// into the pool (§3.3, [LO83]).
func QuadProc(p *core.Proc, f Integrand, a, b, tol float64, sum *float64) {
	m := (a + b) / 2
	fa, fm, fb := f(a), f(m), f(b)
	seed := []any{quadTask{
		a: a, b: b, fa: fa, fm: fm, fb: fb,
		whole: simpson(f, a, b, fa, fm, fb), tol: tol,
	}}
	p.Askfor(seed, func(task any, put func(any)) {
		tk := task.(quadTask)
		mid := (tk.a + tk.b) / 2
		lm, rm := (tk.a+mid)/2, (mid+tk.b)/2
		flm, frm := f(lm), f(rm)
		left := simpson(f, tk.a, mid, tk.fa, flm, tk.fm)
		right := simpson(f, mid, tk.b, tk.fm, frm, tk.fb)
		if math.Abs(left+right-tk.whole) <= 15*tk.tol {
			contribution := left + right + (left+right-tk.whole)/15
			p.Critical("quad-sum", func() { *sum += contribution })
			return
		}
		put(quadTask{a: tk.a, b: mid, fa: tk.fa, fm: flm, fb: tk.fm, whole: left, tol: tk.tol / 2})
		put(quadTask{a: mid, b: tk.b, fa: tk.fm, fm: frm, fb: tk.fb, whole: right, tol: tk.tol / 2})
	})
}

// Quad runs the Askfor integration on a fresh force program.
func Quad(f *core.Force, fn Integrand, a, b, tol float64) float64 {
	var sum float64
	runOn(f, func(p *core.Proc) { QuadProc(p, fn, a, b, tol, &sum) })
	return sum
}
