package apps

import (
	"repro/internal/core"
	"repro/internal/sched"
)

// SeqMatMul computes c = a·b for n×n row-major matrices sequentially.
func SeqMatMul(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[Idx2(i, k, n)]
			if aik == 0 {
				continue
			}
			row := b[k*n : k*n+n]
			out := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				out[j] += aik * row[j]
			}
		}
	}
	return c
}

// MatMulProc computes c = a·b inside a force: rows are a DOALL under the
// chosen scheduling discipline.  The implicit loop-exit barrier makes c
// complete in every process when the call returns.
func MatMulProc(p *core.Proc, kind sched.Kind, a, b, c []float64, n int) {
	p.DoAll(kind, sched.Seq(n), func(i int) {
		for k := 0; k < n; k++ {
			aik := a[Idx2(i, k, n)]
			if aik == 0 {
				continue
			}
			row := b[k*n : k*n+n]
			out := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				out[j] += aik * row[j]
			}
		}
	})
}

// MatMul runs MatMulProc on a fresh force program and returns c.
func MatMul(f *core.Force, kind sched.Kind, a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	runOn(f, func(p *core.Proc) { MatMulProc(p, kind, a, b, c, n) })
	return c
}
