package apps

import (
	"repro/internal/core"
	"repro/internal/sched"
)

// SeqHistogram bins data from [0, 1) into bins buckets sequentially.
func SeqHistogram(data []float64, bins int) []int64 {
	h := make([]int64, bins)
	for _, x := range data {
		h[binOf(x, bins)]++
	}
	return h
}

func binOf(x float64, bins int) int {
	b := int(x * float64(bins))
	if b < 0 {
		b = 0
	}
	if b >= bins {
		b = bins - 1
	}
	return b
}

// HistogramCriticalProc bins data inside a force with every increment
// under one named critical section — the naive translation, used as the
// contention ablation.
func HistogramCriticalProc(p *core.Proc, data []float64, bins int, h []int64) {
	p.ChunkDo(sched.Seq(len(data)), func(i int) {
		b := binOf(data[i], bins)
		p.Critical("hist", func() { h[b]++ })
	})
}

// HistogramPrivateProc bins into per-process private histograms and merges
// them once under the critical section — the private-variable idiom the
// Force's variable classification encourages.
func HistogramPrivateProc(p *core.Proc, data []float64, bins int, h []int64) {
	local := make([]int64, bins)
	p.ChunkDo(sched.Seq(len(data)), func(i int) {
		local[binOf(data[i], bins)]++
	})
	p.Critical("hist-merge", func() {
		for b, c := range local {
			h[b] += c
		}
	})
	p.Barrier() // all merges complete before any process reads h
}

// HistogramCritical runs the critical-per-increment version on a fresh
// force program.
func HistogramCritical(f *core.Force, data []float64, bins int) []int64 {
	h := make([]int64, bins)
	runOn(f, func(p *core.Proc) { HistogramCriticalProc(p, data, bins, h) })
	return h
}

// HistogramPrivate runs the private-merge version on a fresh force
// program.
func HistogramPrivate(f *core.Force, data []float64, bins int) []int64 {
	h := make([]int64, bins)
	runOn(f, func(p *core.Proc) { HistogramPrivateProc(p, data, bins, h) })
	return h
}
