package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestSORMatchesSeq(t *testing.T) {
	const n = 24
	grid := workload.Grid(n)
	want := SeqSOR(grid, n, 1.5, 1e-4, 800)
	for _, np := range []int{1, 3, 8} {
		got := SOR(core.New(np), grid, n, 1.5, 1e-4, 800)
		if got.Sweeps != want.Sweeps {
			t.Errorf("np=%d: %d sweeps, want %d", np, got.Sweeps, want.Sweeps)
		}
		if !almostEqual(got.Grid, want.Grid, 1e-12) {
			t.Errorf("np=%d: grid differs from sequential", np)
		}
	}
}

// TestSORBeatsJacobi: over-relaxation converges in fewer sweeps than
// Jacobi on the same problem — the reason the method existed.
func TestSORBeatsJacobi(t *testing.T) {
	const n, tol, maxSweeps = 32, 1e-4, 4000
	grid := workload.Grid(n)
	jac := SeqJacobi(grid, n, tol, maxSweeps)
	sor := SeqSOR(grid, n, 1.7, tol, maxSweeps)
	if sor.Sweeps >= jac.Sweeps {
		t.Errorf("SOR took %d sweeps, Jacobi %d — no acceleration", sor.Sweeps, jac.Sweeps)
	}
}

// TestSOROmegaOneIsGaussSeidel: omega=1 must still converge (plain
// red-black Gauss–Seidel) and respect boundaries.
func TestSOROmegaOneIsGaussSeidel(t *testing.T) {
	const n = 16
	res := SOR(core.New(4), workload.Grid(n), n, 1.0, 1e-5, 5000)
	if res.Sweeps >= 5000 {
		t.Fatalf("did not converge in %d sweeps", res.Sweeps)
	}
	// Boundary rows/columns unchanged.
	for j := 0; j < n; j++ {
		if res.Grid[j] != 1 {
			t.Fatalf("top boundary perturbed at %d", j)
		}
		if res.Grid[(n-1)*n+j] != 0 {
			t.Fatalf("bottom boundary perturbed at %d", j)
		}
	}
	// Interior values must lie strictly between the boundary values.
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			v := res.Grid[i*n+j]
			if v <= 0 || v >= 1 {
				t.Fatalf("interior (%d,%d) = %g outside (0,1)", i, j, v)
			}
		}
	}
}

func TestSORRespectsMaxSweeps(t *testing.T) {
	res := SOR(core.New(2), workload.Grid(12), 12, 1.5, 0, 9)
	if res.Sweeps != 9 {
		t.Errorf("sweeps = %d, want 9", res.Sweeps)
	}
}
