package apps

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

func almostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestIdx2(t *testing.T) {
	if Idx2(0, 0, 5) != 0 || Idx2(2, 3, 5) != 13 {
		t.Error("Idx2 wrong")
	}
}

func TestMatMulMatchesSeq(t *testing.T) {
	const n = 24
	a := workload.Matrix(n, 1)
	b := workload.Matrix(n, 2)
	want := SeqMatMul(a, b, n)
	for _, kind := range []sched.Kind{sched.PreschedBlock, sched.PreschedCyclic,
		sched.SelfLock, sched.SelfAtomic, sched.Chunk, sched.Guided} {
		for _, np := range []int{1, 3, 8} {
			f := core.New(np)
			got := MatMul(f, kind, a, b, n)
			if !almostEqual(got, want, 1e-12) {
				t.Errorf("%v np=%d: result differs from sequential", kind, np)
			}
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	const n = 16
	a := workload.Matrix(n, 3)
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[Idx2(i, i, n)] = 1
	}
	got := MatMul(core.New(4), sched.SelfAtomic, a, id, n)
	if !almostEqual(got, a, 1e-12) {
		t.Error("A·I != A")
	}
}

func TestSeqSolveKnownSolution(t *testing.T) {
	const n = 20
	a, b, want := workload.SystemWithSolution(n, 7)
	got, err := SeqSolve(a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, want, 1e-8) {
		t.Error("sequential solver wrong")
	}
}

func TestSolveMatchesKnownSolution(t *testing.T) {
	const n = 24
	a, b, want := workload.SystemWithSolution(n, 9)
	for _, np := range []int{1, 2, 5} {
		got, err := Solve(core.New(np), a, b, n)
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		if !almostEqual(got, want, 1e-8) {
			t.Errorf("np=%d: parallel solution wrong", np)
		}
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero in the leading position forces a row swap (det = -4).
	a := []float64{
		0, 2, 1,
		1, 1, 1,
		2, 0, 3,
	}
	x := []float64{1, 2, 3}
	b := make([]float64, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			b[i] += a[Idx2(i, j, 3)] * x[j]
		}
	}
	got, err := Solve(core.New(3), a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, x, 1e-9) {
		t.Errorf("got %v, want %v", got, x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := []float64{
		1, 2,
		2, 4, // linearly dependent
	}
	b := []float64{1, 2}
	if _, err := SeqSolve(a, b, 2); err == nil {
		t.Error("sequential solver accepted singular matrix")
	}
	if _, err := Solve(core.New(3), a, b, 2); err == nil {
		t.Error("parallel solver accepted singular matrix")
	}
}

func TestJacobiMatchesSeq(t *testing.T) {
	const n = 20
	grid := workload.Grid(n)
	want := SeqJacobi(grid, n, 1e-4, 500)
	for _, np := range []int{1, 4} {
		got := Jacobi(core.New(np), grid, n, 1e-4, 500)
		if got.Sweeps != want.Sweeps {
			t.Errorf("np=%d: %d sweeps, want %d", np, got.Sweeps, want.Sweeps)
		}
		if !almostEqual(got.Grid, want.Grid, 1e-12) {
			t.Errorf("np=%d: grid differs", np)
		}
	}
}

func TestJacobiRespectsMaxSweeps(t *testing.T) {
	const n = 16
	got := Jacobi(core.New(2), workload.Grid(n), n, 0, 7) // tol 0 never converges
	if got.Sweeps != 7 {
		t.Errorf("sweeps = %d, want 7", got.Sweeps)
	}
}

func TestScanMatchesSeq(t *testing.T) {
	for _, size := range []int{1, 2, 7, 64, 100} {
		v := workload.Vector(size, int64(size))
		want := SeqScan(v)
		for _, np := range []int{1, 3, 8} {
			got := Scan(core.New(np), v)
			if !almostEqual(got, want, 1e-9) {
				t.Errorf("size=%d np=%d: scan differs", size, np)
			}
		}
	}
}

func TestQuadPi(t *testing.T) {
	want := math.Pi
	if got := SeqQuad(Witch, 0, 1, 1e-10); math.Abs(got-want) > 1e-8 {
		t.Errorf("SeqQuad = %.12f", got)
	}
	for _, np := range []int{1, 4, 8} {
		got := Quad(core.New(np), Witch, 0, 1, 1e-10)
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("np=%d: Quad = %.12f, want pi", np, got)
		}
	}
}

func TestQuadSpikeMatchesSeq(t *testing.T) {
	want := SeqQuad(Spike, 0, 1, 1e-9)
	got := Quad(core.New(6), Spike, 0, 1, 1e-9)
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Errorf("parallel %.10g vs sequential %.10g", got, want)
	}
}

func TestHistogramsMatchSeq(t *testing.T) {
	data := workload.Vector(5000, 13)
	for i := range data {
		data[i] = (data[i] + 1) / 2 // into [0,1)
	}
	const bins = 32
	want := SeqHistogram(data, bins)
	gotC := HistogramCritical(core.New(6), data, bins)
	gotP := HistogramPrivate(core.New(6), data, bins)
	for b := 0; b < bins; b++ {
		if gotC[b] != want[b] {
			t.Fatalf("critical histogram bin %d: %d vs %d", b, gotC[b], want[b])
		}
		if gotP[b] != want[b] {
			t.Fatalf("private histogram bin %d: %d vs %d", b, gotP[b], want[b])
		}
	}
}

func TestBinOfClamps(t *testing.T) {
	if binOf(-0.1, 10) != 0 || binOf(1.5, 10) != 9 || binOf(0.55, 10) != 5 {
		t.Error("binOf clamp/placement wrong")
	}
}

func TestNBodyMatchesSeq(t *testing.T) {
	const n, steps = 40, 5
	seqB := NewBodies(n)
	for s := 0; s < steps; s++ {
		SeqNBodyStep(seqB, 1e-3)
	}
	for _, np := range []int{1, 4} {
		parB := NewBodies(n)
		NBodySteps(core.New(np), sched.SelfAtomic, parB, 1e-3, steps)
		if !almostEqual(parB.X, seqB.X, 1e-10) || !almostEqual(parB.VY, seqB.VY, 1e-10) {
			t.Errorf("np=%d: trajectories diverge from sequential", np)
		}
	}
}

func TestNBodyEnergyRoughlyConserved(t *testing.T) {
	b := NewBodies(24)
	e0 := b.Energy()
	NBodySteps(core.New(4), sched.PreschedCyclic, b, 1e-4, 50)
	e1 := b.Energy()
	if math.Abs(e1-e0) > 0.05*math.Abs(e0)+0.05 {
		t.Errorf("energy drifted: %g -> %g", e0, e1)
	}
}

func TestBodiesClone(t *testing.T) {
	b := NewBodies(8)
	c := b.Clone()
	c.X[0] = 99
	if b.X[0] == 99 {
		t.Error("Clone aliases storage")
	}
}

// Property: matmul distributes over identity blocks — (A·I) row sums match
// A row sums for random small matrices and any force size.
func TestQuickMatMulRowSums(t *testing.T) {
	prop := func(seed int64, npRaw uint8) bool {
		const n = 8
		np := int(npRaw)%6 + 1
		a := workload.Matrix(n, seed)
		id := make([]float64, n*n)
		for i := 0; i < n; i++ {
			id[Idx2(i, i, n)] = 1
		}
		got := MatMul(core.New(np), sched.Guided, a, id, n)
		return almostEqual(got, a, 1e-12)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: parallel scan of nonnegative input is nondecreasing and ends
// at the total.
func TestQuickScanInvariants(t *testing.T) {
	prop := func(raw []uint8, npRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		np := int(npRaw)%5 + 1
		v := make([]float64, len(raw))
		total := 0.0
		for i, x := range raw {
			v[i] = float64(x)
			total += v[i]
		}
		got := Scan(core.New(np), v)
		prev := math.Inf(-1)
		for _, x := range got {
			if x < prev {
				return false
			}
			prev = x
		}
		return math.Abs(got[len(got)-1]-total) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
