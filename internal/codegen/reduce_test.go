package codegen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/forcelang"
	"repro/internal/reduce"
)

const reduceSrc = `
Force G of NP ident ME
Shared Real TOTAL
Shared Integer COUNT
Shared Logical OK
Private Real X
Private Logical B
End Declarations
X = REAL(ME)
GSUM TOTAL = X
GPROD COUNT = ME + 1
GMAX TOTAL = X
GMIN X = TOTAL
GAND OK = B
GOR B = OK
Join
`

func TestGenerateReduceStatements(t *testing.T) {
	prog := forcelang.MustParse(reduceSrc)
	out, err := Generate(prog, Options{Reduce: reduce.Tree})
	if err != nil {
		t.Fatal(err)
	}
	src := string(out)
	// Shared targets store once through the *To form; private targets
	// assign the returned value per process.
	for _, want := range []string{
		"core.WithReduce(reduce.Tree)",
		"core.GsumTo(p, X, &shr.TOTAL)",
		"core.GprodTo(p, (ME + 1), &shr.COUNT)",
		"core.GmaxTo(p, X, &shr.TOTAL)",
		"X = core.Gmin(p, shr.TOTAL)",
		"core.GandTo(p, B, &shr.OK)",
		"B = core.Gor(p, shr.OK)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q:\n%s", want, src)
		}
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", out, parser.AllErrors); err != nil {
		t.Fatalf("generated Go does not parse: %v", err)
	}
}

func TestGenerateReduceCoercesToTargetType(t *testing.T) {
	src := `
Force M of NP ident ME
Shared Real T
End Declarations
GSUM T = ME
Join
`
	out, err := Generate(forcelang.MustParse(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// INTEGER operand, REAL target: the combination happens in the
	// target's type, so the operand is converted before the reduction.
	if !strings.Contains(string(out), "core.GsumTo(p, float64(ME), &shr.T)") {
		t.Errorf("operand not coerced to target type:\n%s", out)
	}
}

func TestGenerateReduceInSubroutine(t *testing.T) {
	src := `
Force S of NP ident ME
Shared Real T
End Declarations
Call HELP(T)
Join
Forcesub HELP(R)
Shared Real R
Private Real X
End Declarations
X = 2.0
GSUM X = X
GMAX R = X
Endsub
`
	out, err := Generate(forcelang.MustParse(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	// R is a by-reference parameter: it may alias a caller's shared OR
	// private cell, so each process stores its own copy under the
	// runtime critical section (serialized: race-free when aliased).
	if !strings.Contains(s, `p.Critical("ZZGRED", func() { (*R) = zzRed })`) {
		t.Errorf("param target not stored under the reduction critical:\n%s", s)
	}
	if !strings.Contains(s, "X = core.Gsum(p, X)") {
		t.Errorf("private target not assigned per process:\n%s", s)
	}
}

func TestGenerateReduceIntoSharedArrayElement(t *testing.T) {
	// A shared array element's subscript may vary per process (A(ME+1)):
	// every process's element must receive the value, exactly as in the
	// interpreter, so the store is per-process and serialized — not the
	// single-store *To form.
	src := `
Force A of NP ident ME
Shared Integer A(8)
End Declarations
GSUM A(ME + 1) = 1
Join
`
	out, err := Generate(forcelang.MustParse(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if strings.Contains(s, "GsumTo") {
		t.Errorf("array-element target must not use the single-store form:\n%s", s)
	}
	if !strings.Contains(s, "zzRed := core.Gsum(p, 1)") ||
		!strings.Contains(s, `p.Critical("ZZGRED", func() { shr.A[zzIdx1(5, "A", (ME+1), len(shr.A))] = zzRed })`) {
		t.Errorf("array-element target not stored per process under the reduction critical:\n%s", s)
	}
}
