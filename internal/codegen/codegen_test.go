package codegen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/forcelang"
	"repro/internal/sched"
)

const sample = `Force DEMO of NP ident ME
Shared Real A(8,8)
Shared Real S
Shared Integer N
Private Integer I, J
Private Real T
Async Real V
End Declarations
Barrier
N = 8
S = 0.0
End Barrier
Presched DO I = 1, N
  A(I, 1) = REAL(I)
End Presched DO
Selfsched DO I = 1, N also J = 1, N
  A(I, J) = REAL(I) * 10.0 + REAL(J)
End Selfsched DO
DO I = 1, 3
  T = T + A(I, I)
End DO
IF (ME .EQ. 0) THEN
  Produce V = T
End IF
IF (ME .EQ. MOD(1, NP)) THEN
  Consume V into T
End IF
Critical SUM
  S = S + T
End Critical
Pcase
Usect
  S = S + 1.0
Csect (N .GT. 4)
  S = S + 2.0
End Pcase
Void V
Print 'S =', S, NINT(S)
Call SCALE(A, S)
Barrier
End Barrier
Join
Forcesub SCALE(X, F)
Shared Real X(8,8)
Shared Real F
Private Integer K
End Declarations
Presched DO K = 1, 8
  X(K, K) = X(K, K) * F
End Presched DO
Endsub
`

func generate(t *testing.T, src string) string {
	t.Helper()
	prog, err := forcelang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, err := Generate(prog, Options{})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return string(out)
}

func TestGeneratedSourceParses(t *testing.T) {
	src := generate(t, sample)
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, parser.AllErrors); err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}
}

func TestGeneratedStructure(t *testing.T) {
	src := generate(t, sample)
	// Struct fields are gofmt-aligned, so match on the field name at line
	// start plus the type fragment.
	fields := map[string]string{
		"A": "[]float64 // dims [8 8]",
		"S": "float64",
		"N": "int",
		"V": "core.AsyncCell[float64]",
	}
	for name, typ := range fields {
		found := false
		for _, line := range strings.Split(src, "\n") {
			f := strings.Fields(line)
			if len(f) >= 2 && f[0] == name && strings.Contains(line, typ) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("shared field %s %s missing:\n%s", name, typ, src)
		}
	}
	if !strings.Contains(src, "package main") || !strings.Contains(src, "type zzShared struct") {
		t.Errorf("missing boilerplate:\n%s", src)
	}
	// X and F are parameters of SCALE, not shared locals; they must NOT
	// appear in the shared struct.
	if strings.Contains(src, "SCALE_X") || strings.Contains(src, "SCALE_F") {
		t.Errorf("parameters leaked into shared struct:\n%s", src)
	}
	for _, want := range []string{
		"f := core.New(*np, core.WithPcaseSched(sched.SelfLock), core.WithReduce(reduce.PrivateSlots))",
		"f.Run(func(p *core.Proc) {",
		"ME := p.ID()",
		"p.BarrierSection(func() {",
		"defer f.Close()",
		"p.PreschedDo(sched.Range{Start: 1, Last: shr.N, Incr: 1}, func(zzI int) {",
		"p.DoAll2(sched.SelfLock, ",
		"p.Critical(\"SUM\", func() {",
		"p.Pcase(",
		"core.CaseIf(func() bool { return (shr.N > 4) }, func() {",
		"shr.V.Produce(T)",
		"T = shr.V.Consume()",
		"shr.V.Void()",
		"zzPrintln(\"S =\", shr.S, core.Nint(shr.S))",
		"force_SCALE(p, shr, shr.A, &shr.S)",
		"func force_SCALE(p *core.Proc, shr *zzShared, X []float64, F *float64)",
		`X[zzIdx2(49, "X", K, K, 8, 8)]`, // checked 2D flattening in SCALE
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in generated source:\n%s", want, src)
		}
	}
}

func TestAskforGeneration(t *testing.T) {
	src := generate(t, `Force TREE of NP ident ME
Shared Integer COUNT
Private Integer WORK
End Declarations
Askfor WORK = 1
  Critical C
    COUNT = COUNT + 1
  End Critical
  IF (WORK .LT. 4) THEN
    Put WORK + 1
    Put WORK + 1
  End IF
End Askfor
Print 'nodes', COUNT
Join
`)
	for _, want := range []string{
		"p.Askfor([]any{1}, func(zzTask any, zzPut func(any)) {",
		"WORK = zzTask.(int)",
		"zzPut((WORK + 1))",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in generated source:\n%s", want, src)
		}
	}
}

func TestSelfschedKindOption(t *testing.T) {
	prog := forcelang.MustParse(`Force S of NP ident ME
Private Integer I
Shared Integer N
End Declarations
N = 8
Selfsched DO I = 1, N
  N = N
End Selfsched DO
Join
`)
	out, err := Generate(prog, Options{Selfsched: sched.Stealing})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "p.DoAll(sched.Stealing, ") {
		t.Errorf("Selfsched option ignored:\n%s", out)
	}
}

func TestChunkOption(t *testing.T) {
	prog := forcelang.MustParse(`Force S of NP ident ME
End Declarations
Join
`)
	out, err := Generate(prog, Options{Chunk: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "core.WithChunk(32)") {
		t.Errorf("Chunk option not emitted:\n%s", out)
	}
	out, err = Generate(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "WithChunk") {
		t.Errorf("zero Chunk must not emit WithChunk:\n%s", out)
	}
}

func TestMixedArithmeticCoercion(t *testing.T) {
	src := generate(t, `Force M of NP ident ME
Shared Real X
Private Integer I
End Declarations
I = 3
X = I / 2 + 1.5
Join
`)
	// I / 2 is integer division; adding 1.5 promotes the result.
	if !strings.Contains(src, "(float64(zzDiv(6, I, 2)) + 1.5)") {
		t.Errorf("integer division not preserved before promotion:\n%s", src)
	}
}

func TestNegativeStepLoop(t *testing.T) {
	src := generate(t, `Force M of NP ident ME
Private Integer I
Shared Integer S
End Declarations
Selfsched DO I = 10, 2, -2
  Critical L
    S = S + I
  End Critical
End Selfsched DO
Join
`)
	if !strings.Contains(src, "Incr: zzChkStep(5, (-2))") {
		t.Errorf("negative stride lost (or unchecked):\n%s", src)
	}
}

func TestElementArgument(t *testing.T) {
	src := generate(t, `Force M of NP ident ME
Shared Real A(5)
End Declarations
Call BUMP(A(3))
Join
Forcesub BUMP(X)
Shared Real X
End Declarations
X = X + 1.0
Endsub
`)
	if !strings.Contains(src, `force_BUMP(p, shr, &shr.A[zzIdx1(4, "A", 3, len(shr.A))])`) {
		t.Errorf("element argument not passed by reference:\n%s", src)
	}
	if !strings.Contains(src, "(*X) = ((*X) + 1.0)") {
		t.Errorf("by-reference parameter not dereferenced:\n%s", src)
	}
}

func TestPackageOption(t *testing.T) {
	prog := forcelang.MustParse("Force P of NP ident ME\nEnd Declarations\nJoin\n")
	out, err := Generate(prog, Options{Package: "demo", DefaultNP: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "package demo") {
		t.Error("package option ignored")
	}
	if !strings.Contains(string(out), `flag.Int("np", 9,`) {
		t.Error("DefaultNP option ignored")
	}
}

func TestSubSharedLocalQualified(t *testing.T) {
	src := generate(t, `Force M of NP ident ME
End Declarations
Call T
Join
Forcesub T()
Shared Integer COUNT
End Declarations
Barrier
COUNT = COUNT + 1
End Barrier
Endsub
`)
	if !strings.Contains(src, "T_COUNT int") {
		t.Errorf("sub shared local not a qualified field:\n%s", src)
	}
	if !strings.Contains(src, "shr.T_COUNT = (shr.T_COUNT + 1)") {
		t.Errorf("sub shared local access not qualified:\n%s", src)
	}
}

func TestPrivateArrayLocal(t *testing.T) {
	src := generate(t, `Force M of NP ident ME
Private Real W(16)
End Declarations
W(1) = 2.0
Join
`)
	if !strings.Contains(src, "W := make([]float64, 16)") {
		t.Errorf("private array not allocated per process:\n%s", src)
	}
}

func TestWhileDoGeneratesFor(t *testing.T) {
	src := generate(t, `Force W of NP ident ME
Shared Logical DONE
Private Integer I
End Declarations
DO WHILE (.NOT. DONE)
  I = I + 1
  Barrier
    DONE = .TRUE.
  End Barrier
End DO
Join
`)
	if !strings.Contains(src, "for !shr.DONE {") {
		t.Errorf("DO WHILE not generated as a for loop:\n%s", src)
	}
}

func TestAsyncArrayGeneration(t *testing.T) {
	src := generate(t, `Force AA of NP ident ME
Async Real PIPE(8)
Private Real X
End Declarations
Produce PIPE(ME + 1) = 1.5
Consume PIPE(ME + 1) into X
Void PIPE(1)
Join
`)
	for _, want := range []string{
		"PIPE *asyncvar.Array[float64] // 8 full/empty cells",
		"s.PIPE = core.NewAsyncArray[float64](f, 8)",
		`shr.PIPE.At(zzAsyncIdx(5, "PIPE", (ME + 1), 8)).Produce(1.5)`,
		`X = shr.PIPE.At(zzAsyncIdx(6, "PIPE", (ME + 1), 8)).Consume()`,
		`shr.PIPE.At(zzAsyncIdx(7, "PIPE", 1, 8)).Void()`,
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
}
