package core

import (
	"repro/internal/faultinject"
	"repro/internal/reduce"
	"repro/internal/trace"
)

// Global reductions: the G* operations combine one contribution from
// every process of the force and hand the combined value back to all of
// them — a collective construct with the same exit guarantee as a DOALL's
// implicit barrier (no process proceeds before the combination is
// complete).  The executing strategy is selected per force with
// WithReduce; reduce.Critical reproduces the hand-rolled
// critical-section-plus-barrier idiom the paper's programs used, the
// other strategies are the contention-free replacements.
//
// Like NewAsync, the generic entry points are free functions taking the
// *Proc because Go methods cannot introduce type parameters.

// Number constrains the element types of the numeric global operations.
type Number interface {
	~int | ~int64 | ~float64
}

// Gsum returns the global sum of every process's contribution.
func Gsum[T Number](p *Proc, x T) T {
	return reduceVia(p, reduce.Sum, x, func(a, b T) T { return a + b }, nil)
}

// Gprod returns the global product of every process's contribution.
func Gprod[T Number](p *Proc, x T) T {
	return reduceVia(p, reduce.Prod, x, func(a, b T) T { return a * b }, nil)
}

// Gmax returns the global maximum of every process's contribution.
func Gmax[T Number](p *Proc, x T) T {
	return reduceVia(p, reduce.Max, x, maxOf[T], nil)
}

// Gmin returns the global minimum of every process's contribution.
func Gmin[T Number](p *Proc, x T) T {
	return reduceVia(p, reduce.Min, x, minOf[T], nil)
}

// Gand returns the global conjunction of every process's contribution.
func Gand(p *Proc, x bool) bool {
	return reduceVia(p, reduce.And, x, func(a, b bool) bool { return a && b }, nil)
}

// Gor returns the global disjunction of every process's contribution.
func Gor(p *Proc, x bool) bool {
	return reduceVia(p, reduce.Or, x, func(a, b bool) bool { return a || b }, nil)
}

// GsumTo, GprodTo, GmaxTo, GminTo, GandTo and GorTo additionally store
// the combined value through dst exactly once, in the process that
// completes the combination, before any process is released — the
// race-free way to land a reduction in a shared variable (a per-process
// store of the same value is still a data race to the memory model).
// All processes must pass the same destination.

// GsumTo is Gsum with a single-store destination.
func GsumTo[T Number](p *Proc, x T, dst *T) T {
	return reduceVia(p, reduce.Sum, x, func(a, b T) T { return a + b }, func(r T) { *dst = r })
}

// GprodTo is Gprod with a single-store destination.
func GprodTo[T Number](p *Proc, x T, dst *T) T {
	return reduceVia(p, reduce.Prod, x, func(a, b T) T { return a * b }, func(r T) { *dst = r })
}

// GmaxTo is Gmax with a single-store destination.
func GmaxTo[T Number](p *Proc, x T, dst *T) T {
	return reduceVia(p, reduce.Max, x, maxOf[T], func(r T) { *dst = r })
}

// GminTo is Gmin with a single-store destination.
func GminTo[T Number](p *Proc, x T, dst *T) T {
	return reduceVia(p, reduce.Min, x, minOf[T], func(r T) { *dst = r })
}

// GandTo is Gand with a single-store destination.
func GandTo(p *Proc, x bool, dst *bool) bool {
	return reduceVia(p, reduce.And, x, func(a, b bool) bool { return a && b }, func(r bool) { *dst = r })
}

// GorTo is Gor with a single-store destination.
func GorTo(p *Proc, x bool, dst *bool) bool {
	return reduceVia(p, reduce.Or, x, func(a, b bool) bool { return a || b }, func(r bool) { *dst = r })
}

// Reduce is the generic global operation: combine must be associative
// and commutative, and every process receives the combined value.  It
// admits arbitrary element types (structs for argmax-style reductions);
// under the Atomic strategy custom operations fall back to PrivateSlots.
func Reduce[T any](p *Proc, x T, combine func(T, T) T) T {
	return reduceVia(p, reduce.Custom, x, combine, nil)
}

// ReduceSection is Reduce with a reduction section: section runs exactly
// once, in the process that completes the combination, with every other
// process still suspended — the barrier-section position.  Use it to act
// on the combined value (store it in shared state, swap the pivot row)
// race-free before the force proceeds.
func ReduceSection[T any](p *Proc, x T, combine func(T, T) T, section func(T)) T {
	return reduceVia(p, reduce.Custom, x, combine, section)
}

func maxOf[T Number](a, b T) T {
	if b > a {
		return b
	}
	return a
}

func minOf[T Number](a, b T) T {
	if b < a {
		return b
	}
	return a
}

// reduceVia runs one reduction construct instance: the first process to
// arrive materializes the episode for the force's strategy, every
// process contributes through it, and the completing process retires the
// construct entry (and runs the user section) before the release.
func reduceVia[T any](p *Proc, op reduce.Op, x T, combine func(T, T) T, section func(T)) T {
	f := p.f
	f.pc.Check()
	f.stats.Reductions.Add(1)
	if faultinject.Enabled() {
		// The combine wrapper exists only under an armed plan, so the
		// disabled harness costs the combining hot path nothing.  The
		// wrapped combine fires without process identity: the combining
		// process is strategy-dependent (tree interior, episode winner),
		// not the contributor.
		inner := combine
		combine = func(a, b T) T {
			faultinject.Fire(faultinject.ReduceCombine, -1, f.pc)
			return inner(a, b)
		}
	}
	seq := p.nextSeq()
	ep := f.entry(seq, func() any {
		return reduce.New[T](f.reduceK, f.np, op, combine, reduce.Config[T]{
			Lock:   f.profile.LockFactory(),
			FanIn:  4,
			Poison: f.pc,
			OnComplete: func(r T) {
				if section != nil {
					section(r)
				}
				f.dropEntry(seq)
			},
		})
	}).(reduce.Episode[T])
	f.tr.Record(p.id, trace.ReduceEnter, op.String(), int64(seq))
	faultinject.Fire(faultinject.ReduceContrib, p.id, f.pc)
	p.enterSite(&siteReduce)
	out := ep.Do(p.id, x)
	p.leaveSite()
	f.tr.Record(p.id, trace.ReduceLeave, op.String(), int64(seq))
	return out
}
