package core

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestTracedBarrierContract runs a barrier/section-heavy program under the
// recorder and validates the full Force barrier contract from the log,
// for the paper's barrier and for every other algorithm.
func TestTracedBarrierContract(t *testing.T) {
	for _, bk := range barrier.Kinds() {
		bk := bk
		t.Run(bk.String(), func(t *testing.T) {
			t.Parallel()
			rec := trace.New(0)
			const np = 5
			f := New(np, WithBarrier(bk), WithTrace(rec))
			if f.Trace() != rec {
				t.Fatal("Trace() accessor broken")
			}
			shared := 0
			f.Run(func(p *Proc) {
				for e := 0; e < 15; e++ {
					p.Barrier()
					p.BarrierSection(func() { shared++ })
				}
			})
			if err := trace.CheckBarrierEpisodes(rec.Events(), np); err != nil {
				t.Error(err)
			}
			if shared != 15 {
				t.Errorf("sections ran %d times, want 15", shared)
			}
		})
	}
}

// TestTracedCriticalExclusion validates mutual exclusion from the log for
// every machine profile's lock kind.
func TestTracedCriticalExclusion(t *testing.T) {
	for _, m := range machine.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			rec := trace.New(0)
			f := New(6, WithMachine(m), WithTrace(rec))
			f.Run(func(p *Proc) {
				for i := 0; i < 100; i++ {
					p.Critical("a", func() {})
					if i%3 == 0 {
						p.Critical("b", func() {})
					}
				}
			})
			if err := trace.CheckCriticalExclusion(rec.Events(), ""); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestTracedLoopCoverage validates exactly-once iteration execution from
// the log for each discipline.
func TestTracedLoopCoverage(t *testing.T) {
	r := sched.Range{Start: 3, Last: 60, Incr: 3}
	var want []int64
	for k := 0; k < r.Count(); k++ {
		want = append(want, int64(r.Index(k)))
	}
	for _, kind := range []sched.Kind{sched.PreschedBlock, sched.PreschedCyclic, sched.SelfLock, sched.Guided} {
		rec := trace.New(0)
		f := New(4, WithTrace(rec))
		f.Run(func(p *Proc) {
			p.DoAll(kind, r, func(i int) {})
		})
		if err := trace.CheckLoopCoverage(rec.Events(), want); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
		starts := trace.Filter(rec.Events(), trace.LoopStart)
		ends := trace.Filter(rec.Events(), trace.LoopEnd)
		if len(starts) != 4 || len(ends) != 4 {
			t.Errorf("%v: %d starts, %d ends, want 4 each", kind, len(starts), len(ends))
		}
	}
}

// TestTracedPcaseAndAskfor counts block and task events.
func TestTracedPcaseAndAskfor(t *testing.T) {
	rec := trace.New(0)
	f := New(3, WithTrace(rec))
	f.Run(func(p *Proc) {
		p.Pcase(
			Case(func() {}),
			Case(func() {}),
			CaseIf(func() bool { return false }, func() {}),
		)
		p.Askfor([]any{1}, func(task any, put func(any)) {
			if d := task.(int); d < 4 {
				put(d + 1)
			}
		})
	})
	if got := len(trace.Filter(rec.Events(), trace.PcaseBlock)); got != 2 {
		t.Errorf("pcase blocks traced = %d, want 2", got)
	}
	if got := len(trace.Filter(rec.Events(), trace.AskforTask)); got != 4 {
		t.Errorf("askfor tasks traced = %d, want 4 (chain 1..4)", got)
	}
}

// TestTraceThroughResolve: sub-forces inherit the recorder.
func TestTraceThroughResolve(t *testing.T) {
	rec := trace.New(0)
	f := New(4, WithTrace(rec))
	f.Run(func(p *Proc) {
		p.Resolve(
			Component{Weight: 1, Body: func(sp *Proc) {
				sp.Critical("inner", func() {})
			}},
			Component{Weight: 1, Body: func(sp *Proc) {
				sp.Critical("inner", func() {})
			}},
		)
	})
	if err := trace.CheckCriticalExclusion(rec.Events(), "inner"); err != nil {
		t.Error(err)
	}
	if got := len(trace.Filter(rec.Events(), trace.CriticalEnter)); got != 4 {
		t.Errorf("critical enters = %d, want 4 (one per process)", got)
	}
}

// TestNoTraceNoEvents: without WithTrace nothing records and nothing
// panics.
func TestNoTraceNoEvents(t *testing.T) {
	f := New(2)
	if f.Trace() != nil {
		t.Fatal("default force has a recorder")
	}
	f.Run(func(p *Proc) {
		p.Barrier()
		p.Critical("x", func() {})
		p.SelfschedDo(sched.Seq(5), func(i int) {})
	})
}
