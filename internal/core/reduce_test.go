package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/reduce"
	"repro/internal/sched"
	"repro/internal/trace"
)

func TestGOpsAllStrategies(t *testing.T) {
	const np = 8
	for _, k := range reduce.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			f := New(np, WithReduce(k))
			defer f.Close()
			var bad atomic.Int64
			f.Run(func(p *Proc) {
				if got := Gsum(p, p.ID()+1); got != np*(np+1)/2 {
					bad.Add(1)
				}
				if got := Gmax(p, float64(p.ID())*1.5); got != 1.5*float64(np-1) {
					bad.Add(1)
				}
				if got := Gmin(p, int64(100-p.ID())); got != int64(100-(np-1)) {
					bad.Add(1)
				}
				if got := Gprod(p, 1+p.ID()%2); got != 16 { // 2^(np/2)
					bad.Add(1)
				}
				if Gand(p, true) != true || Gand(p, p.ID() != 3) != false {
					bad.Add(1)
				}
				if Gor(p, false) != false || Gor(p, p.ID() == 3) != true {
					bad.Add(1)
				}
			})
			if bad.Load() != 0 {
				t.Errorf("%d wrong reduction results", bad.Load())
			}
			if got := f.Stats().Reductions.Load(); got != 8*np {
				t.Errorf("Reductions stat = %d, want %d", got, 8*np)
			}
		})
	}
}

func TestGsumToStoresOnce(t *testing.T) {
	const np = 6
	f := New(np)
	defer f.Close()
	var total int
	var observed atomic.Int64
	f.Run(func(p *Proc) {
		got := GsumTo(p, 2, &total)
		// The store lands before any process is released, so every
		// process observes the final value immediately.
		if total == got && got == 2*np {
			observed.Add(1)
		}
	})
	if total != 2*np {
		t.Errorf("total = %d, want %d", total, 2*np)
	}
	if observed.Load() != np {
		t.Errorf("%d/%d processes observed the stored total", observed.Load(), np)
	}
}

func TestReduceSectionRunsOnceSuspended(t *testing.T) {
	const np = 8
	for _, k := range reduce.Kinds() {
		f := New(np, WithReduce(k))
		sectionRuns := 0 // unsynchronized on purpose: exactly one process writes it
		var wrong atomic.Int64
		f.Run(func(p *Proc) {
			type pair struct{ v, id int }
			win := ReduceSection(p, pair{v: (p.ID()*5)%np + 1, id: p.ID()}, func(a, b pair) pair {
				if b.v > a.v || (b.v == a.v && b.id < a.id) {
					return b
				}
				return a
			}, func(w pair) { sectionRuns++ })
			if win.v != np {
				wrong.Add(1)
			}
		})
		f.Close()
		if sectionRuns != 1 {
			t.Errorf("%s: section ran %d times, want 1", k, sectionRuns)
		}
		if wrong.Load() != 0 {
			t.Errorf("%s: %d processes saw a wrong argmax", k, wrong.Load())
		}
	}
}

func TestReduceInsideLoopBody(t *testing.T) {
	// A convergence-loop shape: repeated reductions in SPMD order, with
	// other constructs interleaved, on a non-native machine profile.
	const np = 4
	f := New(np, WithMachine(machine.Sequent), WithReduce(reduce.Tree))
	defer f.Close()
	var bad atomic.Int64
	f.Run(func(p *Proc) {
		for sweep := 0; sweep < 50; sweep++ {
			local := 0
			p.PreschedDo(sched.Seq(20), func(i int) { local += i })
			// The per-process shares sum to the whole iteration space.
			if Gsum(p, local) != 190 {
				bad.Add(1)
			}
			if Gsum(p, 1) != np {
				bad.Add(1)
			}
			p.Barrier()
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d wrong in-loop reductions", bad.Load())
	}
}

func TestReduceTraceEvents(t *testing.T) {
	const np = 4
	rec := trace.New(0)
	f := New(np, WithTrace(rec), WithReduce(reduce.PrivateSlots))
	defer f.Close()
	f.Run(func(p *Proc) {
		Gsum(p, 1)
		Gmax(p, float64(p.ID()))
		Gor(p, false)
	})
	events := rec.Events()
	if err := trace.CheckReduceParticipation(events, np); err != nil {
		t.Error(err)
	}
	if got := len(trace.Filter(events, trace.ReduceEnter)); got != 3*np {
		t.Errorf("%d reduce-enter events, want %d", got, 3*np)
	}
}

func TestReduceInsideResolveSubforce(t *testing.T) {
	// Sub-forces inherit the reduction strategy, and a reduction inside a
	// component is private to the component's processes.
	const np = 6
	f := New(np, WithReduce(reduce.Atomic))
	defer f.Close()
	var a, b atomic.Int64
	f.Run(func(p *Proc) {
		p.Resolve(
			Component{Weight: 1, Body: func(sp *Proc) {
				if Gsum(sp, 1) == sp.NP() {
					a.Add(1)
				}
			}},
			Component{Weight: 1, Body: func(sp *Proc) {
				if Gsum(sp, 10) == 10*sp.NP() {
					b.Add(1)
				}
			}},
		)
	})
	if a.Load()+b.Load() != np {
		t.Errorf("component reductions: %d+%d correct results, want %d total", a.Load(), b.Load(), np)
	}
}
