// Package core implements the Force runtime: the paper's global-parallelism
// execution model in which a fixed force of NP processes executes one SPMD
// program, with work distributed by constructs rather than assigned to
// named processes (paper §3).
//
// The package provides every Force language concept:
//
//   - program structure: New/Run (the generated Force driver: create the
//     force, run the program in every process, Join at the end) and
//     parallel subroutines (any Go function taking a *Proc);
//   - variable classes: shared variables are whatever the program shares
//     through closures (the Go analogue of Force shared declarations),
//     private variables are locals of the process body, and asynchronous
//     variables come from the machine profile via NewAsync;
//   - work distribution: prescheduled and selfscheduled DOALL loops over
//     Fortran-style ranges, singly and doubly nested; prescheduled and
//     selfscheduled Pcase with optional per-block conditions; Askfor work
//     pools with run-time work generation; Resolve (the paper's "yet
//     unimplemented concept", built here as scoped sub-forces);
//   - synchronization: barriers with single-process barrier sections,
//     named critical sections, and produce/consume on async variables;
//   - global reductions: Gsum/Gprod/Gmax/Gmin/Gand/Gor and the generic
//     Reduce/ReduceSection, executed by a selectable strategy
//     (WithReduce) — the first-class replacement for the hand-rolled
//     critical-section reductions of the paper's programs.
//
// Every construct is generic in the paper's sense — no process identifiers
// appear in synchronization operations — and programs are written to be
// independent of the number of processes, which is fixed only when the
// force is created.
//
// # Architecture
//
// core sits in the middle of the runtime stack:
//
//	forcelang  →  interp / codegen      (front end: interpret or compile)
//	                 │
//	                 ▼
//	               core                 (Force/Proc: the paper's constructs)
//	                 │
//	      ┌──────────┼──────────┬────────────┐
//	      ▼          ▼          ▼            ▼
//	   engine      sched      reduce     barrier / lock / machine
//	 (persistent (loop dis-  (global     (synchronization and the
//	  workers,    ciplines;   reduction   machine-dependent layer)
//	  deques,     Stealing is strategies)
//	  pools)      engine-backed)
//
// A Force owns a persistent engine.Engine: NP worker goroutines started
// at New (each paying the machine's creation cost exactly once) that
// survive across Run invocations, the paper's create-force-then-reuse
// driver taken literally.  Work distribution is unified by the
// engine.WorkSource interface: Askfor draws from an engine.Pool
// (work-stealing deques by default, the [LO83] central monitor as the
// ablation baseline), selfscheduled Pcase and DOALL loops draw from
// sched schedulers, among them the engine-backed Stealing discipline —
// so all three of the paper's generic constructs can be served by one
// distribution substrate.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/asyncvar"
	"repro/internal/barrier"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/machine"
	"repro/internal/poison"
	"repro/internal/reduce"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Force is a force of NP processes together with the shared parallel
// environment the preprocessor would have generated: the global barrier,
// the named lock set, and the per-construct scheduler table.
type Force struct {
	np        int
	profile   machine.Profile
	barKind   barrier.Kind
	bar       barrier.Barrier
	locks     *lock.Set
	chunk     int             // chunk size for chunked selfscheduling
	tr        *trace.Recorder // nil unless WithTrace was given
	askfor    engine.PoolKind // Askfor pool discipline
	pcaseKind sched.Kind      // SelfschedPcase block distribution
	reduceK   reduce.Kind     // global-reduction strategy

	eng *engine.Engine // persistent workers; nil on scoped sub-forces

	pc    *poison.Cell // fault-containment cell; shared with sub-forces
	sites []procSite   // per-pid blocked-construct state for the stall watchdog

	// gate tracks the in-flight Run so Shutdown can drain gracefully.
	// It replaces a per-Run completion channel: the waiter channel is
	// created lazily, only when a Shutdown actually waits, so the
	// steady-state Run path allocates nothing for it.
	gate runGate

	// fusedEps are the reusable joins closing fused DOALL+reduction
	// constructs (FusedJoin).  Two alternate per process: a process can
	// only reach its (k+2)-th fused join after every process has left
	// its k-th, the sense-reversal invariant that makes a pair safe to
	// reuse forever.  Rebuilt by recoverAborted like the barrier.
	fusedEps [2]*reduce.NumEpisode

	// procs and runBody are the preallocated per-Run dispatch state:
	// one Proc per process reset (not reallocated) each Run, and one
	// stable body closure reading curProgram — so a steady-state Run
	// performs zero heap allocations.
	procs      []Proc
	runBody    func(id int)
	curProgram func(p *Proc)

	entries sync.Map // construct seq (uint64) -> *constructEntry
	stats   Stats
}

// runGate tracks whether a Run is in flight and lets Shutdown wait for
// it.  The channel exists only while someone is actually waiting.
type runGate struct {
	mu      sync.Mutex
	running bool
	waitCh  chan struct{}
}

func (g *runGate) start() {
	g.mu.Lock()
	g.running = true
	g.mu.Unlock()
}

func (g *runGate) finish() {
	g.mu.Lock()
	g.running = false
	if g.waitCh != nil {
		close(g.waitCh)
		g.waitCh = nil
	}
	g.mu.Unlock()
}

// waiter returns a channel closed when the in-flight Run finishes, or
// nil when no Run is in flight.
func (g *runGate) waiter() chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.running {
		return nil
	}
	if g.waitCh == nil {
		g.waitCh = make(chan struct{})
	}
	return g.waitCh
}

// procSite records where one process currently blocks: the construct
// name (set by the core construct methods) and an optional front-end
// note ("Barrier, line 12", set by interpreters via Proc.Note).  Read
// by Force.Blocked for the stall watchdog.  A Proc addresses its slot
// through a direct pointer, so sub-force Procs (Resolve components)
// report into the parent process's slot and remain visible to the
// top-level watchdog.  Sized to a whole cache line so neighbouring
// processes' site stores do not false-share.
type procSite struct {
	construct atomic.Pointer[string]
	note      atomic.Pointer[string]
	_         [48]byte
}

// Stats counts construct executions; all fields are updated atomically and
// may be read at any time.
type Stats struct {
	Barriers    atomic.Int64
	Loops       atomic.Int64
	Criticals   atomic.Int64
	PcaseBlocks atomic.Int64
	AskforTasks atomic.Int64
	Reductions  atomic.Int64
}

// Option configures a Force.
type Option func(*Force)

// WithMachine selects the machine profile supplying locks, async-variable
// realization and creation cost.  Default: machine.Native.
func WithMachine(p machine.Profile) Option {
	return func(f *Force) { f.profile = p }
}

// WithBarrier selects the global barrier algorithm.  Default: the paper's
// two-lock barrier.
func WithBarrier(k barrier.Kind) Option {
	return func(f *Force) { f.barKind = k }
}

// WithChunk sets the chunk size used by chunked selfscheduled loops.
func WithChunk(n int) Option {
	return func(f *Force) { f.chunk = n }
}

// WithTrace attaches an execution-trace recorder; every construct edge
// (barrier enter/leave, section and critical boundaries, loop iterations,
// Pcase blocks, Askfor tasks) is recorded for post-run validation.
func WithTrace(r *trace.Recorder) Option {
	return func(f *Force) { f.tr = r }
}

// WithAskfor selects the Askfor pool discipline.  Default: the engine's
// work-stealing deques; engine.MonitorPool restores the [LO83]-style
// central monitor for comparison.
func WithAskfor(k engine.PoolKind) Option {
	return func(f *Force) { f.askfor = k }
}

// WithReduce selects the strategy executing global reductions (the G*
// operations and Reduce).  Default: reduce.PrivateSlots, the padded
// per-process accumulators combined in pid order; reduce.Critical
// restores the paper's shared-accumulator-in-a-critical-section idiom
// for comparison.
func WithReduce(k reduce.Kind) Option {
	return func(f *Force) { f.reduceK = k }
}

// WithPcaseSched selects the distribution discipline of SelfschedPcase
// over the block ordinals.  Default: the paper's lock-based
// selfscheduling; sched.Stealing draws the blocks from the engine's
// deques instead.
func WithPcaseSched(k sched.Kind) Option {
	return func(f *Force) { f.pcaseKind = k }
}

// Trace returns the attached recorder (nil when tracing is off).
func (f *Force) Trace() *trace.Recorder { return f.tr }

// New creates a force of np processes: NP persistent worker goroutines
// are started immediately, each paying the machine's creation cost once
// (§4.1.1) — the paper's create-the-force step.  The force is reusable:
// Run may be called repeatedly (sequentially) with different programs,
// and repeated Runs cost a handoff to the existing workers, not a
// re-creation.  Close releases the workers; an abandoned Force is also
// cleaned up by the garbage collector.
func New(np int, opts ...Option) *Force {
	if np <= 0 {
		panic(fmt.Sprintf("core: np = %d, need np >= 1", np))
	}
	f := &Force{np: np, profile: machine.Native, barKind: barrier.TwoLock, pcaseKind: sched.SelfLock}
	for _, o := range opts {
		o(f)
	}
	f.pc = poison.NewCell()
	f.sites = make([]procSite, np)
	f.bar = barrier.New(f.barKind, np, f.profile.LockFactory())
	barrier.SetPoison(f.bar, f.pc)
	f.locks = lock.NewSet(f.profile.LockFactory())
	f.initFusedEps()
	// Capture the profile by value: the start hook must not reference f,
	// or the workers would keep an abandoned force alive forever.
	prof := f.profile
	f.eng = engine.New(np, engine.WithWorkerStart(func(int) { prof.PayCreationCost() }))
	f.procs = make([]Proc, np)
	f.runBody = func(id int) {
		f.sites[id].construct.Store(nil)
		f.sites[id].note.Store(nil)
		p := &f.procs[id]
		drops := p.pendingDrops[:0]
		*p = Proc{id: id, f: f, site: &f.sites[id], pendingDrops: drops}
		f.curProgram(p)
		// Reached only on normal return: a panicking process keeps its
		// last blocked site for post-mortem inspection.  The sticky
		// note clears too — a finished process has no "current" line.
		f.sites[id].note.Store(nil)
		f.sites[id].construct.Store(&siteExited)
	}
	return f
}

func (f *Force) initFusedEps() {
	f.fusedEps[0] = reduce.NewNumEpisode(f.np, f.pc)
	f.fusedEps[1] = reduce.NewNumEpisode(f.np, f.pc)
}

// Close stops the force's persistent workers.  Idempotent; the force must
// not be Run again afterwards.
func (f *Force) Close() {
	if f.eng != nil {
		f.eng.Close()
	}
}

// NP returns the number of processes in the force.
func (f *Force) NP() int { return f.np }

// NewAsync creates an asynchronous (full/empty) variable realized with the
// force's machine profile: hardware-style on the HEP, the two-lock scheme
// elsewhere.  (A free function because Go methods cannot introduce type
// parameters.)  The variable observes the force's poison cell: a
// Produce/Consume blocked when the force aborts unwinds instead of
// waiting for a transfer that can never happen.  On machine profiles
// whose realization parks waiters (the condition-variable impl) the
// binding holds a subscription on the cell for the variable's — i.e.
// the force's — lifetime, so allocate such variables per force, not
// per Run (or unbind retired ones with asyncvar.SetPoison(v, nil)).
func NewAsync[T any](f *Force) asyncvar.V[T] {
	v := machine.NewAsync[T](f.profile)
	asyncvar.SetPoison(v, f.pc)
	return v
}

// NewAsyncArray creates an array of n asynchronous cells realized with the
// force's machine profile — the HEP's per-cell full/empty idiom.  On
// two-lock machines each cell costs a lock pair, the paper's "locks may
// be scarce resources" caveat.  Like NewAsync, the cells observe the
// force's poison cell.
func NewAsyncArray[T any](f *Force, n int) *asyncvar.Array[T] {
	a := asyncvar.NewArray[T](f.profile.Async, f.profile.LockFactory(), n)
	a.SetPoison(f.pc)
	return a
}

// Fault returns the force's fault-containment cell.  Front ends use it
// to bind their own blocking state to the force (interp binds the
// asynchronous variables it allocates), and watchdogs use it to abort a
// stalled force from outside: poisoning the cell wakes every process
// blocked in a force construct, and the in-flight Run panics with the
// poison value.
func (f *Force) Fault() *poison.Cell { return f.pc }

// Blocked reports, for each process, where it currently blocks: the
// core construct name plus the front end's location note when one was
// recorded.  Meaningful while a Run is stalled (the stall watchdog's
// view); a process not inside a blocking construct reports what it last
// recorded.
func (f *Force) Blocked() []string {
	out := make([]string, f.np)
	for i := range out {
		c := f.sites[i].construct.Load()
		n := f.sites[i].note.Load()
		switch {
		case c != nil && n != nil:
			out[i] = *c + " (" + *n + ")"
		case c != nil:
			out[i] = *c
		case n != nil:
			out[i] = "running; last synchronization site: " + *n
		default:
			out[i] = "running (no synchronization site recorded)"
		}
	}
	return out
}

// AllExited reports whether every process has returned from the
// current (or last) Run's program.  Stall watchdogs consult it before
// declaring a stall: when it holds, the Run is already completing and
// poisoning it would smear a successful run with a spurious abort.
func (f *Force) AllExited() bool {
	for i := range f.sites {
		if f.sites[i].construct.Load() != &siteExited {
			return false
		}
	}
	return true
}

// Construct-site labels for Blocked; static so enter/leave stores never
// allocate.
var (
	siteBarrier  = "Barrier"
	siteLoop     = "DOALL"
	sitePcase    = "Pcase"
	siteAskfor   = "Askfor"
	siteReduce   = "global reduction"
	siteResolve  = "Resolve"
	siteCritical = "Critical"
	siteExited   = "finished the program"
)

// AsyncSiteLabel is the construct label front ends pass to WithSite
// around asynchronous-variable statements, which block outside any
// core construct method.
var AsyncSiteLabel = "async variable"

// WithSite runs op with label recorded as the process's blocked site
// (shown by Blocked), for front-end operations that block outside the
// core constructs.  label must point to a long-lived string.  The
// label is retained when op unwinds, for post-mortem reports.
func (p *Proc) WithSite(label *string, op func()) {
	p.enterSite(label)
	op()
	p.leaveSite()
}

func (p *Proc) enterSite(s *string) { p.site.construct.Store(s) }
func (p *Proc) leaveSite()          { p.site.construct.Store(nil) }

// Note records a front-end location note ("Barrier, line 12") shown by
// Blocked next to the construct name.  Interpreters call it before each
// potentially blocking statement; nil clears.  The note is sticky until
// the next Note.
func (p *Proc) Note(s *string) { p.site.note.Store(s) }

// Check unwinds the process (with the runtime's distinguished abort
// panic) when the force has been poisoned.  Every force construct
// checks on entry; long computational stretches between constructs —
// an interpreter's WHILE loop, a long library computation — may call
// it so an externally aborted force does not have to wait them out.
// The cost is one atomic load.
func (p *Proc) Check() { p.f.pc.Check() }

// Machine returns the machine profile the force runs under.
func (f *Force) Machine() machine.Profile { return f.profile }

// Stats returns the construct counters.
func (f *Force) Stats() *Stats { return &f.stats }

// Run executes program as a Force main program: every process of the
// persistent force runs program with its private *Proc, and Run returns
// when all have — the Join statement of the paper, executed by the
// generated driver.  The creation cost was paid when the force was
// created (§4.1.1: fork models pay more than create-call); Run itself is
// a handoff to the already-running workers.
//
// Failures are contained by the poison protocol: when any process
// panics, the engine records the panic in the force's poison cell,
// which wakes every peer blocked in a force construct (barriers,
// reductions, asynchronous variables, Askfor pools); the peers unwind,
// and after all processes have stopped Run re-panics with the *first*
// failure.  The 1989 machines had no such protocol — an aborted process
// left its peers blocked in the next barrier forever — but a runtime
// meant to run unattended cannot afford that.  After an aborted Run the
// force's per-run construct state (barrier, named locks, construct
// table) is rebuilt, so the persistent force remains reusable: the next
// Run starts clean.  Run must not be invoked concurrently on the same
// force.
//
// Run is the no-deadline entry point: it delegates to RunContext with
// context.Background().  Because a background context never cancels,
// any error from RunContext here comes from an out-of-band external
// poisoning (a stall watchdog via Fault), and Run re-panics it to keep
// its historical panic-on-abort signature.
func (f *Force) Run(program func(p *Proc)) {
	if err := f.RunContext(context.Background(), program); err != nil {
		panic(err)
	}
}

// RunContext executes program like Run, under an external cancellation
// context.  When ctx is canceled or its deadline passes, the force is
// poisoned with an *external* cause (poison.CauseExternal): every
// process blocked in a force construct — any of the seven barrier
// kinds, a reduce episode, an asynchronous variable, an Askfor pool or
// engine park, a chunked-tier iteration boundary — wakes within one
// park interval and unwinds, the persistent force is rebuilt exactly
// as after an internal abort (the force remains reusable), and
// RunContext returns ctx.Err().  Internal failures keep Run's
// contract: the first failing process's panic value is re-panicked
// after all processes have stopped.
//
// The asymmetry is deliberate: a peer's panic is a program bug the
// caller did not ask for (a panic), while a deadline is an outcome the
// caller explicitly requested (an error return) — the service-shaped
// cancellation contract of context-aware Go APIs.
func (f *Force) RunContext(ctx context.Context, program func(p *Proc)) error {
	if f.eng == nil {
		// Only scoped sub-forces lack workers, and their processes are
		// the parent's workers re-scoped — Resolve hands them Procs
		// directly and never calls Run.
		panic("core: Run on a scoped sub-force")
	}
	// A cell poisoned before the Run starts is a pre-Run abort request
	// (an external watchdog via Fault): honor it rather than silently
	// erasing it.  An *aborted* Run never leaves leftover poison — it
	// is consumed by recoverAborted below.
	if f.pc.Poisoned() {
		return f.settleAborted()
	}
	// A context dead on arrival never starts the force at all.
	if err := ctx.Err(); err != nil {
		return err
	}

	// Register the in-flight run so Shutdown can drain gracefully.
	f.gate.start()
	defer f.gate.finish()

	// The cancellation watcher: one goroutine selecting the context
	// against run completion.  Armed only when the context can actually
	// cancel, so Run's Background() path pays nothing — not even the
	// stop channel or the watcher's WaitGroup (which escapes into the
	// goroutine closure and would otherwise heap-allocate every Run).
	var watcher *sync.WaitGroup
	var stop chan struct{}
	if ctx.Done() != nil {
		stop = make(chan struct{})
		watcher = new(sync.WaitGroup)
		watcher.Add(1)
		go func() {
			defer watcher.Done()
			select {
			case <-ctx.Done():
				f.pc.PoisonExternal(ctx.Err())
			case <-stop:
			}
		}()
	}

	f.curProgram = program
	f.eng.RunCell(f.pc, f.runBody)
	f.curProgram = nil // do not pin the program until the next Run
	if stop != nil {
		close(stop)
		watcher.Wait() // no PoisonExternal can race past this point
	}

	if f.pc.Poisoned() {
		return f.settleAborted()
	}
	return nil
}

// settleAborted consumes the cell's poison after every process has
// stopped: the per-run state is rebuilt for the next Run, an external
// cancellation is returned as an error, and an internal failure is
// re-panicked (Run's contract).
func (f *Force) settleAborted() error {
	v, cause := f.pc.Value(), f.pc.Cause()
	f.recoverAborted()
	if cause == poison.CauseExternal {
		return poison.AsError(v)
	}
	panic(v)
}

// Shutdown closes the force gracefully: an in-flight Run is drained
// until ctx expires, at which point it is canceled (poisoned with the
// external cause, exactly as RunContext would) and awaited; the
// workers are then released.  Returns nil when the drain completed
// without canceling, ctx.Err() when the in-flight run had to be
// canceled.  Safe with no run in flight (it just Closes); the caller
// owns the ordering against *starting* Runs, as with Run/Run.
func (f *Force) Shutdown(ctx context.Context) error {
	var err error
	if done := f.gate.waiter(); done != nil {
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
			f.pc.PoisonExternal(err)
			<-done // cancellation latency is bounded; the drain completes
		}
	}
	f.Close()
	return err
}

// recoverAborted rebuilds the per-run construct state an aborted Run
// leaves in an unspecified condition — the barrier's relay may be
// mid-episode, named locks may be held by unwound processes, and the
// construct table may hold half-used entries — so that the persistent
// force can serve the next Run.  Called after every process has
// stopped.
func (f *Force) recoverAborted() {
	// Rearm the cell before the rebuild: the next Run must start with
	// an unpoisoned cell anyway, and resubscribing primitives (the cond
	// barrier) on a still-poisoned cell would fire their hooks once
	// immediately — harmless, but pointless work this ordering avoids.
	f.pc.Reset()
	barrier.SetPoison(f.bar, nil) // release the old barrier's subscription, if any
	f.bar = barrier.New(f.barKind, f.np, f.profile.LockFactory())
	barrier.SetPoison(f.bar, f.pc)
	f.locks = lock.NewSet(f.profile.LockFactory())
	// An aborted fused join may hold contributions that never folded;
	// rebuild the reusable pair like the barrier.
	f.initFusedEps()
	f.releaseEntries()
}

// releaseEntries retires every abandoned construct entry after an
// abort: Askfor pools still hold poison subscriptions (their exit
// barrier never completed), and a Resolve plan's sub-forces hold bound
// barriers and construct tables of their own.
func (f *Force) releaseEntries() {
	f.entries.Range(func(k, v any) bool {
		if e, ok := v.(*constructEntry); ok {
			switch st := e.state.(type) {
			case engine.Pool:
				st.Close()
			case *resolvePlan:
				for _, s := range st.sub {
					barrier.SetPoison(s.bar, nil)
					s.releaseEntries()
				}
			}
		}
		f.entries.Delete(k)
		return true
	})
}

// constructEntry is the shared state of one dynamic construct instance
// (one execution of a DOALL, Pcase or Askfor site).  All processes of the
// force reach the same construct sites in the same order — the SPMD
// discipline the Force assumes — so a per-process sequence number
// identifies the instance, and the first process to arrive materializes
// the shared state.
type constructEntry struct {
	once  sync.Once
	state any
}

func (f *Force) entry(seq uint64, build func() any) any {
	v, _ := f.entries.LoadOrStore(seq, &constructEntry{})
	e := v.(*constructEntry)
	e.once.Do(func() { e.state = build() })
	return e.state
}

func (f *Force) dropEntry(seq uint64) { f.entries.Delete(seq) }

// Proc is one process's private view of the force: its unique process
// identifier, and the private construct-sequence cursor.  A *Proc must be
// used only by the goroutine it was handed to.
type Proc struct {
	id   int
	f    *Force
	seq  uint64
	site *procSite // this process's watchdog slot on the TOP-LEVEL force

	// fuse counts fused joins executed by this process (selects which
	// of the force's two reusable episodes serves the next one);
	// pendingDrops carries the selfscheduled construct entries of every
	// open member of the current fused region to the FusedJoin that
	// retires them.  The backing array is reused across regions.
	fuse         uint64
	pendingDrops []uint64
}

// ID returns the process identifier, in [0, NP()).
func (p *Proc) ID() int { return p.id }

// NP returns the number of processes in the force.
func (p *Proc) NP() int { return p.f.np }

// Force returns the force this process belongs to.
func (p *Proc) Force() *Force { return p.f }

// nextSeq advances the private construct cursor.  Constructs executed in
// SPMD order yield identical sequences in every process.
func (p *Proc) nextSeq() uint64 {
	p.seq++
	return p.seq
}

// Barrier suspends the process until the whole force arrives (§3.4).
func (p *Proc) Barrier() {
	p.f.pc.Check()
	p.f.stats.Barriers.Add(1)
	p.f.tr.Record(p.id, trace.BarrierEnter, "", 0)
	faultinject.Fire(faultinject.BarrierEnter, p.id, p.f.pc)
	p.enterSite(&siteBarrier)
	p.f.bar.Sync(p.id, nil)
	p.leaveSite()
	faultinject.Fire(faultinject.BarrierExit, p.id, p.f.pc)
	p.f.tr.Record(p.id, trace.BarrierLeave, "", 0)
}

// BarrierSection is a barrier with a barrier section: all processes wait,
// exactly one arbitrary process executes section while the others remain
// suspended, and the force proceeds when it completes.
func (p *Proc) BarrierSection(section func()) {
	p.f.pc.Check()
	p.f.stats.Barriers.Add(1)
	p.f.tr.Record(p.id, trace.BarrierEnter, "", 0)
	if p.f.tr != nil && section != nil {
		inner := section
		section = func() {
			p.f.tr.Record(p.id, trace.SectionStart, "", 0)
			inner()
			p.f.tr.Record(p.id, trace.SectionEnd, "", 0)
		}
	}
	if section != nil && faultinject.Enabled() {
		inner := section
		section = func() {
			faultinject.Fire(faultinject.BarrierSection, p.id, p.f.pc)
			inner()
		}
	}
	faultinject.Fire(faultinject.BarrierEnter, p.id, p.f.pc)
	p.enterSite(&siteBarrier)
	p.f.bar.Sync(p.id, section)
	p.leaveSite()
	faultinject.Fire(faultinject.BarrierExit, p.id, p.f.pc)
	p.f.tr.Record(p.id, trace.BarrierLeave, "", 0)
}

// Critical executes body inside the named critical section: at most one
// process of the force runs inside any section with the same name at a
// time (§3.4).  Lock variables are created on first use with the
// machine's lock mechanism, the Force's define_lock/init_lock.
func (p *Proc) Critical(name string, body func()) {
	p.f.pc.Check()
	p.f.stats.Criticals.Add(1)
	// The site covers the lock acquisition — the phase that can stall
	// when the holder never releases; once inside, user code runs.
	p.enterSite(&siteCritical)
	p.f.locks.With(name, func() {
		p.leaveSite()
		p.f.tr.Record(p.id, trace.CriticalEnter, name, 0)
		body()
		p.f.tr.Record(p.id, trace.CriticalLeave, name, 0)
	})
}

// loop is the shared implementation of every DOALL variant: materialize
// the instance's scheduler, drive it, and close the construct with the
// paper's exit synchronization (no process leaves before all have arrived;
// the loop cannot be reentered before all have left).
func (p *Proc) loop(kind sched.Kind, r sched.Range, body func(i int)) {
	p.f.pc.Check()
	p.f.stats.Loops.Add(1)
	seq := p.nextSeq()
	cfg := sched.Config{ChunkSize: p.f.chunk, LockFactory: p.f.profile.LockFactory()}
	s := p.f.entry(seq, func() any { return sched.New(kind, p.f.np, r, cfg) }).(sched.Scheduler)
	p.f.tr.Record(p.id, trace.LoopStart, kind.String(), int64(seq))
	p.enterSite(&siteLoop)
	// DriveWith already checks poison once per scheduler span; keep the
	// per-index path equally lean by hoisting the trace plumbing out of
	// the hot loop — without a recorder the body is dispatched bare, and
	// with one the kind name (a map lookup) is computed once, not per
	// iteration.
	drive := func(_, i int) { body(i) }
	if p.f.tr != nil {
		ks := kind.String()
		drive = func(_, i int) {
			p.f.tr.Record(p.id, trace.LoopIter, ks, int64(i))
			body(i)
		}
	}
	sched.DriveWith(p.f.pc, s, p.id, r, drive)
	p.f.bar.Sync(p.id, func() { p.f.dropEntry(seq) })
	p.leaveSite()
	p.f.tr.Record(p.id, trace.LoopEnd, kind.String(), int64(seq))
}

// PreschedDo is the prescheduled DOALL: indices are dealt cyclically as a
// pure function of the process id — "completely machine independent, since
// only the number of executing processes is needed" (§4.2).
func (p *Proc) PreschedDo(r sched.Range, body func(i int)) {
	p.loop(sched.PreschedCyclic, r, body)
}

// PreschedBlockDo is the blocked prescheduled variant (contiguous index
// blocks per process).
func (p *Proc) PreschedBlockDo(r sched.Range, body func(i int)) {
	p.loop(sched.PreschedBlock, r, body)
}

// SelfschedDo is the selfscheduled DOALL of the paper's expansion listing:
// a shared loop index behind the machine's lock, advanced by processes
// looking for more work.
func (p *Proc) SelfschedDo(r sched.Range, body func(i int)) {
	p.loop(sched.SelfLock, r, body)
}

// SelfschedAtomicDo is the fetch-and-add ablation of the selfscheduled
// loop.
func (p *Proc) SelfschedAtomicDo(r sched.Range, body func(i int)) {
	p.loop(sched.SelfAtomic, r, body)
}

// ChunkDo is chunked selfscheduling (chunk size from WithChunk).
func (p *Proc) ChunkDo(r sched.Range, body func(i int)) {
	p.loop(sched.Chunk, r, body)
}

// GuidedDo is guided selfscheduling: chunks of remaining/NP, shrinking to
// single iterations.
func (p *Proc) GuidedDo(r sched.Range, body func(i int)) {
	p.loop(sched.Guided, r, body)
}

// StealingDo is the engine-backed DOALL: per-process deques seeded with
// contiguous blocks, split lazily, stolen on miss.  WithChunk sets the
// split grain (default n/(8·NP)).
func (p *Proc) StealingDo(r sched.Range, body func(i int)) {
	p.loop(sched.Stealing, r, body)
}

// DoAll runs the loop under an explicitly chosen discipline.
func (p *Proc) DoAll(kind sched.Kind, r sched.Range, body func(i int)) {
	p.loop(kind, r, body)
}

// DoAll2 runs a doubly nested loop under an explicitly chosen discipline,
// distributing index pairs.
func (p *Proc) DoAll2(kind sched.Kind, r1, r2 sched.Range, body func(i, j int)) {
	p.loop2(kind, r1, r2, body)
}

// ChunkBody executes a whole scheduler span in one call: the ordinals
// lo, lo+stride, lo+2*stride, ... below hi.  Selfscheduled disciplines
// always hand out dense spans (stride 1); the cyclic prescheduled deal
// is expressed as one strided span per process.
type ChunkBody func(lo, hi, stride int)

// DoAllChunked is the chunk-granular DOALL: scheduler spans are forwarded
// to the body WHOLE instead of being shredded into one-index dispatches.
// Poison is checked once per span before the chunk runs (long chunks
// should call Check periodically themselves to keep abort latency
// bounded), the watchdog site covers the construct, and the paper's exit
// synchronization closes it exactly as DoAll does.  No per-iteration
// LoopIter trace events are emitted — callers needing an iteration-level
// trace should use DoAll.
func (p *Proc) DoAllChunked(kind sched.Kind, r sched.Range, chunk ChunkBody) {
	p.f.pc.Check()
	p.f.stats.Loops.Add(1)
	seq := p.nextSeq()
	n := r.Count()
	p.f.tr.Record(p.id, trace.LoopStart, kind.String(), int64(seq))
	p.enterSite(&siteLoop)
	switch kind {
	case sched.PreschedCyclic:
		// Cyclic dealing is a pure function of the process id: ordinals
		// id, id+np, id+2np, ... — a single strided span, no shared
		// scheduler state needed.
		if p.id < n {
			chunk(p.id, n, p.f.np)
		}
		p.f.bar.Sync(p.id, nil)
	case sched.PreschedBlock:
		// One contiguous block per process, remainder spread one-per-
		// process over the first n%np processes (same partition as the
		// block scheduler).
		base, rem := n/p.f.np, n%p.f.np
		lo := p.id*base + min(p.id, rem)
		size := base
		if p.id < rem {
			size++
		}
		if size > 0 {
			chunk(lo, lo+size, 1)
		}
		p.f.bar.Sync(p.id, nil)
	default:
		cfg := sched.Config{ChunkSize: p.f.chunk, LockFactory: p.f.profile.LockFactory()}
		s := p.f.entry(seq, func() any { return sched.New(kind, p.f.np, r, cfg) }).(sched.Scheduler)
		for {
			p.f.pc.Check()
			lo, hi, ok := s.Next(p.id)
			if !ok {
				break
			}
			chunk(lo, hi, 1)
		}
		p.f.bar.Sync(p.id, func() { p.f.dropEntry(seq) })
	}
	p.leaveSite()
	p.f.tr.Record(p.id, trace.LoopEnd, kind.String(), int64(seq))
}

// DoAll2Chunked is the chunk-granular doubly nested DOALL: the two index
// spaces are flattened exactly as DoAll2 flattens them, and the body
// receives whole spans of flat ordinals (k maps to the index pair
// (r1.Index(k/r2.Count()), r2.Index(k%r2.Count()))).
func (p *Proc) DoAll2Chunked(kind sched.Kind, r1, r2 sched.Range, chunk ChunkBody) {
	p.DoAllChunked(kind, sched.Seq(r1.Count()*r2.Count()), chunk)
}

// loop2 flattens a doubly nested loop into one ordinal space so that index
// *pairs* are the unit of distribution, the paper's "doubly nested loops"
// (§3.3).
func (p *Proc) loop2(kind sched.Kind, r1, r2 sched.Range, body func(i, j int)) {
	n2 := r2.Count()
	flat := sched.Seq(r1.Count() * n2)
	p.loop(kind, flat, func(k int) {
		body(r1.Index(k/n2), r2.Index(k%n2))
	})
}

// PreschedDo2 distributes the index pairs of a doubly nested loop
// prescheduled.
func (p *Proc) PreschedDo2(r1, r2 sched.Range, body func(i, j int)) {
	p.loop2(sched.PreschedCyclic, r1, r2, body)
}

// SelfschedDo2 distributes the index pairs of a doubly nested loop
// selfscheduled.
func (p *Proc) SelfschedDo2(r1, r2 sched.Range, body func(i, j int)) {
	p.loop2(sched.SelfLock, r1, r2, body)
}

// Block is one Pcase section: an independent single-stream code block,
// optionally guarded by a condition.  A nil Cond means unconditional.
// Conditions are evaluated by the process that would execute the block —
// "any number of conditions may be true simultaneously" (§3.3).
type Block struct {
	Cond func() bool
	Body func()
}

// Case builds an unconditional block.
func Case(body func()) Block { return Block{Body: body} }

// CaseIf builds a conditional block.
func CaseIf(cond func() bool, body func()) Block { return Block{Cond: cond, Body: body} }

// Pcase distributes the blocks over the force prescheduled: block b goes
// to process b mod NP, "allocat[ing] the blocks sequentially to the
// processes and ... thus completely machine independent" (§4.2).  Each
// block executes at most once (exactly once when its condition holds); no
// execution order may be assumed.  The construct closes with the implicit
// exit barrier.
func (p *Proc) Pcase(blocks ...Block) {
	p.f.pc.Check()
	seq := p.nextSeq()
	for b := p.id; b < len(blocks); b += p.f.np {
		p.runBlock(blocks[b])
	}
	p.enterSite(&sitePcase)
	p.f.bar.Sync(p.id, func() { p.f.dropEntry(seq) })
	p.leaveSite()
}

// SelfschedPcase distributes the blocks over the force selfscheduled.
// With the default discipline a shared block counter behind the machine's
// lock deals them out — the paper's "asynchronous variable ... needed for
// work distribution" (§4.2); WithPcaseSched(sched.Stealing) draws the
// blocks from the engine's per-process deques instead, the same
// distribution layer Askfor and stealing DOALLs use.
func (p *Proc) SelfschedPcase(blocks ...Block) {
	p.f.pc.Check()
	seq := p.nextSeq()
	cfg := sched.Config{ChunkSize: 1, LockFactory: p.f.profile.LockFactory()}
	s := p.f.entry(seq, func() any {
		return sched.New(p.f.pcaseKind, p.f.np, sched.Seq(len(blocks)), cfg)
	}).(sched.Scheduler)
	for {
		p.f.pc.Check()
		lo, hi, ok := s.Next(p.id)
		if !ok {
			break
		}
		for b := lo; b < hi; b++ {
			p.runBlock(blocks[b])
		}
	}
	p.enterSite(&sitePcase)
	p.f.bar.Sync(p.id, func() { p.f.dropEntry(seq) })
	p.leaveSite()
}

func (p *Proc) runBlock(b Block) {
	if b.Body == nil {
		return
	}
	if b.Cond != nil && !b.Cond() {
		return
	}
	p.f.stats.PcaseBlocks.Add(1)
	p.f.tr.Record(p.id, trace.PcaseBlock, "", 0)
	b.Body()
}

// Askfor is the most general work-distribution construct (§3.3, citing
// [LO83]): "the degree of concurrency is not known at compile time.
// Rather the program can request during run time that a new concurrent
// instance of the code segment is executed."
//
// Every process of the force repeatedly draws a task from the shared pool
// and runs body(task, put); body may call put to request new concurrent
// task instances.  The first process to reach the construct seeds the pool
// from its seed argument, so SPMD callers must pass the same seed in every
// process.  The construct terminates when the pool is empty and no task is
// executing; all processes then proceed.
//
// The pool is an engine.Pool: by default per-process work-stealing deques
// (put is a lock-free local push, get a local pop with steal-half on
// miss), or the [LO83]-style central monitor under WithAskfor
// (engine.MonitorPool).  put must be called from the process executing
// body, which is the only caller the construct exposes it to.
func (p *Proc) Askfor(seed []any, body func(task any, put func(any))) {
	p.f.pc.Check()
	seq := p.nextSeq()
	pool := p.f.entry(seq, func() any {
		return engine.NewPool(p.f.askfor, p.f.np, seed, p.f.pc)
	}).(engine.Pool)

	put := func(t any) {
		faultinject.Fire(faultinject.AskforPut, p.id, p.f.pc)
		pool.Put(p.id, t)
	}
	p.enterSite(&siteAskfor)
	for {
		// Per-task poison check: the stealing pool's hand-slot fast
		// path hands back a put-then-take worker's own successor
		// without ever parking, so without this a worker could drain
		// an entire task chain after the force died.
		p.f.pc.Check()
		faultinject.Fire(faultinject.AskforTake, p.id, p.f.pc)
		task, ok := pool.Next(p.id)
		if !ok {
			break
		}
		p.f.stats.AskforTasks.Add(1)
		p.f.tr.Record(p.id, trace.AskforTask, "", 0)
		body(task, put)
		pool.Done(p.id)
	}
	// Close the construct; the pool object (and its poison
	// subscription) is retired by the last process through the exit
	// barrier.
	p.f.bar.Sync(p.id, func() { pool.Close(); p.f.dropEntry(seq) })
	p.leaveSite()
}

// Component is one parallel code section of a Resolve: a weight (relative
// share of the force) and a body executed by the component's sub-force.
type Component struct {
	Weight int
	Body   func(sp *Proc)
}

// Resolve partitions the force into subsets executing different parallel
// code sections concurrently — the concept the paper lists as "yet
// unimplemented" (§3.3); this implementation is the repository's
// extension, documented in DESIGN.md.
//
// Processes are divided among the components in proportion to their
// weights (every component receives at least one process when NP allows;
// otherwise trailing components are executed by the force sequentially in
// a second pass, preserving the all-components-execute guarantee).  Each
// component's body runs on a scoped sub-force: inside it, sp.ID() ranges
// over the component's processes, sp.NP() is the component's size, and
// barriers, loops and critical sections are private to the component.
// The construct closes with a full-force barrier.
func (p *Proc) Resolve(components ...Component) {
	p.f.pc.Check()
	seq := p.nextSeq()
	if len(components) == 0 {
		p.f.bar.Sync(p.id, func() { p.f.dropEntry(seq) })
		return
	}
	plan := p.f.entry(seq, func() any {
		return planResolve(p.f, components)
	}).(*resolvePlan)

	a := plan.assign[p.id]
	if a.component >= 0 {
		// The sub-force Proc keeps this process's watchdog slot, so a
		// stall inside the component is attributed to the right pid.
		sub := &Proc{id: a.rank, f: plan.sub[a.component], site: p.site}
		components[a.component].Body(sub)
	}
	// Components that received no processes run after an intermediate
	// full barrier, executed by the whole force as one sub-force each,
	// in order.
	if len(plan.leftover) > 0 {
		p.enterSite(&siteResolve)
		p.f.bar.Sync(p.id, nil)
		p.leaveSite()
		for _, ci := range plan.leftover {
			sub := &Proc{id: p.id, f: plan.sub[ci], site: p.site}
			components[ci].Body(sub)
		}
	}
	p.enterSite(&siteResolve)
	p.f.bar.Sync(p.id, func() {
		// Unbind the sub-forces' barriers from the poison cell so a
		// subscription-based barrier does not outlive the construct.
		for _, s := range plan.sub {
			barrier.SetPoison(s.bar, nil)
		}
		p.f.dropEntry(seq)
	})
	p.leaveSite()
}

type resolveAssign struct {
	component int // -1: unassigned (cannot happen after planning)
	rank      int
}

type resolvePlan struct {
	assign   []resolveAssign
	sub      []*Force
	leftover []int // components that received zero processes
}

// planResolve allocates processes to components by largest-remainder
// apportionment over the weights.
func planResolve(f *Force, components []Component) *resolvePlan {
	np, nc := f.np, len(components)
	weights := make([]int, nc)
	total := 0
	for i, c := range components {
		w := c.Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		total += w
	}
	counts := make([]int, nc)
	assigned := 0
	type rem struct{ idx, num int }
	rems := make([]rem, nc)
	for i, w := range weights {
		counts[i] = np * w / total
		rems[i] = rem{i, np * w % total}
		assigned += counts[i]
	}
	// Distribute the remainder to the largest fractional parts, stable
	// by index for determinism.
	for assigned < np {
		best := -1
		for j := range rems {
			if best == -1 || rems[j].num > rems[best].num {
				best = j
			}
		}
		counts[rems[best].idx]++
		rems[best].num = -1
		assigned++
	}
	// Guarantee progress for every component while NP allows: steal one
	// process from the largest allocation for each empty component.
	for i := 0; i < nc; i++ {
		if counts[i] > 0 {
			continue
		}
		big, bigCount := -1, 1
		for j := 0; j < nc; j++ {
			if counts[j] > bigCount {
				big, bigCount = j, counts[j]
			}
		}
		if big >= 0 {
			counts[big]--
			counts[i]++
		}
	}

	plan := &resolvePlan{assign: make([]resolveAssign, np), sub: make([]*Force, nc)}
	pid := 0
	for i := 0; i < nc; i++ {
		if counts[i] == 0 {
			plan.leftover = append(plan.leftover, i)
			// Leftover components execute on the full force.
			plan.sub[i] = newSubForce(f, np)
			continue
		}
		plan.sub[i] = newSubForce(f, counts[i])
		for r := 0; r < counts[i]; r++ {
			plan.assign[pid] = resolveAssign{component: i, rank: r}
			pid++
		}
	}
	return plan
}

// newSubForce builds a scoped force sharing the parent's machine profile
// but with its own barrier, locks, construct table and stats.  Sub-forces
// have no workers of their own: their processes are the parent's workers,
// re-scoped.
func newSubForce(parent *Force, np int) *Force {
	sub := &Force{
		np:        np,
		profile:   parent.profile,
		barKind:   parent.barKind,
		chunk:     parent.chunk,
		tr:        parent.tr,
		askfor:    parent.askfor,
		pcaseKind: parent.pcaseKind,
		reduceK:   parent.reduceK,
		// Fault containment is force-wide: a sub-force's processes are
		// the parent's workers, so they share the parent's poison cell
		// and a failure in any component aborts the whole Resolve.
		// (No sites slice: sub-force Procs carry the parent process's
		// watchdog slot by pointer.)
		pc: parent.pc,
	}
	sub.bar = barrier.New(sub.barKind, np, sub.profile.LockFactory())
	barrier.SetPoison(sub.bar, sub.pc)
	sub.locks = lock.NewSet(sub.profile.LockFactory())
	sub.initFusedEps()
	return sub
}
