package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/barrier"
	"repro/internal/engine"
	"repro/internal/sched"
)

// runExpectPanic runs program on f expecting Run to re-panic, returns
// the recovered value, and fails the test if the run does not finish
// within the deadline — the hang this PR exists to eliminate.
func runExpectPanic(t *testing.T, f *Force, program func(p *Proc)) any {
	t.Helper()
	got := make(chan any, 1)
	go func() {
		defer func() { got <- recover() }()
		f.Run(program)
		got <- nil
	}()
	select {
	case v := <-got:
		if v == nil {
			t.Fatal("Run returned without panicking")
		}
		return v
	case <-time.After(30 * time.Second):
		t.Fatal("aborted Run did not finish: force is hung")
		return nil
	}
}

var errBoom = errors.New("boom")

// TestAbortWakesBarrierPeers is the core-level repro of the issue: one
// process fails before the barrier its peers are already inside; the
// poison protocol must wake them, and Run must re-panic the original
// failure — under every barrier algorithm.
func TestAbortWakesBarrierPeers(t *testing.T) {
	for _, bk := range barrier.Kinds() {
		t.Run(bk.String(), func(t *testing.T) {
			f := New(4, WithBarrier(bk))
			defer f.Close()
			v := runExpectPanic(t, f, func(p *Proc) {
				if p.ID() == 1 {
					panic(errBoom)
				}
				p.Barrier()
			})
			if v != any(errBoom) {
				t.Fatalf("Run re-panicked %v, want the original %v", v, errBoom)
			}
		})
	}
}

// TestForceSurvivesAbortedRun verifies persistent-engine reuse: the
// same force completes a correct Run after an aborted one, with fresh
// construct state.
func TestForceSurvivesAbortedRun(t *testing.T) {
	for _, bk := range barrier.Kinds() {
		t.Run(bk.String(), func(t *testing.T) {
			f := New(4, WithBarrier(bk))
			defer f.Close()
			for round := 0; round < 3; round++ {
				runExpectPanic(t, f, func(p *Proc) {
					p.Barrier() // a completed construct before the failure
					if p.ID() == 2 {
						panic(fmt.Errorf("round %d failure", round))
					}
					p.Barrier()
					p.Barrier()
				})
				// The next Run must start clean: barriers, loops and a
				// reduction all line up again.
				var sum atomic.Int64
				f.Run(func(p *Proc) {
					p.Barrier()
					p.PreschedDo(sched.Seq(40), func(i int) { sum.Add(int64(i)) })
					if got := Gsum(p, 1); got != 4 {
						panic(fmt.Sprintf("Gsum after abort = %d, want 4", got))
					}
				})
				if sum.Load() != 780 {
					t.Fatalf("round %d: loop after abort summed %d, want 780", round, sum.Load())
				}
				sum.Store(0)
			}
		})
	}
}

// TestAbortInsideConstructs covers non-uniform failures at each
// construct class: the erring process dies inside the construct while
// peers are blocked in (or before) it.
func TestAbortInsideConstructs(t *testing.T) {
	cases := map[string]func(p *Proc){
		"critical": func(p *Proc) {
			if p.ID() == 0 {
				p.Critical("L", func() { panic(errBoom) })
			}
			p.Barrier()
		},
		"doall body": func(p *Proc) {
			p.SelfschedDo(sched.Seq(64), func(i int) {
				if i == 7 {
					panic(errBoom)
				}
			})
		},
		"reduce missing contributor": func(p *Proc) {
			if p.ID() == 3 {
				panic(errBoom)
			}
			Gsum(p, 1)
		},
		"pcase": func(p *Proc) {
			p.Pcase(
				Case(func() { panic(errBoom) }),
				Case(func() {}),
				Case(func() {}),
				Case(func() {}),
			)
		},
		"barrier section": func(p *Proc) {
			p.BarrierSection(func() { panic(errBoom) })
		},
	}
	for name, program := range cases {
		t.Run(name, func(t *testing.T) {
			f := New(4)
			defer f.Close()
			if v := runExpectPanic(t, f, program); v != any(errBoom) {
				t.Fatalf("Run re-panicked %v, want %v", v, errBoom)
			}
			// Reuse after each abort.
			f.Run(func(p *Proc) { p.Barrier() })
		})
	}
}

// TestAbortInsideResolve: a component body failing inside Resolve
// aborts the whole construct — peers in sibling components (blocked in
// their sub-barriers) and in the closing full barrier wake — and the
// force stays reusable, including under the subscription-based cond
// barrier whose sub-force bindings must be released on abort.
func TestAbortInsideResolve(t *testing.T) {
	for _, bk := range []barrier.Kind{barrier.TwoLock, barrier.CondBroadcast} {
		t.Run(bk.String(), func(t *testing.T) {
			f := New(4, WithBarrier(bk))
			defer f.Close()
			for round := 0; round < 2; round++ {
				v := runExpectPanic(t, f, func(p *Proc) {
					p.Resolve(
						Component{Weight: 1, Body: func(sp *Proc) {
							if sp.ID() == 0 {
								panic(errBoom)
							}
							sp.Barrier()
						}},
						Component{Weight: 1, Body: func(sp *Proc) {
							sp.Barrier()
							sp.Barrier() // second episode never fills once poisoned
							sp.Barrier()
						}},
					)
				})
				if v != any(errBoom) {
					t.Fatalf("Run re-panicked %v, want %v", v, errBoom)
				}
				f.Run(func(p *Proc) { p.Barrier() })
			}
		})
	}
}

// TestAbortWakesAskforWaiters: one process draws the only task and dies
// in it while the peers are parked waiting for work, under both pool
// disciplines.
func TestAbortWakesAskforWaiters(t *testing.T) {
	for _, pk := range engine.PoolKinds() {
		t.Run(pk.String(), func(t *testing.T) {
			f := New(4, WithAskfor(pk))
			defer f.Close()
			v := runExpectPanic(t, f, func(p *Proc) {
				p.Askfor([]any{0}, func(task any, put func(any)) {
					// Give the peers time to park in Next before dying.
					time.Sleep(20 * time.Millisecond)
					panic(errBoom)
				})
			})
			if v != any(errBoom) {
				t.Fatalf("Run re-panicked %v, want %v", v, errBoom)
			}
			f.Run(func(p *Proc) { p.Barrier() })
		})
	}
}

// TestAbortWakesAsyncConsumer: a Consume no Produce will ever match
// must unwind when a peer fails.
func TestAbortWakesAsyncConsumer(t *testing.T) {
	f := New(4)
	defer f.Close()
	av := NewAsync[int](f)
	v := runExpectPanic(t, f, func(p *Proc) {
		switch p.ID() {
		case 0:
			av.Consume() // never produced
		case 1:
			time.Sleep(20 * time.Millisecond)
			panic(errBoom)
		}
	})
	if v != any(errBoom) {
		t.Fatalf("Run re-panicked %v, want %v", v, errBoom)
	}
	f.Run(func(p *Proc) { p.Barrier() })
}

// TestExternalPoisonAbortsRun models the stall watchdog: poisoning the
// force from outside wakes a process blocked in a barrier that can
// never fill.
func TestExternalPoisonAbortsRun(t *testing.T) {
	f := New(4)
	defer f.Close()
	stall := errors.New("external abort")
	go func() {
		time.Sleep(50 * time.Millisecond)
		f.Fault().Poison(stall)
	}()
	v := runExpectPanic(t, f, func(p *Proc) {
		if p.ID() == 0 {
			p.Barrier() // peers never arrive: non-conformant program
		}
	})
	if v != any(stall) {
		t.Fatalf("Run re-panicked %v, want %v", v, stall)
	}
	f.Run(func(p *Proc) { p.Barrier() })
}

// TestBlockedReport: the watchdog's view names the construct each
// process is blocked at.
func TestBlockedReport(t *testing.T) {
	f := New(2)
	defer f.Close()
	entered := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		defer func() { _ = recover() }() // the poisoned Run re-panics
		f.Run(func(p *Proc) {
			if p.ID() == 0 {
				close(entered)
				p.Barrier()
			} else {
				<-entered
				time.Sleep(500 * time.Millisecond)
			}
		})
	}()
	<-entered
	time.Sleep(100 * time.Millisecond)
	sites := f.Blocked()
	if sites[0] != "Barrier" {
		t.Fatalf("Blocked()[0] = %q, want Barrier", sites[0])
	}
	f.Fault().Poison(errors.New("unstick"))
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("poisoned run did not drain")
	}
}
