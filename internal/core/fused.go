package core

import (
	"repro/internal/faultinject"
	"repro/internal/reduce"
	"repro/internal/sched"
	"repro/internal/trace"
)

// The fused construct entry points: a chunked DOALL whose exit barrier
// is elided because the *next* collective — either another fused DOALL
// span or a numeric reduction join — provides the synchronization.
//
// A fused region compiled by the interpreter's fusion pass executes as
//
//	p.DoAllChunkedOpen(kind, r, chunk)   // spans only, no exit barrier
//	x := <evaluate the reduction operand>
//	out := p.FusedJoin(op, numKind, x)   // the single closing collective
//
// retiring one barrier episode and one reduce episode per construct
// instance.  FusedJoin folds the per-process contributions in pid
// order (reduce.NumEpisode), so results are bit-identical to the
// unfused PrivateSlots strategy; it is also a full synchronization
// point, preserving the construct's exit guarantee.  The join must
// directly follow the open on every process — it retires the open's
// selfscheduled construct entry and completes its site bookkeeping.

var siteFused = "fused DOALL+reduction"

// DoAllChunkedOpen runs the spans of a chunk-granular DOALL exactly
// like DoAllChunked but leaves the construct OPEN: no exit barrier is
// executed, and the watchdog site stays entered.  The caller must
// close the construct with FusedJoin on every process.  Poison is
// checked once per span, as in DoAllChunked.
func (p *Proc) DoAllChunkedOpen(kind sched.Kind, r sched.Range, chunk ChunkBody) {
	p.f.pc.Check()
	p.f.stats.Loops.Add(1)
	seq := p.nextSeq()
	n := r.Count()
	p.f.tr.Record(p.id, trace.LoopStart, kind.String(), int64(seq))
	p.enterSite(&siteLoop)
	switch kind {
	case sched.PreschedCyclic:
		if p.id < n {
			chunk(p.id, n, p.f.np)
		}
	case sched.PreschedBlock:
		base, rem := n/p.f.np, n%p.f.np
		lo := p.id*base + min(p.id, rem)
		size := base
		if p.id < rem {
			size++
		}
		if size > 0 {
			chunk(lo, lo+size, 1)
		}
	default:
		cfg := sched.Config{ChunkSize: p.f.chunk, LockFactory: p.f.profile.LockFactory()}
		s := p.f.entry(seq, func() any { return sched.New(kind, p.f.np, r, cfg) }).(sched.Scheduler)
		for {
			p.f.pc.Check()
			lo, hi, ok := s.Next(p.id)
			if !ok {
				break
			}
			chunk(lo, hi, 1)
		}
		// The scheduler entry is retired by the FusedJoin that closes
		// the region — the position the exit barrier's section would
		// have had.  A region may leave several constructs open, so the
		// entries queue until the join.
		p.pendingDrops = append(p.pendingDrops, seq)
	}
	p.f.tr.Record(p.id, trace.LoopEnd, kind.String(), int64(seq))
}

// FusedJoin closes a fused construct: every process contributes one
// bit-encoded value (reduce.NumInt carries an int64, reduce.NumReal a
// float64 via math.Float64bits), all receive the pid-order fold under
// op, and none proceeds before the fold is complete — the DOALL's exit
// guarantee and the reduction, one collective.  The force's two
// reusable episodes alternate, so the steady state allocates nothing.
func (p *Proc) FusedJoin(op reduce.Op, k reduce.NumKind, x uint64) uint64 {
	f := p.f
	f.pc.Check()
	f.stats.Reductions.Add(1)
	faultinject.Fire(faultinject.FusedJoin, p.id, f.pc)
	ep := f.fusedEps[p.fuse&1]
	p.fuse++
	p.enterSite(&siteFused)
	var out uint64
	if len(p.pendingDrops) > 0 {
		seqs := p.pendingDrops
		out = ep.Do(p.id, op, k, x, func() {
			for _, seq := range seqs {
				f.dropEntry(seq)
			}
		})
		p.pendingDrops = p.pendingDrops[:0]
	} else {
		out = ep.Do(p.id, op, k, x, nil)
	}
	p.leaveSite()
	return out
}
