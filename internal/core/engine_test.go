package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/sched"
)

// TestForceReuseKeepsSequenceAndStats is the persistent-engine reuse
// property: sequential re-Runs on one Force keep the SPMD
// construct-sequence table straight (every construct instance gets fresh
// shared state each run) and the stats counters accumulate exactly.
func TestForceReuseKeepsSequenceAndStats(t *testing.T) {
	const np, runs = 4, 5
	f := New(np, WithChunk(4))
	defer f.Close()
	var loopIters, pcaseRuns, askforRuns atomic.Int64
	for r := 0; r < runs; r++ {
		f.Run(func(p *Proc) {
			p.SelfschedDo(sched.Seq(30), func(i int) { loopIters.Add(1) })
			p.StealingDo(sched.Seq(40), func(i int) { loopIters.Add(1) })
			p.SelfschedPcase(
				Case(func() { pcaseRuns.Add(1) }),
				Case(func() { pcaseRuns.Add(1) }),
				Case(func() { pcaseRuns.Add(1) }),
			)
			p.Askfor([]any{1, 2, 3}, func(task any, put func(any)) {
				askforRuns.Add(1)
			})
			p.Barrier()
		})
		// Per-run exactness, not just totals: a stale construct entry
		// from the previous run would double-execute or drop work.
		if got := loopIters.Load(); got != int64((r+1)*70) {
			t.Fatalf("run %d: loop iterations = %d, want %d", r, got, (r+1)*70)
		}
		if got := pcaseRuns.Load(); got != int64((r+1)*3) {
			t.Fatalf("run %d: pcase blocks = %d, want %d", r, got, (r+1)*3)
		}
		if got := askforRuns.Load(); got != int64((r+1)*3) {
			t.Fatalf("run %d: askfor tasks = %d, want %d", r, got, (r+1)*3)
		}
	}
	st := f.Stats()
	if got := st.Loops.Load(); got != int64(runs*2*np) {
		t.Errorf("loop stat = %d, want %d", got, runs*2*np)
	}
	if got := st.PcaseBlocks.Load(); got != int64(runs*3) {
		t.Errorf("pcase stat = %d, want %d", got, runs*3)
	}
	if got := st.AskforTasks.Load(); got != int64(runs*3) {
		t.Errorf("askfor stat = %d, want %d", got, runs*3)
	}
	if got := st.Barriers.Load(); got != int64(runs*np) {
		t.Errorf("barrier stat = %d, want %d", got, runs*np)
	}
}

// TestAskforPutHeavyTreeBothPools drains an unbalanced, put-heavy tree —
// each spine node spawns a deep child plus a fan of leaves, the shape the
// central monitor serializes worst — and requires exact task conservation
// and termination for both pool disciplines.  Run under -race in CI.
func TestAskforPutHeavyTreeBothPools(t *testing.T) {
	const depth, width = 120, 6
	want := int64(depth*(width+1) + 1)
	for _, kind := range engine.PoolKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for _, np := range []int{1, 3, 8} {
				f := New(np, WithAskfor(kind))
				var nodes atomic.Int64
				f.Run(func(p *Proc) {
					p.Askfor([]any{depth}, func(task any, put func(any)) {
						d := task.(int)
						nodes.Add(1)
						if d > 0 {
							put(d - 1)
							for w := 0; w < width; w++ {
								put(0)
							}
						}
					})
				})
				if got := nodes.Load(); got != want {
					t.Errorf("np=%d: %d nodes, want %d", np, got, want)
				}
				if got := f.Stats().AskforTasks.Load(); got != want {
					t.Errorf("np=%d: askfor stat = %d, want %d", np, got, want)
				}
				f.Close()
			}
		})
	}
}

// TestAskforDynamicTreeStealingMatchesMonitor runs the same balanced tree
// under both pools and checks identical work is done.
func TestAskforDynamicTreeStealingMatchesMonitor(t *testing.T) {
	const np, d = 5, 9
	want := int64(1<<d - 1)
	for _, kind := range engine.PoolKinds() {
		f := New(np, WithAskfor(kind))
		var nodes atomic.Int64
		f.Run(func(p *Proc) {
			p.Askfor([]any{1}, func(task any, put func(any)) {
				nodes.Add(1)
				if task.(int) < d {
					put(task.(int) + 1)
					put(task.(int) + 1)
				}
			})
		})
		if nodes.Load() != want {
			t.Errorf("%s: %d nodes, want %d", kind, nodes.Load(), want)
		}
		f.Close()
	}
}

// TestSelfschedPcaseStealing draws Pcase blocks from the engine deques.
func TestSelfschedPcaseStealing(t *testing.T) {
	for _, np := range []int{1, 3, 8} {
		f := New(np, WithPcaseSched(sched.Stealing))
		const nblocks = 11
		var runs [nblocks]atomic.Int64
		f.Run(func(p *Proc) {
			blocks := make([]Block, nblocks)
			for b := 0; b < nblocks; b++ {
				b := b
				blocks[b] = Case(func() { runs[b].Add(1) })
			}
			p.SelfschedPcase(blocks...)
		})
		for b := range runs {
			if got := runs[b].Load(); got != 1 {
				t.Errorf("np=%d: block %d ran %d times", np, b, got)
			}
		}
		f.Close()
	}
}

// TestCloseIdempotent: Close may be called repeatedly, also on forces
// that never ran.
func TestCloseIdempotent(t *testing.T) {
	f := New(2, WithMachine(machine.HEP))
	f.Run(func(p *Proc) {})
	f.Close()
	f.Close()
}

// TestCreationCostPaidOnce: with a costed machine profile, repeated Runs
// must not re-pay the per-process creation cost — the engine's workers
// were created once.  Generous bound: 50 empty Runs under fork-copy cost
// (200µs × np per creation) must finish far below the re-pay cost.
func TestCreationCostPaidOnce(t *testing.T) {
	f := New(4, WithMachine(machine.Encore))
	defer f.Close()
	for i := 0; i < 50; i++ {
		f.Run(func(p *Proc) {})
	}
	// Nothing to assert beyond completion: with the old spawn-per-Run
	// driver this loop cost 50×4×200µs of busy wait; BenchmarkCreation
	// quantifies the difference.
}
