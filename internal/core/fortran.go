package core

import (
	"math"

	"repro/internal/asyncvar"
)

// AsyncCell is the asynchronous-variable interface as referenced by
// code generated with internal/codegen; asyncvar.V satisfies it.
// (A generic type alias would be the natural spelling, but the module
// targets Go 1.22, which does not permit parameterized aliases.)
type AsyncCell[T any] interface {
	// Produce waits for empty, writes v, and marks the variable full.
	Produce(v T)
	// Consume waits for full, reads the value, and marks it empty.
	Consume() T
	// Copy waits for full and reads the value, leaving it full.
	Copy() T
	// Void forces the state to empty.
	Void()
	// IsFull reports the advisory state.
	IsFull() bool
}

var _ AsyncCell[int] = (asyncvar.V[int])(nil)

// number covers the numeric types Force programs use.
type number interface {
	~int | ~int64 | ~float64
}

// Min is the Fortran MIN intrinsic for generated code.
func Min[T number](xs ...T) T {
	best := xs[0]
	for _, x := range xs[1:] {
		if x < best {
			best = x
		}
	}
	return best
}

// Max is the Fortran MAX intrinsic for generated code.
func Max[T number](xs ...T) T {
	best := xs[0]
	for _, x := range xs[1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// Abs is the Fortran ABS intrinsic for generated code.
func Abs[T number](x T) T {
	if x < 0 {
		return -x
	}
	return x
}

// Mod is the Fortran MOD intrinsic for generated code: integer remainder
// for integers, math.Mod for reals.
func Mod[T number](a, b T) T {
	switch av := any(a).(type) {
	case int:
		return any(av % int(any(b).(int))).(T)
	case int64:
		return any(av % int64(any(b).(int64))).(T)
	default:
		return any(math.Mod(any(a).(float64), any(b).(float64))).(T)
	}
}

// Sqrt is the Fortran SQRT intrinsic for generated code.
func Sqrt(x float64) float64 { return math.Sqrt(x) }

// Nint is the Fortran NINT intrinsic for generated code (round to nearest
// integer).
func Nint(x float64) int { return int(math.Round(x)) }
