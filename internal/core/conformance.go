package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/barrier"
	"repro/internal/machine"
	"repro/internal/reduce"
	"repro/internal/sched"
	"repro/internal/shm"
)

// Conformance runs the full Force construct checklist on one machine
// profile with the paper's two-lock barrier and reports the first
// violation.  It is the per-cell check of the six-machine portability
// matrix (experiment T1): the same program must produce the same results
// on every machine, differing only in which machine-dependent primitives
// it exercised.
func Conformance(m machine.Profile, np int) error {
	return ConformanceWith(m, barrier.TwoLock, np)
}

// ConformanceWith is Conformance with an explicit barrier algorithm.
func ConformanceWith(m machine.Profile, bk barrier.Kind, np int) error {
	checks := []struct {
		name string
		run  func(m machine.Profile, bk barrier.Kind, np int) error
	}{
		{"driver", checkDriver},
		{"barrier", checkBarrier},
		{"barrier-section", checkBarrierSection},
		{"critical", checkCritical},
		{"presched-do", checkPreschedDo},
		{"selfsched-do", checkSelfschedDo},
		{"doall-2d", checkDoall2},
		{"pcase", checkPcase},
		{"askfor", checkAskfor},
		{"reduce", checkReduce},
		{"resolve", checkResolve},
		{"produce-consume", checkProduceConsume},
		{"void", checkVoid},
		{"shared-memory-layout", checkSharedLayout},
	}
	for _, c := range checks {
		if err := c.run(m, bk, np); err != nil {
			return fmt.Errorf("%s/%s: %s: %w", m.Name, bk, c.name, err)
		}
	}
	return nil
}

func newConfForce(m machine.Profile, bk barrier.Kind, np int) *Force {
	return New(np, WithMachine(m), WithBarrier(bk))
}

func checkDriver(m machine.Profile, bk barrier.Kind, np int) error {
	f := newConfForce(m, bk, np)
	var seen sync.Map
	var count atomic.Int64
	f.Run(func(p *Proc) {
		count.Add(1)
		if _, dup := seen.LoadOrStore(p.ID(), true); dup {
			count.Add(1000)
		}
	})
	if count.Load() != int64(np) {
		return fmt.Errorf("driver ran %d processes, want %d", count.Load(), np)
	}
	return nil
}

func checkBarrier(m machine.Profile, bk barrier.Kind, np int) error {
	f := newConfForce(m, bk, np)
	var counter atomic.Int64
	var bad atomic.Int64
	f.Run(func(p *Proc) {
		for e := 1; e <= 10; e++ {
			counter.Add(1)
			p.Barrier()
			if counter.Load() != int64(np*e) {
				bad.Add(1)
			}
			p.Barrier()
		}
	})
	if bad.Load() != 0 {
		return fmt.Errorf("%d barrier episodes leaked", bad.Load())
	}
	return nil
}

func checkBarrierSection(m machine.Profile, bk barrier.Kind, np int) error {
	f := newConfForce(m, bk, np)
	runs := 0
	var bad atomic.Int64
	f.Run(func(p *Proc) {
		for e := 1; e <= 10; e++ {
			p.BarrierSection(func() { runs++ })
			if runs != e {
				bad.Add(1)
			}
		}
	})
	if runs != 10 || bad.Load() != 0 {
		return fmt.Errorf("section ran %d times (want 10), %d bad observations", runs, bad.Load())
	}
	return nil
}

func checkCritical(m machine.Profile, bk barrier.Kind, np int) error {
	f := newConfForce(m, bk, np)
	counter := 0
	f.Run(func(p *Proc) {
		for i := 0; i < 200; i++ {
			p.Critical("c", func() { counter++ })
		}
	})
	if counter != np*200 {
		return fmt.Errorf("critical counter = %d, want %d", counter, np*200)
	}
	return nil
}

func checkLoop(f *Force, do func(p *Proc, r sched.Range, body func(int))) error {
	r := sched.Range{Start: 3, Last: 150, Incr: 3}
	var sum atomic.Int64
	f.Run(func(p *Proc) {
		do(p, r, func(i int) { sum.Add(int64(i)) })
	})
	want := int64(0)
	for k := 0; k < r.Count(); k++ {
		want += int64(r.Index(k))
	}
	if sum.Load() != want {
		return fmt.Errorf("loop sum = %d, want %d", sum.Load(), want)
	}
	return nil
}

func checkPreschedDo(m machine.Profile, bk barrier.Kind, np int) error {
	return checkLoop(newConfForce(m, bk, np), (*Proc).PreschedDo)
}

func checkSelfschedDo(m machine.Profile, bk barrier.Kind, np int) error {
	return checkLoop(newConfForce(m, bk, np), (*Proc).SelfschedDo)
}

func checkDoall2(m machine.Profile, bk barrier.Kind, np int) error {
	f := newConfForce(m, bk, np)
	var cells atomic.Int64
	f.Run(func(p *Proc) {
		p.SelfschedDo2(sched.Seq(7), sched.Seq(9), func(i, j int) { cells.Add(1) })
	})
	if cells.Load() != 63 {
		return fmt.Errorf("2D loop ran %d cells, want 63", cells.Load())
	}
	return nil
}

func checkPcase(m machine.Profile, bk barrier.Kind, np int) error {
	f := newConfForce(m, bk, np)
	var runs [5]atomic.Int64
	f.Run(func(p *Proc) {
		p.Pcase(
			Case(func() { runs[0].Add(1) }),
			Case(func() { runs[1].Add(1) }),
			CaseIf(func() bool { return true }, func() { runs[2].Add(1) }),
			CaseIf(func() bool { return false }, func() { runs[3].Add(1) }),
			Case(func() { runs[4].Add(1) }),
		)
	})
	want := []int64{1, 1, 1, 0, 1}
	for i, w := range want {
		if runs[i].Load() != w {
			return fmt.Errorf("pcase block %d ran %d times, want %d", i, runs[i].Load(), w)
		}
	}
	return nil
}

func checkAskfor(m machine.Profile, bk barrier.Kind, np int) error {
	f := newConfForce(m, bk, np)
	var nodes atomic.Int64
	f.Run(func(p *Proc) {
		p.Askfor([]any{1}, func(task any, put func(any)) {
			d := task.(int)
			nodes.Add(1)
			if d < 6 {
				put(d + 1)
				put(d + 1)
			}
		})
	})
	if got, want := nodes.Load(), int64(1<<6-1); got != want {
		return fmt.Errorf("askfor tree = %d nodes, want %d", got, want)
	}
	return nil
}

func checkReduce(m machine.Profile, bk barrier.Kind, np int) error {
	// Every strategy must produce the same values on every machine; the
	// Critical strategy exercises the machine's own lock mechanism.
	for _, k := range reduce.Kinds() {
		f := New(np, WithMachine(m), WithBarrier(bk), WithReduce(k))
		var bad atomic.Int64
		f.Run(func(p *Proc) {
			if Gsum(p, p.ID()+1) != np*(np+1)/2 {
				bad.Add(1)
			}
			if Gmax(p, float64(p.ID())) != float64(np-1) {
				bad.Add(1)
			}
			if Gand(p, true) != true || Gor(p, p.ID() == 0) != true {
				bad.Add(1)
			}
		})
		f.Close()
		if bad.Load() != 0 {
			return fmt.Errorf("strategy %s: %d wrong reduction results", k, bad.Load())
		}
	}
	return nil
}

func checkResolve(m machine.Profile, bk barrier.Kind, np int) error {
	f := newConfForce(m, bk, np)
	var a, b atomic.Int64
	f.Run(func(p *Proc) {
		p.Resolve(
			Component{Weight: 1, Body: func(sp *Proc) {
				sp.PreschedDo(sched.Seq(40), func(i int) { a.Add(1) })
			}},
			Component{Weight: 1, Body: func(sp *Proc) {
				sp.PreschedDo(sched.Seq(50), func(i int) { b.Add(1) })
			}},
		)
	})
	if a.Load() != 40 || b.Load() != 50 {
		return fmt.Errorf("resolve components ran %d/%d iterations, want 40/50", a.Load(), b.Load())
	}
	return nil
}

func checkProduceConsume(m machine.Profile, bk barrier.Kind, np int) error {
	f := newConfForce(m, bk, np)
	v := NewAsync[int](f)
	var sum atomic.Int64
	const items = 40
	var budget atomic.Int64
	budget.Store(items)
	f.Run(func(p *Proc) {
		if p.NP() == 1 {
			// A force of one alternates produce and consume (the
			// cell holds a single value).
			for i := 1; i <= items; i++ {
				v.Produce(i)
				sum.Add(int64(v.Consume()))
			}
			return
		}
		if p.ID() == 0 {
			// Process 0 produces; the rest of the force competes to
			// consume, splitting a fixed budget.
			for i := 1; i <= items; i++ {
				v.Produce(i)
			}
			return
		}
		for budget.Add(-1) >= 0 {
			sum.Add(int64(v.Consume()))
		}
	})
	if want := int64(items * (items + 1) / 2); sum.Load() != want {
		return fmt.Errorf("produce/consume sum = %d, want %d", sum.Load(), want)
	}
	return nil
}

func checkVoid(m machine.Profile, bk barrier.Kind, np int) error {
	f := newConfForce(m, bk, np)
	v := NewAsync[int](f)
	v.Produce(9)
	v.Void()
	if v.IsFull() {
		return fmt.Errorf("async variable full after Void")
	}
	v.Produce(11)
	if got := v.Consume(); got != 11 {
		return fmt.Errorf("consume after void = %d, want 11", got)
	}
	return nil
}

func checkSharedLayout(m machine.Profile, bk barrier.Kind, np int) error {
	a := m.NewArena(123) // deliberately unaligned base
	if err := a.Register("main",
		shm.Decl{Name: "A", Class: shm.Shared, Size: 400},
		shm.Decl{Name: "V", Class: shm.Async, Size: 8},
		shm.Decl{Name: "I", Class: shm.Private, Size: 8},
	); err != nil {
		return err
	}
	if err := a.Register("sub",
		shm.Decl{Name: "B", Class: shm.Shared, Size: 128},
		shm.Decl{Name: "T", Class: shm.Private, Size: 64},
	); err != nil {
		return err
	}
	// The Sequent two-pass protocol: consult the linker commands first.
	a.LinkerCommands()
	if err := a.Finalize(); err != nil {
		return err
	}
	return a.CheckSeparation()
}
