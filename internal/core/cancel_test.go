package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/barrier"
	"repro/internal/engine"
)

// runCtxResult runs program via RunContext in a goroutine with a hard
// test deadline, so a cancellation that fails to unblock the force
// fails the test instead of hanging the suite.
func runCtxResult(t *testing.T, ctx context.Context, f *Force, program func(p *Proc)) error {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- f.RunContext(ctx, program) }()
	select {
	case err := <-errc:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext did not return: cancellation failed to unblock the force")
		return nil
	}
}

// missingPeerProgram blocks every process except 0 in the barrier
// forever (process 0 returns immediately), the canonical
// non-conformant stall only external cancellation can end.
func missingPeerProgram(started chan<- struct{}) func(p *Proc) {
	return func(p *Proc) {
		if p.ID() == 0 {
			if started != nil {
				started <- struct{}{}
			}
			return
		}
		p.Barrier()
	}
}

// TestCancelUnblocksEveryBarrierKind is the reuse-after-cancel matrix
// over the barrier algorithms: cancel a Run blocked in each barrier
// kind, require ctx's error back, then require 3 subsequent successful
// Runs on the same Force.
func TestCancelUnblocksEveryBarrierKind(t *testing.T) {
	for _, bk := range barrier.Kinds() {
		t.Run(bk.String(), func(t *testing.T) {
			f := New(4, WithBarrier(bk))
			defer f.Close()
			ctx, cancel := context.WithCancel(context.Background())
			started := make(chan struct{}, 1)
			go func() {
				<-started
				time.Sleep(10 * time.Millisecond) // let the peers park in the barrier
				cancel()
			}()
			err := runCtxResult(t, ctx, f, missingPeerProgram(started))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext = %v, want context.Canceled", err)
			}
			requireReusable(t, f)
		})
	}
}

// TestCancelUnblocksAskforPools cancels a Run whose processes are split
// between executing a blocked Askfor task and parking in the pool —
// covering both pool disciplines' poison paths — then requires the
// force reusable.
func TestCancelUnblocksAskforPools(t *testing.T) {
	for _, pk := range engine.PoolKinds() {
		t.Run(pk.String(), func(t *testing.T) {
			f := New(4, WithAskfor(pk))
			defer f.Close()
			v := NewAsync[int](f)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			err := runCtxResult(t, ctx, f, func(p *Proc) {
				p.Askfor([]any{1}, func(task any, put func(any)) {
					v.Consume() // never produced: the task holder blocks, peers park
				})
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext = %v, want context.Canceled", err)
			}
			requireReusable(t, f)
		})
	}
}

// requireReusable runs 3 verifying programs on f after an aborted Run:
// a barrier/critical counter, a reduction, and an Askfor task count.
func requireReusable(t *testing.T, f *Force) {
	t.Helper()
	for round := 0; round < 3; round++ {
		var count atomic.Int64
		if err := f.RunContext(context.Background(), func(p *Proc) {
			p.Critical("L", func() { count.Add(1) })
			p.Barrier()
			tasks := 0
			p.Askfor([]any{1, 2}, func(task any, put func(any)) { tasks++ })
			_ = tasks
		}); err != nil {
			t.Fatalf("run %d after cancel: %v", round+1, err)
		}
		if got := count.Load(); got != int64(f.NP()) {
			t.Fatalf("run %d after cancel: count = %d, want %d", round+1, got, f.NP())
		}
	}
}

// TestDeadlineExceededRelayed: an expired deadline comes back as
// context.DeadlineExceeded, not a generic abort.
func TestDeadlineExceededRelayed(t *testing.T) {
	f := New(4)
	defer f.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := runCtxResult(t, ctx, f, missingPeerProgram(nil))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want context.DeadlineExceeded", err)
	}
	requireReusable(t, f)
}

// TestPreCanceledContextNeverStarts: a context dead on arrival returns
// its error without running the program at all.
func TestPreCanceledContextNeverStarts(t *testing.T) {
	f := New(2)
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	err := f.RunContext(ctx, func(p *Proc) { ran.Store(true) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Error("program ran under a pre-canceled context")
	}
	requireReusable(t, f)
}

// TestInternalFailureStillPanics: RunContext keeps Run's contract for
// internal failures — a process panic re-panics out of RunContext, it
// does not become an error return.
func TestInternalFailureStillPanics(t *testing.T) {
	f := New(2)
	defer f.Close()
	got := make(chan any, 1)
	go func() {
		defer func() { got <- recover() }()
		_ = f.RunContext(context.Background(), func(p *Proc) {
			if p.ID() == 0 {
				panic(errBoom)
			}
			p.Barrier()
		})
		got <- nil
	}()
	select {
	case v := <-got:
		if v != any(errBoom) {
			t.Fatalf("RunContext recovered %v, want re-panicked %v", v, errBoom)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("aborted RunContext did not finish")
	}
	requireReusable(t, f)
}

// TestCancellationLatency is the ISSUE's bound: cancel → RunContext
// returns in under 100ms at np=8, with every process parked across the
// force's blocking primitives.  The bound is wall-clock on a shared CI
// box, so the budget is asserted on the best of a few attempts.
func TestCancellationLatency(t *testing.T) {
	f := New(8)
	defer f.Close()
	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 3; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{}, 1)
		errc := make(chan error, 1)
		go func() { errc <- f.RunContext(ctx, missingPeerProgram(started)) }()
		<-started
		time.Sleep(20 * time.Millisecond) // let all 7 peers park in the barrier
		begin := time.Now()
		cancel()
		select {
		case err := <-errc:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext = %v, want context.Canceled", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("cancel did not unblock the force")
		}
		if d := time.Since(begin); d < best {
			best = d
		}
	}
	if best > 100*time.Millisecond {
		t.Errorf("cancellation latency %v, want < 100ms", best)
	}
}

// TestShutdownDrains: Shutdown with headroom lets an in-flight Run
// finish and returns nil.
func TestShutdownDrains(t *testing.T) {
	f := New(4)
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- f.RunContext(context.Background(), func(p *Proc) {
			if p.ID() == 0 {
				close(started)
			}
			p.Barrier()
			time.Sleep(20 * time.Millisecond)
			p.Barrier()
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v, want nil (graceful drain)", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("drained Run = %v, want nil", err)
	}
}

// TestShutdownCancelsAfterDeadline: a Shutdown whose drain deadline
// expires cancels the in-flight Run (external cause) and still returns
// with the workers released.
func TestShutdownCancelsAfterDeadline(t *testing.T) {
	f := New(4)
	started := make(chan struct{}, 1)
	errc := make(chan error, 1)
	go func() { errc <- f.RunContext(context.Background(), missingPeerProgram(started)) }()
	<-started
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := f.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("canceled Run = %v, want the shutdown deadline's error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown did not unblock the in-flight Run")
	}
}
