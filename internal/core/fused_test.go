package core

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/reduce"
	"repro/internal/sched"
)

// A fused open+join must compute the same sum a DoAllChunked + Gsum
// pair does, under both a prescheduled and a selfscheduled discipline,
// and the force must stay reusable across many Runs (episode reuse).
func TestFusedJoinMatchesUnfused(t *testing.T) {
	const np, n = 4, 1000
	for _, kind := range []sched.Kind{sched.PreschedCyclic, sched.PreschedBlock, sched.SelfAtomic} {
		f := New(np)
		for run := 0; run < 3; run++ {
			var want atomic.Int64
			want.Store(0)
			f.Run(func(p *Proc) {
				var local int64
				p.DoAllChunked(kind, sched.Seq(n), func(lo, hi, stride int) {
					for i := lo; i < hi; i += stride {
						local += int64(i)
					}
				})
				g := Gsum(p, local)
				want.Store(g)
			})
			var got atomic.Int64
			f.Run(func(p *Proc) {
				var local int64
				p.DoAllChunkedOpen(kind, sched.Seq(n), func(lo, hi, stride int) {
					for i := lo; i < hi; i += stride {
						local += int64(i)
					}
				})
				g := int64(p.FusedJoin(reduce.Sum, reduce.NumInt, uint64(local)))
				got.Store(g)
			})
			if got.Load() != want.Load() || got.Load() != n*(n-1)/2 {
				t.Fatalf("kind %v run %d: fused %d, unfused %d, want %d",
					kind, run, got.Load(), want.Load(), n*(n-1)/2)
			}
		}
		f.Close()
	}
}

// The fused join's real fold must be bit-identical to the slots
// strategy's pid-order fold.
func TestFusedJoinRealBitIdentical(t *testing.T) {
	const np = 8
	f := New(np)
	defer f.Close()
	var slots, fused uint64
	f.Run(func(p *Proc) {
		x := 0.1 * float64(p.ID()+1)
		g := Gsum(p, x)
		if p.ID() == 0 {
			atomic.StoreUint64(&slots, math.Float64bits(g))
		}
	})
	f.Run(func(p *Proc) {
		x := 0.1 * float64(p.ID()+1)
		g := p.FusedJoin(reduce.Sum, reduce.NumReal, math.Float64bits(x))
		if p.ID() == 0 {
			atomic.StoreUint64(&fused, g)
		}
	})
	if slots != fused {
		t.Fatalf("real sum differs: slots %x, fused %x", slots, fused)
	}
}

// An abort inside a fused region must poison the force, wake the
// peers parked in the join, and leave the force reusable.
func TestFusedJoinAbortRecovers(t *testing.T) {
	const np = 4
	f := New(np)
	defer f.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("run with a faulting process did not panic")
			}
		}()
		f.Run(func(p *Proc) {
			p.DoAllChunkedOpen(sched.PreschedCyclic, sched.Seq(100), func(lo, hi, stride int) {})
			if p.ID() == 1 {
				panic("boom in fused region")
			}
			p.FusedJoin(reduce.Sum, reduce.NumInt, 1)
		})
	}()
	// The force must serve the next Run cleanly, including fused joins
	// (recoverAborted rebuilds the episode pair).
	var total atomic.Int64
	f.Run(func(p *Proc) {
		g := int64(p.FusedJoin(reduce.Sum, reduce.NumInt, 1))
		total.Store(g)
	})
	if total.Load() != np {
		t.Fatalf("post-abort fused join = %d, want %d", total.Load(), np)
	}
}

// The steady-state acceptance gate: a warm Force.Run of a small
// chunked kernel with a fused join must not allocate at all.
func TestRunSteadyStateZeroAllocs(t *testing.T) {
	f := New(1)
	defer f.Close()
	// Hoist every closure: a per-Run closure would be the caller's own
	// allocation, not the runtime's.
	var sink, local int64
	chunk := func(lo, hi, stride int) {
		for i := lo; i < hi; i += stride {
			local += int64(i)
		}
	}
	body := func(p *Proc) {
		local = 0
		p.DoAllChunkedOpen(sched.PreschedCyclic, sched.Seq(64), chunk)
		sink = int64(p.FusedJoin(reduce.Sum, reduce.NumInt, uint64(local)))
	}
	f.Run(body) // warm up: lazy state settles on the first Run
	avg := testing.AllocsPerRun(100, func() { f.Run(body) })
	if avg != 0 {
		t.Fatalf("steady-state Run allocates %v objects/op, want 0", avg)
	}
	_ = sink
}

// BenchmarkRunSteadyState is the committed allocs/op evidence for the
// zero-allocation steady state: a warm persistent force running a
// small fused kernel per op.  Run with -benchmem.
func BenchmarkRunSteadyState(b *testing.B) {
	f := New(1)
	defer f.Close()
	var sink, local int64
	chunk := func(lo, hi, stride int) {
		for i := lo; i < hi; i += stride {
			local += int64(i)
		}
	}
	body := func(p *Proc) {
		local = 0
		p.DoAllChunkedOpen(sched.PreschedCyclic, sched.Seq(64), chunk)
		sink = int64(p.FusedJoin(reduce.Sum, reduce.NumInt, uint64(local)))
	}
	f.Run(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Run(body)
	}
	_ = sink
}
