package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/barrier"
	"repro/internal/machine"
	"repro/internal/sched"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestForceAccessors(t *testing.T) {
	f := New(4, WithMachine(machine.Encore), WithBarrier(barrier.CentralSense))
	if f.NP() != 4 {
		t.Errorf("NP() = %d", f.NP())
	}
	if f.Machine().Name != "encore" {
		t.Errorf("Machine() = %q", f.Machine().Name)
	}
}

func TestRunAllProcessesExecute(t *testing.T) {
	const np = 8
	f := New(np)
	var ids sync.Map
	f.Run(func(p *Proc) {
		if p.NP() != np {
			t.Errorf("p.NP() = %d", p.NP())
		}
		if p.Force() != f {
			t.Error("p.Force() mismatch")
		}
		if _, dup := ids.LoadOrStore(p.ID(), true); dup {
			t.Errorf("duplicate pid %d", p.ID())
		}
	})
	count := 0
	ids.Range(func(_, _ any) bool { count++; return true })
	if count != np {
		t.Errorf("%d distinct pids, want %d", count, np)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	f := New(3)
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	f.Run(func(p *Proc) { panic("boom") })
}

func TestRunReusable(t *testing.T) {
	f := New(4)
	var total atomic.Int64
	for i := 0; i < 3; i++ {
		f.Run(func(p *Proc) {
			p.Barrier()
			total.Add(1)
			p.Barrier()
		})
	}
	if got := total.Load(); got != 12 {
		t.Errorf("total = %d, want 12", got)
	}
}

func TestBarrierPhases(t *testing.T) {
	const np, phases = 6, 30
	f := New(np)
	stage := make([]atomic.Int64, np)
	f.Run(func(p *Proc) {
		for e := 1; e <= phases; e++ {
			stage[p.ID()].Store(int64(e))
			p.Barrier()
			for q := 0; q < np; q++ {
				if stage[q].Load() < int64(e) {
					t.Errorf("process %d passed barrier before %d arrived", p.ID(), q)
				}
			}
			p.Barrier()
		}
	})
	if got := f.Stats().Barriers.Load(); got != int64(np*phases*2) {
		t.Errorf("barrier stat = %d, want %d", got, np*phases*2)
	}
}

func TestBarrierSectionOnce(t *testing.T) {
	const np = 5
	f := New(np)
	runs := 0 // shared; guarded by barrier-section exclusivity
	f.Run(func(p *Proc) {
		for e := 1; e <= 20; e++ {
			p.BarrierSection(func() { runs++ })
			if runs != e {
				t.Errorf("after episode %d: section ran %d times", e, runs)
			}
		}
	})
}

func TestCriticalMutualExclusion(t *testing.T) {
	const np = 8
	f := New(np)
	counter := 0
	f.Run(func(p *Proc) {
		for i := 0; i < 500; i++ {
			p.Critical("ctr", func() { counter++ })
		}
	})
	if counter != np*500 {
		t.Errorf("counter = %d, want %d", counter, np*500)
	}
	if got := f.Stats().Criticals.Load(); got != int64(np*500) {
		t.Errorf("critical stat = %d", got)
	}
}

func TestCriticalDistinctNamesIndependent(t *testing.T) {
	f := New(2)
	var inA, inB atomic.Bool
	var overlapped atomic.Bool
	f.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Critical("a", func() {
				inA.Store(true)
				for i := 0; i < 1000; i++ {
					if inB.Load() {
						overlapped.Store(true)
					}
				}
				inA.Store(false)
			})
		} else {
			p.Critical("b", func() {
				inB.Store(true)
				for i := 0; i < 1000; i++ {
				}
				inB.Store(false)
			})
		}
	})
	// Distinct names may overlap; this documents independence (we only
	// require it not to deadlock, which reaching here proves).
	_ = overlapped.Load()
}

// loopVariants enumerates every DOALL entry point.
func loopVariants() map[string]func(p *Proc, r sched.Range, body func(int)) {
	return map[string]func(p *Proc, r sched.Range, body func(int)){
		"presched":       (*Proc).PreschedDo,
		"presched-block": (*Proc).PreschedBlockDo,
		"selfsched":      (*Proc).SelfschedDo,
		"self-atomic":    (*Proc).SelfschedAtomicDo,
		"chunk":          (*Proc).ChunkDo,
		"guided":         (*Proc).GuidedDo,
		"stealing":       (*Proc).StealingDo,
	}
}

func TestDoallEveryIndexOnce(t *testing.T) {
	ranges := []sched.Range{
		{Start: 1, Last: 97, Incr: 1},
		{Start: 10, Last: -10, Incr: -2},
		{Start: 0, Last: -1, Incr: 1}, // empty
	}
	for name, do := range loopVariants() {
		name, do := name, do
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			f := New(5, WithChunk(4))
			for _, r := range ranges {
				hits := make(map[int]int)
				var mu sync.Mutex
				f.Run(func(p *Proc) {
					do(p, r, func(i int) {
						mu.Lock()
						hits[i]++
						mu.Unlock()
					})
				})
				if len(hits) != r.Count() {
					t.Errorf("%s %v: %d distinct indices, want %d", name, r, len(hits), r.Count())
				}
				for i, c := range hits {
					if c != 1 {
						t.Errorf("%s %v: index %d ran %d times", name, r, i, c)
					}
				}
			}
		})
	}
}

// TestDoallImplicitBarrier: no process proceeds past the loop before every
// iteration has executed.
func TestDoallImplicitBarrier(t *testing.T) {
	const np, n = 4, 200
	for name, do := range loopVariants() {
		name, do := name, do
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			f := New(np)
			var done atomic.Int64
			f.Run(func(p *Proc) {
				do(p, sched.Seq(n), func(i int) { done.Add(1) })
				if got := done.Load(); got != n {
					t.Errorf("process %d left the loop with %d/%d iterations done", p.ID(), got, n)
				}
			})
		})
	}
}

// TestDoallSequence: consecutive parallel loops keep SPMD construct
// identity straight (regression test for the construct-sequence table).
func TestDoallSequence(t *testing.T) {
	const np = 4
	f := New(np)
	var a, b, c atomic.Int64
	f.Run(func(p *Proc) {
		p.SelfschedDo(sched.Seq(50), func(i int) { a.Add(1) })
		p.PreschedDo(sched.Seq(60), func(i int) { b.Add(1) })
		p.SelfschedDo(sched.Seq(70), func(i int) { c.Add(1) })
	})
	if a.Load() != 50 || b.Load() != 60 || c.Load() != 70 {
		t.Errorf("loops ran %d/%d/%d iterations, want 50/60/70", a.Load(), b.Load(), c.Load())
	}
	if got := f.Stats().Loops.Load(); got != int64(3*np) {
		t.Errorf("loop stat = %d, want %d", got, 3*np)
	}
}

func TestDoall2Pairs(t *testing.T) {
	const np = 3
	r1 := sched.Range{Start: 1, Last: 4, Incr: 1}  // 4 values
	r2 := sched.Range{Start: 0, Last: 10, Incr: 5} // 3 values
	for _, variant := range []string{"presched", "selfsched"} {
		f := New(np)
		var mu sync.Mutex
		pairs := make(map[[2]int]int)
		f.Run(func(p *Proc) {
			body := func(i, j int) {
				mu.Lock()
				pairs[[2]int{i, j}]++
				mu.Unlock()
			}
			if variant == "presched" {
				p.PreschedDo2(r1, r2, body)
			} else {
				p.SelfschedDo2(r1, r2, body)
			}
		})
		if len(pairs) != 12 {
			t.Errorf("%s: %d distinct pairs, want 12", variant, len(pairs))
		}
		for pr, c := range pairs {
			if c != 1 {
				t.Errorf("%s: pair %v ran %d times", variant, pr, c)
			}
			if pr[0] < 1 || pr[0] > 4 || pr[1]%5 != 0 {
				t.Errorf("%s: unexpected pair %v", variant, pr)
			}
		}
	}
}

func TestPcaseEachBlockOnce(t *testing.T) {
	for _, selfsched := range []bool{false, true} {
		for _, np := range []int{1, 3, 8} {
			f := New(np)
			const nblocks = 7
			var runs [nblocks]atomic.Int64
			f.Run(func(p *Proc) {
				blocks := make([]Block, nblocks)
				for b := 0; b < nblocks; b++ {
					b := b
					blocks[b] = Case(func() { runs[b].Add(1) })
				}
				if selfsched {
					p.SelfschedPcase(blocks...)
				} else {
					p.Pcase(blocks...)
				}
			})
			for b := range runs {
				if got := runs[b].Load(); got != 1 {
					t.Errorf("selfsched=%v np=%d: block %d ran %d times", selfsched, np, b, got)
				}
			}
		}
	}
}

func TestPcaseConditions(t *testing.T) {
	f := New(4)
	var ran, skipped atomic.Int64
	f.Run(func(p *Proc) {
		p.Pcase(
			CaseIf(func() bool { return true }, func() { ran.Add(1) }),
			CaseIf(func() bool { return false }, func() { skipped.Add(1) }),
			Case(func() { ran.Add(1) }),
			Block{}, // nil body: ignored
		)
	})
	if ran.Load() != 2 || skipped.Load() != 0 {
		t.Errorf("ran=%d skipped=%d, want 2/0", ran.Load(), skipped.Load())
	}
	if got := f.Stats().PcaseBlocks.Load(); got != 2 {
		t.Errorf("pcase stat = %d, want 2", got)
	}
}

// TestPcaseImplicitBarrier: the construct ends with a full-force barrier.
func TestPcaseImplicitBarrier(t *testing.T) {
	const np = 4
	f := New(np)
	var done atomic.Int64
	f.Run(func(p *Proc) {
		p.Pcase(
			Case(func() { done.Add(1) }),
			Case(func() { done.Add(1) }),
			Case(func() { done.Add(1) }),
		)
		if got := done.Load(); got != 3 {
			t.Errorf("process %d left Pcase with %d/3 blocks done", p.ID(), got)
		}
	})
}

func TestAskforStaticTasks(t *testing.T) {
	const np, tasks = 4, 100
	f := New(np)
	var mu sync.Mutex
	got := map[int]int{}
	f.Run(func(p *Proc) {
		seed := make([]any, tasks)
		for i := range seed {
			seed[i] = i
		}
		p.Askfor(seed, func(task any, put func(any)) {
			mu.Lock()
			got[task.(int)]++
			mu.Unlock()
		})
	})
	if len(got) != tasks {
		t.Fatalf("%d distinct tasks, want %d", len(got), tasks)
	}
	for k, c := range got {
		if c != 1 {
			t.Errorf("task %d ran %d times", k, c)
		}
	}
	if f.Stats().AskforTasks.Load() != tasks {
		t.Errorf("askfor stat = %d", f.Stats().AskforTasks.Load())
	}
}

// TestAskforDynamicTree: tasks spawn subtasks ("request during run time
// that a new concurrent instance ... is executed"); every tree node must
// execute exactly once.
func TestAskforDynamicTree(t *testing.T) {
	const np, depth = 6, 8 // binary tree, 2^depth-1 nodes
	f := New(np)
	var nodes atomic.Int64
	f.Run(func(p *Proc) {
		p.Askfor([]any{1}, func(task any, put func(any)) {
			level := task.(int)
			nodes.Add(1)
			if level < depth {
				put(level + 1)
				put(level + 1)
			}
		})
	})
	if got, want := nodes.Load(), int64(1<<depth-1); got != want {
		t.Errorf("tree nodes = %d, want %d", got, want)
	}
}

func TestAskforEmptySeed(t *testing.T) {
	f := New(3)
	var ran atomic.Int64
	f.Run(func(p *Proc) {
		p.Askfor(nil, func(task any, put func(any)) { ran.Add(1) })
		p.Barrier() // the construct must terminate and keep the force aligned
	})
	if ran.Load() != 0 {
		t.Errorf("empty Askfor ran %d tasks", ran.Load())
	}
}

// TestAskforImplicitBarrier: no process proceeds until the pool drains.
func TestAskforImplicitBarrier(t *testing.T) {
	const np = 4
	f := New(np)
	var done atomic.Int64
	f.Run(func(p *Proc) {
		seed := []any{0, 1, 2, 3, 4, 5, 6, 7}
		p.Askfor(seed, func(task any, put func(any)) { done.Add(1) })
		if got := done.Load(); got != 8 {
			t.Errorf("process %d left Askfor with %d/8 tasks done", p.ID(), got)
		}
	})
}

func TestResolvePartition(t *testing.T) {
	const np = 8
	f := New(np)
	var mu sync.Mutex
	membership := map[int][]int{} // component -> sub ids observed
	subNP := map[int]int{}
	f.Run(func(p *Proc) {
		p.Resolve(
			Component{Weight: 3, Body: func(sp *Proc) {
				mu.Lock()
				membership[0] = append(membership[0], sp.ID())
				subNP[0] = sp.NP()
				mu.Unlock()
				sp.Barrier() // component-scoped barrier must not involve component 1
			}},
			Component{Weight: 1, Body: func(sp *Proc) {
				mu.Lock()
				membership[1] = append(membership[1], sp.ID())
				subNP[1] = sp.NP()
				mu.Unlock()
				sp.Barrier()
			}},
		)
	})
	if got := len(membership[0]) + len(membership[1]); got != np {
		t.Fatalf("%d processes participated, want %d", got, np)
	}
	if subNP[0] != 6 || subNP[1] != 2 {
		t.Errorf("sub NPs = %d/%d, want 6/2 (3:1 split of 8)", subNP[0], subNP[1])
	}
	for c, ids := range membership {
		sort.Ints(ids)
		for r, id := range ids {
			if id != r {
				t.Errorf("component %d sub-ids = %v, want 0..%d", c, ids, len(ids)-1)
				break
			}
		}
	}
}

func TestResolveMoreComponentsThanProcesses(t *testing.T) {
	const np = 2
	f := New(np)
	var runs [5]atomic.Int64
	f.Run(func(p *Proc) {
		var comps []Component
		for c := 0; c < 5; c++ {
			c := c
			comps = append(comps, Component{Weight: 1, Body: func(sp *Proc) {
				if sp.ID() == 0 {
					runs[c].Add(1)
				}
				sp.Barrier()
			}})
		}
		p.Resolve(comps...)
	})
	for c := range runs {
		if got := runs[c].Load(); got != 1 {
			t.Errorf("component %d executed %d times (by sub-pid 0), want 1", c, got)
		}
	}
}

func TestResolveEmptyAndWeightDefaults(t *testing.T) {
	f := New(3)
	f.Run(func(p *Proc) {
		p.Resolve() // no components: just the closing barrier
		var nps []int
		var mu sync.Mutex
		p.Resolve(
			Component{Body: func(sp *Proc) { // weight defaults to 1
				mu.Lock()
				nps = append(nps, sp.NP())
				mu.Unlock()
			}},
			Component{Body: func(sp *Proc) {
				mu.Lock()
				nps = append(nps, sp.NP())
				mu.Unlock()
			}},
		)
		if p.ID() == 0 {
			total := 0
			_ = total
		}
	})
}

func TestAsyncVarThroughForce(t *testing.T) {
	for _, m := range machine.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			f := New(2, WithMachine(m))
			v := NewAsync[int](f)
			var got atomic.Int64
			f.Run(func(p *Proc) {
				if p.ID() == 0 {
					for i := 1; i <= 50; i++ {
						v.Produce(i)
					}
				} else {
					sum := 0
					for i := 1; i <= 50; i++ {
						sum += v.Consume()
					}
					got.Store(int64(sum))
				}
			})
			if got.Load() != 50*51/2 {
				t.Errorf("consumed sum = %d, want %d", got.Load(), 50*51/2)
			}
		})
	}
}

// TestConformanceAllMachines runs the full construct checklist on every
// machine profile and every barrier algorithm — the portability matrix of
// experiment T1 in test form.
func TestConformanceAllMachines(t *testing.T) {
	for _, m := range machine.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			if err := Conformance(m, 4); err != nil {
				t.Errorf("%s: %v", m.Name, err)
			}
		})
	}
}

func TestConformanceAllBarriers(t *testing.T) {
	for _, bk := range barrier.Kinds() {
		bk := bk
		t.Run(bk.String(), func(t *testing.T) {
			t.Parallel()
			if err := ConformanceWith(machine.Native, bk, 5); err != nil {
				t.Errorf("%v: %v", bk, err)
			}
		})
	}
}

// Property: a prescheduled sum over a random range equals the closed form,
// for random np.
func TestQuickPreschedSum(t *testing.T) {
	prop := func(npRaw, nRaw uint8) bool {
		np := int(npRaw)%8 + 1
		n := int(nRaw) % 300
		f := New(np)
		var sum atomic.Int64
		f.Run(func(p *Proc) {
			p.PreschedDo(sched.Seq(n), func(i int) { sum.Add(int64(i)) })
		})
		return sum.Load() == int64(n*(n-1)/2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Askfor over a random task multiset conserves work.
func TestQuickAskforConservation(t *testing.T) {
	prop := func(npRaw uint8, tasks []uint8) bool {
		np := int(npRaw)%6 + 1
		f := New(np)
		var sum atomic.Int64
		want := int64(0)
		seed := make([]any, len(tasks))
		for i, v := range tasks {
			seed[i] = int(v)
			want += int64(v)
		}
		f.Run(func(p *Proc) {
			p.Askfor(seed, func(task any, put func(any)) {
				sum.Add(int64(task.(int)))
			})
		})
		return sum.Load() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
