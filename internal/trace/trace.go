// Package trace records Force construct events — barrier arrivals and
// departures, barrier-section and critical-section boundaries, loop
// iterations, Pcase blocks, Askfor tasks, async-variable operations — in
// one globally ordered log, and provides checkers for the orderings the
// constructs guarantee.
//
// The runtime (internal/core) emits events when a Recorder is attached
// with core.WithTrace; a nil recorder costs one predictable branch per
// construct.  The checkers turn the paper's semantic sentences ("all
// processes wait for each other", "only one process at a given time is
// allowed to execute within the critical section") into machine-checkable
// predicates used by the validation tests.
package trace

import (
	"fmt"
	"sync"
)

// Kind classifies an event.
type Kind int

// Event kinds, one per construct edge the runtime instruments.
const (
	BarrierEnter Kind = iota
	BarrierLeave
	SectionStart
	SectionEnd
	CriticalEnter
	CriticalLeave
	LoopStart
	LoopIter
	LoopEnd
	PcaseBlock
	AskforTask
	ProduceOp
	ConsumeOp
	ReduceEnter
	ReduceLeave
)

var kindNames = map[Kind]string{
	BarrierEnter:  "barrier-enter",
	BarrierLeave:  "barrier-leave",
	SectionStart:  "section-start",
	SectionEnd:    "section-end",
	CriticalEnter: "critical-enter",
	CriticalLeave: "critical-leave",
	LoopStart:     "loop-start",
	LoopIter:      "loop-iter",
	LoopEnd:       "loop-end",
	PcaseBlock:    "pcase-block",
	AskforTask:    "askfor-task",
	ProduceOp:     "produce",
	ConsumeOp:     "consume",
	ReduceEnter:   "reduce-enter",
	ReduceLeave:   "reduce-leave",
}

// String returns the kind's name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("trace.Kind(%d)", int(k))
}

// Event is one recorded construct edge.  Seq is the global record order:
// the recorder's lock makes it a legal linearization of the construct
// edges (each edge is recorded while the construct's own synchronization
// covers it).
type Event struct {
	Seq  int
	PID  int
	Kind Kind
	Name string
	Arg  int64
}

// String formats the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("#%d p%d %s %s(%d)", e.Seq, e.PID, e.Kind, e.Name, e.Arg)
}

// Recorder collects events up to a fixed capacity; past capacity events
// are dropped and counted, never blocking the program under test.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	limit   int
	dropped int
}

// New creates a recorder capped at limit events (limit <= 0 means a
// default of 1<<16).
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 16
	}
	return &Recorder{limit: limit}
}

// Record appends an event; safe for concurrent use.
func (r *Recorder) Record(pid int, k Kind, name string, arg int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.events) >= r.limit {
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.events = append(r.events, Event{Seq: len(r.events), PID: pid, Kind: k, Name: name, Arg: arg})
	r.mu.Unlock()
}

// Events returns a copy of the log in record order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Dropped reports how many events were discarded at capacity.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset clears the log.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.dropped = 0
	r.mu.Unlock()
}

// Filter returns the events of one kind, in order.
func Filter(events []Event, k Kind) []Event {
	var out []Event
	for _, e := range events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// CheckCriticalExclusion verifies that within the named critical section
// (all sections when name is empty), enter/leave events strictly
// alternate per name — i.e. no two processes were ever inside together.
func CheckCriticalExclusion(events []Event, name string) error {
	holder := map[string]int{} // name -> pid currently inside (-1 none)
	for _, e := range events {
		if e.Kind != CriticalEnter && e.Kind != CriticalLeave {
			continue
		}
		if name != "" && e.Name != name {
			continue
		}
		cur, ok := holder[e.Name]
		if !ok {
			cur = -1
		}
		switch e.Kind {
		case CriticalEnter:
			if cur != -1 {
				return fmt.Errorf("trace: %v entered %q while p%d held it", e, e.Name, cur)
			}
			holder[e.Name] = e.PID
		case CriticalLeave:
			if cur != e.PID {
				return fmt.Errorf("trace: %v left %q held by p%d", e, e.Name, cur)
			}
			holder[e.Name] = -1
		}
	}
	for n, cur := range holder {
		if cur != -1 {
			return fmt.Errorf("trace: critical %q never released by p%d", n, cur)
		}
	}
	return nil
}

// CheckBarrierEpisodes verifies the Force barrier contract over the log
// of one barrier used by np processes.  Enter events are recorded before a
// process calls the barrier and Leave events after it returns, so the log
// is slightly looser than the barrier's internal order (a fast process's
// next-episode enter may be logged before a slow process's leave); the
// invariants below are exactly those the recording points guarantee:
//
//   - per process, enters and leaves strictly alternate;
//   - at most np processes are ever inside (enters−leaves ≤ np);
//   - a barrier section starts only when all np are inside, no barrier
//     event of any process intervenes until it ends, and every episode
//     of a section barrier has exactly one section;
//   - the log ends with every process outside.
func CheckBarrierEpisodes(events []Event, np int) error {
	inside := map[int]bool{}
	outstanding := 0
	inSection := false
	entersSinceSection := 0
	sawSection := false
	for _, e := range events {
		switch e.Kind {
		case BarrierEnter, BarrierLeave, SectionStart, SectionEnd:
		default:
			continue
		}
		if inSection && e.Kind != SectionEnd {
			return fmt.Errorf("trace: %v recorded during a barrier section", e)
		}
		switch e.Kind {
		case BarrierEnter:
			if inside[e.PID] {
				return fmt.Errorf("trace: %v entered twice without leaving", e)
			}
			inside[e.PID] = true
			outstanding++
			entersSinceSection++
			if outstanding > np {
				return fmt.Errorf("trace: %v makes %d processes inside an np=%d barrier", e, outstanding, np)
			}
		case BarrierLeave:
			if !inside[e.PID] {
				return fmt.Errorf("trace: %v left without entering", e)
			}
			inside[e.PID] = false
			outstanding--
		case SectionStart:
			if outstanding != np {
				return fmt.Errorf("trace: %v section started with %d/%d inside", e, outstanding, np)
			}
			// Sectionless episodes may run between two section
			// episodes, so enters since the last section must be a
			// whole number of full episodes.
			if sawSection && entersSinceSection%np != 0 {
				return fmt.Errorf("trace: %v section after %d enters (np=%d)", e, entersSinceSection, np)
			}
			inSection = true
			sawSection = true
			entersSinceSection = 0
		case SectionEnd:
			if !inSection {
				return fmt.Errorf("trace: %v section end without start", e)
			}
			inSection = false
		}
	}
	if outstanding != 0 || inSection {
		return fmt.Errorf("trace: log ends with %d processes inside (section=%v)", outstanding, inSection)
	}
	return nil
}

// CheckReduceParticipation verifies the collective contract of the
// global-reduction events: every episode (identified by the event Arg,
// the construct sequence number) has exactly np ReduceEnter and np
// ReduceLeave events, one pair per process, and no process leaves an
// episode it did not enter.
func CheckReduceParticipation(events []Event, np int) error {
	type key struct {
		seq int64
		pid int
	}
	enters := map[key]int{}
	leaves := map[key]int{}
	perEpisode := map[int64]int{}
	for _, e := range events {
		switch e.Kind {
		case ReduceEnter:
			enters[key{e.Arg, e.PID}]++
			perEpisode[e.Arg]++
		case ReduceLeave:
			if enters[key{e.Arg, e.PID}] == 0 {
				return fmt.Errorf("trace: %v left a reduction it never entered", e)
			}
			leaves[key{e.Arg, e.PID}]++
		}
	}
	for k, n := range enters {
		if n != 1 {
			return fmt.Errorf("trace: p%d entered reduction %d %d times", k.pid, k.seq, n)
		}
		if leaves[k] != 1 {
			return fmt.Errorf("trace: p%d left reduction %d %d times", k.pid, k.seq, leaves[k])
		}
	}
	for seq, n := range perEpisode {
		if n != np {
			return fmt.Errorf("trace: reduction %d had %d participants, want %d", seq, n, np)
		}
	}
	return nil
}

// CheckLoopCoverage verifies that the LoopIter events of one loop
// instance cover each expected index exactly once.
func CheckLoopCoverage(events []Event, want []int64) error {
	seen := map[int64]int{}
	for _, e := range events {
		if e.Kind == LoopIter {
			seen[e.Arg]++
		}
	}
	for _, w := range want {
		switch seen[w] {
		case 1:
		case 0:
			return fmt.Errorf("trace: index %d never executed", w)
		default:
			return fmt.Errorf("trace: index %d executed %d times", w, seen[w])
		}
	}
	if len(seen) != len(want) {
		return fmt.Errorf("trace: %d distinct indices executed, want %d", len(seen), len(want))
	}
	return nil
}
