package trace

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if BarrierEnter.String() != "barrier-enter" || ConsumeOp.String() != "consume" {
		t.Error("kind names")
	}
	if Kind(99).String() != "trace.Kind(99)" {
		t.Error("unknown kind")
	}
}

func TestRecorderBasics(t *testing.T) {
	r := New(0) // default limit
	r.Record(1, BarrierEnter, "", 0)
	r.Record(2, CriticalEnter, "L", 7)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Error("Seq not record order")
	}
	if evs[1].PID != 2 || evs[1].Name != "L" || evs[1].Arg != 7 {
		t.Errorf("event %+v", evs[1])
	}
	if !strings.Contains(evs[1].String(), "critical-enter L(7)") {
		t.Errorf("String() = %q", evs[1].String())
	}
	r.Reset()
	if len(r.Events()) != 0 || r.Dropped() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestRecorderNilIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, BarrierEnter, "", 0) // must not panic
}

func TestRecorderLimit(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(0, LoopIter, "", int64(i))
	}
	if len(r.Events()) != 2 {
		t.Errorf("kept %d events, want 2", len(r.Events()))
	}
	if r.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", r.Dropped())
	}
}

func TestFilter(t *testing.T) {
	r := New(0)
	r.Record(0, BarrierEnter, "", 0)
	r.Record(0, LoopIter, "", 1)
	r.Record(1, LoopIter, "", 2)
	if got := Filter(r.Events(), LoopIter); len(got) != 2 {
		t.Errorf("filter = %d events", len(got))
	}
}

// mk builds an event list from (pid, kind, name) triples.
func mk(entries ...Event) []Event {
	for i := range entries {
		entries[i].Seq = i
	}
	return entries
}

func TestCheckCriticalExclusion(t *testing.T) {
	good := mk(
		Event{PID: 0, Kind: CriticalEnter, Name: "a"},
		Event{PID: 0, Kind: CriticalLeave, Name: "a"},
		Event{PID: 1, Kind: CriticalEnter, Name: "a"},
		Event{PID: 2, Kind: CriticalEnter, Name: "b"}, // distinct name ok
		Event{PID: 2, Kind: CriticalLeave, Name: "b"},
		Event{PID: 1, Kind: CriticalLeave, Name: "a"},
	)
	if err := CheckCriticalExclusion(good, ""); err != nil {
		t.Errorf("good log rejected: %v", err)
	}
	overlap := mk(
		Event{PID: 0, Kind: CriticalEnter, Name: "a"},
		Event{PID: 1, Kind: CriticalEnter, Name: "a"},
	)
	if err := CheckCriticalExclusion(overlap, ""); err == nil {
		t.Error("overlapping holders accepted")
	}
	wrongLeaver := mk(
		Event{PID: 0, Kind: CriticalEnter, Name: "a"},
		Event{PID: 1, Kind: CriticalLeave, Name: "a"},
	)
	if err := CheckCriticalExclusion(wrongLeaver, ""); err == nil {
		t.Error("foreign leave accepted")
	}
	unreleased := mk(Event{PID: 0, Kind: CriticalEnter, Name: "a"})
	if err := CheckCriticalExclusion(unreleased, ""); err == nil {
		t.Error("unreleased section accepted")
	}
	// Name filtering ignores other sections.
	if err := CheckCriticalExclusion(overlap, "other"); err != nil {
		t.Error("name filter did not skip unrelated sections")
	}
}

func TestCheckBarrierEpisodesGood(t *testing.T) {
	log := mk(
		Event{PID: 0, Kind: BarrierEnter},
		Event{PID: 1, Kind: BarrierEnter},
		Event{PID: 1, Kind: BarrierLeave},
		// p0's leave is logged late, after p1 re-enters: legal.
		Event{PID: 1, Kind: BarrierEnter},
		Event{PID: 0, Kind: BarrierLeave},
		Event{PID: 0, Kind: BarrierEnter},
		Event{PID: 0, Kind: BarrierLeave},
		Event{PID: 1, Kind: BarrierLeave},
	)
	if err := CheckBarrierEpisodes(log, 2); err != nil {
		t.Errorf("legal lagged log rejected: %v", err)
	}
}

func TestCheckBarrierEpisodesSection(t *testing.T) {
	good := mk(
		Event{PID: 0, Kind: BarrierEnter},
		Event{PID: 1, Kind: BarrierEnter},
		Event{PID: 1, Kind: SectionStart},
		Event{PID: 1, Kind: SectionEnd},
		Event{PID: 0, Kind: BarrierLeave},
		Event{PID: 1, Kind: BarrierLeave},
	)
	if err := CheckBarrierEpisodes(good, 2); err != nil {
		t.Errorf("good section log rejected: %v", err)
	}
	early := mk(
		Event{PID: 0, Kind: BarrierEnter},
		Event{PID: 0, Kind: SectionStart}, // only 1 of 2 inside
	)
	if err := CheckBarrierEpisodes(early, 2); err == nil {
		t.Error("early section accepted")
	}
	during := mk(
		Event{PID: 0, Kind: BarrierEnter},
		Event{PID: 1, Kind: BarrierEnter},
		Event{PID: 1, Kind: SectionStart},
		Event{PID: 0, Kind: BarrierLeave}, // escape during section
	)
	if err := CheckBarrierEpisodes(during, 2); err == nil {
		t.Error("leave during section accepted")
	}
}

func TestCheckBarrierEpisodesBad(t *testing.T) {
	doubleEnter := mk(
		Event{PID: 0, Kind: BarrierEnter},
		Event{PID: 0, Kind: BarrierEnter},
	)
	if err := CheckBarrierEpisodes(doubleEnter, 2); err == nil {
		t.Error("double enter accepted")
	}
	strayLeave := mk(Event{PID: 0, Kind: BarrierLeave})
	if err := CheckBarrierEpisodes(strayLeave, 2); err == nil {
		t.Error("stray leave accepted")
	}
	tooMany := mk(
		Event{PID: 0, Kind: BarrierEnter},
		Event{PID: 1, Kind: BarrierEnter},
		Event{PID: 2, Kind: BarrierEnter},
	)
	if err := CheckBarrierEpisodes(tooMany, 2); err == nil {
		t.Error("np+1 inside accepted")
	}
	hanging := mk(Event{PID: 0, Kind: BarrierEnter})
	if err := CheckBarrierEpisodes(hanging, 2); err == nil {
		t.Error("mid-episode end accepted")
	}
}

func TestCheckLoopCoverage(t *testing.T) {
	log := mk(
		Event{PID: 0, Kind: LoopIter, Arg: 1},
		Event{PID: 1, Kind: LoopIter, Arg: 2},
		Event{PID: 0, Kind: LoopIter, Arg: 3},
	)
	if err := CheckLoopCoverage(log, []int64{1, 2, 3}); err != nil {
		t.Errorf("full coverage rejected: %v", err)
	}
	if err := CheckLoopCoverage(log, []int64{1, 2, 3, 4}); err == nil {
		t.Error("missing index accepted")
	}
	dup := append(log, Event{PID: 1, Kind: LoopIter, Arg: 1})
	if err := CheckLoopCoverage(dup, []int64{1, 2, 3}); err == nil {
		t.Error("duplicate index accepted")
	}
	extra := append(log, Event{PID: 1, Kind: LoopIter, Arg: 9})
	if err := CheckLoopCoverage(extra, []int64{1, 2, 3}); err == nil {
		t.Error("extra index accepted")
	}
}
