package maclib

import (
	"strings"
	"testing"
)

// TestPaperSelfschedExpansion is experiment F1: the paper's own example
//
//	Selfsched DO 100 K = START, LAST, IICR
//	(* LOOPBODY *)
//	100 End Selfsched DO
//
// must expand, under the generic machine layer, to the structure of the
// listing in §4.2 — entry code under BARWIN, first-arrival index
// initialization, the LOOP100-guarded index fetch, the sign-aware
// completion test, the loop body, and exit code under BARWOT — with the
// low-level lock/unlock macros left symbolic exactly as the paper prints
// them.
func TestPaperSelfschedExpansion(t *testing.T) {
	src := "Selfsched DO 100 K = START, LAST, INCR\n" +
		"      CALL LOOPBODY(K)\n" +
		"100 End Selfsched DO\n"
	got, err := Expand("generic", src)
	if err != nil {
		t.Fatal(err)
	}
	want := `C loop entry code
      lock(BARWIN)
      IF (ZZNBAR .EQ. 0) THEN
C initialize loop index
      K_SHARED = START
      END IF
C report arrival of processes
      ZZNBAR = ZZNBAR + 1
      IF (ZZNBAR .EQ. NPROC) THEN
      unlock(BARWOT)
      ELSE
      unlock(BARWIN)
      END IF
C self scheduled loop index distribution
 100   lock(LOOP100)
C get next index value
      K = K_SHARED
      K_SHARED = K + INCR
      unlock(LOOP100)
C test for completion
      IF ((INCR .GT. 0 .AND. K .LE. LAST) .OR.
     X    (INCR .LT. 0 .AND. K .GE. LAST)) THEN
      CALL LOOPBODY(K)
      GO TO 100
      END IF
C loop exit code
      lock(BARWOT)
C report exit of processes
      ZZNBAR = ZZNBAR - 1
      IF (ZZNBAR .EQ. 0) THEN
      unlock(BARWIN)
      ELSE
      unlock(BARWOT)
      END IF
`
	if got != want {
		t.Errorf("expansion mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
		for i, gl := range strings.Split(got, "\n") {
			wl := ""
			if ws := strings.Split(want, "\n"); i < len(ws) {
				wl = ws[i]
			}
			if gl != wl {
				t.Logf("first difference at line %d: got %q want %q", i+1, gl, wl)
				break
			}
		}
	}
}

// TestTwoLevelExpansion: the same source under a real machine layer
// rewrites only the low-level macros — the portability architecture.
func TestTwoLevelExpansion(t *testing.T) {
	src := "Barrier\n      NSTEP = NSTEP + 1\nEnd barrier\n"
	cases := map[string][]string{
		"generic": {"lock(BARWIN)", "unlock(BARWOT)"},
		"sequent": {"CALL S_LOCK(BARWIN)", "CALL S_UNLOCK(BARWOT)"},
		"encore":  {"CALL SPIN_LOCK(BARWIN)", "CALL SPIN_UNLOCK(BARWOT)"},
		"alliant": {"CALL TS_LOCK(BARWIN)", "CALL TS_UNLOCK(BARWOT)"},
		"cray2":   {"CALL LOCKON(BARWIN)", "CALL LOCKOFF(BARWOT)"},
		"flex32":  {"CALL FLEX_LOCK(BARWIN)", "CALL FLEX_UNLOCK(BARWOT)"},
		"hep":     {"CALL AWAITF(BARWIN)", "CALL ASETE(BARWOT)"},
	}
	for m, wants := range cases {
		got, err := Expand(m, src)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for _, w := range wants {
			if !strings.Contains(got, w) {
				t.Errorf("%s: expansion missing %q:\n%s", m, w, got)
			}
		}
		// The machine-independent structure is identical everywhere.
		for _, structural := range []string{
			"ZZNBAR = ZZNBAR + 1",
			"IF (ZZNBAR .EQ. NPROC) THEN",
			"C barrier section, executed by one arbitrary process",
			"      NSTEP = NSTEP + 1",
			"ZZNBAR = ZZNBAR - 1",
		} {
			if !strings.Contains(got, structural) {
				t.Errorf("%s: missing machine-independent line %q", m, structural)
			}
		}
	}
}

// TestHEPOverridesProduceConsume: only the HEP replaces the two-lock
// full/empty protocol with hardware access (§4.2).
func TestHEPOverridesProduceConsume(t *testing.T) {
	src := "Produce V = X + 1\nConsume V into Y\nVoid V\n"
	hep, err := Expand("hep", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"CALL AWRITE(V, X + 1)", "Y = AREAD(V)", "CALL ASETE(V)"} {
		if !strings.Contains(hep, w) {
			t.Errorf("hep: missing %q in:\n%s", w, hep)
		}
	}
	if strings.Contains(hep, "E_V") {
		t.Errorf("hep expansion still uses the two-lock scheme:\n%s", hep)
	}
	seq, err := Expand("sequent", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"CALL S_LOCK(F_V)", "V = X + 1", "CALL S_UNLOCK(E_V)",
		"CALL S_LOCK(E_V)", "Y = V", "CALL S_UNLOCK(F_V)"} {
		if !strings.Contains(seq, w) {
			t.Errorf("sequent: missing %q in:\n%s", w, seq)
		}
	}
}

func TestCriticalStoresLockName(t *testing.T) {
	src := "Critical UPD\n      SUM = SUM + X\nEnd critical\n"
	got, err := Expand("generic", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"lock(UPD)", "SUM = SUM + X", "unlock(UPD)"} {
		if !strings.Contains(got, w) {
			t.Errorf("missing %q in:\n%s", w, got)
		}
	}
}

func TestPreschedDoExpansion(t *testing.T) {
	src := "Presched DO 20 I = 1, N\n      A(I) = 0\n20 End Presched DO\n"
	got, err := Expand("generic", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{
		"DO 20 I = 1 + ME*(1), N, NPROC*(1)",
		"      A(I) = 0",
		" 20   CONTINUE",
	} {
		if !strings.Contains(got, w) {
			t.Errorf("missing %q in:\n%s", w, got)
		}
	}
}

func TestPcaseBlockNumbering(t *testing.T) {
	src := "Pcase\nUsect\n      CALL P1\nCsect (N .GT. 0)\n      CALL P2\nUsect\n      CALL P3\nEnd pcase\n"
	got, err := Expand("generic", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{
		"IF (MOD(0, NPROC) .EQ. ME) THEN",
		"IF (MOD(1, NPROC) .EQ. ME .AND. (N .GT. 0)) THEN",
		"IF (MOD(2, NPROC) .EQ. ME) THEN",
		"CALL ZZPBAR",
	} {
		if !strings.Contains(got, w) {
			t.Errorf("missing %q in:\n%s", w, got)
		}
	}
	// Three blocks open three IFs; all three must be closed.
	if n := strings.Count(got, "END IF"); n != 3 {
		t.Errorf("found %d END IF, want 3:\n%s", n, got)
	}
	// A second Pcase restarts numbering.
	got2, err := Expand("generic", src+src)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(got2, "IF (MOD(0, NPROC) .EQ. ME) THEN"); n != 2 {
		t.Errorf("block counter not reset between Pcases (%d zero-blocks)", n)
	}
}

func TestProgramStructure(t *testing.T) {
	src := "Force MAIN of NP ident ME\nShared REAL A(100,100)\nPrivate INTEGER I\nAsync REAL V\nEnd declarations\nJoin\n"
	got, err := Expand("sequent", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{
		"PROGRAM MAIN",
		"INTEGER ZZNBAR, NPROC, ME", // force_environment expanded
		"REAL A(100,100)",
		"C$SHARED A(100,100)",
		"INTEGER I",
		"REAL V",
		"LOGICAL E_V, F_V", // two-lock pair declared for async vars
		"CALL ZZFORK(NPROC)",
		"CALL ZZJOIN(NPROC)",
	} {
		if !strings.Contains(got, w) {
			t.Errorf("missing %q in:\n%s", w, got)
		}
	}
}

func TestForcesubAndExternf(t *testing.T) {
	src := "Forcesub SOLVE(A, N)\nExternf SOLVE\n"
	got, err := Expand("generic", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"SUBROUTINE SOLVE(A, N)", "CALL ZZSTART_SOLVE"} {
		if !strings.Contains(got, w) {
			t.Errorf("missing %q in:\n%s", w, got)
		}
	}
}

func TestPlainFortranPassesThrough(t *testing.T) {
	src := "      DO 10 I = 1, N\n      B(I) = A(I)\n   10 CONTINUE\n"
	got, err := Expand("generic", src)
	if err != nil {
		t.Fatal(err)
	}
	if got != src {
		t.Errorf("plain Fortran changed:\n%q\n->\n%q", src, got)
	}
}

func TestMachinesListAndUnknown(t *testing.T) {
	ms := Machines()
	if ms[0] != "generic" || len(ms) != 7 {
		t.Errorf("Machines() = %v", ms)
	}
	for _, m := range ms {
		if _, err := MachineLayer(m); err != nil {
			t.Errorf("MachineLayer(%q): %v", m, err)
		}
	}
	if _, err := MachineLayer("vax"); err == nil {
		t.Error("MachineLayer(vax) succeeded")
	}
	if _, err := Expand("vax", "Barrier\n"); err == nil {
		t.Error("Expand(vax) succeeded")
	}
}

// TestAllMachinesExpandCleanly runs a program exercising every construct
// through every machine layer.
func TestAllMachinesExpandCleanly(t *testing.T) {
	src := `Force MAIN of NP ident ME
Shared REAL A(64)
Async REAL V
Private INTEGER I
End declarations
Presched DO 10 I = 1, 64
      A(I) = I
10 End Presched DO
Barrier
      S = 0
End barrier
Selfsched DO 20 I = 1, 64, 1
      CALL WORK(I)
20 End Selfsched DO
Critical LCK
      S = S + 1
End critical
Pcase
Usect
      CALL U1
Csect (S .GT. 0)
      CALL C1
End pcase
Produce V = S
Consume V into T
Void V
Join
`
	for _, m := range Machines() {
		got, err := Expand(m, src)
		if err != nil {
			t.Errorf("%s: %v", m, err)
			continue
		}
		if strings.Contains(got, "selfsched_do") || strings.Contains(got, "pcase_begin") {
			t.Errorf("%s: unexpanded statement macros remain:\n%s", m, got)
		}
		if m != "generic" && strings.Contains(got, "force_environment") {
			t.Errorf("%s: machine layer did not supply force_environment", m)
		}
	}
}
