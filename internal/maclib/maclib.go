// Package maclib contains the Force macro layers themselves: the sed rules
// that turn Force syntax into parameterized function macros, the
// machine-independent statement-macro layer, and one machine-dependent
// low-level layer per target machine (paper §4.2, §4.3).
//
// This is the textual half of the reproduction: Expand runs the paper's
// actual pipeline — stream-edit, then two-level macro expansion — over a
// Force source file and yields Fortran-shaped text.  With the "generic"
// machine layer (which defines nothing) the low-level macros lock, unlock
// and force_environment stay symbolic, which is exactly how the paper
// prints its Selfsched DO expansion listing; selecting a real machine
// layer rewrites only those calls, demonstrating the portability
// architecture.
//
// The machine layers' Fortran spellings (CALL S_LOCK, CALL LOCKON, ...)
// are reconstructions: the paper names the lock categories but not the
// vendor entry points.  See DESIGN.md.
package maclib

import (
	"fmt"

	"repro/internal/m4lite"
	"repro/internal/sedlite"
)

// SedRules is the first preprocessor pass: Force statement syntax to
// parameterized macro calls, one rule per statement form.  Rules are
// case-insensitive, as the Force accepted both spellings.
const SedRules = `
# Program structure
s/^ *Force +([A-Za-z][A-Za-z0-9_]*) +of +([A-Za-z][A-Za-z0-9_]*) +ident +([A-Za-z][A-Za-z0-9_]*) *$/force_main(\1,\2,\3)/i
s/^ *Forcesub +([A-Za-z][A-Za-z0-9_]*) *\(([^)]*)\) *$/forcesub(\1,` + "`\\2'" + `)/i
s/^ *Externf +([A-Za-z][A-Za-z0-9_]*) *$/externf(\1)/i
s/^ *End declarations *$/end_declarations/i
s/^ *Join *$/join_force/i

# Variable classification.  The declaration tail is quoted so commas in
# dimension or variable lists survive argument collection.
s/^ *Shared +([A-Za-z]+) +(.*)$/shared_decl(\1,` + "`\\2'" + `)/i
s/^ *Private +([A-Za-z]+) +(.*)$/private_decl(\1,` + "`\\2'" + `)/i
s/^ *Async +([A-Za-z]+) +(.*)$/async_decl(\1,` + "`\\2'" + `)/i

# Work distribution
s/^ *Selfsched +DO +([0-9]+) +([A-Za-z][A-Za-z0-9_]*) *= *([^,]+?) *, *([^,]+?) *, *([^,]+?) *$/selfsched_do(\1,\2,\3,\4,\5)/i
s/^ *Selfsched +DO +([0-9]+) +([A-Za-z][A-Za-z0-9_]*) *= *([^,]+?) *, *([^,]+?) *$/selfsched_do(\1,\2,\3,\4,1)/i
s/^ *([0-9]+) +End +Selfsched +DO *$/end_selfsched_do(\1)/i
s/^ *Presched +DO +([0-9]+) +([A-Za-z][A-Za-z0-9_]*) *= *([^,]+?) *, *([^,]+?) *, *([^,]+?) *$/presched_do(\1,\2,\3,\4,\5)/i
s/^ *Presched +DO +([0-9]+) +([A-Za-z][A-Za-z0-9_]*) *= *([^,]+?) *, *([^,]+?) *$/presched_do(\1,\2,\3,\4,1)/i
s/^ *([0-9]+) +End +Presched +DO *$/end_presched_do(\1)/i
s/^ *Pcase *$/pcase_begin/i
s/^ *Usect *$/pcase_usect/i
s/^ *Csect +\((.*)\) *$/pcase_csect(` + "`\\1'" + `)/i
s/^ *End +pcase *$/pcase_end/i

# Synchronization
s/^ *Barrier *$/barrier_begin/i
s/^ *End +barrier *$/barrier_end/i
s/^ *Critical +([A-Za-z][A-Za-z0-9_]*) *$/critical(\1)/i
s/^ *End +critical *$/end_critical/i
s/^ *Produce +([A-Za-z][A-Za-z0-9_]*) *= *(.*)$/produce(\1,` + "`\\2'" + `)/i
s/^ *Consume +([A-Za-z][A-Za-z0-9_]*) +into +([A-Za-z][A-Za-z0-9_()]*) *$/consume(\1,\2)/i
s/^ *Void +([A-Za-z][A-Za-z0-9_]*) *$/void_async(\1)/i

# Global reductions: GSUM target = expr and friends.  The independent
# layer expands them to the critical-section baseline (the only
# realization the 1989 preprocessor could emit); the Go runtime offers
# the contention-free strategies behind the same statements.
s/^ *Gsum +([A-Za-z][A-Za-z0-9_()]*) *= *(.*)$/greduce(SUM,\1,` + "`\\2'" + `)/i
s/^ *Gprod +([A-Za-z][A-Za-z0-9_()]*) *= *(.*)$/greduce(PROD,\1,` + "`\\2'" + `)/i
s/^ *Gmax +([A-Za-z][A-Za-z0-9_()]*) *= *(.*)$/greduce(MAX,\1,` + "`\\2'" + `)/i
s/^ *Gmin +([A-Za-z][A-Za-z0-9_()]*) *= *(.*)$/greduce(MIN,\1,` + "`\\2'" + `)/i
s/^ *Gand +([A-Za-z][A-Za-z0-9_()]*) *= *(.*)$/greduce(AND,\1,` + "`\\2'" + `)/i
s/^ *Gor +([A-Za-z][A-Za-z0-9_()]*) *= *(.*)$/greduce(OR,\1,` + "`\\2'" + `)/i
`

// Independent is the machine-independent statement-macro layer.  Every
// macro expands to Fortran-shaped text plus calls to the low-level
// machine-dependent macros (lock, unlock, force_environment, *_decl),
// which a machine layer may further rewrite.  It uses the utility-macro
// facilities the paper describes: storing and retrieving definitions
// (the critical-section name, the Pcase block counter) and argument
// manipulation (shift for subroutine argument lists).
const Independent = "" +
	// --- program structure -------------------------------------------
	"define(`force_main', `C Force main program $1, NPROC=$2, ident $3\n" +
	"      PROGRAM $1\n" +
	"      force_environment\n" +
	"C driver creates the force of $2 processes; body follows')dnl\n" +
	"define(`forcesub', `C Force subroutine $1 (executed by all processes)\n" +
	"      SUBROUTINE $1($2)\n" +
	"      force_environment')dnl\n" +
	"define(`externf', `C external Force subroutine $1: startup call generated\n" +
	"      CALL ZZSTART_$1')dnl\n" +
	"define(`end_declarations', `C end of declarations\n" +
	"      CALL ZZFORK(NPROC)')dnl\n" +
	"define(`join_force', `C Join: processes terminate at end of program\n" +
	"      CALL ZZJOIN(NPROC)\n" +
	"      END')dnl\n" +
	// --- barrier -------------------------------------------------------
	"define(`barrier_begin', `C barrier entry code\n" +
	"      lock(BARWIN)\n" +
	"      ZZNBAR = ZZNBAR + 1\n" +
	"      IF (ZZNBAR .EQ. NPROC) THEN\n" +
	"C barrier section, executed by one arbitrary process')dnl\n" +
	"define(`barrier_end', `C end barrier section\n" +
	"      unlock(BARWOT)\n" +
	"      ELSE\n" +
	"      unlock(BARWIN)\n" +
	"      END IF\n" +
	"C barrier exit code\n" +
	"      lock(BARWOT)\n" +
	"      ZZNBAR = ZZNBAR - 1\n" +
	"      IF (ZZNBAR .EQ. 0) THEN\n" +
	"      unlock(BARWIN)\n" +
	"      ELSE\n" +
	"      unlock(BARWOT)\n" +
	"      END IF')dnl\n" +
	// --- critical sections (stores the lock name between the two
	//     statement macros: the paper's "storing and retrieving
	//     definitions" utility) ----------------------------------------
	// Note the quoted `critical' in the comments: the word is itself a
	// macro name, and unquoted it would re-expand on rescan — the
	// standard m4 discipline for macro names in generated text.
	"define(`critical', `define(`ZZCRIT', `$1')dnl\n" +
	"C `critical' section $1\n" +
	"      lock($1)')dnl\n" +
	"define(`end_critical', `C end `critical' section\n" +
	"      unlock(ZZCRIT)')dnl\n" +
	// --- selfscheduled DOALL (the paper's expansion listing) ----------
	"define(`selfsched_do', `C loop entry code\n" +
	"      lock(BARWIN)\n" +
	"      IF (ZZNBAR .EQ. 0) THEN\n" +
	"C initialize loop index\n" +
	"      $2_SHARED = $3\n" +
	"      END IF\n" +
	"C report arrival of processes\n" +
	"      ZZNBAR = ZZNBAR + 1\n" +
	"      IF (ZZNBAR .EQ. NPROC) THEN\n" +
	"      unlock(BARWOT)\n" +
	"      ELSE\n" +
	"      unlock(BARWIN)\n" +
	"      END IF\n" +
	"C self scheduled loop index distribution\n" +
	" $1   lock(LOOP$1)\n" +
	"C get next index value\n" +
	"      $2 = $2_SHARED\n" +
	"      $2_SHARED = $2 + $5\n" +
	"      unlock(LOOP$1)\n" +
	"C test for completion\n" +
	"      IF (($5 .GT. 0 .AND. $2 .LE. $4) .OR.\n" +
	"     X    ($5 .LT. 0 .AND. $2 .GE. $4)) THEN')dnl\n" +
	"define(`end_selfsched_do', `      GO TO $1\n" +
	"      END IF\n" +
	"C loop exit code\n" +
	"      lock(BARWOT)\n" +
	"C report exit of processes\n" +
	"      ZZNBAR = ZZNBAR - 1\n" +
	"      IF (ZZNBAR .EQ. 0) THEN\n" +
	"      unlock(BARWIN)\n" +
	"      ELSE\n" +
	"      unlock(BARWOT)\n" +
	"      END IF')dnl\n" +
	// --- prescheduled DOALL --------------------------------------------
	"define(`presched_do', `C prescheduled loop: indices dealt by process number\n" +
	"      DO $1 $2 = $3 + ME*($5), $4, NPROC*($5)')dnl\n" +
	"define(`end_presched_do', ` $1   CONTINUE')dnl\n" +
	// --- Pcase (prescheduled; compile-time block counter ZZPCN) --------
	"define(`ZZPCN', `0')dnl\n" +
	"define(`pcase_begin', `define(`ZZPCN', `0')dnl\nC pcase: independent code blocks dealt to processes')dnl\n" +
	"define(`pcase_usect', `ifelse(ZZPCN, 0, , `      END IF\n')dnl\nC pcase block ZZPCN (unconditional)\n" +
	"      IF (MOD(ZZPCN, NPROC) .EQ. ME) THEN\n" +
	"define(`ZZPCN', incr(ZZPCN))dnl')dnl\n" +
	"define(`pcase_csect', `ifelse(ZZPCN, 0, , `      END IF\n')dnl\nC pcase block ZZPCN (conditional)\n" +
	"      IF (MOD(ZZPCN, NPROC) .EQ. ME .AND. ($1)) THEN\n" +
	"define(`ZZPCN', incr(ZZPCN))dnl')dnl\n" +
	"define(`pcase_end', `ifelse(ZZPCN, 0, , `      END IF\n')dnl\nC end pcase\n" +
	"      CALL ZZPBAR')dnl\n" +
	// --- produce / consume / void (the two-lock protocol) --------------
	"define(`produce', `C `produce' $1 (wait empty, write, set full)\n" +
	"      lock(F_$1)\n" +
	"      $1 = $2\n" +
	"      unlock(E_$1)')dnl\n" +
	"define(`consume', `C `consume' $1 (wait full, read, set empty)\n" +
	"      lock(E_$1)\n" +
	"      $2 = $1\n" +
	"      unlock(F_$1)')dnl\n" +
	"define(`void_async', `C void $1 (force state to empty)\n" +
	"      IF (ZZFULL($1)) THEN\n" +
	"      lock(E_$1)\n" +
	"      unlock(F_$1)\n" +
	"      END IF')dnl\n" +
	// --- global reductions (critical-section baseline: fold the
	//     contribution under a per-target lock, then the exit
	//     synchronization every collective construct shares) -------------
	"define(`greduce', `C global $1 reduction into $2\n" +
	"      lock(RDC_$2)\n" +
	"      $2 = ZZG$1($2, $3)\n" +
	"      unlock(RDC_$2)\n" +
	"C reduction exit synchronization\n" +
	"      CALL ZZGBAR')dnl\n"

// machineLayers maps a machine name to its machine-dependent macro file.
// "generic" maps to the empty layer: the low-level macros stay symbolic,
// which is how the paper prints its expansion listing.
var machineLayers = map[string]string{
	"generic": "",
	"sequent": "" +
		"define(`lock', `CALL S_LOCK($1)')dnl\n" +
		"define(`unlock', `CALL S_UNLOCK($1)')dnl\n" +
		"define(`define_lock', `LOGICAL $1')dnl\n" +
		"define(`init_lock', `CALL S_INIT_LOCK($1)')dnl\n" +
		"define(`force_environment', `INTEGER ZZNBAR, NPROC, ME\n" +
		"C link-time sharing: startup routine names shared variables')dnl\n" +
		"define(`shared_decl', `$1 $2\nC$SHARED $2 (named for the linker by the startup routine)')dnl\n" +
		"define(`async_decl', `$1 $2\nC$SHARED $2\n      LOGICAL E_$2, F_$2\nC$SHARED E_$2, F_$2')dnl\n" +
		"define(`private_decl', `$1 $2')dnl\n",
	"encore": "" +
		"define(`lock', `CALL SPIN_LOCK($1)')dnl\n" +
		"define(`unlock', `CALL SPIN_UNLOCK($1)')dnl\n" +
		"define(`define_lock', `INTEGER $1')dnl\n" +
		"define(`init_lock', `$1 = 0')dnl\n" +
		"define(`force_environment', `INTEGER ZZNBAR, NPROC, ME\n" +
		"C run-time sharing: shared pages padded at both ends')dnl\n" +
		"define(`shared_decl', `$1 $2\nC shared page placement: $2')dnl\n" +
		"define(`async_decl', `$1 $2\nC shared page placement: $2, E_$2, F_$2')dnl\n" +
		"define(`private_decl', `$1 $2\nC private page placement: $2')dnl\n",
	"alliant": "" +
		"define(`lock', `CALL TS_LOCK($1)')dnl\n" +
		"define(`unlock', `CALL TS_UNLOCK($1)')dnl\n" +
		"define(`define_lock', `INTEGER $1')dnl\n" +
		"define(`init_lock', `$1 = 0')dnl\n" +
		"define(`force_environment', `INTEGER ZZNBAR, NPROC, ME\n" +
		"C run-time sharing: shared area starts at a page boundary')dnl\n" +
		"define(`shared_decl', `$1 $2\nC page-start shared placement: $2')dnl\n" +
		"define(`async_decl', `$1 $2\nC page-start shared placement: $2, E_$2, F_$2')dnl\n" +
		"define(`private_decl', `$1 $2\nC private stack placement: $2')dnl\n",
	"cray2": "" +
		"define(`lock', `CALL LOCKON($1)')dnl\n" +
		"define(`unlock', `CALL LOCKOFF($1)')dnl\n" +
		"define(`define_lock', `INTEGER $1')dnl\n" +
		"define(`init_lock', `CALL LOCKASGN($1)')dnl\n" +
		"define(`force_environment', `INTEGER ZZNBAR, NPROC, ME\n" +
		"C system locks are scarce: LOCKASGN may fail for large programs')dnl\n" +
		"define(`shared_decl', `$1 $2\n      COMMON /FORCESHR/ $2')dnl\n" +
		"define(`async_decl', `$1 $2\n      COMMON /FORCESHR/ $2\n      INTEGER E_$2, F_$2\n      COMMON /FORCESHR/ E_$2, F_$2')dnl\n" +
		"define(`private_decl', `$1 $2')dnl\n",
	"flex32": "" +
		"define(`lock', `CALL FLEX_LOCK($1)')dnl\n" +
		"define(`unlock', `CALL FLEX_UNLOCK($1)')dnl\n" +
		"define(`define_lock', `INTEGER $1')dnl\n" +
		"define(`init_lock', `CALL FLEX_INIT($1)')dnl\n" +
		"define(`force_environment', `INTEGER ZZNBAR, NPROC, ME\n" +
		"C combined locks: spin briefly, then system call')dnl\n" +
		"define(`shared_decl', `$1 $2\n      COMMON /FORCESHR/ $2')dnl\n" +
		"define(`async_decl', `$1 $2\n      COMMON /FORCESHR/ $2\n      INTEGER E_$2, F_$2\n      COMMON /FORCESHR/ E_$2, F_$2')dnl\n" +
		"define(`private_decl', `$1 $2')dnl\n",
	"hep": "" +
		"define(`lock', `CALL AWAITF($1)')dnl\n" +
		"define(`unlock', `CALL ASETE($1)')dnl\n" +
		"define(`define_lock', `INTEGER $1')dnl\n" +
		"define(`init_lock', `CALL ASETE($1)')dnl\n" +
		"define(`force_environment', `INTEGER ZZNBAR, NPROC, ME\n" +
		"C hardware full/empty state on every memory cell')dnl\n" +
		"define(`shared_decl', `$1 $2\n      COMMON /FORCESHR/ $2')dnl\n" +
		// The HEP needs no E_/F_ lock pair: the cell itself carries the
		// full/empty bit, so produce/consume map to asynchronous access.
		"define(`async_decl', `$1 $2\n      COMMON /FORCESHR/ $2\nC $2 uses the hardware full/empty bit')dnl\n" +
		"define(`private_decl', `$1 $2')dnl\n" +
		"define(`produce', `C `produce' $1 (hardware full/empty)\n" +
		"      CALL AWRITE($1, $2)')dnl\n" +
		"define(`consume', `C `consume' $1 (hardware full/empty)\n" +
		"      $2 = AREAD($1)')dnl\n" +
		"define(`void_async', `C void $1 (hardware full/empty)\n" +
		"      CALL ASETE($1)')dnl\n",
}

// Machines lists the machine-layer names, generic first.
func Machines() []string {
	return []string{"generic", "hep", "flex32", "encore", "sequent", "alliant", "cray2"}
}

// MachineLayer returns the named machine-dependent macro file.
func MachineLayer(name string) (string, error) {
	layer, ok := machineLayers[name]
	if !ok {
		return "", fmt.Errorf("maclib: unknown machine layer %q", name)
	}
	return layer, nil
}

// Expand runs the complete Force preprocessor pipeline over src for the
// named machine: sed pass, machine-dependent layer, machine-independent
// layer, then macro expansion of the program text.
//
// Note the load order: the machine layer is loaded after the independent
// layer so that a machine may override statement macros outright — the
// HEP's produce/consume use the hardware full/empty bit instead of the
// two-lock protocol, exactly the paper's point that only the HEP avoids
// the two-lock scheme.
func Expand(machineName, src string) (string, error) {
	layer, err := MachineLayer(machineName)
	if err != nil {
		return "", err
	}
	sed, err := sedlite.Parse(SedRules)
	if err != nil {
		return "", fmt.Errorf("maclib: internal sed rules: %w", err)
	}
	macroText := sed.Apply(src)

	p := m4lite.NewProcessor()
	if err := p.Load(Independent); err != nil {
		return "", fmt.Errorf("maclib: independent layer: %w", err)
	}
	if layer != "" {
		if err := p.Load(layer); err != nil {
			return "", fmt.Errorf("maclib: %s layer: %w", machineName, err)
		}
	}
	out, err := p.Expand(macroText)
	if err != nil {
		return "", fmt.Errorf("maclib: expanding program: %w", err)
	}
	return out, nil
}
