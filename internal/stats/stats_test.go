package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.Median() != 0 {
		t.Error("empty sample not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %g", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %g", s.Var())
	}
	if math.Abs(s.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Std = %g", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	if s.Median() != 4.5 {
		t.Errorf("Median = %g", s.Median())
	}
}

func TestMedianOdd(t *testing.T) {
	var s Sample
	for _, x := range []float64{9, 1, 5} {
		s.Add(x)
	}
	if s.Median() != 5 {
		t.Errorf("Median = %g", s.Median())
	}
}

func TestTimeProducesSamples(t *testing.T) {
	calls := 0
	s := Time(3, func() { calls++ })
	if s.N() != 3 {
		t.Errorf("N = %d", s.N())
	}
	if calls != 4 { // warmup + 3
		t.Errorf("calls = %d", calls)
	}
	s2 := Time(0, func() {})
	if s2.N() != 1 {
		t.Errorf("runs<=0 must clamp to 1, N = %d", s2.N())
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	if Speedup(8, 2) != 4 {
		t.Error("speedup")
	}
	if Speedup(8, 0) != 0 {
		t.Error("speedup by zero")
	}
	if Efficiency(8, 2, 4) != 1 {
		t.Error("efficiency")
	}
	if Efficiency(8, 2, 0) != 0 {
		t.Error("efficiency np=0")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "T2: barriers",
		Header: []string{"alg", "np", "ns/op"},
		Notes:  []string{"shape only"},
	}
	tbl.AddRow("twolock", 4, 123.456)
	tbl.AddRow("sense", 8, 0.000123)
	tbl.AddRow("tree", 2, 1234567.0)
	tbl.AddRow("dur", 1, 1500*time.Microsecond)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"== T2: barriers ==",
		"alg", "np", "ns/op",
		"---",
		"twolock", "123.5",
		"1.230e-04",
		"1.235e+06",
		"1.5ms",
		"note: shape only",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableNoHeader(t *testing.T) {
	tbl := &Table{}
	tbl.AddRow("x", 1)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "==") {
		t.Error("unexpected title")
	}
}

func TestFmtFloatZero(t *testing.T) {
	tbl := &Table{}
	tbl.AddRow(0.0)
	if tbl.Rows[0][0] != "0" {
		t.Errorf("zero renders as %q", tbl.Rows[0][0])
	}
}

// Property: Welford mean matches the naive mean.
func TestQuickWelfordMatchesNaive(t *testing.T) {
	prop := func(xs []float64) bool {
		var s Sample
		sum := 0.0
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				ok = false
				break
			}
			s.Add(x)
			sum += x
		}
		if !ok || len(xs) == 0 {
			return true
		}
		naive := sum / float64(len(xs))
		return math.Abs(s.Mean()-naive) <= 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
