// Package stats provides the measurement plumbing for the experiment
// harness: Welford online statistics, repeated-timing helpers, speedup
// and efficiency derivations, and an aligned table printer for the
// paper-style result tables.
package stats

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"
)

// Sample accumulates observations with Welford's online algorithm.
type Sample struct {
	n        int
	mean, m2 float64
	min, max float64
	values   []float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	s.values = append(s.values, x)
}

// N returns the observation count.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Sample) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 points).
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 { return s.max }

// Median returns the median observation (0 when empty).
func (s *Sample) Median() float64 {
	if s.n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// Time runs fn repeatedly (after one warmup) and returns per-run wall
// times as a Sample of seconds.
func Time(runs int, fn func()) *Sample {
	if runs <= 0 {
		runs = 1
	}
	fn() // warmup
	s := &Sample{}
	for i := 0; i < runs; i++ {
		start := time.Now()
		fn()
		s.Add(time.Since(start).Seconds())
	}
	return s
}

// TimeAllocs runs fn repeatedly (after one warmup) and returns per-run
// wall times (seconds) and per-run heap allocation counts
// (runtime.MemStats.Mallocs deltas).  The counter is process-global, so
// the caller must not run anything else concurrently during the
// measurement; the warmup run absorbs lazy initialization so the
// remaining runs measure the steady state.
func TimeAllocs(runs int, fn func()) (times, allocs *Sample) {
	if runs <= 0 {
		runs = 1
	}
	fn() // warmup
	times, allocs = &Sample{}, &Sample{}
	var before, after runtime.MemStats
	for i := 0; i < runs; i++ {
		runtime.ReadMemStats(&before)
		start := time.Now()
		fn()
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		times.Add(elapsed)
		allocs.Add(float64(after.Mallocs - before.Mallocs))
	}
	return times, allocs
}

// Speedup returns sequentialTime / parallelTime (0 when parallel is 0).
func Speedup(seq, par float64) float64 {
	if par == 0 {
		return 0
	}
	return seq / par
}

// Efficiency returns speedup / np.
func Efficiency(seq, par float64, np int) float64 {
	if np <= 0 {
		return 0
	}
	return Speedup(seq, par) / float64(np)
}

// Table renders aligned result tables for the experiment harness.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row; values print with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtFloat(v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000 || math.Abs(v) < 0.001:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		unders := make([]string, len(t.Header))
		for i, h := range t.Header {
			unders[i] = dashes(len(h))
		}
		writeRow(unders)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
