package forcelang

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

const askforSample = `Force TREE of NP ident ME
Shared Integer COUNT
Private Integer WORK
End Declarations
      Askfor WORK = 1
        Critical C
          COUNT = COUNT + 1
        End Critical
        IF (WORK .LT. 4) THEN
          Put WORK + 1
          Put WORK + 1
        End IF
      End Askfor
      Print 'nodes =', COUNT
Join
`

func TestParseAskfor(t *testing.T) {
	prog, err := Parse(askforSample)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Body) != 2 {
		t.Fatalf("body has %d statements, want 2", len(prog.Body))
	}
	af, ok := prog.Body[0].(*AskforStmt)
	if !ok {
		t.Fatalf("first statement is %T, want *AskforStmt", prog.Body[0])
	}
	if af.Var != "WORK" {
		t.Errorf("task variable %q, want WORK", af.Var)
	}
	if _, ok := af.Seed.(*IntLit); !ok {
		t.Errorf("seed is %T, want *IntLit", af.Seed)
	}
	if len(af.Body) != 2 {
		t.Fatalf("askfor body has %d statements, want 2", len(af.Body))
	}
	ifStmt, ok := af.Body[1].(*If)
	if !ok {
		t.Fatalf("second body statement is %T, want *If", af.Body[1])
	}
	if len(ifStmt.Then) != 2 {
		t.Fatalf("IF then-branch has %d statements, want 2 Puts", len(ifStmt.Then))
	}
	for _, st := range ifStmt.Then {
		if _, ok := st.(*PutStmt); !ok {
			t.Errorf("then-branch statement is %T, want *PutStmt", st)
		}
	}
}

func TestAskforCheckerRejections(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{
			"put-outside-askfor",
			"Force F of NP ident ME\nPrivate Integer W\nEnd Declarations\nPut 1\nJoin\n",
			"Put outside an Askfor body",
		},
		{
			"shared-task-variable",
			"Force F of NP ident ME\nShared Integer W\nEnd Declarations\nAskfor W = 1\nW = W\nEnd Askfor\nJoin\n",
			"must be Private",
		},
		{
			"real-seed",
			"Force F of NP ident ME\nPrivate Integer W\nEnd Declarations\nAskfor W = 1.5\nW = W\nEnd Askfor\nJoin\n",
			"seed must be INTEGER",
		},
		{
			"real-put",
			"Force F of NP ident ME\nPrivate Integer W\nEnd Declarations\nAskfor W = 1\nPut 2.5\nEnd Askfor\nJoin\n",
			"task must be INTEGER",
		},
		{
			"real-task-variable",
			"Force F of NP ident ME\nPrivate Real W\nEnd Declarations\nAskfor W = 1\nW = W\nEnd Askfor\nJoin\n",
			"scalar INTEGER",
		},
		{
			// Collective constructs inside a task body would deadlock the
			// force at run time (one process reaches them, np-1 wait in
			// the pool), so the checker rejects them.
			"nested-askfor",
			"Force F of NP ident ME\nPrivate Integer W, V\nEnd Declarations\nAskfor W = 1\nAskfor V = 1\nV = V\nEnd Askfor\nEnd Askfor\nJoin\n",
			"Askfor inside an Askfor body",
		},
		{
			"barrier-in-askfor",
			"Force F of NP ident ME\nPrivate Integer W\nEnd Declarations\nAskfor W = 1\nBarrier\nEnd Barrier\nEnd Askfor\nJoin\n",
			"Barrier inside an Askfor body",
		},
		{
			"pardo-in-askfor",
			"Force F of NP ident ME\nPrivate Integer W, I\nEnd Declarations\nAskfor W = 1\nSelfsched DO I = 1, 4\nW = W\nEnd Selfsched DO\nEnd Askfor\nJoin\n",
			"DO inside an Askfor body",
		},
		{
			"pcase-in-askfor",
			"Force F of NP ident ME\nPrivate Integer W\nEnd Declarations\nAskfor W = 1\nPcase\nUsect\nW = W\nEnd Pcase\nEnd Askfor\nJoin\n",
			"Pcase inside an Askfor body",
		},
		{
			"barrier-via-call-in-askfor",
			"Force F of NP ident ME\nPrivate Integer W\nEnd Declarations\nAskfor W = 1\nCall B\nEnd Askfor\nJoin\nForcesub B()\nEnd Declarations\nBarrier\nEnd Barrier\nEndsub\n",
			"Barrier inside an Askfor body",
		},
		{
			// The other single-stream contexts reject collectives too: a
			// collective reached from inside a critical section or a
			// barrier section deadlocks the force the same way.
			"askfor-in-critical",
			"Force F of NP ident ME\nPrivate Integer W\nEnd Declarations\nCritical C\nAskfor W = 1\nW = W\nEnd Askfor\nEnd Critical\nJoin\n",
			"Askfor inside a Critical body",
		},
		{
			"barrier-in-barrier-section",
			"Force F of NP ident ME\nShared Integer X\nEnd Declarations\nBarrier\nX = 1\nBarrier\nEnd Barrier\nEnd Barrier\nJoin\n",
			"Barrier inside a barrier section",
		},
		{
			"pardo-in-pcase-block",
			"Force F of NP ident ME\nPrivate Integer I\nShared Integer X\nEnd Declarations\nPcase\nUsect\nPresched DO I = 1, 4\nX = X\nEnd Presched DO\nEnd Pcase\nJoin\n",
			"DO inside a Pcase block",
		},
		{
			"barrier-in-pardo-body",
			"Force F of NP ident ME\nPrivate Integer I\nShared Integer X\nEnd Declarations\nSelfsched DO I = 1, 5\nBarrier\nX = 1\nEnd Barrier\nEnd Selfsched DO\nJoin\n",
			"Barrier inside a Selfsched DO body",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("program accepted, want error containing %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

// TestAskforCallChainCheckIsLinear: the single-stream re-check of callees
// memoizes verified subs, so a chain of subs each calling the next twice
// must check in linear, not exponential, time.
func TestAskforCallChainCheckIsLinear(t *testing.T) {
	const depth = 40
	var b strings.Builder
	b.WriteString("Force F of NP ident ME\nPrivate Integer W\nEnd Declarations\nAskfor W = 1\nCall S0\nEnd Askfor\nJoin\n")
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "Forcesub S%d()\nPrivate Integer X\nEnd Declarations\nX = 1\n", i)
		if i+1 < depth {
			fmt.Fprintf(&b, "Call S%d\nCall S%d\n", i+1, i+1)
		}
		b.WriteString("Endsub\n")
	}
	start := time.Now()
	if _, err := Parse(b.String()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("checking a %d-deep double-call chain took %v (exponential re-check?)", depth, d)
	}
}
