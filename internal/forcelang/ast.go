// Package forcelang implements the front end for the Force dialect: a
// lexer, parser, AST and semantic checker for the Fortran-flavoured
// surface syntax the paper and the Force User's Manual [JBAR87] use.
//
// The dialect keeps the paper's statement forms — Force/ident headers,
// shared/private/async declarations, Presched and Selfsched DO loops,
// Barrier sections, Critical sections, Pcase with Usect/Csect blocks,
// Askfor work pools with run-time Put, Produce/Consume/Copy/Void, Join —
// over a small structured Fortran subset (assignments, IF/ELSE,
// sequential DO, PRINT, CALL).  Programs
// parsed here are executed SPMD by internal/interp and translated to Go
// by internal/codegen.
package forcelang

import (
	"fmt"
	"strings"

	"repro/internal/shm"
)

// Type is a Force variable type.
type Type int

const (
	// TInt is Fortran INTEGER.
	TInt Type = iota
	// TReal is Fortran REAL (Go float64).
	TReal
	// TLogical is Fortran LOGICAL.
	TLogical
)

// String returns the Fortran spelling of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INTEGER"
	case TReal:
		return "REAL"
	case TLogical:
		return "LOGICAL"
	default:
		return fmt.Sprintf("forcelang.Type(%d)", int(t))
	}
}

// Decl is one variable declaration.
//
// Unit and Slot are filled in by the semantic checker: Unit names the
// compilation unit owning the storage ("" for the main program, the
// subroutine name for unit-local declarations), and Slot is the
// declaration's index within that unit's storage-class sequence (shared
// scalars, shared arrays, async variables, private scalars and private
// arrays are numbered independently, in declaration order).  Slot 0 of
// the main unit's shared scalars is the implicit NP variable, and slot 0
// of every unit's private scalars is the implicit ident (ME) variable.
// The interpreter's resolve/compile pass executes against these indices
// instead of re-resolving names at run time.
type Decl struct {
	Class shm.Class
	Type  Type
	Name  string
	Dims  []int // nil for scalars; 1 or 2 dimensions for arrays
	Line  int
	Unit  string // owning unit, recorded by the checker
	Slot  int    // index in the unit's per-class sequence, recorded by the checker
}

// Size returns the element count (1 for scalars).
func (d Decl) Size() int {
	n := 1
	for _, dim := range d.Dims {
		n *= dim
	}
	return n
}

// Program is a parsed Force program.
type Program struct {
	Name  string
	NPVar string // the "of" identifier, bound to the number of processes
	MeVar string // the "ident" identifier, bound to the process id
	Decls []Decl
	Subs  []*Subroutine
	Body  []Stmt
}

// Sub looks up a parallel subroutine by name.
func (p *Program) Sub(name string) *Subroutine {
	for _, s := range p.Subs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Subroutine is a Forcesub: a parallel subroutine executed by all
// processes concurrently (§3.1).  Parameters are passed by reference and
// must be variable names at call sites.
type Subroutine struct {
	Name   string
	Params []string
	Decls  []Decl
	Body   []Stmt
	Line   int
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	// Pos returns the source line.
	Pos() int
}

type stmtBase struct{ Line int }

func (s stmtBase) stmtNode() {}

// Pos returns the source line of the statement.
func (s stmtBase) Pos() int { return s.Line }

// Assign is target = expr.
type Assign struct {
	stmtBase
	Target Ref
	Expr   Expr
}

// If is a structured IF (cond) THEN ... [ELSE ...] END IF.
type If struct {
	stmtBase
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// SeqDo is a sequential (private) DO loop.
type SeqDo struct {
	stmtBase
	Var      string
	From, To Expr
	Step     Expr // nil means 1
	Body     []Stmt
}

// WhileDo is a sequential DO WHILE (cond) loop.  Like every sequential
// statement it executes SPMD in each process; convergence loops test a
// shared flag that a barrier section maintains.
type WhileDo struct {
	stmtBase
	Cond Expr
	Body []Stmt
}

// SchedKind is the scheduling discipline of a parallel loop.
type SchedKind int

const (
	// Presched distributes indices cyclically at compile time.
	Presched SchedKind = iota
	// Selfsched distributes indices through a shared counter at run time.
	Selfsched
)

// String returns the dialect keyword.
func (k SchedKind) String() string {
	if k == Presched {
		return "Presched"
	}
	return "Selfsched"
}

// ParDo is a DOALL: Presched DO or Selfsched DO.  Doubly nested DOALLs are
// expressed with Inner, which distributes the index pairs.
type ParDo struct {
	stmtBase
	Sched    SchedKind
	Var      string
	From, To Expr
	Step     Expr // nil means 1
	// Inner, when non-nil, makes this a two-index DOALL over (Var, Inner.Var).
	Inner *ParDoInner
	Body  []Stmt
}

// ParDoInner is the second index of a doubly nested DOALL.
type ParDoInner struct {
	Var      string
	From, To Expr
	Step     Expr
}

// BarrierStmt is Barrier ... End Barrier; Section holds the barrier
// section executed by exactly one process.
type BarrierStmt struct {
	stmtBase
	Section []Stmt
}

// CriticalStmt is Critical name ... End Critical.
type CriticalStmt struct {
	stmtBase
	Name string
	Body []Stmt
}

// PcaseBlock is one Usect/Csect block.
type PcaseBlock struct {
	Cond Expr // nil for Usect
	Body []Stmt
	Line int
}

// PcaseStmt is Pcase [Selfsched] ... End Pcase.
type PcaseStmt struct {
	stmtBase
	Selfsched bool
	Blocks    []PcaseBlock
}

// AskforStmt is Askfor var = seed ... End Askfor: the paper's dynamic
// work pool (§3.3, citing [LO83]) at language level.  The force
// collectively drains a pool of integer tasks seeded with the seed
// expression's value; each task executes the body with the (private
// integer) task variable bound to the task, and the body may request new
// concurrent instances with Put.  The construct ends when the pool is
// empty and no task is executing, followed by the implicit exit barrier.
//
// A task body is a single-stream code segment executed by one process:
// the checker rejects collective constructs (Barrier, DOALLs, Pcase,
// nested Askfor) inside it, directly or through a Call, since only the
// process running the task would reach them.
type AskforStmt struct {
	stmtBase
	Var  string
	Seed Expr
	Body []Stmt
}

// PutStmt is Put expr: enqueue a new integer task on the enclosing
// Askfor's pool.  Valid only inside an Askfor body.
type PutStmt struct {
	stmtBase
	Expr Expr
}

// GOp names a global-reduction operator at language level.
type GOp int

// The six global operators: sum, product, maximum, minimum, conjunction
// and disjunction over the whole force.
const (
	GSum GOp = iota
	GProd
	GMax
	GMin
	GAnd
	GOr
)

var gopNames = map[GOp]string{
	GSum: "GSUM", GProd: "GPROD", GMax: "GMAX", GMin: "GMIN", GAnd: "GAND", GOr: "GOR",
}

// String returns the dialect keyword of the operator.
func (o GOp) String() string {
	if s, ok := gopNames[o]; ok {
		return s
	}
	return fmt.Sprintf("GOp(%d)", int(o))
}

// Logical reports whether the operator combines LOGICAL values (GAND,
// GOR); the others are numeric.
func (o GOp) Logical() bool { return o == GAnd || o == GOr }

// GOps lists the operators in declaration order.
func GOps() []GOp { return []GOp{GSum, GProd, GMax, GMin, GAnd, GOr} }

// ReduceStmt is a global reduction statement: GSUM target = expr (and
// GPROD/GMAX/GMIN/GAND/GOR).  Every process of the force evaluates expr,
// the values are combined with the operator, and target receives the
// combined value: a shared target is stored exactly once while the force
// is suspended, a private target is assigned in every process.  The
// statement is collective — all processes must reach it together, so it
// is illegal inside single-stream contexts (Askfor task bodies, Pcase
// blocks, DOALL iteration bodies, barrier sections, Critical bodies).
type ReduceStmt struct {
	stmtBase
	Op     GOp
	Target Ref
	Expr   Expr
}

// ProduceStmt is Produce var = expr, or Produce var(sub) = expr for an
// asynchronous array element (Sub nil for scalars).  Async arrays are the
// HEP idiom — a full/empty bit on every cell — and are one-dimensional.
type ProduceStmt struct {
	stmtBase
	Var  string
	Sub  Expr // nil for scalar async variables
	Expr Expr
}

// ConsumeStmt is Consume var[(sub)] into target.
type ConsumeStmt struct {
	stmtBase
	Var    string
	Sub    Expr // nil for scalar async variables
	Target Ref
}

// CopyStmt is Copy var[(sub)] into target (read a full async variable
// without emptying it).
type CopyStmt struct {
	stmtBase
	Var    string
	Sub    Expr // nil for scalar async variables
	Target Ref
}

// VoidStmt is Void var[(sub)].
type VoidStmt struct {
	stmtBase
	Var string
	Sub Expr // nil for scalar async variables
}

// PrintStmt is Print item {, item}; items are expressions or string
// literals.
type PrintStmt struct {
	stmtBase
	Items []Expr
}

// CallStmt is Call name(args); arguments are variable references passed by
// reference.
type CallStmt struct {
	stmtBase
	Name string
	Args []Ref
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	// Pos returns the source line.
	Pos() int
}

type exprBase struct{ Line int }

func (e exprBase) exprNode() {}

// Pos returns the source line of the expression.
func (e exprBase) Pos() int { return e.Line }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// RealLit is a real literal.
type RealLit struct {
	exprBase
	Value float64
}

// BoolLit is .TRUE. or .FALSE..
type BoolLit struct {
	exprBase
	Value bool
}

// StrLit is a string literal (Print only).
type StrLit struct {
	exprBase
	Value string
}

// Ref is an lvalue: a scalar variable or an array element.
type Ref struct {
	exprBase
	Name string
	Subs []Expr // nil for scalars
}

// BinOp is a binary operator.
type BinOp int

// Binary operators, in precedence groups.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: ".EQ.", OpNe: ".NE.", OpLt: ".LT.", OpLe: ".LE.", OpGt: ".GT.", OpGe: ".GE.",
	OpAnd: ".AND.", OpOr: ".OR.",
}

// String returns the Fortran spelling of the operator.
func (op BinOp) String() string {
	if s, ok := binOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// Bin is a binary expression.
type Bin struct {
	exprBase
	Op   BinOp
	L, R Expr
}

// Un is unary minus or .NOT..
type Un struct {
	exprBase
	Neg bool // true: -x, false: .NOT. x
	X   Expr
}

// Intrinsic is a call to a builtin function: ABS, MIN, MAX, MOD, SQRT,
// INT, REAL, NINT.
type Intrinsic struct {
	exprBase
	Name string
	Args []Expr
}

// Intrinsics lists the supported intrinsic function names.
func Intrinsics() []string {
	return []string{"ABS", "MIN", "MAX", "MOD", "SQRT", "INT", "REAL", "NINT"}
}

// IsIntrinsic reports whether name (upper case) is an intrinsic.
func IsIntrinsic(name string) bool {
	for _, n := range Intrinsics() {
		if n == name {
			return true
		}
	}
	return false
}

// normalize upper-cases an identifier (Fortran is case-insensitive).
func normalize(s string) string { return strings.ToUpper(s) }
