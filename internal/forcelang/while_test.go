package forcelang

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseWhileDo(t *testing.T) {
	prog := MustParse(`Force W of NP ident ME
Private Integer I
Shared Logical GO
End Declarations
I = 0
DO WHILE (I .LT. 10 .AND. .NOT. GO)
  I = I + 1
End DO
Join
`)
	wd, ok := prog.Body[1].(*WhileDo)
	if !ok {
		t.Fatalf("statement 1 is %T, want *WhileDo", prog.Body[1])
	}
	if len(wd.Body) != 1 {
		t.Errorf("body has %d statements", len(wd.Body))
	}
}

func TestWhileDoNesting(t *testing.T) {
	// DO WHILE containing a plain DO, both closed by End DO, must nest
	// correctly.
	prog := MustParse(`Force W of NP ident ME
Private Integer I, J, S
End Declarations
S = 0
DO WHILE (S .LT. 5)
  DO J = 1, 2
    S = S + 1
  End DO
End DO
Join
`)
	wd := prog.Body[1].(*WhileDo)
	if _, ok := wd.Body[0].(*SeqDo); !ok {
		t.Fatalf("inner statement is %T, want *SeqDo", wd.Body[0])
	}
}

func TestWhileDoErrors(t *testing.T) {
	cases := map[string]string{
		"numeric cond": `Force W of NP ident ME
Private Integer I
End Declarations
DO WHILE (I)
End DO
Join
`,
		"missing paren": `Force W of NP ident ME
End Declarations
DO WHILE ME .EQ. 0
End DO
Join
`,
		"unclosed": `Force W of NP ident ME
End Declarations
DO WHILE (ME .EQ. 0)
Join
`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestQuickParserNeverPanics feeds structured garbage to the parser: the
// contract is error-or-Program, never a panic.
func TestQuickParserNeverPanics(t *testing.T) {
	words := []string{
		"Force", "of", "ident", "End", "Declarations", "Join", "Barrier",
		"Presched", "Selfsched", "DO", "WHILE", "Pcase", "Usect", "Csect",
		"Critical", "Produce", "Consume", "Copy", "Void", "into", "Print",
		"Call", "IF", "THEN", "ELSE", "Endsub", "Forcesub", "also",
		"X", "Y", "1", "2.5", "'s'", "(", ")", ",", "=", "+", "-", "*", "/",
		".EQ.", ".AND.", ".NOT.", ".TRUE.", "\n",
	}
	prop := func(picks []uint16) bool {
		var sb strings.Builder
		sb.WriteString("Force P of NP ident ME\nEnd Declarations\n")
		for _, p := range picks {
			sb.WriteString(words[int(p)%len(words)])
			sb.WriteByte(' ')
		}
		sb.WriteString("\nJoin\n")
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", sb.String(), r)
			}
		}()
		_, _ = Parse(sb.String())
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestAsyncArrayDeclarationAndUse(t *testing.T) {
	prog := MustParse(`Force AA of NP ident ME
Async Real PIPE(8)
Private Real X
Private Integer I
End Declarations
I = 3
Produce PIPE(I) = 1.5
Consume PIPE(I) into X
Copy PIPE(1) into X
Void PIPE(2)
Join
`)
	ps := prog.Body[1].(*ProduceStmt)
	if ps.Sub == nil {
		t.Error("Produce subscript not parsed")
	}
	cs := prog.Body[2].(*ConsumeStmt)
	if cs.Sub == nil {
		t.Error("Consume subscript not parsed")
	}
	vs := prog.Body[4].(*VoidStmt)
	if vs.Sub == nil {
		t.Error("Void subscript not parsed")
	}
}
