package forcelang

import (
	"fmt"

	"repro/internal/shm"
)

// Parse parses a Force dialect source text into a Program and runs the
// semantic checker.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse panicking on error, for compiled-in programs.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

// accept consumes the current token if it is an identifier with the given
// upper-case text.
func (p *parser) accept(word string) bool {
	if p.cur().kind == tokIdent && p.cur().text == word {
		p.pos++
		return true
	}
	return false
}

// acceptSym consumes the current token if it is the given symbol.
func (p *parser) acceptSym(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectWord(word string) error {
	if !p.accept(word) {
		return p.errf("expected %s, found %s", word, p.cur())
	}
	return nil
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier, found %s", p.cur())
	}
	return p.next().text, nil
}

func (p *parser) expectEOL() error {
	if p.cur().kind == tokEOL {
		p.pos++
		return nil
	}
	if p.cur().kind == tokEOF {
		return nil
	}
	return p.errf("unexpected %s at end of statement", p.cur())
}

func (p *parser) atEOL() bool {
	return p.cur().kind == tokEOL || p.cur().kind == tokEOF
}

// peekWord reports whether the current token is the given identifier
// without consuming it.
func (p *parser) peekWord(word string) bool {
	return p.cur().kind == tokIdent && p.cur().text == word
}

// peekWords reports whether the next tokens are the given identifiers.
func (p *parser) peekWords(words ...string) bool {
	for i, w := range words {
		if p.pos+i >= len(p.toks) {
			return false
		}
		t := p.toks[p.pos+i]
		if t.kind != tokIdent || t.text != w {
			return false
		}
	}
	return true
}

// --- program ----------------------------------------------------------

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	// Header: Force NAME of NP ident ME
	if err := p.expectWord("FORCE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	prog.Name = name
	if err := p.expectWord("OF"); err != nil {
		return nil, err
	}
	if prog.NPVar, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectWord("IDENT"); err != nil {
		return nil, err
	}
	if prog.MeVar, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	// Declarations up to End Declarations.
	prog.Decls, err = p.parseDecls()
	if err != nil {
		return nil, err
	}
	// Body up to Join.
	prog.Body, err = p.parseStmts("JOIN")
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("JOIN"); err != nil {
		return nil, err
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	// Optional Forcesub definitions after Join.
	for p.cur().kind != tokEOF {
		sub, err := p.parseSub()
		if err != nil {
			return nil, err
		}
		prog.Subs = append(prog.Subs, sub)
	}
	return prog, nil
}

func (p *parser) parseDecls() ([]Decl, error) {
	var decls []Decl
	for {
		if p.peekWords("END", "DECLARATIONS") {
			p.pos += 2
			if err := p.expectEOL(); err != nil {
				return nil, err
			}
			return decls, nil
		}
		if p.cur().kind == tokEOF {
			return nil, p.errf("missing End Declarations")
		}
		var class shm.Class
		switch {
		case p.accept("SHARED"):
			class = shm.Shared
		case p.accept("PRIVATE"):
			class = shm.Private
		case p.accept("ASYNC"):
			class = shm.Async
		default:
			return nil, p.errf("expected Shared, Private, Async or End Declarations, found %s", p.cur())
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		// One or more names, comma separated, each optionally
		// dimensioned.
		for {
			line := p.cur().line
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			d := Decl{Class: class, Type: typ, Name: name, Line: line}
			if p.acceptSym("(") {
				for {
					if p.cur().kind != tokInt {
						return nil, p.errf("array dimension must be an integer literal")
					}
					dim := int(p.next().ival)
					if dim <= 0 {
						return nil, fmt.Errorf("line %d: array dimension must be positive", line)
					}
					d.Dims = append(d.Dims, dim)
					if p.acceptSym(",") {
						continue
					}
					break
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				if len(d.Dims) > 2 {
					return nil, fmt.Errorf("line %d: at most 2 dimensions supported", line)
				}
			}
			decls = append(decls, d)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseType() (Type, error) {
	switch {
	case p.accept("INTEGER"):
		return TInt, nil
	case p.accept("REAL"):
		return TReal, nil
	case p.accept("LOGICAL"):
		return TLogical, nil
	default:
		return 0, p.errf("expected INTEGER, REAL or LOGICAL, found %s", p.cur())
	}
}

func (p *parser) parseSub() (*Subroutine, error) {
	line := p.cur().line
	if err := p.expectWord("FORCESUB"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	sub := &Subroutine{Name: name, Line: line}
	if p.acceptSym("(") {
		if !p.acceptSym(")") {
			for {
				param, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				sub.Params = append(sub.Params, param)
				if p.acceptSym(",") {
					continue
				}
				break
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	if sub.Decls, err = p.parseDecls(); err != nil {
		return nil, err
	}
	if sub.Body, err = p.parseStmts("ENDSUB"); err != nil {
		return nil, err
	}
	if err := p.expectWord("ENDSUB"); err != nil {
		return nil, err
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	return sub, nil
}

// --- statements --------------------------------------------------------

// stopSet describes the identifiers that terminate a statement list; the
// terminator is not consumed.
func (p *parser) atStop(stops ...string) bool {
	if p.cur().kind == tokEOF {
		return true
	}
	for _, s := range stops {
		switch s {
		case "END-IF":
			if p.peekWords("END", "IF") {
				return true
			}
		case "ELSE":
			if p.peekWord("ELSE") {
				return true
			}
		case "END-DO":
			if p.peekWords("END", "DO") {
				return true
			}
		case "END-PRESCHED":
			if p.peekWords("END", "PRESCHED") {
				return true
			}
		case "END-SELFSCHED":
			if p.peekWords("END", "SELFSCHED") {
				return true
			}
		case "END-BARRIER":
			if p.peekWords("END", "BARRIER") {
				return true
			}
		case "END-CRITICAL":
			if p.peekWords("END", "CRITICAL") {
				return true
			}
		case "END-PCASE":
			if p.peekWords("END", "PCASE") {
				return true
			}
		case "END-ASKFOR":
			if p.peekWords("END", "ASKFOR") {
				return true
			}
		case "USECT":
			if p.peekWord("USECT") {
				return true
			}
		case "CSECT":
			if p.peekWord("CSECT") {
				return true
			}
		default:
			if p.peekWord(s) {
				return true
			}
		}
	}
	return false
}

func (p *parser) parseStmts(stops ...string) ([]Stmt, error) {
	var stmts []Stmt
	for {
		if p.atStop(stops...) {
			return stmts, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	line := p.cur().line
	base := stmtBase{Line: line}
	switch {
	case p.peekWord("IF"):
		return p.parseIf()
	case p.peekWords("PRESCHED", "DO"):
		p.pos += 2
		return p.parseParDo(Presched, base)
	case p.peekWords("SELFSCHED", "DO"):
		p.pos += 2
		return p.parseParDo(Selfsched, base)
	case p.peekWords("DO", "WHILE"):
		p.pos += 2
		return p.parseWhileDo(base)
	case p.peekWord("DO"):
		p.pos++
		return p.parseSeqDo(base)
	case p.peekWord("BARRIER"):
		p.pos++
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		section, err := p.parseStmts("END-BARRIER")
		if err != nil {
			return nil, err
		}
		p.pos += 2 // END BARRIER
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		return &BarrierStmt{stmtBase: base, Section: section}, nil
	case p.peekWord("CRITICAL"):
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		body, err := p.parseStmts("END-CRITICAL")
		if err != nil {
			return nil, err
		}
		p.pos += 2
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		return &CriticalStmt{stmtBase: base, Name: name, Body: body}, nil
	case p.peekWord("ASKFOR"):
		p.pos++
		return p.parseAskfor(base)
	case p.peekWord("PUT"):
		p.pos++
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		return &PutStmt{stmtBase: base, Expr: expr}, nil
	case p.peekWord("PCASE"):
		return p.parsePcase(base)
	case p.peekGOp() != nil:
		op := *p.peekGOp()
		p.pos++
		target, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		return &ReduceStmt{stmtBase: base, Op: op, Target: target, Expr: e}, nil
	case p.peekWord("PRODUCE"):
		p.pos++
		name, sub, err := p.parseAsyncRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		return &ProduceStmt{stmtBase: base, Var: name, Sub: sub, Expr: e}, nil
	case p.peekWord("CONSUME"), p.peekWord("COPY"):
		isCopy := p.peekWord("COPY")
		p.pos++
		name, sub, err := p.parseAsyncRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("INTO"); err != nil {
			return nil, err
		}
		target, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		if isCopy {
			return &CopyStmt{stmtBase: base, Var: name, Sub: sub, Target: target}, nil
		}
		return &ConsumeStmt{stmtBase: base, Var: name, Sub: sub, Target: target}, nil
	case p.peekWord("VOID"):
		p.pos++
		name, sub, err := p.parseAsyncRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		return &VoidStmt{stmtBase: base, Var: name, Sub: sub}, nil
	case p.peekWord("PRINT"):
		p.pos++
		var items []Expr
		for {
			if p.cur().kind == tokString {
				t := p.next()
				items = append(items, &StrLit{exprBase: exprBase{Line: t.line}, Value: t.text})
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				items = append(items, e)
			}
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		return &PrintStmt{stmtBase: base, Items: items}, nil
	case p.peekWord("CALL"):
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		call := &CallStmt{stmtBase: base, Name: name}
		if p.acceptSym("(") {
			if !p.acceptSym(")") {
				for {
					ref, err := p.parseRef()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, ref)
					if p.acceptSym(",") {
						continue
					}
					break
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		return call, nil
	case p.cur().kind == tokIdent:
		// Assignment.
		target, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		return &Assign{stmtBase: base, Target: target, Expr: e}, nil
	default:
		return nil, p.errf("unexpected %s at start of statement", p.cur())
	}
}

func (p *parser) parseIf() (Stmt, error) {
	base := stmtBase{Line: p.cur().line}
	p.pos++ // IF
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectWord("THEN"); err != nil {
		return nil, err
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	thenStmts, err := p.parseStmts("ELSE", "END-IF")
	if err != nil {
		return nil, err
	}
	var elseStmts []Stmt
	if p.accept("ELSE") {
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		if elseStmts, err = p.parseStmts("END-IF"); err != nil {
			return nil, err
		}
	}
	p.pos += 2 // END IF
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	return &If{stmtBase: base, Cond: cond, Then: thenStmts, Else: elseStmts}, nil
}

// parseLoopHeader parses "VAR = from, to[, step]".
func (p *parser) parseLoopHeader() (v string, from, to, step Expr, err error) {
	if v, err = p.expectIdent(); err != nil {
		return
	}
	if err = p.expectSym("="); err != nil {
		return
	}
	if from, err = p.parseExpr(); err != nil {
		return
	}
	if err = p.expectSym(","); err != nil {
		return
	}
	if to, err = p.parseExpr(); err != nil {
		return
	}
	if p.acceptSym(",") {
		if step, err = p.parseExpr(); err != nil {
			return
		}
	}
	return
}

func (p *parser) parseSeqDo(base stmtBase) (Stmt, error) {
	v, from, to, step, err := p.parseLoopHeader()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	body, err := p.parseStmts("END-DO")
	if err != nil {
		return nil, err
	}
	p.pos += 2 // END DO
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	return &SeqDo{stmtBase: base, Var: v, From: from, To: to, Step: step, Body: body}, nil
}

func (p *parser) parseWhileDo(base stmtBase) (Stmt, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	body, err := p.parseStmts("END-DO")
	if err != nil {
		return nil, err
	}
	p.pos += 2 // END DO
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	return &WhileDo{stmtBase: base, Cond: cond, Body: body}, nil
}

func (p *parser) parseParDo(kind SchedKind, base stmtBase) (Stmt, error) {
	v, from, to, step, err := p.parseLoopHeader()
	if err != nil {
		return nil, err
	}
	pd := &ParDo{stmtBase: base, Sched: kind, Var: v, From: from, To: to, Step: step}
	// Optional second index on the same line: "; J = f2, t2[, s2]" is
	// expressed with a comma-free "ALSO" keyword for doubly nested
	// DOALLs: Presched DO I = 1, N also J = 1, M
	if p.accept("ALSO") {
		iv, ifrom, ito, istep, err := p.parseLoopHeader()
		if err != nil {
			return nil, err
		}
		pd.Inner = &ParDoInner{Var: iv, From: ifrom, To: ito, Step: istep}
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	stop := "END-PRESCHED"
	if kind == Selfsched {
		stop = "END-SELFSCHED"
	}
	if pd.Body, err = p.parseStmts(stop); err != nil {
		return nil, err
	}
	p.pos += 2 // END PRESCHED|SELFSCHED
	if err := p.expectWord("DO"); err != nil {
		return nil, err
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	return pd, nil
}

// peekGOp reports (without consuming) whether the current token starts a
// global-reduction statement, returning the operator.
func (p *parser) peekGOp() *GOp {
	if p.cur().kind != tokIdent {
		return nil
	}
	for _, op := range GOps() {
		if p.cur().text == op.String() {
			op := op
			return &op
		}
	}
	return nil
}

// parseAskfor parses Askfor VAR = seed ... End Askfor (ASKFOR already
// consumed).
func (p *parser) parseAskfor(base stmtBase) (Stmt, error) {
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("="); err != nil {
		return nil, err
	}
	seed, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	body, err := p.parseStmts("END-ASKFOR")
	if err != nil {
		return nil, err
	}
	p.pos += 2 // END ASKFOR
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	return &AskforStmt{stmtBase: base, Var: v, Seed: seed, Body: body}, nil
}

func (p *parser) parsePcase(base stmtBase) (Stmt, error) {
	p.pos++ // PCASE
	ps := &PcaseStmt{stmtBase: base}
	if p.accept("SELFSCHED") {
		ps.Selfsched = true
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekWord("USECT"):
			line := p.cur().line
			p.pos++
			if err := p.expectEOL(); err != nil {
				return nil, err
			}
			body, err := p.parseStmts("USECT", "CSECT", "END-PCASE")
			if err != nil {
				return nil, err
			}
			ps.Blocks = append(ps.Blocks, PcaseBlock{Body: body, Line: line})
		case p.peekWord("CSECT"):
			line := p.cur().line
			p.pos++
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			if err := p.expectEOL(); err != nil {
				return nil, err
			}
			body, err := p.parseStmts("USECT", "CSECT", "END-PCASE")
			if err != nil {
				return nil, err
			}
			ps.Blocks = append(ps.Blocks, PcaseBlock{Cond: cond, Body: body, Line: line})
		case p.peekWords("END", "PCASE"):
			p.pos += 2
			if err := p.expectEOL(); err != nil {
				return nil, err
			}
			if len(ps.Blocks) == 0 {
				return nil, fmt.Errorf("line %d: Pcase with no Usect/Csect blocks", base.Line)
			}
			return ps, nil
		default:
			return nil, p.errf("expected Usect, Csect or End Pcase, found %s", p.cur())
		}
	}
}

// parseAsyncRef parses the variable part of a Produce/Consume/Copy/Void
// statement: a name with an optional single subscript.
func (p *parser) parseAsyncRef() (string, Expr, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", nil, err
	}
	if !p.acceptSym("(") {
		return name, nil, nil
	}
	sub, err := p.parseExpr()
	if err != nil {
		return "", nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return "", nil, err
	}
	return name, sub, nil
}

// --- expressions -------------------------------------------------------

func (p *parser) parseRef() (Ref, error) {
	line := p.cur().line
	name, err := p.expectIdent()
	if err != nil {
		return Ref{}, err
	}
	r := Ref{exprBase: exprBase{Line: line}, Name: name}
	if p.acceptSym("(") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return Ref{}, err
			}
			r.Subs = append(r.Subs, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return Ref{}, err
		}
	}
	return r, nil
}

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokDotOp && p.cur().text == ".OR." {
		line := p.next().line
		right, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		left = &Bin{exprBase: exprBase{Line: line}, Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAndExpr() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokDotOp && p.cur().text == ".AND." {
		line := p.next().line
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Bin{exprBase: exprBase{Line: line}, Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.cur().kind == tokDotOp && p.cur().text == ".NOT." {
		line := p.next().line
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Un{exprBase: exprBase{Line: line}, Neg: false, X: x}, nil
	}
	return p.parseRel()
}

var relOps = map[string]BinOp{
	".EQ.": OpEq, ".NE.": OpNe, ".LT.": OpLt, ".LE.": OpLe, ".GT.": OpGt, ".GE.": OpGe,
}

func (p *parser) parseRel() (Expr, error) {
	left, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokDotOp {
		if op, ok := relOps[p.cur().text]; ok {
			line := p.next().line
			right, err := p.parseArith()
			if err != nil {
				return nil, err
			}
			return &Bin{exprBase: exprBase{Line: line}, Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseArith() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "+" || p.cur().text == "-") {
		t := p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		op := OpAdd
		if t.text == "-" {
			op = OpSub
		}
		left = &Bin{exprBase: exprBase{Line: t.line}, Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "*" || p.cur().text == "/") {
		t := p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := OpMul
		if t.text == "/" {
			op = OpDiv
		}
		left = &Bin{exprBase: exprBase{Line: t.line}, Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur().kind == tokSymbol && p.cur().text == "-" {
		line := p.next().line
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Un{exprBase: exprBase{Line: line}, Neg: true, X: x}, nil
	}
	if p.cur().kind == tokSymbol && p.cur().text == "+" {
		p.pos++
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.pos++
		return &IntLit{exprBase: exprBase{Line: t.line}, Value: t.ival}, nil
	case tokReal:
		p.pos++
		return &RealLit{exprBase: exprBase{Line: t.line}, Value: t.rval}, nil
	case tokDotOp:
		switch t.text {
		case ".TRUE.":
			p.pos++
			return &BoolLit{exprBase: exprBase{Line: t.line}, Value: true}, nil
		case ".FALSE.":
			p.pos++
			return &BoolLit{exprBase: exprBase{Line: t.line}, Value: false}, nil
		}
		return nil, p.errf("unexpected %s in expression", t)
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %s in expression", t)
	case tokIdent:
		name := t.text
		if IsIntrinsic(name) && p.pos+1 < len(p.toks) &&
			p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.pos += 2
			call := &Intrinsic{exprBase: exprBase{Line: t.line}, Name: name}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, e)
				if p.acceptSym(",") {
					continue
				}
				break
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		ref, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		return &ref, nil
	default:
		return nil, p.errf("unexpected %s in expression", t)
	}
}
