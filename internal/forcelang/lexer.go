package forcelang

import (
	"fmt"
	"strconv"
	"strings"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokEOL
	tokIdent
	tokInt
	tokReal
	tokString
	tokDotOp  // .EQ. .NE. .LT. .LE. .GT. .GE. .AND. .OR. .NOT. .TRUE. .FALSE.
	tokSymbol // ( ) , = + - * /
)

type token struct {
	kind tokKind
	text string // identifiers upper-cased; dot-ops upper-cased with dots
	ival int64
	rval float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokEOL:
		return "end of line"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes a whole source text.  Comment lines start with C, c, * or
// ! in column one; a ! elsewhere comments to end of line.  Blank lines are
// dropped; every remaining line ends with a tokEOL.
func lex(src string) ([]token, error) {
	var toks []token
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		// Column-one comment (classic Fortran) — only when the marker
		// is followed by a space or the line is just the marker, so
		// identifiers like "Consume" are not eaten.
		trimmedRight := strings.TrimRight(line, " \t")
		if len(trimmedRight) > 0 {
			c := trimmedRight[0]
			if c == '*' || c == '!' ||
				((c == 'C' || c == 'c') && (len(trimmedRight) == 1 || trimmedRight[1] == ' ' || trimmedRight[1] == '\t')) {
				continue
			}
		}
		lineToks, err := lexLine(line, lineNo+1)
		if err != nil {
			return nil, err
		}
		if len(lineToks) == 0 {
			continue
		}
		toks = append(toks, lineToks...)
		toks = append(toks, token{kind: tokEOL, line: lineNo + 1})
	}
	toks = append(toks, token{kind: tokEOF, line: strings.Count(src, "\n") + 1})
	return toks, nil
}

func lexLine(line string, lineNo int) ([]token, error) {
	var toks []token
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '!':
			return toks, nil // comment to end of line
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < n {
				if line[j] == '\'' {
					if j+1 < n && line[j+1] == '\'' { // doubled quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(line[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("line %d: unterminated string", lineNo)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), line: lineNo})
			i = j + 1
		case c == '.' && i+1 < n && isLetter(line[i+1]):
			j := i + 1
			for j < n && isLetter(line[j]) {
				j++
			}
			if j >= n || line[j] != '.' {
				return nil, fmt.Errorf("line %d: malformed dot-operator at %q", lineNo, line[i:])
			}
			op := strings.ToUpper(line[i : j+1])
			switch op {
			case ".EQ.", ".NE.", ".LT.", ".LE.", ".GT.", ".GE.", ".AND.", ".OR.", ".NOT.", ".TRUE.", ".FALSE.":
				toks = append(toks, token{kind: tokDotOp, text: op, line: lineNo})
			default:
				return nil, fmt.Errorf("line %d: unknown operator %s", lineNo, op)
			}
			i = j + 1
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(line[i+1])):
			j := i
			isReal := false
			for j < n && isDigit(line[j]) {
				j++
			}
			if j < n && line[j] == '.' && (j+1 >= n || !isLetter(line[j+1])) {
				isReal = true
				j++
				for j < n && isDigit(line[j]) {
					j++
				}
			}
			if j < n && (line[j] == 'E' || line[j] == 'e') {
				k := j + 1
				if k < n && (line[k] == '+' || line[k] == '-') {
					k++
				}
				if k < n && isDigit(line[k]) {
					isReal = true
					j = k
					for j < n && isDigit(line[j]) {
						j++
					}
				}
			}
			text := line[i:j]
			if isReal {
				v, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad real %q: %v", lineNo, text, err)
				}
				toks = append(toks, token{kind: tokReal, text: text, rval: v, line: lineNo})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad integer %q: %v", lineNo, text, err)
				}
				toks = append(toks, token{kind: tokInt, text: text, ival: v, line: lineNo})
			}
			i = j
		case isLetter(c) || c == '_':
			j := i
			for j < n && (isLetter(line[j]) || isDigit(line[j]) || line[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: strings.ToUpper(line[i:j]), line: lineNo})
			i = j
		case strings.ContainsRune("(),=+-*/", rune(c)):
			toks = append(toks, token{kind: tokSymbol, text: string(c), line: lineNo})
			i++
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", lineNo, string(c))
		}
	}
	return toks, nil
}

func isLetter(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
