package forcelang

import (
	"fmt"
	"sort"

	"repro/internal/shm"
)

// Scope is a resolved symbol table for one compilation unit (the main
// program or a subroutine body).  Every Decl in the scope carries the
// slot information the checker assigned (see Decl): the unit owning the
// storage and the index within that unit's storage-class sequence.
type Scope struct {
	vars map[string]Decl
}

// Lookup resolves a name in the scope.
func (s *Scope) Lookup(name string) (Decl, bool) {
	d, ok := s.vars[normalize(name)]
	return d, ok
}

// Names returns the declared names (unspecified order).
func (s *Scope) Names() []string {
	out := make([]string, 0, len(s.vars))
	for n := range s.vars {
		out = append(out, n)
	}
	return out
}

// Decls returns every declaration visible in the scope — inherited
// (COMMON-like) ones included — sorted by owning unit, class, shape and
// slot: the stable enumeration the interpreter's resolver allocates
// index-addressed storage from.
func (s *Scope) Decls() []Decl {
	out := make([]Decl, 0, len(s.vars))
	for _, d := range s.vars {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Unit != b.Unit {
			return a.Unit < b.Unit
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		aArr, bArr := len(a.Dims) > 0, len(b.Dims) > 0
		if aArr != bArr {
			return !aArr
		}
		return a.Slot < b.Slot
	})
	return out
}

// slotCounters numbers a unit's declarations per storage-class sequence:
// shared scalars, shared arrays, async variables, private scalars and
// private arrays each count independently.
type slotCounters struct {
	sharedScalar, sharedArray, async, privScalar, privArray int
}

// next assigns the next slot for d's sequence.
func (sc *slotCounters) next(d Decl) int {
	var n *int
	switch {
	case d.Class == shm.Async:
		n = &sc.async
	case d.Class == shm.Shared && len(d.Dims) > 0:
		n = &sc.sharedArray
	case d.Class == shm.Shared:
		n = &sc.sharedScalar
	case len(d.Dims) > 0:
		n = &sc.privArray
	default:
		n = &sc.privScalar
	}
	slot := *n
	*n++
	return slot
}

// Check runs semantic analysis: declaration consistency, name resolution,
// type checking, async-variable usage rules, and call-site validation.
// It follows the Force model: shared and async variables are global
// (COMMON-like) and visible inside subroutines; private main-program
// variables are not.
func Check(prog *Program) error {
	c := &checker{prog: prog}
	global, err := c.buildScope("", prog.Decls, nil, prog)
	if err != nil {
		return err
	}
	c.global = global
	if err := c.stmts(prog.Body, global); err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, sub := range prog.Subs {
		if seen[sub.Name] {
			return fmt.Errorf("line %d: duplicate subroutine %s", sub.Line, sub.Name)
		}
		seen[sub.Name] = true
		scope, err := c.buildSubScope(sub)
		if err != nil {
			return err
		}
		if err := c.stmts(sub.Body, scope); err != nil {
			return err
		}
	}
	return nil
}

// GlobalScope returns the main program's resolved scope (declarations plus
// the implicit NP and ident variables); it is used by the interpreter and
// the code generator.
func GlobalScope(prog *Program) (*Scope, error) {
	c := &checker{prog: prog}
	return c.buildScope("", prog.Decls, nil, prog)
}

// SubScope returns a subroutine's resolved scope.
func SubScope(prog *Program, sub *Subroutine) (*Scope, error) {
	c := &checker{prog: prog}
	return c.buildSubScope(sub)
}

// TypeOf infers the type of an expression in a resolved scope; it is used
// by the code generator to place numeric conversions.
func TypeOf(prog *Program, s *Scope, e Expr) (Type, error) {
	c := &checker{prog: prog}
	return c.exprType(e, s)
}

type checker struct {
	prog   *Program
	global *Scope
	askfor int // nesting depth of Askfor bodies; Put is legal only inside one
	// serial is the stack of enclosing single-stream contexts — Askfor
	// task bodies, Critical bodies, barrier sections, Pcase blocks.
	// Collective constructs (Barrier, DOALLs, Pcase, Askfor) are
	// rejected inside them: only one process (or a serialized one)
	// would reach the construct while its SPMD peers are blocked on the
	// enclosing lock/barrier/pool, deadlocking the force.
	serial   []string
	inCalls  map[string]bool // subs on the current re-check path (cycle guard)
	serialOK map[string]bool // subs proven free of collective constructs
}

// collective rejects a collective construct when inside a single-stream
// context.
func (c *checker) collective(line int, what string) error {
	if n := len(c.serial); n > 0 {
		return fmt.Errorf("line %d: %s inside %s (single-stream context)", line, what, c.serial[n-1])
	}
	return nil
}

// inSerial runs check under an additional single-stream context.
func (c *checker) inSerial(ctx string, check func() error) error {
	c.serial = append(c.serial, ctx)
	err := check()
	c.serial = c.serial[:len(c.serial)-1]
	return err
}

// buildScope assembles a scope from declarations for the unit named
// unit ("" for the main program).  When base is non-nil its shared/async
// entries are inherited (subroutine case).  When prog is non-nil the
// implicit NPVar (shared integer) and MeVar (private integer) are added.
//
// Every declaration is recorded with its owning unit and storage slot —
// the index-addressed identity the interpreter's resolve/compile pass
// executes against.  NP is shared-scalar slot 0 of the main unit, ME is
// private-scalar slot 0 of every unit; a unit's own declarations number
// from there in declaration order, per class sequence.
func (c *checker) buildScope(unit string, decls []Decl, base *Scope, prog *Program) (*Scope, error) {
	s := &Scope{vars: map[string]Decl{}}
	if base != nil {
		for n, d := range base.vars {
			if d.Class.IsShared() {
				s.vars[n] = d
			}
		}
	}
	var slots slotCounters
	if prog != nil {
		np := normalize(prog.NPVar)
		me := normalize(prog.MeVar)
		if np == me {
			return nil, fmt.Errorf("force header: NP variable and ident variable are both %s", np)
		}
		s.vars[np] = Decl{Class: shm.Shared, Type: TInt, Name: np, Unit: "", Slot: 0}
		s.vars[me] = Decl{Class: shm.Private, Type: TInt, Name: me, Unit: unit, Slot: 0}
		if unit == "" {
			slots.sharedScalar = 1
		}
		slots.privScalar = 1
	}
	for _, d := range decls {
		n := normalize(d.Name)
		if prior, dup := s.vars[n]; dup && base == nil {
			return nil, fmt.Errorf("line %d: %s already declared (line %d)", d.Line, n, prior.Line)
		}
		if d.Class == shm.Async {
			if len(d.Dims) > 1 {
				return nil, fmt.Errorf("line %d: async variable %s may have at most one dimension", d.Line, n)
			}
			if d.Type == TLogical {
				return nil, fmt.Errorf("line %d: async variable %s must be numeric", d.Line, n)
			}
		}
		d.Name = n
		d.Unit = unit
		d.Slot = slots.next(d)
		s.vars[n] = d
	}
	return s, nil
}

func (c *checker) buildSubScope(sub *Subroutine) (*Scope, error) {
	if c.global == nil {
		g, err := c.buildScope("", c.prog.Decls, nil, c.prog)
		if err != nil {
			return nil, err
		}
		c.global = g
	}
	s, err := c.buildScope(sub.Name, sub.Decls, c.global, c.prog)
	if err != nil {
		return nil, err
	}
	// Every parameter must be declared in the subroutine's declaration
	// section (Fortran style), and cannot be Async: the full/empty cell
	// has no by-reference representation.
	for _, param := range sub.Params {
		d, ok := s.Lookup(param)
		if !ok {
			return nil, fmt.Errorf("line %d: parameter %s of %s not declared", sub.Line, param, sub.Name)
		}
		if d.Class == shm.Async {
			return nil, fmt.Errorf("line %d: parameter %s of %s cannot be Async", sub.Line, param, sub.Name)
		}
	}
	return s, nil
}

func (c *checker) stmts(list []Stmt, s *Scope) error {
	for _, st := range list {
		if err := c.stmt(st, s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(st Stmt, s *Scope) error {
	switch t := st.(type) {
	case *Assign:
		lt, err := c.refType(&t.Target, s)
		if err != nil {
			return err
		}
		rt, err := c.exprType(t.Expr, s)
		if err != nil {
			return err
		}
		return assignable(lt, rt, t.Pos())
	case *If:
		ct, err := c.exprType(t.Cond, s)
		if err != nil {
			return err
		}
		if ct != TLogical {
			return fmt.Errorf("line %d: IF condition must be LOGICAL", t.Pos())
		}
		if err := c.stmts(t.Then, s); err != nil {
			return err
		}
		return c.stmts(t.Else, s)
	case *SeqDo:
		if err := c.loopVar(t.Var, s, t.Pos(), false); err != nil {
			return err
		}
		if err := c.loopBounds(t.From, t.To, t.Step, s, t.Pos()); err != nil {
			return err
		}
		return c.stmts(t.Body, s)
	case *WhileDo:
		ct, err := c.exprType(t.Cond, s)
		if err != nil {
			return err
		}
		if ct != TLogical {
			return fmt.Errorf("line %d: DO WHILE condition must be LOGICAL", t.Pos())
		}
		return c.stmts(t.Body, s)
	case *ParDo:
		if err := c.collective(t.Pos(), fmt.Sprintf("%s DO", t.Sched)); err != nil {
			return err
		}
		if err := c.loopVar(t.Var, s, t.Pos(), true); err != nil {
			return err
		}
		if err := c.loopBounds(t.From, t.To, t.Step, s, t.Pos()); err != nil {
			return err
		}
		if t.Inner != nil {
			if err := c.loopVar(t.Inner.Var, s, t.Pos(), true); err != nil {
				return err
			}
			if err := c.loopBounds(t.Inner.From, t.Inner.To, t.Inner.Step, s, t.Pos()); err != nil {
				return err
			}
			if normalize(t.Inner.Var) == normalize(t.Var) {
				return fmt.Errorf("line %d: doubly nested DOALL uses the same index twice", t.Pos())
			}
		}
		// A DOALL iteration body is itself a single-stream unit: one
		// process executes each iteration, so a collective inside it
		// deadlocks just as in the other serial contexts.
		return c.inSerial(fmt.Sprintf("a %s DO body", t.Sched), func() error {
			return c.stmts(t.Body, s)
		})
	case *BarrierStmt:
		if err := c.collective(t.Pos(), "Barrier"); err != nil {
			return err
		}
		return c.inSerial("a barrier section", func() error {
			return c.stmts(t.Section, s)
		})
	case *CriticalStmt:
		return c.inSerial("a Critical body", func() error {
			return c.stmts(t.Body, s)
		})
	case *PcaseStmt:
		if err := c.collective(t.Pos(), "Pcase"); err != nil {
			return err
		}
		for _, b := range t.Blocks {
			if b.Cond != nil {
				ct, err := c.exprType(b.Cond, s)
				if err != nil {
					return err
				}
				if ct != TLogical {
					return fmt.Errorf("line %d: Csect condition must be LOGICAL", b.Line)
				}
			}
			b := b
			if err := c.inSerial("a Pcase block", func() error {
				return c.stmts(b.Body, s)
			}); err != nil {
				return err
			}
		}
		return nil
	case *AskforStmt:
		if err := c.collective(t.Pos(), "Askfor"); err != nil {
			return err
		}
		if err := c.loopVar(t.Var, s, t.Pos(), true); err != nil {
			return err
		}
		st, err := c.exprType(t.Seed, s)
		if err != nil {
			return err
		}
		if st != TInt {
			return fmt.Errorf("line %d: Askfor seed must be INTEGER", t.Pos())
		}
		c.askfor++
		err = c.inSerial("an Askfor body", func() error {
			return c.stmts(t.Body, s)
		})
		c.askfor--
		return err
	case *ReduceStmt:
		// A reduction is collective: every process contributes and the
		// construct synchronizes the whole force, so inside a
		// single-stream context (an Askfor task body, a Pcase block, a
		// DOALL iteration, a barrier section, a Critical body — directly
		// or through a Call) it would suspend the one process that
		// reached it forever.
		if err := c.collective(t.Pos(), t.Op.String()); err != nil {
			return err
		}
		lt, err := c.refType(&t.Target, s)
		if err != nil {
			return err
		}
		et, err := c.exprType(t.Expr, s)
		if err != nil {
			return err
		}
		if t.Op.Logical() {
			if lt != TLogical || et != TLogical {
				return fmt.Errorf("line %d: %s combines LOGICAL values", t.Pos(), t.Op)
			}
			return nil
		}
		if lt == TLogical || et == TLogical {
			return fmt.Errorf("line %d: %s combines numeric values", t.Pos(), t.Op)
		}
		return assignable(lt, et, t.Pos())
	case *PutStmt:
		if c.askfor == 0 {
			return fmt.Errorf("line %d: Put outside an Askfor body", t.Pos())
		}
		et, err := c.exprType(t.Expr, s)
		if err != nil {
			return err
		}
		if et != TInt {
			return fmt.Errorf("line %d: Put task must be INTEGER", t.Pos())
		}
		return nil
	case *ProduceStmt:
		d, err := c.asyncVar(t.Var, t.Sub, s, t.Pos())
		if err != nil {
			return err
		}
		et, err := c.exprType(t.Expr, s)
		if err != nil {
			return err
		}
		return assignable(d.Type, et, t.Pos())
	case *ConsumeStmt:
		return c.asyncTransfer(t.Var, t.Sub, &t.Target, s, t.Pos())
	case *CopyStmt:
		return c.asyncTransfer(t.Var, t.Sub, &t.Target, s, t.Pos())
	case *VoidStmt:
		_, err := c.asyncVar(t.Var, t.Sub, s, t.Pos())
		return err
	case *PrintStmt:
		for _, item := range t.Items {
			if _, ok := item.(*StrLit); ok {
				continue
			}
			if _, err := c.exprType(item, s); err != nil {
				return err
			}
		}
		return nil
	case *CallStmt:
		sub := c.prog.Sub(t.Name)
		if sub == nil {
			return fmt.Errorf("line %d: call of undefined subroutine %s", t.Pos(), t.Name)
		}
		if len(t.Args) != len(sub.Params) {
			return fmt.Errorf("line %d: %s takes %d arguments, got %d",
				t.Pos(), sub.Name, len(sub.Params), len(t.Args))
		}
		subScope, err := c.buildSubScope(sub)
		if err != nil {
			return err
		}
		for i := range t.Args {
			argDecl, ok := s.Lookup(t.Args[i].Name)
			if !ok {
				return fmt.Errorf("line %d: undeclared argument %s", t.Pos(), t.Args[i].Name)
			}
			if argDecl.Class == shm.Async {
				return fmt.Errorf("line %d: async variable %s cannot be a subroutine argument", t.Pos(), t.Args[i].Name)
			}
			paramDecl, _ := subScope.Lookup(sub.Params[i])
			// Whole-array argument: dims must match; element or
			// scalar argument: param must be scalar.
			argDims := len(argDecl.Dims)
			if len(t.Args[i].Subs) > 0 {
				if _, err := c.refType(&t.Args[i], s); err != nil {
					return err
				}
				argDims = 0
			}
			if argDims != len(paramDecl.Dims) {
				return fmt.Errorf("line %d: argument %d of %s: array shape mismatch",
					t.Pos(), i+1, sub.Name)
			}
			if argDecl.Type != paramDecl.Type {
				return fmt.Errorf("line %d: argument %d of %s: type %s does not match parameter %s",
					t.Pos(), i+1, sub.Name, argDecl.Type, paramDecl.Type)
			}
		}
		// A call inside a single-stream context must not smuggle in a
		// collective construct: re-check the callee's body under the
		// current context.  A sub proven collective-free is memoized
		// (the property depends only on the sub, not the context), so
		// call chains re-check each sub once, not exponentially; inCalls
		// guards against call cycles within one traversal.
		if len(c.serial) > 0 && !c.serialOK[sub.Name] && !c.inCalls[sub.Name] {
			if c.inCalls == nil {
				c.inCalls = map[string]bool{}
			}
			c.inCalls[sub.Name] = true
			err := c.stmts(sub.Body, subScope)
			delete(c.inCalls, sub.Name)
			if err != nil {
				return fmt.Errorf("line %d: in call of %s: %w", t.Pos(), sub.Name, err)
			}
			if c.serialOK == nil {
				c.serialOK = map[string]bool{}
			}
			c.serialOK[sub.Name] = true
		}
		return nil
	default:
		return fmt.Errorf("line %d: unhandled statement %T", st.Pos(), st)
	}
}

func (c *checker) loopVar(name string, s *Scope, line int, mustPrivate bool) error {
	d, ok := s.Lookup(name)
	if !ok {
		return fmt.Errorf("line %d: undeclared loop variable %s", line, name)
	}
	if d.Type != TInt || len(d.Dims) != 0 {
		return fmt.Errorf("line %d: loop variable %s must be a scalar INTEGER", line, name)
	}
	if mustPrivate && d.Class != shm.Private {
		return fmt.Errorf("line %d: DOALL index %s must be Private (each process holds its own copy)", line, name)
	}
	return nil
}

func (c *checker) loopBounds(from, to, step Expr, s *Scope, line int) error {
	for _, e := range []Expr{from, to, step} {
		if e == nil {
			continue
		}
		t, err := c.exprType(e, s)
		if err != nil {
			return err
		}
		if t != TInt {
			return fmt.Errorf("line %d: loop bounds must be INTEGER", line)
		}
	}
	return nil
}

// asyncVar resolves an async variable use, checking its subscript against
// the declaration shape: arrays require exactly one integer subscript,
// scalars none.
func (c *checker) asyncVar(name string, sub Expr, s *Scope, line int) (Decl, error) {
	d, ok := s.Lookup(name)
	if !ok {
		return Decl{}, fmt.Errorf("line %d: undeclared async variable %s", line, name)
	}
	if d.Class != shm.Async {
		return Decl{}, fmt.Errorf("line %d: %s is not an Async variable", line, name)
	}
	switch {
	case len(d.Dims) == 1 && sub == nil:
		return Decl{}, fmt.Errorf("line %d: async array %s used without a subscript", line, name)
	case len(d.Dims) == 0 && sub != nil:
		return Decl{}, fmt.Errorf("line %d: async scalar %s used with a subscript", line, name)
	case sub != nil:
		st, err := c.exprType(sub, s)
		if err != nil {
			return Decl{}, err
		}
		if st != TInt {
			return Decl{}, fmt.Errorf("line %d: subscript of %s must be INTEGER", line, name)
		}
	}
	return d, nil
}

func (c *checker) asyncTransfer(name string, sub Expr, target *Ref, s *Scope, line int) error {
	d, err := c.asyncVar(name, sub, s, line)
	if err != nil {
		return err
	}
	tt, err := c.refType(target, s)
	if err != nil {
		return err
	}
	return assignable(tt, d.Type, line)
}

// refType resolves a variable or array-element reference.  Async variables
// may not be referenced directly.
func (c *checker) refType(r *Ref, s *Scope) (Type, error) {
	d, ok := s.Lookup(r.Name)
	if !ok {
		return 0, fmt.Errorf("line %d: undeclared variable %s", r.Pos(), r.Name)
	}
	if d.Class == shm.Async {
		return 0, fmt.Errorf("line %d: async variable %s may only be used with Produce/Consume/Copy/Void", r.Pos(), r.Name)
	}
	if len(r.Subs) != len(d.Dims) {
		if len(r.Subs) == 0 {
			return 0, fmt.Errorf("line %d: array %s used without subscripts", r.Pos(), r.Name)
		}
		return 0, fmt.Errorf("line %d: %s has %d dimension(s), subscripted with %d",
			r.Pos(), r.Name, len(d.Dims), len(r.Subs))
	}
	for _, sub := range r.Subs {
		st, err := c.exprType(sub, s)
		if err != nil {
			return 0, err
		}
		if st != TInt {
			return 0, fmt.Errorf("line %d: subscript of %s must be INTEGER", r.Pos(), r.Name)
		}
	}
	return d.Type, nil
}

// exprType infers an expression's type.
func (c *checker) exprType(e Expr, s *Scope) (Type, error) {
	switch t := e.(type) {
	case *IntLit:
		return TInt, nil
	case *RealLit:
		return TReal, nil
	case *BoolLit:
		return TLogical, nil
	case *StrLit:
		return 0, fmt.Errorf("line %d: string literal only allowed in Print", t.Pos())
	case *Ref:
		return c.refType(t, s)
	case *Un:
		xt, err := c.exprType(t.X, s)
		if err != nil {
			return 0, err
		}
		if t.Neg {
			if xt == TLogical {
				return 0, fmt.Errorf("line %d: cannot negate a LOGICAL", t.Pos())
			}
			return xt, nil
		}
		if xt != TLogical {
			return 0, fmt.Errorf("line %d: .NOT. requires a LOGICAL", t.Pos())
		}
		return TLogical, nil
	case *Bin:
		lt, err := c.exprType(t.L, s)
		if err != nil {
			return 0, err
		}
		rt, err := c.exprType(t.R, s)
		if err != nil {
			return 0, err
		}
		switch t.Op {
		case OpAdd, OpSub, OpMul, OpDiv:
			if lt == TLogical || rt == TLogical {
				return 0, fmt.Errorf("line %d: arithmetic on LOGICAL", t.Pos())
			}
			if lt == TReal || rt == TReal {
				return TReal, nil
			}
			return TInt, nil
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			if (lt == TLogical) != (rt == TLogical) {
				return 0, fmt.Errorf("line %d: comparison mixes LOGICAL and numeric", t.Pos())
			}
			if lt == TLogical && t.Op != OpEq && t.Op != OpNe {
				return 0, fmt.Errorf("line %d: LOGICALs only compare with .EQ./.NE.", t.Pos())
			}
			return TLogical, nil
		case OpAnd, OpOr:
			if lt != TLogical || rt != TLogical {
				return 0, fmt.Errorf("line %d: %s requires LOGICAL operands", t.Pos(), t.Op)
			}
			return TLogical, nil
		default:
			return 0, fmt.Errorf("line %d: unhandled operator %s", t.Pos(), t.Op)
		}
	case *Intrinsic:
		return c.intrinsicType(t, s)
	default:
		return 0, fmt.Errorf("unhandled expression %T", e)
	}
}

func (c *checker) intrinsicType(t *Intrinsic, s *Scope) (Type, error) {
	argTypes := make([]Type, len(t.Args))
	for i, a := range t.Args {
		at, err := c.exprType(a, s)
		if err != nil {
			return 0, err
		}
		if at == TLogical {
			return 0, fmt.Errorf("line %d: %s does not accept LOGICAL arguments", t.Pos(), t.Name)
		}
		argTypes[i] = at
	}
	wantArgs := map[string]int{"ABS": 1, "SQRT": 1, "INT": 1, "REAL": 1, "NINT": 1, "MOD": 2}
	if want, ok := wantArgs[t.Name]; ok && len(t.Args) != want {
		return 0, fmt.Errorf("line %d: %s takes %d argument(s), got %d", t.Pos(), t.Name, want, len(t.Args))
	}
	if (t.Name == "MIN" || t.Name == "MAX") && len(t.Args) < 2 {
		return 0, fmt.Errorf("line %d: %s takes at least 2 arguments", t.Pos(), t.Name)
	}
	switch t.Name {
	case "SQRT", "REAL":
		return TReal, nil
	case "INT", "NINT":
		return TInt, nil
	case "MOD":
		if argTypes[0] == TReal || argTypes[1] == TReal {
			return TReal, nil
		}
		return TInt, nil
	case "ABS":
		return argTypes[0], nil
	case "MIN", "MAX":
		for _, at := range argTypes {
			if at == TReal {
				return TReal, nil
			}
		}
		return TInt, nil
	default:
		return 0, fmt.Errorf("line %d: unknown intrinsic %s", t.Pos(), t.Name)
	}
}

// assignable checks numeric coercion rules: int and real interconvert,
// logical only assigns to logical.
func assignable(dst, src Type, line int) error {
	if (dst == TLogical) != (src == TLogical) {
		return fmt.Errorf("line %d: cannot assign %s to %s", line, src, dst)
	}
	return nil
}
