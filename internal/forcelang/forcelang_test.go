package forcelang

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/shm"
)

// sample is a program exercising every statement form.
const sample = `
C A sample Force program
Force DEMO of NP ident ME
Shared Real A(8,8), S
Shared Integer N
Private Integer I, J
Private Real T
Async Real V
End Declarations
      N = 8
      Barrier
      S = 0.0
      End Barrier
      Presched DO I = 1, N
        A(I, 1) = REAL(I)
      End Presched DO
      Selfsched DO J = 1, N, 1
        A(1, J) = 2.0 * REAL(J)
      End Selfsched DO
      Presched DO I = 1, N also J = 1, N
        A(I, J) = A(I, J) + 1.0   ! touch every pair
      End Presched DO
      DO I = 1, 3
        T = T + A(I, I)
      End DO
      IF (ME .EQ. 0) THEN
        Produce V = T
      ELSE
        Print 'waiting', ME
      End IF
      IF (ME .EQ. 1 .OR. NP .EQ. 1) THEN
        Consume V into T
      End IF
      Critical SUMLOCK
        S = S + T
      End Critical
      Pcase
      Usect
        S = S + 1.0
      Csect (N .GT. 4)
        S = S + 2.0
      End Pcase
      Void V
      Call SCALE(A, S)
Join
Forcesub SCALE(X, F)
Shared Real X(8,8)
Shared Real F
Private Integer K
End Declarations
      Presched DO K = 1, 8
        X(K, K) = X(K, K) * F
      End Presched DO
Endsub
`

func TestParseSample(t *testing.T) {
	prog, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "DEMO" || prog.NPVar != "NP" || prog.MeVar != "ME" {
		t.Errorf("header: %q of %q ident %q", prog.Name, prog.NPVar, prog.MeVar)
	}
	if len(prog.Decls) != 7 {
		t.Errorf("got %d declarations, want 7", len(prog.Decls))
	}
	if len(prog.Subs) != 1 || prog.Subs[0].Name != "SCALE" {
		t.Fatalf("subs: %+v", prog.Subs)
	}
	if got := len(prog.Subs[0].Params); got != 2 {
		t.Errorf("SCALE has %d params, want 2", got)
	}
	if prog.Sub("SCALE") == nil || prog.Sub("NOPE") != nil {
		t.Error("Sub lookup broken")
	}
	// Spot-check statement kinds in order.
	kinds := []string{}
	for _, s := range prog.Body {
		kinds = append(kinds, strings.TrimPrefix(fmt.Sprintf("%T", s), "*forcelang."))
	}
	want := []string{"Assign", "BarrierStmt", "ParDo", "ParDo", "ParDo", "SeqDo",
		"If", "If", "CriticalStmt", "PcaseStmt", "VoidStmt", "CallStmt"}
	if len(kinds) != len(want) {
		t.Fatalf("body kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("stmt %d is %s, want %s", i, kinds[i], want[i])
		}
	}
	// The third ParDo is doubly nested.
	pd := prog.Body[4].(*ParDo)
	if pd.Inner == nil || pd.Inner.Var != "J" {
		t.Error("doubly nested DOALL not parsed")
	}
	// Pcase block structure.
	pc := prog.Body[9].(*PcaseStmt)
	if len(pc.Blocks) != 2 || pc.Blocks[0].Cond != nil || pc.Blocks[1].Cond == nil {
		t.Errorf("pcase blocks: %+v", pc.Blocks)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	prog, err := Parse("force f OF np IDENT me\nshared integer n\nEND DECLARATIONS\nn = 1\njoin\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "F" || prog.NPVar != "NP" {
		t.Errorf("%+v", prog)
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	src := "C full line comment\n* another\n! bang comment\n\nForce P of NP ident ME\nEnd Declarations\nPrint 'x' ! trailing comment\nJoin\n"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		"Force P of NP ident ME\nEnd Declarations\nPrint 'unterminated\nJoin\n",
		"Force P of NP ident ME\nEnd Declarations\nX = 1 .XX. 2\nJoin\n",
		"Force P of NP ident ME\nEnd Declarations\nX = #\nJoin\n",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing header":   "Shared Integer N\nEnd Declarations\nJoin\n",
		"missing end decl": "Force P of NP ident ME\nShared Integer N\nJoin\n",
		"missing join":     "Force P of NP ident ME\nEnd Declarations\nN = 1\n",
		"bad decl class":   "Force P of NP ident ME\nGlobal Integer N\nEnd Declarations\nJoin\n",
		"bad type":         "Force P of NP ident ME\nShared COMPLEX N\nEnd Declarations\nJoin\n",
		"neg dim":          "Force P of NP ident ME\nShared Real A(0)\nEnd Declarations\nJoin\n",
		"3 dims":           "Force P of NP ident ME\nShared Real A(2,2,2)\nEnd Declarations\nJoin\n",
		"empty pcase":      "Force P of NP ident ME\nEnd Declarations\nPcase\nEnd Pcase\nJoin\n",
		"stray else":       "Force P of NP ident ME\nEnd Declarations\nElse\nJoin\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	header := "Force P of NP ident ME\n"
	cases := map[string]string{
		"dup decl":        header + "Shared Integer N\nShared Real N\nEnd Declarations\nJoin\n",
		"np=me":           "Force P of X ident X\nEnd Declarations\nJoin\n",
		"undeclared":      header + "End Declarations\nX = 1\nJoin\n",
		"async 2d array":  header + "Async Real V(4,4)\nEnd Declarations\nJoin\n",
		"async arr bare":  header + "Async Real V(4)\nEnd Declarations\nProduce V = 1.0\nJoin\n",
		"async scal sub":  header + "Async Real V\nEnd Declarations\nProduce V(1) = 1.0\nJoin\n",
		"async real sub":  header + "Async Real V(4)\nEnd Declarations\nProduce V(1.5) = 1.0\nJoin\n",
		"async logical":   header + "Async Logical V\nEnd Declarations\nJoin\n",
		"async in expr":   header + "Async Real V\nShared Real X\nEnd Declarations\nX = V + 1.0\nJoin\n",
		"produce non-asy": header + "Shared Real X\nEnd Declarations\nProduce X = 1.0\nJoin\n",
		"logical arith":   header + "Shared Logical L\nEnd Declarations\nL = L + 1\nJoin\n",
		"if not logical":  header + "End Declarations\nIF (ME) THEN\nEnd IF\nJoin\n",
		"shared index":    header + "Shared Integer I\nEnd Declarations\nPresched DO I = 1, 4\nEnd Presched DO\nJoin\n",
		"real loop var":   header + "Private Real R\nEnd Declarations\nDO R = 1, 4\nEnd DO\nJoin\n",
		"real bounds":     header + "Private Integer I\nShared Real X\nEnd Declarations\nDO I = 1, X\nEnd DO\nJoin\n",
		"arity":           header + "Shared Real A(4,4)\nShared Real X\nEnd Declarations\nX = A(1)\nJoin\n",
		"scalar subs":     header + "Shared Real X, Y\nEnd Declarations\nX = Y(1)\nJoin\n",
		"real subscript":  header + "Shared Real A(4), X\nEnd Declarations\nX = A(1.5)\nJoin\n",
		"undef sub":       header + "End Declarations\nCall NOPE(ME)\nJoin\n",
		"assign logical":  header + "Shared Logical L\nShared Real X\nEnd Declarations\nX = L\nJoin\n",
		"mod args":        header + "Shared Real X\nEnd Declarations\nX = MOD(1)\nJoin\n",
		"min one arg":     header + "Shared Real X\nEnd Declarations\nX = MIN(1)\nJoin\n",
		"sqrt logical":    header + "Shared Logical L\nShared Real X\nEnd Declarations\nX = SQRT(L)\nJoin\n",
		"same 2d index":   header + "Private Integer I\nEnd Declarations\nPresched DO I = 1, 2 also I = 1, 2\nEnd Presched DO\nJoin\n",
		"csect numeric":   header + "End Declarations\nPcase\nCsect (ME)\nEnd Pcase\nJoin\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: check passed, want error", name)
		}
	}
}

func TestCallArgumentChecking(t *testing.T) {
	base := `Force P of NP ident ME
Shared Real A(4)
Shared Integer N
End Declarations
%s
Join
Forcesub S(X, K)
Shared Real X(4)
Shared Integer K
End Declarations
K = 1
Endsub
`
	good := strings.Replace(base, "%s", "Call S(A, N)", 1)
	if _, err := Parse(good); err != nil {
		t.Errorf("valid call rejected: %v", err)
	}
	for name, call := range map[string]string{
		"too few":     "Call S(A)",
		"shape":       "Call S(N, N)",
		"type":        "Call S(A, A)",
		"element arg": "Call S(A(1), N)",
	} {
		src := strings.Replace(base, "%s", call, 1)
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSubroutineSeesSharedNotPrivate(t *testing.T) {
	src := `Force P of NP ident ME
Shared Real G
Private Real PLOCAL
End Declarations
Join
Forcesub S()
End Declarations
G = 1.0
Endsub
`
	if _, err := Parse(src); err != nil {
		t.Errorf("shared global not visible in sub: %v", err)
	}
	bad := strings.Replace(src, "G = 1.0", "PLOCAL = 1.0", 1)
	if _, err := Parse(bad); err == nil {
		t.Error("private main variable visible in sub")
	}
}

func TestGlobalScope(t *testing.T) {
	prog := MustParse(sample)
	scope, err := GlobalScope(prog)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := scope.Lookup("A"); !ok || len(d.Dims) != 2 || d.Class != shm.Shared {
		t.Errorf("A: %+v ok=%v", d, ok)
	}
	if d, ok := scope.Lookup("ME"); !ok || d.Class != shm.Private || d.Type != TInt {
		t.Errorf("ME: %+v ok=%v", d, ok)
	}
	if d, ok := scope.Lookup("NP"); !ok || d.Class != shm.Shared {
		t.Errorf("NP: %+v ok=%v", d, ok)
	}
	if d, ok := scope.Lookup("v"); !ok || d.Class != shm.Async {
		t.Errorf("case-insensitive lookup of V: %+v ok=%v", d, ok)
	}
	if len(scope.Names()) != 9 { // 7 decls + NP + ME
		t.Errorf("Names() = %v", scope.Names())
	}
}

func TestSubScope(t *testing.T) {
	prog := MustParse(sample)
	scope, err := SubScope(prog, prog.Subs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := scope.Lookup("K"); !ok {
		t.Error("sub local K missing")
	}
	if _, ok := scope.Lookup("S"); !ok {
		t.Error("global shared S not inherited")
	}
	if _, ok := scope.Lookup("I"); ok {
		t.Error("main private I leaked into sub scope")
	}
}

func TestDeclSize(t *testing.T) {
	if (Decl{}).Size() != 1 {
		t.Error("scalar size != 1")
	}
	if (Decl{Dims: []int{4, 8}}).Size() != 32 {
		t.Error("2D size wrong")
	}
}

func TestTypeAndOpStrings(t *testing.T) {
	if TInt.String() != "INTEGER" || TReal.String() != "REAL" || TLogical.String() != "LOGICAL" {
		t.Error("type strings")
	}
	if Type(9).String() != "forcelang.Type(9)" {
		t.Error("unknown type string")
	}
	if OpLe.String() != ".LE." || OpMul.String() != "*" {
		t.Error("op strings")
	}
	if BinOp(99).String() != "BinOp(99)" {
		t.Error("unknown op string")
	}
	if Presched.String() != "Presched" || Selfsched.String() != "Selfsched" {
		t.Error("sched strings")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("not a program")
}

func TestNumericLiterals(t *testing.T) {
	src := `Force P of NP ident ME
Shared Real X
End Declarations
X = 1.5 + 2. + .25 + 1E2 + 1.5E-1 + 3e+2
Join
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestStringEscapes(t *testing.T) {
	prog := MustParse("Force P of NP ident ME\nEnd Declarations\nPrint 'it''s fine'\nJoin\n")
	ps := prog.Body[0].(*PrintStmt)
	if got := ps.Items[0].(*StrLit).Value; got != "it's fine" {
		t.Errorf("string = %q", got)
	}
}

// TestCheckerRecordsSlots verifies the slot information the checker
// attaches to declarations: per-unit, per-class sequences in declaration
// order, NP at shared-scalar slot 0 of the main unit, ME at private-scalar
// slot 0 of every unit, and inherited (COMMON-like) declarations keeping
// their main-unit identity inside subroutine scopes.
func TestCheckerRecordsSlots(t *testing.T) {
	prog := MustParse(`Force SL of NP ident ME
Shared Integer A, B
Shared Real M(4, 4)
Async Real Q(8)
Private Integer I
Private Real W(3)
End Declarations
Join
Forcesub S(P)
Shared Real P
Shared Integer LOCALSH
Private Integer K
End Declarations
K = 0
Endsub
`)
	g, err := GlobalScope(prog)
	if err != nil {
		t.Fatal(err)
	}
	wantMain := map[string]struct {
		unit string
		slot int
	}{
		"NP": {"", 0}, "A": {"", 1}, "B": {"", 2}, // shared scalars
		"M":  {"", 0},               // shared arrays
		"Q":  {"", 0},               // async
		"ME": {"", 0}, "I": {"", 1}, // private scalars
		"W": {"", 0}, // private arrays
	}
	for name, want := range wantMain {
		d, ok := g.Lookup(name)
		if !ok {
			t.Fatalf("main: %s not in scope", name)
		}
		if d.Unit != want.unit || d.Slot != want.slot {
			t.Errorf("main %s: unit %q slot %d, want unit %q slot %d", name, d.Unit, d.Slot, want.unit, want.slot)
		}
	}
	sc, err := SubScope(prog, prog.Subs[0])
	if err != nil {
		t.Fatal(err)
	}
	wantSub := map[string]struct {
		unit string
		slot int
	}{
		"NP": {"", 0}, "A": {"", 1}, "B": {"", 2}, // inherited shared keeps main slots
		"P":       {"S", 0},              // unit-local shared numbers from 0 (param: aliased at call time)
		"LOCALSH": {"S", 1},              // ...continuing in declaration order
		"ME":      {"S", 0},              // ident is private slot 0 in every unit
		"K":       {"S", 1},              // private scalars number after ME
		"M":       {"", 0}, "Q": {"", 0}, // inherited array/async keep main slots
	}
	for name, want := range wantSub {
		d, ok := sc.Lookup(name)
		if !ok {
			t.Fatalf("sub: %s not in scope", name)
		}
		if d.Unit != want.unit || d.Slot != want.slot {
			t.Errorf("sub %s: unit %q slot %d, want unit %q slot %d", name, d.Unit, d.Slot, want.unit, want.slot)
		}
	}
	// Decls() enumerates stably: every visible decl exactly once.
	all := sc.Decls()
	seen := map[string]bool{}
	for _, d := range all {
		if seen[d.Name] {
			t.Errorf("Decls(): %s listed twice", d.Name)
		}
		seen[d.Name] = true
	}
	if len(all) != len(sc.Names()) {
		t.Errorf("Decls() returned %d entries, scope has %d names", len(all), len(sc.Names()))
	}
}
