package forcelang

import (
	"strings"
	"testing"
)

// wrap builds a minimal program around body statements.
func wrapReduce(decls, body string) string {
	return "Force P of NP ident ME\n" + decls + "End Declarations\n" + body + "Join\n"
}

func TestParseReduceStatements(t *testing.T) {
	src := wrapReduce(
		"Shared Real TOTAL\nShared Integer COUNT\nShared Logical OK\nPrivate Real X\nPrivate Integer I\nPrivate Logical B\n",
		"GSUM TOTAL = X * 2.0\n"+
			"GPROD COUNT = I + 1\n"+
			"GMAX TOTAL = X\n"+
			"GMIN X = TOTAL\n"+
			"GAND OK = B\n"+
			"GOR B = OK\n")
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []GOp{GSum, GProd, GMax, GMin, GAnd, GOr}
	if len(prog.Body) != len(wantOps) {
		t.Fatalf("parsed %d statements, want %d", len(prog.Body), len(wantOps))
	}
	for i, st := range prog.Body {
		rs, ok := st.(*ReduceStmt)
		if !ok {
			t.Fatalf("statement %d is %T, want *ReduceStmt", i, st)
		}
		if rs.Op != wantOps[i] {
			t.Errorf("statement %d op = %s, want %s", i, rs.Op, wantOps[i])
		}
	}
}

func TestReduceIntoArrayElement(t *testing.T) {
	src := wrapReduce(
		"Shared Real A(10)\nPrivate Real X\n",
		"GSUM A(3) = X\n")
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestReduceTypeRules(t *testing.T) {
	cases := []struct {
		name, decls, body, wantErr string
	}{
		{"logical into numeric", "Shared Real T\nPrivate Logical B\n", "GSUM T = B\n", "numeric"},
		{"numeric into logical target", "Shared Logical OK\nPrivate Real X\n", "GMAX OK = X\n", "numeric"},
		{"gand numeric operand", "Shared Logical OK\nPrivate Real X\n", "GAND OK = X\n", "LOGICAL"},
		{"gor numeric target", "Shared Real T\nPrivate Logical B\n", "GOR T = B\n", "LOGICAL"},
		{"undeclared target", "Private Real X\n", "GSUM NOWHERE = X\n", "undeclared"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(wrapReduce(tc.decls, tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestReduceIsCollective(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"askfor body", "Askfor I = 1\n  GSUM T = X\nEnd Askfor\n"},
		{"pcase block", "Pcase\nUsect\n  GSUM T = X\nEnd Pcase\n"},
		{"doall body", "Selfsched DO I = 1, 10\n  GSUM T = X\nEnd Selfsched DO\n"},
		{"critical body", "Critical C\n  GSUM T = X\nEnd Critical\n"},
		{"barrier section", "Barrier\n  GSUM T = X\nEnd Barrier\n"},
	}
	decls := "Shared Real T\nPrivate Real X\nPrivate Integer I\n"
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(wrapReduce(decls, tc.body))
			if err == nil || !strings.Contains(err.Error(), "single-stream context") {
				t.Errorf("error = %v, want single-stream rejection", err)
			}
		})
	}
}

func TestReduceIsCollectiveThroughCall(t *testing.T) {
	// The PR-1 collective-in-task machinery re-checks callees: a task
	// body smuggling a reduction in through a Call is rejected too.
	src := "Force P of NP ident ME\n" +
		"Shared Real T\n" +
		"Private Integer I\n" +
		"End Declarations\n" +
		"Askfor I = 1\n" +
		"  Call HELPER\n" +
		"End Askfor\n" +
		"Join\n" +
		"Forcesub HELPER\n" +
		"Private Real X\n" +
		"End Declarations\n" +
		"GSUM T = X\n" +
		"Endsub\n"
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "single-stream context") {
		t.Errorf("error = %v, want single-stream rejection through Call", err)
	}
}

func TestReduceLegalAtTopLevelOfSub(t *testing.T) {
	// A reduction inside a subroutine called from SPMD top level is
	// legal: the whole force reaches it together.
	src := "Force P of NP ident ME\n" +
		"Shared Real T\n" +
		"End Declarations\n" +
		"Call HELPER\n" +
		"Join\n" +
		"Forcesub HELPER\n" +
		"Private Real X\n" +
		"End Declarations\n" +
		"X = 1.5\n" +
		"GSUM T = X\n" +
		"Endsub\n"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}
