package reduce

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/poison"
)

// Numeric partial-combine episodes for the fused construct pipeline.
//
// A fused DOALL+reduction retires the construct's exit barrier and its
// one-shot reduce Episode and replaces both with a single NumEpisode
// join: every process contributes its partial once, the last arrival
// folds the per-process slots in pid order (exactly the PrivateSlots
// combination order, so floating-point results stay bit-identical to
// the unfused slots strategy for a fixed np), and the episode resets
// itself for reuse once every process has departed.  Reuse is what the
// ordinary Episode machinery cannot offer — it materializes a fresh
// episode per construct instance through the construct-entry table —
// and is the reason the fused hot path allocates nothing per Run.
//
// Values travel as uint64 bit patterns so one episode type serves both
// element types without boxing: NumInt carries an int64 via plain
// conversion, NumReal carries a float64 via math.Float64bits.

// NumKind says how a NumEpisode's uint64 bit patterns are interpreted.
type NumKind int

const (
	// NumInt: bits are int64 (two's complement conversion).
	NumInt NumKind = iota
	// NumReal: bits are float64 (math.Float64bits).
	NumReal
)

// String returns the kind's short name.
func (k NumKind) String() string {
	switch k {
	case NumInt:
		return "int"
	case NumReal:
		return "real"
	}
	return fmt.Sprintf("reduce.NumKind(%d)", int(k))
}

// CombineNum folds two bit-encoded contributions under op.  The
// comparison forms match the generic maxOf/minOf combiners exactly
// (keep the second operand only when strictly greater/less), so a
// NumEpisode fold is indistinguishable from a slotsEpisode fold over
// the same contributions in the same order.
func CombineNum(op Op, k NumKind, a, b uint64) uint64 {
	if k == NumInt {
		x, y := int64(a), int64(b)
		switch op {
		case Sum:
			x += y
		case Prod:
			x *= y
		case Max:
			if y > x {
				x = y
			}
		case Min:
			if y < x {
				x = y
			}
		default:
			panic(fmt.Sprintf("reduce: CombineNum does not serve op %v", op))
		}
		return uint64(x)
	}
	x, y := math.Float64frombits(a), math.Float64frombits(b)
	switch op {
	case Sum:
		x += y
	case Prod:
		x *= y
	case Max:
		if y > x {
			x = y
		}
	case Min:
		if y < x {
			x = y
		}
	default:
		panic(fmt.Sprintf("reduce: CombineNum does not serve op %v", op))
	}
	return math.Float64bits(x)
}

// paddedNumSlot keeps one process's contribution on its own cache line.
type paddedNumSlot struct {
	v uint64
	_ [56]byte
}

// NumEpisode is a reusable numeric reduction join for a fixed np.  One
// use looks like Episode.Do: every process calls Do exactly once, all
// receive the pid-order fold of the contributions, and none returns
// before the fold is complete.  Unlike an Episode it then resets
// itself — the last process to leave Do rearms the counters — so a
// pair of NumEpisodes alternated per construct instance serves any
// number of fused joins with zero steady-state allocation, on the same
// invariant sense-reversing barriers rely on: a process can only reach
// its (k+2)-th join after every process has left its k-th.
//
// The park channel is created lazily, only when a waiter outlives the
// spin window; at np=1, or when the fold wins the race, a use touches
// no channel at all.
type NumEpisode struct {
	np       int
	slots    []paddedNumSlot // padded storage (nil when compact)
	compact  []uint64        // unpadded storage (GOMAXPROCS == 1)
	arrived  atomic.Int64
	departed atomic.Int64
	done     atomic.Uint32
	ch       atomic.Pointer[chan struct{}]
	pc       *poison.Cell
	result   uint64
}

// NewNumEpisode builds a reusable join for np processes.  pc, when
// non-nil, is the force's poison cell: parked waiters unwind with
// poison.Abort when the force dies.
func NewNumEpisode(np int, pc *poison.Cell) *NumEpisode {
	if np <= 0 {
		panic(fmt.Sprintf("reduce: np = %d, need np >= 1", np))
	}
	e := &NumEpisode{np: np, pc: pc}
	if runtime.GOMAXPROCS(0) > 1 {
		e.slots = make([]paddedNumSlot, np)
	} else {
		e.compact = make([]uint64, np)
	}
	return e
}

func (e *NumEpisode) put(pid int, x uint64) {
	if e.slots != nil {
		e.slots[pid].v = x
	} else {
		e.compact[pid] = x
	}
}

func (e *NumEpisode) at(pid int) uint64 {
	if e.slots != nil {
		return e.slots[pid].v
	}
	return e.compact[pid]
}

// Do contributes x and returns the pid-order fold of all np
// contributions under op.  onComplete, when non-nil, runs exactly once
// per use, in the folding process, after the result is final and
// before any waiter is released — the construct-entry retirement
// position.  Every caller of one use must pass the same op and kind.
func (e *NumEpisode) Do(pid int, op Op, k NumKind, x uint64, onComplete func()) uint64 {
	e.put(pid, x)
	var out uint64
	if e.arrived.Add(1) == int64(e.np) {
		acc := e.at(0)
		for i := 1; i < e.np; i++ {
			acc = CombineNum(op, k, acc, e.at(i))
		}
		e.result = acc
		if onComplete != nil {
			onComplete()
		}
		e.done.Store(1)
		if chp := e.ch.Load(); chp != nil {
			close(*chp)
		}
		out = acc
	} else {
		out = e.await()
	}
	if e.departed.Add(1) == int64(e.np) {
		e.reset()
	}
	return out
}

// await spins briefly for the fold, then parks on a lazily-installed
// release channel with the poison cell's wake channel as the unwind
// path — the same spin-then-park discipline as release.await.
func (e *NumEpisode) await() uint64 {
	faultinject.Fire(faultinject.ReduceRelease, -1, e.pc)
	for i := 0; i < 64; i++ {
		if e.done.Load() == 1 {
			return e.result
		}
		e.pc.Check()
		if i%16 == 15 {
			runtime.Gosched()
		}
	}
	chp := e.ch.Load()
	if chp == nil {
		nc := make(chan struct{})
		if e.ch.CompareAndSwap(nil, &nc) {
			chp = &nc
		} else {
			chp = e.ch.Load()
		}
	}
	// Re-check after installing the channel: the folder loads the
	// channel pointer after storing done, so either it saw our install
	// (and will close it) or this load sees done == 1.
	if e.done.Load() == 1 {
		return e.result
	}
	select {
	case <-*chp:
	case <-e.pc.Done(): // nil channel (never ready) when no poison is wired
		if e.done.Load() != 1 {
			e.pc.Check()
		}
	}
	return e.result
}

// reset rearms the episode for its next use.  Only the last departer
// runs it, and the alternation invariant (no process re-enters before
// every process has left) orders it before any subsequent put.
func (e *NumEpisode) reset() {
	e.arrived.Store(0)
	e.done.Store(0)
	e.ch.Store(nil)
	e.departed.Store(0)
}
