package reduce

import (
	"math"
	"sync"
	"testing"

	"repro/internal/poison"
)

// Drive one NumEpisode use with np goroutines contributing vals.
func numJoinOnce(t *testing.T, e *NumEpisode, op Op, k NumKind, vals []uint64) []uint64 {
	t.Helper()
	out := make([]uint64, len(vals))
	var wg sync.WaitGroup
	for pid := range vals {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			out[pid] = e.Do(pid, op, k, vals[pid], nil)
		}(pid)
	}
	wg.Wait()
	return out
}

func TestNumEpisodeMatchesSlots(t *testing.T) {
	const np = 8
	cases := []struct {
		op   Op
		k    NumKind
		vals []float64
	}{
		{Sum, NumReal, []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}},
		{Prod, NumReal, []float64{1.1, 0.9, 2.5, 0.3, 1.7, 0.01, 40, 3}},
		{Max, NumReal, []float64{-1, 5, 3, 5, 2, -8, 4.5, 0}},
		{Min, NumReal, []float64{-1, 5, 3, 5, 2, -8, 4.5, 0}},
	}
	for _, tc := range cases {
		// Reference: the deterministic slots strategy, pid-order fold.
		slots := newSlots[float64](np, func(a, b float64) float64 {
			return math.Float64frombits(CombineNum(tc.op, NumReal, math.Float64bits(a), math.Float64bits(b)))
		}, nil, nil)
		want := make([]float64, np)
		var wg sync.WaitGroup
		for pid := 0; pid < np; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				want[pid] = slots.Do(pid, tc.vals[pid])
			}(pid)
		}
		wg.Wait()

		e := NewNumEpisode(np, nil)
		bits := make([]uint64, np)
		for i, v := range tc.vals {
			bits[i] = math.Float64bits(v)
		}
		got := numJoinOnce(t, e, tc.op, tc.k, bits)
		for pid := 0; pid < np; pid++ {
			if math.Float64bits(want[pid]) != got[pid] {
				t.Errorf("op %v pid %d: slots %x, fused %x", tc.op, pid, math.Float64bits(want[pid]), got[pid])
			}
		}
	}
}

func TestNumEpisodeIntOps(t *testing.T) {
	const np = 4
	ints := []int64{-3, 7, 2, -1}
	vals := make([]uint64, np)
	for i, v := range ints {
		vals[i] = uint64(v)
	}
	want := map[Op]int64{Sum: 5, Prod: 42, Max: 7, Min: -3}
	for op, w := range want {
		e := NewNumEpisode(np, nil)
		got := numJoinOnce(t, e, op, NumInt, vals)
		for pid, g := range got {
			if int64(g) != w {
				t.Errorf("op %v pid %d: got %d, want %d", op, pid, int64(g), w)
			}
		}
	}
}

// Reuse: the episode must rearm itself after every process departs, so
// one pair alternated serves an arbitrarily long run of joins.
func TestNumEpisodeReuseAlternating(t *testing.T) {
	const np = 4
	const rounds = 200
	eps := [2]*NumEpisode{NewNumEpisode(np, nil), NewNumEpisode(np, nil)}
	var wg sync.WaitGroup
	errs := make(chan string, np)
	for pid := 0; pid < np; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got := int64(eps[r&1].Do(pid, Sum, NumInt, uint64(int64(pid+r)), nil))
				want := int64(np*r + (np-1)*np/2)
				if got != want {
					errs <- "round mismatch"
					return
				}
			}
		}(pid)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

// onComplete must run exactly once per use, before any waiter returns.
func TestNumEpisodeOnCompleteOnce(t *testing.T) {
	const np = 3
	e := NewNumEpisode(np, nil)
	for round := 0; round < 5; round++ {
		var calls int // folder-only write, ordered before every return
		var wg sync.WaitGroup
		for pid := 0; pid < np; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				e.Do(pid, Max, NumInt, uint64(int64(pid)), func() { calls++ })
			}(pid)
		}
		wg.Wait()
		if calls != 1 {
			t.Fatalf("round %d: onComplete ran %d times, want 1", round, calls)
		}
	}
}

// A parked waiter must unwind with poison.Abort when the force dies
// instead of waiting for a contribution that will never come.
func TestNumEpisodePoisonWakes(t *testing.T) {
	pc := poison.NewCell()
	e := NewNumEpisode(2, pc)
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		e.Do(0, Sum, NumInt, 1, nil)
		done <- nil
	}()
	pc.Poison(&stubErr{})
	v := <-done
	if _, ok := v.(poison.Abort); !ok {
		t.Fatalf("waiter returned %v, want poison.Abort", v)
	}
}

type stubErr struct{}

func (*stubErr) Error() string { return "stub failure" }
