package reduce

import (
	"errors"
	"testing"
	"time"

	"repro/internal/poison"
)

// TestPoisonWakesIncompleteEpisode: for every strategy, contributors
// waiting on a combination that can never complete (one contribution
// missing) unwind with poison.Abort.
func TestPoisonWakesIncompleteEpisode(t *testing.T) {
	for _, k := range Kinds() {
		for _, np := range []int{2, 4, 7} {
			t.Run(k.String(), func(t *testing.T) {
				c := poison.NewCell()
				ep := New[int](k, np, Sum, func(a, b int) int { return a + b }, Config[int]{Poison: c})
				unwound := make(chan any, np)
				for pid := 0; pid < np-1; pid++ { // pid np-1 never contributes
					go func(pid int) {
						defer func() { unwound <- recover() }()
						ep.Do(pid, 1)
					}(pid)
				}
				time.Sleep(10 * time.Millisecond)
				c.Poison(errors.New("process died"))
				for i := 0; i < np-1; i++ {
					select {
					case r := <-unwound:
						if _, ok := r.(poison.Abort); !ok {
							t.Fatalf("np=%d: contributor unwound with %v (%T), want poison.Abort", np, r, r)
						}
					case <-time.After(30 * time.Second):
						t.Fatalf("np=%d: contributor still blocked after poison", np)
					}
				}
			})
		}
	}
}

// TestPoisonBoundCompleteEpisodeWorks: a bound but unpoisoned episode
// combines normally.
func TestPoisonBoundCompleteEpisodeWorks(t *testing.T) {
	for _, k := range Kinds() {
		c := poison.NewCell()
		const np = 5
		ep := New[int](k, np, Sum, func(a, b int) int { return a + b }, Config[int]{Poison: c})
		got := make(chan int, np)
		for pid := 0; pid < np; pid++ {
			go func(pid int) { got <- ep.Do(pid, pid) }(pid)
		}
		for i := 0; i < np; i++ {
			if v := <-got; v != 10 {
				t.Fatalf("%s: Do returned %d, want 10", k, v)
			}
		}
	}
}
