package reduce

import (
	"sync"
	"testing"

	"repro/internal/lock"
)

// runEpisode drives one episode with np goroutine processes and returns
// every process's result.
func runEpisode[T any](t *testing.T, e Episode[T], np int, contrib func(pid int) T) []T {
	t.Helper()
	out := make([]T, np)
	var wg sync.WaitGroup
	for p := 0; p < np; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			out[pid] = e.Do(pid, contrib(pid))
		}(p)
	}
	wg.Wait()
	return out
}

func TestSumAllKindsAllNP(t *testing.T) {
	for _, k := range Kinds() {
		for _, np := range []int{1, 2, 3, 4, 7, 8, 16} {
			e := New[int](k, np, Sum, func(a, b int) int { return a + b }, Config[int]{})
			got := runEpisode(t, e, np, func(pid int) int { return pid + 1 })
			want := np * (np + 1) / 2
			for pid, g := range got {
				if g != want {
					t.Errorf("%s np=%d pid=%d: sum = %d, want %d", k, np, pid, g, want)
				}
			}
		}
	}
}

func TestMaxMinProd(t *testing.T) {
	combineMax := func(a, b int) int {
		if b > a {
			return b
		}
		return a
	}
	combineMin := func(a, b int) int {
		if b < a {
			return b
		}
		return a
	}
	combineProd := func(a, b int) int { return a * b }
	const np = 6
	for _, k := range Kinds() {
		eMax := New[int](k, np, Max, combineMax, Config[int]{})
		for _, g := range runEpisode(t, eMax, np, func(pid int) int { return -10 + pid }) {
			if g != -5 {
				t.Errorf("%s: max = %d, want -5", k, g)
			}
		}
		eMin := New[int](k, np, Min, combineMin, Config[int]{})
		for _, g := range runEpisode(t, eMin, np, func(pid int) int { return 100 - pid }) {
			if g != 95 {
				t.Errorf("%s: min = %d, want 95", k, g)
			}
		}
		eProd := New[int](k, np, Prod, combineProd, Config[int]{})
		for _, g := range runEpisode(t, eProd, np, func(pid int) int { return pid + 1 }) {
			if g != 720 {
				t.Errorf("%s: prod = %d, want 720", k, g)
			}
		}
	}
}

func TestBoolAndOr(t *testing.T) {
	const np = 5
	for _, k := range Kinds() {
		eAnd := New[bool](k, np, And, func(a, b bool) bool { return a && b }, Config[bool]{})
		for _, g := range runEpisode(t, eAnd, np, func(pid int) bool { return pid != 3 }) {
			if g {
				t.Errorf("%s: and = true, want false", k)
			}
		}
		eOr := New[bool](k, np, Or, func(a, b bool) bool { return a || b }, Config[bool]{})
		for _, g := range runEpisode(t, eOr, np, func(pid int) bool { return pid == 3 }) {
			if !g {
				t.Errorf("%s: or = false, want true", k)
			}
		}
	}
}

func TestFloatReduction(t *testing.T) {
	// Atomic has no float64 representation and must transparently fall
	// back to the slots strategy.
	const np = 8
	for _, k := range Kinds() {
		e := New[float64](k, np, Sum, func(a, b float64) float64 { return a + b }, Config[float64]{})
		for _, g := range runEpisode(t, e, np, func(pid int) float64 { return 0.5 }) {
			if g != 4.0 {
				t.Errorf("%s: float sum = %g, want 4.0", k, g)
			}
		}
	}
}

func TestCustomStructReduction(t *testing.T) {
	// Argmax over a struct element type: the generic path every strategy
	// except Atomic serves natively (Atomic falls back to slots).
	type best struct {
		val float64
		idx int
	}
	combine := func(a, b best) best {
		if b.val > a.val || (b.val == a.val && b.idx < a.idx) {
			return b
		}
		return a
	}
	const np = 7
	for _, k := range Kinds() {
		e := New[best](k, np, Custom, combine, Config[best]{})
		got := runEpisode(t, e, np, func(pid int) best {
			return best{val: float64((pid * 3) % 7), idx: pid}
		})
		// pid contributions: vals 0,3,6,2,5,1,4 -> max 6 at pid 2.
		for _, g := range got {
			if g.idx != 2 || g.val != 6 {
				t.Errorf("%s: argmax = %+v, want {6 2}", k, g)
			}
		}
	}
}

func TestOnCompleteRunsOnceBeforeRelease(t *testing.T) {
	const np = 8
	for _, k := range Kinds() {
		calls := 0
		var sawResult int
		e := New[int](k, np, Sum, func(a, b int) int { return a + b }, Config[int]{
			OnComplete: func(r int) { calls++; sawResult = r },
		})
		got := runEpisode(t, e, np, func(pid int) int { return 1 })
		// OnComplete runs in the completing process before anyone is
		// released, so by the time runEpisode returns it ran exactly
		// once — unsynchronized access here would be flagged by -race
		// if that ordering were broken.
		if calls != 1 {
			t.Errorf("%s: OnComplete ran %d times, want 1", k, calls)
		}
		if sawResult != np {
			t.Errorf("%s: OnComplete saw %d, want %d", k, sawResult, np)
		}
		for _, g := range got {
			if g != np {
				t.Errorf("%s: result %d, want %d", k, g, np)
			}
		}
	}
}

func TestCriticalUsesSuppliedLock(t *testing.T) {
	built := 0
	factory := func() lock.Lock {
		built++
		return lock.New(lock.TTAS)
	}
	e := New[int](Critical, 4, Sum, func(a, b int) int { return a + b }, Config[int]{Lock: factory})
	// The paper's idiom: one accumulator lock plus the two-lock
	// barrier's BARWIN/BARWOT pair, all from the machine's mechanism.
	if built != 3 {
		t.Fatalf("critical built %d locks, want 3 (accumulator + two-lock barrier pair)", built)
	}
	for _, g := range runEpisode(t, e, 4, func(pid int) int { return 2 }) {
		if g != 8 {
			t.Errorf("sum = %d, want 8", g)
		}
	}
}

func TestSlotsDeterministicOrder(t *testing.T) {
	// The slots strategy folds in pid order, so a non-commutative probe
	// combiner observes exactly the sequence 0,1,...,np-1.
	const np = 8
	for trial := 0; trial < 20; trial++ {
		var order []int
		e := New[int](PrivateSlots, np, Custom, func(a, b int) int {
			order = append(order, b)
			return a
		}, Config[int]{})
		runEpisode(t, e, np, func(pid int) int { return pid })
		if len(order) != np-1 {
			t.Fatalf("combine ran %d times, want %d", len(order), np-1)
		}
		for i, v := range order {
			if v != i+1 {
				t.Fatalf("trial %d: combine order %v, want pids in order", trial, order)
			}
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus")
	}
}

func TestManyEpisodesUnderContention(t *testing.T) {
	// Stress: a convergence-loop shape — thousands of back-to-back
	// episodes, each a fresh object, results checked every round.  Run
	// under -race this exercises the publish/await ordering hard.
	const np = 4
	const rounds = 300
	for _, k := range Kinds() {
		var wg sync.WaitGroup
		episodes := make([]Episode[int], rounds)
		for r := range episodes {
			episodes[r] = New[int](k, np, Sum, func(a, b int) int { return a + b }, Config[int]{})
		}
		for p := 0; p < np; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					if got := episodes[r].Do(pid, r); got != np*r {
						t.Errorf("%s round %d pid %d: %d, want %d", k, r, pid, got, np*r)
						return
					}
				}
			}(p)
		}
		wg.Wait()
	}
}
