// Package reduce implements global reductions — the Force's collective
// combine-and-broadcast operation — as a first-class runtime layer with
// selectable strategies.
//
// The paper's programs express a global reduction with the only tools the
// 1989 language had: a shared accumulator updated inside a named critical
// section, closed by a barrier.  That serializes the hottest collective
// operation in every SPMD kernel.  Modern runtimes (Cilk reducers,
// Charm++ contribute-style reductions) make the reduction itself the
// primitive; this package provides that primitive over the repository's
// own lock and barrier substrate, keeping the paper's idiom as the
// Critical baseline strategy for comparison.
//
// An Episode is the shared state of ONE dynamic reduction instance for a
// force of np processes: every process contributes exactly once through
// Do and receives the combined value, and no process returns before the
// combination is complete — a reduction is also a full synchronization
// point, like the implicit barrier closing a DOALL.  Episodes are
// one-shot: the runtime materializes a fresh Episode per construct
// execution (internal/core's construct-entry table), so no sense-reversal
// machinery is needed.
//
// The combining function must be associative and commutative; the order
// in which contributions meet is strategy-dependent.  PrivateSlots is the
// deterministic strategy: it always folds the per-process slots in pid
// order, so even floating-point reductions reproduce bit-identically for
// a fixed np.
package reduce

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/barrier"
	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/poison"
)

// Kind names a reduction strategy.  The zero value is PrivateSlots, the
// default the runtime uses.
type Kind int

const (
	// PrivateSlots gives every process its own padded accumulator slot;
	// the last process to arrive folds the slots in pid order (the
	// "combined in a barrier section" shape) and publishes the result.
	// Contention-free contribution, deterministic combination order.
	PrivateSlots Kind = iota
	// Critical is the paper's baseline, reproduced whole: contributions
	// fold into one shared accumulator under a machine lock, and the
	// construct closes with the paper's own two-lock barrier (section
	// included) — the critical-section-plus-barrier idiom every 1989
	// Force program hand-rolled, kept for comparison.
	Critical
	// Tree combines contributions up the k-ary combining tree the tree
	// barrier uses (barrier.TreeTopology): the last arrival at each node
	// carries the node's partial result to its parent, and the process
	// reaching the root publishes the total.  Log-depth critical path.
	Tree
	// Atomic folds contributions into a single cell with a lock-free
	// CAS loop — for the commutative integer and boolean operators.
	// Element types without an integer representation (float64) and
	// custom operators fall back to PrivateSlots.
	Atomic
)

var kindNames = map[Kind]string{
	Critical:     "critical",
	PrivateSlots: "slots",
	Tree:         "tree",
	Atomic:       "atomic",
}

// kindGoNames are the Go identifiers of the kinds, for code generators
// emitting reduce.<name> against this package.
var kindGoNames = map[Kind]string{
	Critical:     "Critical",
	PrivateSlots: "PrivateSlots",
	Tree:         "Tree",
	Atomic:       "Atomic",
}

// String returns the strategy's short name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("reduce.Kind(%d)", int(k))
}

// GoName returns the kind's Go identifier within this package, the form
// internal/codegen emits into generated programs.
func (k Kind) GoName() string {
	if s, ok := kindGoNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a short name into a Kind.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("reduce: unknown kind %q (kinds: %s, %s, %s, %s)",
		s, Critical, PrivateSlots, Tree, Atomic)
}

// Kinds lists the strategies in presentation order (baseline first).
func Kinds() []Kind { return []Kind{Critical, PrivateSlots, Tree, Atomic} }

// Op names the combining operator of a global reduction.  The named
// operators let the Atomic strategy pick its integer identity and give
// trace events a stable label; Custom covers user-supplied combiners.
type Op int

// The global operators of the Force dialect (GSUM, GPROD, GMAX, GMIN,
// GAND, GOR) plus Custom for arbitrary combine functions.
const (
	Sum Op = iota
	Prod
	Max
	Min
	And
	Or
	Custom
)

var opNames = map[Op]string{
	Sum: "sum", Prod: "prod", Max: "max", Min: "min", And: "and", Or: "or", Custom: "custom",
}

// String returns the operator's short name.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("reduce.Op(%d)", int(o))
}

// Episode is the shared state of one dynamic reduction instance for a
// fixed force.  Every participating process calls Do exactly once with
// its process id and contribution; Do returns the global combination to
// every caller, and no caller returns before all have contributed.  An
// Episode must not be reused.
type Episode[T any] interface {
	Do(pid int, x T) T
}

// Config carries the machine-dependent hooks an Episode may need; it
// is generic in the element type because the completion hook receives
// the result.
type Config[T any] struct {
	// Lock supplies the accumulator lock for the Critical strategy —
	// the machine profile's lock mechanism, exactly as the paper's
	// critical section macro uses it.  Nil defaults to system locks.
	Lock func() lock.Lock
	// FanIn is the Tree strategy's combining fan-in (default 4, the
	// tree barrier's default).
	FanIn int
	// OnComplete, when non-nil, runs exactly once per episode, in the
	// process that completes the combination, after the result is final
	// and before any process is released — the barrier-section position.
	// The runtime uses it to retire the construct entry and to execute
	// single-process reduction sections.
	OnComplete func(result T)
	// Poison, when non-nil, is the force's cancellation cell: a process
	// waiting out a combination that can never complete (a contributor
	// died) unwinds with poison.Abort instead of waiting forever.
	Poison *poison.Cell
}

// New builds the shared state of one reduction episode for np processes.
// combine must be associative and commutative; op describes it (pass
// Custom for user combiners).  The Atomic strategy serves the named
// operators over integer and boolean element types and silently falls
// back to PrivateSlots otherwise, so callers can select it force-wide
// without per-callsite type checks.
func New[T any](k Kind, np int, op Op, combine func(T, T) T, cfg Config[T]) Episode[T] {
	if np <= 0 {
		panic(fmt.Sprintf("reduce: np = %d, need np >= 1", np))
	}
	switch k {
	case Critical:
		factory := cfg.Lock
		if factory == nil {
			factory = lock.Factory(lock.System)
		}
		e := &criticalEpisode[T]{
			np: np, combine: combine, lk: factory(),
			bar: barrier.NewTwoLock(np, factory), onComplete: cfg.OnComplete, pc: cfg.Poison,
		}
		e.bar.SetPoison(cfg.Poison)
		return e
	case Tree:
		fanIn := cfg.FanIn
		if fanIn < 2 {
			fanIn = 4
		}
		parent, expect := barrier.TreeTopology(np, fanIn)
		e := &treeEpisode[T]{fanIn: fanIn, combine: combine, nodes: make([]reduceNode[T], len(parent)), rel: newRelease[T](cfg.Poison), onComplete: cfg.OnComplete}
		for i := range e.nodes {
			e.nodes[i].parent = parent[i]
			e.nodes[i].pending = expect[i]
		}
		return e
	case Atomic:
		if enc, dec, ident, ok := atomicCodec[T](op); ok {
			e := &atomicEpisode[T]{np: np, combine: combine, enc: enc, dec: dec, rel: newRelease[T](cfg.Poison), onComplete: cfg.OnComplete}
			e.acc.Store(enc(ident))
			return e
		}
		// No lock-free integer representation: fall through to slots.
		fallthrough
	default:
		return newSlots[T](np, combine, cfg.OnComplete, cfg.Poison)
	}
}

// release publishes the episode result to the waiting processes.  The
// completing process stores the result, runs the section hook, and
// releases everyone; the atomic store of done orders the result write
// before every reader.  Waiting is spin-then-park: a short yield-spiced
// spin catches the common fast path under real parallelism, after which
// the waiter parks on the release channel — on an oversubscribed
// machine (more processes than CPUs, the 1989 normality and the CI
// box's too) parked waiters leave the scheduler to the processes that
// still owe contributions instead of cycling through the run queue.  A
// parked waiter additionally selects on the poison cell's wake channel,
// so a reduction whose missing contributor died unwinds with
// poison.Abort instead of parking forever.
type release[T any] struct {
	done   atomic.Uint32
	ch     chan struct{}
	pc     *poison.Cell
	result T
}

func newRelease[T any](pc *poison.Cell) release[T] {
	return release[T]{ch: make(chan struct{}), pc: pc}
}

func (r *release[T]) publish(v T, onComplete func(T)) T {
	r.result = v
	if onComplete != nil {
		onComplete(v)
	}
	r.done.Store(1)
	close(r.ch)
	return v
}

func (r *release[T]) await() T {
	faultinject.Fire(faultinject.ReduceRelease, -1, r.pc)
	for i := 0; i < 64; i++ {
		if r.done.Load() == 1 {
			return r.result
		}
		r.pc.Check()
		if i%16 == 15 {
			runtime.Gosched()
		}
	}
	select {
	case <-r.ch:
	case <-r.pc.Done(): // nil channel (never ready) when no poison is wired
		if r.done.Load() != 1 {
			r.pc.Check()
		}
	}
	return r.result
}

// criticalEpisode is the paper's idiom reproduced whole: fold the
// contribution into one shared accumulator inside a critical section
// (the machine's lock), then close the construct with the paper's
// two-lock barrier — the completion hook runs as that barrier's section.
// This is what every 1989 Force program spelled out by hand, and it
// carries the idiom's full cost: serialized folds plus the lock-handoff
// barrier.  The other strategies replace both halves.
type criticalEpisode[T any] struct {
	np         int
	combine    func(T, T) T
	lk         lock.Lock
	bar        *barrier.TwoLockBarrier
	acc        T
	seeded     bool
	onComplete func(T)
	pc         *poison.Cell
}

func (e *criticalEpisode[T]) Do(pid int, x T) T {
	lock.Acquire(e.lk, e.pc)
	func() {
		// The combine is user code under the Custom operator: release
		// the accumulator lock even when it panics, so peers queued on
		// it drain instead of wedging on a lock no one will open.
		defer e.lk.Unlock()
		if e.seeded {
			e.acc = e.combine(e.acc, x)
		} else {
			e.acc, e.seeded = x, true
		}
	}()
	var section func()
	if e.onComplete != nil {
		section = func() { e.onComplete(e.acc) }
	}
	// The critical strategy's release position is its closing barrier.
	faultinject.Fire(faultinject.ReduceRelease, pid, e.pc)
	e.bar.Sync(pid, section)
	// All folds happened before the last arrival opened the barrier
	// drain, so the accumulator is final and safe to read.
	return e.acc
}

// paddedSlot keeps one process's accumulator on its own cache line so
// concurrent contributions do not false-share.
type paddedSlot[T any] struct {
	v T
	_ [64]byte
}

// slotsEpisode: contribution is a plain store into the process's own
// slot; the last arrival folds the slots in pid order (the deterministic
// combination) and publishes.  Slots are cache-line padded only when the
// program can actually run in parallel (GOMAXPROCS > 1): padding exists
// to defeat false sharing between concurrently-writing CPUs, and on a
// single-CPU box it would only dilute the cache.
type slotsEpisode[T any] struct {
	np         int
	combine    func(T, T) T
	slots      []paddedSlot[T] // padded storage (nil when compact)
	compact    []T             // unpadded storage (GOMAXPROCS == 1)
	arrived    atomic.Int64
	rel        release[T]
	onComplete func(T)
}

func newSlots[T any](np int, combine func(T, T) T, onComplete func(T), pc *poison.Cell) *slotsEpisode[T] {
	e := &slotsEpisode[T]{np: np, combine: combine, rel: newRelease[T](pc), onComplete: onComplete}
	if runtime.GOMAXPROCS(0) > 1 {
		e.slots = make([]paddedSlot[T], np)
	} else {
		e.compact = make([]T, np)
	}
	return e
}

func (e *slotsEpisode[T]) put(pid int, x T) {
	if e.slots != nil {
		e.slots[pid].v = x
	} else {
		e.compact[pid] = x
	}
}

func (e *slotsEpisode[T]) at(pid int) T {
	if e.slots != nil {
		return e.slots[pid].v
	}
	return e.compact[pid]
}

func (e *slotsEpisode[T]) Do(pid int, x T) T {
	e.put(pid, x)
	if e.arrived.Add(1) == int64(e.np) {
		acc := e.at(0)
		for i := 1; i < e.np; i++ {
			acc = e.combine(acc, e.at(i))
		}
		return e.rel.publish(acc, e.onComplete)
	}
	return e.rel.await()
}

// reduceNode is one combining-tree node: a small mutex guards the partial
// accumulator, an arrival count decides who climbs.
type reduceNode[T any] struct {
	mu      sync.Mutex
	acc     T
	seeded  bool
	pending int64
	parent  int
	_       [24]byte
}

// treeEpisode climbs barrier.TreeTopology's k-ary tree: the last arrival
// at each node carries the combined partial value upward, and the process
// that closes the root publishes.
type treeEpisode[T any] struct {
	fanIn      int
	combine    func(T, T) T
	nodes      []reduceNode[T]
	rel        release[T]
	onComplete func(T)
}

func (e *treeEpisode[T]) Do(pid int, x T) T {
	node := pid / e.fanIn
	v := x
	for {
		n := &e.nodes[node]
		var last bool
		func() {
			n.mu.Lock()
			// combine is user code under the Custom operator: release
			// the node lock on panic so queued peers drain.
			defer n.mu.Unlock()
			if n.seeded {
				n.acc = e.combine(n.acc, v)
			} else {
				n.acc, n.seeded = v, true
			}
			n.pending--
			last = n.pending == 0
			if last {
				v = n.acc
			}
		}()
		if !last {
			return e.rel.await()
		}
		if n.parent < 0 {
			return e.rel.publish(v, e.onComplete)
		}
		node = n.parent
	}
}

// atomicEpisode folds contributions into one int64 cell with a CAS loop.
type atomicEpisode[T any] struct {
	np         int
	combine    func(T, T) T
	enc        func(T) int64
	dec        func(int64) T
	acc        atomic.Int64
	arrived    atomic.Int64
	rel        release[T]
	onComplete func(T)
}

func (e *atomicEpisode[T]) Do(pid int, x T) T {
	for {
		old := e.acc.Load()
		nw := e.enc(e.combine(e.dec(old), x))
		if nw == old || e.acc.CompareAndSwap(old, nw) {
			break
		}
	}
	if e.arrived.Add(1) == int64(e.np) {
		return e.rel.publish(e.dec(e.acc.Load()), e.onComplete)
	}
	return e.rel.await()
}

// atomicCodec reports whether T has a lock-free int64 representation for
// the named operator, and if so returns the codec and the operator's
// identity element (the initial accumulator value).
func atomicCodec[T any](op Op) (enc func(T) int64, dec func(int64) T, ident T, ok bool) {
	var zero T
	switch any(zero).(type) {
	case int:
		enc = func(v T) int64 { return int64(any(v).(int)) }
		dec = func(b int64) T { return any(int(b)).(T) }
	case int64:
		enc = func(v T) int64 { return any(v).(int64) }
		dec = func(b int64) T { return any(b).(T) }
	case bool:
		enc = func(v T) int64 {
			if any(v).(bool) {
				return 1
			}
			return 0
		}
		dec = func(b int64) T { return any(b != 0).(T) }
	default:
		return nil, nil, zero, false
	}
	// The Max/Min identities must fit T: int is 32 bits on 32-bit
	// platforms, where int(math.MinInt64) would truncate to 0 and
	// poison the fold.
	_, isInt := any(zero).(int)
	var id int64
	switch op {
	case Sum:
		id = 0
	case Prod:
		id = 1
	case Max:
		if isInt {
			id = int64(math.MinInt)
		} else {
			id = math.MinInt64
		}
	case Min:
		if isInt {
			id = int64(math.MaxInt)
		} else {
			id = math.MaxInt64
		}
	case And:
		id = 1
	case Or:
		id = 0
	default:
		// Custom combiners have no known identity to seed the cell with.
		return nil, nil, zero, false
	}
	if _, isBool := any(zero).(bool); isBool && (op == Sum || op == Prod || op == Max || op == Min) {
		return nil, nil, zero, false
	}
	if _, isB := any(zero).(bool); !isB && (op == And || op == Or) {
		return nil, nil, zero, false
	}
	return enc, dec, dec(id), true
}
