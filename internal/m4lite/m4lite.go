// Package m4lite is a macro processor in the style of Unix m4: the second
// of the two preprocessor passes in the Force compilation pipeline (paper
// §4.3: "the macro processor m4 replaces the function macros with Fortran
// code and the language extensions supporting parallel programming").
//
// Supported semantics, matching m4 where the Force macro layers rely on
// it:
//
//   - user macros via define(name, body) with $0-$9, $#, $* and $@
//     parameter substitution, expanded with rescanning (expansion text is
//     pushed back onto the input);
//   - bare user-macro names expand with zero arguments; argument-taking
//     builtins are recognized only when immediately followed by ( (GNU m4
//     behaviour, so that prose containing "define" or "index" survives);
//     a call's arguments are themselves expanded during collection, with
//     leading unquoted whitespace of each argument skipped;
//   - quoting with ` and ' (changeable via changequote): quoted text is
//     copied with one quote level stripped and is not expanded;
//   - # comments are copied through verbatim to end of line;
//   - builtins: define, undefine, ifdef, ifelse (chained), eval, incr,
//     decr, len, index, substr, shift, dnl, changequote.
//
// Omissions relative to real m4 (not needed by the Force layers, checked
// by the tests): diversions, include, translit, defn, patsubst.
package m4lite

import (
	"fmt"
	"strconv"
	"strings"
)

// maxOps bounds total macro expansions per Expand call and maxInput bounds
// the rescanned input size, converting runaway recursion (define(x, `x y'))
// into an error instead of a hang.
const (
	maxOps   = 20000
	maxInput = 1 << 22
)

// Processor holds macro definitions and quote characters.  A zero
// Processor is not usable; call NewProcessor.
type Processor struct {
	user     map[string]string
	builtins map[string]builtin
	lquote   rune
	rquote   rune
}

type scanState struct {
	in  []rune
	i   int
	ops int
}

type builtin func(p *Processor, st *scanState, args []string) (string, error)

// NewProcessor creates a processor with the default ` and ' quotes and all
// builtins installed.
func NewProcessor() *Processor {
	p := &Processor{
		user:   make(map[string]string),
		lquote: '`',
		rquote: '\'',
	}
	p.builtins = map[string]builtin{
		"define":      biDefine,
		"undefine":    biUndefine,
		"ifdef":       biIfdef,
		"ifelse":      biIfelse,
		"eval":        biEval,
		"incr":        biIncr,
		"decr":        biDecr,
		"len":         biLen,
		"index":       biIndex,
		"substr":      biSubstr,
		"shift":       biShift,
		"dnl":         biDnl,
		"changequote": biChangequote,
	}
	return p
}

// Define installs a user macro, replacing any previous definition.
func (p *Processor) Define(name, body string) { p.user[name] = body }

// Defined reports whether name is a user macro or a builtin.
func (p *Processor) Defined(name string) bool {
	if _, ok := p.user[name]; ok {
		return true
	}
	_, ok := p.builtins[name]
	return ok
}

// Load expands a macro-definition file for its side effects, requiring
// that it produce only whitespace (the Force macro layers end every
// definition with dnl); any other output is reported as an error, which
// catches malformed layer files early.
func (p *Processor) Load(src string) error {
	out, err := p.Expand(src)
	if err != nil {
		return err
	}
	if strings.TrimSpace(out) != "" {
		return fmt.Errorf("m4lite: macro file produced non-whitespace output %q", firstLine(out))
	}
	return nil
}

func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 60 {
		s = s[:60] + "..."
	}
	return s
}

// Expand processes input and returns the expanded text.
func (p *Processor) Expand(input string) (string, error) {
	st := &scanState{in: []rune(input)}
	var out strings.Builder

	// Call-frame stack for argument collection.
	type frame struct {
		name   string
		args   []string
		cur    strings.Builder
		depth  int // unquoted paren nesting inside the current argument
		skipWS bool
	}
	var stack []*frame

	emit := func(s string) {
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.skipWS {
				s = strings.TrimLeft(s, " \t\n")
				if s == "" {
					return
				}
				top.skipWS = false
			}
			top.cur.WriteString(s)
			return
		}
		out.WriteString(s)
	}
	pushback := func(s string) {
		if s == "" {
			return
		}
		rest := st.in[st.i:]
		merged := make([]rune, 0, len(s)+len(rest))
		merged = append(merged, []rune(s)...)
		merged = append(merged, rest...)
		st.in = merged
		st.i = 0
	}
	// invoke runs a macro (name already recognized) with args.
	invoke := func(name string, args []string) error {
		st.ops++
		if st.ops > maxOps || len(st.in) > maxInput {
			return fmt.Errorf("m4lite: expansion limit exceeded (recursive macro %q?)", name)
		}
		if body, ok := p.user[name]; ok {
			pushback(p.substitute(name, body, args))
			return nil
		}
		bi := p.builtins[name]
		res, err := bi(p, st, args)
		if err != nil {
			return err
		}
		pushback(res)
		return nil
	}

	for st.i < len(st.in) {
		c := st.in[st.i]
		switch {
		case c == p.lquote:
			text, err := p.scanQuoted(st)
			if err != nil {
				return "", err
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				top.skipWS = false
			}
			emit(text)

		case c == '#':
			// Comment: copied verbatim through end of line.
			j := st.i
			for j < len(st.in) && st.in[j] != '\n' {
				j++
			}
			if j < len(st.in) {
				j++ // include the newline
			}
			emit(string(st.in[st.i:j]))
			st.i = j

		case isNameStart(c):
			j := st.i + 1
			for j < len(st.in) && isNameRune(st.in[j]) {
				j++
			}
			name := string(st.in[st.i:j])
			if !p.Defined(name) {
				emit(name)
				st.i = j
				continue
			}
			// GNU m4 semantics: argument-taking builtins are only
			// recognized when immediately followed by ( — a bare
			// "index" or "define" in program text passes through.
			// User macros and dnl expand bare.
			if _, isUser := p.user[name]; !isUser && name != "dnl" {
				if j >= len(st.in) || st.in[j] != '(' {
					emit(name)
					st.i = j
					continue
				}
			}
			st.i = j
			if st.i < len(st.in) && st.in[st.i] == '(' {
				// Open a call frame and collect arguments.
				st.i++
				stack = append(stack, &frame{name: name, skipWS: true})
				continue
			}
			// Bare macro: expand with zero arguments.
			if err := invoke(name, nil); err != nil {
				return "", err
			}

		case len(stack) > 0 && c == ',' && stack[len(stack)-1].depth == 0:
			top := stack[len(stack)-1]
			top.args = append(top.args, top.cur.String())
			top.cur.Reset()
			top.skipWS = true
			st.i++

		case len(stack) > 0 && c == ')' && stack[len(stack)-1].depth == 0:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			args := append(top.args, top.cur.String())
			// A call with genuinely no arguments: name() yields one
			// empty argument in m4; keep that behaviour.
			st.i++
			if err := invoke(top.name, args); err != nil {
				return "", err
			}

		case len(stack) > 0 && c == '(':
			stack[len(stack)-1].depth++
			emit("(")
			st.i++

		case len(stack) > 0 && c == ')':
			stack[len(stack)-1].depth--
			emit(")")
			st.i++

		default:
			emit(string(c))
			st.i++
		}
	}
	if len(stack) > 0 {
		return "", fmt.Errorf("m4lite: unterminated call of %q", stack[len(stack)-1].name)
	}
	return out.String(), nil
}

// MustExpand is Expand panicking on error, for compiled-in inputs.
func (p *Processor) MustExpand(input string) string {
	out, err := p.Expand(input)
	if err != nil {
		panic(err)
	}
	return out
}

// scanQuoted consumes a quoted string starting at the left quote and
// returns its contents with one quote level stripped.
func (p *Processor) scanQuoted(st *scanState) (string, error) {
	depth := 1
	var sb strings.Builder
	j := st.i + 1
	for j < len(st.in) {
		switch st.in[j] {
		case p.lquote:
			depth++
		case p.rquote:
			depth--
			if depth == 0 {
				st.i = j + 1
				return sb.String(), nil
			}
		}
		sb.WriteRune(st.in[j])
		j++
	}
	return "", fmt.Errorf("m4lite: unterminated quote")
}

// substitute expands $-parameters in a user macro body.
func (p *Processor) substitute(name, body string, args []string) string {
	var out strings.Builder
	r := []rune(body)
	for i := 0; i < len(r); i++ {
		if r[i] != '$' || i+1 >= len(r) {
			out.WriteRune(r[i])
			continue
		}
		next := r[i+1]
		switch {
		case next >= '0' && next <= '9':
			n := int(next - '0')
			if n == 0 {
				out.WriteString(name)
			} else if n <= len(args) {
				out.WriteString(args[n-1])
			}
			i++
		case next == '#':
			out.WriteString(strconv.Itoa(len(args)))
			i++
		case next == '*':
			out.WriteString(strings.Join(args, ","))
			i++
		case next == '@':
			for k, a := range args {
				if k > 0 {
					out.WriteRune(',')
				}
				out.WriteRune(p.lquote)
				out.WriteString(a)
				out.WriteRune(p.rquote)
			}
			i++
		default:
			out.WriteRune('$')
		}
	}
	return out.String()
}

func isNameStart(c rune) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameRune(c rune) bool {
	return isNameStart(c) || (c >= '0' && c <= '9')
}

func arg(args []string, n int) string {
	if n < len(args) {
		return args[n]
	}
	return ""
}

func biDefine(p *Processor, _ *scanState, args []string) (string, error) {
	name := arg(args, 0)
	if name == "" {
		return "", fmt.Errorf("m4lite: define with empty name")
	}
	if !isValidName(name) {
		return "", fmt.Errorf("m4lite: define of invalid name %q", name)
	}
	p.user[name] = arg(args, 1)
	return "", nil
}

func isValidName(s string) bool {
	for i, c := range s {
		if i == 0 && !isNameStart(c) {
			return false
		}
		if i > 0 && !isNameRune(c) {
			return false
		}
	}
	return s != ""
}

func biUndefine(p *Processor, _ *scanState, args []string) (string, error) {
	delete(p.user, arg(args, 0))
	return "", nil
}

func biIfdef(p *Processor, _ *scanState, args []string) (string, error) {
	if _, ok := p.user[arg(args, 0)]; ok {
		return arg(args, 1), nil
	}
	return arg(args, 2), nil
}

func biIfelse(_ *Processor, _ *scanState, args []string) (string, error) {
	for {
		switch {
		case len(args) <= 1:
			return "", nil
		case len(args) == 2:
			return "", nil
		case arg(args, 0) == arg(args, 1):
			return arg(args, 2), nil
		case len(args) == 4:
			return arg(args, 3), nil
		default:
			args = args[3:]
		}
	}
}

func biEval(_ *Processor, _ *scanState, args []string) (string, error) {
	v, err := evalExpr(arg(args, 0))
	if err != nil {
		return "", err
	}
	return strconv.FormatInt(v, 10), nil
}

func biIncr(_ *Processor, _ *scanState, args []string) (string, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(arg(args, 0)), 10, 64)
	if err != nil {
		return "", fmt.Errorf("m4lite: incr: %w", err)
	}
	return strconv.FormatInt(v+1, 10), nil
}

func biDecr(_ *Processor, _ *scanState, args []string) (string, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(arg(args, 0)), 10, 64)
	if err != nil {
		return "", fmt.Errorf("m4lite: decr: %w", err)
	}
	return strconv.FormatInt(v-1, 10), nil
}

func biLen(_ *Processor, _ *scanState, args []string) (string, error) {
	return strconv.Itoa(len(arg(args, 0))), nil
}

func biIndex(_ *Processor, _ *scanState, args []string) (string, error) {
	return strconv.Itoa(strings.Index(arg(args, 0), arg(args, 1))), nil
}

func biSubstr(_ *Processor, _ *scanState, args []string) (string, error) {
	s := arg(args, 0)
	from, err := strconv.Atoi(strings.TrimSpace(arg(args, 1)))
	if err != nil {
		return "", fmt.Errorf("m4lite: substr: %w", err)
	}
	if from < 0 || from > len(s) {
		return "", nil
	}
	rest := s[from:]
	if lenArg := strings.TrimSpace(arg(args, 2)); lenArg != "" {
		n, err := strconv.Atoi(lenArg)
		if err != nil {
			return "", fmt.Errorf("m4lite: substr: %w", err)
		}
		if n < 0 {
			n = 0
		}
		if n < len(rest) {
			rest = rest[:n]
		}
	}
	return rest, nil
}

func biShift(_ *Processor, _ *scanState, args []string) (string, error) {
	if len(args) <= 1 {
		return "", nil
	}
	return strings.Join(args[1:], ","), nil
}

// biDnl deletes input through the next newline, inclusive.
func biDnl(_ *Processor, st *scanState, _ []string) (string, error) {
	for st.i < len(st.in) {
		if st.in[st.i] == '\n' {
			st.i++
			break
		}
		st.i++
	}
	return "", nil
}

func biChangequote(p *Processor, _ *scanState, args []string) (string, error) {
	l, r := arg(args, 0), arg(args, 1)
	if l == "" {
		l, r = "`", "'"
	}
	if r == "" {
		r = "'"
	}
	lr, rr := []rune(l), []rune(r)
	if len(lr) != 1 || len(rr) != 1 {
		return "", fmt.Errorf("m4lite: changequote requires single-character quotes")
	}
	p.lquote, p.rquote = lr[0], rr[0]
	return "", nil
}
