package m4lite

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func expand(t *testing.T, in string) string {
	t.Helper()
	p := NewProcessor()
	out, err := p.Expand(in)
	if err != nil {
		t.Fatalf("Expand(%q): %v", in, err)
	}
	return out
}

func TestPlainTextPassesThrough(t *testing.T) {
	in := "      K = K + 1\nC a Fortran comment\n"
	if got := expand(t, in); got != in {
		t.Errorf("got %q, want unchanged", got)
	}
}

func TestDefineAndExpand(t *testing.T) {
	got := expand(t, "define(NPROC, 8)dnl\nNPROC processes")
	if got != "8 processes" {
		t.Errorf("got %q", got)
	}
}

func TestArgumentsSubstitution(t *testing.T) {
	got := expand(t, "define(swap, `$2 $1')dnl\nswap(a, b)")
	if got != "b a" {
		t.Errorf("got %q", got)
	}
}

func TestDollarZeroHashStarAt(t *testing.T) {
	// $0 is requoted in the body: as in real m4, an unquoted $0 would be
	// rescanned and recurse forever.
	got := expand(t, "define(m, ``$0':$#:$*')dnl\nm(x, y, z)")
	if got != "m:3:x,y,z" {
		t.Errorf("got %q", got)
	}
}

func TestDollarAtVersusStar(t *testing.T) {
	// $@ passes each argument requoted, so a quoting callee can keep it
	// from expanding; $* passes them bare, so collection expands them —
	// exactly real m4's distinction.
	src := "define(inner, BAD)dnl\n" +
		"define(hold, ``$1'')dnl\n" +
		"define(viaAt, `hold($@)')dnl\n" +
		"define(viaStar, `hold($*)')dnl\n" +
		"viaAt(`inner') viaStar(`inner')"
	if got := expand(t, src); got != "inner BAD" {
		t.Errorf("got %q, want %q", got, "inner BAD")
	}
}

func TestMissingArgsAreEmpty(t *testing.T) {
	got := expand(t, "define(m, `[$1][$2]')dnl\nm(only)")
	if got != "[only][]" {
		t.Errorf("got %q", got)
	}
}

func TestRescanning(t *testing.T) {
	// The expansion of a is rescanned, finding b.
	got := expand(t, "define(b, final)dnl\ndefine(a, b)dnl\na")
	if got != "final" {
		t.Errorf("got %q", got)
	}
}

func TestQuotingSuppressesExpansion(t *testing.T) {
	got := expand(t, "define(x, 9)dnl\n`x' x")
	if got != "x 9" {
		t.Errorf("got %q", got)
	}
}

func TestNestedQuotesStripOneLevel(t *testing.T) {
	got := expand(t, "``x''")
	if got != "`x'" {
		t.Errorf("got %q", got)
	}
}

func TestQuotedArgumentsNotExpanded(t *testing.T) {
	got := expand(t, "define(x, 9)dnl\ndefine(m, `$1')dnl\nm(`x')")
	// $1 is the literal x; after substitution the rescan expands it —
	// true m4 behaviour (single quoting defers, not prevents).
	if got != "9" {
		t.Errorf("got %q", got)
	}
	got = expand(t, "define(x, 9)dnl\ndefine(m, `1$1')dnl\nm(``x'')")
	if got != "1x" {
		t.Errorf("double-quoted arg: got %q", got)
	}
}

func TestLeadingArgWhitespaceSkipped(t *testing.T) {
	got := expand(t, "define(m, `[$1][$2]')dnl\nm(  a,\n   b  )")
	if got != "[a][b  ]" {
		t.Errorf("got %q", got)
	}
}

func TestNestedParensInArgs(t *testing.T) {
	got := expand(t, "define(m, `<$1>')dnl\nm(f(a, b))")
	if got != "<f(a, b)>" {
		t.Errorf("got %q", got)
	}
}

func TestNestedMacroCallsInArgs(t *testing.T) {
	got := expand(t, "define(inc, `($1+1)')dnl\ndefine(m, `[$1]')dnl\nm(inc(inc(0)))")
	if got != "[((0+1)+1)]" {
		t.Errorf("got %q", got)
	}
}

func TestBareBuiltinWithoutParens(t *testing.T) {
	// A defined macro expands bare; an undefined name passes through.
	got := expand(t, "define(K, 7)dnl\nK undefinedname")
	if got != "7 undefinedname" {
		t.Errorf("got %q", got)
	}
}

func TestUndefine(t *testing.T) {
	got := expand(t, "define(x, 9)dnl\nundefine(`x')dnl\nx")
	if got != "x" {
		t.Errorf("got %q", got)
	}
}

func TestIfdef(t *testing.T) {
	got := expand(t, "define(flag, 1)dnl\nifdef(`flag', yes, no) ifdef(`other', yes, no)")
	if got != "yes no" {
		t.Errorf("got %q", got)
	}
}

func TestIfelse(t *testing.T) {
	cases := map[string]string{
		"ifelse(a, a, eq)":                   "eq",
		"ifelse(a, b, eq)":                   "",
		"ifelse(a, b, eq, ne)":               "ne",
		"ifelse(a, b, x, a, a, y, z)":        "y",
		"ifelse(a, b, x, c, d, y, fallback)": "fallback",
		"ifelse(onearg)":                     "",
	}
	for in, want := range cases {
		if got := expand(t, in); got != want {
			t.Errorf("%s = %q, want %q", in, got, want)
		}
	}
}

func TestEvalBuiltin(t *testing.T) {
	cases := map[string]string{
		"eval(1+2*3)":          "7",
		"eval((1+2)*3)":        "9",
		"eval(7/2)":            "3",
		"eval(7%3)":            "1",
		"eval(-4+1)":           "-3",
		"eval(3 > 2)":          "1",
		"eval(3 <= 2)":         "0",
		"eval(1 && 0)":         "0",
		"eval(1 || 0)":         "1",
		"eval(!0)":             "1",
		"eval(2 == 2 && 3> 1)": "1",
	}
	for in, want := range cases {
		if got := expand(t, in); got != want {
			t.Errorf("%s = %q, want %q", in, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	p := NewProcessor()
	for _, in := range []string{"eval(1/0)", "eval(1%0)", "eval(1+)", "eval(abc)", "eval((1)"} {
		if _, err := p.Expand(in); err == nil {
			t.Errorf("%s: expected error", in)
		}
	}
}

func TestIncrDecrLenIndexSubstr(t *testing.T) {
	cases := map[string]string{
		"incr(41)":              "42",
		"decr(43)":              "42",
		"len(hello)":            "5",
		"len()":                 "0",
		"index(barrier, rri)":   "2",
		"index(barrier, zz)":    "-1",
		"substr(barrier, 3)":    "rier",
		"substr(barrier, 3, 2)": "ri",
		"substr(barrier, 99)":   "",
	}
	for in, want := range cases {
		if got := expand(t, in); got != want {
			t.Errorf("%s = %q, want %q", in, got, want)
		}
	}
}

func TestShiftAndListUtilities(t *testing.T) {
	// The paper's "utility macros ... returning the first element of a
	// list" written with the builtins.
	src := "define(first, `$1')dnl\ndefine(rest, `shift($@)')dnl\nfirst(a,b,c)|rest(a,b,c)"
	if got := expand(t, src); got != "a|b,c" {
		t.Errorf("got %q", got)
	}
}

func TestDnlEatsThroughNewline(t *testing.T) {
	got := expand(t, "define(x, 1)dnl trailing garbage\nx")
	if got != "1" {
		t.Errorf("got %q", got)
	}
}

func TestChangequote(t *testing.T) {
	got := expand(t, "changequote([, ])dnl\ndefine(x, 9)dnl\n[x] x")
	if got != "x 9" {
		t.Errorf("got %q", got)
	}
	// Restore defaults with no arguments.
	got = expand(t, "changequote([, ])dnl\nchangequote()dnl\ndefine(x, 9)dnl\n`x' x")
	if got != "x 9" {
		t.Errorf("restored quotes: got %q", got)
	}
}

func TestHashCommentVerbatim(t *testing.T) {
	got := expand(t, "define(x, 9)dnl\n# x should not expand\nx")
	if got != "# x should not expand\n9" {
		t.Errorf("got %q", got)
	}
}

func TestErrors(t *testing.T) {
	p := NewProcessor()
	for _, in := range []string{
		"define(m, `$1')dnl\nm(unterminated",
		"`unterminated quote",
		"define(`bad name', x)",
		"define(`', x)",
		"changequote(ab, cd)",
	} {
		if _, err := p.Expand(in); err == nil {
			t.Errorf("%q: expected error", in)
		}
	}
}

func TestRunawayRecursionDetected(t *testing.T) {
	p := NewProcessor()
	if _, err := p.Expand("define(x, `x y')dnl\nx"); err == nil {
		t.Error("recursive macro did not error")
	} else if !strings.Contains(err.Error(), "expansion limit") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRecursiveCountdownMacro(t *testing.T) {
	// Bounded recursion through ifelse must terminate: a countdown.
	src := "define(count, `$1 ifelse($1, 0, , `count(decr($1))')')dnl\ncount(3)"
	got := expand(t, src)
	cleaned := strings.Join(strings.Fields(got), " ")
	if cleaned != "3 2 1 0" {
		t.Errorf("got %q (cleaned %q)", got, cleaned)
	}
}

func TestLoadRequiresSilentFile(t *testing.T) {
	p := NewProcessor()
	if err := p.Load("define(a, 1)dnl\ndefine(b, 2)dnl\n"); err != nil {
		t.Errorf("silent file rejected: %v", err)
	}
	if !p.Defined("a") || !p.Defined("b") {
		t.Error("Load did not install definitions")
	}
	if err := p.Load("define(c, 3)dnl\nstray output\n"); err == nil {
		t.Error("noisy macro file accepted")
	}
}

func TestDefinedCoversBuiltins(t *testing.T) {
	p := NewProcessor()
	if !p.Defined("ifelse") || !p.Defined("define") {
		t.Error("builtins not Defined")
	}
	if p.Defined("nosuch") {
		t.Error("nosuch Defined")
	}
}

func TestMustExpandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustExpand did not panic")
		}
	}()
	NewProcessor().MustExpand("`oops")
}

// Property: text with no macro names, quotes, comments or parens is a
// fixed point of expansion.
func TestQuickInertTextFixedPoint(t *testing.T) {
	p := NewProcessor()
	prop := func(words []uint16) bool {
		var sb strings.Builder
		for _, w := range words {
			sb.WriteString("v")
			sb.WriteString(strings.Repeat("x", int(w%5)))
			sb.WriteString("9 = + ")
		}
		in := sb.String()
		out, err := p.Expand(in)
		return err == nil && out == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: eval agrees with Go arithmetic on random small expressions.
func TestQuickEvalMatchesGo(t *testing.T) {
	prop := func(a, b int16, c uint8) bool {
		div := int64(c%9) + 1
		in := fmt.Sprintf("eval((0 %+d) + %d * 3 / %d)", a, b, div)
		p := NewProcessor()
		out, err := p.Expand(in)
		if err != nil {
			return false
		}
		want := int64(a) + int64(b)*3/div
		return out == strconv.FormatInt(want, 10)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
