package m4lite

import (
	"fmt"
	"strconv"
	"strings"
)

// evalExpr evaluates the integer expression language of the eval builtin:
// decimal literals; unary - and !; binary * / %, + -, the comparisons
// == != < <= > >=, && and ||; parentheses.  Comparisons and logical
// operators yield 0 or 1, as in m4.
func evalExpr(src string) (int64, error) {
	p := &exprParser{src: []rune(src)}
	v, err := p.parseOr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.i < len(p.src) {
		return 0, fmt.Errorf("m4lite: eval: trailing input %q", string(p.src[p.i:]))
	}
	return v, nil
}

type exprParser struct {
	src []rune
	i   int
}

func (p *exprParser) skipSpace() {
	for p.i < len(p.src) && (p.src[p.i] == ' ' || p.src[p.i] == '\t' || p.src[p.i] == '\n') {
		p.i++
	}
}

// peekOp matches one of the given operators (longest first caller-side)
// and consumes it on success.
func (p *exprParser) peekOp(ops ...string) (string, bool) {
	p.skipSpace()
	for _, op := range ops {
		if strings.HasPrefix(string(p.src[p.i:]), op) {
			p.i += len(op)
			return op, true
		}
	}
	return "", false
}

func (p *exprParser) parseOr() (int64, error) {
	left, err := p.parseAnd()
	if err != nil {
		return 0, err
	}
	for {
		if _, ok := p.peekOp("||"); !ok {
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return 0, err
		}
		left = b2i(left != 0 || right != 0)
	}
}

func (p *exprParser) parseAnd() (int64, error) {
	left, err := p.parseCmp()
	if err != nil {
		return 0, err
	}
	for {
		if _, ok := p.peekOp("&&"); !ok {
			return left, nil
		}
		right, err := p.parseCmp()
		if err != nil {
			return 0, err
		}
		left = b2i(left != 0 && right != 0)
	}
}

func (p *exprParser) parseCmp() (int64, error) {
	left, err := p.parseAdd()
	if err != nil {
		return 0, err
	}
	for {
		op, ok := p.peekOp("==", "!=", "<=", ">=", "<", ">")
		if !ok {
			return left, nil
		}
		right, err := p.parseAdd()
		if err != nil {
			return 0, err
		}
		switch op {
		case "==":
			left = b2i(left == right)
		case "!=":
			left = b2i(left != right)
		case "<=":
			left = b2i(left <= right)
		case ">=":
			left = b2i(left >= right)
		case "<":
			left = b2i(left < right)
		case ">":
			left = b2i(left > right)
		}
	}
}

func (p *exprParser) parseAdd() (int64, error) {
	left, err := p.parseMul()
	if err != nil {
		return 0, err
	}
	for {
		op, ok := p.peekOp("+", "-")
		if !ok {
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return 0, err
		}
		if op == "+" {
			left += right
		} else {
			left -= right
		}
	}
}

func (p *exprParser) parseMul() (int64, error) {
	left, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		op, ok := p.peekOp("*", "/", "%")
		if !ok {
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return 0, err
		}
		switch op {
		case "*":
			left *= right
		case "/":
			if right == 0 {
				return 0, fmt.Errorf("m4lite: eval: division by zero")
			}
			left /= right
		case "%":
			if right == 0 {
				return 0, fmt.Errorf("m4lite: eval: modulo by zero")
			}
			left %= right
		}
	}
}

func (p *exprParser) parseUnary() (int64, error) {
	if _, ok := p.peekOp("-"); ok {
		v, err := p.parseUnary()
		return -v, err
	}
	if _, ok := p.peekOp("!"); ok {
		v, err := p.parseUnary()
		return b2i(v == 0), err
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (int64, error) {
	p.skipSpace()
	if p.i >= len(p.src) {
		return 0, fmt.Errorf("m4lite: eval: unexpected end of expression")
	}
	if p.src[p.i] == '(' {
		p.i++
		v, err := p.parseOr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.i >= len(p.src) || p.src[p.i] != ')' {
			return 0, fmt.Errorf("m4lite: eval: missing )")
		}
		p.i++
		return v, nil
	}
	start := p.i
	for p.i < len(p.src) && p.src[p.i] >= '0' && p.src[p.i] <= '9' {
		p.i++
	}
	if start == p.i {
		return 0, fmt.Errorf("m4lite: eval: expected number at %q", string(p.src[start:]))
	}
	return strconv.ParseInt(string(p.src[start:p.i]), 10, 64)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
