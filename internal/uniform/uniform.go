// Package uniform is the shared uniform/varying lattice over forcelang
// expressions: the single home of the facts the chunk compiler
// (internal/interp) proves to optimize and the static analyzer
// (internal/vet) proves to diagnose.
//
// The lattice has two points.  A value is Uniform when every process of
// the force (or, for a loop body, every iteration a process executes)
// computes the same value; otherwise it is Varying.  Join is the
// lattice join: Varying absorbs.
//
// The package also carries the expression machinery both consumers
// share: the Ref walker, the integer-accumulator shape matcher
// (S = S + e | S = e + S | S = S - e), literal constant folding, the
// position-independent structural key used to compare subscript forms,
// and the affine-subscript disjointness proof over a one- or two-index
// iteration space (one canonical form per array, literal coefficients,
// injective on the index space: a nonzero coefficient for one index, a
// nonsingular 2x2 minor for two).
package uniform

import (
	"fmt"

	"repro/internal/forcelang"
)

// Level is a point of the two-point uniformity lattice.
type Level int

const (
	// Uniform marks a value every process (or iteration) computes
	// identically.
	Uniform Level = iota
	// Varying marks a value that may differ across processes or
	// iterations (depends on ME, a loop index, or a varying input).
	Varying
)

// Join returns the lattice join: Varying absorbs Uniform.
func (l Level) Join(o Level) Level {
	if l == Varying || o == Varying {
		return Varying
	}
	return Uniform
}

// String returns "uniform" or "varying".
func (l Level) String() string {
	if l == Varying {
		return "varying"
	}
	return "uniform"
}

// Walk visits every Ref in e, subscripts included.
func Walk(e forcelang.Expr, visit func(*forcelang.Ref)) {
	switch t := e.(type) {
	case *forcelang.Ref:
		visit(t)
		for _, s := range t.Subs {
			Walk(s, visit)
		}
	case *forcelang.Un:
		Walk(t.X, visit)
	case *forcelang.Bin:
		Walk(t.L, visit)
		Walk(t.R, visit)
	case *forcelang.Intrinsic:
		for _, a := range t.Args {
			Walk(a, visit)
		}
	}
}

// AccumDelta matches e against the accumulator shapes for scalar name
// (S = S + e, S = e + S, S = S - e), returning the delta expression and
// its sign.
func AccumDelta(name string, e forcelang.Expr) (delta forcelang.Expr, negate bool, ok bool) {
	b, isBin := e.(*forcelang.Bin)
	if !isBin {
		return nil, false, false
	}
	isSelf := func(x forcelang.Expr) bool {
		r, okRef := x.(*forcelang.Ref)
		return okRef && r.Name == name && len(r.Subs) == 0
	}
	switch b.Op {
	case forcelang.OpAdd:
		if isSelf(b.L) {
			return b.R, false, true
		}
		if isSelf(b.R) {
			return b.L, false, true
		}
	case forcelang.OpSub:
		if isSelf(b.L) {
			return b.R, true, true
		}
	}
	return nil, false, false
}

// AccumMinMax matches e against the extremum-accumulator shapes for
// scalar name (S = MAX(S, e) and the MIN twin), returning the
// contributed expression and which extremum is kept.  Only the
// self-first argument order is accepted: MAX keeps its first argument
// unless the second is *strictly* greater, so for REAL operands
// MAX(S, e) and MAX(e, S) disagree on NaN and signed-zero inputs, and
// only the self-first form composes exactly with a privately folded
// partial (contributions that never exceed S leave S bit-identical).
// Like AccumDelta this is purely syntactic; callers still check types
// and that arg does not read S.
func AccumMinMax(name string, e forcelang.Expr) (arg forcelang.Expr, isMax bool, ok bool) {
	in, isIntr := e.(*forcelang.Intrinsic)
	if !isIntr || len(in.Args) != 2 {
		return nil, false, false
	}
	switch in.Name {
	case "MAX", "MIN":
	default:
		return nil, false, false
	}
	r, okRef := in.Args[0].(*forcelang.Ref)
	if !okRef || r.Name != name || len(r.Subs) != 0 {
		return nil, false, false
	}
	return in.Args[1], in.Name == "MAX", true
}

// RefSets is the name-level footprint of a statement list: every scalar
// or array name it reads and writes.  Subscript expressions count as
// reads of their names; assignment targets and sequential-DO indices
// count as writes (a subscripted target's subscripts still read).  The
// footprint deliberately ignores element granularity — callers wanting
// element-level facts refine array conflicts through Space.Disjoint.
type RefSets struct {
	Reads  map[string]bool
	Writes map[string]bool
}

// CollectRefSets gathers the footprint of a statement list.  It models
// only the chunk-certified statement subset (assignment, IF, sequential
// DO); ok is false when anything else appears, and the caller must then
// assume an unbounded footprint.
func CollectRefSets(body []forcelang.Stmt) (RefSets, bool) {
	rs := RefSets{Reads: map[string]bool{}, Writes: map[string]bool{}}
	return rs, collectStmts(body, &rs)
}

func collectStmts(body []forcelang.Stmt, rs *RefSets) bool {
	for _, st := range body {
		if !collectStmt(st, rs) {
			return false
		}
	}
	return true
}

func collectStmt(st forcelang.Stmt, rs *RefSets) bool {
	read := func(e forcelang.Expr) {
		Walk(e, func(r *forcelang.Ref) { rs.Reads[r.Name] = true })
	}
	switch t := st.(type) {
	case *forcelang.Assign:
		rs.Writes[t.Target.Name] = true
		for _, s := range t.Target.Subs {
			read(s)
		}
		read(t.Expr)
		return true
	case *forcelang.If:
		read(t.Cond)
		return collectStmts(t.Then, rs) && collectStmts(t.Else, rs)
	case *forcelang.SeqDo:
		rs.Writes[t.Var] = true
		read(t.From)
		read(t.To)
		if t.Step != nil {
			read(t.Step)
		}
		return collectStmts(t.Body, rs)
	default:
		return false
	}
}

// RefersTo reports whether e reads the scalar name anywhere.
func RefersTo(e forcelang.Expr, name string) bool {
	found := false
	Walk(e, func(r *forcelang.Ref) {
		if r.Name == name && len(r.Subs) == 0 {
			found = true
		}
	})
	return found
}

// ConstInt evaluates a literal-only INTEGER expression.
func ConstInt(e forcelang.Expr) (int64, bool) {
	switch t := e.(type) {
	case *forcelang.IntLit:
		return t.Value, true
	case *forcelang.Un:
		if !t.Neg {
			return 0, false
		}
		v, ok := ConstInt(t.X)
		return -v, ok
	case *forcelang.Bin:
		l, lok := ConstInt(t.L)
		r, rok := ConstInt(t.R)
		if !lok || !rok {
			return 0, false
		}
		switch t.Op {
		case forcelang.OpAdd:
			return l + r, true
		case forcelang.OpSub:
			return l - r, true
		case forcelang.OpMul:
			return l * r, true
		}
	}
	return 0, false
}

// Canon renders e to a position-independent structural key, used to
// compare subscript forms for identity.
func Canon(e forcelang.Expr) string {
	switch t := e.(type) {
	case *forcelang.IntLit:
		return fmt.Sprintf("i%d", t.Value)
	case *forcelang.RealLit:
		return fmt.Sprintf("r%v", t.Value)
	case *forcelang.BoolLit:
		return fmt.Sprintf("l%v", t.Value)
	case *forcelang.Ref:
		s := "v" + t.Name
		if len(t.Subs) > 0 {
			s += "("
			for _, sub := range t.Subs {
				s += Canon(sub) + ","
			}
			s += ")"
		}
		return s
	case *forcelang.Un:
		if t.Neg {
			return "neg(" + Canon(t.X) + ")"
		}
		return "not(" + Canon(t.X) + ")"
	case *forcelang.Bin:
		return fmt.Sprintf("b%d(%s,%s)", int(t.Op), Canon(t.L), Canon(t.R))
	case *forcelang.Intrinsic:
		s := "f" + t.Name + "("
		for _, a := range t.Args {
			s += Canon(a) + ","
		}
		return s + ")"
	default:
		return fmt.Sprintf("?%T", e)
	}
}

// Space is a one- or two-index iteration space over which affine
// subscript forms are decomposed and proven injective.  Inner is ""
// for a single-index space.  IntScalar reports whether a name (other
// than the indices) denotes an INTEGER scalar whose value is identical
// for every iteration the decomposed form is evaluated in — the caller
// encodes its own written-set and parameter-aliasing rules there.
type Space struct {
	Outer, Inner string
	IntScalar    func(name string) bool
}

// Coef decomposes e as ci*Outer + cj*Inner + rest, requiring literal
// coefficients and a rest that reads only scalars IntScalar admits (so
// the rest is identical for every iteration).
func (sp *Space) Coef(e forcelang.Expr) (ci, cj int64, ok bool) {
	switch t := e.(type) {
	case *forcelang.IntLit:
		return 0, 0, true
	case *forcelang.Ref:
		if len(t.Subs) > 0 {
			return 0, 0, false
		}
		if t.Name == sp.Outer {
			return 1, 0, true
		}
		if sp.Inner != "" && t.Name == sp.Inner {
			return 0, 1, true
		}
		if sp.IntScalar != nil && sp.IntScalar(t.Name) {
			return 0, 0, true
		}
		return 0, 0, false
	case *forcelang.Un:
		if !t.Neg {
			return 0, 0, false
		}
		ci, cj, ok = sp.Coef(t.X)
		return -ci, -cj, ok
	case *forcelang.Bin:
		switch t.Op {
		case forcelang.OpAdd, forcelang.OpSub:
			li, lj, lok := sp.Coef(t.L)
			ri, rj, rok := sp.Coef(t.R)
			if !lok || !rok {
				return 0, 0, false
			}
			if t.Op == forcelang.OpSub {
				return li - ri, lj - rj, true
			}
			return li + ri, lj + rj, true
		case forcelang.OpMul:
			if k, kok := ConstInt(t.L); kok {
				ri, rj, rok := sp.Coef(t.R)
				return k * ri, k * rj, rok
			}
			if k, kok := ConstInt(t.R); kok {
				li, lj, lok := sp.Coef(t.L)
				return k * li, k * lj, lok
			}
		}
	}
	return 0, 0, false
}

// Disjoint checks the one-form + affine + injective conditions over all
// recorded accesses of one array: every access must use one identical
// subscript form (by Canon), each subscript must decompose affinely
// over the space, and the form must map distinct index tuples to
// distinct elements — a nonzero index coefficient for a one-index
// space, some linearly independent pair of subscript rows for two.
func (sp *Space) Disjoint(refs []*forcelang.Ref) bool {
	form := ""
	var coefs [][2]int64
	for ri, r := range refs {
		key := ""
		for _, s := range r.Subs {
			key += Canon(s) + ";"
		}
		if ri == 0 {
			form = key
			for _, s := range r.Subs {
				ci, cj, ok := sp.Coef(s)
				if !ok {
					return false
				}
				coefs = append(coefs, [2]int64{ci, cj})
			}
			continue
		}
		if key != form {
			// Two distinct subscript forms (e.g. A(I) and A(I+1)) can
			// collide across iterations.
			return false
		}
	}
	if sp.Inner == "" {
		for _, c := range coefs {
			if c[0] != 0 {
				return true
			}
		}
		return false
	}
	// Two loop indices: some pair of subscript rows must be linearly
	// independent for the index pair to map injectively to elements.
	for a := 0; a < len(coefs); a++ {
		for b := a + 1; b < len(coefs); b++ {
			if coefs[a][0]*coefs[b][1]-coefs[a][1]*coefs[b][0] != 0 {
				return true
			}
		}
	}
	return false
}
