package uniform

import (
	"testing"

	"repro/internal/forcelang"
)

func intLit(v int64) *forcelang.IntLit { return &forcelang.IntLit{Value: v} }
func ref(name string, subs ...forcelang.Expr) *forcelang.Ref {
	return &forcelang.Ref{Name: name, Subs: subs}
}
func bin(op forcelang.BinOp, l, r forcelang.Expr) *forcelang.Bin {
	return &forcelang.Bin{Op: op, L: l, R: r}
}

func TestLevelJoin(t *testing.T) {
	if Uniform.Join(Uniform) != Uniform {
		t.Error("uniform join uniform should be uniform")
	}
	for _, pair := range [][2]Level{{Uniform, Varying}, {Varying, Uniform}, {Varying, Varying}} {
		if pair[0].Join(pair[1]) != Varying {
			t.Errorf("%v join %v should be varying", pair[0], pair[1])
		}
	}
	if Uniform.String() != "uniform" || Varying.String() != "varying" {
		t.Error("level strings wrong")
	}
}

func TestWalkVisitsSubscripts(t *testing.T) {
	// A(I+1) * MOD(J, 2) - (-K)
	e := bin(forcelang.OpSub,
		bin(forcelang.OpMul,
			ref("A", bin(forcelang.OpAdd, ref("I"), intLit(1))),
			&forcelang.Intrinsic{Name: "MOD", Args: []forcelang.Expr{ref("J"), intLit(2)}}),
		&forcelang.Un{Neg: true, X: ref("K")})
	var names []string
	Walk(e, func(r *forcelang.Ref) { names = append(names, r.Name) })
	want := map[string]bool{"A": true, "I": true, "J": true, "K": true}
	if len(names) != 4 {
		t.Fatalf("visited %v, want 4 refs", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected ref %s", n)
		}
	}
}

func TestAccumDelta(t *testing.T) {
	// S = S + E
	if d, neg, ok := AccumDelta("S", bin(forcelang.OpAdd, ref("S"), ref("E"))); !ok || neg || d.(*forcelang.Ref).Name != "E" {
		t.Error("S = S + E should match with positive delta E")
	}
	// S = E + S
	if _, neg, ok := AccumDelta("S", bin(forcelang.OpAdd, ref("E"), ref("S"))); !ok || neg {
		t.Error("S = E + S should match with positive delta")
	}
	// S = S - E
	if _, neg, ok := AccumDelta("S", bin(forcelang.OpSub, ref("S"), ref("E"))); !ok || !neg {
		t.Error("S = S - E should match with negated delta")
	}
	// S = E - S is not an accumulator
	if _, _, ok := AccumDelta("S", bin(forcelang.OpSub, ref("E"), ref("S"))); ok {
		t.Error("S = E - S should not match")
	}
	// S(1) = S(1) + E: subscripted self is not the scalar shape
	if _, _, ok := AccumDelta("S", bin(forcelang.OpAdd, ref("S", intLit(1)), ref("E"))); ok {
		t.Error("subscripted target should not match")
	}
}

func TestRefersTo(t *testing.T) {
	e := bin(forcelang.OpAdd, ref("A", ref("S")), intLit(1))
	if !RefersTo(e, "S") {
		t.Error("S read inside a subscript should be found")
	}
	if RefersTo(e, "A") {
		t.Error("A is an array access, not a scalar read")
	}
}

func TestConstInt(t *testing.T) {
	// 2*3 - (-4) = 10
	e := bin(forcelang.OpSub, bin(forcelang.OpMul, intLit(2), intLit(3)), &forcelang.Un{Neg: true, X: intLit(4)})
	if v, ok := ConstInt(e); !ok || v != 10 {
		t.Errorf("got %d,%v want 10,true", v, ok)
	}
	if _, ok := ConstInt(ref("I")); ok {
		t.Error("a variable is not constant")
	}
	if _, ok := ConstInt(bin(forcelang.OpDiv, intLit(4), intLit(2))); ok {
		t.Error("division is not folded (faults are runtime semantics)")
	}
}

func TestCanonPositionIndependent(t *testing.T) {
	a := bin(forcelang.OpAdd, ref("I"), intLit(1))
	b := bin(forcelang.OpAdd, ref("I"), intLit(1))
	b.Line = 99
	if Canon(a) != Canon(b) {
		t.Error("identical forms at different lines must share a key")
	}
	if Canon(a) == Canon(bin(forcelang.OpAdd, ref("I"), intLit(2))) {
		t.Error("distinct forms must not collide")
	}
}

func intScalars(names ...string) func(string) bool {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return func(n string) bool { return set[n] }
}

func TestCoef(t *testing.T) {
	sp := &Space{Outer: "I", Inner: "J", IntScalar: intScalars("N")}
	// 2*I - 3*J + N + 1
	e := bin(forcelang.OpAdd,
		bin(forcelang.OpSub,
			bin(forcelang.OpMul, intLit(2), ref("I")),
			bin(forcelang.OpMul, intLit(3), ref("J"))),
		bin(forcelang.OpAdd, ref("N"), intLit(1)))
	ci, cj, ok := sp.Coef(e)
	if !ok || ci != 2 || cj != -3 {
		t.Errorf("got (%d,%d,%v) want (2,-3,true)", ci, cj, ok)
	}
	// A remainder reading a non-admitted scalar fails.
	if _, _, ok := sp.Coef(bin(forcelang.OpAdd, ref("I"), ref("X"))); ok {
		t.Error("remainder with unknown scalar should not decompose")
	}
	// I*J is not affine.
	if _, _, ok := sp.Coef(bin(forcelang.OpMul, ref("I"), ref("J"))); ok {
		t.Error("index product should not decompose")
	}
}

func TestDisjoint(t *testing.T) {
	one := &Space{Outer: "I", IntScalar: intScalars("N")}
	// A(I+1) everywhere: injective.
	form := func() *forcelang.Ref { return ref("A", bin(forcelang.OpAdd, ref("I"), intLit(1))) }
	if !one.Disjoint([]*forcelang.Ref{form(), form()}) {
		t.Error("A(I+1) is injective in I")
	}
	// A(N): no index coefficient — every iteration hits one element.
	if one.Disjoint([]*forcelang.Ref{ref("A", ref("N"))}) {
		t.Error("A(N) is not disjoint across iterations")
	}
	// Mixed forms A(I) and A(I+1) collide across iterations.
	if one.Disjoint([]*forcelang.Ref{ref("A", ref("I")), form()}) {
		t.Error("mixed forms must stay non-disjoint")
	}
	two := &Space{Outer: "I", Inner: "J"}
	// B(I, J): identity map, injective.
	if !two.Disjoint([]*forcelang.Ref{ref("B", ref("I"), ref("J"))}) {
		t.Error("B(I,J) is injective in (I,J)")
	}
	// B(I+J, I+J): singular — (0,1) and (1,0) collide.
	sum := func() forcelang.Expr { return bin(forcelang.OpAdd, ref("I"), ref("J")) }
	if two.Disjoint([]*forcelang.Ref{ref("B", sum(), sum())}) {
		t.Error("B(I+J,I+J) is singular, not injective")
	}
}
