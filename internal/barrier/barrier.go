// Package barrier implements the Force barrier construct (paper §3.4) and
// the family of barrier algorithms compared in the companion report the
// paper cites as [AJ87] (Arenstorf & Jordan, "Comparing Barrier
// Algorithms").
//
// Force barrier semantics are stronger than a plain rendezvous: at a
// barrier, all processes wait for each other; one arbitrary process is then
// allowed to execute the *barrier section*; all other processes stay
// suspended until that single process leaves the section, after which the
// whole force proceeds.  A barrier with a nil section degenerates to the
// usual rendezvous.
//
// Every implementation in this package is reusable (the same barrier object
// is used episode after episode) and guarantees that no process can enter
// episode k+1 before every process has left episode k — the property the
// paper's BARWIN/BARWOT lock pair exists to provide.
//
// # Fault containment
//
// A barrier is where a failing force wedges: a process that dies before
// arriving leaves its peers waiting forever.  Every implementation
// therefore observes an optional poison cell (SetPoison): all waits —
// the spin loops of the flag-based algorithms and the lock waits of the
// two-lock relay — go through the shared bounded spin-then-park policy
// of internal/poison, and a waiter that observes poison unwinds with
// poison.Abort instead of waiting out an episode that can never
// complete.  A poisoned barrier's internal state is unspecified; the
// runtime discards and rebuilds barriers after an aborted run.
package barrier

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/lock"
	"repro/internal/poison"
)

// Barrier is a reusable Force barrier for a fixed number of processes.
//
// Sync blocks until all N() processes of the episode have arrived, runs
// section (if non-nil) in exactly one of them, and releases everyone only
// after the section returns.  pid must be in [0, N()) and each pid must
// participate exactly once per episode.  Within one episode every process
// must agree on whether a section is supplied (the Force's SPMD model
// guarantees this: a barrier is a single program statement).
type Barrier interface {
	Sync(pid int, section func())
	// N returns the number of participating processes.
	N() int
}

// Wait is the sectionless rendezvous: Wait(b, pid) == b.Sync(pid, nil).
func Wait(b Barrier, pid int) { b.Sync(pid, nil) }

// Poisonable is implemented by barriers that observe a poison cell: a
// Sync blocked while the cell is poisoned unwinds with poison.Abort
// instead of waiting forever.  Every algorithm in this package
// implements it.
type Poisonable interface {
	// SetPoison binds the barrier to a cell (nil unbinds).  It must not
	// be called concurrently with Sync.
	SetPoison(c *poison.Cell)
}

// SetPoison binds b to the poison cell when b supports it.
func SetPoison(b Barrier, c *poison.Cell) {
	if p, ok := b.(Poisonable); ok {
		p.SetPoison(c)
	}
}

// Kind names a barrier algorithm.
type Kind int

const (
	// TwoLock is the paper's own algorithm: an arrival counter ZZNBAR
	// guarded by the BARWIN lock during the entry phase and by the BARWOT
	// lock during the exit phase (§4.2, Barrier and the Selfsched DO
	// expansion listing).
	TwoLock Kind = iota
	// CentralSense is a central counter with sense reversal; arrivals
	// decrement atomically and spin on a shared sense flag.
	CentralSense
	// Tree is a combining-tree barrier: arrivals propagate up a k-ary
	// tree of counters, release propagates down.
	Tree
	// Tournament pairs processes in log2(n) rounds; statically determined
	// winners advance and the champion releases everyone.
	Tournament
	// Dissemination runs ceil(log2 n) rounds of pairwise signalling after
	// which every process knows all have arrived; pid 0 is elected to run
	// the barrier section, with an extra release phase.
	Dissemination
	// Butterfly is Brooks' barrier from the [AJ87] comparison: in round
	// r, process p exchanges with partner p XOR 2^r.  It requires a
	// power-of-two force; New falls back to Dissemination otherwise
	// (the generalization [AJ87] itself discusses).
	Butterfly
	// CondBroadcast parks waiters on a sync.Cond; the "system call"
	// barrier built directly on scheduler services (Cray category).
	CondBroadcast
)

var kindNames = map[Kind]string{
	TwoLock:       "twolock",
	CentralSense:  "sense",
	Tree:          "tree",
	Tournament:    "tournament",
	Dissemination: "dissemination",
	Butterfly:     "butterfly",
	CondBroadcast: "cond",
}

// String returns the short algorithm name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("barrier.Kind(%d)", int(k))
}

// kindGoNames are the Go identifiers of the kinds, for code generators
// that emit barrier.<GoName> references.
var kindGoNames = map[Kind]string{
	TwoLock:       "TwoLock",
	CentralSense:  "CentralSense",
	Tree:          "Tree",
	Tournament:    "Tournament",
	Dissemination: "Dissemination",
	Butterfly:     "Butterfly",
	CondBroadcast: "CondBroadcast",
}

// GoName returns the kind's Go identifier within this package, the form
// code generators emit.
func (k Kind) GoName() string {
	if s, ok := kindGoNames[k]; ok {
		return s
	}
	return "TwoLock"
}

// ParseKind converts a short name into a Kind.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("barrier: unknown kind %q", s)
}

// Kinds lists all implemented algorithms in presentation order.
func Kinds() []Kind {
	return []Kind{TwoLock, CentralSense, Tree, Tournament, Dissemination, Butterfly, CondBroadcast}
}

// New constructs a barrier of the given kind for n processes.  Lock-based
// algorithms receive their locks from factory; algorithms that do not use
// locks ignore it.  A nil factory defaults to system locks.
func New(k Kind, n int, factory func() lock.Lock) Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("barrier: n = %d, need n >= 1", n))
	}
	if factory == nil {
		factory = lock.Factory(lock.System)
	}
	switch k {
	case TwoLock:
		return NewTwoLock(n, factory)
	case CentralSense:
		return NewCentralSense(n)
	case Tree:
		return NewTree(n, 4)
	case Tournament:
		return NewTournament(n)
	case Dissemination:
		return NewDissemination(n)
	case Butterfly:
		if n&(n-1) != 0 {
			// Brooks' pairing needs a power of two; dissemination is
			// its general-n counterpart.
			return NewDissemination(n)
		}
		return NewButterfly(n)
	case CondBroadcast:
		return NewCondBroadcast(n)
	default:
		panic(fmt.Sprintf("barrier: unknown kind %d", int(k)))
	}
}

// padded64 keeps a per-process counter on its own cache line so spinning
// neighbours do not false-share.
type padded64 struct {
	v uint64
	_ [56]byte
}

// TwoLockBarrier is the paper's barrier.  A shared arrival counter ZZNBAR
// is protected by two locks: BARWIN is open (unlocked) while the barrier
// fills, BARWOT while it drains; at every instant at most one of the two is
// open and ownership relays from process to process.
//
// Entry (the paper's "loop entry code"): acquire BARWIN, increment ZZNBAR;
// the last arrival keeps BARWIN closed — so no process can start the next
// episode — runs the barrier section, and opens BARWOT; every earlier
// arrival re-opens BARWIN and queues on BARWOT.
//
// Exit (the paper's "loop exit code"): acquire BARWOT, decrement ZZNBAR;
// the last to leave re-opens BARWIN for the next episode, leaving BARWOT
// closed; everyone else relays BARWOT onward.
type TwoLockBarrier struct {
	n      int
	barwin lock.Lock
	barwot lock.Lock
	zznbar int // guarded by whichever of the two locks is open
	pc     *poison.Cell
}

var _ Barrier = (*TwoLockBarrier)(nil)
var _ Poisonable = (*TwoLockBarrier)(nil)

// SetPoison binds the barrier's lock waits to the cell.  The BARWIN and
// BARWOT acquisitions are *condition* waits (ownership relays from
// process to process), so they go through lock.Acquire rather than a
// plain Lock.
func (b *TwoLockBarrier) SetPoison(c *poison.Cell) { b.pc = c }

// NewTwoLock builds the paper's two-lock barrier for n processes using
// locks from factory.
func NewTwoLock(n int, factory func() lock.Lock) *TwoLockBarrier {
	b := &TwoLockBarrier{n: n, barwin: factory(), barwot: factory()}
	// BARWOT starts closed: the barrier begins in the filling phase.
	b.barwot.Lock()
	return b
}

// N returns the number of participants.
func (b *TwoLockBarrier) N() int { return b.n }

// Sync implements the entry/section/exit protocol from the paper's
// Selfsched DO expansion listing.
func (b *TwoLockBarrier) Sync(pid int, section func()) {
	// Entry phase: report arrival under BARWIN.
	lock.Acquire(b.barwin, b.pc)
	b.zznbar++
	if b.zznbar == b.n {
		// Last arrival: every other process is queued on BARWOT (or
		// about to be).  Run the barrier section while they are
		// suspended, then open the drain.  BARWIN stays closed.
		if section != nil {
			section()
		}
		b.barwot.Unlock()
	} else {
		b.barwin.Unlock()
	}
	// Exit phase: report departure under BARWOT.
	lock.Acquire(b.barwot, b.pc)
	b.zznbar--
	if b.zznbar == 0 {
		// Last to leave re-opens the entry phase for the next
		// episode; BARWOT stays closed behind it.
		b.barwin.Unlock()
	} else {
		b.barwot.Unlock()
	}
}

// CentralSenseBarrier is the classic central-counter, sense-reversing
// barrier: arrivals decrement a shared counter; the last arrival runs the
// section, resets the counter and flips the global sense; everyone else
// spins on the sense.
type CentralSenseBarrier struct {
	n     int
	count atomic.Int64
	sense atomic.Uint64
	epoch []padded64 // per-pid episode number; entry pid only
	pc    *poison.Cell
}

var _ Barrier = (*CentralSenseBarrier)(nil)
var _ Poisonable = (*CentralSenseBarrier)(nil)

// SetPoison binds the sense wait to the cell.
func (b *CentralSenseBarrier) SetPoison(c *poison.Cell) { b.pc = c }

// NewCentralSense builds a sense-reversing central barrier for n processes.
func NewCentralSense(n int) *CentralSenseBarrier {
	b := &CentralSenseBarrier{n: n, epoch: make([]padded64, n)}
	b.count.Store(int64(n))
	return b
}

// N returns the number of participants.
func (b *CentralSenseBarrier) N() int { return b.n }

// Sync performs one sense-reversed episode.
func (b *CentralSenseBarrier) Sync(pid int, section func()) {
	b.epoch[pid].v++
	target := b.epoch[pid].v
	if b.count.Add(-1) == 0 {
		if section != nil {
			section()
		}
		b.count.Store(int64(b.n))
		b.sense.Store(target)
		return
	}
	poison.Wait(b.pc, func() bool { return b.sense.Load() == target })
}

// TreeBarrier is a combining-tree barrier: processes are grouped into
// fan-in sized teams; the last arrival at each node climbs to the parent,
// and the process reaching the root runs the section.  The release wave
// resets every node's counter and then publishes the new episode number to
// every node, leaves first, so a released process re-entering the next
// episode always observes a fresh leaf before any ancestor it may wait on.
type TreeBarrier struct {
	n     int
	fanIn int
	nodes []treeNode
	epoch []padded64 // per-pid episode number; entry pid only
	pc    *poison.Cell
}

var _ Poisonable = (*TreeBarrier)(nil)

// SetPoison binds the node waits to the cell.
func (b *TreeBarrier) SetPoison(c *poison.Cell) { b.pc = c }

type treeNode struct {
	count  atomic.Int64
	expect int64
	parent int           // -1 at root
	sense  atomic.Uint64 // completed-episode number
	_      [32]byte
}

var _ Barrier = (*TreeBarrier)(nil)

// TreeTopology computes the combining-tree layout the tree barrier uses
// for n processes with the given fan-in (values below 2 are raised to 2):
// node 0..len-1 are laid out leaves first, parent[i] is -1 at the root,
// and expect[i] counts the arrivals node i absorbs (processes at a leaf,
// children at an interior node).  Process p arrives at leaf p/fanIn.  The
// layout is shared with internal/reduce, whose combining-tree reduction
// climbs the same topology.
func TreeTopology(n, fanIn int) (parent []int, expect []int64) {
	if fanIn < 2 {
		fanIn = 2
	}
	type layer struct{ start, size int }
	var layers []layer
	size := (n + fanIn - 1) / fanIn
	total := 0
	for {
		layers = append(layers, layer{total, size})
		total += size
		if size == 1 {
			break
		}
		size = (size + fanIn - 1) / fanIn
	}
	parent = make([]int, total)
	expect = make([]int64, total)
	for li, l := range layers {
		for i := 0; i < l.size; i++ {
			idx := l.start + i
			if li+1 < len(layers) {
				parent[idx] = layers[li+1].start + i/fanIn
			} else {
				parent[idx] = -1
			}
		}
	}
	// Expected arrivals: leaves count their processes, interior nodes
	// their children.
	for p := 0; p < n; p++ {
		expect[p/fanIn]++
	}
	for i := range parent {
		if p := parent[i]; p >= 0 {
			expect[p]++
		}
	}
	return parent, expect
}

// NewTree builds a combining-tree barrier for n processes with the given
// fan-in (values below 2 are raised to 2).
func NewTree(n, fanIn int) *TreeBarrier {
	if fanIn < 2 {
		fanIn = 2
	}
	parent, expect := TreeTopology(n, fanIn)
	b := &TreeBarrier{n: n, fanIn: fanIn, nodes: make([]treeNode, len(parent)), epoch: make([]padded64, n)}
	for i := range b.nodes {
		b.nodes[i].parent = parent[i]
		b.nodes[i].expect = expect[i]
		b.nodes[i].count.Store(expect[i])
	}
	return b
}

// N returns the number of participants.
func (b *TreeBarrier) N() int { return b.n }

// Sync climbs the combining tree; losers wait for their node to publish the
// current episode, the root winner runs the section and performs the
// release wave.
func (b *TreeBarrier) Sync(pid int, section func()) {
	b.epoch[pid].v++
	target := b.epoch[pid].v
	node := pid / b.fanIn
	for {
		if b.nodes[node].count.Add(-1) > 0 {
			// Not the last arrival here: wait for this node to see
			// the current episode's release.  The node's sense may
			// lag behind (previous release wave still in flight);
			// equality on the episode number tolerates that.
			poison.Wait(b.pc, func() bool { return b.nodes[node].sense.Load() == target })
			return
		}
		parent := b.nodes[node].parent
		if parent < 0 {
			// Reached the root: the whole force has arrived.
			if section != nil {
				section()
			}
			// Reset all counters before publishing the episode
			// anywhere, then publish leaves-upward (ascending
			// index) so re-entrants always find fresh leaves.
			for i := range b.nodes {
				b.nodes[i].count.Store(b.nodes[i].expect)
			}
			for i := range b.nodes {
				b.nodes[i].sense.Add(1)
			}
			return
		}
		node = parent
	}
}

// TournamentBarrier plays ceil(log2 n) statically scheduled rounds.  In
// round r, a process whose pid is a multiple of 2^(r+1) is the winner and
// waits for the arrival flag of loser pid+2^r (when that pid exists); the
// loser posts its flag and then waits for the champion's release.  Pid 0
// wins every round, runs the section, and publishes the release episode.
type TournamentBarrier struct {
	n       int
	rounds  int
	arrive  [][]padded64 // [round][pid], written only by pid
	release atomic.Uint64
	epoch   []padded64
	pc      *poison.Cell
}

var _ Barrier = (*TournamentBarrier)(nil)
var _ Poisonable = (*TournamentBarrier)(nil)

// SetPoison binds the round and release waits to the cell.
func (b *TournamentBarrier) SetPoison(c *poison.Cell) { b.pc = c }

// NewTournament builds a tournament barrier for n processes.
func NewTournament(n int) *TournamentBarrier {
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	b := &TournamentBarrier{n: n, rounds: rounds, epoch: make([]padded64, n)}
	b.arrive = make([][]padded64, rounds)
	for r := range b.arrive {
		b.arrive[r] = make([]padded64, n)
	}
	return b
}

// N returns the number of participants.
func (b *TournamentBarrier) N() int { return b.n }

// Sync plays the tournament for one episode.
func (b *TournamentBarrier) Sync(pid int, section func()) {
	b.epoch[pid].v++
	target := b.epoch[pid].v
	for r := 0; r < b.rounds; r++ {
		bit := 1 << r
		if pid&((bit<<1)-1) == 0 {
			// Winner of round r: absorb the loser's arrival if a
			// loser exists at this population.
			loser := pid + bit
			if loser < b.n {
				slot := &b.arrive[r][loser]
				poison.Wait(b.pc, func() bool { return atomic.LoadUint64(&slot.v) == target })
			}
			continue
		}
		// Loser: post arrival, then wait out the episode.
		atomic.StoreUint64(&b.arrive[r][pid].v, target)
		poison.Wait(b.pc, func() bool { return b.release.Load() == target })
		return
	}
	// Champion (pid 0): the force has arrived.
	if section != nil {
		section()
	}
	b.release.Store(target)
}

// DisseminationBarrier runs ceil(log2 n) rounds in which process p signals
// process (p+2^r) mod n and waits for a signal from (p-2^r) mod n; after
// the rounds every process has transitively heard from all others.  Flags
// are counting (monotone), which makes the barrier reusable under arbitrary
// process skew: an early signal from a fast neighbour's next episode simply
// over-satisfies the >= test.  Because no process naturally owns the
// barrier, the Force barrier section is provided by electing pid 0 and
// adding a release phase.
type DisseminationBarrier struct {
	n      int
	rounds int
	flags  [][]atomic.Uint64 // [round][pid]
	relSns atomic.Uint64
	epoch  []padded64
	pc     *poison.Cell
}

var _ Barrier = (*DisseminationBarrier)(nil)
var _ Poisonable = (*DisseminationBarrier)(nil)

// SetPoison binds the signalling waits to the cell.
func (b *DisseminationBarrier) SetPoison(c *poison.Cell) { b.pc = c }

// NewDissemination builds a dissemination barrier for n processes.
func NewDissemination(n int) *DisseminationBarrier {
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	b := &DisseminationBarrier{n: n, rounds: rounds, epoch: make([]padded64, n)}
	b.flags = make([][]atomic.Uint64, rounds)
	for r := range b.flags {
		b.flags[r] = make([]atomic.Uint64, n)
	}
	return b
}

// N returns the number of participants.
func (b *DisseminationBarrier) N() int { return b.n }

// Sync runs the signalling rounds, then the optional elected section.
func (b *DisseminationBarrier) Sync(pid int, section func()) {
	b.epoch[pid].v++
	episode := b.epoch[pid].v
	for r := 0; r < b.rounds; r++ {
		to := (pid + 1<<r) % b.n
		b.flags[r][to].Add(1)
		slot := &b.flags[r][pid]
		poison.Wait(b.pc, func() bool { return slot.Load() >= episode })
	}
	if section == nil {
		return
	}
	if pid == 0 {
		section()
		b.relSns.Store(episode)
		return
	}
	poison.Wait(b.pc, func() bool { return b.relSns.Load() >= episode })
}

// ButterflyBarrier is Brooks' algorithm as compared in [AJ87]: log2(n)
// rounds in which process p and its partner p XOR 2^r signal each other
// with counting flags.  Unlike dissemination's one-directional ring
// signalling, every exchange is symmetric.  n must be a power of two.
type ButterflyBarrier struct {
	n      int
	rounds int
	flags  [][]atomic.Uint64 // [round][pid]
	relSns atomic.Uint64
	epoch  []padded64
	pc     *poison.Cell
}

var _ Barrier = (*ButterflyBarrier)(nil)
var _ Poisonable = (*ButterflyBarrier)(nil)

// SetPoison binds the exchange waits to the cell.
func (b *ButterflyBarrier) SetPoison(c *poison.Cell) { b.pc = c }

// NewButterfly builds a butterfly barrier; n must be a power of two.
func NewButterfly(n int) *ButterflyBarrier {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("barrier: butterfly requires a power-of-two force, got %d", n))
	}
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	b := &ButterflyBarrier{n: n, rounds: rounds, epoch: make([]padded64, n)}
	b.flags = make([][]atomic.Uint64, rounds)
	for r := range b.flags {
		b.flags[r] = make([]atomic.Uint64, n)
	}
	return b
}

// N returns the number of participants.
func (b *ButterflyBarrier) N() int { return b.n }

// Sync runs the symmetric exchange rounds, then the optional elected
// section (pid 0, as for dissemination).
func (b *ButterflyBarrier) Sync(pid int, section func()) {
	b.epoch[pid].v++
	episode := b.epoch[pid].v
	for r := 0; r < b.rounds; r++ {
		partner := pid ^ (1 << r)
		b.flags[r][partner].Add(1)
		slot := &b.flags[r][pid]
		poison.Wait(b.pc, func() bool { return slot.Load() >= episode })
	}
	if section == nil {
		return
	}
	if pid == 0 {
		section()
		b.relSns.Store(episode)
		return
	}
	poison.Wait(b.pc, func() bool { return b.relSns.Load() >= episode })
}

// CondBroadcastBarrier parks waiters on a condition variable — the shape a
// purely system-call-based implementation (the paper's Cray lock category)
// takes when the scheduler, not spinning, suspends waiting processes.
type CondBroadcastBarrier struct {
	n       int
	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	episode uint64
	pc      *poison.Cell
	unsub   func()
}

var _ Barrier = (*CondBroadcastBarrier)(nil)
var _ Poisonable = (*CondBroadcastBarrier)(nil)

// SetPoison binds the parked waiters to the cell.  Waiters park on the
// condition variable, which a poison cannot close, so the barrier
// subscribes a broadcast hook; rebinding (or binding nil) cancels the
// previous subscription.
func (b *CondBroadcastBarrier) SetPoison(c *poison.Cell) {
	b.unsub = poison.Rebind(b.unsub, c, &b.mu, b.cond)
	b.pc = c
}

// NewCondBroadcast builds a condition-variable barrier for n processes.
func NewCondBroadcast(n int) *CondBroadcastBarrier {
	b := &CondBroadcastBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// N returns the number of participants.
func (b *CondBroadcastBarrier) N() int { return b.n }

// Sync parks on the condition variable until the episode advances, or
// unwinds with poison.Abort when the force is poisoned first.
func (b *CondBroadcastBarrier) Sync(pid int, section func()) {
	b.mu.Lock()
	if b.pc.Poisoned() {
		b.mu.Unlock()
		b.pc.Check()
	}
	e := b.episode
	b.count++
	if b.count == b.n {
		// Release under a defer: a panicking barrier section (it is
		// user code) must not leave mu held, or the parked waiters
		// could never drain even after the poison broadcast.  The
		// episode advances only on a *completed* section, so a panic
		// keeps the waiters suspended — they loop back into cond.Wait
		// on the spurious broadcast and unwind only when the panic
		// reaches the job boundary and poisons the force, exactly like
		// every other barrier kind.
		b.count = 0
		completed := false
		defer func() {
			if completed {
				b.episode++
			}
			b.mu.Unlock()
			b.cond.Broadcast()
		}()
		if section != nil {
			section()
		}
		completed = true
		return
	}
	for b.episode == e && !b.pc.Poisoned() {
		b.cond.Wait()
	}
	poisoned := b.episode == e // only a poison wake leaves the episode unchanged
	b.mu.Unlock()
	if poisoned {
		b.pc.Check()
	}
}

// Rounds reports the number of signalling rounds a log-depth algorithm
// uses for n processes (useful in benchmarks and documentation).
func Rounds(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
