package barrier

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/lock"
)

// runForce launches n goroutines as force processes and waits for all.
func runForce(n int, body func(pid int)) {
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			body(pid)
		}(p)
	}
	wg.Wait()
}

func TestKindStringAndParse(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind(nope) succeeded")
	}
	if got := Kind(77).String(); got != "barrier.Kind(77)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with n=0 did not panic")
		}
	}()
	New(TwoLock, 0, nil)
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with unknown kind did not panic")
		}
	}()
	New(Kind(42), 4, nil)
}

// TestRendezvous checks the fundamental barrier property over many
// episodes: after episode e, every process observes every other process's
// episode-e write.
func TestRendezvous(t *testing.T) {
	const (
		np       = 7
		episodes = 50
	)
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			b := New(k, np, lock.Factory(lock.TTAS))
			if b.N() != np {
				t.Fatalf("N() = %d, want %d", b.N(), np)
			}
			var stage [np]atomic.Int64
			var failed atomic.Bool
			runForce(np, func(pid int) {
				rng := rand.New(rand.NewSource(int64(pid)))
				for e := 1; e <= episodes; e++ {
					// Random skew before announcing arrival.
					for i := 0; i < rng.Intn(200); i++ {
						runtime.Gosched()
					}
					stage[pid].Store(int64(e))
					b.Sync(pid, nil)
					for q := 0; q < np; q++ {
						if got := stage[q].Load(); got < int64(e) {
							failed.Store(true)
						}
					}
					b.Sync(pid, nil) // separate read phase from next write
				}
			})
			if failed.Load() {
				t.Error("a process passed the barrier before all had arrived")
			}
		})
	}
}

// TestSectionRunsExactlyOnce verifies the Force barrier-section semantics:
// per episode the section runs exactly once, and every process observes its
// effect after release.
func TestSectionRunsExactlyOnce(t *testing.T) {
	const (
		np       = 6
		episodes = 40
	)
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			b := New(k, np, lock.Factory(lock.TTAS))
			var sectionRuns atomic.Int64
			var wrong atomic.Int64
			runForce(np, func(pid int) {
				for e := 1; e <= episodes; e++ {
					b.Sync(pid, func() { sectionRuns.Add(1) })
					if got := sectionRuns.Load(); got != int64(e) {
						wrong.Add(1)
					}
					b.Sync(pid, nil)
				}
			})
			if got := sectionRuns.Load(); got != episodes {
				t.Errorf("section ran %d times, want %d", got, episodes)
			}
			if w := wrong.Load(); w != 0 {
				t.Errorf("%d post-barrier observations saw a wrong section count", w)
			}
		})
	}
}

// TestSectionExclusion verifies no process leaves the barrier while the
// section is still executing.
func TestSectionExclusion(t *testing.T) {
	const np = 5
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			b := New(k, np, lock.Factory(lock.System))
			var inSection atomic.Bool
			var violations atomic.Int64
			runForce(np, func(pid int) {
				for e := 0; e < 25; e++ {
					b.Sync(pid, func() {
						inSection.Store(true)
						for i := 0; i < 100; i++ {
							runtime.Gosched()
						}
						inSection.Store(false)
					})
					if inSection.Load() {
						violations.Add(1)
					}
					b.Sync(pid, nil)
				}
			})
			if v := violations.Load(); v != 0 {
				t.Errorf("%d processes escaped while the section ran", v)
			}
		})
	}
}

// TestSingleProcess exercises the n=1 degenerate force.
func TestSingleProcess(t *testing.T) {
	for _, k := range Kinds() {
		b := New(k, 1, nil)
		ran := 0
		for e := 0; e < 10; e++ {
			b.Sync(0, func() { ran++ })
		}
		if ran != 10 {
			t.Errorf("%v: section ran %d times, want 10", k, ran)
		}
	}
}

// TestAwkwardSizes runs non-power-of-two and prime force sizes through the
// log-depth algorithms.
func TestAwkwardSizes(t *testing.T) {
	for _, np := range []int{2, 3, 5, 9, 13, 17} {
		for _, k := range Kinds() {
			b := New(k, np, lock.Factory(lock.TAS))
			var hits atomic.Int64
			runForce(np, func(pid int) {
				for e := 0; e < 10; e++ {
					b.Sync(pid, func() { hits.Add(1) })
				}
			})
			if got := hits.Load(); got != 10 {
				t.Errorf("%v np=%d: section ran %d times, want 10", k, np, got)
			}
		}
	}
}

// TestTwoLockWithEveryLockKind is the A1 ablation's correctness side: the
// paper's barrier must work over every lock category.
func TestTwoLockWithEveryLockKind(t *testing.T) {
	const np = 6
	for _, lk := range lock.Kinds() {
		lk := lk
		t.Run(lk.String(), func(t *testing.T) {
			t.Parallel()
			b := NewTwoLock(np, lock.Factory(lk))
			var count atomic.Int64
			runForce(np, func(pid int) {
				for e := 0; e < 30; e++ {
					count.Add(1)
					b.Sync(pid, nil)
					if count.Load()%np != 0 {
						t.Errorf("barrier leaked: count %d not a multiple of np", count.Load())
					}
					b.Sync(pid, nil)
				}
			})
		})
	}
}

func TestTreeFanIns(t *testing.T) {
	for _, fanIn := range []int{1, 2, 3, 8} {
		for _, np := range []int{1, 4, 10} {
			b := NewTree(np, fanIn)
			var hits atomic.Int64
			runForce(np, func(pid int) {
				for e := 0; e < 8; e++ {
					b.Sync(pid, func() { hits.Add(1) })
				}
			})
			if got := hits.Load(); got != 8 {
				t.Errorf("tree fanIn=%d np=%d: section ran %d times, want 8", fanIn, np, got)
			}
		}
	}
}

func TestRounds(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for n, want := range cases {
		if got := Rounds(n); got != want {
			t.Errorf("Rounds(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestWaitHelper(t *testing.T) {
	b := New(CentralSense, 3, nil)
	var total atomic.Int64
	runForce(3, func(pid int) {
		total.Add(1)
		Wait(b, pid)
		if total.Load() != 3 {
			t.Error("Wait released before all arrived")
		}
	})
}

// Property: for random (kind, np, episodes), a shared counter incremented
// once per process per episode always reads np*e at every post-barrier
// point.
func TestQuickBarrierCounting(t *testing.T) {
	prop := func(kindIdx, npRaw, epRaw uint8) bool {
		kinds := Kinds()
		k := kinds[int(kindIdx)%len(kinds)]
		np := int(npRaw)%8 + 1
		episodes := int(epRaw)%12 + 1
		b := New(k, np, lock.Factory(lock.Combined))
		var counter atomic.Int64
		ok := atomic.Bool{}
		ok.Store(true)
		runForce(np, func(pid int) {
			for e := 1; e <= episodes; e++ {
				counter.Add(1)
				b.Sync(pid, nil)
				if counter.Load() != int64(np*e) {
					ok.Store(false)
				}
				b.Sync(pid, nil)
			}
		})
		return ok.Load()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestButterflyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewButterfly(6) did not panic")
		}
	}()
	NewButterfly(6)
}

func TestButterflyPowerOfTwoDirect(t *testing.T) {
	for _, np := range []int{1, 2, 4, 8, 16} {
		b := NewButterfly(np)
		var hits atomic.Int64
		runForce(np, func(pid int) {
			for e := 0; e < 10; e++ {
				b.Sync(pid, func() { hits.Add(1) })
			}
		})
		if got := hits.Load(); got != 10 {
			t.Errorf("np=%d: section ran %d times, want 10", np, got)
		}
	}
}

func TestButterflyFallsBackForOddSizes(t *testing.T) {
	// New must still produce a working barrier for non-power-of-two
	// forces (dissemination fallback).
	b := New(Butterfly, 5, nil)
	if _, ok := b.(*DisseminationBarrier); !ok {
		t.Fatalf("New(Butterfly, 5) = %T, want dissemination fallback", b)
	}
	var counter atomic.Int64
	runForce(5, func(pid int) {
		counter.Add(1)
		b.Sync(pid, nil)
		if counter.Load() != 5 {
			t.Error("released early")
		}
	})
}
