package barrier

import (
	"errors"
	"testing"
	"time"

	"repro/internal/poison"
)

// TestPoisonWakesBlockedWaiters: for every algorithm, processes parked
// in a barrier that can never fill (one participant missing) unwind
// with poison.Abort when the cell is poisoned.
func TestPoisonWakesBlockedWaiters(t *testing.T) {
	for _, k := range Kinds() {
		for _, n := range []int{2, 4, 7} {
			t.Run(k.String()+"/np="+string(rune('0'+n)), func(t *testing.T) {
				c := poison.NewCell()
				b := New(k, n, nil)
				SetPoison(b, c)
				unwound := make(chan any, n)
				for pid := 0; pid < n-1; pid++ { // pid n-1 never arrives
					go func(pid int) {
						defer func() { unwound <- recover() }()
						b.Sync(pid, nil)
					}(pid)
				}
				time.Sleep(10 * time.Millisecond)
				c.Poison(errors.New("process died"))
				for i := 0; i < n-1; i++ {
					select {
					case r := <-unwound:
						if _, ok := r.(poison.Abort); !ok {
							t.Fatalf("waiter unwound with %v (%T), want poison.Abort", r, r)
						}
					case <-time.After(30 * time.Second):
						t.Fatalf("waiter still blocked after poison")
					}
				}
			})
		}
	}
}

// TestPoisonBoundUnpoisonedIsTransparent: binding a cell that is never
// poisoned must not change barrier behaviour.
func TestPoisonBoundUnpoisonedIsTransparent(t *testing.T) {
	for _, k := range Kinds() {
		c := poison.NewCell()
		b := New(k, 4, nil)
		SetPoison(b, c)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for ep := 0; ep < 50; ep++ {
				ch := make(chan struct{})
				for pid := 0; pid < 4; pid++ {
					go func(pid int) {
						b.Sync(pid, nil)
						ch <- struct{}{}
					}(pid)
				}
				for i := 0; i < 4; i++ {
					<-ch
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: episodes with a bound cell did not complete", k)
		}
	}
}
