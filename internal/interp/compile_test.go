package interp

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/forcelang"
)

// The tree-vs-compiled equivalence corpus lives in internal/corpus so
// the AOT (generated-Go) tier is held to the same programs.  Every case
// is deterministic by construction (synchronization fixes the dataflow;
// per-process Print order may still vary, hence the sorted comparison).
var equivCorpus = corpus.Equiv

// TestExecEnginesAgree runs the corpus under every engine — the tree
// walker, the closure compiler, and the chunk tier — and requires
// identical output against the tree baseline: the package-level
// acceptance check of the compiled-family executors.
func TestExecEnginesAgree(t *testing.T) {
	for _, tc := range equivCorpus {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := forcelang.Parse(tc.Src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			outs := map[ExecMode]string{}
			for _, mode := range ExecModes() {
				var sb strings.Builder
				if err := Run(prog, Config{NP: tc.NP, Stdout: &sb, Exec: mode}); err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				outs[mode] = sb.String()
			}
			tree := sortedLines(outs[ExecTree])
			for _, mode := range []ExecMode{ExecCompiled, ExecChunked} {
				got := sortedLines(outs[mode])
				if len(tree) != len(got) {
					t.Fatalf("line counts differ: tree %d, %s %d\ntree:\n%s\n%s:\n%s",
						len(tree), mode, len(got), outs[ExecTree], mode, outs[mode])
				}
				for i := range tree {
					if tree[i] != got[i] {
						t.Errorf("line %d: tree %q, %s %q", i, tree[i], mode, got[i])
					}
				}
			}
		})
	}
}

// TestRuntimeErrorsBothEngines checks that the runtime-error corpus
// aborts with identical messages under every engine.
func TestRuntimeErrorsBothEngines(t *testing.T) {
	for _, tc := range corpus.RuntimeErrors {
		name := tc.Name
		prog, err := forcelang.Parse(tc.Src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		var msgs []string
		for _, mode := range ExecModes() {
			err := Run(prog, Config{NP: 1, Exec: mode})
			if err == nil {
				t.Errorf("%s (%s): no error", name, mode)
				continue
			}
			if !strings.Contains(err.Error(), "force runtime") {
				t.Errorf("%s (%s): unexpected error %v", name, mode, err)
			}
			msgs = append(msgs, err.Error())
		}
		for i := 1; i < len(msgs); i++ {
			if msgs[i] != msgs[0] {
				t.Errorf("%s: engines disagree on the message:\n  %s: %s\n  %s: %s",
					name, ExecModes()[0], msgs[0], ExecModes()[i], msgs[i])
			}
		}
	}
}

// TestResolveRejectsUndeclared exercises the resolution pass's error
// path: an unchecked program fails at resolve time, not at run time.
func TestResolveRejectsUndeclared(t *testing.T) {
	// Bypass Parse (which checks) by mutating a checked program.
	prog := forcelang.MustParse("Force P of NP ident ME\nEnd Declarations\nJoin\n")
	prog.Subs = append(prog.Subs, &forcelang.Subroutine{Name: "BAD", Params: []string{"X"}})
	if _, err := resolveProgram(prog); err == nil {
		t.Error("resolveProgram accepted an undeclared parameter")
	}
}
