package interp

import (
	"strings"
	"testing"

	"repro/internal/forcelang"
)

// equivCase is one program of the tree-vs-compiled equivalence corpus.
// Every case is deterministic by construction (synchronization fixes the
// dataflow; per-process Print order may still vary, hence the sorted
// comparison), so both engines must produce the same lines.
type equivCase struct {
	name string
	np   int
	src  string
}

var equivCorpus = []equivCase{
	{"hello", 4, `Force HELLO of NP ident ME
End Declarations
Print 'hello from', ME, 'of', NP
Join
`},
	{"coercions", 2, `Force CO of NP ident ME
Private Real X
Private Integer K
Private Logical B
End Declarations
IF (ME .EQ. 0) THEN
  X = 7
  K = 3.9
  B = 1 .LT. 2 .AND. .NOT. (2.0 .GE. 3.0)
  Print X, K, B
  Print INT(2.9), NINT(2.9), INT(7), MOD(9, 4), MOD(9.5, 4.0)
  Print MIN(3, 1, 2), MAX(1.5, 2), ABS(-3), ABS(-2.5), SQRT(16.0)
  Print -X, -K, 5 / 2, 5.0 / 2.0, 1 / 2
End IF
Join
`},
	{"shared-scalar-traffic", 4, `Force SST of NP ident ME
Shared Integer TOTAL
Shared Real ACC
Shared Logical FLAG
Private Integer I
End Declarations
Barrier
  TOTAL = 0
  ACC = 0.0
  FLAG = .FALSE.
End Barrier
Presched DO I = 1, 200
  Critical L
    TOTAL = TOTAL + I
    ACC = ACC + REAL(I) / 2.0
  End Critical
End Presched DO
Barrier
  FLAG = TOTAL .EQ. 20100
  Print TOTAL, ACC, FLAG
End Barrier
Join
`},
	{"arrays-2d", 3, `Force A2 of NP ident ME
Shared Real M(6,7)
Shared Real S
Private Integer I, J
End Declarations
Presched DO I = 1, 6 also J = 1, 7
  M(I, J) = REAL(I) + REAL(J) / 10.0
End Presched DO
Barrier
S = 0.0
End Barrier
Selfsched DO I = 1, 6
  DO J = 1, 7
    Critical L
      S = S + M(I, J)
    End Critical
  End DO
End Selfsched DO
Barrier
Print NINT(S * 10.0)
End Barrier
Join
`},
	{"call-chain-param-forwarding", 4, `Force CHAIN of NP ident ME
Shared Real A(6)
Shared Real S
Private Integer I
End Declarations
Presched DO I = 1, 6
  A(I) = REAL(I)
End Presched DO
Barrier
End Barrier
Call OUTER(A, S)
Barrier
  Print 'sum', NINT(S)
End Barrier
IF (ME .EQ. 0) THEN
  Call BUMP(A(2))
  Print 'bumped', A(2)
End IF
Join
Forcesub OUTER(X, T)
Shared Real X(6)
Shared Real T
End Declarations
Call INNER(X, T)
Endsub
Forcesub INNER(Y, U)
Shared Real Y(6)
Shared Real U
Private Integer K
End Declarations
Barrier
  U = 0.0
End Barrier
Presched DO K = 1, 6
  Critical LC
    U = U + Y(K)
  End Critical
End Presched DO
Barrier
End Barrier
IF (U .GT. 100.0) THEN
  Call BUMP(Y(1))
End IF
Endsub
Forcesub BUMP(Z)
Shared Real Z
End Declarations
Z = Z + 10.0
Endsub
`},
	{"recursive-sub", 2, `Force REC of NP ident ME
Private Integer N, R
End Declarations
IF (ME .EQ. 0) THEN
  N = 5
  R = 1
  Call FACT(N, R)
  Print 'fact', R
End IF
Join
Forcesub FACT(N, R)
Private Integer N, R
Private Integer M
End Declarations
IF (N .GT. 1) THEN
  R = R * N
  M = N - 1
  Call FACT(M, R)
End IF
Endsub
`},
	{"private-arrays-fresh-per-call", 2, `Force PA of NP ident ME
End Declarations
IF (ME .EQ. 0) THEN
  Call WORK
  Call WORK
End IF
Join
Forcesub WORK()
Private Real B(4)
Private Integer K, Z
End Declarations
Z = 0
DO K = 1, 4
  IF (B(K) .EQ. 0.0) THEN
    Z = Z + 1
  End IF
  B(K) = REAL(K)
End DO
Print 'zeros', Z
Endsub
`},
	{"unit-local-shared", 3, `Force PERSIST of NP ident ME
End Declarations
Call TICK
Call TICK
Barrier
End Barrier
Call REPORT
Join
Forcesub TICK()
Shared Integer COUNT
End Declarations
Barrier
COUNT = COUNT + 1
End Barrier
Endsub
Forcesub REPORT()
Shared Integer COUNT
End Declarations
Barrier
Print 'count', COUNT
End Barrier
Endsub
`},
	{"pcase", 2, `Force PC of NP ident ME
Shared Integer A, B, C
Shared Integer N
End Declarations
Barrier
N = 3
End Barrier
Pcase
Usect
  A = A + 1
Csect (N .GT. 2)
  B = B + 1
Csect (N .GT. 5)
  C = C + 100
End Pcase
Barrier
Print A, B, C
End Barrier
Join
`},
	{"askfor-put", 4, `Force AF of NP ident ME
Shared Integer SEEN
Private Integer T
End Declarations
Barrier
  SEEN = 0
End Barrier
Askfor T = 4
  Critical CL
    SEEN = SEEN + 1
  End Critical
  IF (T .GT. 1) THEN
    Put T - 1
    Put T - 1
  End IF
End Askfor
Barrier
  Print 'tasks', SEEN
End Barrier
Join
`},
	{"reductions", 4, `Force RD of NP ident ME
Shared Integer TOTAL
Shared Real BIG
Shared Logical ALLIN, ANYODD
Private Integer I, MINE
End Declarations
MINE = 0
Presched DO I = 1, 40
  MINE = MINE + I
End Presched DO
GSUM TOTAL = MINE
GMAX BIG = REAL(ME) + 0.5
GAND ALLIN = TOTAL .EQ. 820
GOR ANYODD = MOD(ME, 2) .EQ. 1
Barrier
  Print TOTAL, BIG, ALLIN, ANYODD
End Barrier
Join
`},
	{"async-wave", 5, `Force WAVE of NP ident ME
Async Integer CELLS(8)
Private Integer X
End Declarations
IF (ME .EQ. 0) THEN
  Produce CELLS(1) = 100
End IF
IF (ME .GT. 0) THEN
  Consume CELLS(ME) into X
  Produce CELLS(ME) = X
  Produce CELLS(ME + 1) = X + 1
End IF
Barrier
End Barrier
IF (ME .EQ. 0) THEN
  Consume CELLS(NP) into X
  Print 'end of wave:', X
End IF
Join
`},
	{"async-copy-void", 1, `Force CV of NP ident ME
Async Real V
Private Real A
Private Integer K
End Declarations
Produce V = 4.5
Copy V into A
Print A
Consume V into K
Print K
Produce V = 1.0
Void V
Produce V = 2.25
Consume V into A
Print A
Join
`},
	{"while-convergence", 5, `Force WH of NP ident ME
Shared Integer ROUNDS
Shared Logical DONE
End Declarations
Barrier
  DONE = .FALSE.
  ROUNDS = 0
End Barrier
DO WHILE (.NOT. DONE)
  Barrier
    ROUNDS = ROUNDS + 1
    IF (ROUNDS .GE. 7) THEN
      DONE = .TRUE.
    End IF
  End Barrier
End DO
Barrier
Print 'rounds', ROUNDS
End Barrier
Join
`},
	{"negative-step", 2, `Force NEG of NP ident ME
Private Integer I
Shared Integer S
End Declarations
Barrier
S = 0
End Barrier
Selfsched DO I = 10, 2, -2
  Critical L
    S = S + I
  End Critical
End Selfsched DO
Barrier
Print S
End Barrier
Join
`},
}

// TestExecEnginesAgree runs the corpus under every engine — the tree
// walker, the closure compiler, and the chunk tier — and requires
// identical output against the tree baseline: the package-level
// acceptance check of the compiled-family executors.
func TestExecEnginesAgree(t *testing.T) {
	for _, tc := range equivCorpus {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			prog, err := forcelang.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			outs := map[ExecMode]string{}
			for _, mode := range ExecModes() {
				var sb strings.Builder
				if err := Run(prog, Config{NP: tc.np, Stdout: &sb, Exec: mode}); err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				outs[mode] = sb.String()
			}
			tree := sortedLines(outs[ExecTree])
			for _, mode := range []ExecMode{ExecCompiled, ExecChunked} {
				got := sortedLines(outs[mode])
				if len(tree) != len(got) {
					t.Fatalf("line counts differ: tree %d, %s %d\ntree:\n%s\n%s:\n%s",
						len(tree), mode, len(got), outs[ExecTree], mode, outs[mode])
				}
				for i := range tree {
					if tree[i] != got[i] {
						t.Errorf("line %d: tree %q, %s %q", i, tree[i], mode, got[i])
					}
				}
			}
		})
	}
}

// TestRuntimeErrorsBothEngines checks that the runtime-error corpus
// aborts with identical messages under every engine.
func TestRuntimeErrorsBothEngines(t *testing.T) {
	cases := map[string]string{
		"subscript": `Force E of NP ident ME
Shared Real A(3)
End Declarations
A(4) = 1.0
Join
`,
		"subscript-2d": `Force E of NP ident ME
Private Real M(3, 3)
Private Integer I
End Declarations
I = 0
M(2, I) = 1.0
Join
`,
		"div zero": `Force E of NP ident ME
Private Integer I
End Declarations
I = 1 / 0
Join
`,
		"sqrt negative": `Force E of NP ident ME
Private Real X
End Declarations
X = SQRT(-1.0)
Join
`,
		"mod zero": `Force E of NP ident ME
Private Integer I
End Declarations
I = MOD(5, 0)
Join
`,
		"zero step": `Force E of NP ident ME
Private Integer I
End Declarations
DO I = 1, 3, 0
End DO
Join
`,
		"async bounds": `Force E of NP ident ME
Async Integer C(3)
End Declarations
Produce C(4) = 1
Join
`,
	}
	for name, src := range cases {
		prog, err := forcelang.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		var msgs []string
		for _, mode := range ExecModes() {
			err := Run(prog, Config{NP: 1, Exec: mode})
			if err == nil {
				t.Errorf("%s (%s): no error", name, mode)
				continue
			}
			if !strings.Contains(err.Error(), "force runtime") {
				t.Errorf("%s (%s): unexpected error %v", name, mode, err)
			}
			msgs = append(msgs, err.Error())
		}
		for i := 1; i < len(msgs); i++ {
			if msgs[i] != msgs[0] {
				t.Errorf("%s: engines disagree on the message:\n  %s: %s\n  %s: %s",
					name, ExecModes()[0], msgs[0], ExecModes()[i], msgs[i])
			}
		}
	}
}

// TestResolveRejectsUndeclared exercises the resolution pass's error
// path: an unchecked program fails at resolve time, not at run time.
func TestResolveRejectsUndeclared(t *testing.T) {
	// Bypass Parse (which checks) by mutating a checked program.
	prog := forcelang.MustParse("Force P of NP ident ME\nEnd Declarations\nJoin\n")
	prog.Subs = append(prog.Subs, &forcelang.Subroutine{Name: "BAD", Params: []string{"X"}})
	if _, err := resolveProgram(prog); err == nil {
		t.Error("resolveProgram accepted an undeclared parameter")
	}
}
