package interp

// Race coverage for the compiled executor's per-variable shared store
// (run with go test -race, as the CI race job does): concurrent
// disjoint-element writes through the stripe locks, same-element
// critical-section read-modify-writes, and asynchronous Produce/Consume
// flowing through slot-resolved frames.

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/forcelang"
	"repro/internal/shm"
)

// TestStripedDisjointElementWrites drives an 8-process force through a
// DOALL whose iterations write disjoint shared-array elements — the
// pattern the stripe locks exist to parallelize — then folds the array
// to check no write was lost.  Under ExecChunked the first loop runs
// through the bulk stripe walker, so the race job covers walker-held
// stripes racing ordinary striped access from the fold.
func TestStripedDisjointElementWrites(t *testing.T) {
	for _, mode := range []ExecMode{ExecCompiled, ExecChunked} {
		t.Run(mode.String(), func(t *testing.T) {
			out := run(t, `Force DISJ of NP ident ME
Shared Real A(512)
Shared Real S
Private Integer I
End Declarations
Presched DO I = 1, 512
  A(I) = REAL(I) * 2.0
End Presched DO
Barrier
  S = 0.0
End Barrier
Selfsched DO I = 1, 512
  Critical FOLD
    S = S + A(I)
  End Critical
End Selfsched DO
Barrier
  Print NINT(S)
End Barrier
Join
`, Config{NP: 8, Exec: mode})
			// 2 * (1 + ... + 512) = 512 * 513.
			if got := strings.TrimSpace(out); got != "262656" {
				t.Errorf("out = %q", got)
			}
		})
	}
}

// TestStripedSameElementCriticalWrites hammers one element of a shared
// array from every process inside a critical section: the stripe lock
// and the construct lock compose without losing updates.
func TestStripedSameElementCriticalWrites(t *testing.T) {
	out := run(t, `Force SAME of NP ident ME
Shared Integer C(8)
Private Integer I
End Declarations
Barrier
  C(3) = 0
End Barrier
Presched DO I = 1, 400
  Critical BUMP
    C(3) = C(3) + 1
  End Critical
End Presched DO
Barrier
  Print C(3)
End Barrier
Join
`, Config{NP: 8, Exec: ExecCompiled})
	if got := strings.TrimSpace(out); got != "400" {
		t.Errorf("out = %q", got)
	}
}

// TestAsyncThroughSlotFrames pushes Produce/Consume traffic through
// subroutine frames: the async entry is resolved at compile time, the
// subscript and the transferred values flow through slot-addressed
// private storage of each call frame.
func TestAsyncThroughSlotFrames(t *testing.T) {
	out := run(t, `Force ASYNCF of NP ident ME
Async Integer Q(4)
Shared Integer TOTAL
Private Integer I
End Declarations
Barrier
  TOTAL = 0
End Barrier
IF (ME .EQ. 0) THEN
  DO I = 1, 40
    Call FEED(I)
  End DO
End IF
IF (ME .GT. 0) THEN
  DO I = 1, 10
    Call DRAIN
  End DO
End IF
Barrier
  Print 'total', TOTAL
End Barrier
Join
Forcesub FEED(V)
Private Integer V
Private Integer SLOT
End Declarations
SLOT = MOD(V, 4) + 1
Produce Q(SLOT) = V
Endsub
Forcesub DRAIN()
Private Integer X, SLOT
End Declarations
SLOT = MOD(ME - 1, 4) + 1
Consume Q(SLOT) into X
Critical ACC
  TOTAL = TOTAL + X
End Critical
Endsub
`, Config{NP: 5, Exec: ExecCompiled})
	// Every produced value 1..40 is consumed exactly once.
	if got := strings.TrimSpace(out); got != "total 820" {
		t.Errorf("out = %q", got)
	}
}

// TestSharedArrayDirect exercises the striped store below the language:
// concurrent disjoint stores, then concurrent same-element updates under
// an external mutex (the compiled Critical pattern), must never lose a
// write or trip the race detector.
func TestSharedArrayDirect(t *testing.T) {
	d := forcelang.Decl{Class: shm.Shared, Type: forcelang.TInt, Name: "A", Dims: []int{1024}}
	a := newSharedArray(d)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < 1024; i += 8 {
				a.store(i, intVal(int64(i)))
			}
		}(p)
	}
	wg.Wait()
	for i := 0; i < 1024; i++ {
		if v := a.load(i); v.i != int64(i) {
			t.Fatalf("a[%d] = %d", i, v.i)
		}
	}
	var mu sync.Mutex
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				mu.Lock()
				a.store(7, intVal(a.load(7).i+1))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if v := a.load(7); v.i != 7+8*200 {
		t.Errorf("a[7] = %d, want %d", v.i, 7+8*200)
	}
}

// TestStripeWalkerDirect hammers the bulk entry points the chunk tier
// uses: eight goroutines, each with its own stripeWalker, sweep
// disjoint strides of one array (ensure/storeAt re-acquiring stripes as
// the offset crosses block boundaries) while another eight read the
// same array through plain striped loads.  Every write must land and
// the race detector must stay quiet.
func TestStripeWalkerDirect(t *testing.T) {
	d := forcelang.Decl{Class: shm.Shared, Type: forcelang.TInt, Name: "A", Dims: []int{4096}}
	a := newSharedArray(d)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var w stripeWalker
			defer w.release()
			for i := p; i < 4096; i += 8 {
				w.storeAt(a, i, intVal(int64(3*i)))
			}
		}(p)
	}
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < 4096; i += 8 {
				_ = a.load(i)
			}
		}(p)
	}
	wg.Wait()
	for i := 0; i < 4096; i++ {
		if v := a.load(i); v.i != int64(3*i) {
			t.Fatalf("a[%d] = %d, want %d", i, v.i, 3*i)
		}
	}
}

// TestStripeWalkerTwoArrays alternates one walker between two arrays on
// every access — the worst case for the single-stripe-held invariant
// (release A, acquire B, release B, acquire A, ...) — concurrently from
// eight goroutines.  Deadlock-freedom is the property under test: the
// walker never holds a stripe of one array while asking for another.
func TestStripeWalkerTwoArrays(t *testing.T) {
	mk := func(name string) *sharedArray {
		return newSharedArray(forcelang.Decl{Class: shm.Shared, Type: forcelang.TInt, Name: name, Dims: []int{512}})
	}
	a, b := mk("A"), mk("B")
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var w stripeWalker
			defer w.release()
			for i := p; i < 512; i += 8 {
				w.storeAt(a, i, intVal(int64(i)))
				w.storeAt(b, 511-i, intVal(int64(i)))
				if v := w.loadAt(a, i); v.i != int64(i) {
					t.Errorf("a[%d] = %d mid-walk", i, v.i)
				}
			}
		}(p)
	}
	wg.Wait()
	for i := 0; i < 512; i++ {
		if a.load(i).i != int64(i) || b.load(511-i).i != int64(i) {
			t.Fatalf("element %d lost", i)
		}
	}
}

// TestSharedScalarAddInt checks the accumulator entry point the chunk
// tier flushes private sums through: concurrent addInt deltas (positive
// and negative) against concurrent typed loads, with an exact total.
func TestSharedScalarAddInt(t *testing.T) {
	c := newSharedScalar(forcelang.TInt)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if p%2 == 0 {
					c.addInt(3)
				} else {
					c.addInt(-1)
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			c.loadInt()
		}
	}()
	wg.Wait()
	<-done
	if got := c.loadInt(); got != 4*1000*3-4*1000 {
		t.Errorf("total = %d, want %d", got, 4*1000*3-4*1000)
	}
}

// TestSharedScalarDirect checks the atomic scalar cell under concurrent
// typed stores: every load observes one of the stored values, whole.
func TestSharedScalarDirect(t *testing.T) {
	c := newSharedScalar(forcelang.TReal)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.store(realVal(float64(p) + 0.25))
			}
		}(p)
	}
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := c.load()
			frac := v.r - float64(int(v.r))
			if v.r != 0 && frac != 0.25 {
				t.Error("torn read:", v.r)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
}
