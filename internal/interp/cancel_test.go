package interp

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/forcelang"
)

// stallProg parks every process but 0 in the barrier forever.
const stallProg = `Force STALL of NP ident ME
End Declarations
IF (ME .GT. 0) THEN
Barrier
End Barrier
END IF
Join
`

// TestCancelUnblocksRun: Config.Context cancellation must unwind a
// stalled program and surface as the context's error, on every engine.
func TestCancelUnblocksRun(t *testing.T) {
	prog := forcelang.MustParse(stallProg)
	for _, mode := range ExecModes() {
		t.Run(mode.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() {
				errc <- Run(prog, Config{NP: 4, Stdout: io.Discard, Exec: mode, Context: ctx})
			}()
			time.Sleep(20 * time.Millisecond) // let the force park
			cancel()
			select {
			case err := <-errc:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Run = %v, want context.Canceled", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("cancel did not unblock the run")
			}
		})
	}
}

// TestDeadlineExceededSurfaces: a deadline behaves like a cancel but
// reports context.DeadlineExceeded, so callers can tell a wall-clock
// bound from an explicit stop.
func TestDeadlineExceededSurfaces(t *testing.T) {
	prog := forcelang.MustParse(stallProg)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := Run(prog, Config{NP: 2, Stdout: io.Discard, Context: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want context.DeadlineExceeded", err)
	}
}

// TestNilContextRunsUnbounded: the zero Config keeps the pre-context
// behavior — a conformant program completes normally.
func TestNilContextRunsUnbounded(t *testing.T) {
	prog := forcelang.MustParse(`Force OK of NP ident ME
End Declarations
Barrier
End Barrier
Join
`)
	if err := Run(prog, Config{NP: 2, Stdout: io.Discard}); err != nil {
		t.Fatalf("Run = %v, want nil", err)
	}
}
