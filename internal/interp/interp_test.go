package interp

import (
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/barrier"
	"repro/internal/corpus"
	"repro/internal/forcelang"
	"repro/internal/machine"
	"repro/internal/trace"
)

func run(t *testing.T, src string, cfg Config) string {
	t.Helper()
	prog, err := forcelang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var out strings.Builder
	cfg.Stdout = &out
	if err := Run(prog, cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

// sortedLines sorts output lines: force processes print in nondeterministic
// order.
func sortedLines(s string) []string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) == 1 && lines[0] == "" {
		return nil
	}
	sort.Strings(lines)
	return lines
}

func TestHelloEveryProcess(t *testing.T) {
	out := run(t, `Force HELLO of NP ident ME
End Declarations
Print 'hello from', ME, 'of', NP
Join
`, Config{NP: 4})
	lines := sortedLines(out)
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	for i, l := range lines {
		want := "hello from " + string(rune('0'+i)) + " of 4"
		if l != want {
			t.Errorf("line %d = %q, want %q", i, l, want)
		}
	}
}

func TestArithmeticAndIntrinsics(t *testing.T) {
	out := run(t, `Force CALC of NP ident ME
Private Real X
Private Integer K
End Declarations
IF (ME .EQ. 0) THEN
  X = SQRT(2.0) * SQRT(2.0)
  K = NINT(X) + MOD(7, 4) + MIN(9, 2) + MAX(1, 3) - INT(1.9)
  Print 'k =', K
  Print 'neg', -K, ABS(-2.5), REAL(3)
  Print 'logic', 1 .LT. 2 .AND. .NOT. (2.0 .GE. 3.0)
End IF
Join
`, Config{NP: 3})
	lines := sortedLines(out)
	want := []string{"k = 9", "logic T", "neg -9 2.5 3.0"}
	if len(lines) != 3 {
		t.Fatalf("lines: %q", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %q, want %q", lines[i], want[i])
		}
	}
}

func TestPreschedDoAllSum(t *testing.T) {
	out := run(t, `Force SUM of NP ident ME
Shared Integer TOTAL
Private Integer I
End Declarations
Barrier
TOTAL = 0
End Barrier
Presched DO I = 1, 100
  Critical CSUM
    TOTAL = TOTAL + I
  End Critical
End Presched DO
Barrier
Print 'total', TOTAL
End Barrier
Join
`, Config{NP: 5})
	if got := strings.TrimSpace(out); got != "total 5050" {
		t.Errorf("out = %q", got)
	}
}

func TestSelfschedWithStepAndArray(t *testing.T) {
	out := run(t, `Force ARR of NP ident ME
Shared Integer A(50)
Shared Integer S
Private Integer I
End Declarations
Selfsched DO I = 1, 50, 1
  A(I) = I * 2
End Selfsched DO
Barrier
S = 0
End Barrier
Presched DO I = 1, 50
  Critical L
    S = S + A(I)
  End Critical
End Presched DO
Barrier
Print S
End Barrier
Join
`, Config{NP: 4})
	if got := strings.TrimSpace(out); got != "2550" {
		t.Errorf("out = %q", got)
	}
}

func TestDoublyNestedDoall(t *testing.T) {
	out := run(t, `Force MAT of NP ident ME
Shared Real M(6,7)
Shared Real S
Private Integer I, J
End Declarations
Presched DO I = 1, 6 also J = 1, 7
  M(I, J) = REAL(I) + REAL(J) / 10.0
End Presched DO
Barrier
S = 0.0
End Barrier
Selfsched DO I = 1, 6
  DO J = 1, 7
    Critical L
      S = S + M(I, J)
    End Critical
  End DO
End Selfsched DO
Barrier
Print NINT(S * 10.0)
End Barrier
Join
`, Config{NP: 3})
	// sum = 7*(1+..+6) + 6*(0.1+..+0.7) = 147 + 16.8 = 163.8
	if got := strings.TrimSpace(out); got != "1638" {
		t.Errorf("out = %q", got)
	}
}

func TestBarrierSectionRunsOnce(t *testing.T) {
	out := run(t, `Force B of NP ident ME
Shared Integer CNT
End Declarations
Barrier
CNT = CNT + 1
End Barrier
Barrier
CNT = CNT + 1
End Barrier
Barrier
Print 'cnt', CNT
End Barrier
Join
`, Config{NP: 6})
	if got := strings.TrimSpace(out); got != "cnt 2" {
		t.Errorf("out = %q", got)
	}
}

func TestProduceConsumePipeline(t *testing.T) {
	out := run(t, `Force PIPE of NP ident ME
Async Integer V
Shared Integer SUM
Private Integer I, X
End Declarations
IF (ME .EQ. 0) THEN
  DO I = 1, 20
    Produce V = I
  End DO
End IF
IF (ME .EQ. 1) THEN
  SUM = 0
  DO I = 1, 20
    Consume V into X
    SUM = SUM + X
  End DO
  Print 'sum', SUM
End IF
Join
`, Config{NP: 2})
	if got := strings.TrimSpace(out); got != "sum 210" {
		t.Errorf("out = %q", got)
	}
}

func TestCopyAndVoidAndIsFullSemantics(t *testing.T) {
	out := run(t, `Force CV of NP ident ME
Async Real V
Private Real A, B
End Declarations
IF (ME .EQ. 0) THEN
  Produce V = 4.5
  Copy V into A
  Consume V into B
  Print A, B
  Produce V = 1.0
  Void V
  Produce V = 2.0
  Consume V into A
  Print A
End IF
Join
`, Config{NP: 1})
	lines := sortedLines(out)
	want := []string{"2.0", "4.5 4.5"}
	if len(lines) != 2 || lines[0] != want[0] || lines[1] != want[1] {
		t.Errorf("lines = %q, want %q", lines, want)
	}
}

func TestPcaseDistribution(t *testing.T) {
	out := run(t, `Force PC of NP ident ME
Shared Integer A, B, C
Shared Integer N
End Declarations
Barrier
N = 3
End Barrier
Pcase
Usect
  A = A + 1
Csect (N .GT. 2)
  B = B + 1
Csect (N .GT. 5)
  C = C + 100
End Pcase
Barrier
Print A, B, C
End Barrier
Join
`, Config{NP: 2})
	if got := strings.TrimSpace(out); got != "1 1 0" {
		t.Errorf("out = %q", got)
	}
}

func TestSelfschedPcase(t *testing.T) {
	out := run(t, `Force PCS of NP ident ME
Shared Integer A, B
End Declarations
Pcase Selfsched
Usect
  A = 7
Usect
  B = 9
End Pcase
Barrier
Print A, B
End Barrier
Join
`, Config{NP: 3})
	if got := strings.TrimSpace(out); got != "7 9" {
		t.Errorf("out = %q", got)
	}
}

func TestSubroutineCallByReference(t *testing.T) {
	out := run(t, `Force SUBS of NP ident ME
Shared Real A(10)
Shared Real TOTAL
Private Integer I
End Declarations
Presched DO I = 1, 10
  A(I) = REAL(I)
End Presched DO
Barrier
End Barrier
Call SCALE2(A)
Call SUMUP(A, TOTAL)
Barrier
Print NINT(TOTAL)
End Barrier
Join
Forcesub SCALE2(X)
Shared Real X(10)
Private Integer K
End Declarations
Presched DO K = 1, 10
  X(K) = X(K) * 2.0
End Presched DO
Endsub
Forcesub SUMUP(X, T)
Shared Real X(10)
Shared Real T
Private Integer K
End Declarations
Barrier
T = 0.0
End Barrier
Presched DO K = 1, 10
  Critical TL
    T = T + X(K)
  End Critical
End Presched DO
Barrier
End Barrier
Endsub
`, Config{NP: 4})
	if got := strings.TrimSpace(out); got != "110" {
		t.Errorf("out = %q", got)
	}
}

func TestElementArgumentAliases(t *testing.T) {
	out := run(t, `Force ELEM of NP ident ME
Shared Real A(5)
End Declarations
IF (ME .EQ. 0) THEN
  A(3) = 1.0
  Call BUMP(A(3))
  Print A(3)
End IF
Join
Forcesub BUMP(X)
Shared Real X
End Declarations
X = X + 10.0
Endsub
`, Config{NP: 1})
	if got := strings.TrimSpace(out); got != "11.0" {
		t.Errorf("out = %q", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	// Uniform error sites: every process errs, at any NP, under both
	// engines.  Before the poison protocol only NP=1 was safe to test.
	for _, tc := range corpus.RuntimeErrors {
		name := tc.Name
		prog, err := forcelang.Parse(tc.Src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		for _, np := range []int{1, 2, 8} {
			for _, exec := range ExecModes() {
				if err := Run(prog, Config{NP: np, Exec: exec}); err == nil {
					t.Errorf("%s np=%d %s: no error", name, np, exec)
				} else if !strings.Contains(err.Error(), "force runtime") {
					t.Errorf("%s np=%d %s: unexpected error %v", name, np, exec, err)
				}
			}
		}
	}
}

// TestRuntimeErrorsNonUniform is the fault-containment corpus: the
// error strikes only some processes while their peers block in (or
// head toward) a collective construct.  Before the poison protocol
// every one of these hung the force ("a process which panics while its
// peers are inside a barrier leaves them blocked"); now each must
// return the force runtime error at NP in {2, 8} under both engines.
func TestRuntimeErrorsNonUniform(t *testing.T) {
	for _, tc := range corpus.NonUniform {
		name, src := tc.Name, tc.Src
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog, err := forcelang.Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, np := range []int{2, 8} {
				for _, exec := range ExecModes() {
					done := make(chan error, 1)
					go func() { done <- Run(prog, Config{NP: np, Exec: exec}) }()
					select {
					case err := <-done:
						if err == nil {
							t.Errorf("np=%d %s: no error", np, exec)
						} else if !strings.Contains(err.Error(), "force runtime") {
							t.Errorf("np=%d %s: unexpected error %v", np, exec, err)
						}
					case <-time.After(60 * time.Second):
						t.Fatalf("np=%d %s: force hung on a non-uniform runtime error", np, exec)
					}
				}
			}
		})
	}
}

// TestForceErrorThenCleanRunSameConfig: after an errored run, a fresh
// run of a correct program with the same configuration works — the
// interpreter-level reuse story (each interp.Run builds its own force,
// so this exercises clean creation after an abort, not force reuse;
// core-level reuse is covered in internal/core).
func TestForceErrorThenCleanRunSameConfig(t *testing.T) {
	bad := forcelang.MustParse("Force B of NP ident ME\nPrivate Integer I\nEnd Declarations\nIF (ME .EQ. 0) THEN\nI = 1 / 0\nEND IF\nBarrier\nEnd Barrier\nJoin\n")
	good := forcelang.MustParse("Force G of NP ident ME\nEnd Declarations\nBarrier\nEnd Barrier\nPrint NP\nJoin\n")
	for _, exec := range ExecModes() {
		if err := Run(bad, Config{NP: 4, Exec: exec}); err == nil {
			t.Fatalf("%s: bad program reported no error", exec)
		}
		var sb strings.Builder
		if err := Run(good, Config{NP: 4, Exec: exec, Stdout: &sb}); err != nil {
			t.Fatalf("%s: clean run after error: %v", exec, err)
		}
		if !strings.Contains(sb.String(), "4") {
			t.Fatalf("%s: clean run output %q", exec, sb.String())
		}
	}
}

func TestRunDefaults(t *testing.T) {
	prog := forcelang.MustParse("Force D of NP ident ME\nEnd Declarations\nPrint NP\nJoin\n")
	if err := Run(prog, Config{}); err != nil {
		t.Fatal(err)
	}
}

// TestAllMachinesAndBarriers runs a construct-rich program across machine
// profiles and barrier algorithms: the interpreter-level portability
// matrix.
func TestAllMachinesAndBarriers(t *testing.T) {
	src := `Force PORT of NP ident ME
Shared Integer TOTAL
Shared Integer A(40)
Async Integer V
Private Integer I, X
End Declarations
Barrier
TOTAL = 0
End Barrier
Selfsched DO I = 1, 40
  A(I) = I
End Selfsched DO
Presched DO I = 1, 40
  Critical K
    TOTAL = TOTAL + A(I)
  End Critical
End Presched DO
IF (ME .EQ. 0) THEN
  Produce V = TOTAL
End IF
IF (ME .EQ. MOD(1, NP)) THEN
  Consume V into X
  Print 'total', X
End IF
Join
`
	for _, m := range machine.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			out := run(t, src, Config{NP: 3, Machine: m})
			if got := strings.TrimSpace(out); got != "total 820" {
				t.Errorf("%s: out = %q", m.Name, got)
			}
		})
	}
	for _, bk := range barrier.Kinds() {
		bk := bk
		t.Run(bk.String(), func(t *testing.T) {
			t.Parallel()
			out := run(t, src, Config{NP: 4, Barrier: bk})
			if got := strings.TrimSpace(out); got != "total 820" {
				t.Errorf("%v: out = %q", bk, got)
			}
		})
	}
}

func TestSharedLocalsInSubPersist(t *testing.T) {
	// A subroutine's shared local is COMMON-like: it persists across
	// calls and is shared by processes.
	out := run(t, `Force PERSIST of NP ident ME
End Declarations
Call TICK
Call TICK
Call TICK
Barrier
End Barrier
Call REPORT
Join
Forcesub TICK()
Shared Integer COUNT
End Declarations
Barrier
COUNT = COUNT + 1
End Barrier
Endsub
Forcesub REPORT()
Shared Integer COUNT
End Declarations
Barrier
Print 'count', COUNT
End Barrier
Endsub
`, Config{NP: 3})
	// COUNT is unit-local to TICK; REPORT has its own COUNT (0).
	if got := strings.TrimSpace(out); got != "count 0" {
		t.Errorf("out = %q (unit-local shared must not leak between subs)", got)
	}
}

func TestNegativeStepLoop(t *testing.T) {
	out := run(t, `Force NEG of NP ident ME
Private Integer I
Shared Integer S
End Declarations
Barrier
S = 0
End Barrier
Selfsched DO I = 10, 2, -2
  Critical L
    S = S + I
  End Critical
End Selfsched DO
Barrier
Print S
End Barrier
Join
`, Config{NP: 2})
	if got := strings.TrimSpace(out); got != "30" {
		t.Errorf("out = %q", got)
	}
}

func TestValueFormatting(t *testing.T) {
	if got := realVal(2).String(); got != "2.0" {
		t.Errorf("realVal(2) = %q", got)
	}
	if got := realVal(2.5).String(); got != "2.5" {
		t.Errorf("realVal(2.5) = %q", got)
	}
	if got := boolVal(true).String(); got != "T" {
		t.Errorf("boolVal = %q", got)
	}
	if got := intVal(-3).String(); got != "-3" {
		t.Errorf("intVal = %q", got)
	}
}

// TestWhileDoConvergence runs a DO WHILE convergence loop maintained by a
// barrier section — the idiom the statement exists for.
func TestWhileDoConvergence(t *testing.T) {
	out := run(t, `Force WH of NP ident ME
Shared Integer ROUNDS
Shared Logical DONE
End Declarations
Barrier
  DONE = .FALSE.
  ROUNDS = 0
End Barrier
DO WHILE (.NOT. DONE)
  Barrier
    ROUNDS = ROUNDS + 1
    IF (ROUNDS .GE. 7) THEN
      DONE = .TRUE.
    End IF
  End Barrier
End DO
Barrier
Print 'rounds', ROUNDS
End Barrier
Join
`, Config{NP: 5})
	if got := strings.TrimSpace(out); got != "rounds 7" {
		t.Errorf("out = %q", got)
	}
}

// TestWhileDoNeverEntered: a false condition skips the body entirely.
func TestWhileDoNeverEntered(t *testing.T) {
	out := run(t, `Force WH of NP ident ME
Private Integer I
End Declarations
I = 0
DO WHILE (I .GT. 0)
  I = I - 1
End DO
IF (ME .EQ. 0) THEN
  Print 'i', I
End IF
Join
`, Config{NP: 2})
	if got := strings.TrimSpace(out); got != "i 0" {
		t.Errorf("out = %q", got)
	}
}

// TestInterpWithTrace validates a whole interpreted program's barrier and
// critical behaviour from the construct-event log.
func TestInterpWithTrace(t *testing.T) {
	rec := trace.New(0)
	prog := forcelang.MustParse(`Force TR of NP ident ME
Shared Integer S
Private Integer I
End Declarations
Barrier
S = 0
End Barrier
Selfsched DO I = 1, 30
  Critical L
    S = S + I
  End Critical
End Selfsched DO
Barrier
Print S
End Barrier
Join
`)
	var sb strings.Builder
	if err := Run(prog, Config{NP: 4, Stdout: &sb, Trace: rec}); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "465" {
		t.Errorf("out = %q", got)
	}
	if err := trace.CheckBarrierEpisodes(rec.Events(), 4); err != nil {
		t.Error(err)
	}
	if err := trace.CheckCriticalExclusion(rec.Events(), "L"); err != nil {
		t.Error(err)
	}
	var want []int64
	for i := 1; i <= 30; i++ {
		want = append(want, int64(i))
	}
	if err := trace.CheckLoopCoverage(rec.Events(), want); err != nil {
		t.Error(err)
	}
}

// TestAsyncArrayWavefront is the HEP dataflow idiom in the dialect: each
// process consumes its predecessor cell and produces its own, so values
// propagate through the async array regardless of arrival order.
func TestAsyncArrayWavefront(t *testing.T) {
	out := run(t, `Force WAVE of NP ident ME
Async Integer CELLS(8)
Private Integer X
End Declarations
IF (ME .EQ. 0) THEN
  Produce CELLS(1) = 100
End IF
IF (ME .GT. 0) THEN
  Consume CELLS(ME) into X
  Produce CELLS(ME) = X
  Produce CELLS(ME + 1) = X + 1
End IF
Barrier
End Barrier
IF (ME .EQ. 0) THEN
  Consume CELLS(NP) into X
  Print 'end of wave:', X
End IF
Join
`, Config{NP: 6})
	if got := strings.TrimSpace(out); got != "end of wave: 105" {
		t.Errorf("out = %q", got)
	}
}

// TestAsyncArrayBounds: out-of-range async subscripts are runtime errors.
func TestAsyncArrayBounds(t *testing.T) {
	prog := forcelang.MustParse(`Force AB of NP ident ME
Async Integer C(3)
End Declarations
Produce C(4) = 1
Join
`)
	err := Run(prog, Config{NP: 1})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
}
