package interp

// The fusion pass: barrier elision across independent DOALLs and
// chunk-folded reductions.  Between classification and chunk
// compilation, this pass scans every statement list for maximal runs of
// adjacent single-index DOALLs, optionally followed by a numeric
// global-reduction statement, and compiles a proven-independent run as
// ONE fused region:
//
//	member 1: DoAllChunkedOpen   (spans, no exit barrier)
//	member 2: DoAllChunkedOpen
//	...
//	FusedJoin                    (the single closing collective)
//
// The join is a full synchronization point, so the region keeps every
// construct's exit guarantee while retiring one barrier episode per
// elided boundary; a folded reduction additionally retires its reduce
// episode, contributing its per-process operand to the join itself.
//
// Legality.  Dropping the barrier between members G (earlier) and B
// (later) interleaves B's iteration i directly after G's iteration i on
// the same process, while other processes may still be anywhere in G.
// That reordering is invisible exactly when no datum written in one
// member is touched by another at a different iteration:
//
//   - all members share one index variable and Canon-identical bounds,
//     and the bounds read nothing the region writes (a later member's
//     bounds would otherwise observe pre-barrier state);
//   - member bodies are individually chunk-certified, and so is their
//     concatenation (one synthetic DOALL), whose classification also
//     yields the region-wide disjointness facts;
//   - no member references a subroutine parameter (unknown aliasing);
//   - any name written by one member and referenced by another must be
//     a shared array proven element-disjoint over the COMBINED uses of
//     the whole region, AND the region must be prescheduled: disjoint
//     uses mean iteration i only ever touches its own elements, and
//     prescheduling pins iteration i of every member to the same
//     process, so a later member's read of an element was either
//     written by the same process in program order or never written at
//     all.  Selfscheduled members hand iteration i of different
//     members to different processes, so ANY cross-member conflict
//     declines there; scalars (shared or private) and unproven arrays
//     decline everywhere — their mid-region values are observable.
//
// A trailing GSUM/GPROD/GMAX/GMIN folds into the join when its target
// is an unsubscripted scalar, its operand reads no parameter and no
// shared name the region writes (per-process private state is fine —
// it is complete once the contributing process finishes its own
// spans), and the fold order cannot show: the join folds in pid order
// (reduce.NumEpisode), which is bit-identical to the PrivateSlots
// strategy, so INTEGER operands always qualify, REAL MAX/MIN always
// qualify (extrema keep one operand bit-for-bit), and REAL sums and
// products qualify only under the PrivateSlots strategy.  GAND/GOR
// stay on the episode path.
//
// Every decision is compile-time; Config.FuseLog narrates each fused
// region and each declined candidate.  Config.NoFuse turns the pass
// off, and the pass never runs under ExecCompiled, ExecTree or an
// iteration-level trace — so fused and unfused runs are byte-identical
// by construction or the corpus tests fail.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/forcelang"
	"repro/internal/reduce"
	"repro/internal/uniform"
)

// fuseEnabled reports whether the fusion pass applies at all: only the
// chunk tier fuses, and an iteration-level trace pins the per-iteration
// path (tryChunkParDo declines for the same reasons).
func (c *compiler) fuseEnabled() bool {
	return c.in.cfg.Exec == ExecChunked && c.in.cfg.Trace == nil && !c.in.cfg.NoFuse
}

func (c *compiler) fuseLogf(format string, args ...any) {
	if lg := c.in.cfg.FuseLog; lg != nil {
		lg(fmt.Sprintf(format, args...))
	}
}

// fusedStmts is the fusion-aware statement-list compiler: runs of
// adjacent DOALLs (plus an optional reduction tail) compile through
// tryFuse, everything else through the ordinary per-statement path.
// Candidate regions shrink from the right — the reduction tail is
// dropped first, then trailing members — so the longest provable prefix
// fuses and the remainder is re-scanned (it may fuse among itself).
func (c *compiler) fusedStmts(list []forcelang.Stmt, lay *unitLayout) []stmtFn {
	out := make([]stmtFn, 0, len(list))
	for i := 0; i < len(list); {
		pd, isPD := list[i].(*forcelang.ParDo)
		if !isPD {
			out = append(out, c.stmt(list[i], lay))
			i++
			continue
		}
		members := []*forcelang.ParDo{pd}
		for i+len(members) < len(list) {
			next, ok := list[i+len(members)].(*forcelang.ParDo)
			if !ok {
				break
			}
			members = append(members, next)
		}
		var red *forcelang.ReduceStmt
		if r, ok := stmtAt(list, i+len(members)).(*forcelang.ReduceStmt); ok {
			red = r
		}
		fn, consumed := c.fuseRun(members, red, lay)
		if fn != nil {
			out = append(out, fn)
			i += consumed
			continue
		}
		out = append(out, c.stmt(pd, lay))
		i++
	}
	return out
}

func stmtAt(list []forcelang.Stmt, i int) forcelang.Stmt {
	if i < len(list) {
		return list[i]
	}
	return nil
}

// fuseRun tries candidate regions over the member run in order of
// decreasing ambition and returns the first that proves legal, with the
// number of statements it consumed.  Only the most ambitious decline is
// narrated — the shrink retries repeat its reasons.
func (c *compiler) fuseRun(members []*forcelang.ParDo, red *forcelang.ReduceStmt, lay *unitLayout) (stmtFn, int) {
	logged := false
	try := func(ms []*forcelang.ParDo, r *forcelang.ReduceStmt) stmtFn {
		fn, reason := c.tryFuse(ms, r, lay)
		if fn == nil && !logged {
			logged = true
			c.fuseLogf("line %d: fusion declined: %s", ms[0].Pos(), reason)
		}
		return fn
	}
	if red != nil {
		if fn := try(members, red); fn != nil {
			return fn, len(members) + 1
		}
	}
	for n := len(members); n >= 2; n-- {
		if fn := try(members[:n], nil); fn != nil {
			return fn, n
		}
	}
	return nil, 0
}

// tryFuse proves and compiles one candidate region, or explains why it
// must not fuse.
func (c *compiler) tryFuse(members []*forcelang.ParDo, red *forcelang.ReduceStmt, lay *unitLayout) (stmtFn, string) {
	first := members[0]
	for _, m := range members {
		if m.Inner != nil {
			return nil, fmt.Sprintf("two-index DOALL at line %d", m.Pos())
		}
		if m.Sched != first.Sched {
			return nil, fmt.Sprintf("mixed scheduling at line %d", m.Pos())
		}
	}
	for _, m := range members[1:] {
		if m.Var != first.Var {
			return nil, fmt.Sprintf("index variables differ (%s at line %d, %s at line %d)",
				first.Var, first.Pos(), m.Var, m.Pos())
		}
		if uniform.Canon(m.From) != uniform.Canon(first.From) ||
			uniform.Canon(m.To) != uniform.Canon(first.To) ||
			stepCanon(m.Step) != stepCanon(first.Step) {
			return nil, fmt.Sprintf("bounds differ between lines %d and %d", first.Pos(), m.Pos())
		}
	}

	// Classify the concatenation of every member body as one synthetic
	// DOALL: its verdict certifies each statement for the chunk tier and
	// its disjointness facts cover the region's COMBINED array uses.
	syn := *first
	if len(members) > 1 {
		var body []forcelang.Stmt
		for _, m := range members {
			body = append(body, m.Body...)
		}
		syn.Body = body
	}
	plan, reason := classifyParDo(c.res.prog, &syn, lay)
	if reason != "" {
		return nil, reason
	}
	if plan.noBulk {
		return nil, "parameter references in the region"
	}

	sets := make([]uniform.RefSets, len(members))
	allWrites := map[string]bool{}
	for i, m := range members {
		rs, ok := uniform.CollectRefSets(m.Body)
		if !ok {
			return nil, fmt.Sprintf("unsupported statement in member at line %d", m.Pos())
		}
		sets[i] = rs
		for n := range rs.Writes {
			allWrites[n] = true
		}
	}

	// Bounds are evaluated at each member's open, with other processes
	// possibly deep in earlier members — so they must read nothing the
	// region writes, and not the index variable (whose frame slot a
	// preceding member's chunks update).  Members have Canon-identical
	// bounds, so checking the first covers all.
	for _, e := range []forcelang.Expr{first.From, first.To, first.Step} {
		if e == nil {
			continue
		}
		bad := ""
		uniform.Walk(e, func(r *forcelang.Ref) {
			if allWrites[r.Name] || r.Name == first.Var {
				bad = r.Name
			}
		})
		if bad != "" {
			return nil, fmt.Sprintf("bounds read %s, which the region writes", bad)
		}
	}

	for a := 0; a < len(members); a++ {
		for b := a + 1; b < len(members); b++ {
			for _, name := range conflictNames(sets[a], sets[b]) {
				if name == first.Var {
					continue
				}
				// The same-element argument needs the same pid to execute
				// iteration i in EVERY member, which only prescheduling
				// guarantees; selfscheduled members hand iteration i of
				// different members to whichever process asks first.
				if first.Sched == forcelang.Presched {
					if sym, ok := lay.syms[name]; ok && sym.class == scSharedArray && plan.disjoint[name] {
						continue
					}
				}
				return nil, fmt.Sprintf("members at lines %d and %d conflict on %s",
					members[a].Pos(), members[b].Pos(), name)
			}
		}
	}

	if red != nil {
		if reason := c.fuseReduceCheck(red, allWrites, lay); reason != "" {
			return nil, reason
		}
	}
	if len(members) == 1 && red == nil {
		return nil, "nothing to elide"
	}

	// Proven.  Compile each member against its OWN plan (its own
	// hoisting and disjointness, consistent with the region's: a member
	// can only prove disjoint what the region did not refute) as an
	// open construct, and close the region with one fused join.
	opens := make([]stmtFn, len(members))
	for i, m := range members {
		mplan, mreason := classifyParDo(c.res.prog, m, lay)
		if mreason != "" {
			return nil, fmt.Sprintf("member at line %d: %s", m.Pos(), mreason)
		}
		opens[i] = c.chunkParDo(m, lay, mplan, true)
	}

	if red == nil {
		c.fuseLogf("line %d: fused %d DOALLs, %d exit barrier(s) elided",
			first.Pos(), len(members), len(members)-1)
		note := noteStr("fused join", members[len(members)-1].Pos())
		return func(pr *cproc, fr *frame) {
			for _, open := range opens {
				open(pr, fr)
			}
			pr.p.Note(note)
			// A pure synchronization close: the fold value is unused.
			pr.p.FusedJoin(reduce.Sum, reduce.NumInt, 0)
		}, ""
	}

	c.fuseLogf("line %d: fused %d DOALL(s) + %s at line %d into one join",
		first.Pos(), len(members), red.Op, red.Pos())
	store, tt := c.refStore(&red.Target, lay)
	rop := foldOp(red.Op)
	note := noteStr(red.Op.String(), red.Pos())
	if tt == forcelang.TInt {
		iv := c.asInt(red.Expr, lay)
		return func(pr *cproc, fr *frame) {
			for _, open := range opens {
				open(pr, fr)
			}
			pr.p.Note(note)
			out := pr.p.FusedJoin(rop, reduce.NumInt, uint64(iv(pr, fr)))
			store(pr, fr, intVal(int64(out)))
		}, ""
	}
	rv := c.cReal(red.Expr, lay)
	return func(pr *cproc, fr *frame) {
		for _, open := range opens {
			open(pr, fr)
		}
		pr.p.Note(note)
		out := pr.p.FusedJoin(rop, reduce.NumReal, math.Float64bits(rv(pr, fr)))
		store(pr, fr, realVal(math.Float64frombits(out)))
	}, ""
}

// fuseReduceCheck decides whether the reduction tail may fold into the
// region's join.
func (c *compiler) fuseReduceCheck(red *forcelang.ReduceStmt, allWrites map[string]bool, lay *unitLayout) string {
	if red.Op.Logical() {
		return fmt.Sprintf("%s is a logical reduction", red.Op)
	}
	if len(red.Target.Subs) != 0 {
		return fmt.Sprintf("subscripted %s target", red.Op)
	}
	tsym, ok := lay.syms[red.Target.Name]
	if !ok || (tsym.class != scPrivate && tsym.class != scShared) {
		return fmt.Sprintf("%s target %s is not a plain scalar", red.Op, red.Target.Name)
	}
	tt := tsym.decl.Type
	if tt != forcelang.TInt && tt != forcelang.TReal {
		return fmt.Sprintf("%s target %s is not numeric", red.Op, red.Target.Name)
	}
	bad := ""
	uniform.Walk(red.Expr, func(r *forcelang.Ref) {
		sym, found := lay.syms[r.Name]
		if !found {
			return
		}
		if sym.class == scParam {
			bad = "parameter " + r.Name
			return
		}
		if allWrites[r.Name] && (sym.class == scShared || sym.class == scSharedArray) {
			bad = fmt.Sprintf("shared %s, which the region writes", r.Name)
		}
	})
	if bad != "" {
		return fmt.Sprintf("%s operand reads %s", red.Op, bad)
	}
	if tt == forcelang.TReal && (red.Op == forcelang.GSum || red.Op == forcelang.GProd) &&
		c.in.cfg.Reduce != reduce.PrivateSlots {
		return fmt.Sprintf("REAL %s folds in pid order, which only the slots strategy reproduces", red.Op)
	}
	return ""
}

// conflictNames returns, sorted, every name one member writes and the
// other touches: write-read, read-write and write-write pairs all
// reorder observably across an elided barrier.
func conflictNames(x, y uniform.RefSets) []string {
	seen := map[string]bool{}
	for n := range x.Writes {
		if y.Reads[n] || y.Writes[n] {
			seen[n] = true
		}
	}
	for n := range y.Writes {
		if x.Reads[n] {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// stepCanon keys an optional loop step; an absent step is the literal 1.
func stepCanon(e forcelang.Expr) string {
	if e == nil {
		return uniform.Canon(&forcelang.IntLit{Value: 1})
	}
	return uniform.Canon(e)
}

// foldOp maps a numeric language-level reduction operator to its fold.
func foldOp(op forcelang.GOp) reduce.Op {
	switch op {
	case forcelang.GSum:
		return reduce.Sum
	case forcelang.GProd:
		return reduce.Prod
	case forcelang.GMax:
		return reduce.Max
	default:
		return reduce.Min
	}
}
