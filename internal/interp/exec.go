package interp

// Runtime of the compiled executor: index-addressed frames, the
// per-process execution context, the instance-wide storage (per-variable
// shared cells, striped arrays, async entries), and the Run driver.  The
// compiler in compile.go produces closures over these structures.

import (
	"sync"

	"repro/internal/core"
	"repro/internal/forcelang"
)

// stmtFn is one compiled statement.
type stmtFn func(pr *cproc, fr *frame)

// valFn is a compiled expression producing a boxed value; intFn, realFn
// and boolFn are the unboxed specializations the compiler prefers when
// the checker's static type allows.
type valFn func(pr *cproc, fr *frame) value
type intFn func(pr *cproc, fr *frame) int64
type realFn func(pr *cproc, fr *frame) float64
type boolFn func(pr *cproc, fr *frame) bool

// frame is one executing unit's index-addressed storage view: private
// scalar slots, private arrays, and the by-reference parameter bindings
// of the current call.  No name is resolved at execution time.
type frame struct {
	priv   []value
	arrs   []*privArray
	params []cparam
}

// cparam is one bound parameter: a scalar alias or a whole-array alias.
type cparam struct {
	sc scalarRef
	ar arrayRef
}

// cproc is one force process executing the compiled program.
type cproc struct {
	in *cinstance
	p  *core.Proc
	// puts is the stack of enclosing Askfor put functions; the innermost
	// one serves Put statements.
	puts []func(any)
}

// cunit is one compiled unit: its resolved layout plus the statement
// closures of its body (filled after every unit shell exists, so calls —
// including recursive ones — link by pointer).
type cunit struct {
	lay  *unitLayout
	body []stmtFn
	// pool recycles this unit's frames between calls, but only when
	// recycling is semantically free: a unit with private arrays would
	// have to re-zero them on every call, which costs what the
	// allocation did, so such units always take fresh frames.  Pooled
	// frames are fully re-initialized on get — private scalars recopied
	// from the typed-zero template, every parameter rebound by the call
	// — so reuse is unobservable.  A panicking call skips the put and
	// abandons the frame.
	pool *sync.Pool
}

// newFrame builds a fresh frame for the unit: typed-zero private scalars
// with ME in slot 0, fresh private arrays, and empty parameter bindings
// for the caller to fill.
func (u *cunit) newFrame(me int64) *frame {
	lay := u.lay
	fr := &frame{priv: make([]value, len(lay.privInit))}
	copy(fr.priv, lay.privInit)
	fr.priv[0] = intVal(me)
	if n := len(lay.privArrs); n > 0 {
		fr.arrs = make([]*privArray, n)
		for i, d := range lay.privArrs {
			if d.Name != "" {
				fr.arrs[i] = newPrivArray(d)
			}
		}
	}
	if n := len(lay.params); n > 0 {
		fr.params = make([]cparam, n)
	}
	return fr
}

// getFrame builds or recycles a frame for one call (or one process's
// main-body run).
func (u *cunit) getFrame(me int64) *frame {
	if u.pool == nil {
		return u.newFrame(me)
	}
	fr := u.pool.Get().(*frame)
	lay := u.lay
	if cap(fr.priv) < len(lay.privInit) {
		fr.priv = make([]value, len(lay.privInit))
	}
	fr.priv = fr.priv[:len(lay.privInit)]
	copy(fr.priv, lay.privInit)
	fr.priv[0] = intVal(me)
	if n := len(lay.params); len(fr.params) != n {
		fr.params = make([]cparam, n)
	}
	return fr
}

// putFrame returns a frame to the unit's pool; the caller must not
// retain it.
func (u *cunit) putFrame(fr *frame) {
	if u.pool != nil {
		u.pool.Put(fr)
	}
}

// cprogram is a fully compiled program.
type cprogram struct {
	units map[string]*cunit
	main  *cunit
}

// cinstance is the shared state of one compiled run: slot-indexed
// per-variable shared storage instead of the tree walker's name-keyed
// maps behind one mutex.
type cinstance struct {
	prog    *forcelang.Program
	cfg     Config
	res     *resolution
	scalars map[string][]*sharedScalar
	arrays  map[string][]*sharedArray
	asyncs  map[string][]*asyncEntry
	out     *outsink
}

func newCInstance(prog *forcelang.Program, cfg Config, res *resolution, f *core.Force) *cinstance {
	in := &cinstance{
		prog:    prog,
		cfg:     cfg,
		res:     res,
		scalars: map[string][]*sharedScalar{},
		arrays:  map[string][]*sharedArray{},
		asyncs:  map[string][]*asyncEntry{},
		out:     newOutsink(cfg.Stdout),
	}
	for unit, alloc := range res.allocs {
		ss := make([]*sharedScalar, len(alloc.scalars))
		for i, d := range alloc.scalars {
			if d.Name != "" {
				ss[i] = newSharedScalar(d.Type)
			}
		}
		sa := make([]*sharedArray, len(alloc.arrays))
		for i, d := range alloc.arrays {
			if d.Name != "" {
				sa[i] = newSharedArray(d)
			}
		}
		as := make([]*asyncEntry, len(alloc.asyncs))
		for i, d := range alloc.asyncs {
			if d.Name == "" {
				continue
			}
			as[i] = newAsyncEntry(d, cfg, f)
		}
		in.scalars[unit] = ss
		in.arrays[unit] = sa
		in.asyncs[unit] = as
	}
	// NP is shared-scalar slot 0 of the main unit.
	np := res.units[""].syms[prog.NPVar]
	in.scalars[np.unit][np.slot].store(intVal(int64(cfg.NP)))
	return in
}

func (in *cinstance) scalar(unit string, slot int) *sharedScalar { return in.scalars[unit][slot] }
func (in *cinstance) array(unit string, slot int) *sharedArray   { return in.arrays[unit][slot] }
func (in *cinstance) async(unit string, slot int) *asyncEntry    { return in.asyncs[unit][slot] }

// runCompiled resolves, compiles and executes the program on the core
// runtime — both compiled-family engines (Config.Exec == ExecChunked,
// the default, or ExecCompiled); the compiler consults cfg.Exec to
// decide whether DOALL bodies get the chunk tier.
func runCompiled(prog *forcelang.Program, cfg Config) (err error) {
	res, err := resolveProgram(prog)
	if err != nil {
		return err
	}
	f := core.New(cfg.NP, core.WithMachine(cfg.Machine), core.WithBarrier(cfg.Barrier),
		core.WithTrace(cfg.Trace), core.WithAskfor(cfg.Askfor),
		core.WithPcaseSched(cfg.Selfsched), core.WithReduce(cfg.Reduce),
		core.WithChunk(cfg.Chunk))
	defer f.Close()
	in := newCInstance(prog, cfg, res, f)
	cp, err := compileProgram(in)
	if err != nil {
		return err
	}
	if cfg.OnForce != nil {
		cfg.OnForce(f)
	}
	defer func() {
		// Flush in every exit path, but never let a flush error clobber
		// the run's own failure (a cancellation error, an abort).
		flushErr := in.out.flush()
		if r := recover(); r != nil {
			err = recoverRunErr(r)
			return
		}
		if err == nil {
			err = flushErr
		}
	}()
	return f.RunContext(runCtx(cfg), func(p *core.Proc) {
		pr := &cproc{in: in, p: p}
		fr := cp.main.getFrame(int64(p.ID()))
		for _, st := range cp.main.body {
			st(pr, fr)
		}
		cp.main.putFrame(fr)
	})
}
