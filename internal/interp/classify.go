package interp

// Uniform/varying classification for DOALL bodies — the analysis behind
// the chunk tier (chunk.go).  One walk over a ParDo body decides:
//
//   - whether the body is chunk-compilable at all.  Only Assign, IF and
//     sequential DO statements qualify; anything that can block, perform
//     I/O, call a subroutine or touch asynchronous variables falls back
//     to the per-iteration path, as does a body that writes its own loop
//     index or runs it through a non-private variable.
//   - which names are WRITTEN in the body.  A reference is *uniform*
//     (loop-invariant for the executing process) exactly when it depends
//     on no loop index and no written name; uniform subexpressions are
//     hoisted out of the iteration loop by the chunk compiler.
//   - which written shared arrays are PROVABLY DISJOINT: every access
//     uses one identical subscript form, affine in the loop indices with
//     literal coefficients and an index-free remainder, and that form is
//     injective on the index space (nonzero coefficient for one index,
//     a nonsingular 2x2 minor for two).  Disjoint arrays are accessed
//     through the striped store's bulk walker; everything else keeps the
//     per-element stripe discipline (same-element writes stay correct,
//     they just do not amortize).
//   - which shared scalars are pure accumulators: every appearance in
//     the body is one accumulator shape over the same operator —
//     `S = S + e` / `S = S - e` with an INTEGER right-hand side (sums
//     round under REAL, so only INTEGER sums fold exactly), or
//     `S = MAX(S, e)` / `S = MIN(S, e)` for INTEGER and REAL alike
//     (extrema keep one operand bit-for-bit, so they fold exactly) —
//     with e never reading S.  Their contributions accumulate
//     privately per chunk and fold into the cell with one atomic RMW:
//     an add for sums, a compare-and-swap race for extrema.
//
// A body that reads or writes subroutine parameters disables the bulk
// walker and the accumulator folding (a parameter may alias any shared
// cell or element, so holding a stripe across a parameter access could
// self-deadlock, and folding could reorder aliased writes); the body
// still chunk-compiles with per-element access.

import (
	"fmt"

	"repro/internal/forcelang"
	"repro/internal/uniform"
)

// chunkPlan is the classifier's verdict for one chunk-compilable ParDo,
// consumed (and extended with hoisted-uniform slots) by the chunk
// compiler.
type chunkPlan struct {
	outer, inner string // loop index names ("" when no inner index)

	// written holds every scalar and array name the body assigns
	// (including sequential DO indices).  References to written names
	// are varying; everything else index-free is uniform.
	written map[string]bool
	// noBulk disables the stripe walker and accumulator folding
	// (parameter references present).
	noBulk bool
	// disjoint holds the written shared arrays proven element-disjoint
	// across iterations; their accesses compile to walker accesses.
	disjoint map[string]bool
	// accs maps accumulator scalars to their private-slot index.
	accs map[string]int
	// accSyms holds the accumulator records in slot order.
	accSyms []accRec

	// Hoisted uniform subexpressions, evaluated once per construct
	// execution by the ordinary (per-iteration) closure compiler and
	// read from typed slots inside the chunk loop.  Filled in by the
	// chunk compiler.
	uniInt  []intFn
	uniReal []realFn
	uniBool []boolFn
}

// accOp is the fold operator of one accumulator scalar.
type accOp uint8

const (
	accSum accOp = iota
	accMax
	accMin
)

// accRec is one accumulator scalar's plan entry: its symbol, its fold
// operator, and whether the partial is a float64 (REAL extrema) or an
// int64 (INTEGER sums and extrema).
type accRec struct {
	sym  symbol
	op   accOp
	real bool
}

// arrayUse records one subscripted access during classification.
type arrayUse struct {
	ref   *forcelang.Ref
	write bool
}

// classifier carries the single-walk state.
type classifier struct {
	prog *forcelang.Program
	lay  *unitLayout
	plan *chunkPlan

	// reads counts scalar (unsubscripted) reads per name; selfRefs and
	// writes count, per shared scalar, the reads and writes accounted
	// for by well-formed accumulator statements.  accOps records the
	// operator each candidate accumulates under; tainted marks scalars
	// with a non-accumulator write (or with mixed operators — a sum and
	// a MAX of the same scalar cannot share one private partial).
	reads    map[string]int
	selfRefs map[string]int
	accWrite map[string]int
	writes   map[string]int
	accOps   map[string]accOp
	tainted  map[string]bool

	arrays map[string][]arrayUse
}

// classifyParDo analyses t's body.  It returns the plan, or a fallback
// reason when the body must stay on the per-iteration path.
func classifyParDo(prog *forcelang.Program, t *forcelang.ParDo, lay *unitLayout) (*chunkPlan, string) {
	plan := &chunkPlan{
		outer:    t.Var,
		written:  map[string]bool{},
		disjoint: map[string]bool{},
		accs:     map[string]int{},
	}
	if t.Inner != nil {
		plan.inner = t.Inner.Var
		if plan.inner == plan.outer {
			return nil, "inner index shadows outer index"
		}
	}
	for _, v := range []string{plan.outer, plan.inner} {
		if v == "" {
			continue
		}
		sym, ok := lay.syms[v]
		if !ok || sym.class != scPrivate {
			return nil, fmt.Sprintf("loop index %s is not a private scalar", v)
		}
	}
	cl := &classifier{
		prog:     prog,
		lay:      lay,
		plan:     plan,
		reads:    map[string]int{},
		selfRefs: map[string]int{},
		accWrite: map[string]int{},
		writes:   map[string]int{},
		accOps:   map[string]accOp{},
		tainted:  map[string]bool{},
		arrays:   map[string][]arrayUse{},
	}
	if reason := cl.stmts(t.Body); reason != "" {
		return nil, reason
	}
	if plan.written[plan.outer] || (plan.inner != "" && plan.written[plan.inner]) {
		return nil, "body writes its loop index"
	}
	cl.planArrays()
	cl.planAccs()
	return plan, ""
}

func (cl *classifier) stmts(body []forcelang.Stmt) string {
	for _, st := range body {
		if reason := cl.stmt(st); reason != "" {
			return reason
		}
	}
	return ""
}

func (cl *classifier) stmt(st forcelang.Stmt) string {
	switch t := st.(type) {
	case *forcelang.Assign:
		return cl.assign(t)
	case *forcelang.If:
		cl.expr(t.Cond)
		if reason := cl.stmts(t.Then); reason != "" {
			return reason
		}
		return cl.stmts(t.Else)
	case *forcelang.SeqDo:
		sym, ok := cl.lay.syms[t.Var]
		if !ok || sym.class != scPrivate {
			return fmt.Sprintf("sequential DO index %s is not a private scalar", t.Var)
		}
		cl.plan.written[t.Var] = true
		cl.tainted[t.Var] = true
		cl.expr(t.From)
		cl.expr(t.To)
		if t.Step != nil {
			cl.expr(t.Step)
		}
		return cl.stmts(t.Body)
	default:
		// Everything else can block, synchronize, perform I/O or call
		// out — per-iteration semantics must be preserved exactly.
		return fmt.Sprintf("%T in body", st)
	}
}

func (cl *classifier) assign(t *forcelang.Assign) string {
	sym, ok := cl.lay.syms[t.Target.Name]
	if !ok {
		return fmt.Sprintf("undefined assignment target %s", t.Target.Name)
	}
	if sym.class == scParam {
		// A parameter aliases unknown caller storage; writing through it
		// defeats every disjointness and ordering argument.
		return fmt.Sprintf("assignment through parameter %s", t.Target.Name)
	}
	cl.plan.written[t.Target.Name] = true
	if len(t.Target.Subs) > 0 {
		cl.arrays[t.Target.Name] = append(cl.arrays[t.Target.Name], arrayUse{ref: &t.Target, write: true})
		for _, s := range t.Target.Subs {
			cl.expr(s)
		}
		cl.expr(t.Expr)
		return ""
	}
	cl.writes[t.Target.Name]++
	if op, ok := cl.matchAccum(sym, t); ok {
		if prev, seen := cl.accOps[t.Target.Name]; seen && prev != op {
			cl.tainted[t.Target.Name] = true
		} else {
			cl.accOps[t.Target.Name] = op
			cl.selfRefs[t.Target.Name]++
			cl.accWrite[t.Target.Name]++
		}
	} else {
		cl.tainted[t.Target.Name] = true
	}
	cl.expr(t.Expr)
	return ""
}

// matchAccum matches one scalar assignment against the foldable
// accumulator shapes: S = S + e | S = e + S | S = S - e over an
// INTEGER shared scalar, or S = MAX(S, e) | S = MIN(S, e) over an
// INTEGER or REAL shared scalar, in both cases with e never reading S.
func (cl *classifier) matchAccum(sym symbol, t *forcelang.Assign) (accOp, bool) {
	if sym.class != scShared {
		return 0, false
	}
	name := t.Target.Name
	if delta, _, ok := uniform.AccumDelta(name, t.Expr); ok {
		// Sums fold only when the target and the whole RHS are
		// statically INTEGER: a REAL-promoted sum is computed in
		// float64 and rounded at every iteration, which privately
		// accumulated deltas cannot reproduce.
		if sym.decl.Type != forcelang.TInt {
			return 0, false
		}
		if et, err := forcelang.TypeOf(cl.prog, cl.lay.scope, t.Expr); err != nil || et != forcelang.TInt {
			return 0, false
		}
		if uniform.RefersTo(delta, name) {
			return 0, false
		}
		return accSum, true
	}
	if arg, isMax, ok := uniform.AccumMinMax(name, t.Expr); ok {
		// Extrema fold exactly for INTEGER and REAL alike — MAX/MIN
		// keep one operand bit-for-bit — but the promoted intrinsic
		// type must equal the target's declared type, so the store
		// performs no conversion the fold would have to replay.
		if sym.decl.Type != forcelang.TInt && sym.decl.Type != forcelang.TReal {
			return 0, false
		}
		if et, err := forcelang.TypeOf(cl.prog, cl.lay.scope, t.Expr); err != nil || et != sym.decl.Type {
			return 0, false
		}
		if uniform.RefersTo(arg, name) {
			return 0, false
		}
		if isMax {
			return accMax, true
		}
		return accMin, true
	}
	return 0, false
}

// expr records every reference inside e: scalar reads, parameter uses
// (which disable the bulk tier) and shared-array element reads.
func (cl *classifier) expr(e forcelang.Expr) {
	uniform.Walk(e, func(r *forcelang.Ref) {
		sym, ok := cl.lay.syms[r.Name]
		if !ok {
			return // compile will report it
		}
		if sym.class == scParam {
			cl.plan.noBulk = true
			return
		}
		if len(r.Subs) == 0 {
			cl.reads[r.Name]++
			return
		}
		if sym.class == scSharedArray {
			cl.arrays[r.Name] = append(cl.arrays[r.Name], arrayUse{ref: r})
		}
	})
}

// planArrays promotes written shared arrays to walker access when every
// access provably lands on a per-iteration-private element.
func (cl *classifier) planArrays() {
	if cl.plan.noBulk {
		return
	}
	for name, uses := range cl.arrays {
		sym := cl.lay.syms[name]
		if sym.class != scSharedArray {
			continue
		}
		written := false
		for _, u := range uses {
			if u.write {
				written = true
			}
		}
		if !written {
			// Read-only arrays keep per-element striped loads: the
			// walker's mutex would serialize concurrent readers.
			continue
		}
		if cl.disjointUses(uses) {
			cl.plan.disjoint[name] = true
		}
	}
}

// disjointUses checks the one-form + affine + injective conditions over
// all recorded accesses of one array, through the shared uniformity
// package.  The Space's IntScalar predicate encodes this classifier's
// remainder rule: an unwritten, non-parameter INTEGER private or shared
// scalar is identical for every iteration a process executes.
func (cl *classifier) disjointUses(uses []arrayUse) bool {
	sp := &uniform.Space{
		Outer: cl.plan.outer,
		Inner: cl.plan.inner,
		IntScalar: func(name string) bool {
			sym, found := cl.lay.syms[name]
			if !found || cl.plan.written[name] {
				return false
			}
			return (sym.class == scPrivate || sym.class == scShared) && sym.decl.Type == forcelang.TInt
		},
	}
	refs := make([]*forcelang.Ref, len(uses))
	for i, u := range uses {
		refs[i] = u.ref
	}
	return sp.Disjoint(refs)
}

// planAccs promotes shared scalars to private accumulation when every
// appearance in the body is accounted for by accumulator statements
// over one operator.
func (cl *classifier) planAccs() {
	if cl.plan.noBulk {
		return
	}
	for name, n := range cl.accWrite {
		if cl.tainted[name] {
			continue
		}
		if cl.writes[name] != n || cl.reads[name] != cl.selfRefs[name] {
			// The scalar is read (or written) outside its accumulator
			// statements: mid-loop values are observable, so the
			// contributions cannot be deferred.
			continue
		}
		sym := cl.lay.syms[name]
		cl.plan.accs[name] = len(cl.plan.accSyms)
		cl.plan.accSyms = append(cl.plan.accSyms, accRec{
			sym:  sym,
			op:   cl.accOps[name],
			real: sym.decl.Type == forcelang.TReal,
		})
	}
}
