package interp

// Uniform/varying classification for DOALL bodies — the analysis behind
// the chunk tier (chunk.go).  One walk over a ParDo body decides:
//
//   - whether the body is chunk-compilable at all.  Only Assign, IF and
//     sequential DO statements qualify; anything that can block, perform
//     I/O, call a subroutine or touch asynchronous variables falls back
//     to the per-iteration path, as does a body that writes its own loop
//     index or runs it through a non-private variable.
//   - which names are WRITTEN in the body.  A reference is *uniform*
//     (loop-invariant for the executing process) exactly when it depends
//     on no loop index and no written name; uniform subexpressions are
//     hoisted out of the iteration loop by the chunk compiler.
//   - which written shared arrays are PROVABLY DISJOINT: every access
//     uses one identical subscript form, affine in the loop indices with
//     literal coefficients and an index-free remainder, and that form is
//     injective on the index space (nonzero coefficient for one index,
//     a nonsingular 2x2 minor for two).  Disjoint arrays are accessed
//     through the striped store's bulk walker; everything else keeps the
//     per-element stripe discipline (same-element writes stay correct,
//     they just do not amortize).
//   - which shared INTEGER scalars are pure accumulators: every
//     appearance in the body is `S = S + e` or `S = S - e` with an
//     INTEGER right-hand side not reading S.  Their deltas accumulate
//     privately per chunk and fold into the cell with one atomic add.
//
// A body that reads or writes subroutine parameters disables the bulk
// walker and the accumulator folding (a parameter may alias any shared
// cell or element, so holding a stripe across a parameter access could
// self-deadlock, and folding could reorder aliased writes); the body
// still chunk-compiles with per-element access.

import (
	"fmt"

	"repro/internal/forcelang"
)

// chunkPlan is the classifier's verdict for one chunk-compilable ParDo,
// consumed (and extended with hoisted-uniform slots) by the chunk
// compiler.
type chunkPlan struct {
	outer, inner string // loop index names ("" when no inner index)

	// written holds every scalar and array name the body assigns
	// (including sequential DO indices).  References to written names
	// are varying; everything else index-free is uniform.
	written map[string]bool
	// noBulk disables the stripe walker and accumulator folding
	// (parameter references present).
	noBulk bool
	// disjoint holds the written shared arrays proven element-disjoint
	// across iterations; their accesses compile to walker accesses.
	disjoint map[string]bool
	// sums maps accumulator scalars to their private-slot index.
	sums map[string]int
	// sumSyms holds the accumulator symbols in slot order.
	sumSyms []symbol

	// Hoisted uniform subexpressions, evaluated once per construct
	// execution by the ordinary (per-iteration) closure compiler and
	// read from typed slots inside the chunk loop.  Filled in by the
	// chunk compiler.
	uniInt  []intFn
	uniReal []realFn
	uniBool []boolFn
}

// arrayUse records one subscripted access during classification.
type arrayUse struct {
	ref   *forcelang.Ref
	write bool
}

// classifier carries the single-walk state.
type classifier struct {
	prog *forcelang.Program
	lay  *unitLayout
	plan *chunkPlan

	// reads counts scalar (unsubscripted) reads per name; selfRefs and
	// writes count, per shared INTEGER scalar, the reads and writes
	// accounted for by well-formed accumulator statements.  tainted
	// marks scalars with a non-accumulator write.
	reads    map[string]int
	selfRefs map[string]int
	accWrite map[string]int
	writes   map[string]int
	tainted  map[string]bool

	arrays map[string][]arrayUse
}

// classifyParDo analyses t's body.  It returns the plan, or a fallback
// reason when the body must stay on the per-iteration path.
func classifyParDo(prog *forcelang.Program, t *forcelang.ParDo, lay *unitLayout) (*chunkPlan, string) {
	plan := &chunkPlan{
		outer:    t.Var,
		written:  map[string]bool{},
		disjoint: map[string]bool{},
		sums:     map[string]int{},
	}
	if t.Inner != nil {
		plan.inner = t.Inner.Var
		if plan.inner == plan.outer {
			return nil, "inner index shadows outer index"
		}
	}
	for _, v := range []string{plan.outer, plan.inner} {
		if v == "" {
			continue
		}
		sym, ok := lay.syms[v]
		if !ok || sym.class != scPrivate {
			return nil, fmt.Sprintf("loop index %s is not a private scalar", v)
		}
	}
	cl := &classifier{
		prog:     prog,
		lay:      lay,
		plan:     plan,
		reads:    map[string]int{},
		selfRefs: map[string]int{},
		accWrite: map[string]int{},
		writes:   map[string]int{},
		tainted:  map[string]bool{},
		arrays:   map[string][]arrayUse{},
	}
	if reason := cl.stmts(t.Body); reason != "" {
		return nil, reason
	}
	if plan.written[plan.outer] || (plan.inner != "" && plan.written[plan.inner]) {
		return nil, "body writes its loop index"
	}
	cl.planArrays()
	cl.planSums()
	return plan, ""
}

func (cl *classifier) stmts(body []forcelang.Stmt) string {
	for _, st := range body {
		if reason := cl.stmt(st); reason != "" {
			return reason
		}
	}
	return ""
}

func (cl *classifier) stmt(st forcelang.Stmt) string {
	switch t := st.(type) {
	case *forcelang.Assign:
		return cl.assign(t)
	case *forcelang.If:
		cl.expr(t.Cond)
		if reason := cl.stmts(t.Then); reason != "" {
			return reason
		}
		return cl.stmts(t.Else)
	case *forcelang.SeqDo:
		sym, ok := cl.lay.syms[t.Var]
		if !ok || sym.class != scPrivate {
			return fmt.Sprintf("sequential DO index %s is not a private scalar", t.Var)
		}
		cl.plan.written[t.Var] = true
		cl.tainted[t.Var] = true
		cl.expr(t.From)
		cl.expr(t.To)
		if t.Step != nil {
			cl.expr(t.Step)
		}
		return cl.stmts(t.Body)
	default:
		// Everything else can block, synchronize, perform I/O or call
		// out — per-iteration semantics must be preserved exactly.
		return fmt.Sprintf("%T in body", st)
	}
}

func (cl *classifier) assign(t *forcelang.Assign) string {
	sym, ok := cl.lay.syms[t.Target.Name]
	if !ok {
		return fmt.Sprintf("undefined assignment target %s", t.Target.Name)
	}
	if sym.class == scParam {
		// A parameter aliases unknown caller storage; writing through it
		// defeats every disjointness and ordering argument.
		return fmt.Sprintf("assignment through parameter %s", t.Target.Name)
	}
	cl.plan.written[t.Target.Name] = true
	if len(t.Target.Subs) > 0 {
		cl.arrays[t.Target.Name] = append(cl.arrays[t.Target.Name], arrayUse{ref: &t.Target, write: true})
		for _, s := range t.Target.Subs {
			cl.expr(s)
		}
		cl.expr(t.Expr)
		return ""
	}
	cl.writes[t.Target.Name]++
	// Accumulator shape: S = S + e | S = e + S | S = S - e, with an
	// INTEGER shared scalar S and an RHS that is statically INTEGER and
	// never reads S outside the self-reference.
	if sym.class == scShared && sym.decl.Type == forcelang.TInt {
		delta, _, ok := accumDelta(t.Target.Name, t.Expr)
		// The whole RHS must be statically INTEGER: a REAL-promoted sum
		// is computed in float64 and truncated on store, which private
		// integer deltas cannot reproduce.
		if ok {
			if et, err := forcelang.TypeOf(cl.prog, cl.lay.scope, t.Expr); err != nil || et != forcelang.TInt {
				ok = false
			}
		}
		if ok && !refersTo(delta, t.Target.Name) {
			cl.selfRefs[t.Target.Name]++
			cl.accWrite[t.Target.Name]++
		} else {
			cl.tainted[t.Target.Name] = true
		}
	} else {
		cl.tainted[t.Target.Name] = true
	}
	cl.expr(t.Expr)
	return ""
}

// accumDelta matches e against the accumulator shapes for scalar name,
// returning the delta expression and its sign.
func accumDelta(name string, e forcelang.Expr) (delta forcelang.Expr, negate bool, ok bool) {
	b, isBin := e.(*forcelang.Bin)
	if !isBin {
		return nil, false, false
	}
	isSelf := func(x forcelang.Expr) bool {
		r, okRef := x.(*forcelang.Ref)
		return okRef && r.Name == name && len(r.Subs) == 0
	}
	switch b.Op {
	case forcelang.OpAdd:
		if isSelf(b.L) {
			return b.R, false, true
		}
		if isSelf(b.R) {
			return b.L, false, true
		}
	case forcelang.OpSub:
		if isSelf(b.L) {
			return b.R, true, true
		}
	}
	return nil, false, false
}

// refersTo reports whether e reads the scalar name anywhere.
func refersTo(e forcelang.Expr, name string) bool {
	found := false
	walkExpr(e, func(r *forcelang.Ref) {
		if r.Name == name && len(r.Subs) == 0 {
			found = true
		}
	})
	return found
}

// walkExpr visits every Ref in e, subscripts included.
func walkExpr(e forcelang.Expr, visit func(*forcelang.Ref)) {
	switch t := e.(type) {
	case *forcelang.Ref:
		visit(t)
		for _, s := range t.Subs {
			walkExpr(s, visit)
		}
	case *forcelang.Un:
		walkExpr(t.X, visit)
	case *forcelang.Bin:
		walkExpr(t.L, visit)
		walkExpr(t.R, visit)
	case *forcelang.Intrinsic:
		for _, a := range t.Args {
			walkExpr(a, visit)
		}
	}
}

// expr records every reference inside e: scalar reads, parameter uses
// (which disable the bulk tier) and shared-array element reads.
func (cl *classifier) expr(e forcelang.Expr) {
	walkExpr(e, func(r *forcelang.Ref) {
		sym, ok := cl.lay.syms[r.Name]
		if !ok {
			return // compile will report it
		}
		if sym.class == scParam {
			cl.plan.noBulk = true
			return
		}
		if len(r.Subs) == 0 {
			cl.reads[r.Name]++
			return
		}
		if sym.class == scSharedArray {
			cl.arrays[r.Name] = append(cl.arrays[r.Name], arrayUse{ref: r})
		}
	})
}

// planArrays promotes written shared arrays to walker access when every
// access provably lands on a per-iteration-private element.
func (cl *classifier) planArrays() {
	if cl.plan.noBulk {
		return
	}
	for name, uses := range cl.arrays {
		sym := cl.lay.syms[name]
		if sym.class != scSharedArray {
			continue
		}
		written := false
		for _, u := range uses {
			if u.write {
				written = true
			}
		}
		if !written {
			// Read-only arrays keep per-element striped loads: the
			// walker's mutex would serialize concurrent readers.
			continue
		}
		if cl.disjointUses(uses) {
			cl.plan.disjoint[name] = true
		}
	}
}

// disjointUses checks the one-form + affine + injective conditions over
// all recorded accesses of one array.
func (cl *classifier) disjointUses(uses []arrayUse) bool {
	form := ""
	var coefs [][2]int64
	for ui, u := range uses {
		key := ""
		for _, s := range u.ref.Subs {
			key += canonExpr(s) + ";"
		}
		if ui == 0 {
			form = key
			for _, s := range u.ref.Subs {
				ci, cj, ok := cl.affine(s)
				if !ok {
					return false
				}
				coefs = append(coefs, [2]int64{ci, cj})
			}
			continue
		}
		if key != form {
			// Two distinct subscript forms (e.g. A(I) and A(I+1)) can
			// collide across iterations; stay per-element.
			return false
		}
	}
	if cl.plan.inner == "" {
		for _, c := range coefs {
			if c[0] != 0 {
				return true
			}
		}
		return false
	}
	// Two loop indices: some pair of subscript rows must be linearly
	// independent for the index pair to map injectively to elements.
	for a := 0; a < len(coefs); a++ {
		for b := a + 1; b < len(coefs); b++ {
			if coefs[a][0]*coefs[b][1]-coefs[a][1]*coefs[b][0] != 0 {
				return true
			}
		}
	}
	return false
}

// affine decomposes e as ci*outer + cj*inner + rest, requiring literal
// coefficients and a rest that reads only unwritten, non-parameter
// scalars (so it is identical for every iteration a process executes).
func (cl *classifier) affine(e forcelang.Expr) (ci, cj int64, ok bool) {
	switch t := e.(type) {
	case *forcelang.IntLit:
		return 0, 0, true
	case *forcelang.Ref:
		if len(t.Subs) > 0 {
			return 0, 0, false
		}
		if t.Name == cl.plan.outer {
			return 1, 0, true
		}
		if cl.plan.inner != "" && t.Name == cl.plan.inner {
			return 0, 1, true
		}
		sym, found := cl.lay.syms[t.Name]
		if !found || cl.plan.written[t.Name] {
			return 0, 0, false
		}
		if (sym.class == scPrivate || sym.class == scShared) && sym.decl.Type == forcelang.TInt {
			return 0, 0, true
		}
		return 0, 0, false
	case *forcelang.Un:
		if !t.Neg {
			return 0, 0, false
		}
		ci, cj, ok = cl.affine(t.X)
		return -ci, -cj, ok
	case *forcelang.Bin:
		switch t.Op {
		case forcelang.OpAdd, forcelang.OpSub:
			li, lj, lok := cl.affine(t.L)
			ri, rj, rok := cl.affine(t.R)
			if !lok || !rok {
				return 0, 0, false
			}
			if t.Op == forcelang.OpSub {
				return li - ri, lj - rj, true
			}
			return li + ri, lj + rj, true
		case forcelang.OpMul:
			if k, kok := constInt(t.L); kok {
				ri, rj, rok := cl.affine(t.R)
				return k * ri, k * rj, rok
			}
			if k, kok := constInt(t.R); kok {
				li, lj, lok := cl.affine(t.L)
				return k * li, k * lj, lok
			}
		}
	}
	return 0, 0, false
}

// constInt evaluates a literal-only INTEGER expression.
func constInt(e forcelang.Expr) (int64, bool) {
	switch t := e.(type) {
	case *forcelang.IntLit:
		return t.Value, true
	case *forcelang.Un:
		if !t.Neg {
			return 0, false
		}
		v, ok := constInt(t.X)
		return -v, ok
	case *forcelang.Bin:
		l, lok := constInt(t.L)
		r, rok := constInt(t.R)
		if !lok || !rok {
			return 0, false
		}
		switch t.Op {
		case forcelang.OpAdd:
			return l + r, true
		case forcelang.OpSub:
			return l - r, true
		case forcelang.OpMul:
			return l * r, true
		}
	}
	return 0, false
}

// planSums promotes shared INTEGER scalars to private accumulation when
// every appearance in the body is accounted for by accumulator
// statements.
func (cl *classifier) planSums() {
	if cl.plan.noBulk {
		return
	}
	for name, n := range cl.accWrite {
		if cl.tainted[name] {
			continue
		}
		if cl.writes[name] != n || cl.reads[name] != cl.selfRefs[name] {
			// The scalar is read (or written) outside its accumulator
			// statements: mid-loop values are observable, so the deltas
			// cannot be deferred.
			continue
		}
		cl.plan.sums[name] = len(cl.plan.sumSyms)
		cl.plan.sumSyms = append(cl.plan.sumSyms, cl.lay.syms[name])
	}
}

// canonExpr renders e to a position-independent structural key, used to
// compare subscript forms for identity.
func canonExpr(e forcelang.Expr) string {
	switch t := e.(type) {
	case *forcelang.IntLit:
		return fmt.Sprintf("i%d", t.Value)
	case *forcelang.RealLit:
		return fmt.Sprintf("r%v", t.Value)
	case *forcelang.BoolLit:
		return fmt.Sprintf("l%v", t.Value)
	case *forcelang.Ref:
		s := "v" + t.Name
		if len(t.Subs) > 0 {
			s += "("
			for _, sub := range t.Subs {
				s += canonExpr(sub) + ","
			}
			s += ")"
		}
		return s
	case *forcelang.Un:
		if t.Neg {
			return "neg(" + canonExpr(t.X) + ")"
		}
		return "not(" + canonExpr(t.X) + ")"
	case *forcelang.Bin:
		return fmt.Sprintf("b%d(%s,%s)", int(t.Op), canonExpr(t.L), canonExpr(t.R))
	case *forcelang.Intrinsic:
		s := "f" + t.Name + "("
		for _, a := range t.Args {
			s += canonExpr(a) + ","
		}
		return s + ")"
	default:
		return fmt.Sprintf("?%T", e)
	}
}
