package interp

// Uniform/varying classification for DOALL bodies — the analysis behind
// the chunk tier (chunk.go).  One walk over a ParDo body decides:
//
//   - whether the body is chunk-compilable at all.  Only Assign, IF and
//     sequential DO statements qualify; anything that can block, perform
//     I/O, call a subroutine or touch asynchronous variables falls back
//     to the per-iteration path, as does a body that writes its own loop
//     index or runs it through a non-private variable.
//   - which names are WRITTEN in the body.  A reference is *uniform*
//     (loop-invariant for the executing process) exactly when it depends
//     on no loop index and no written name; uniform subexpressions are
//     hoisted out of the iteration loop by the chunk compiler.
//   - which written shared arrays are PROVABLY DISJOINT: every access
//     uses one identical subscript form, affine in the loop indices with
//     literal coefficients and an index-free remainder, and that form is
//     injective on the index space (nonzero coefficient for one index,
//     a nonsingular 2x2 minor for two).  Disjoint arrays are accessed
//     through the striped store's bulk walker; everything else keeps the
//     per-element stripe discipline (same-element writes stay correct,
//     they just do not amortize).
//   - which shared INTEGER scalars are pure accumulators: every
//     appearance in the body is `S = S + e` or `S = S - e` with an
//     INTEGER right-hand side not reading S.  Their deltas accumulate
//     privately per chunk and fold into the cell with one atomic add.
//
// A body that reads or writes subroutine parameters disables the bulk
// walker and the accumulator folding (a parameter may alias any shared
// cell or element, so holding a stripe across a parameter access could
// self-deadlock, and folding could reorder aliased writes); the body
// still chunk-compiles with per-element access.

import (
	"fmt"

	"repro/internal/forcelang"
	"repro/internal/uniform"
)

// chunkPlan is the classifier's verdict for one chunk-compilable ParDo,
// consumed (and extended with hoisted-uniform slots) by the chunk
// compiler.
type chunkPlan struct {
	outer, inner string // loop index names ("" when no inner index)

	// written holds every scalar and array name the body assigns
	// (including sequential DO indices).  References to written names
	// are varying; everything else index-free is uniform.
	written map[string]bool
	// noBulk disables the stripe walker and accumulator folding
	// (parameter references present).
	noBulk bool
	// disjoint holds the written shared arrays proven element-disjoint
	// across iterations; their accesses compile to walker accesses.
	disjoint map[string]bool
	// sums maps accumulator scalars to their private-slot index.
	sums map[string]int
	// sumSyms holds the accumulator symbols in slot order.
	sumSyms []symbol

	// Hoisted uniform subexpressions, evaluated once per construct
	// execution by the ordinary (per-iteration) closure compiler and
	// read from typed slots inside the chunk loop.  Filled in by the
	// chunk compiler.
	uniInt  []intFn
	uniReal []realFn
	uniBool []boolFn
}

// arrayUse records one subscripted access during classification.
type arrayUse struct {
	ref   *forcelang.Ref
	write bool
}

// classifier carries the single-walk state.
type classifier struct {
	prog *forcelang.Program
	lay  *unitLayout
	plan *chunkPlan

	// reads counts scalar (unsubscripted) reads per name; selfRefs and
	// writes count, per shared INTEGER scalar, the reads and writes
	// accounted for by well-formed accumulator statements.  tainted
	// marks scalars with a non-accumulator write.
	reads    map[string]int
	selfRefs map[string]int
	accWrite map[string]int
	writes   map[string]int
	tainted  map[string]bool

	arrays map[string][]arrayUse
}

// classifyParDo analyses t's body.  It returns the plan, or a fallback
// reason when the body must stay on the per-iteration path.
func classifyParDo(prog *forcelang.Program, t *forcelang.ParDo, lay *unitLayout) (*chunkPlan, string) {
	plan := &chunkPlan{
		outer:    t.Var,
		written:  map[string]bool{},
		disjoint: map[string]bool{},
		sums:     map[string]int{},
	}
	if t.Inner != nil {
		plan.inner = t.Inner.Var
		if plan.inner == plan.outer {
			return nil, "inner index shadows outer index"
		}
	}
	for _, v := range []string{plan.outer, plan.inner} {
		if v == "" {
			continue
		}
		sym, ok := lay.syms[v]
		if !ok || sym.class != scPrivate {
			return nil, fmt.Sprintf("loop index %s is not a private scalar", v)
		}
	}
	cl := &classifier{
		prog:     prog,
		lay:      lay,
		plan:     plan,
		reads:    map[string]int{},
		selfRefs: map[string]int{},
		accWrite: map[string]int{},
		writes:   map[string]int{},
		tainted:  map[string]bool{},
		arrays:   map[string][]arrayUse{},
	}
	if reason := cl.stmts(t.Body); reason != "" {
		return nil, reason
	}
	if plan.written[plan.outer] || (plan.inner != "" && plan.written[plan.inner]) {
		return nil, "body writes its loop index"
	}
	cl.planArrays()
	cl.planSums()
	return plan, ""
}

func (cl *classifier) stmts(body []forcelang.Stmt) string {
	for _, st := range body {
		if reason := cl.stmt(st); reason != "" {
			return reason
		}
	}
	return ""
}

func (cl *classifier) stmt(st forcelang.Stmt) string {
	switch t := st.(type) {
	case *forcelang.Assign:
		return cl.assign(t)
	case *forcelang.If:
		cl.expr(t.Cond)
		if reason := cl.stmts(t.Then); reason != "" {
			return reason
		}
		return cl.stmts(t.Else)
	case *forcelang.SeqDo:
		sym, ok := cl.lay.syms[t.Var]
		if !ok || sym.class != scPrivate {
			return fmt.Sprintf("sequential DO index %s is not a private scalar", t.Var)
		}
		cl.plan.written[t.Var] = true
		cl.tainted[t.Var] = true
		cl.expr(t.From)
		cl.expr(t.To)
		if t.Step != nil {
			cl.expr(t.Step)
		}
		return cl.stmts(t.Body)
	default:
		// Everything else can block, synchronize, perform I/O or call
		// out — per-iteration semantics must be preserved exactly.
		return fmt.Sprintf("%T in body", st)
	}
}

func (cl *classifier) assign(t *forcelang.Assign) string {
	sym, ok := cl.lay.syms[t.Target.Name]
	if !ok {
		return fmt.Sprintf("undefined assignment target %s", t.Target.Name)
	}
	if sym.class == scParam {
		// A parameter aliases unknown caller storage; writing through it
		// defeats every disjointness and ordering argument.
		return fmt.Sprintf("assignment through parameter %s", t.Target.Name)
	}
	cl.plan.written[t.Target.Name] = true
	if len(t.Target.Subs) > 0 {
		cl.arrays[t.Target.Name] = append(cl.arrays[t.Target.Name], arrayUse{ref: &t.Target, write: true})
		for _, s := range t.Target.Subs {
			cl.expr(s)
		}
		cl.expr(t.Expr)
		return ""
	}
	cl.writes[t.Target.Name]++
	// Accumulator shape: S = S + e | S = e + S | S = S - e, with an
	// INTEGER shared scalar S and an RHS that is statically INTEGER and
	// never reads S outside the self-reference.
	if sym.class == scShared && sym.decl.Type == forcelang.TInt {
		delta, _, ok := uniform.AccumDelta(t.Target.Name, t.Expr)
		// The whole RHS must be statically INTEGER: a REAL-promoted sum
		// is computed in float64 and truncated on store, which private
		// integer deltas cannot reproduce.
		if ok {
			if et, err := forcelang.TypeOf(cl.prog, cl.lay.scope, t.Expr); err != nil || et != forcelang.TInt {
				ok = false
			}
		}
		if ok && !uniform.RefersTo(delta, t.Target.Name) {
			cl.selfRefs[t.Target.Name]++
			cl.accWrite[t.Target.Name]++
		} else {
			cl.tainted[t.Target.Name] = true
		}
	} else {
		cl.tainted[t.Target.Name] = true
	}
	cl.expr(t.Expr)
	return ""
}

// expr records every reference inside e: scalar reads, parameter uses
// (which disable the bulk tier) and shared-array element reads.
func (cl *classifier) expr(e forcelang.Expr) {
	uniform.Walk(e, func(r *forcelang.Ref) {
		sym, ok := cl.lay.syms[r.Name]
		if !ok {
			return // compile will report it
		}
		if sym.class == scParam {
			cl.plan.noBulk = true
			return
		}
		if len(r.Subs) == 0 {
			cl.reads[r.Name]++
			return
		}
		if sym.class == scSharedArray {
			cl.arrays[r.Name] = append(cl.arrays[r.Name], arrayUse{ref: r})
		}
	})
}

// planArrays promotes written shared arrays to walker access when every
// access provably lands on a per-iteration-private element.
func (cl *classifier) planArrays() {
	if cl.plan.noBulk {
		return
	}
	for name, uses := range cl.arrays {
		sym := cl.lay.syms[name]
		if sym.class != scSharedArray {
			continue
		}
		written := false
		for _, u := range uses {
			if u.write {
				written = true
			}
		}
		if !written {
			// Read-only arrays keep per-element striped loads: the
			// walker's mutex would serialize concurrent readers.
			continue
		}
		if cl.disjointUses(uses) {
			cl.plan.disjoint[name] = true
		}
	}
}

// disjointUses checks the one-form + affine + injective conditions over
// all recorded accesses of one array, through the shared uniformity
// package.  The Space's IntScalar predicate encodes this classifier's
// remainder rule: an unwritten, non-parameter INTEGER private or shared
// scalar is identical for every iteration a process executes.
func (cl *classifier) disjointUses(uses []arrayUse) bool {
	sp := &uniform.Space{
		Outer: cl.plan.outer,
		Inner: cl.plan.inner,
		IntScalar: func(name string) bool {
			sym, found := cl.lay.syms[name]
			if !found || cl.plan.written[name] {
				return false
			}
			return (sym.class == scPrivate || sym.class == scShared) && sym.decl.Type == forcelang.TInt
		},
	}
	refs := make([]*forcelang.Ref, len(uses))
	for i, u := range uses {
		refs[i] = u.ref
	}
	return sp.Disjoint(refs)
}

// planSums promotes shared INTEGER scalars to private accumulation when
// every appearance in the body is accounted for by accumulator
// statements.
func (cl *classifier) planSums() {
	if cl.plan.noBulk {
		return
	}
	for name, n := range cl.accWrite {
		if cl.tainted[name] {
			continue
		}
		if cl.writes[name] != n || cl.reads[name] != cl.selfRefs[name] {
			// The scalar is read (or written) outside its accumulator
			// statements: mid-loop values are observable, so the deltas
			// cannot be deferred.
			continue
		}
		cl.plan.sums[name] = len(cl.plan.sumSyms)
		cl.plan.sumSyms = append(cl.plan.sumSyms, cl.lay.syms[name])
	}
}
