package interp

// The closure compiler: one walk over the checked, slot-resolved AST
// produces a tree of typed Go closures over index-addressed frames.  All
// name resolution, type dispatch and operator dispatch happens here,
// once; execution then runs straight-line closure calls — private
// variables are direct slot reads, shared scalars single atomic
// operations, shared array elements stripe-locked element accesses.
// Expressions whose static type the checker knows compile to unboxed
// int64/float64/bool closures, so arithmetic never touches the boxed
// value representation between a load and a store.

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/forcelang"
	"repro/internal/sched"
)

// compileErr carries a compilation failure (an unchecked or internally
// inconsistent program) out of the recursive compiler.
type compileErr struct{ error }

func compileErrf(format string, args ...any) compileErr {
	return compileErr{fmt.Errorf("interp: compile: "+format, args...)}
}

type compiler struct {
	in    *cinstance
	res   *resolution
	units map[string]*cunit
}

// compileProgram compiles every unit of the instance's program.  Unit
// shells are created first so Call statements (including recursive ones)
// link to their target by pointer before its body exists.
func compileProgram(in *cinstance) (cp *cprogram, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileErr); ok {
				err = ce.error
				return
			}
			panic(r)
		}
	}()
	c := &compiler{in: in, res: in.res, units: map[string]*cunit{}}
	for name, lay := range in.res.units {
		cu := &cunit{lay: lay}
		if len(lay.privArrs) == 0 {
			cu.pool = &sync.Pool{New: func() any { return &frame{} }}
		}
		c.units[name] = cu
	}
	for _, cu := range c.units {
		body := in.res.prog.Body
		if cu.lay.sub != nil {
			body = cu.lay.sub.Body
		}
		cu.body = c.stmts(body, cu.lay)
	}
	return &cprogram{units: c.units, main: c.units[""]}, nil
}

// typ returns the checker's static type of e in the unit's scope.
func (c *compiler) typ(e forcelang.Expr, lay *unitLayout) forcelang.Type {
	t, err := forcelang.TypeOf(c.res.prog, lay.scope, e)
	if err != nil {
		panic(compileErr{fmt.Errorf("interp: compile: %w", err)})
	}
	return t
}

// --- statements --------------------------------------------------------

func (c *compiler) stmts(list []forcelang.Stmt, lay *unitLayout) []stmtFn {
	if c.fuseEnabled() {
		return c.fusedStmts(list, lay)
	}
	out := make([]stmtFn, len(list))
	for i, st := range list {
		out[i] = c.stmt(st, lay)
	}
	return out
}

func runBody(body []stmtFn, pr *cproc, fr *frame) {
	for _, st := range body {
		st(pr, fr)
	}
}

func (c *compiler) stmt(st forcelang.Stmt, lay *unitLayout) stmtFn {
	switch t := st.(type) {
	case *forcelang.Assign:
		store, tt := c.refStore(&t.Target, lay)
		ev := c.valAs(t.Expr, lay, tt)
		return func(pr *cproc, fr *frame) { store(pr, fr, ev(pr, fr)) }
	case *forcelang.If:
		cond := c.cBool(t.Cond, lay)
		then := c.stmts(t.Then, lay)
		els := c.stmts(t.Else, lay)
		return func(pr *cproc, fr *frame) {
			if cond(pr, fr) {
				runBody(then, pr, fr)
			} else {
				runBody(els, pr, fr)
			}
		}
	case *forcelang.SeqDo:
		fromF, toF, stepF := c.cInt(t.From, lay), c.cInt(t.To, lay), c.stepFn(t.Step, lay)
		storeVar := c.intVarStore(t.Var, lay, t.Pos())
		body := c.stmts(t.Body, lay)
		line := t.From.Pos()
		return func(pr *cproc, fr *frame) {
			from, to := fromF(pr, fr), toF(pr, fr)
			step := stepF(pr, fr)
			if step == 0 {
				panic(rtErrf(line, "loop step is zero"))
			}
			for i := from; (step > 0 && i <= to) || (step < 0 && i >= to); i += step {
				storeVar(pr, fr, i)
				runBody(body, pr, fr)
			}
		}
	case *forcelang.WhileDo:
		cond := c.cBool(t.Cond, lay)
		body := c.stmts(t.Body, lay)
		return func(pr *cproc, fr *frame) {
			for cond(pr, fr) {
				// A poisoned force must not wait out a (possibly
				// unbounded) sequential loop; the watchdog relies on
				// this check.
				pr.p.Check()
				runBody(body, pr, fr)
			}
		}
	case *forcelang.ParDo:
		return c.parDo(t, lay)
	case *forcelang.BarrierStmt:
		section := c.stmts(t.Section, lay)
		note := noteStr("Barrier", t.Pos())
		return func(pr *cproc, fr *frame) {
			pr.p.Note(note)
			pr.p.BarrierSection(func() { runBody(section, pr, fr) })
		}
	case *forcelang.CriticalStmt:
		body := c.stmts(t.Body, lay)
		name := t.Name
		note := noteStr("Critical "+name, t.Pos())
		return func(pr *cproc, fr *frame) {
			pr.p.Note(note)
			pr.p.Critical(name, func() { runBody(body, pr, fr) })
		}
	case *forcelang.PcaseStmt:
		type cblock struct {
			cond boolFn
			body []stmtFn
		}
		blocks := make([]cblock, len(t.Blocks))
		for i, b := range t.Blocks {
			if b.Cond != nil {
				blocks[i].cond = c.cBool(b.Cond, lay)
			}
			blocks[i].body = c.stmts(b.Body, lay)
		}
		selfsched := t.Selfsched
		note := noteStr("Pcase", t.Pos())
		return func(pr *cproc, fr *frame) {
			pr.p.Note(note)
			bl := make([]core.Block, len(blocks))
			for i := range blocks {
				b := blocks[i]
				var cond func() bool
				if b.cond != nil {
					cond = func() bool { return b.cond(pr, fr) }
				}
				bl[i] = core.Block{Cond: cond, Body: func() { runBody(b.body, pr, fr) }}
			}
			if selfsched {
				pr.p.SelfschedPcase(bl...)
			} else {
				pr.p.Pcase(bl...)
			}
		}
	case *forcelang.AskforStmt:
		seedF := c.cInt(t.Seed, lay)
		storeVar := c.intVarStore(t.Var, lay, t.Pos())
		body := c.stmts(t.Body, lay)
		note := noteStr("Askfor", t.Pos())
		return func(pr *cproc, fr *frame) {
			pr.p.Note(note)
			seed := seedF(pr, fr)
			pr.p.Askfor([]any{seed}, func(task any, put func(any)) {
				storeVar(pr, fr, task.(int64))
				pr.puts = append(pr.puts, put)
				defer func() { pr.puts = pr.puts[:len(pr.puts)-1] }()
				runBody(body, pr, fr)
			})
		}
	case *forcelang.PutStmt:
		ev := c.asInt(t.Expr, lay)
		line := t.Pos()
		return func(pr *cproc, fr *frame) {
			if len(pr.puts) == 0 {
				panic(rtErrf(line, "Put outside an Askfor body"))
			}
			pr.puts[len(pr.puts)-1](ev(pr, fr))
		}
	case *forcelang.ReduceStmt:
		inner := c.greduce(t, lay)
		note := noteStr(t.Op.String(), t.Pos())
		return func(pr *cproc, fr *frame) {
			pr.p.Note(note)
			inner(pr, fr)
		}
	case *forcelang.ProduceStmt:
		cellF := c.asyncCellFn(t.Var, t.Sub, lay, t.Pos())
		ev, _ := c.val(t.Expr, lay)
		note := noteStr("Produce "+t.Var, t.Pos())
		return func(pr *cproc, fr *frame) {
			cell := cellF(pr, fr)
			v := ev(pr, fr)
			pr.p.Note(note)
			pr.p.WithSite(&core.AsyncSiteLabel, func() { cell.Produce(v) })
		}
	case *forcelang.ConsumeStmt:
		cellF := c.asyncCellFn(t.Var, t.Sub, lay, t.Pos())
		store, tt := c.refStore(&t.Target, lay)
		line := t.Pos()
		note := noteStr("Consume "+t.Var, line)
		return func(pr *cproc, fr *frame) {
			cell := cellF(pr, fr)
			pr.p.Note(note)
			var v value
			pr.p.WithSite(&core.AsyncSiteLabel, func() { v = cell.Consume() })
			// The cell holds whatever type the producer stored, so the
			// coercion to the target's type is a runtime one.
			store(pr, fr, coerce(v, tt, line))
		}
	case *forcelang.CopyStmt:
		cellF := c.asyncCellFn(t.Var, t.Sub, lay, t.Pos())
		store, tt := c.refStore(&t.Target, lay)
		line := t.Pos()
		note := noteStr("Copy "+t.Var, line)
		return func(pr *cproc, fr *frame) {
			cell := cellF(pr, fr)
			pr.p.Note(note)
			var v value
			pr.p.WithSite(&core.AsyncSiteLabel, func() { v = cell.Copy() })
			store(pr, fr, coerce(v, tt, line))
		}
	case *forcelang.VoidStmt:
		cellF := c.asyncCellFn(t.Var, t.Sub, lay, t.Pos())
		note := noteStr("Void "+t.Var, t.Pos())
		return func(pr *cproc, fr *frame) {
			cell := cellF(pr, fr)
			pr.p.Note(note) // Void can block on a racing consumer
			pr.p.WithSite(&core.AsyncSiteLabel, cell.Void)
		}
	case *forcelang.PrintStmt:
		return c.print(t, lay)
	case *forcelang.CallStmt:
		return c.call(t, lay)
	default:
		panic(compileErrf("line %d: unhandled statement %T", st.Pos(), st))
	}
}

// noteStr builds the watchdog location note for one potentially
// blocking statement, precomputed at compile time so the per-execution
// cost is a single atomic pointer store.
func noteStr(kind string, line int) *string {
	s := fmt.Sprintf("%s, line %d", kind, line)
	return &s
}

// stepFn compiles an optional loop step (nil means 1).
func (c *compiler) stepFn(step forcelang.Expr, lay *unitLayout) intFn {
	if step == nil {
		return func(pr *cproc, fr *frame) int64 { return 1 }
	}
	return c.cInt(step, lay)
}

// intVarStore compiles the store of a raw int64 into a scalar INTEGER
// variable (loop indices, Askfor task variables).
func (c *compiler) intVarStore(name string, lay *unitLayout, line int) func(pr *cproc, fr *frame, i int64) {
	sym := lay.lookup(name, line)
	switch sym.class {
	case scPrivate:
		slot := sym.slot
		return func(pr *cproc, fr *frame, i int64) { fr.priv[slot] = intVal(i) }
	case scShared:
		cell := c.in.scalar(sym.unit, sym.slot)
		return func(pr *cproc, fr *frame, i int64) { cell.store(intVal(i)) }
	case scParam:
		idx := sym.slot
		return func(pr *cproc, fr *frame, i int64) { fr.params[idx].sc.store(intVal(i)) }
	default:
		panic(compileErrf("line %d: %s is not a scalar variable", line, name))
	}
}

func (c *compiler) parDo(t *forcelang.ParDo, lay *unitLayout) stmtFn {
	// Chunk tier first (ExecChunked only): bodies the classifier proves
	// safe run as per-span tight loops; everything else — and every
	// body under ExecCompiled or an iteration-level trace — takes the
	// per-iteration path below.
	if fn := c.tryChunkParDo(t, lay); fn != nil {
		return fn
	}
	fromF, toF, stepF := c.cInt(t.From, lay), c.cInt(t.To, lay), c.stepFn(t.Step, lay)
	storeVar := c.intVarStore(t.Var, lay, t.Pos())
	body := c.stmts(t.Body, lay)
	line := t.From.Pos()
	presched := t.Sched == forcelang.Presched
	note := noteStr("DOALL", t.Pos())
	if t.Inner == nil {
		return func(pr *cproc, fr *frame) {
			pr.p.Note(note)
			from, to := fromF(pr, fr), toF(pr, fr)
			step := stepF(pr, fr)
			if step == 0 {
				panic(rtErrf(line, "loop step is zero"))
			}
			r := sched.Range{Start: int(from), Last: int(to), Incr: int(step)}
			bodyFn := func(i int) {
				storeVar(pr, fr, int64(i))
				runBody(body, pr, fr)
			}
			if presched {
				pr.p.PreschedDo(r, bodyFn)
			} else {
				pr.p.DoAll(pr.in.cfg.Selfsched, r, bodyFn)
			}
		}
	}
	ifromF, itoF, istepF := c.cInt(t.Inner.From, lay), c.cInt(t.Inner.To, lay), c.stepFn(t.Inner.Step, lay)
	storeInner := c.intVarStore(t.Inner.Var, lay, t.Pos())
	iline := t.Inner.From.Pos()
	return func(pr *cproc, fr *frame) {
		pr.p.Note(note)
		from, to := fromF(pr, fr), toF(pr, fr)
		step := stepF(pr, fr)
		if step == 0 {
			panic(rtErrf(line, "loop step is zero"))
		}
		ifrom, ito := ifromF(pr, fr), itoF(pr, fr)
		istep := istepF(pr, fr)
		if istep == 0 {
			panic(rtErrf(iline, "loop step is zero"))
		}
		r := sched.Range{Start: int(from), Last: int(to), Incr: int(step)}
		r2 := sched.Range{Start: int(ifrom), Last: int(ito), Incr: int(istep)}
		bodyFn := func(i, j int) {
			storeVar(pr, fr, int64(i))
			storeInner(pr, fr, int64(j))
			runBody(body, pr, fr)
		}
		if presched {
			pr.p.PreschedDo2(r, r2, bodyFn)
		} else {
			pr.p.DoAll2(pr.in.cfg.Selfsched, r, r2, bodyFn)
		}
	}
}

// greduce compiles a global-reduction statement: the operand combines
// across the force in the target's type (so the compiled executor, the
// tree walker and the code generator all fold in the same arithmetic)
// and every process assigns the combined value.
func (c *compiler) greduce(t *forcelang.ReduceStmt, lay *unitLayout) stmtFn {
	store, tt := c.refStore(&t.Target, lay)
	op := t.Op
	if op.Logical() {
		bv := c.cBool(t.Expr, lay)
		return func(pr *cproc, fr *frame) {
			b := bv(pr, fr)
			var out bool
			if op == forcelang.GAnd {
				out = core.Gand(pr.p, b)
			} else {
				out = core.Gor(pr.p, b)
			}
			store(pr, fr, boolVal(out))
		}
	}
	if tt == forcelang.TInt {
		iv := c.asInt(t.Expr, lay)
		return func(pr *cproc, fr *frame) {
			store(pr, fr, intVal(greduceNum(pr.p, op, iv(pr, fr))))
		}
	}
	rv := c.cReal(t.Expr, lay)
	return func(pr *cproc, fr *frame) {
		store(pr, fr, realVal(greduceNum(pr.p, op, rv(pr, fr))))
	}
}

// asyncCellFn compiles the cell address of an async statement: the entry
// is resolved at compile time, only the optional subscript at run time.
func (c *compiler) asyncCellFn(varName string, sub forcelang.Expr, lay *unitLayout, line int) func(pr *cproc, fr *frame) asyncCell {
	sym := lay.lookup(varName, line)
	if sym.class != scAsync {
		panic(compileErrf("line %d: %s is not an Async variable", line, varName))
	}
	e := c.in.async(sym.unit, sym.slot)
	name := varName
	if sub == nil {
		return func(pr *cproc, fr *frame) asyncCell { return e.at(0, false, name, line) }
	}
	sf := c.cInt(sub, lay)
	return func(pr *cproc, fr *frame) asyncCell { return e.at(sf(pr, fr), true, name, line) }
}

func (c *compiler) print(t *forcelang.PrintStmt, lay *unitLayout) stmtFn {
	type part struct {
		lit string
		ev  valFn
	}
	parts := make([]part, len(t.Items))
	for i, item := range t.Items {
		if s, ok := item.(*forcelang.StrLit); ok {
			parts[i] = part{lit: s.Value}
			continue
		}
		ev, _ := c.val(item, lay)
		parts[i] = part{ev: ev}
	}
	return func(pr *cproc, fr *frame) {
		strs := make([]string, len(parts))
		for i := range parts {
			if parts[i].ev == nil {
				strs[i] = parts[i].lit
			} else {
				strs[i] = parts[i].ev(pr, fr).String()
			}
		}
		pr.in.out.writeLine(strings.Join(strs, " ") + "\n")
	}
}

func (c *compiler) call(t *forcelang.CallStmt, lay *unitLayout) stmtFn {
	target, ok := c.units[t.Name]
	if !ok {
		panic(compileErrf("line %d: call of undefined subroutine %s", t.Pos(), t.Name))
	}
	binders := make([]func(pr *cproc, fr *frame) cparam, len(t.Args))
	for i := range t.Args {
		binders[i] = c.bindArg(&t.Args[i], target.lay.params[i].decl, lay)
	}
	return func(pr *cproc, fr *frame) {
		nf := target.getFrame(int64(pr.p.ID()))
		for i, bind := range binders {
			nf.params[i] = bind(pr, fr)
		}
		runBody(target.body, pr, nf)
		target.putFrame(nf)
	}
}

// bindArg compiles the binding of one call argument to the callee's
// parameter: a scalar alias (shared cell, caller-private slot, array
// element, or a forwarded parameter) or a whole-array alias.
func (c *compiler) bindArg(arg *forcelang.Ref, paramDecl forcelang.Decl, lay *unitLayout) func(pr *cproc, fr *frame) cparam {
	sym := lay.lookup(arg.Name, arg.Pos())
	if len(arg.Subs) > 0 {
		// Element argument: alias the single cell.
		switch sym.class {
		case scSharedArray:
			arr := c.in.array(sym.unit, sym.slot)
			off := c.offsetFn(sym.decl.Dims, arg.Subs, arg.Name, arg.Pos(), lay)
			return func(pr *cproc, fr *frame) cparam {
				return cparam{sc: elemRef{a: arr, off: off(pr, fr)}}
			}
		case scPrivArray:
			slot := sym.slot
			off := c.offsetFn(sym.decl.Dims, arg.Subs, arg.Name, arg.Pos(), lay)
			return func(pr *cproc, fr *frame) cparam {
				return cparam{sc: elemRef{a: fr.arrs[slot], off: off(pr, fr)}}
			}
		case scParam:
			idx := sym.slot
			subs := c.intFns(arg.Subs, lay)
			name, line := arg.Name, arg.Pos()
			return func(pr *cproc, fr *frame) cparam {
				ar := fr.params[idx].ar
				off := flatOffset(ar.shape(), evalSubs(subs, pr, fr), name, line)
				return cparam{sc: elemRef{a: ar, off: off}}
			}
		}
		panic(compileErrf("line %d: %s is not an array", arg.Pos(), arg.Name))
	}
	if len(paramDecl.Dims) > 0 {
		// Whole-array argument.
		switch sym.class {
		case scSharedArray:
			arr := c.in.array(sym.unit, sym.slot)
			return func(pr *cproc, fr *frame) cparam { return cparam{ar: arr} }
		case scPrivArray:
			slot := sym.slot
			return func(pr *cproc, fr *frame) cparam { return cparam{ar: fr.arrs[slot]} }
		case scParam:
			idx := sym.slot
			return func(pr *cproc, fr *frame) cparam { return cparam{ar: fr.params[idx].ar} }
		}
		panic(compileErrf("line %d: argument %s is not an array", arg.Pos(), arg.Name))
	}
	// Scalar argument.
	switch sym.class {
	case scShared:
		cell := c.in.scalar(sym.unit, sym.slot)
		return func(pr *cproc, fr *frame) cparam { return cparam{sc: cell} }
	case scPrivate:
		slot := sym.slot
		return func(pr *cproc, fr *frame) cparam { return cparam{sc: privPtr{p: &fr.priv[slot]}} }
	case scParam:
		idx := sym.slot
		return func(pr *cproc, fr *frame) cparam { return cparam{sc: fr.params[idx].sc} }
	}
	panic(compileErrf("line %d: argument %s is not a scalar variable", arg.Pos(), arg.Name))
}

// --- variable access ----------------------------------------------------

// refStore compiles a store into an lvalue, returning the store closure
// and the variable's declared type; the caller compiles the value to
// that type.
func (c *compiler) refStore(t *forcelang.Ref, lay *unitLayout) (func(pr *cproc, fr *frame, v value), forcelang.Type) {
	sym := lay.lookup(t.Name, t.Pos())
	tt := sym.decl.Type
	if len(t.Subs) == 0 {
		switch sym.class {
		case scPrivate:
			slot := sym.slot
			return func(pr *cproc, fr *frame, v value) { fr.priv[slot] = v }, tt
		case scShared:
			cell := c.in.scalar(sym.unit, sym.slot)
			return func(pr *cproc, fr *frame, v value) { cell.store(v) }, tt
		case scParam:
			idx := sym.slot
			return func(pr *cproc, fr *frame, v value) { fr.params[idx].sc.store(v) }, tt
		}
		panic(compileErrf("line %d: cannot assign to %s", t.Pos(), t.Name))
	}
	switch sym.class {
	case scSharedArray:
		arr := c.in.array(sym.unit, sym.slot)
		off := c.offsetFn(sym.decl.Dims, t.Subs, t.Name, t.Pos(), lay)
		return func(pr *cproc, fr *frame, v value) { arr.store(off(pr, fr), v) }, tt
	case scPrivArray:
		slot := sym.slot
		off := c.offsetFn(sym.decl.Dims, t.Subs, t.Name, t.Pos(), lay)
		return func(pr *cproc, fr *frame, v value) { fr.arrs[slot].data[off(pr, fr)] = v }, tt
	case scParam:
		idx := sym.slot
		subs := c.intFns(t.Subs, lay)
		name, line := t.Name, t.Pos()
		return func(pr *cproc, fr *frame, v value) {
			ar := fr.params[idx].ar
			ar.store(flatOffset(ar.shape(), evalSubs(subs, pr, fr), name, line), v)
		}, tt
	}
	panic(compileErrf("line %d: %s is not an array", t.Pos(), t.Name))
}

// refLoad compiles a load of a variable or array-element reference.
func (c *compiler) refLoad(t *forcelang.Ref, lay *unitLayout) valFn {
	sym := lay.lookup(t.Name, t.Pos())
	if len(t.Subs) == 0 {
		switch sym.class {
		case scPrivate:
			slot := sym.slot
			return func(pr *cproc, fr *frame) value { return fr.priv[slot] }
		case scShared:
			cell := c.in.scalar(sym.unit, sym.slot)
			return func(pr *cproc, fr *frame) value { return cell.load() }
		case scParam:
			idx := sym.slot
			return func(pr *cproc, fr *frame) value { return fr.params[idx].sc.load() }
		}
		panic(compileErrf("line %d: %s cannot be read directly", t.Pos(), t.Name))
	}
	switch sym.class {
	case scSharedArray:
		arr := c.in.array(sym.unit, sym.slot)
		off := c.offsetFn(sym.decl.Dims, t.Subs, t.Name, t.Pos(), lay)
		return func(pr *cproc, fr *frame) value { return arr.load(off(pr, fr)) }
	case scPrivArray:
		slot := sym.slot
		off := c.offsetFn(sym.decl.Dims, t.Subs, t.Name, t.Pos(), lay)
		return func(pr *cproc, fr *frame) value { return fr.arrs[slot].data[off(pr, fr)] }
	case scParam:
		idx := sym.slot
		subs := c.intFns(t.Subs, lay)
		name, line := t.Name, t.Pos()
		return func(pr *cproc, fr *frame) value {
			ar := fr.params[idx].ar
			return ar.load(flatOffset(ar.shape(), evalSubs(subs, pr, fr), name, line))
		}
	}
	panic(compileErrf("line %d: %s is not an array", t.Pos(), t.Name))
}

// offsetFn compiles the flat offset of a subscripted reference against
// statically known dimensions, bounds-checking at run time.
func (c *compiler) offsetFn(dims []int, subs []forcelang.Expr, name string, line int, lay *unitLayout) func(pr *cproc, fr *frame) int {
	if len(subs) != len(dims) {
		panic(compileErrf("line %d: %s: %d subscripts for %d dims", line, name, len(subs), len(dims)))
	}
	fns := c.intFns(subs, lay)
	if len(dims) == 1 {
		d0, s0 := dims[0], fns[0]
		return func(pr *cproc, fr *frame) int {
			s := s0(pr, fr)
			if s < 1 || s > int64(d0) {
				panic(rtErrf(line, "subscript 1 of %s out of range: %d not in [1,%d]", name, s, d0))
			}
			return int(s - 1)
		}
	}
	return func(pr *cproc, fr *frame) int {
		return flatOffset(dims, evalSubs(fns, pr, fr), name, line)
	}
}

func (c *compiler) intFns(exprs []forcelang.Expr, lay *unitLayout) []intFn {
	out := make([]intFn, len(exprs))
	for i, e := range exprs {
		out[i] = c.cInt(e, lay)
	}
	return out
}

func evalSubs(fns []intFn, pr *cproc, fr *frame) []int64 {
	out := make([]int64, len(fns))
	for i, f := range fns {
		out[i] = f(pr, fr)
	}
	return out
}

// --- expressions --------------------------------------------------------

// val compiles an expression to a boxed value closure (Print, Produce),
// returning its static type.
func (c *compiler) val(e forcelang.Expr, lay *unitLayout) (valFn, forcelang.Type) {
	t := c.typ(e, lay)
	switch t {
	case forcelang.TInt:
		iv := c.cInt(e, lay)
		return func(pr *cproc, fr *frame) value { return intVal(iv(pr, fr)) }, t
	case forcelang.TReal:
		rv := c.cReal(e, lay)
		return func(pr *cproc, fr *frame) value { return realVal(rv(pr, fr)) }, t
	default:
		bv := c.cBool(e, lay)
		return func(pr *cproc, fr *frame) value { return boolVal(bv(pr, fr)) }, t
	}
}

// valAs compiles an expression to a boxed value of the wanted type,
// placing the numeric conversion at compile time (the coercion the tree
// walker re-decides on every store).
func (c *compiler) valAs(e forcelang.Expr, lay *unitLayout, want forcelang.Type) valFn {
	switch want {
	case forcelang.TInt:
		iv := c.asInt(e, lay)
		return func(pr *cproc, fr *frame) value { return intVal(iv(pr, fr)) }
	case forcelang.TReal:
		rv := c.cReal(e, lay)
		return func(pr *cproc, fr *frame) value { return realVal(rv(pr, fr)) }
	default:
		bv := c.cBool(e, lay)
		return func(pr *cproc, fr *frame) value { return boolVal(bv(pr, fr)) }
	}
}

// asInt compiles a numeric expression to int64, truncating REAL values
// (Fortran coercion).
func (c *compiler) asInt(e forcelang.Expr, lay *unitLayout) intFn {
	if c.typ(e, lay) == forcelang.TInt {
		return c.cInt(e, lay)
	}
	rv := c.cReal(e, lay)
	return func(pr *cproc, fr *frame) int64 { return int64(rv(pr, fr)) }
}

// cInt compiles an INTEGER-typed expression to an unboxed int64 closure.
func (c *compiler) cInt(e forcelang.Expr, lay *unitLayout) intFn {
	switch t := e.(type) {
	case *forcelang.IntLit:
		v := t.Value
		return func(pr *cproc, fr *frame) int64 { return v }
	case *forcelang.Ref:
		return c.refInt(t, lay)
	case *forcelang.Un:
		x := c.cInt(t.X, lay)
		return func(pr *cproc, fr *frame) int64 { return -x(pr, fr) }
	case *forcelang.Bin:
		l, r := c.cInt(t.L, lay), c.cInt(t.R, lay)
		switch t.Op {
		case forcelang.OpAdd:
			return func(pr *cproc, fr *frame) int64 { return l(pr, fr) + r(pr, fr) }
		case forcelang.OpSub:
			return func(pr *cproc, fr *frame) int64 { return l(pr, fr) - r(pr, fr) }
		case forcelang.OpMul:
			return func(pr *cproc, fr *frame) int64 { return l(pr, fr) * r(pr, fr) }
		case forcelang.OpDiv:
			line := t.Pos()
			return func(pr *cproc, fr *frame) int64 {
				rv := r(pr, fr)
				if rv == 0 {
					panic(rtErrf(line, "integer division by zero"))
				}
				return l(pr, fr) / rv
			}
		}
	case *forcelang.Intrinsic:
		return c.intrinsicInt(t, lay)
	}
	panic(compileErrf("line %d: internal: %T is not an INTEGER expression", e.Pos(), e))
}

func (c *compiler) refInt(t *forcelang.Ref, lay *unitLayout) intFn {
	sym := lay.lookup(t.Name, t.Pos())
	if len(t.Subs) == 0 {
		switch sym.class {
		case scPrivate:
			slot := sym.slot
			return func(pr *cproc, fr *frame) int64 { return fr.priv[slot].i }
		case scShared:
			cell := c.in.scalar(sym.unit, sym.slot)
			return func(pr *cproc, fr *frame) int64 { return int64(cell.bits.Load()) }
		}
	}
	lv := c.refLoad(t, lay)
	return func(pr *cproc, fr *frame) int64 { return lv(pr, fr).i }
}

func (c *compiler) intrinsicInt(t *forcelang.Intrinsic, lay *unitLayout) intFn {
	switch t.Name {
	case "ABS":
		x := c.cInt(t.Args[0], lay)
		return func(pr *cproc, fr *frame) int64 {
			v := x(pr, fr)
			if v < 0 {
				return -v
			}
			return v
		}
	case "INT":
		// The tree walker converts through asReal even for INTEGER
		// arguments; keep the identical data path.
		rv := c.cReal(t.Args[0], lay)
		return func(pr *cproc, fr *frame) int64 { return int64(rv(pr, fr)) }
	case "NINT":
		rv := c.cReal(t.Args[0], lay)
		return func(pr *cproc, fr *frame) int64 { return int64(math.Round(rv(pr, fr))) }
	case "MOD":
		l, r := c.cInt(t.Args[0], lay), c.cInt(t.Args[1], lay)
		line := t.Pos()
		return func(pr *cproc, fr *frame) int64 {
			rv := r(pr, fr)
			if rv == 0 {
				panic(rtErrf(line, "MOD by zero"))
			}
			return l(pr, fr) % rv
		}
	case "MIN", "MAX":
		args := c.intFns(t.Args, lay)
		min := t.Name == "MIN"
		return func(pr *cproc, fr *frame) int64 {
			best := args[0](pr, fr)
			for _, a := range args[1:] {
				x := a(pr, fr)
				if (min && x < best) || (!min && x > best) {
					best = x
				}
			}
			return best
		}
	}
	panic(compileErrf("line %d: internal: %s is not an INTEGER intrinsic", t.Pos(), t.Name))
}

// cReal compiles a numeric expression to an unboxed float64 closure,
// converting statically INTEGER subexpressions at the boundary.
func (c *compiler) cReal(e forcelang.Expr, lay *unitLayout) realFn {
	if c.typ(e, lay) == forcelang.TInt {
		iv := c.cInt(e, lay)
		return func(pr *cproc, fr *frame) float64 { return float64(iv(pr, fr)) }
	}
	switch t := e.(type) {
	case *forcelang.RealLit:
		v := t.Value
		return func(pr *cproc, fr *frame) float64 { return v }
	case *forcelang.Ref:
		return c.refReal(t, lay)
	case *forcelang.Un:
		x := c.cReal(t.X, lay)
		return func(pr *cproc, fr *frame) float64 { return -x(pr, fr) }
	case *forcelang.Bin:
		l, r := c.cReal(t.L, lay), c.cReal(t.R, lay)
		switch t.Op {
		case forcelang.OpAdd:
			return func(pr *cproc, fr *frame) float64 { return l(pr, fr) + r(pr, fr) }
		case forcelang.OpSub:
			return func(pr *cproc, fr *frame) float64 { return l(pr, fr) - r(pr, fr) }
		case forcelang.OpMul:
			return func(pr *cproc, fr *frame) float64 { return l(pr, fr) * r(pr, fr) }
		case forcelang.OpDiv:
			// IEEE semantics for real division, as in the tree walker.
			return func(pr *cproc, fr *frame) float64 { return l(pr, fr) / r(pr, fr) }
		}
	case *forcelang.Intrinsic:
		return c.intrinsicReal(t, lay)
	}
	panic(compileErrf("line %d: internal: %T is not a REAL expression", e.Pos(), e))
}

func (c *compiler) refReal(t *forcelang.Ref, lay *unitLayout) realFn {
	sym := lay.lookup(t.Name, t.Pos())
	if len(t.Subs) == 0 {
		switch sym.class {
		case scPrivate:
			slot := sym.slot
			return func(pr *cproc, fr *frame) float64 { return fr.priv[slot].r }
		case scShared:
			cell := c.in.scalar(sym.unit, sym.slot)
			return func(pr *cproc, fr *frame) float64 { return math.Float64frombits(cell.bits.Load()) }
		}
	}
	lv := c.refLoad(t, lay)
	return func(pr *cproc, fr *frame) float64 { return lv(pr, fr).r }
}

func (c *compiler) intrinsicReal(t *forcelang.Intrinsic, lay *unitLayout) realFn {
	switch t.Name {
	case "ABS":
		x := c.cReal(t.Args[0], lay)
		return func(pr *cproc, fr *frame) float64 { return math.Abs(x(pr, fr)) }
	case "SQRT":
		x := c.cReal(t.Args[0], lay)
		line := t.Pos()
		return func(pr *cproc, fr *frame) float64 {
			v := x(pr, fr)
			if v < 0 {
				panic(rtErrf(line, "SQRT of negative value %g", v))
			}
			return math.Sqrt(v)
		}
	case "REAL":
		return c.cReal(t.Args[0], lay)
	case "MOD":
		l, r := c.cReal(t.Args[0], lay), c.cReal(t.Args[1], lay)
		return func(pr *cproc, fr *frame) float64 { return math.Mod(l(pr, fr), r(pr, fr)) }
	case "MIN", "MAX":
		args := make([]realFn, len(t.Args))
		for i, a := range t.Args {
			args[i] = c.cReal(a, lay)
		}
		min := t.Name == "MIN"
		return func(pr *cproc, fr *frame) float64 {
			best := args[0](pr, fr)
			for _, a := range args[1:] {
				x := a(pr, fr)
				if (min && x < best) || (!min && x > best) {
					best = x
				}
			}
			return best
		}
	}
	panic(compileErrf("line %d: internal: %s is not a REAL intrinsic", t.Pos(), t.Name))
}

// cBool compiles a LOGICAL-typed expression to an unboxed bool closure.
func (c *compiler) cBool(e forcelang.Expr, lay *unitLayout) boolFn {
	switch t := e.(type) {
	case *forcelang.BoolLit:
		v := t.Value
		return func(pr *cproc, fr *frame) bool { return v }
	case *forcelang.Ref:
		sym := lay.lookup(t.Name, t.Pos())
		if len(t.Subs) == 0 {
			switch sym.class {
			case scPrivate:
				slot := sym.slot
				return func(pr *cproc, fr *frame) bool { return fr.priv[slot].b }
			case scShared:
				cell := c.in.scalar(sym.unit, sym.slot)
				return func(pr *cproc, fr *frame) bool { return cell.bits.Load() != 0 }
			}
		}
		lv := c.refLoad(t, lay)
		return func(pr *cproc, fr *frame) bool { return lv(pr, fr).b }
	case *forcelang.Un:
		x := c.cBool(t.X, lay)
		return func(pr *cproc, fr *frame) bool { return !x(pr, fr) }
	case *forcelang.Bin:
		return c.binBool(t, lay)
	}
	panic(compileErrf("line %d: internal: %T is not a LOGICAL expression", e.Pos(), e))
}

func (c *compiler) binBool(t *forcelang.Bin, lay *unitLayout) boolFn {
	switch t.Op {
	case forcelang.OpAnd:
		l, r := c.cBool(t.L, lay), c.cBool(t.R, lay)
		return func(pr *cproc, fr *frame) bool { return l(pr, fr) && r(pr, fr) }
	case forcelang.OpOr:
		l, r := c.cBool(t.L, lay), c.cBool(t.R, lay)
		return func(pr *cproc, fr *frame) bool { return l(pr, fr) || r(pr, fr) }
	}
	lt, rt := c.typ(t.L, lay), c.typ(t.R, lay)
	if lt == forcelang.TLogical || rt == forcelang.TLogical {
		l, r := c.cBool(t.L, lay), c.cBool(t.R, lay)
		if t.Op == forcelang.OpNe {
			return func(pr *cproc, fr *frame) bool { return l(pr, fr) != r(pr, fr) }
		}
		return func(pr *cproc, fr *frame) bool { return l(pr, fr) == r(pr, fr) }
	}
	if lt == forcelang.TInt && rt == forcelang.TInt {
		l, r := c.cInt(t.L, lay), c.cInt(t.R, lay)
		switch t.Op {
		case forcelang.OpEq:
			return func(pr *cproc, fr *frame) bool { return l(pr, fr) == r(pr, fr) }
		case forcelang.OpNe:
			return func(pr *cproc, fr *frame) bool { return l(pr, fr) != r(pr, fr) }
		case forcelang.OpLt:
			return func(pr *cproc, fr *frame) bool { return l(pr, fr) < r(pr, fr) }
		case forcelang.OpLe:
			return func(pr *cproc, fr *frame) bool { return l(pr, fr) <= r(pr, fr) }
		case forcelang.OpGt:
			return func(pr *cproc, fr *frame) bool { return l(pr, fr) > r(pr, fr) }
		default:
			return func(pr *cproc, fr *frame) bool { return l(pr, fr) >= r(pr, fr) }
		}
	}
	// Real comparisons follow the tree walker's three-way-compare
	// formulation (cmp stays 0 when neither side orders, e.g. NaN), so
	// both engines agree on every input.
	l, r := c.cReal(t.L, lay), c.cReal(t.R, lay)
	switch t.Op {
	case forcelang.OpEq:
		return func(pr *cproc, fr *frame) bool { lv, rv := l(pr, fr), r(pr, fr); return !(lv < rv) && !(lv > rv) }
	case forcelang.OpNe:
		return func(pr *cproc, fr *frame) bool { lv, rv := l(pr, fr), r(pr, fr); return lv < rv || lv > rv }
	case forcelang.OpLt:
		return func(pr *cproc, fr *frame) bool { return l(pr, fr) < r(pr, fr) }
	case forcelang.OpLe:
		return func(pr *cproc, fr *frame) bool { return !(l(pr, fr) > r(pr, fr)) }
	case forcelang.OpGt:
		return func(pr *cproc, fr *frame) bool { return l(pr, fr) > r(pr, fr) }
	default:
		return func(pr *cproc, fr *frame) bool { return !(l(pr, fr) < r(pr, fr)) }
	}
}
