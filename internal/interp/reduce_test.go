package interp

import (
	"strings"
	"testing"

	"repro/internal/forcelang"
	"repro/internal/machine"
	"repro/internal/reduce"
)

// runReduceSrc interprets src and returns its printed output.
func runReduceSrc(t *testing.T, src string, np int, k reduce.Kind) string {
	t.Helper()
	prog, err := forcelang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Run(prog, Config{NP: np, Stdout: &sb, Reduce: k}); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

const gsumProgram = `
Force G of NP ident ME
Shared Integer TOTAL, COUNT
Shared Real BIG, SMALL
Shared Logical ALLPOS, ANYTOP
Private Real X
End Declarations
X = REAL(ME + 1)
GSUM TOTAL = ME + 1
GSUM COUNT = 1
GMAX BIG = X * 2.0
GMIN SMALL = X
GAND ALLPOS = X .GT. 0.0
GOR ANYTOP = ME .EQ. NP - 1
Barrier
  Print 'total', TOTAL
  Print 'count', COUNT
  Print 'big', BIG
  Print 'small', SMALL
  Print 'allpos', ALLPOS
  Print 'anytop', ANYTOP
End Barrier
Join
`

func TestInterpReduceAllStrategies(t *testing.T) {
	for _, k := range reduce.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			out := runReduceSrc(t, gsumProgram, 6, k)
			for _, want := range []string{
				"total 21", "count 6", "big 12.0", "small 1.0", "allpos T", "anytop T",
			} {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestInterpReduceInConvergenceLoop(t *testing.T) {
	// The heat-solver shape: a reduction per sweep driving a shared
	// convergence flag, on a non-native machine profile.
	src := `
Force C of NP ident ME
Shared Real ERR
Shared Integer ROUNDS
Shared Logical DONE
Private Real MINE
Private Integer K
End Declarations
Barrier
  DONE = .FALSE.
  ROUNDS = 0
End Barrier
K = 0
DO WHILE (.NOT. DONE)
  K = K + 1
  MINE = 10.0 / REAL(K * K)
  GMAX ERR = MINE
  Barrier
    ROUNDS = ROUNDS + 1
    IF (ERR .LT. 0.2) THEN
      DONE = .TRUE.
    End IF
  End Barrier
End DO
Barrier
  Print 'rounds', ROUNDS
  Print 'err', ERR
End Barrier
Join
`
	prog := forcelang.MustParse(src)
	var sb strings.Builder
	if err := Run(prog, Config{NP: 5, Machine: machine.Encore, Stdout: &sb, Reduce: reduce.Tree}); err != nil {
		t.Fatal(err)
	}
	// 10/k^2 < 0.2 first at k=8: 10/64 = 0.15625.
	if !strings.Contains(sb.String(), "rounds 8") {
		t.Errorf("unexpected convergence trace:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "err 0.15625") {
		t.Errorf("unexpected final error:\n%s", sb.String())
	}
}

func TestInterpReduceMixedTypesCoerce(t *testing.T) {
	// An INTEGER operand landing in a REAL target reduces in INTEGER and
	// coerces at the assignment, exactly like Assign.
	src := `
Force M of NP ident ME
Shared Real T
End Declarations
GSUM T = ME
Barrier
  Print 'sum', T
End Barrier
Join
`
	out := runReduceSrc(t, src, 4, reduce.PrivateSlots)
	if !strings.Contains(out, "sum 6.0") {
		t.Errorf("output:\n%s", out)
	}
}
