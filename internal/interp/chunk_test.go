package interp

// chunk_test.go — coverage for the chunk-compiled DOALL tier: the
// equivalence matrix (every corpus program byte-identical, modulo
// print interleaving, across tree/compiled/chunked at np ∈ {1, 2, 8}),
// classification unit tests pinning down which bodies chunk and which
// fall back, and a mid-chunk abort test bounding poison latency.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/forcelang"
)

// chunkCorpus holds programs chosen to hit the chunk tier's edges:
// strides, empty ranges, two-index DOALLs, disjointness proofs and
// their failures, uniform hoisting, accumulator folding, and final
// loop-variable values.  It lives in internal/corpus so the AOT tier's
// parity sweep covers the same matrix.
var chunkCorpus = corpus.Chunk

// TestChunkEquivalence runs the chunk corpus under every engine at
// np ∈ {1, 2, 8} and requires each engine's sorted output to match the
// tree walker's at the same np.
func TestChunkEquivalence(t *testing.T) {
	for _, tc := range chunkCorpus {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := forcelang.Parse(tc.Src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, np := range []int{1, 2, 8} {
				outs := map[ExecMode]string{}
				for _, mode := range ExecModes() {
					var sb strings.Builder
					if err := Run(prog, Config{NP: np, Stdout: &sb, Exec: mode}); err != nil {
						t.Fatalf("np=%d %s: %v", np, mode, err)
					}
					outs[mode] = sb.String()
				}
				tree := sortedLines(outs[ExecTree])
				for _, mode := range []ExecMode{ExecCompiled, ExecChunked} {
					got := sortedLines(outs[mode])
					if len(got) != len(tree) {
						t.Fatalf("np=%d: line counts differ: tree %d, %s %d\ntree:\n%s\n%s:\n%s",
							np, len(tree), mode, len(got), outs[ExecTree], mode, outs[mode])
						continue
					}
					for i := range tree {
						if got[i] != tree[i] {
							t.Errorf("np=%d line %d: tree %q, %s %q", np, i, tree[i], mode, got[i])
						}
					}
				}
			}
		})
	}
}

// classify parses src, resolves it and classifies its first top-level
// ParDo, returning the plan (nil if the body fell back) and the reason.
func classify(t *testing.T, src string) (*chunkPlan, string) {
	t.Helper()
	prog, err := forcelang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := resolveProgram(prog)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	for _, st := range prog.Body {
		if pd, ok := st.(*forcelang.ParDo); ok {
			return classifyParDo(prog, pd, res.units[""])
		}
	}
	t.Fatal("no ParDo in program body")
	return nil, ""
}

// TestClassifyDisjoint pins the disjointness proof: an identity
// subscript on the written array chunks with walker access, a
// non-affine subscript keeps the array on striped access, and a
// constant subscript (every iteration the same element) does too.
func TestClassifyDisjoint(t *testing.T) {
	plan, reason := classify(t, `Force C of NP ident ME
Shared Real A(64)
Private Integer I
End Declarations
Presched DO I = 1, 64
  A(I) = REAL(I)
End Presched DO
Join
`)
	if plan == nil {
		t.Fatalf("identity subscript fell back: %s", reason)
	}
	if !plan.disjoint["A"] {
		t.Error("identity subscript not proven disjoint")
	}

	plan, reason = classify(t, `Force C of NP ident ME
Shared Real A(8)
Private Integer I
End Declarations
Presched DO I = 1, 64
  A(MOD(I, 8) + 1) = 1.0
End Presched DO
Join
`)
	if plan == nil {
		t.Fatalf("non-affine subscript fell back entirely: %s", reason)
	}
	if plan.disjoint["A"] {
		t.Error("MOD subscript wrongly proven disjoint")
	}

	plan, reason = classify(t, `Force C of NP ident ME
Shared Real A(8)
Private Integer I
End Declarations
Presched DO I = 1, 64
  A(3) = 1.0
End Presched DO
Join
`)
	if plan == nil {
		t.Fatalf("constant subscript fell back entirely: %s", reason)
	}
	if plan.disjoint["A"] {
		t.Error("constant subscript wrongly proven disjoint")
	}
}

// TestClassifyAccumulator pins accumulator folding: a shared integer
// whose only appearances are S = S ± delta folds to a private sum; a
// read of the scalar elsewhere in the body, or a real-typed delta,
// disqualifies it.
func TestClassifyAccumulator(t *testing.T) {
	plan, reason := classify(t, `Force C of NP ident ME
Shared Integer S
Private Integer I
End Declarations
Presched DO I = 1, 64
  S = S + I
End Presched DO
Join
`)
	if plan == nil {
		t.Fatalf("accumulator body fell back: %s", reason)
	}
	if _, ok := plan.accs["S"]; !ok {
		t.Error("S = S + I not folded to a private sum")
	}

	plan, reason = classify(t, `Force C of NP ident ME
Shared Integer S
Shared Real A(64)
Private Integer I
End Declarations
Presched DO I = 1, 64
  S = S + I
  A(I) = REAL(S)
End Presched DO
Join
`)
	if plan == nil {
		t.Fatalf("read-elsewhere body fell back: %s", reason)
	}
	if _, ok := plan.accs["S"]; ok {
		t.Error("S read outside its own update must not fold")
	}
}

// TestClassifyMinMaxAccumulator pins the extremum accumulators:
// S = MAX(S, e) / S = MIN(S, e) fold for INTEGER and REAL shared
// scalars; the argument-swapped form, a type-promoting form, and mixed
// operators on one scalar all decline.
func TestClassifyMinMaxAccumulator(t *testing.T) {
	head := `Force C of NP ident ME
Shared Integer S
Shared Real R
Private Integer I
End Declarations
`
	tail := "End Presched DO\nJoin\n"
	folds := map[string]struct {
		stmt string
		name string
		op   accOp
		real bool
	}{
		"int max":  {"S = MAX(S, I)", "S", accMax, false},
		"int min":  {"S = MIN(S, I*2)", "S", accMin, false},
		"real max": {"R = MAX(R, REAL(I))", "R", accMax, true},
		"real min": {"R = MIN(R, REAL(I)*0.5)", "R", accMin, true},
	}
	for label, tc := range folds {
		plan, reason := classify(t, head+"Presched DO I = 1, 64\n  "+tc.stmt+"\n"+tail)
		if plan == nil {
			t.Fatalf("%s fell back: %s", label, reason)
		}
		si, ok := plan.accs[tc.name]
		if !ok {
			t.Errorf("%s: %q not folded", label, tc.stmt)
			continue
		}
		rec := plan.accSyms[si]
		if rec.op != tc.op || rec.real != tc.real {
			t.Errorf("%s: folded as op=%d real=%v, want op=%d real=%v",
				label, rec.op, rec.real, tc.op, tc.real)
		}
	}
	declines := map[string]string{
		// MAX keeps its first argument unless the second is strictly
		// greater, so only the self-first order composes with a fold.
		"swapped args": "S = MAX(I, S)",
		// INTEGER target fed by a promoted REAL MAX: the store would
		// truncate, which the fold cannot replay.
		"promoting":  "S = MAX(S, R)",
		"reads self": "S = MAX(S, S - I)",
	}
	for label, stmt := range declines {
		plan, reason := classify(t, head+"Presched DO I = 1, 64\n  "+stmt+"\n"+tail)
		if plan == nil {
			t.Fatalf("%s fell back entirely: %s", label, reason)
		}
		if _, ok := plan.accs["S"]; ok {
			t.Errorf("%s: %q wrongly folded", label, stmt)
		}
	}
	// Mixed operators on one scalar cannot share a private partial.
	plan, reason := classify(t, head+"Presched DO I = 1, 64\n  S = S + I\n  S = MAX(S, I)\n"+tail)
	if plan == nil {
		t.Fatalf("mixed-op body fell back: %s", reason)
	}
	if _, ok := plan.accs["S"]; ok {
		t.Error("mixed sum/MAX on one scalar wrongly folded")
	}
}

// TestClassifyFallbacks pins full-fallback conditions: collectives and
// other non-whitelisted statements, loop-index writes, and parameter
// assignment targets all send the DOALL to the per-iteration path.
func TestClassifyFallbacks(t *testing.T) {
	cases := map[string]string{
		"critical in body": `Force C of NP ident ME
Shared Integer S
Private Integer I
End Declarations
Presched DO I = 1, 8
  Critical L
    S = S + 1
  End Critical
End Presched DO
Join
`,
		"loop index written": `Force C of NP ident ME
Private Integer I
End Declarations
Presched DO I = 1, 8
  I = I + 1
End Presched DO
Join
`,
		"print in body": `Force C of NP ident ME
Private Integer I
End Declarations
Presched DO I = 1, 8
  Print I
End Presched DO
Join
`,
	}
	for name, src := range cases {
		if plan, _ := classify(t, src); plan != nil {
			t.Errorf("%s: expected fallback, got a chunk plan", name)
		}
	}
}

// TestChunkedAbortLatency errors one iteration deep inside a large
// chunked DOALL: the failing process poisons the force mid-chunk and
// its peers, spinning through their own chunks, must notice via the
// in-chunk poison checks and unwind promptly — well under the
// watchdog-scale timeout, at chunk sizes where waiting for the chunk
// to finish would be the bug.
func TestChunkedAbortLatency(t *testing.T) {
	prog := forcelang.MustParse(`Force ABT of NP ident ME
Shared Real A(400000)
Private Integer I
End Declarations
Presched DO I = 1, 400000
  A(I) = REAL(I / (I - 3))
End Presched DO
Join
`)
	for _, np := range []int{2, 8} {
		start := time.Now()
		err := Run(prog, Config{NP: np, Exec: ExecChunked})
		elapsed := time.Since(start)
		if err == nil {
			t.Fatalf("np=%d: no error", np)
		}
		if !strings.Contains(err.Error(), "force runtime") {
			t.Fatalf("np=%d: unexpected error %v", np, err)
		}
		if elapsed > 10*time.Second {
			t.Errorf("np=%d: abort took %v — in-chunk poison checks not bounding latency", np, elapsed)
		}
	}
}
