package interp

// fuse_test.go — coverage for the fusion pass: the fusion corpus is
// byte-identical across every engine with fusion on and off, a fault in
// the middle of a fused region reports the faulting member's line under
// every configuration, and the pass's compile-time decisions (what
// fused, what declined, and why) are pinned through Config.FuseLog.

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/forcelang"
	"repro/internal/reduce"
)

// fuseRunModes describes one execution configuration of the fusion
// matrix: an engine plus the fusion switch.
type fuseMode struct {
	name   string
	exec   ExecMode
	noFuse bool
}

var fuseModes = []fuseMode{
	{"tree", ExecTree, false},
	{"compiled", ExecCompiled, false},
	{"chunked-fused", ExecChunked, false},
	{"chunked-nofuse", ExecChunked, true},
}

// TestFusionEquivalence runs the fusion corpus under every engine, with
// fusion on and off, at np ∈ {1, 2, 8}: sorted output must match the
// tree walker's exactly.  Fusion is a barrier count optimization, never
// a semantics change.
func TestFusionEquivalence(t *testing.T) {
	for _, tc := range corpus.Fusion {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := forcelang.Parse(tc.Src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, np := range []int{1, 2, 8} {
				outs := map[string]string{}
				for _, m := range fuseModes {
					var sb strings.Builder
					cfg := Config{NP: np, Stdout: &sb, Exec: m.exec, NoFuse: m.noFuse}
					if err := Run(prog, cfg); err != nil {
						t.Fatalf("np=%d %s: %v", np, m.name, err)
					}
					outs[m.name] = sb.String()
				}
				tree := sortedLines(outs["tree"])
				for _, m := range fuseModes[1:] {
					got := sortedLines(outs[m.name])
					if len(got) != len(tree) {
						t.Fatalf("np=%d: line counts differ: tree %d, %s %d\ntree:\n%s\n%s:\n%s",
							np, len(tree), m.name, len(got), outs["tree"], m.name, outs[m.name])
					}
					for i := range tree {
						if got[i] != tree[i] {
							t.Errorf("np=%d line %d: tree %q, %s %q", np, i, tree[i], m.name, got[i])
						}
					}
				}
			}
		})
	}
}

// TestFusionFaultParity pins the abort contract inside a fused region:
// a fault striking in the second member (on one process only, once
// np > 1) aborts the whole force with the identical message — naming
// the faulting member's source line — whether the region fused or not.
func TestFusionFaultParity(t *testing.T) {
	for _, tc := range corpus.FusionFaults {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := forcelang.Parse(tc.Src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, np := range []int{1, 2, 8} {
				var ref error
				for _, m := range fuseModes {
					var sb strings.Builder
					err := Run(prog, Config{NP: np, Stdout: &sb, Exec: m.exec, NoFuse: m.noFuse})
					if err == nil {
						t.Fatalf("np=%d %s: no error", np, m.name)
					}
					if !strings.Contains(err.Error(), "force runtime: line 10:") {
						t.Errorf("np=%d %s: error %q does not name the faulting member's line", np, m.name, err)
					}
					if ref == nil {
						ref = err
					} else if err.Error() != ref.Error() {
						t.Errorf("np=%d %s: error diverges:\nwant %q\ngot  %q", np, m.name, ref, err)
					}
				}
			}
		})
	}
}

// fuseLogs runs prog on the chunk tier collecting every FuseLog line.
func fuseLogs(t *testing.T, src string, cfg Config) []string {
	t.Helper()
	prog, err := forcelang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var mu sync.Mutex
	var logs []string
	cfg.FuseLog = func(msg string) {
		mu.Lock()
		logs = append(logs, msg)
		mu.Unlock()
	}
	if cfg.NP == 0 {
		cfg.NP = 2
	}
	var sb strings.Builder
	cfg.Stdout = &sb
	if err := Run(prog, cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	return logs
}

func logsContain(logs []string, want string) bool {
	for _, l := range logs {
		if strings.Contains(l, want) {
			return true
		}
	}
	return false
}

// TestFusionDecisions pins the pass's verdict on every fusion corpus
// program: the shaped-to-fuse programs fuse (with the expected member
// count or folded reduction), and the must-NOT-fuse programs decline
// for the expected reason.
func TestFusionDecisions(t *testing.T) {
	expect := map[string]string{
		"fuse-presched-chain":              "fused 3 DOALLs",
		"fuse-overlap-declines":            "conflict on A",
		"fuse-gsum-tail":                   "GSUM at line",
		"fuse-gmax-real":                   "GMAX at line",
		"fuse-reduce-feeds-doall":          "GSUM at line",
		"fuse-selfsched-pair":              "fused 2 DOALLs",
		"fuse-selfsched-conflict-declines": "conflict on A",
	}
	for _, tc := range corpus.Fusion {
		want, ok := expect[tc.Name]
		if !ok {
			t.Errorf("%s: no expected fusion verdict — add one", tc.Name)
			continue
		}
		logs := fuseLogs(t, tc.Src, Config{})
		if !logsContain(logs, want) {
			t.Errorf("%s: fusion logs %q lack %q", tc.Name, logs, want)
		}
	}
}

// TestFusionDeclineReasons drives each legality check's decline branch
// with a minimal program and pins the narrated reason.
func TestFusionDeclineReasons(t *testing.T) {
	tests := []struct {
		name string
		src  string
		cfg  Config
		want []string
	}{
		{"mixed-scheduling", `Force D of NP ident ME
Shared Real A(32)
Shared Real B(32)
Private Integer I
End Declarations
Presched DO I = 1, 32
  A(I) = REAL(I)
End Presched DO
Selfsched DO I = 1, 32
  B(I) = REAL(I)
End Selfsched DO
Join
`, Config{}, []string{"mixed scheduling"}},
		{"bounds-differ", `Force D of NP ident ME
Shared Real A(32)
Shared Real B(48)
Private Integer I
End Declarations
Presched DO I = 1, 32
  A(I) = REAL(I)
End Presched DO
Presched DO I = 1, 48
  B(I) = REAL(I)
End Presched DO
Join
`, Config{}, []string{"bounds differ"}},
		// The accumulator S is the second member's upper bound: unfused,
		// member 2 sees S after member 1's exit barrier; fused it would
		// not.  The canonical bounds match, so the decline comes from the
		// bounds-read-region-write check.
		{"bounds-read-written", `Force D of NP ident ME
Shared Real A(64)
Shared Real B(64)
Shared Integer S
Private Integer I
End Declarations
Barrier
  S = 8
End Barrier
Presched DO I = 1, S
  A(I) = REAL(I)
  S = S + 1
End Presched DO
Presched DO I = 1, S
  B(I) = REAL(I)
End Presched DO
Join
`, Config{}, []string{"bounds read S"}},
		// Reading a by-reference parameter classifies (noBulk), but the
		// unknown aliasing forbids fusing across it.
		{"parameter-region", `Force D of NP ident ME
Shared Real A(32)
Shared Real B(32)
End Declarations
Call W(A, B)
Join
Forcesub W(X, Y)
Shared Real X(32)
Shared Real C(32)
Shared Real Y(32)
Shared Real E(32)
Private Integer I
End Declarations
Presched DO I = 1, 32
  C(I) = X(I)
End Presched DO
Presched DO I = 1, 32
  E(I) = Y(I)
End Presched DO
Endsub
`, Config{}, []string{"parameter references in the region"}},
		// A logical tail cannot fold, but the members still fuse among
		// themselves: both the decline and the smaller region's success
		// are narrated.
		{"logical-tail", `Force D of NP ident ME
Shared Real A(32)
Shared Real B(32)
Shared Logical L
Private Integer I
End Declarations
Presched DO I = 1, 32
  A(I) = REAL(I)
End Presched DO
Presched DO I = 1, 32
  B(I) = REAL(I)
End Presched DO
GAND L = I .GT. 0
Join
`, Config{}, []string{"logical reduction", "fused 2 DOALLs"}},
		// REAL sums fold in pid order, which only the slots strategy
		// reproduces: under the critical baseline the tail stays on its
		// own episode (the members still fuse).
		{"real-gsum-critical", `Force D of NP ident ME
Shared Real A(32)
Shared Real B(32)
Shared Real T
Private Integer I
End Declarations
Presched DO I = 1, 32
  A(I) = REAL(I)
End Presched DO
Presched DO I = 1, 32
  B(I) = REAL(I)
End Presched DO
GSUM T = REAL(I) * 0.5
Join
`, Config{Reduce: reduce.Critical}, []string{"REAL GSUM folds in pid order", "fused 2 DOALLs"}},
		{"real-gsum-slots-folds", `Force D of NP ident ME
Shared Real A(32)
Shared Real B(32)
Shared Real T
Private Integer I
End Declarations
Presched DO I = 1, 32
  A(I) = REAL(I)
End Presched DO
Presched DO I = 1, 32
  B(I) = REAL(I)
End Presched DO
GSUM T = REAL(I) * 0.5
Join
`, Config{Reduce: reduce.PrivateSlots}, []string{"GSUM at line"}},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			logs := fuseLogs(t, tc.src, tc.cfg)
			for _, want := range tc.want {
				if !logsContain(logs, want) {
					t.Errorf("fusion logs %q lack %q", logs, want)
				}
			}
		})
	}
}

// TestFusionDisabledConfigs pins when the pass must stay off: NoFuse,
// the per-iteration engines, and an iteration-level trace all run the
// corpus without emitting a single fusion log line.
func TestFusionDisabledConfigs(t *testing.T) {
	src := corpus.Fusion[0].Src
	for _, cfg := range []Config{
		{NoFuse: true},
		{Exec: ExecCompiled},
		{Exec: ExecTree},
	} {
		if logs := fuseLogs(t, src, cfg); len(logs) != 0 {
			t.Errorf("config %+v: fusion pass ran: %q", cfg, logs)
		}
	}
}
