// Package interp executes parsed Force programs SPMD on the core runtime:
// a force of goroutine processes runs the program body, with every Force
// construct mapped onto its internal/core implementation — DOALLs onto the
// scheduler-backed loops, Barrier sections onto the two-lock barrier,
// Critical onto named machine locks, Pcase onto block distribution,
// Produce/Consume onto the machine profile's asynchronous variables.
//
// Storage follows the paper's variable classification: shared and async
// variables (of the main program and of every subroutine, COMMON-like)
// are allocated once per run and shared by all processes; private
// variables live per process, and subroutine-local privates per call.
// Either way an improperly synchronized Force program remains a
// well-defined (if nondeterministic) Go program.
//
// Three execution engines implement those semantics (Config.Exec):
//
//   - ExecChunked (the default) is the compiled engine plus a chunk
//     tier for DOALL bodies: a classification pass (classify.go) marks
//     every reference uniform (loop-invariant) or varying (a function
//     of the loop index), and bodies the classifier can prove safe are
//     compiled (chunk.go) into tight per-span loops — the index lives
//     in a register-like local, uniform subexpressions are hoisted and
//     evaluated once per construct, provably disjoint shared-array
//     accesses go through the striped store's bulk walker (one stripe
//     lock held across a block of elements instead of one lock pair
//     per element), and integer read-modify-write accumulations fold
//     into the shared cell once per process.  Unsafe bodies (calls,
//     critical sections, same-element writes, I/O ordering hazards)
//     fall back to the per-iteration compiled path, statement for
//     statement.
//   - ExecCompiled stages execution: a resolution pass (resolve.go)
//     assigns every variable reference a (storage class, slot) pair,
//     and a compile pass (compile.go) turns the checked AST into a
//     tree of typed closures over index-addressed frames.  Private
//     variables are direct slot accesses; shared scalars are
//     individual atomic cells and shared arrays lock-striped element
//     stores (store.go), so an interpreted DOALL over disjoint elements
//     runs in parallel.  Kept as the chunk tier's A/B baseline.
//   - ExecTree is the original tree walker: names resolved through
//     string maps on every access and all shared storage serialized by
//     one per-run mutex.  It is kept as the semantic baseline
//     (forcebench T11, forcerun -exec tree).
//
// Error handling is fault-contained, unlike the original system's: a
// runtime error (subscript out of range, division by zero) in any
// process — even a non-SPMD-uniform one — poisons the force, wakes
// every peer blocked in a barrier, reduction, Askfor pool or
// asynchronous variable, and Run returns the first error once all
// processes have stopped.  On the 1989 machines the same failure left
// the peers blocked forever; the runtime's poison protocol (see
// internal/poison and core.Force.Run) removes that failure mode at
// every NP, under both execution engines.
package interp

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"repro/internal/asyncvar"
	"repro/internal/barrier"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/forcelang"
	"repro/internal/machine"
	"repro/internal/reduce"
	"repro/internal/sched"
	"repro/internal/shm"
	"repro/internal/trace"
)

// Config configures one interpreter run.
type Config struct {
	// NP is the number of processes in the force (default 4).
	NP int
	// Machine is the machine profile (default machine.Native).
	Machine machine.Profile
	// Barrier is the global barrier algorithm (default the paper's
	// two-lock barrier).
	Barrier barrier.Kind
	// Stdout receives Print output (default io.Discard).
	Stdout io.Writer
	// Trace, when non-nil, records every construct edge the program
	// crosses for post-run validation (see internal/trace).
	Trace *trace.Recorder
	// Selfsched selects the discipline executing Selfsched DO loops and
	// selfscheduled Pcase blocks.  The zero value selects the paper's
	// lock-based selfscheduling (sched.SelfLock); sched.Stealing runs
	// them on the engine's work-stealing deques instead.
	Selfsched sched.Kind
	// Askfor selects the pool discipline behind language-level Askfor
	// statements: the engine's work-stealing deques (zero value) or the
	// [LO83]-style central monitor (engine.MonitorPool).
	Askfor engine.PoolKind
	// Reduce selects the strategy executing the global-reduction
	// statements (GSUM, GPROD, GMAX, GMIN, GAND, GOR): per-process
	// padded slots (zero value), the paper's critical-section baseline
	// (reduce.Critical), the combining tree, or lock-free CAS.
	Reduce reduce.Kind
	// Exec selects the execution engine: the chunk-compiling closure
	// compiler (zero value), the per-iteration closure compiler
	// (ExecCompiled), or the original tree walker (ExecTree).
	Exec ExecMode
	// NoFuse disables the fusion pass of the chunk tier: adjacent
	// independent DOALLs and a trailing reduction keep their own exit
	// barriers and reduce episodes instead of sharing one fused join.
	// Fusion is otherwise on whenever the chunk tier is (Exec ==
	// ExecChunked and no iteration-level trace).
	NoFuse bool
	// FuseLog, when non-nil, receives one line per fusion decision the
	// compiler takes: each fused region and each declined candidate,
	// with the reason.  Decisions are compile-time, so the log is
	// emitted once per Run, not per construct execution.
	FuseLog func(msg string)
	// Chunk sets sched.Config.ChunkSize for the Chunk and Stealing
	// selfscheduling disciplines (0 keeps each discipline's default).
	// It does not affect the prescheduled or lock/atomic selfscheduled
	// kinds, whose span shapes are fixed by the discipline.
	Chunk int
	// OnForce, when non-nil, is called with the freshly created force
	// before execution starts.  forcerun's stall watchdog uses it to
	// reach the force's Blocked report and Fault cell from outside the
	// running program.
	OnForce func(f *core.Force)
	// Context, when non-nil, bounds the run externally: its cancellation
	// or deadline poisons the force (core.Force.RunContext), every
	// blocked process unwinds, and Run returns the context's error.  A
	// nil Context runs unbounded (context.Background()).
	Context context.Context
}

// ExecMode selects the interpreter's execution engine.
type ExecMode int

const (
	// ExecChunked is the compiled engine with the chunk tier enabled:
	// provably safe DOALL bodies run as per-span tight loops over the
	// striped store's bulk entry points; everything else runs exactly as
	// ExecCompiled.  The default.
	ExecChunked ExecMode = iota
	// ExecCompiled resolves every variable reference to a (storage
	// class, slot) pair at compile time and executes typed closures over
	// index-addressed frames with per-variable shared-memory
	// synchronization, dispatching DOALL bodies one index at a time.
	// Kept as the chunk tier's A/B baseline.
	ExecCompiled
	// ExecTree is the original tree walker: map-addressed frames and one
	// global mutex serializing all shared access.  Kept as the semantic
	// baseline.
	ExecTree
)

// String returns the CLI spelling of the mode.
func (m ExecMode) String() string {
	switch m {
	case ExecTree:
		return "tree"
	case ExecCompiled:
		return "compiled"
	default:
		return "chunked"
	}
}

// ExecModes lists the engines, baseline first.
func ExecModes() []ExecMode { return []ExecMode{ExecTree, ExecCompiled, ExecChunked} }

// ParseExecMode parses a CLI spelling of an execution mode.
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "chunked":
		return ExecChunked, nil
	case "compiled":
		return ExecCompiled, nil
	case "tree":
		return ExecTree, nil
	default:
		return 0, fmt.Errorf("interp: unknown exec mode %q (want chunked, compiled or tree)", s)
	}
}

// Run executes the program and returns the first runtime error, if any.
func Run(prog *forcelang.Program, cfg Config) error {
	if cfg.NP <= 0 {
		cfg.NP = 4
	}
	if cfg.Machine.Name == "" {
		cfg.Machine = machine.Native
	}
	if cfg.Stdout == nil {
		cfg.Stdout = io.Discard
	}
	if cfg.Selfsched == 0 {
		cfg.Selfsched = sched.SelfLock
	}
	if cfg.Exec == ExecTree {
		return runTree(prog, cfg)
	}
	return runCompiled(prog, cfg)
}

// runTree executes the program on the original tree walker.
func runTree(prog *forcelang.Program, cfg Config) (err error) {
	f := core.New(cfg.NP, core.WithMachine(cfg.Machine), core.WithBarrier(cfg.Barrier),
		core.WithTrace(cfg.Trace), core.WithAskfor(cfg.Askfor),
		core.WithPcaseSched(cfg.Selfsched), core.WithReduce(cfg.Reduce),
		core.WithChunk(cfg.Chunk))
	defer f.Close()
	in := newInstance(prog, cfg, f)
	if cfg.OnForce != nil {
		cfg.OnForce(f)
	}
	defer func() {
		// Flush in every exit path, but never let a flush error clobber
		// the run's own failure (a cancellation error, an abort).
		flushErr := in.flush()
		if r := recover(); r != nil {
			err = recoverRunErr(r)
			return
		}
		if err == nil {
			err = flushErr
		}
	}()
	return f.RunContext(runCtx(cfg), func(p *core.Proc) {
		pr := &proc{in: in, p: p}
		pr.runMain()
	})
}

// runCtx resolves the run's bounding context.
func runCtx(cfg Config) context.Context {
	if cfg.Context != nil {
		return cfg.Context
	}
	return context.Background()
}

// AbortError marks an abort injected into a running force from outside
// the program — forcerun's stall watchdog poisons the force with one.
// Run returns Err instead of re-panicking, so an externally aborted run
// exits through the normal error path (flushing output and finalizing
// profiles on the way).
type AbortError struct{ Err error }

func (e AbortError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e AbortError) Unwrap() error { return e.Err }

// recoverRunErr converts a panic that unwound out of a force run into
// the error Run reports: Force runtime errors and external aborts
// become error returns, anything else (an interpreter bug) re-panics.
func recoverRunErr(r any) error {
	switch t := r.(type) {
	case runtimeErr:
		return error(t)
	case AbortError:
		return t.Err
	case *faultinject.Error:
		// A chaos-harness injection is a deliberate process failure, not
		// an interpreter bug: report it like any force runtime error.
		return t
	default:
		panic(r)
	}
}

// runtimeErr is a Force runtime error carried by panic through the SPMD
// machinery.
type runtimeErr struct{ error }

func rtErrf(line int, format string, args ...any) runtimeErr {
	return runtimeErr{fmt.Errorf("force runtime: line %d: %s", line, fmt.Sprintf(format, args...))}
}

// value is a Force runtime value.
type value struct {
	t forcelang.Type
	i int64
	r float64
	b bool
}

func intVal(i int64) value    { return value{t: forcelang.TInt, i: i} }
func realVal(r float64) value { return value{t: forcelang.TReal, r: r} }
func boolVal(b bool) value    { return value{t: forcelang.TLogical, b: b} }
func (v value) asReal() float64 {
	if v.t == forcelang.TInt {
		return float64(v.i)
	}
	return v.r
}

// coerce converts v to type t (numeric conversions only; the checker has
// already rejected logical/numeric mixing).
func coerce(v value, t forcelang.Type, line int) value {
	if v.t == t {
		return v
	}
	switch t {
	case forcelang.TInt:
		return intVal(int64(v.asReal())) // Fortran truncation
	case forcelang.TReal:
		return realVal(v.asReal())
	default:
		panic(rtErrf(line, "cannot coerce %v to %s", v.t, t))
	}
}

func (v value) String() string {
	switch v.t {
	case forcelang.TInt:
		return fmt.Sprintf("%d", v.i)
	case forcelang.TReal:
		return formatReal(v.r)
	case forcelang.TLogical:
		if v.b {
			return "T"
		}
		return "F"
	default:
		return "?"
	}
}

// formatReal renders reals compactly but always distinguishably from
// integers (Fortran list-directed style, simplified).
func formatReal(r float64) string {
	s := fmt.Sprintf("%g", r)
	if !strings.ContainsAny(s, ".eE") && !math.IsInf(r, 0) && !math.IsNaN(r) {
		s += ".0"
	}
	return s
}

// arrayVal is array storage with Fortran 1-based column-ignorant indexing
// (row-major over the declared dims).
type arrayVal struct {
	dims []int
	data []value
}

func newArray(d forcelang.Decl) *arrayVal {
	a := &arrayVal{dims: d.Dims, data: make([]value, d.Size())}
	zero := value{t: d.Type}
	for i := range a.data {
		a.data[i] = zero
	}
	return a
}

// offset converts 1-based subscripts to a flat offset.
func (a *arrayVal) offset(subs []int64, name string, line int) int {
	if len(subs) != len(a.dims) {
		panic(rtErrf(line, "%s: %d subscripts for %d dims", name, len(subs), len(a.dims)))
	}
	off := 0
	for k, s := range subs {
		if s < 1 || s > int64(a.dims[k]) {
			panic(rtErrf(line, "subscript %d of %s out of range: %d not in [1,%d]", k+1, name, s, a.dims[k]))
		}
		off = off*a.dims[k] + int(s-1)
	}
	return off
}

// binding is one variable's storage: a scalar cell or an array.
type binding struct {
	decl   forcelang.Decl
	p      *value
	a      *arrayVal
	shared bool
}

func newBinding(d forcelang.Decl, shared bool) *binding {
	b := &binding{decl: d, shared: shared}
	if len(d.Dims) > 0 {
		b.a = newArray(d)
	} else {
		v := value{t: d.Type}
		b.p = &v
	}
	return b
}

// outsink is the serialized Print sink shared by both execution engines.
type outsink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

func newOutsink(w io.Writer) *outsink { return &outsink{w: bufio.NewWriter(w)} }

func (o *outsink) writeLine(s string) {
	o.mu.Lock()
	if _, err := o.w.WriteString(s); err != nil && o.err == nil {
		o.err = err
	}
	o.mu.Unlock()
}

func (o *outsink) flush() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.w.Flush(); err != nil && o.err == nil {
		o.err = err
	}
	return o.err
}

// instance is the shared state of one tree-walker run.
type instance struct {
	prog *forcelang.Program
	cfg  Config

	mu     sync.Mutex // serializes shared storage access
	shared map[string]map[string]*binding
	asyncs map[string]*asyncEntry
	notes  sync.Map // forcelang.Stmt -> *string: cached watchdog notes

	out *outsink
}

// asyncCell is the method set of asyncvar.V[value], named locally to keep
// the instance struct readable.
type asyncCell interface {
	Produce(v value)
	Consume() value
	Copy() value
	Void()
	IsFull() bool
}

// asyncEntry is one asynchronous variable: a scalar cell or an array of
// cells (the HEP's per-cell full/empty idiom).
type asyncEntry struct {
	cell asyncCell
	arr  *asyncvar.Array[value]
}

// newAsyncEntry allocates one asynchronous variable with the machine
// profile's realization, bound to the force's fault cell so a blocked
// Produce/Consume unwinds when the force aborts.
func newAsyncEntry(d forcelang.Decl, cfg Config, f *core.Force) *asyncEntry {
	e := &asyncEntry{}
	if len(d.Dims) == 1 {
		e.arr = asyncvar.NewArray[value](cfg.Machine.Async, cfg.Machine.LockFactory(), d.Dims[0])
		e.arr.SetPoison(f.Fault())
	} else {
		cell := machine.NewAsync[value](cfg.Machine)
		asyncvar.SetPoison(cell, f.Fault())
		e.cell = cell
	}
	return e
}

// at resolves the cell for a use with optional 1-based subscript sub
// (subPresent false for scalar uses; the checker has already matched use
// shape to declaration shape).
func (e *asyncEntry) at(sub int64, subPresent bool, name string, line int) asyncCell {
	if !subPresent {
		return e.cell
	}
	if e.arr == nil {
		panic(rtErrf(line, "async scalar %s used with a subscript", name))
	}
	if sub < 1 || sub > int64(e.arr.Len()) {
		panic(rtErrf(line, "subscript of async array %s out of range: %d not in [1,%d]", name, sub, e.arr.Len()))
	}
	return e.arr.At(int(sub - 1))
}

func newInstance(prog *forcelang.Program, cfg Config, f *core.Force) *instance {
	in := &instance{
		prog:   prog,
		cfg:    cfg,
		shared: map[string]map[string]*binding{},
		asyncs: map[string]*asyncEntry{},
		out:    newOutsink(cfg.Stdout),
	}
	allocUnit := func(unit string, decls []forcelang.Decl, params []string) {
		isParam := func(name string) bool {
			for _, p := range params {
				if p == name {
					return true
				}
			}
			return false
		}
		m := map[string]*binding{}
		for _, d := range decls {
			if isParam(d.Name) {
				// Parameters alias caller storage at call time.
				continue
			}
			switch d.Class {
			case shm.Shared:
				m[d.Name] = newBinding(d, true)
			case shm.Async:
				in.asyncs[unit+"."+d.Name] = newAsyncEntry(d, cfg, f)
			}
		}
		in.shared[unit] = m
	}
	allocUnit("", prog.Decls, nil)
	for _, sub := range prog.Subs {
		allocUnit(sub.Name, sub.Decls, sub.Params)
	}
	// NP is a shared integer every unit can read.
	npDecl := forcelang.Decl{Class: shm.Shared, Type: forcelang.TInt, Name: prog.NPVar}
	npB := newBinding(npDecl, true)
	npB.p.i = int64(cfg.NP)
	in.shared[""][prog.NPVar] = npB
	return in
}

func (in *instance) flush() error { return in.out.flush() }

// asyncFor resolves an async variable visible from unit: unit-local entry
// first, then the main program's (COMMON-like) entry.
func (in *instance) asyncFor(unit, name string, line int) *asyncEntry {
	if e, ok := in.asyncs[unit+"."+name]; ok {
		return e
	}
	if e, ok := in.asyncs["."+name]; ok {
		return e
	}
	panic(rtErrf(line, "async variable %s not found", name))
}

// tframe is one tree-walker call frame: the name-to-binding map for the
// executing unit.
type tframe struct {
	unit string
	vars map[string]*binding
}

// proc is one force process executing the program.
type proc struct {
	in *instance
	p  *core.Proc
	// puts is the stack of enclosing Askfor put functions; the innermost
	// one serves Put statements.
	puts []func(any)
}

// newMainFrame builds the main program's frame for this process: private
// declarations fresh, shared declarations from the instance, ME bound to
// the process id.
func (pr *proc) newMainFrame() *tframe {
	f := &tframe{unit: "", vars: map[string]*binding{}}
	for _, d := range pr.in.prog.Decls {
		switch d.Class {
		case shm.Private:
			f.vars[d.Name] = newBinding(d, false)
		case shm.Shared:
			f.vars[d.Name] = pr.in.shared[""][d.Name]
		}
	}
	f.vars[pr.in.prog.NPVar] = pr.in.shared[""][pr.in.prog.NPVar]
	me := newBinding(forcelang.Decl{Class: shm.Private, Type: forcelang.TInt, Name: pr.in.prog.MeVar}, false)
	me.p.i = int64(pr.p.ID())
	f.vars[pr.in.prog.MeVar] = me
	return f
}

func (pr *proc) runMain() {
	f := pr.newMainFrame()
	pr.stmts(pr.in.prog.Body, f)
}

// lookup resolves a name in the frame, falling back to main shared
// variables (COMMON) when executing a subroutine.
func (pr *proc) lookup(f *tframe, name string, line int) *binding {
	if b, ok := f.vars[name]; ok {
		return b
	}
	if f.unit != "" {
		if b, ok := pr.in.shared[""][name]; ok {
			return b
		}
	}
	panic(rtErrf(line, "undefined variable %s", name))
}

// loadScalar reads a scalar binding under the shared mutex when needed.
func (pr *proc) loadScalar(b *binding, line int) value {
	if b.p == nil {
		panic(rtErrf(line, "%s is an array", b.decl.Name))
	}
	if b.shared {
		pr.in.mu.Lock()
		defer pr.in.mu.Unlock()
	}
	return *b.p
}

func (pr *proc) storeScalar(b *binding, v value, line int) {
	if b.p == nil {
		panic(rtErrf(line, "%s is an array", b.decl.Name))
	}
	v = coerce(v, b.decl.Type, line)
	if b.shared {
		pr.in.mu.Lock()
		defer pr.in.mu.Unlock()
	}
	*b.p = v
}

func (pr *proc) loadElem(b *binding, subs []int64, name string, line int) value {
	off := b.a.offset(subs, name, line)
	if b.shared {
		pr.in.mu.Lock()
		defer pr.in.mu.Unlock()
	}
	return b.a.data[off]
}

func (pr *proc) storeElem(b *binding, subs []int64, v value, name string, line int) {
	off := b.a.offset(subs, name, line)
	v = coerce(v, b.decl.Type, line)
	if b.shared {
		pr.in.mu.Lock()
		defer pr.in.mu.Unlock()
	}
	b.a.data[off] = v
}

// --- statements --------------------------------------------------------

func (pr *proc) stmts(list []forcelang.Stmt, f *tframe) {
	for _, st := range list {
		pr.stmt(st, f)
	}
}

// note records the statement's source location with the core runtime,
// so the stall watchdog can report which line each blocked process is
// waiting at.  Called before every potentially blocking statement; the
// note string is built once per statement node and cached in the
// instance, so steady-state executions pay a map lookup and an atomic
// store, not a format and an allocation.
func (pr *proc) note(st forcelang.Stmt, kind, name string) {
	if v, ok := pr.in.notes.Load(st); ok {
		pr.p.Note(v.(*string))
		return
	}
	label := kind
	if name != "" {
		label += " " + name
	}
	s := fmt.Sprintf("%s, line %d", label, st.Pos())
	v, _ := pr.in.notes.LoadOrStore(st, &s)
	pr.p.Note(v.(*string))
}

func (pr *proc) stmt(st forcelang.Stmt, f *tframe) {
	switch t := st.(type) {
	case *forcelang.Assign:
		v := pr.eval(t.Expr, f)
		pr.assign(&t.Target, v, f)
	case *forcelang.If:
		if pr.evalBool(t.Cond, f) {
			pr.stmts(t.Then, f)
		} else {
			pr.stmts(t.Else, f)
		}
	case *forcelang.SeqDo:
		from, to, step := pr.loopBounds(t.From, t.To, t.Step, f)
		lv := pr.lookup(f, t.Var, t.Pos())
		for i := from; (step > 0 && i <= to) || (step < 0 && i >= to); i += step {
			pr.storeScalar(lv, intVal(i), t.Pos())
			pr.stmts(t.Body, f)
		}
	case *forcelang.WhileDo:
		for pr.evalBool(t.Cond, f) {
			// A poisoned force must not wait out a (possibly unbounded)
			// sequential loop; the watchdog relies on this check.
			pr.p.Check()
			pr.stmts(t.Body, f)
		}
	case *forcelang.ParDo:
		pr.note(t, "DOALL", "")
		pr.parDo(t, f)
	case *forcelang.BarrierStmt:
		pr.note(t, "Barrier", "")
		pr.p.BarrierSection(func() { pr.stmts(t.Section, f) })
	case *forcelang.CriticalStmt:
		pr.note(t, "Critical", t.Name)
		pr.p.Critical(t.Name, func() { pr.stmts(t.Body, f) })
	case *forcelang.PcaseStmt:
		pr.note(t, "Pcase", "")
		blocks := make([]core.Block, len(t.Blocks))
		for i := range t.Blocks {
			b := t.Blocks[i]
			var cond func() bool
			if b.Cond != nil {
				cond = func() bool { return pr.evalBool(b.Cond, f) }
			}
			blocks[i] = core.Block{Cond: cond, Body: func() { pr.stmts(b.Body, f) }}
		}
		if t.Selfsched {
			pr.p.SelfschedPcase(blocks...)
		} else {
			pr.p.Pcase(blocks...)
		}
	case *forcelang.AskforStmt:
		pr.note(t, "Askfor", "")
		pr.askfor(t, f)
	case *forcelang.ReduceStmt:
		pr.note(t, t.Op.String(), "")
		pr.greduce(t, f)
	case *forcelang.PutStmt:
		if len(pr.puts) == 0 {
			panic(rtErrf(t.Pos(), "Put outside an Askfor body"))
		}
		pr.puts[len(pr.puts)-1](pr.evalInt(t.Expr, f))
	case *forcelang.ProduceStmt:
		cell := pr.asyncCellFor(f, t.Var, t.Sub, t.Pos())
		v := pr.eval(t.Expr, f)
		pr.note(t, "Produce", t.Var)
		pr.p.WithSite(&core.AsyncSiteLabel, func() { cell.Produce(v) })
	case *forcelang.ConsumeStmt:
		cell := pr.asyncCellFor(f, t.Var, t.Sub, t.Pos())
		pr.note(t, "Consume", t.Var)
		var v value
		pr.p.WithSite(&core.AsyncSiteLabel, func() { v = cell.Consume() })
		pr.assign(&t.Target, v, f)
	case *forcelang.CopyStmt:
		cell := pr.asyncCellFor(f, t.Var, t.Sub, t.Pos())
		pr.note(t, "Copy", t.Var)
		var v value
		pr.p.WithSite(&core.AsyncSiteLabel, func() { v = cell.Copy() })
		pr.assign(&t.Target, v, f)
	case *forcelang.VoidStmt:
		cell := pr.asyncCellFor(f, t.Var, t.Sub, t.Pos())
		pr.note(t, "Void", t.Var) // Void can block on a racing consumer
		pr.p.WithSite(&core.AsyncSiteLabel, cell.Void)
	case *forcelang.PrintStmt:
		pr.print(t, f)
	case *forcelang.CallStmt:
		pr.call(t, f)
	default:
		panic(rtErrf(st.Pos(), "unhandled statement %T", st))
	}
}

// asyncCellFor resolves the cell addressed by an async statement,
// evaluating the optional subscript.
func (pr *proc) asyncCellFor(f *tframe, name string, sub forcelang.Expr, line int) asyncCell {
	e := pr.in.asyncFor(f.unit, name, line)
	if sub == nil {
		return e.at(0, false, name, line)
	}
	return e.at(pr.evalInt(sub, f), true, name, line)
}

func (pr *proc) loopBounds(fromE, toE, stepE forcelang.Expr, f *tframe) (from, to, step int64) {
	from = pr.evalInt(fromE, f)
	to = pr.evalInt(toE, f)
	step = 1
	if stepE != nil {
		step = pr.evalInt(stepE, f)
		if step == 0 {
			panic(rtErrf(fromE.Pos(), "loop step is zero"))
		}
	}
	return
}

func (pr *proc) parDo(t *forcelang.ParDo, f *tframe) {
	from, to, step := pr.loopBounds(t.From, t.To, t.Step, f)
	r := sched.Range{Start: int(from), Last: int(to), Incr: int(step)}
	lv := pr.lookup(f, t.Var, t.Pos())
	if t.Inner == nil {
		body := func(i int) {
			pr.storeScalar(lv, intVal(int64(i)), t.Pos())
			pr.stmts(t.Body, f)
		}
		if t.Sched == forcelang.Presched {
			pr.p.PreschedDo(r, body)
		} else {
			pr.p.DoAll(pr.in.cfg.Selfsched, r, body)
		}
		return
	}
	ifrom, ito, istep := pr.loopBounds(t.Inner.From, t.Inner.To, t.Inner.Step, f)
	r2 := sched.Range{Start: int(ifrom), Last: int(ito), Incr: int(istep)}
	ilv := pr.lookup(f, t.Inner.Var, t.Pos())
	body := func(i, j int) {
		pr.storeScalar(lv, intVal(int64(i)), t.Pos())
		pr.storeScalar(ilv, intVal(int64(j)), t.Pos())
		pr.stmts(t.Body, f)
	}
	if t.Sched == forcelang.Presched {
		pr.p.PreschedDo2(r, r2, body)
	} else {
		pr.p.DoAll2(pr.in.cfg.Selfsched, r, r2, body)
	}
}

// askfor executes the language-level Askfor on the runtime's engine pool:
// the seed expression's value (SPMD-identical in every process) seeds the
// pool, each drawn task binds the private task variable, and Put
// statements in the body enqueue onto the innermost pool.
func (pr *proc) askfor(t *forcelang.AskforStmt, f *tframe) {
	seed := pr.evalInt(t.Seed, f)
	lv := pr.lookup(f, t.Var, t.Pos())
	pr.p.Askfor([]any{seed}, func(task any, put func(any)) {
		pr.storeScalar(lv, intVal(task.(int64)), t.Pos())
		pr.puts = append(pr.puts, put)
		defer func() { pr.puts = pr.puts[:len(pr.puts)-1] }()
		pr.stmts(t.Body, f)
	})
}

// greduce executes a global-reduction statement: evaluate the operand,
// coerce it to the target's type (the reduction is performed in the
// target's type, so the interpreter and the code generator combine in
// the same arithmetic), reduce across the force, and assign the combined
// value to the target.  The interpreter assigns per process — its shared
// storage is mutex-serialized, and every process stores the same value.
func (pr *proc) greduce(t *forcelang.ReduceStmt, f *tframe) {
	tb := pr.lookup(f, t.Target.Name, t.Pos())
	v := pr.eval(t.Expr, f)
	var out value
	switch {
	case t.Op.Logical():
		b := v.b
		if t.Op == forcelang.GAnd {
			out = boolVal(core.Gand(pr.p, b))
		} else {
			out = boolVal(core.Gor(pr.p, b))
		}
	case tb.decl.Type == forcelang.TInt:
		out = intVal(greduceNum(pr.p, t.Op, coerce(v, forcelang.TInt, t.Pos()).i))
	default:
		out = realVal(greduceNum(pr.p, t.Op, v.asReal()))
	}
	pr.assign(&t.Target, out, f)
}

// greduceNum dispatches a numeric reduction over the operand type.
func greduceNum[T core.Number](p *core.Proc, op forcelang.GOp, x T) T {
	switch op {
	case forcelang.GSum:
		return core.Gsum(p, x)
	case forcelang.GProd:
		return core.Gprod(p, x)
	case forcelang.GMax:
		return core.Gmax(p, x)
	default:
		return core.Gmin(p, x)
	}
}

func (pr *proc) print(t *forcelang.PrintStmt, f *tframe) {
	parts := make([]string, len(t.Items))
	for i, item := range t.Items {
		if s, ok := item.(*forcelang.StrLit); ok {
			parts[i] = s.Value
			continue
		}
		parts[i] = pr.eval(item, f).String()
	}
	pr.in.out.writeLine(strings.Join(parts, " ") + "\n")
}

func (pr *proc) call(t *forcelang.CallStmt, f *tframe) {
	sub := pr.in.prog.Sub(t.Name)
	if sub == nil {
		panic(rtErrf(t.Pos(), "undefined subroutine %s", t.Name))
	}
	nf := &tframe{unit: sub.Name, vars: map[string]*binding{}}
	// Parameters bind by reference to the caller's storage.
	for i, param := range sub.Params {
		arg := t.Args[i]
		ab := pr.lookup(f, arg.Name, t.Pos())
		if len(arg.Subs) > 0 {
			// Element reference: alias the single cell.
			subs := pr.evalSubs(arg.Subs, f)
			off := ab.a.offset(subs, arg.Name, t.Pos())
			pb := &binding{
				decl:   forcelang.Decl{Class: ab.decl.Class, Type: ab.decl.Type, Name: param},
				p:      &ab.a.data[off],
				shared: ab.shared,
			}
			nf.vars[param] = pb
			continue
		}
		alias := *ab
		alias.decl.Name = param
		nf.vars[param] = &alias
	}
	paramSet := map[string]bool{}
	for _, p := range sub.Params {
		paramSet[p] = true
	}
	// Locals: private fresh per call; shared from the instance.
	for _, d := range sub.Decls {
		if paramSet[d.Name] {
			continue
		}
		switch d.Class {
		case shm.Private:
			nf.vars[d.Name] = newBinding(d, false)
		case shm.Shared:
			nf.vars[d.Name] = pr.in.shared[sub.Name][d.Name]
		}
	}
	// NP and ME are visible everywhere.
	nf.vars[pr.in.prog.NPVar] = pr.in.shared[""][pr.in.prog.NPVar]
	me := newBinding(forcelang.Decl{Class: shm.Private, Type: forcelang.TInt, Name: pr.in.prog.MeVar}, false)
	me.p.i = int64(pr.p.ID())
	nf.vars[pr.in.prog.MeVar] = me
	pr.stmts(sub.Body, nf)
}

func (pr *proc) assign(target *forcelang.Ref, v value, f *tframe) {
	b := pr.lookup(f, target.Name, target.Pos())
	if len(target.Subs) == 0 {
		pr.storeScalar(b, v, target.Pos())
		return
	}
	subs := pr.evalSubs(target.Subs, f)
	pr.storeElem(b, subs, v, target.Name, target.Pos())
}

func (pr *proc) evalSubs(subs []forcelang.Expr, f *tframe) []int64 {
	out := make([]int64, len(subs))
	for i, s := range subs {
		out[i] = pr.evalInt(s, f)
	}
	return out
}

// --- expressions -------------------------------------------------------

func (pr *proc) eval(e forcelang.Expr, f *tframe) value {
	switch t := e.(type) {
	case *forcelang.IntLit:
		return intVal(t.Value)
	case *forcelang.RealLit:
		return realVal(t.Value)
	case *forcelang.BoolLit:
		return boolVal(t.Value)
	case *forcelang.StrLit:
		panic(rtErrf(t.Pos(), "string in expression"))
	case *forcelang.Ref:
		b := pr.lookup(f, t.Name, t.Pos())
		if len(t.Subs) == 0 {
			return pr.loadScalar(b, t.Pos())
		}
		return pr.loadElem(b, pr.evalSubs(t.Subs, f), t.Name, t.Pos())
	case *forcelang.Un:
		x := pr.eval(t.X, f)
		if t.Neg {
			if x.t == forcelang.TInt {
				return intVal(-x.i)
			}
			return realVal(-x.r)
		}
		return boolVal(!x.b)
	case *forcelang.Bin:
		return pr.evalBin(t, f)
	case *forcelang.Intrinsic:
		return pr.evalIntrinsic(t, f)
	default:
		panic(rtErrf(e.Pos(), "unhandled expression %T", e))
	}
}

func (pr *proc) evalBool(e forcelang.Expr, f *tframe) bool {
	v := pr.eval(e, f)
	if v.t != forcelang.TLogical {
		panic(rtErrf(e.Pos(), "expected LOGICAL, got %s", v.t))
	}
	return v.b
}

func (pr *proc) evalInt(e forcelang.Expr, f *tframe) int64 {
	return coerce(pr.eval(e, f), forcelang.TInt, e.Pos()).i
}

func (pr *proc) evalBin(t *forcelang.Bin, f *tframe) value {
	// Short-circuit logical operators.
	switch t.Op {
	case forcelang.OpAnd:
		return boolVal(pr.evalBool(t.L, f) && pr.evalBool(t.R, f))
	case forcelang.OpOr:
		return boolVal(pr.evalBool(t.L, f) || pr.evalBool(t.R, f))
	}
	l := pr.eval(t.L, f)
	r := pr.eval(t.R, f)
	switch t.Op {
	case forcelang.OpAdd, forcelang.OpSub, forcelang.OpMul, forcelang.OpDiv:
		if l.t == forcelang.TInt && r.t == forcelang.TInt {
			switch t.Op {
			case forcelang.OpAdd:
				return intVal(l.i + r.i)
			case forcelang.OpSub:
				return intVal(l.i - r.i)
			case forcelang.OpMul:
				return intVal(l.i * r.i)
			default:
				if r.i == 0 {
					panic(rtErrf(t.Pos(), "integer division by zero"))
				}
				return intVal(l.i / r.i)
			}
		}
		lf, rf := l.asReal(), r.asReal()
		switch t.Op {
		case forcelang.OpAdd:
			return realVal(lf + rf)
		case forcelang.OpSub:
			return realVal(lf - rf)
		case forcelang.OpMul:
			return realVal(lf * rf)
		default:
			return realVal(lf / rf) // IEEE semantics for real division
		}
	case forcelang.OpEq, forcelang.OpNe:
		if l.t == forcelang.TLogical || r.t == forcelang.TLogical {
			eq := l.b == r.b
			if t.Op == forcelang.OpNe {
				eq = !eq
			}
			return boolVal(eq)
		}
		fallthrough
	case forcelang.OpLt, forcelang.OpLe, forcelang.OpGt, forcelang.OpGe:
		var cmp int
		if l.t == forcelang.TInt && r.t == forcelang.TInt {
			switch {
			case l.i < r.i:
				cmp = -1
			case l.i > r.i:
				cmp = 1
			}
		} else {
			lf, rf := l.asReal(), r.asReal()
			switch {
			case lf < rf:
				cmp = -1
			case lf > rf:
				cmp = 1
			}
		}
		switch t.Op {
		case forcelang.OpEq:
			return boolVal(cmp == 0)
		case forcelang.OpNe:
			return boolVal(cmp != 0)
		case forcelang.OpLt:
			return boolVal(cmp < 0)
		case forcelang.OpLe:
			return boolVal(cmp <= 0)
		case forcelang.OpGt:
			return boolVal(cmp > 0)
		default:
			return boolVal(cmp >= 0)
		}
	default:
		panic(rtErrf(t.Pos(), "unhandled operator %s", t.Op))
	}
}

func (pr *proc) evalIntrinsic(t *forcelang.Intrinsic, f *tframe) value {
	args := make([]value, len(t.Args))
	for i, a := range t.Args {
		args[i] = pr.eval(a, f)
	}
	switch t.Name {
	case "ABS":
		if args[0].t == forcelang.TInt {
			if args[0].i < 0 {
				return intVal(-args[0].i)
			}
			return args[0]
		}
		return realVal(math.Abs(args[0].r))
	case "SQRT":
		x := args[0].asReal()
		if x < 0 {
			panic(rtErrf(t.Pos(), "SQRT of negative value %g", x))
		}
		return realVal(math.Sqrt(x))
	case "INT":
		return intVal(int64(args[0].asReal()))
	case "NINT":
		return intVal(int64(math.Round(args[0].asReal())))
	case "REAL":
		return realVal(args[0].asReal())
	case "MOD":
		if args[0].t == forcelang.TInt && args[1].t == forcelang.TInt {
			if args[1].i == 0 {
				panic(rtErrf(t.Pos(), "MOD by zero"))
			}
			return intVal(args[0].i % args[1].i)
		}
		return realVal(math.Mod(args[0].asReal(), args[1].asReal()))
	case "MIN", "MAX":
		allInt := true
		for _, a := range args {
			if a.t != forcelang.TInt {
				allInt = false
			}
		}
		if allInt {
			best := args[0].i
			for _, a := range args[1:] {
				if (t.Name == "MIN" && a.i < best) || (t.Name == "MAX" && a.i > best) {
					best = a.i
				}
			}
			return intVal(best)
		}
		best := args[0].asReal()
		for _, a := range args[1:] {
			x := a.asReal()
			if (t.Name == "MIN" && x < best) || (t.Name == "MAX" && x > best) {
				best = x
			}
		}
		return realVal(best)
	default:
		panic(rtErrf(t.Pos(), "unknown intrinsic %s", t.Name))
	}
}
