package interp

// The chunk compiler: the SPMD-on-spans tier of the interpreter.  For a
// DOALL body the classifier (classify.go) approves, this pass emits a
// chunk closure executed once per scheduler span (core.DoAllChunked)
// instead of once per index:
//
//   - the loop index lives in a register-like local (kctx.i / kctx.j),
//     never re-stored through the frame per iteration; the frame slot
//     receives the last executed index when the chunk ends, matching
//     the per-iteration path's observable final value.
//   - uniform subexpressions are compiled by the ordinary closure
//     compiler and evaluated ONCE per construct execution into typed
//     slots; the iteration loop reads slots.  Only non-panicking
//     expressions hoist (no integer division, MOD or SQRT), so hoisting
//     can never surface an error a per-iteration run would not.
//   - accesses to disjoint-proven shared arrays go through one
//     stripeWalker that holds a single stripe lock across consecutive
//     elements (store.go); everything else keeps per-element striping.
//   - accumulator scalars (S = S + e, S = MAX(S, e), S = MIN(S, e))
//     accumulate into a private per-chunk slot and fold into the shared
//     cell with one atomic RMW at chunk end — an add for sums, a strict
//     compare-and-swap for extrema — before the construct's exit
//     barrier, so post-loop readers see the total.
//   - poison is checked once per span by the runtime and every 256
//     iterations inside the chunk, keeping PR 4's abort latency in the
//     milliseconds even for giant prescheduled spans.
//
// Compiled k-closures take the extra *kctx argument; otherwise they
// mirror compile.go case for case so both engines agree on evaluation
// order, coercions, bounds checks and error messages.

import (
	"math"
	"sync"

	"repro/internal/forcelang"
	"repro/internal/sched"
	"repro/internal/uniform"
)

// poisonEvery bounds how many chunk iterations run between poison
// checks (one atomic load each, amortized to noise at this interval).
const poisonEvery = 256

// kctx is the per-construct chunk context: the live loop indices, the
// hoisted uniform values, the bulk stripe walker and the private
// accumulator slots.
type kctx struct {
	i, j int64 // current loop index values
	uniI []int64
	uniR []float64
	uniB []bool
	w    stripeWalker
	accI []int64
	accR []float64
}

// accCell pairs one accumulator's shared cell with its fold operator,
// precomputed per construct so flush needs no plan lookups.
type accCell struct {
	cell *sharedScalar
	op   accOp
	real bool
}

// flush folds the accumulated contributions into their shared cells
// and re-seeds the slots; it must run before the construct's exit
// barrier.  Sum deltas fold with one atomic add; extremum partials
// fold with the strict compare-and-swap RMWs, so an identity-valued
// partial (a chunk that never ran the statement) never disturbs the
// cell.
func (kc *kctx) flush(accs []accCell) {
	for si, ac := range accs {
		switch {
		case ac.op == accSum:
			if d := kc.accI[si]; d != 0 {
				ac.cell.addInt(d)
				kc.accI[si] = 0
			}
		case ac.real:
			if ac.op == accMax {
				ac.cell.maxReal(kc.accR[si])
				kc.accR[si] = math.Inf(-1)
			} else {
				ac.cell.minReal(kc.accR[si])
				kc.accR[si] = math.Inf(1)
			}
		default:
			if ac.op == accMax {
				ac.cell.maxInt(kc.accI[si])
				kc.accI[si] = math.MinInt64
			} else {
				ac.cell.minInt(kc.accI[si])
				kc.accI[si] = math.MaxInt64
			}
		}
	}
}

type (
	kstmtFn func(pr *cproc, fr *frame, kc *kctx)
	kvalFn  func(pr *cproc, fr *frame, kc *kctx) value
	kintFn  func(pr *cproc, fr *frame, kc *kctx) int64
	krealFn func(pr *cproc, fr *frame, kc *kctx) float64
	kboolFn func(pr *cproc, fr *frame, kc *kctx) bool
)

func runKBody(body []kstmtFn, pr *cproc, fr *frame, kc *kctx) {
	for _, st := range body {
		st(pr, fr, kc)
	}
}

// kcompiler compiles statements and expressions against a chunk plan.
type kcompiler struct {
	c    *compiler
	lay  *unitLayout
	plan *chunkPlan
}

// tryChunkParDo compiles t as a chunked DOALL, or returns nil when the
// chunk tier is off, an iteration-level trace is requested, or the
// classifier finds the body unsafe — the caller then emits the
// per-iteration path.
func (c *compiler) tryChunkParDo(t *forcelang.ParDo, lay *unitLayout) stmtFn {
	if c.in.cfg.Exec != ExecChunked {
		return nil
	}
	if c.in.cfg.Trace != nil {
		// Chunk execution emits no per-iteration LoopIter events; keep
		// traced runs on the per-iteration path so validation sees the
		// edges it expects.
		return nil
	}
	plan, reason := classifyParDo(c.res.prog, t, lay)
	if reason != "" {
		return nil
	}
	return c.chunkParDo(t, lay, plan, false)
}

// chunkParDo compiles the chunk-tier execution of t against its plan.
// When open is true the construct is emitted as a member of a fused
// region: spans run through DoAllChunkedOpen and no exit barrier is
// executed — the caller must close the region with a FusedJoin on every
// process.  Chunk contexts are recycled through a per-site pool: a
// construct inside a sequential loop executes many times per run, and
// every execution would otherwise reallocate the context and its slot
// slices.  A context is returned to the pool only on normal completion
// (flushed accumulators, released walker), so a poisoned unwind simply
// abandons it.
func (c *compiler) chunkParDo(t *forcelang.ParDo, lay *unitLayout, plan *chunkPlan, open bool) stmtFn {
	k := &kcompiler{c: c, lay: lay, plan: plan}
	body := k.stmts(t.Body)
	accCells := make([]accCell, len(plan.accSyms))
	for i, rec := range plan.accSyms {
		accCells[i] = accCell{cell: c.in.scalar(rec.sym.unit, rec.sym.slot), op: rec.op, real: rec.real}
	}
	fromF, toF, stepF := c.cInt(t.From, lay), c.cInt(t.To, lay), c.stepFn(t.Step, lay)
	storeVar := c.intVarStore(t.Var, lay, t.Pos())
	line := t.From.Pos()
	presched := t.Sched == forcelang.Presched
	note := noteStr("DOALL", t.Pos())
	selfKind := func(pr *cproc) sched.Kind {
		if presched {
			return sched.PreschedCyclic
		}
		return pr.in.cfg.Selfsched
	}
	pool := &sync.Pool{New: func() any { return newKctx(plan) }}

	if t.Inner == nil {
		return func(pr *cproc, fr *frame) {
			pr.p.Note(note)
			from, to := fromF(pr, fr), toF(pr, fr)
			step := stepF(pr, fr)
			if step == 0 {
				panic(rtErrf(line, "loop step is zero"))
			}
			r := sched.Range{Start: int(from), Last: int(to), Incr: int(step)}
			kc := pool.Get().(*kctx)
			evalUniforms(plan, pr, fr, kc)
			base, incr := int64(r.Start), int64(r.Incr)
			chunkFn := func(lo, hi, stride int) {
				cnt := hi - lo
				if cnt <= 0 {
					return
				}
				if stride > 1 {
					cnt = (cnt + stride - 1) / stride
				}
				defer kc.w.release()
				i := base + int64(lo)*incr
				di := int64(stride) * incr
				ctr := 0
				for x := 0; x < cnt; x++ {
					kc.i = i
					runKBody(body, pr, fr, kc)
					i += di
					if ctr++; ctr == poisonEvery {
						ctr = 0
						pr.p.Check()
					}
				}
				kc.w.release()
				storeVar(pr, fr, i-di)
				kc.flush(accCells)
			}
			if open {
				pr.p.DoAllChunkedOpen(selfKind(pr), r, chunkFn)
			} else {
				pr.p.DoAllChunked(selfKind(pr), r, chunkFn)
			}
			pool.Put(kc)
		}
	}
	if open {
		panic(compileErrf("line %d: internal: two-index DOALL as fused member", t.Pos()))
	}

	ifromF, itoF, istepF := c.cInt(t.Inner.From, lay), c.cInt(t.Inner.To, lay), c.stepFn(t.Inner.Step, lay)
	storeInner := c.intVarStore(t.Inner.Var, lay, t.Pos())
	iline := t.Inner.From.Pos()
	return func(pr *cproc, fr *frame) {
		pr.p.Note(note)
		from, to := fromF(pr, fr), toF(pr, fr)
		step := stepF(pr, fr)
		if step == 0 {
			panic(rtErrf(line, "loop step is zero"))
		}
		ifrom, ito := ifromF(pr, fr), itoF(pr, fr)
		istep := istepF(pr, fr)
		if istep == 0 {
			panic(rtErrf(iline, "loop step is zero"))
		}
		r := sched.Range{Start: int(from), Last: int(to), Incr: int(step)}
		r2 := sched.Range{Start: int(ifrom), Last: int(ito), Incr: int(istep)}
		kc := pool.Get().(*kctx)
		evalUniforms(plan, pr, fr, kc)
		n2 := r2.Count()
		chunkFn := func(lo, hi, stride int) {
			if hi <= lo {
				return
			}
			defer kc.w.release()
			ctr := 0
			var li, lj int64
			for kk := lo; kk < hi; kk += stride {
				li, lj = int64(r.Index(kk/n2)), int64(r2.Index(kk%n2))
				kc.i, kc.j = li, lj
				runKBody(body, pr, fr, kc)
				if ctr++; ctr == poisonEvery {
					ctr = 0
					pr.p.Check()
				}
			}
			kc.w.release()
			storeVar(pr, fr, li)
			storeInner(pr, fr, lj)
			kc.flush(accCells)
		}
		pr.p.DoAll2Chunked(selfKind(pr), r, r2, chunkFn)
		pool.Put(kc)
	}
}

func newKctx(plan *chunkPlan) *kctx {
	kc := &kctx{
		uniI: make([]int64, len(plan.uniInt)),
		uniR: make([]float64, len(plan.uniReal)),
		uniB: make([]bool, len(plan.uniBool)),
		accI: make([]int64, len(plan.accSyms)),
		accR: make([]float64, len(plan.accSyms)),
	}
	seedAccs(plan.accSyms, kc)
	return kc
}

// seedAccs installs each accumulator's fold identity: 0 for sums,
// MinInt64 / -Inf for MAX, MaxInt64 / +Inf for MIN.
func seedAccs(recs []accRec, kc *kctx) {
	for si, rec := range recs {
		switch {
		case rec.op == accSum:
			kc.accI[si] = 0
		case rec.real && rec.op == accMax:
			kc.accR[si] = math.Inf(-1)
		case rec.real:
			kc.accR[si] = math.Inf(1)
		case rec.op == accMax:
			kc.accI[si] = math.MinInt64
		default:
			kc.accI[si] = math.MaxInt64
		}
	}
}

// evalUniforms runs the hoisted prologue: every uniform subexpression
// is evaluated once per construct execution.  All hoisted expressions
// are non-panicking by construction, so running them even when this
// process draws zero iterations cannot surface a spurious error.
func evalUniforms(plan *chunkPlan, pr *cproc, fr *frame, kc *kctx) {
	for si, ev := range plan.uniInt {
		kc.uniI[si] = ev(pr, fr)
	}
	for si, ev := range plan.uniReal {
		kc.uniR[si] = ev(pr, fr)
	}
	for si, ev := range plan.uniBool {
		kc.uniB[si] = ev(pr, fr)
	}
}

// --- statements --------------------------------------------------------

func (k *kcompiler) stmts(list []forcelang.Stmt) []kstmtFn {
	out := make([]kstmtFn, len(list))
	for i, st := range list {
		out[i] = k.stmt(st)
	}
	return out
}

func (k *kcompiler) stmt(st forcelang.Stmt) kstmtFn {
	switch t := st.(type) {
	case *forcelang.Assign:
		return k.assign(t)
	case *forcelang.If:
		cond := k.kBool(t.Cond)
		then := k.stmts(t.Then)
		els := k.stmts(t.Else)
		return func(pr *cproc, fr *frame, kc *kctx) {
			if cond(pr, fr, kc) {
				runKBody(then, pr, fr, kc)
			} else {
				runKBody(els, pr, fr, kc)
			}
		}
	case *forcelang.SeqDo:
		fromF, toF := k.kInt(t.From), k.kInt(t.To)
		stepF := k.kStep(t.Step)
		sym := k.lay.lookup(t.Var, t.Pos())
		slot := sym.slot // classifier guarantees scPrivate
		body := k.stmts(t.Body)
		line := t.From.Pos()
		return func(pr *cproc, fr *frame, kc *kctx) {
			from, to := fromF(pr, fr, kc), toF(pr, fr, kc)
			step := stepF(pr, fr, kc)
			if step == 0 {
				panic(rtErrf(line, "loop step is zero"))
			}
			for i := from; (step > 0 && i <= to) || (step < 0 && i >= to); i += step {
				fr.priv[slot] = intVal(i)
				runKBody(body, pr, fr, kc)
			}
		}
	default:
		panic(compileErrf("line %d: internal: %T reached the chunk compiler", st.Pos(), st))
	}
}

func (k *kcompiler) assign(t *forcelang.Assign) kstmtFn {
	sym := k.lay.lookup(t.Target.Name, t.Pos())
	tt := sym.decl.Type
	if len(t.Target.Subs) == 0 {
		switch sym.class {
		case scPrivate:
			slot := sym.slot
			ev := k.kValAs(t.Expr, tt)
			return func(pr *cproc, fr *frame, kc *kctx) { fr.priv[slot] = ev(pr, fr, kc) }
		case scShared:
			cell := k.c.in.scalar(sym.unit, sym.slot)
			if si, isAcc := k.plan.accs[t.Target.Name]; isAcc {
				return k.accAssign(t, si)
			}
			switch tt {
			case forcelang.TInt:
				iv := k.kAsInt(t.Expr)
				return func(pr *cproc, fr *frame, kc *kctx) { cell.storeInt(iv(pr, fr, kc)) }
			case forcelang.TReal:
				rv := k.kReal(t.Expr)
				return func(pr *cproc, fr *frame, kc *kctx) { cell.storeReal(rv(pr, fr, kc)) }
			default:
				bv := k.kBool(t.Expr)
				return func(pr *cproc, fr *frame, kc *kctx) { cell.storeBool(bv(pr, fr, kc)) }
			}
		}
		panic(compileErrf("line %d: internal: chunked assignment to %s", t.Pos(), t.Target.Name))
	}
	ev := k.kValAs(t.Expr, tt)
	switch sym.class {
	case scSharedArray:
		arr := k.c.in.array(sym.unit, sym.slot)
		off := k.kOffset(sym.decl.Dims, t.Target.Subs, t.Target.Name, t.Pos())
		if k.plan.disjoint[t.Target.Name] {
			return func(pr *cproc, fr *frame, kc *kctx) {
				v := ev(pr, fr, kc)
				kc.w.storeAt(arr, off(pr, fr, kc), v)
			}
		}
		return func(pr *cproc, fr *frame, kc *kctx) {
			v := ev(pr, fr, kc)
			arr.store(off(pr, fr, kc), v)
		}
	case scPrivArray:
		slot := sym.slot
		off := k.kOffset(sym.decl.Dims, t.Target.Subs, t.Target.Name, t.Pos())
		return func(pr *cproc, fr *frame, kc *kctx) {
			v := ev(pr, fr, kc)
			fr.arrs[slot].data[off(pr, fr, kc)] = v
		}
	}
	panic(compileErrf("line %d: internal: chunked array assignment to %s", t.Pos(), t.Target.Name))
}

// accAssign compiles one accumulator statement into its private-slot
// update.  The extremum update replaces the partial only on a strict
// compare, the exact test MAX(S, e) / MIN(S, e) performs per
// iteration — so NaN contributions are dropped and a +0.0 never
// replaces a -0.0, matching the per-iteration path bit for bit.
func (k *kcompiler) accAssign(t *forcelang.Assign, si int) kstmtFn {
	rec := k.plan.accSyms[si]
	if rec.op == accSum {
		delta, neg, ok := uniform.AccumDelta(t.Target.Name, t.Expr)
		if !ok {
			panic(compileErrf("line %d: internal: accumulator shape lost for %s", t.Pos(), t.Target.Name))
		}
		dv := k.kInt(delta)
		if neg {
			return func(pr *cproc, fr *frame, kc *kctx) { kc.accI[si] -= dv(pr, fr, kc) }
		}
		return func(pr *cproc, fr *frame, kc *kctx) { kc.accI[si] += dv(pr, fr, kc) }
	}
	arg, isMax, ok := uniform.AccumMinMax(t.Target.Name, t.Expr)
	if !ok {
		panic(compileErrf("line %d: internal: accumulator shape lost for %s", t.Pos(), t.Target.Name))
	}
	if rec.real {
		av := k.kReal(arg)
		if isMax {
			return func(pr *cproc, fr *frame, kc *kctx) {
				if v := av(pr, fr, kc); v > kc.accR[si] {
					kc.accR[si] = v
				}
			}
		}
		return func(pr *cproc, fr *frame, kc *kctx) {
			if v := av(pr, fr, kc); v < kc.accR[si] {
				kc.accR[si] = v
			}
		}
	}
	av := k.kInt(arg)
	if isMax {
		return func(pr *cproc, fr *frame, kc *kctx) {
			if v := av(pr, fr, kc); v > kc.accI[si] {
				kc.accI[si] = v
			}
		}
	}
	return func(pr *cproc, fr *frame, kc *kctx) {
		if v := av(pr, fr, kc); v < kc.accI[si] {
			kc.accI[si] = v
		}
	}
}

func (k *kcompiler) kStep(step forcelang.Expr) kintFn {
	if step == nil {
		return func(pr *cproc, fr *frame, kc *kctx) int64 { return 1 }
	}
	return k.kInt(step)
}

// kOffset mirrors offsetFn against the chunk context.
func (k *kcompiler) kOffset(dims []int, subs []forcelang.Expr, name string, line int) func(pr *cproc, fr *frame, kc *kctx) int {
	if len(subs) != len(dims) {
		panic(compileErrf("line %d: %s: %d subscripts for %d dims", line, name, len(subs), len(dims)))
	}
	fns := k.kIntFns(subs)
	if len(dims) == 1 {
		d0, s0 := dims[0], fns[0]
		return func(pr *cproc, fr *frame, kc *kctx) int {
			s := s0(pr, fr, kc)
			if s < 1 || s > int64(d0) {
				panic(rtErrf(line, "subscript 1 of %s out of range: %d not in [1,%d]", name, s, d0))
			}
			return int(s - 1)
		}
	}
	return func(pr *cproc, fr *frame, kc *kctx) int {
		return flatOffset(dims, evalKSubs(fns, pr, fr, kc), name, line)
	}
}

func (k *kcompiler) kIntFns(exprs []forcelang.Expr) []kintFn {
	out := make([]kintFn, len(exprs))
	for i, e := range exprs {
		out[i] = k.kInt(e)
	}
	return out
}

func evalKSubs(fns []kintFn, pr *cproc, fr *frame, kc *kctx) []int64 {
	out := make([]int64, len(fns))
	for i, f := range fns {
		out[i] = f(pr, fr, kc)
	}
	return out
}

// --- uniform hoisting --------------------------------------------------

// hoistable reports whether e is uniform (no loop index, no written
// name, no parameter, no subscripted reference) AND non-panicking (no
// integer division, integer MOD or SQRT), so it may be evaluated once
// per construct by the ordinary compiler.
func (k *kcompiler) hoistable(e forcelang.Expr) bool {
	switch t := e.(type) {
	case *forcelang.IntLit, *forcelang.RealLit, *forcelang.BoolLit:
		return true
	case *forcelang.Ref:
		if len(t.Subs) > 0 {
			return false
		}
		if t.Name == k.plan.outer || (k.plan.inner != "" && t.Name == k.plan.inner) {
			return false
		}
		if k.plan.written[t.Name] {
			return false
		}
		sym, ok := k.lay.syms[t.Name]
		if !ok {
			return false
		}
		return sym.class == scPrivate || sym.class == scShared
	case *forcelang.Un:
		return k.hoistable(t.X)
	case *forcelang.Bin:
		if t.Op == forcelang.OpDiv && k.c.typ(e, k.lay) != forcelang.TReal {
			return false // integer division panics on zero
		}
		return k.hoistable(t.L) && k.hoistable(t.R)
	case *forcelang.Intrinsic:
		switch t.Name {
		case "SQRT":
			return false
		case "MOD":
			if k.c.typ(e, k.lay) != forcelang.TReal {
				return false
			}
		}
		for _, a := range t.Args {
			if !k.hoistable(a) {
				return false
			}
		}
		return true
	}
	return false
}

// hoistWorthwhile screens out expressions whose per-iteration cost is
// already a single local load: literals and private scalar reads.
func (k *kcompiler) hoistWorthwhile(e forcelang.Expr) bool {
	switch t := e.(type) {
	case *forcelang.IntLit, *forcelang.RealLit, *forcelang.BoolLit:
		return false
	case *forcelang.Ref:
		if sym, ok := k.lay.syms[t.Name]; ok && sym.class == scPrivate {
			return false
		}
	}
	return true
}

func (k *kcompiler) hoistInt(e forcelang.Expr) kintFn {
	if !k.hoistable(e) || !k.hoistWorthwhile(e) {
		return nil
	}
	slot := len(k.plan.uniInt)
	k.plan.uniInt = append(k.plan.uniInt, k.c.cInt(e, k.lay))
	return func(pr *cproc, fr *frame, kc *kctx) int64 { return kc.uniI[slot] }
}

func (k *kcompiler) hoistReal(e forcelang.Expr) krealFn {
	if !k.hoistable(e) || !k.hoistWorthwhile(e) {
		return nil
	}
	slot := len(k.plan.uniReal)
	k.plan.uniReal = append(k.plan.uniReal, k.c.cReal(e, k.lay))
	return func(pr *cproc, fr *frame, kc *kctx) float64 { return kc.uniR[slot] }
}

func (k *kcompiler) hoistBool(e forcelang.Expr) kboolFn {
	if !k.hoistable(e) || !k.hoistWorthwhile(e) {
		return nil
	}
	slot := len(k.plan.uniBool)
	k.plan.uniBool = append(k.plan.uniBool, k.c.cBool(e, k.lay))
	return func(pr *cproc, fr *frame, kc *kctx) bool { return kc.uniB[slot] }
}

// --- expressions -------------------------------------------------------

// kValAs mirrors valAs: a boxed value of the wanted type.
func (k *kcompiler) kValAs(e forcelang.Expr, want forcelang.Type) kvalFn {
	switch want {
	case forcelang.TInt:
		iv := k.kAsInt(e)
		return func(pr *cproc, fr *frame, kc *kctx) value { return intVal(iv(pr, fr, kc)) }
	case forcelang.TReal:
		rv := k.kReal(e)
		return func(pr *cproc, fr *frame, kc *kctx) value { return realVal(rv(pr, fr, kc)) }
	default:
		bv := k.kBool(e)
		return func(pr *cproc, fr *frame, kc *kctx) value { return boolVal(bv(pr, fr, kc)) }
	}
}

// kAsInt mirrors asInt: truncate statically REAL expressions.
func (k *kcompiler) kAsInt(e forcelang.Expr) kintFn {
	if k.c.typ(e, k.lay) == forcelang.TInt {
		return k.kInt(e)
	}
	rv := k.kReal(e)
	return func(pr *cproc, fr *frame, kc *kctx) int64 { return int64(rv(pr, fr, kc)) }
}

// kInt mirrors cInt with the loop indices read from the chunk context
// and uniform subexpressions hoisted.
func (k *kcompiler) kInt(e forcelang.Expr) kintFn {
	if fn := k.hoistInt(e); fn != nil {
		return fn
	}
	switch t := e.(type) {
	case *forcelang.IntLit:
		v := t.Value
		return func(pr *cproc, fr *frame, kc *kctx) int64 { return v }
	case *forcelang.Ref:
		return k.kRefInt(t)
	case *forcelang.Un:
		x := k.kInt(t.X)
		return func(pr *cproc, fr *frame, kc *kctx) int64 { return -x(pr, fr, kc) }
	case *forcelang.Bin:
		l, r := k.kInt(t.L), k.kInt(t.R)
		switch t.Op {
		case forcelang.OpAdd:
			return func(pr *cproc, fr *frame, kc *kctx) int64 { return l(pr, fr, kc) + r(pr, fr, kc) }
		case forcelang.OpSub:
			return func(pr *cproc, fr *frame, kc *kctx) int64 { return l(pr, fr, kc) - r(pr, fr, kc) }
		case forcelang.OpMul:
			return func(pr *cproc, fr *frame, kc *kctx) int64 { return l(pr, fr, kc) * r(pr, fr, kc) }
		case forcelang.OpDiv:
			line := t.Pos()
			return func(pr *cproc, fr *frame, kc *kctx) int64 {
				rv := r(pr, fr, kc)
				if rv == 0 {
					panic(rtErrf(line, "integer division by zero"))
				}
				return l(pr, fr, kc) / rv
			}
		}
	case *forcelang.Intrinsic:
		return k.kIntrinsicInt(t)
	}
	panic(compileErrf("line %d: internal: %T is not an INTEGER expression", e.Pos(), e))
}

func (k *kcompiler) kRefInt(t *forcelang.Ref) kintFn {
	if len(t.Subs) == 0 {
		if t.Name == k.plan.outer {
			return func(pr *cproc, fr *frame, kc *kctx) int64 { return kc.i }
		}
		if k.plan.inner != "" && t.Name == k.plan.inner {
			return func(pr *cproc, fr *frame, kc *kctx) int64 { return kc.j }
		}
		sym := k.lay.lookup(t.Name, t.Pos())
		switch sym.class {
		case scPrivate:
			slot := sym.slot
			return func(pr *cproc, fr *frame, kc *kctx) int64 { return fr.priv[slot].i }
		case scShared:
			cell := k.c.in.scalar(sym.unit, sym.slot)
			return func(pr *cproc, fr *frame, kc *kctx) int64 { return cell.loadInt() }
		}
	}
	lv := k.kRefLoad(t)
	return func(pr *cproc, fr *frame, kc *kctx) int64 { return lv(pr, fr, kc).i }
}

// kRefLoad mirrors refLoad: the boxed load of any reference.
func (k *kcompiler) kRefLoad(t *forcelang.Ref) kvalFn {
	sym := k.lay.lookup(t.Name, t.Pos())
	if len(t.Subs) == 0 {
		switch sym.class {
		case scPrivate:
			slot := sym.slot
			return func(pr *cproc, fr *frame, kc *kctx) value { return fr.priv[slot] }
		case scShared:
			cell := k.c.in.scalar(sym.unit, sym.slot)
			return func(pr *cproc, fr *frame, kc *kctx) value { return cell.load() }
		case scParam:
			idx := sym.slot
			return func(pr *cproc, fr *frame, kc *kctx) value { return fr.params[idx].sc.load() }
		}
		panic(compileErrf("line %d: %s cannot be read directly", t.Pos(), t.Name))
	}
	switch sym.class {
	case scSharedArray:
		arr := k.c.in.array(sym.unit, sym.slot)
		off := k.kOffset(sym.decl.Dims, t.Subs, t.Name, t.Pos())
		if k.plan.disjoint[t.Name] {
			return func(pr *cproc, fr *frame, kc *kctx) value { return kc.w.loadAt(arr, off(pr, fr, kc)) }
		}
		return func(pr *cproc, fr *frame, kc *kctx) value { return arr.load(off(pr, fr, kc)) }
	case scPrivArray:
		slot := sym.slot
		off := k.kOffset(sym.decl.Dims, t.Subs, t.Name, t.Pos())
		return func(pr *cproc, fr *frame, kc *kctx) value { return fr.arrs[slot].data[off(pr, fr, kc)] }
	case scParam:
		idx := sym.slot
		subs := k.kIntFns(t.Subs)
		name, line := t.Name, t.Pos()
		return func(pr *cproc, fr *frame, kc *kctx) value {
			ar := fr.params[idx].ar
			return ar.load(flatOffset(ar.shape(), evalKSubs(subs, pr, fr, kc), name, line))
		}
	}
	panic(compileErrf("line %d: %s is not an array", t.Pos(), t.Name))
}

func (k *kcompiler) kIntrinsicInt(t *forcelang.Intrinsic) kintFn {
	switch t.Name {
	case "ABS":
		x := k.kInt(t.Args[0])
		return func(pr *cproc, fr *frame, kc *kctx) int64 {
			v := x(pr, fr, kc)
			if v < 0 {
				return -v
			}
			return v
		}
	case "INT":
		rv := k.kReal(t.Args[0])
		return func(pr *cproc, fr *frame, kc *kctx) int64 { return int64(rv(pr, fr, kc)) }
	case "NINT":
		rv := k.kReal(t.Args[0])
		return func(pr *cproc, fr *frame, kc *kctx) int64 { return int64(math.Round(rv(pr, fr, kc))) }
	case "MOD":
		l, r := k.kInt(t.Args[0]), k.kInt(t.Args[1])
		line := t.Pos()
		return func(pr *cproc, fr *frame, kc *kctx) int64 {
			rv := r(pr, fr, kc)
			if rv == 0 {
				panic(rtErrf(line, "MOD by zero"))
			}
			return l(pr, fr, kc) % rv
		}
	case "MIN", "MAX":
		args := k.kIntFns(t.Args)
		min := t.Name == "MIN"
		return func(pr *cproc, fr *frame, kc *kctx) int64 {
			best := args[0](pr, fr, kc)
			for _, a := range args[1:] {
				x := a(pr, fr, kc)
				if (min && x < best) || (!min && x > best) {
					best = x
				}
			}
			return best
		}
	}
	panic(compileErrf("line %d: internal: %s is not an INTEGER intrinsic", t.Pos(), t.Name))
}

// kReal mirrors cReal.
func (k *kcompiler) kReal(e forcelang.Expr) krealFn {
	if fn := k.hoistReal(e); fn != nil {
		return fn
	}
	if k.c.typ(e, k.lay) == forcelang.TInt {
		iv := k.kInt(e)
		return func(pr *cproc, fr *frame, kc *kctx) float64 { return float64(iv(pr, fr, kc)) }
	}
	switch t := e.(type) {
	case *forcelang.RealLit:
		v := t.Value
		return func(pr *cproc, fr *frame, kc *kctx) float64 { return v }
	case *forcelang.Ref:
		return k.kRefReal(t)
	case *forcelang.Un:
		x := k.kReal(t.X)
		return func(pr *cproc, fr *frame, kc *kctx) float64 { return -x(pr, fr, kc) }
	case *forcelang.Bin:
		l, r := k.kReal(t.L), k.kReal(t.R)
		switch t.Op {
		case forcelang.OpAdd:
			return func(pr *cproc, fr *frame, kc *kctx) float64 { return l(pr, fr, kc) + r(pr, fr, kc) }
		case forcelang.OpSub:
			return func(pr *cproc, fr *frame, kc *kctx) float64 { return l(pr, fr, kc) - r(pr, fr, kc) }
		case forcelang.OpMul:
			return func(pr *cproc, fr *frame, kc *kctx) float64 { return l(pr, fr, kc) * r(pr, fr, kc) }
		case forcelang.OpDiv:
			return func(pr *cproc, fr *frame, kc *kctx) float64 { return l(pr, fr, kc) / r(pr, fr, kc) }
		}
	case *forcelang.Intrinsic:
		return k.kIntrinsicReal(t)
	}
	panic(compileErrf("line %d: internal: %T is not a REAL expression", e.Pos(), e))
}

func (k *kcompiler) kRefReal(t *forcelang.Ref) krealFn {
	if len(t.Subs) == 0 {
		sym := k.lay.lookup(t.Name, t.Pos())
		switch sym.class {
		case scPrivate:
			slot := sym.slot
			return func(pr *cproc, fr *frame, kc *kctx) float64 { return fr.priv[slot].r }
		case scShared:
			cell := k.c.in.scalar(sym.unit, sym.slot)
			return func(pr *cproc, fr *frame, kc *kctx) float64 { return cell.loadReal() }
		}
	}
	lv := k.kRefLoad(t)
	return func(pr *cproc, fr *frame, kc *kctx) float64 { return lv(pr, fr, kc).r }
}

func (k *kcompiler) kIntrinsicReal(t *forcelang.Intrinsic) krealFn {
	switch t.Name {
	case "ABS":
		x := k.kReal(t.Args[0])
		return func(pr *cproc, fr *frame, kc *kctx) float64 { return math.Abs(x(pr, fr, kc)) }
	case "SQRT":
		x := k.kReal(t.Args[0])
		line := t.Pos()
		return func(pr *cproc, fr *frame, kc *kctx) float64 {
			v := x(pr, fr, kc)
			if v < 0 {
				panic(rtErrf(line, "SQRT of negative value %g", v))
			}
			return math.Sqrt(v)
		}
	case "REAL":
		return k.kReal(t.Args[0])
	case "MOD":
		l, r := k.kReal(t.Args[0]), k.kReal(t.Args[1])
		return func(pr *cproc, fr *frame, kc *kctx) float64 { return math.Mod(l(pr, fr, kc), r(pr, fr, kc)) }
	case "MIN", "MAX":
		args := make([]krealFn, len(t.Args))
		for i, a := range t.Args {
			args[i] = k.kReal(a)
		}
		min := t.Name == "MIN"
		return func(pr *cproc, fr *frame, kc *kctx) float64 {
			best := args[0](pr, fr, kc)
			for _, a := range args[1:] {
				x := a(pr, fr, kc)
				if (min && x < best) || (!min && x > best) {
					best = x
				}
			}
			return best
		}
	}
	panic(compileErrf("line %d: internal: %s is not a REAL intrinsic", t.Pos(), t.Name))
}

// kBool mirrors cBool.
func (k *kcompiler) kBool(e forcelang.Expr) kboolFn {
	if fn := k.hoistBool(e); fn != nil {
		return fn
	}
	switch t := e.(type) {
	case *forcelang.BoolLit:
		v := t.Value
		return func(pr *cproc, fr *frame, kc *kctx) bool { return v }
	case *forcelang.Ref:
		if len(t.Subs) == 0 {
			sym := k.lay.lookup(t.Name, t.Pos())
			switch sym.class {
			case scPrivate:
				slot := sym.slot
				return func(pr *cproc, fr *frame, kc *kctx) bool { return fr.priv[slot].b }
			case scShared:
				cell := k.c.in.scalar(sym.unit, sym.slot)
				return func(pr *cproc, fr *frame, kc *kctx) bool { return cell.loadBool() }
			}
		}
		lv := k.kRefLoad(t)
		return func(pr *cproc, fr *frame, kc *kctx) bool { return lv(pr, fr, kc).b }
	case *forcelang.Un:
		x := k.kBool(t.X)
		return func(pr *cproc, fr *frame, kc *kctx) bool { return !x(pr, fr, kc) }
	case *forcelang.Bin:
		return k.kBinBool(t)
	}
	panic(compileErrf("line %d: internal: %T is not a LOGICAL expression", e.Pos(), e))
}

func (k *kcompiler) kBinBool(t *forcelang.Bin) kboolFn {
	switch t.Op {
	case forcelang.OpAnd:
		l, r := k.kBool(t.L), k.kBool(t.R)
		return func(pr *cproc, fr *frame, kc *kctx) bool { return l(pr, fr, kc) && r(pr, fr, kc) }
	case forcelang.OpOr:
		l, r := k.kBool(t.L), k.kBool(t.R)
		return func(pr *cproc, fr *frame, kc *kctx) bool { return l(pr, fr, kc) || r(pr, fr, kc) }
	}
	lt, rt := k.c.typ(t.L, k.lay), k.c.typ(t.R, k.lay)
	if lt == forcelang.TLogical || rt == forcelang.TLogical {
		l, r := k.kBool(t.L), k.kBool(t.R)
		if t.Op == forcelang.OpNe {
			return func(pr *cproc, fr *frame, kc *kctx) bool { return l(pr, fr, kc) != r(pr, fr, kc) }
		}
		return func(pr *cproc, fr *frame, kc *kctx) bool { return l(pr, fr, kc) == r(pr, fr, kc) }
	}
	if lt == forcelang.TInt && rt == forcelang.TInt {
		l, r := k.kInt(t.L), k.kInt(t.R)
		switch t.Op {
		case forcelang.OpEq:
			return func(pr *cproc, fr *frame, kc *kctx) bool { return l(pr, fr, kc) == r(pr, fr, kc) }
		case forcelang.OpNe:
			return func(pr *cproc, fr *frame, kc *kctx) bool { return l(pr, fr, kc) != r(pr, fr, kc) }
		case forcelang.OpLt:
			return func(pr *cproc, fr *frame, kc *kctx) bool { return l(pr, fr, kc) < r(pr, fr, kc) }
		case forcelang.OpLe:
			return func(pr *cproc, fr *frame, kc *kctx) bool { return l(pr, fr, kc) <= r(pr, fr, kc) }
		case forcelang.OpGt:
			return func(pr *cproc, fr *frame, kc *kctx) bool { return l(pr, fr, kc) > r(pr, fr, kc) }
		default:
			return func(pr *cproc, fr *frame, kc *kctx) bool { return l(pr, fr, kc) >= r(pr, fr, kc) }
		}
	}
	// Same three-way-compare formulation as binBool, so all engines
	// agree on every input (NaN included).
	l, r := k.kReal(t.L), k.kReal(t.R)
	switch t.Op {
	case forcelang.OpEq:
		return func(pr *cproc, fr *frame, kc *kctx) bool {
			lv, rv := l(pr, fr, kc), r(pr, fr, kc)
			return !(lv < rv) && !(lv > rv)
		}
	case forcelang.OpNe:
		return func(pr *cproc, fr *frame, kc *kctx) bool {
			lv, rv := l(pr, fr, kc), r(pr, fr, kc)
			return lv < rv || lv > rv
		}
	case forcelang.OpLt:
		return func(pr *cproc, fr *frame, kc *kctx) bool { return l(pr, fr, kc) < r(pr, fr, kc) }
	case forcelang.OpLe:
		return func(pr *cproc, fr *frame, kc *kctx) bool { return !(l(pr, fr, kc) > r(pr, fr, kc)) }
	case forcelang.OpGt:
		return func(pr *cproc, fr *frame, kc *kctx) bool { return l(pr, fr, kc) > r(pr, fr, kc) }
	default:
		return func(pr *cproc, fr *frame, kc *kctx) bool { return !(l(pr, fr, kc) < r(pr, fr, kc)) }
	}
}
