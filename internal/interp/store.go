package interp

// Slot-addressed storage for the compiled executor.  The tree walker
// serializes every shared access behind one per-run mutex; the compiled
// executor gives each shared variable its own synchronization instead:
// scalars become atomic cells (one word suffices once the declared type
// is fixed) and arrays stripe a small set of cache-line-padded locks
// over the element space, so accesses to disjoint elements proceed in
// parallel while accesses to the same element still serialize.  Either
// way an improperly synchronized Force program remains a well-defined
// (if nondeterministic) Go program, the same guarantee the global mutex
// gave.

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/forcelang"
)

// sharedScalar is one shared scalar variable: an atomic cell holding the
// value's bit pattern in the variable's declared type (int64 bits,
// float64 bits, or 0/1 for LOGICAL).  Loads and stores are single atomic
// operations — the per-variable replacement for the tree walker's global
// shared-memory mutex.
type sharedScalar struct {
	t    forcelang.Type
	bits atomic.Uint64
}

func newSharedScalar(t forcelang.Type) *sharedScalar { return &sharedScalar{t: t} }

func (c *sharedScalar) load() value {
	b := c.bits.Load()
	switch c.t {
	case forcelang.TInt:
		return intVal(int64(b))
	case forcelang.TReal:
		return realVal(math.Float64frombits(b))
	default:
		return boolVal(b != 0)
	}
}

// store saves v, which must already be coerced to the cell's type.
func (c *sharedScalar) store(v value) {
	var b uint64
	switch c.t {
	case forcelang.TInt:
		b = uint64(v.i)
	case forcelang.TReal:
		b = math.Float64bits(v.r)
	default:
		if v.b {
			b = 1
		}
	}
	c.bits.Store(b)
}

// Typed accessors for the chunk compiler: the declared type is known at
// compile time, so loads and stores can skip the value boxing and the
// type switch.  Each is still a single atomic operation on the cell.

func (c *sharedScalar) loadInt() int64      { return int64(c.bits.Load()) }
func (c *sharedScalar) loadReal() float64   { return math.Float64frombits(c.bits.Load()) }
func (c *sharedScalar) loadBool() bool      { return c.bits.Load() != 0 }
func (c *sharedScalar) storeInt(i int64)    { c.bits.Store(uint64(i)) }
func (c *sharedScalar) storeReal(r float64) { c.bits.Store(math.Float64bits(r)) }
func (c *sharedScalar) storeBool(b bool) {
	var u uint64
	if b {
		u = 1
	}
	c.bits.Store(u)
}

// addInt atomically adds delta to an INTEGER cell.  Two's-complement
// wraparound makes the uint64 add exact for int64 deltas, so a chunk's
// privately accumulated sum folds into the cell with one atomic RMW.
func (c *sharedScalar) addInt(delta int64) { c.bits.Add(uint64(delta)) }

// The extremum folds below mirror the MAX/MIN intrinsics exactly: the
// cell is replaced only when the incoming value is *strictly* greater
// (less), the comparison MAX(S, e) performs per iteration.  For REAL
// that strictness matters: a NaN contribution never beats S (NaN
// comparisons are false), and a +0.0 never replaces a -0.0, the same
// outcomes the per-iteration intrinsic produces.

// maxInt atomically folds x into an INTEGER cell under MAX.
func (c *sharedScalar) maxInt(x int64) {
	for {
		old := c.bits.Load()
		if !(x > int64(old)) {
			return
		}
		if c.bits.CompareAndSwap(old, uint64(x)) {
			return
		}
	}
}

// minInt atomically folds x into an INTEGER cell under MIN.
func (c *sharedScalar) minInt(x int64) {
	for {
		old := c.bits.Load()
		if !(x < int64(old)) {
			return
		}
		if c.bits.CompareAndSwap(old, uint64(x)) {
			return
		}
	}
}

// maxReal atomically folds x into a REAL cell under MAX.
func (c *sharedScalar) maxReal(x float64) {
	for {
		old := c.bits.Load()
		if !(x > math.Float64frombits(old)) {
			return
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

// minReal atomically folds x into a REAL cell under MIN.
func (c *sharedScalar) minReal(x float64) {
	for {
		old := c.bits.Load()
		if !(x < math.Float64frombits(old)) {
			return
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

// stripeCount bounds the number of locks striped over one shared array.
const stripeCount = 64

// paddedMutex keeps neighbouring stripe locks on separate cache lines.
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

// sharedArray is one shared array: a flat element slice with a set of
// padded locks block-striped over the element space.  The mapping is
// contiguous-block (stripe = off >> shift), not modulo: a chunk of
// consecutive elements then falls inside at most a few stripes, so the
// chunk compiler's bulk accessor can hold one stripe across many
// elements instead of locking per element.  Accesses to different
// elements usually take different stripes and run in parallel; accesses
// to the same element always meet on the same stripe.
type sharedArray struct {
	dims  []int
	data  []value
	locks []paddedMutex
	// shift maps a flat offset to its stripe: stripe = off >> shift.
	// Block size is the power of two 1<<shift, chosen as the smallest
	// that covers the element space with at most stripeCount stripes.
	shift uint
}

func newSharedArray(d forcelang.Decl) *sharedArray {
	n := d.Size()
	var shift uint
	for (n+(1<<shift)-1)>>shift > stripeCount {
		shift++
	}
	stripes := (n + (1 << shift) - 1) >> shift
	if stripes < 1 {
		stripes = 1
	}
	a := &sharedArray{
		dims:  d.Dims,
		data:  make([]value, n),
		locks: make([]paddedMutex, stripes),
		shift: shift,
	}
	zero := value{t: d.Type}
	for i := range a.data {
		a.data[i] = zero
	}
	return a
}

func (a *sharedArray) shape() []int { return a.dims }

func (a *sharedArray) load(off int) value {
	mu := &a.locks[off>>a.shift].Mutex
	mu.Lock()
	v := a.data[off]
	mu.Unlock()
	return v
}

func (a *sharedArray) store(off int, v value) {
	mu := &a.locks[off>>a.shift].Mutex
	mu.Lock()
	a.data[off] = v
	mu.Unlock()
}

// stripeWalker is the bulk entry point into the striped store for the
// chunk compiler: it keeps at most ONE stripe lock held — across all
// shared arrays a chunk touches — and re-acquires only when an access
// lands on a different (array, stripe) pair.  A chunk walking an array
// in index order therefore pays one lock/unlock per stripe-sized block
// instead of one per element, while same-element accesses from the
// per-element paths of other processes still meet on the element's
// stripe lock, keeping racy programs well-defined.
//
// Holding a single stripe at a time makes deadlock impossible by
// construction: the walker never blocks while holding a second lock,
// and the per-element paths never block while holding any.  release is
// idempotent and MUST run before the owning process can block elsewhere
// (scheduler Next, barriers) or unwind on poison — the chunk driver
// defers it.
type stripeWalker struct {
	arr    *sharedArray
	stripe int
}

// ensure makes a's stripe for off the held one, releasing any other.
func (w *stripeWalker) ensure(a *sharedArray, off int) {
	s := off >> a.shift
	if w.arr == a && w.stripe == s {
		return
	}
	if w.arr != nil {
		w.arr.locks[w.stripe].Unlock()
	}
	a.locks[s].Lock()
	w.arr, w.stripe = a, s
}

// loadAt reads a.data[off] under the element's stripe lock.
func (w *stripeWalker) loadAt(a *sharedArray, off int) value {
	w.ensure(a, off)
	return a.data[off]
}

// storeAt writes a.data[off] under the element's stripe lock.
func (w *stripeWalker) storeAt(a *sharedArray, off int, v value) {
	w.ensure(a, off)
	a.data[off] = v
}

// release drops the held stripe, if any.  Idempotent.
func (w *stripeWalker) release() {
	if w.arr != nil {
		w.arr.locks[w.stripe].Unlock()
		w.arr = nil
	}
}

// privArray is a private array: per-process (or per-call) storage, no
// synchronization needed.
type privArray struct {
	dims []int
	data []value
}

func newPrivArray(d forcelang.Decl) *privArray {
	a := &privArray{dims: d.Dims, data: make([]value, d.Size())}
	zero := value{t: d.Type}
	for i := range a.data {
		a.data[i] = zero
	}
	return a
}

func (a *privArray) shape() []int           { return a.dims }
func (a *privArray) load(off int) value     { return a.data[off] }
func (a *privArray) store(off int, v value) { a.data[off] = v }

// scalarRef abstracts one scalar storage location for by-reference
// parameter binding: the callee stores through the interface without
// knowing whether the argument was a shared cell, a caller-private slot
// or an array element.  Stored values must already be coerced to the
// variable's declared type.
type scalarRef interface {
	load() value
	store(v value)
}

// privPtr aliases a private scalar slot (a parameter bound to
// caller-private storage); only the binding process touches it.
type privPtr struct{ p *value }

func (r privPtr) load() value   { return *r.p }
func (r privPtr) store(v value) { *r.p = v }

// arrayRef abstracts whole-array parameter bindings the same way.
type arrayRef interface {
	shape() []int
	load(off int) value
	store(off int, v value)
}

// elemRef aliases one array element (an element argument at a call
// site); shared-array elements keep their stripe discipline through it.
type elemRef struct {
	a   arrayRef
	off int
}

func (r elemRef) load() value   { return r.a.load(r.off) }
func (r elemRef) store(v value) { r.a.store(r.off, v) }

// flatOffset converts 1-based subscripts to a flat row-major offset,
// bounds-checking every dimension.
func flatOffset(dims []int, subs []int64, name string, line int) int {
	if len(subs) != len(dims) {
		panic(rtErrf(line, "%s: %d subscripts for %d dims", name, len(subs), len(dims)))
	}
	off := 0
	for k, s := range subs {
		if s < 1 || s > int64(dims[k]) {
			panic(rtErrf(line, "subscript %d of %s out of range: %d not in [1,%d]", k+1, name, s, dims[k]))
		}
		off = off*dims[k] + int(s-1)
	}
	return off
}
