package interp

// Resolution pass: bind every name of the checked program to a (storage
// class, slot) pair before execution, so the compiled executor addresses
// index-addressed frames and per-variable shared cells instead of
// resolving strings through maps on every access.
//
// The checker already recorded each declaration's owning unit and
// per-class slot (forcelang.Decl.Unit/.Slot); this pass turns those into
// per-unit layouts — which names are visible in a unit, where each one
// lives, and what a frame of the unit must allocate — plus the
// instance-wide allocation plan for shared scalars, shared arrays and
// asynchronous variables.

import (
	"fmt"

	"repro/internal/forcelang"
	"repro/internal/shm"
)

// storageClass classifies where a resolved variable lives.
type storageClass int

const (
	// scPrivate is a per-process (or per-call) scalar slot in the frame.
	scPrivate storageClass = iota
	// scPrivArray is a per-process (or per-call) array slot in the frame.
	scPrivArray
	// scShared is an instance-wide atomic scalar cell.
	scShared
	// scSharedArray is an instance-wide lock-striped array.
	scSharedArray
	// scAsync is an instance-wide full/empty cell (or array of cells).
	scAsync
	// scParam is a by-reference alias bound at call time.
	scParam
)

// symbol is one resolved name: its storage class, the owning unit and
// slot (for instance-wide classes, or the positional index for scParam),
// and the declaration carrying type and shape.
type symbol struct {
	class storageClass
	unit  string
	slot  int
	decl  forcelang.Decl
}

// unitLayout is the resolved layout of one unit (the main program or a
// subroutine): the name→symbol bindings, the checker scope the compiler
// types expressions against, and the frame shape — how many private
// scalar slots and which private arrays a frame of this unit carries.
type unitLayout struct {
	name  string
	sub   *forcelang.Subroutine // nil for the main program
	scope *forcelang.Scope
	syms  map[string]symbol

	// privInit is the typed-zero template of the private scalar slots;
	// slot 0 is the implicit ident (ME) variable.
	privInit []value
	// privArrs holds the private array declarations in slot order; an
	// empty Name marks a hole (a parameter's declaration, which aliases
	// caller storage and allocates nothing).
	privArrs []forcelang.Decl
	// params holds the parameter symbols in positional order.
	params []symbol
}

// unitAlloc is the storage one unit owns instance-wide, slot-indexed;
// entries with an empty Name are holes (parameter declarations).
type unitAlloc struct {
	scalars []forcelang.Decl
	arrays  []forcelang.Decl
	asyncs  []forcelang.Decl
}

// resolution is the whole program resolved.
type resolution struct {
	prog   *forcelang.Program
	units  map[string]*unitLayout
	allocs map[string]*unitAlloc
}

// resolveProgram resolves a checked program.  Resolution errors indicate
// an unchecked or internally inconsistent program.
func resolveProgram(prog *forcelang.Program) (*resolution, error) {
	r := &resolution{
		prog:   prog,
		units:  map[string]*unitLayout{},
		allocs: map[string]*unitAlloc{},
	}
	g, err := forcelang.GlobalScope(prog)
	if err != nil {
		return nil, fmt.Errorf("interp: resolving main program: %w", err)
	}
	if err := r.addUnit("", nil, g); err != nil {
		return nil, err
	}
	for _, sub := range prog.Subs {
		sc, err := forcelang.SubScope(prog, sub)
		if err != nil {
			return nil, fmt.Errorf("interp: resolving %s: %w", sub.Name, err)
		}
		if err := r.addUnit(sub.Name, sub, sc); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// put grows list to cover slot and records d there.
func put(list []forcelang.Decl, slot int, d forcelang.Decl) []forcelang.Decl {
	for len(list) <= slot {
		list = append(list, forcelang.Decl{})
	}
	list[slot] = d
	return list
}

func (r *resolution) addUnit(name string, sub *forcelang.Subroutine, scope *forcelang.Scope) error {
	lay := &unitLayout{name: name, sub: sub, scope: scope, syms: map[string]symbol{}}
	alloc := &unitAlloc{}
	paramPos := map[string]int{}
	if sub != nil {
		lay.params = make([]symbol, len(sub.Params))
		for i, p := range sub.Params {
			paramPos[p] = i
		}
	}
	// ME is private scalar slot 0 of every unit.
	lay.privInit = []value{{t: forcelang.TInt}}
	for _, d := range scope.Decls() {
		var sym symbol
		isParam := false
		if i, ok := paramPos[d.Name]; ok {
			sym = symbol{class: scParam, slot: i, decl: d}
			lay.params[i] = sym
			isParam = true
		} else {
			switch {
			case d.Class == shm.Async:
				sym = symbol{class: scAsync, unit: d.Unit, slot: d.Slot, decl: d}
			case d.Class == shm.Shared && len(d.Dims) > 0:
				sym = symbol{class: scSharedArray, unit: d.Unit, slot: d.Slot, decl: d}
			case d.Class == shm.Shared:
				sym = symbol{class: scShared, unit: d.Unit, slot: d.Slot, decl: d}
			case len(d.Dims) > 0:
				sym = symbol{class: scPrivArray, unit: d.Unit, slot: d.Slot, decl: d}
			default:
				sym = symbol{class: scPrivate, unit: d.Unit, slot: d.Slot, decl: d}
			}
		}
		lay.syms[d.Name] = sym

		// Frame shape: every private slot the checker numbered must be
		// covered, parameter declarations as holes (they alias caller
		// storage and allocate nothing).
		if d.Unit == name && d.Class == shm.Private {
			if len(d.Dims) > 0 {
				hole := d
				if isParam {
					hole = forcelang.Decl{}
				}
				lay.privArrs = put(lay.privArrs, d.Slot, hole)
			} else {
				for len(lay.privInit) <= d.Slot {
					lay.privInit = append(lay.privInit, value{})
				}
				lay.privInit[d.Slot] = value{t: d.Type}
			}
		}
		// Instance-wide allocation plan: record only declarations this
		// unit owns (inherited COMMON-like decls belong to the main unit).
		if d.Unit == name && !isParam {
			switch {
			case d.Class == shm.Async:
				alloc.asyncs = put(alloc.asyncs, d.Slot, d)
			case d.Class == shm.Shared && len(d.Dims) > 0:
				alloc.arrays = put(alloc.arrays, d.Slot, d)
			case d.Class == shm.Shared:
				alloc.scalars = put(alloc.scalars, d.Slot, d)
			}
		}
	}
	// NP and ME are bound last, shadowing same-named declarations —
	// matching the tree walker, which installs them after the unit's
	// declarations when it builds a frame.
	npName := r.prog.NPVar
	meName := r.prog.MeVar
	lay.syms[npName] = symbol{
		class: scShared, unit: "", slot: 0,
		decl: forcelang.Decl{Class: shm.Shared, Type: forcelang.TInt, Name: npName, Unit: "", Slot: 0},
	}
	lay.syms[meName] = symbol{
		class: scPrivate, unit: name, slot: 0,
		decl: forcelang.Decl{Class: shm.Private, Type: forcelang.TInt, Name: meName, Unit: name, Slot: 0},
	}
	if sub != nil {
		for i, p := range sub.Params {
			if lay.params[i].decl.Name == "" {
				return fmt.Errorf("interp: resolving %s: parameter %s has no declaration", name, p)
			}
		}
	}
	r.units[name] = lay
	r.allocs[name] = alloc
	return nil
}

// lookup resolves a name in a unit layout.
func (lay *unitLayout) lookup(name string, line int) symbol {
	sym, ok := lay.syms[name]
	if !ok {
		panic(rtErrf(line, "undefined variable %s", name))
	}
	return sym
}
