package interp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/forcelang"
	"repro/internal/sched"
)

// treeSrc expands a binary tree of depth 5 through the language-level
// Askfor; every node bumps a shared counter in a critical section, so the
// printed count proves exactly-once execution and termination.
const treeSrc = `Force TREE of NP ident ME
Shared Integer COUNT
Private Integer WORK
End Declarations
      Barrier
        COUNT = 0
      End Barrier
      Askfor WORK = 1
        Critical C
          COUNT = COUNT + 1
        End Critical
        IF (WORK .LT. 5) THEN
          Put WORK + 1
          Put WORK + 1
        End IF
      End Askfor
      Barrier
        Print 'nodes =', COUNT
      End Barrier
Join
`

// TestAskforTreeOnEveryDistribution runs the language-level Askfor on
// both engine pool disciplines, crossed with both selfsched loop
// disciplines, over several force sizes.
func TestAskforTreeOnEveryDistribution(t *testing.T) {
	prog := forcelang.MustParse(treeSrc)
	for _, pool := range engine.PoolKinds() {
		for _, selfsched := range []sched.Kind{sched.SelfLock, sched.Stealing} {
			for _, np := range []int{1, 4, 7} {
				name := fmt.Sprintf("%s/%s/np=%d", pool, selfsched, np)
				t.Run(name, func(t *testing.T) {
					var sb strings.Builder
					err := Run(prog, Config{NP: np, Stdout: &sb, Askfor: pool, Selfsched: selfsched})
					if err != nil {
						t.Fatal(err)
					}
					if got := strings.TrimSpace(sb.String()); got != "nodes = 31" {
						t.Errorf("out = %q, want \"nodes = 31\" (2^5-1 tree nodes)", got)
					}
				})
			}
		}
	}
}

// TestSelfschedStealingLoops runs an ordinary selfscheduled program on
// the stealing discipline and checks the numeric result is unchanged.
func TestSelfschedStealingLoops(t *testing.T) {
	src := `Force S of NP ident ME
Shared Integer TOTAL
Private Integer I
End Declarations
      Barrier
        TOTAL = 0
      End Barrier
      Selfsched DO I = 1, 100
        Critical L
          TOTAL = TOTAL + I
        End Critical
      End Selfsched DO
      Barrier
        Print 'total =', TOTAL
      End Barrier
Join
`
	prog := forcelang.MustParse(src)
	var sb strings.Builder
	if err := Run(prog, Config{NP: 6, Stdout: &sb, Selfsched: sched.Stealing}); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "total = 5050" {
		t.Errorf("out = %q, want \"total = 5050\"", got)
	}
}
