package aot

// build.go — cold-path compilation: emit Go via internal/codegen into a
// throwaway dot-prefixed package directory under the module root (dot
// directories are invisible to `go build ./...` / `go test ./...`
// enumeration, so scratch dirs never pollute tier-1 builds), build it
// with the toolchain, and publish the binary into the cache entry with
// an atomic rename so readers only ever see complete binaries.  The
// metadata (with the binary's size, the truncation sentinel) is written
// last: a crash at any point leaves an entry that classifies stale, not
// one that executes a half-written binary.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/codegen"
	"repro/internal/forcelang"
)

// EnvModuleRoot overrides module-root discovery — useful when the
// process runs outside the repository checkout.
const EnvModuleRoot = "FORCE_MODULE_ROOT"

// moduleRoot finds the repository's module root (the directory holding
// `module repro`'s go.mod): $FORCE_MODULE_ROOT if set, else walking up
// from the working directory.
func moduleRoot() (string, error) {
	if r := os.Getenv(EnvModuleRoot); r != "" {
		return r, nil
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil && strings.Contains(string(data), "module repro") {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no repro go.mod above %s (set %s)", dir, EnvModuleRoot)
		}
		dir = parent
	}
}

// build generates, compiles and publishes the entry for key.  The
// caller holds the build lock.  ctx bounds the toolchain invocation: a
// canceled build kills the `go build` subprocess and reports ctx's
// error; the half-built scratch state is torn down as usual and the
// entry classifies stale/missing for the next builder.
func (c *Cache) build(ctx context.Context, key string, prog *forcelang.Program, opts Options) (*Entry, error) {
	if _, err := exec.LookPath("go"); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoToolchain, err)
	}
	opts = normalizeOpts(opts)
	src, err := codegen.Generate(prog, codegen.Options{
		Package:   "main",
		Selfsched: opts.Selfsched,
		Reduce:    opts.Reduce,
		Chunk:     opts.Chunk,
		Barrier:   opts.Barrier,
		Askfor:    opts.Askfor,
	})
	if err != nil {
		return nil, fmt.Errorf("aot: generate: %w", err)
	}
	root, err := moduleRoot()
	if err != nil {
		return nil, fmt.Errorf("aot: %w", err)
	}
	dir := c.entryDir(key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("aot: %w", err)
	}
	// Keep the generated source beside the binary for inspection.
	if err := os.WriteFile(filepath.Join(dir, "main.go"), src, 0o644); err != nil {
		return nil, fmt.Errorf("aot: %w", err)
	}
	// The generated code imports repro/internal/*, so it must compile as
	// a package inside the module.
	scratch, err := os.MkdirTemp(root, ".force-aot-")
	if err != nil {
		return nil, fmt.Errorf("aot: %w", err)
	}
	defer os.RemoveAll(scratch)
	if err := os.WriteFile(filepath.Join(scratch, "main.go"), src, 0o644); err != nil {
		return nil, fmt.Errorf("aot: %w", err)
	}
	start := time.Now()
	binTmp := filepath.Join(dir, "force.bin.tmp")
	cmd := exec.CommandContext(ctx, "go", "build", "-o", binTmp, "./"+filepath.Base(scratch))
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("aot: go build canceled: %w", ctxErr)
		}
		return nil, fmt.Errorf("aot: go build: %w\n%s", err, out)
	}
	buildTime := time.Since(start)
	bin := filepath.Join(dir, "force.bin")
	if err := os.Rename(binTmp, bin); err != nil {
		return nil, fmt.Errorf("aot: %w", err)
	}
	st, err := os.Stat(bin)
	if err != nil {
		return nil, fmt.Errorf("aot: %w", err)
	}
	meta := Meta{
		Program: prog.Name,
		Key:     key,
		Options: map[string]string{
			"selfsched": opts.Selfsched.String(),
			"reduce":    opts.Reduce.String(),
			"barrier":   opts.Barrier.String(),
			"askfor":    opts.Askfor.String(),
			"chunk":     fmt.Sprintf("%d", opts.Chunk),
		},
		BinSize:     st.Size(),
		BuiltAt:     time.Now().UTC().Format(time.RFC3339),
		BuildMillis: buildTime.Milliseconds(),
	}
	mj, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("aot: %w", err)
	}
	metaTmp := filepath.Join(dir, "meta.json.tmp")
	if err := os.WriteFile(metaTmp, mj, 0o644); err != nil {
		return nil, fmt.Errorf("aot: %w", err)
	}
	if err := os.Rename(metaTmp, filepath.Join(dir, "meta.json")); err != nil {
		return nil, fmt.Errorf("aot: %w", err)
	}
	return &Entry{Key: key, Dir: dir, Bin: bin, Meta: meta}, nil
}
