//go:build !unix

package aot

// lockFile on platforms without flock degrades to the in-process mutex
// alone: concurrent builds from separate processes may duplicate work
// but remain correct, since the binary is published by atomic rename.
func lockFile(path string) (func(), error) {
	return func() {}, nil
}
