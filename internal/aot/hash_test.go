package aot

import (
	"testing"

	"repro/internal/barrier"
	"repro/internal/engine"
	"repro/internal/forcelang"
	"repro/internal/reduce"
	"repro/internal/sched"
)

const hashBase = `Force H of NP ident ME
Shared Integer S
Shared Real A(8)
Private Integer I
End Declarations
Presched DO I = 1, 8
  A(I) = REAL(I)
End Presched DO
Barrier
  S = 1
End Barrier
Join
`

// TestKeyInsensitiveToLayout: whitespace, comments, blank lines and
// declaration order are not semantics — programs differing only in them
// must share one cache entry.
func TestKeyInsensitiveToLayout(t *testing.T) {
	reformatted := `Force H of NP ident ME
! layout-only differences: comments, blank lines, decl order

Private Integer I
Shared Real A(8)
Shared Integer S
End Declarations

Presched DO I = 1, 8
  A(I) = REAL(I)   ! fill
End Presched DO

Barrier
  S = 1
End Barrier
Join
`
	a := Key(forcelang.MustParse(hashBase), Options{})
	b := Key(forcelang.MustParse(reformatted), Options{})
	if a != b {
		t.Errorf("layout-only variant changed the key:\n%s\n%s", a, b)
	}
}

// TestKeySensitiveToSemantics: a changed literal, bound, or statement
// must fork the key.
func TestKeySensitiveToSemantics(t *testing.T) {
	base := Key(forcelang.MustParse(hashBase), Options{})
	variants := map[string]string{
		"literal": `Force H of NP ident ME
Shared Integer S
Shared Real A(8)
Private Integer I
End Declarations
Presched DO I = 1, 8
  A(I) = REAL(I)
End Presched DO
Barrier
  S = 2
End Barrier
Join
`,
		"bound": `Force H of NP ident ME
Shared Integer S
Shared Real A(8)
Private Integer I
End Declarations
Presched DO I = 1, 7
  A(I) = REAL(I)
End Presched DO
Barrier
  S = 1
End Barrier
Join
`,
		"sched": `Force H of NP ident ME
Shared Integer S
Shared Real A(8)
Private Integer I
End Declarations
Selfsched DO I = 1, 8
  A(I) = REAL(I)
End Selfsched DO
Barrier
  S = 1
End Barrier
Join
`,
		"dim": `Force H of NP ident ME
Shared Integer S
Shared Real A(9)
Private Integer I
End Declarations
Presched DO I = 1, 8
  A(I) = REAL(I)
End Presched DO
Barrier
  S = 1
End Barrier
Join
`,
	}
	for name, src := range variants {
		if got := Key(forcelang.MustParse(src), Options{}); got == base {
			t.Errorf("%s change did not change the key", name)
		}
	}
}

// TestKeySensitiveToOptions: every semantics-affecting option forks the
// key; defaults and their explicit spellings do not.
func TestKeySensitiveToOptions(t *testing.T) {
	prog := forcelang.MustParse(hashBase)
	base := Key(prog, Options{})

	if got := Key(prog, Options{Selfsched: sched.SelfLock, Reduce: reduce.PrivateSlots,
		Barrier: barrier.TwoLock, Askfor: engine.StealingPool}); got != base {
		t.Error("explicit defaults changed the key")
	}
	diff := map[string]Options{
		"barrier":   {Barrier: barrier.Dissemination},
		"reduce":    {Reduce: reduce.Critical},
		"selfsched": {Selfsched: sched.Stealing},
		"askfor":    {Askfor: engine.MonitorPool},
		"chunk":     {Chunk: 64},
	}
	for name, opts := range diff {
		if got := Key(prog, opts); got == base {
			t.Errorf("option %s did not change the key", name)
		}
	}
}
