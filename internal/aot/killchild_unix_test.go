//go:build unix

package aot

import (
	"context"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/forcelang"
)

// TestChildKilledOutFromUnder is the ISSUE's kill -9 test: SIGKILL the
// running child out from under the parent.  The parent must report the
// failure (not hang, not claim success), and the cache entry must stay
// valid — an external kill says nothing about the binary.
func TestChildKilledOutFromUnder(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	c := openTestCache(t)
	prog := forcelang.MustParse(stallSrc)
	entry, err := c.Ensure(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan int, 1)
	testChildStarted = func(pid int) { started <- pid }
	defer func() { testChildStarted = nil }()

	errc := make(chan error, 1)
	go func() {
		var sb strings.Builder
		errc <- entry.RunContext(context.Background(), 4, &sb)
	}()
	pid := <-started
	time.Sleep(100 * time.Millisecond) // let the child get going
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatalf("kill -9 %d: %v", pid, err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("parent reported success for a kill -9'd child")
		}
		if strings.HasPrefix(err.Error(), "force runtime") {
			t.Errorf("external kill misreported as a program error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parent did not reap the killed child")
	}
	if _, ok := c.Cached(prog, Options{}); !ok {
		t.Error("kill -9 invalidated the cache entry")
	}
}
