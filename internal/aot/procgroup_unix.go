//go:build unix

package aot

import (
	"os/exec"
	"syscall"
)

// setProcGroup places the child in its own process group, so a
// cancellation can kill the child AND anything the child spawned: a
// plain Process.Kill reaps only the direct child and abandons its
// descendants — exactly the orphan leak Entry.RunContext exists to
// prevent.
func setProcGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killProcGroup SIGKILLs the child's whole process group (pid is the
// group leader because of setProcGroup).  Errors are ignored: the group
// may already be gone, and the caller's cmd.Wait reaps the leader either
// way.
func killProcGroup(pid int) {
	_ = syscall.Kill(-pid, syscall.SIGKILL)
}
