//go:build unix

package aot

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive flock on path (creating it if needed) and
// returns the release function.  This is the cross-process half of the
// single-flight build: every builder of a key locks <entry>/lock, so
// concurrent forcerun invocations of one cold program produce one
// `go build`, not a pile-up.
func lockFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
