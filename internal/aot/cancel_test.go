package aot

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/forcelang"
)

// stallSrc is a non-conformant program whose generated binary blocks
// forever (only process 0 reaches the barrier): the subject every
// kill/deadline test needs.
const stallSrc = `Force STALL of NP ident ME
End Declarations
IF (ME .EQ. 0) THEN
Barrier
End Barrier
END IF
Join
`

// TestEnsureContextPreCanceled: a context dead on arrival aborts the
// cold path before any toolchain work, leaving no entry behind.
func TestEnsureContextPreCanceled(t *testing.T) {
	c := openTestCache(t)
	prog := forcelang.MustParse(stallSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.EnsureContext(ctx, prog, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("EnsureContext = %v, want context.Canceled", err)
	}
	if _, ok := c.Cached(prog, Options{}); ok {
		t.Error("canceled EnsureContext left a cache entry")
	}
}

// TestRunContextDeadlineKillsChild is the cancellation contract of the
// native tier in one test: a stalled child is killed (whole process
// group) at the deadline, reaped promptly, the context's error is
// relayed, and the cache entry survives the killed run untouched —
// then a cancel (not just a deadline) is checked against the same
// entry, proving the binary stays runnable.
func TestRunContextDeadlineKillsChild(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	c := openTestCache(t)
	prog := forcelang.MustParse(stallSrc)
	entry, err := c.Ensure(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		defer cancel()
		start := time.Now()
		var sb strings.Builder
		err := entry.RunContext(ctx, 4, &sb)
		elapsed := time.Since(start)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("RunContext = %v, want context.DeadlineExceeded", err)
		}
		// Kill + reap must be prompt: the deadline plus SIGKILL delivery,
		// not a Wait that lingers on an orphan.
		if elapsed > 10*time.Second {
			t.Errorf("killed run returned after %v, want prompt reap", elapsed)
		}
		if _, ok := c.Cached(prog, Options{}); !ok {
			t.Error("deadline-killed run invalidated the cache entry")
		}
	})

	t.Run("cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() {
			var sb strings.Builder
			errc <- entry.RunContext(ctx, 4, &sb)
		}()
		time.Sleep(200 * time.Millisecond) // let the child start and stall
		cancel()
		select {
		case err := <-errc:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext = %v, want context.Canceled", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("cancel did not kill the stalled child")
		}
		if _, ok := c.Cached(prog, Options{}); !ok {
			t.Error("canceled run invalidated the cache entry")
		}
	})

	// The stall-shaped Run(timeout) wrapper keeps its watchdog message.
	t.Run("run-timeout-message", func(t *testing.T) {
		var sb strings.Builder
		err := entry.Run(4, &sb, 500*time.Millisecond)
		if err == nil || !strings.Contains(err.Error(), "force stalled") {
			t.Fatalf("Run(timeout) = %v, want a force stalled message", err)
		}
	})
}

// TestEnsureContextDeadlineDuringBuild: a deadline expiring inside `go
// build` kills the toolchain invocation, reports the context's error,
// and leaves an entry that the next (unbounded) Ensure rebuilds.
func TestEnsureContextDeadlineDuringBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	c := openTestCache(t)
	prog := forcelang.MustParse(stallSrc)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.EnsureContext(ctx, prog, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EnsureContext = %v, want context.DeadlineExceeded", err)
	}
	if _, ok := c.Cached(prog, Options{}); ok {
		t.Error("killed build left a fresh-looking entry")
	}
	if _, err := c.Ensure(prog, Options{}); err != nil {
		t.Fatalf("rebuild after killed build: %v", err)
	}
}
