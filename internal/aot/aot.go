// Package aot is the ahead-of-time native tier: it hashes a checked
// Force AST together with the semantics-affecting configuration, emits
// Go through internal/codegen into a content-addressed cache directory,
// builds it once with the ordinary Go toolchain, and hands repeat
// traffic a cached native binary.  This is the tier-promotion shape of
// JIT/AOT hybrid runtimes applied to the paper's portability thesis:
// one Force source, interpreted while cold, native once hot.
//
// Cache layout ($FORCE_CACHE or ~/.cache/force):
//
//	<key>/main.go    the generated Go source (for inspection/debugging)
//	<key>/force.bin  the built binary (runs with -np N)
//	<key>/meta.json  program name, options, binary size (staleness check)
//	<key>/runs       one byte per interpreted run (the auto-tier counter)
//	<key>/lock       cross-process build lock (flock)
//
// The key is np-independent — np is a runtime flag of the generated
// binary — so one cache entry serves every force size.  Builds are
// single-flight within a process (per-key mutex) and across processes
// (flock), and a truncated or missing binary is classified stale and
// rebuilt rather than executed.
package aot

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/barrier"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/forcelang"
	"repro/internal/reduce"
	"repro/internal/sched"
)

// EnvCacheDir names the environment variable overriding the cache
// directory.
const EnvCacheDir = "FORCE_CACHE"

// ErrNoToolchain reports that the Go toolchain is unavailable; callers
// fall back to the interpreter.
var ErrNoToolchain = errors.New("aot: go toolchain not found")

// Options is the semantics-affecting configuration baked into a cache
// key and into the generated binary.  NP is deliberately absent: the
// binary takes -np at run time.
type Options struct {
	Selfsched sched.Kind
	Reduce    reduce.Kind
	Barrier   barrier.Kind
	Askfor    engine.PoolKind
	Chunk     int
}

// Stats is a snapshot of the cache's accounting.
type Stats struct {
	Hits      int64         // lookups that found a fresh entry
	Misses    int64         // lookups with no entry at all
	Stale     int64         // lookups that found a corrupt/truncated entry
	Builds    int64         // go build invocations actually run
	BuildTime time.Duration // total wall time spent in go build
}

func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d stale=%d builds=%d build_time=%s",
		s.Hits, s.Misses, s.Stale, s.Builds, s.BuildTime.Round(time.Millisecond))
}

// Cache is a content-addressed store of compiled Force programs.
type Cache struct {
	dir string

	mu     sync.Mutex
	flight map[string]*sync.Mutex

	hits, misses, stale, builds atomic.Int64
	buildNanos                  atomic.Int64
}

// Open opens (creating if needed) the cache at dir; an empty dir means
// $FORCE_CACHE, then ~/.cache/force.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		dir = os.Getenv(EnvCacheDir)
	}
	if dir == "" {
		home, err := os.UserHomeDir()
		if err != nil {
			return nil, fmt.Errorf("aot: no cache dir: %w (set %s)", err, EnvCacheDir)
		}
		dir = filepath.Join(home, ".cache", "force")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("aot: %w", err)
	}
	return &Cache{dir: dir, flight: map[string]*sync.Mutex{}}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the cache's accounting.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stale:     c.stale.Load(),
		Builds:    c.builds.Load(),
		BuildTime: time.Duration(c.buildNanos.Load()),
	}
}

// Meta is the per-entry metadata persisted as meta.json.
type Meta struct {
	Program     string            `json:"program"`
	Key         string            `json:"key"`
	Options     map[string]string `json:"options"`
	BinSize     int64             `json:"bin_size"`
	BuiltAt     string            `json:"built_at"`
	BuildMillis int64             `json:"build_millis"`
}

// Entry is one cached compiled program.
type Entry struct {
	Key  string
	Dir  string
	Bin  string
	Meta Meta
}

func (c *Cache) entryDir(key string) string { return filepath.Join(c.dir, key) }

type lookupState int

const (
	lookupMiss lookupState = iota
	lookupHit
	lookupStale
)

// lookup classifies the entry for key without touching the counters:
// hit (meta and binary present and consistent), miss (neither present),
// or stale (present but corrupt — unparsable meta, missing binary, or a
// binary whose size disagrees with meta, i.e. truncated mid-write).
func (c *Cache) lookup(key string) (*Entry, lookupState) {
	dir := c.entryDir(key)
	bin := filepath.Join(dir, "force.bin")
	metaBytes, metaErr := os.ReadFile(filepath.Join(dir, "meta.json"))
	st, binErr := os.Stat(bin)
	if metaErr != nil && binErr != nil {
		return nil, lookupMiss
	}
	if metaErr != nil || binErr != nil {
		return nil, lookupStale
	}
	var m Meta
	if err := json.Unmarshal(metaBytes, &m); err != nil || m.BinSize != st.Size() {
		return nil, lookupStale
	}
	return &Entry{Key: key, Dir: dir, Bin: bin, Meta: m}, lookupHit
}

// lookupCounted is lookup plus hit/miss/stale accounting.
func (c *Cache) lookupCounted(key string) (*Entry, lookupState) {
	e, st := c.lookup(key)
	switch st {
	case lookupHit:
		c.hits.Add(1)
	case lookupMiss:
		c.misses.Add(1)
	default:
		c.stale.Add(1)
	}
	return e, st
}

// Cached reports whether a fresh entry exists for prog+opts, counting
// the lookup, without building anything.
func (c *Cache) Cached(prog *forcelang.Program, opts Options) (*Entry, bool) {
	e, st := c.lookupCounted(Key(prog, opts))
	return e, st == lookupHit
}

// Ensure returns a fresh entry for prog+opts, building it if absent or
// stale.  Builds are single-flight: concurrent Ensure calls for the
// same key (in this process or another) wait for one build.
func (c *Cache) Ensure(prog *forcelang.Program, opts Options) (*Entry, error) {
	return c.EnsureContext(context.Background(), prog, opts)
}

// EnsureContext is Ensure under an external cancellation context: the
// `go build` cold path is bounded by ctx (a canceled build kills the
// toolchain invocation and returns ctx's error; the entry stays absent
// and the next Ensure rebuilds).  A warm lookup never blocks, so ctx is
// only consulted on the cold path.
func (c *Cache) EnsureContext(ctx context.Context, prog *forcelang.Program, opts Options) (*Entry, error) {
	key := Key(prog, opts)
	if e, st := c.lookupCounted(key); st == lookupHit {
		return e, nil
	}
	if err := faultinject.FireErr(faultinject.AOTBuild, nil); err != nil {
		return nil, fmt.Errorf("aot: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	unlock, err := c.lockKey(key)
	if err != nil {
		return nil, err
	}
	defer unlock()
	// A peer may have published the entry while we waited on the lock.
	if e, st := c.lookup(key); st == lookupHit {
		return e, nil
	}
	start := time.Now()
	e, err := c.build(ctx, key, prog, opts)
	if err != nil {
		return nil, err
	}
	d := time.Since(start)
	c.builds.Add(1)
	c.buildNanos.Add(int64(d))
	return e, nil
}

// lockKey serializes builders of key: a per-key mutex within the
// process, an flock on <entry>/lock across processes.
func (c *Cache) lockKey(key string) (func(), error) {
	c.mu.Lock()
	m, ok := c.flight[key]
	if !ok {
		m = &sync.Mutex{}
		c.flight[key] = m
	}
	c.mu.Unlock()
	m.Lock()
	dir := c.entryDir(key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		m.Unlock()
		return nil, fmt.Errorf("aot: %w", err)
	}
	funlock, err := lockFile(filepath.Join(dir, "lock"))
	if err != nil {
		m.Unlock()
		return nil, fmt.Errorf("aot: build lock: %w", err)
	}
	return func() {
		funlock()
		m.Unlock()
	}, nil
}

// RecordInterpreted bumps the interpreted-run counter for prog+opts and
// returns the new count — the auto tier's promotion heat.  The counter
// is one byte per run in <entry>/runs, so concurrent appenders (O_APPEND)
// never lose a count.
func (c *Cache) RecordInterpreted(prog *forcelang.Program, opts Options) (int, error) {
	dir := c.entryDir(Key(prog, opts))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("aot: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "runs"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("aot: %w", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte{'.'}); err != nil {
		return 0, fmt.Errorf("aot: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("aot: %w", err)
	}
	return int(st.Size()), nil
}

// Run executes the cached binary at np with an optional wall-clock
// timeout (zero means no deadline), streaming program output to stdout.
// It delegates to RunContext; the stall-shaped timeout keeps its
// historical watchdog message so forcerun's -hang-timeout reports read
// the same across tiers.
func (e *Entry) Run(np int, stdout io.Writer, timeout time.Duration) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	err := e.RunContext(ctx, np, stdout)
	if timeout > 0 && errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("force stalled: aot binary produced no result after %v", timeout)
	}
	return err
}

// testChildStarted, when non-nil, receives the child's pid right after
// the exec starts — the robustness tests' hook for killing the child
// out from under the parent.
var testChildStarted func(pid int)

// RunContext executes the cached binary at np under an external
// cancellation context, streaming program output to stdout.
//
// A generated-driver runtime failure (exit 1 with the interpreter's
// "force runtime: line N: ..." protocol on stderr) comes back as that
// exact error, so forcerun's aot tier reports byte-identical messages
// to the interpreter tiers.
//
// Cancellation is the subprocess analogue of poisoning the in-process
// force: when ctx is canceled or its deadline passes, the child's WHOLE
// process group is SIGKILLed (the child runs as its own group leader,
// so helpers it spawned die with it rather than leaking as orphans),
// the child is reaped by Wait, and the context's error — typically
// context.DeadlineExceeded — is relayed to the caller.  The cache entry
// is untouched: a killed run does not invalidate the binary.
func (e *Entry) RunContext(ctx context.Context, np int, stdout io.Writer) error {
	if err := faultinject.FireErr(faultinject.AOTExec, nil); err != nil {
		return fmt.Errorf("aot: %s: %w", filepath.Base(e.Bin), err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	cmd := exec.Command(e.Bin, "-np", strconv.Itoa(np))
	cmd.Stdout = stdout
	var errb bytes.Buffer
	cmd.Stderr = &errb
	setProcGroup(cmd)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("aot: %s: %w", filepath.Base(e.Bin), err)
	}
	if testChildStarted != nil {
		testChildStarted(cmd.Process.Pid)
	}
	// The cancellation watcher: on ctx expiry, kill the child's process
	// group (and the child itself, covering platforms without process
	// groups); Wait below then reaps it, so no zombie survives.
	waitDone := make(chan struct{})
	var watcher sync.WaitGroup
	if ctx.Done() != nil {
		watcher.Add(1)
		go func() {
			defer watcher.Done()
			select {
			case <-ctx.Done():
				killProcGroup(cmd.Process.Pid)
				_ = cmd.Process.Kill()
			case <-waitDone:
			}
		}()
	}
	err := cmd.Wait()
	close(waitDone)
	watcher.Wait()
	if err == nil {
		return nil
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		// The exit status of a group-killed child is noise; the caller
		// asked for the cancellation, so relay its error.
		return ctxErr
	}
	msg := strings.TrimSpace(errb.String())
	var ee *exec.ExitError
	if errors.As(err, &ee) && ee.ExitCode() == 1 && strings.HasPrefix(msg, "force runtime") {
		return errors.New(msg)
	}
	if msg != "" {
		return fmt.Errorf("aot: %s: %w: %s", filepath.Base(e.Bin), err, msg)
	}
	return fmt.Errorf("aot: %s: %w", filepath.Base(e.Bin), err)
}
