//go:build !unix

package aot

import "os/exec"

// setProcGroup is a no-op without unix process groups; cancellation
// falls back to killing the direct child only.
func setProcGroup(cmd *exec.Cmd) {}

// killProcGroup kills the direct child via its handle elsewhere; no
// group-wide kill is available here.
func killProcGroup(pid int) {}
