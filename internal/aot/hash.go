package aot

// hash.go — the content address of a compiled Force program: a sha256
// over a canonical encoding of the checked AST plus every
// semantics-affecting option.  The encoding deliberately skips source
// line numbers, so programs differing only in whitespace, comments or
// blank lines share one cache entry (runtime-error line numbers then
// report the lines of whichever variant was built first — the accepted
// cost of the sharing).  Declarations and subroutines are hashed in
// name order, so reordering declarations — which cannot change observable
// behaviour — does not fork the cache.  np is excluded: it is a runtime
// flag of the generated binary, and one entry serves every force size.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sort"

	"repro/internal/forcelang"
	"repro/internal/sched"
)

// formatVersion invalidates the whole cache whenever the generated
// code's shape changes.  Bump it on any codegen change that alters the
// emitted Go for an unchanged AST.
const formatVersion = 1

// normalizeOpts applies the same defaulting codegen does, so an unset
// option and its explicit default produce one key.
func normalizeOpts(opts Options) Options {
	if opts.Selfsched == sched.Kind(0) {
		opts.Selfsched = sched.SelfLock
	}
	if opts.Chunk < 0 {
		opts.Chunk = 0
	}
	return opts
}

// Key returns the hex cache key of prog under opts.
func Key(prog *forcelang.Program, opts Options) string {
	opts = normalizeOpts(opts)
	w := &hasher{h: sha256.New()}
	w.num(formatVersion)
	w.str(opts.Selfsched.String())
	w.str(opts.Reduce.String())
	w.str(opts.Barrier.String())
	w.str(opts.Askfor.String())
	w.num(uint64(opts.Chunk))
	w.program(prog)
	return hex.EncodeToString(w.h.Sum(nil))
}

type hasher struct{ h hash.Hash }

func (w *hasher) num(n uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], n)
	w.h.Write(b[:])
}

// str writes a length-prefixed string, making the encoding prefix-free.
func (w *hasher) str(s string) {
	w.num(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *hasher) program(p *forcelang.Program) {
	w.str(p.Name)
	w.str(p.NPVar)
	w.str(p.MeVar)
	w.decls(p.Decls)
	subs := append([]*forcelang.Subroutine(nil), p.Subs...)
	sort.Slice(subs, func(i, j int) bool { return subs[i].Name < subs[j].Name })
	w.num(uint64(len(subs)))
	for _, s := range subs {
		w.str(s.Name)
		w.num(uint64(len(s.Params)))
		for _, p := range s.Params {
			w.str(p)
		}
		w.decls(s.Decls)
		w.stmts(s.Body)
	}
	w.stmts(p.Body)
}

// decls hashes declarations in name order — Unit and Slot are derived
// by the checker from declaration order and are skipped, as is Line.
func (w *hasher) decls(ds []forcelang.Decl) {
	sorted := append([]forcelang.Decl(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	w.num(uint64(len(sorted)))
	for _, d := range sorted {
		w.num(uint64(d.Class))
		w.num(uint64(d.Type))
		w.str(d.Name)
		w.num(uint64(len(d.Dims)))
		for _, dim := range d.Dims {
			w.num(uint64(dim))
		}
	}
}

func (w *hasher) stmts(ss []forcelang.Stmt) {
	w.num(uint64(len(ss)))
	for _, s := range ss {
		w.stmt(s)
	}
}

func (w *hasher) stmt(s forcelang.Stmt) {
	switch t := s.(type) {
	case *forcelang.Assign:
		w.str("assign")
		w.ref(&t.Target)
		w.expr(t.Expr)
	case *forcelang.If:
		w.str("if")
		w.expr(t.Cond)
		w.stmts(t.Then)
		w.stmts(t.Else)
	case *forcelang.SeqDo:
		w.str("seqdo")
		w.str(t.Var)
		w.expr(t.From)
		w.expr(t.To)
		w.optExpr(t.Step)
		w.stmts(t.Body)
	case *forcelang.WhileDo:
		w.str("whiledo")
		w.expr(t.Cond)
		w.stmts(t.Body)
	case *forcelang.ParDo:
		w.str("pardo")
		w.num(uint64(t.Sched))
		w.str(t.Var)
		w.expr(t.From)
		w.expr(t.To)
		w.optExpr(t.Step)
		if t.Inner != nil {
			w.str("inner")
			w.str(t.Inner.Var)
			w.expr(t.Inner.From)
			w.expr(t.Inner.To)
			w.optExpr(t.Inner.Step)
		} else {
			w.str("noinner")
		}
		w.stmts(t.Body)
	case *forcelang.BarrierStmt:
		w.str("barrier")
		w.stmts(t.Section)
	case *forcelang.CriticalStmt:
		w.str("critical")
		w.str(t.Name)
		w.stmts(t.Body)
	case *forcelang.PcaseStmt:
		w.str("pcase")
		if t.Selfsched {
			w.num(1)
		} else {
			w.num(0)
		}
		w.num(uint64(len(t.Blocks)))
		for _, b := range t.Blocks {
			w.optExpr(b.Cond)
			w.stmts(b.Body)
		}
	case *forcelang.AskforStmt:
		w.str("askfor")
		w.str(t.Var)
		w.expr(t.Seed)
		w.stmts(t.Body)
	case *forcelang.PutStmt:
		w.str("put")
		w.expr(t.Expr)
	case *forcelang.ReduceStmt:
		w.str("reduce")
		w.num(uint64(t.Op))
		w.ref(&t.Target)
		w.expr(t.Expr)
	case *forcelang.ProduceStmt:
		w.str("produce")
		w.str(t.Var)
		w.optExpr(t.Sub)
		w.expr(t.Expr)
	case *forcelang.ConsumeStmt:
		w.str("consume")
		w.str(t.Var)
		w.optExpr(t.Sub)
		w.ref(&t.Target)
	case *forcelang.CopyStmt:
		w.str("copy")
		w.str(t.Var)
		w.optExpr(t.Sub)
		w.ref(&t.Target)
	case *forcelang.VoidStmt:
		w.str("void")
		w.str(t.Var)
		w.optExpr(t.Sub)
	case *forcelang.PrintStmt:
		w.str("print")
		w.num(uint64(len(t.Items)))
		for _, it := range t.Items {
			w.expr(it)
		}
	case *forcelang.CallStmt:
		w.str("call")
		w.str(t.Name)
		w.num(uint64(len(t.Args)))
		for i := range t.Args {
			w.ref(&t.Args[i])
		}
	default:
		// A node kind this walk does not know cannot be keyed safely.
		panic(fmt.Sprintf("aot: unhashed statement %T", s))
	}
}

// optExpr hashes a possibly-nil expression with an explicit presence
// tag, keeping the encoding unambiguous.
func (w *hasher) optExpr(e forcelang.Expr) {
	if e == nil {
		w.str("nil")
		return
	}
	w.str("some")
	w.expr(e)
}

func (w *hasher) ref(r *forcelang.Ref) {
	w.str("ref")
	w.str(r.Name)
	w.num(uint64(len(r.Subs)))
	for _, s := range r.Subs {
		w.expr(s)
	}
}

func (w *hasher) expr(e forcelang.Expr) {
	switch t := e.(type) {
	case *forcelang.IntLit:
		w.str("int")
		w.num(uint64(t.Value))
	case *forcelang.RealLit:
		w.str("real")
		w.num(math.Float64bits(t.Value))
	case *forcelang.BoolLit:
		w.str("bool")
		if t.Value {
			w.num(1)
		} else {
			w.num(0)
		}
	case *forcelang.StrLit:
		w.str("str")
		w.str(t.Value)
	case *forcelang.Ref:
		w.ref(t)
	case *forcelang.Bin:
		w.str("bin")
		w.num(uint64(t.Op))
		w.expr(t.L)
		w.expr(t.R)
	case *forcelang.Un:
		w.str("un")
		if t.Neg {
			w.num(1)
		} else {
			w.num(0)
		}
		w.expr(t.X)
	case *forcelang.Intrinsic:
		w.str("intrinsic")
		w.str(t.Name)
		w.num(uint64(len(t.Args)))
		for _, a := range t.Args {
			w.expr(a)
		}
	default:
		panic(fmt.Sprintf("aot: unhashed expression %T", e))
	}
}
