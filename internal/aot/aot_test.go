package aot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/forcelang"
)

const runSrc = `Force RUN of NP ident ME
Shared Integer S
End Declarations
Barrier
  S = 0
End Barrier
Critical L
  S = S + ME
End Critical
Barrier
  Print 'S =', S
End Barrier
Join
`

func openTestCache(t *testing.T) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEnsureRunAndWarmHit is the cache's whole life in one test: a cold
// Ensure builds once, the binary runs with interpreter-identical output
// at two force sizes (one entry serves both — the key is
// np-independent), and a warm Ensure is a pure hit with zero rebuilds.
func TestEnsureRunAndWarmHit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	c := openTestCache(t)
	prog := forcelang.MustParse(runSrc)

	e, err := c.Ensure(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Builds != 1 || s.Misses != 1 {
		t.Fatalf("cold stats: %v", s)
	}
	// np=1: S = 0; np=4: S = 0+1+2+3 = 6.
	for np, want := range map[int]string{1: "S = 0\n", 4: "S = 6\n"} {
		var sb strings.Builder
		if err := e.Run(np, &sb, time.Minute); err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		if sb.String() != want {
			t.Errorf("np=%d: got %q, want %q", np, sb.String(), want)
		}
	}

	if _, err := c.Ensure(prog, Options{}); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Builds != 1 {
		t.Errorf("warm Ensure rebuilt: %v", s)
	}
	if s.Hits != 1 {
		t.Errorf("warm Ensure not a hit: %v", s)
	}
}

// TestCorruptionRecovery truncates the cached binary: the next lookup
// must classify the entry stale (size disagrees with meta.json) and
// rebuild rather than execute the stump.
func TestCorruptionRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	c := openTestCache(t)
	prog := forcelang.MustParse(runSrc)
	e, err := c.Ensure(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(e.Bin, 16); err != nil {
		t.Fatal(err)
	}

	e2, err := c.Ensure(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Stale != 1 || s.Builds != 2 {
		t.Fatalf("truncated entry not rebuilt: %v", s)
	}
	var sb strings.Builder
	if err := e2.Run(1, &sb, time.Minute); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "S = 0\n" {
		t.Errorf("rebuilt binary output %q", sb.String())
	}

	// A deleted binary with surviving metadata is stale too, not a miss.
	if err := os.Remove(e2.Bin); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Cached(prog, Options{}); ok {
		t.Error("missing binary classified as a hit")
	}
	if s := c.Stats(); s.Stale != 2 {
		t.Errorf("missing binary not counted stale: %v", s)
	}
}

// TestRuntimeErrorRelay: a runtime failure inside the cached binary
// comes back as the interpreter's exact "force runtime: line N: ..."
// message.
func TestRuntimeErrorRelay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	c := openTestCache(t)
	prog := forcelang.MustParse(`Force ERR of NP ident ME
Shared Real A(4)
End Declarations
Barrier
  A(5) = 1.0
End Barrier
Join
`)
	e, err := c.Ensure(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Run(1, &strings.Builder{}, time.Minute)
	if err == nil {
		t.Fatal("no error from out-of-range subscript")
	}
	want := "force runtime: line 5: subscript 1 of A out of range: 5 not in [1,4]"
	if err.Error() != want {
		t.Errorf("error %q, want %q", err.Error(), want)
	}
}

// TestRecordInterpreted: the auto tier's heat counter accumulates
// per-entry and survives reopening the cache.
func TestRecordInterpreted(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog := forcelang.MustParse(runSrc)
	for want := 1; want <= 3; want++ {
		n, err := c.RecordInterpreted(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Errorf("run %d counted as %d", want, n)
		}
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c2.RecordInterpreted(prog, Options{}); err != nil || n != 4 {
		t.Errorf("reopened counter: n=%d err=%v", n, err)
	}
}

// TestOpenEnvDefault: Open("") honours FORCE_CACHE.
func TestOpenEnvDefault(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cachehome")
	t.Setenv(EnvCacheDir, dir)
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if c.Dir() != dir {
		t.Errorf("Dir() = %q, want %q", c.Dir(), dir)
	}
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		t.Errorf("cache dir not created: %v", err)
	}
}

// TestSingleFlight: concurrent cold Ensures of one program produce one
// build.
func TestSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	c := openTestCache(t)
	prog := forcelang.MustParse(runSrc)
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := c.Ensure(prog, Options{})
			errs <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Builds != 1 {
		t.Errorf("concurrent Ensure built %d times: %v", s.Builds, s)
	}
}
