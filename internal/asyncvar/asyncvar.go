// Package asyncvar implements the Force's asynchronous variables: shared
// variables of class Async carrying a full/empty state changed atomically
// with read and write access (paper §3.2, §3.4, §4.2).
//
// The operations are the paper's:
//
//   - Produce waits for the variable to be empty, writes the value, and
//     sets the state to full;
//   - Consume waits for the variable to be full, reads the value, and sets
//     the state to empty;
//   - Void sets the state to empty regardless of its previous state
//     (initialization);
//   - IsFull tests the state without changing it.
//
// Copy (wait for full, read, leave full) comes from the Force User's
// Manual [JBAR87] and is included for the application codes that need a
// broadcast-style read.
//
// Three implementations reproduce the portability story.  On the HEP every
// memory cell had a hardware full/empty bit; on every other machine the
// Force synthesized the state from two locks E and F: "An empty state
// corresponds to E being locked and F unlocked.  A full state corresponds
// to F being locked and E unlocked."  The two-lock implementation here
// follows that protocol literally; the channel implementation stands in
// for the HEP hardware (a capacity-1 channel is a full/empty cell); the
// condition-variable implementation is the parked, system-call shape.
package asyncvar

import (
	"fmt"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/lock"
	"repro/internal/poison"
)

// V is a full/empty asynchronous variable holding values of type T.
//
// Void (and only Void) must not race with in-flight Produce/Consume on the
// same variable: the paper positions it as state initialization, and the
// two-lock realization has no atomic way to cancel an in-flight transfer —
// a constraint inherited faithfully from the original.
type V[T any] interface {
	// Produce waits for empty, writes v, and marks the variable full.
	Produce(v T)
	// Consume waits for full, reads the value, and marks it empty.
	Consume() T
	// Copy waits for full and reads the value, leaving it full.
	Copy() T
	// Void forces the state to empty, discarding any value.
	Void()
	// IsFull reports the current state without modifying it.  The answer
	// is advisory: it may be stale by the time the caller acts on it,
	// exactly as a tested full/empty bit was on the HEP.
	IsFull() bool
}

// Poisonable is implemented by asynchronous variables that observe a
// poison cell: a Produce/Consume/Copy blocked while the force is
// poisoned unwinds with poison.Abort instead of waiting for a transfer
// that can never happen.  Every implementation in this package supports
// it.
type Poisonable interface {
	// SetPoison binds the variable's waits to the cell (nil unbinds).
	// It must not be called concurrently with variable operations.
	SetPoison(c *poison.Cell)
}

// SetPoison binds v to the poison cell when v supports it.
func SetPoison[T any](v V[T], c *poison.Cell) {
	if p, ok := v.(Poisonable); ok {
		p.SetPoison(c)
	}
}

// Impl names an asynchronous-variable implementation.
type Impl int

const (
	// TwoLock synthesizes full/empty from two locks E and F, the paper's
	// protocol for every non-HEP machine.
	TwoLock Impl = iota
	// Channel models the HEP's hardware full/empty bit with a capacity-1
	// channel.
	Channel
	// CondVar parks waiters on a condition variable (system-call
	// category).
	CondVar
)

var implNames = map[Impl]string{
	TwoLock: "twolock",
	Channel: "channel",
	CondVar: "condvar",
}

// String returns the implementation's short name.
func (i Impl) String() string {
	if s, ok := implNames[i]; ok {
		return s
	}
	return fmt.Sprintf("asyncvar.Impl(%d)", int(i))
}

// ParseImpl converts a short name into an Impl.
func ParseImpl(s string) (Impl, error) {
	for i, n := range implNames {
		if n == s {
			return i, nil
		}
	}
	return 0, fmt.Errorf("asyncvar: unknown impl %q", s)
}

// Impls lists the implementations in presentation order.
func Impls() []Impl { return []Impl{TwoLock, Channel, CondVar} }

// New creates an empty asynchronous variable.  The lock factory supplies E
// and F for the TwoLock implementation (nil defaults to system locks) and
// is ignored by the others.
func New[T any](impl Impl, factory func() lock.Lock) V[T] {
	switch impl {
	case TwoLock:
		if factory == nil {
			factory = lock.Factory(lock.System)
		}
		v := &twoLockVar[T]{e: factory(), f: factory()}
		// Empty state: E locked, F unlocked.
		v.e.Lock()
		return v
	case Channel:
		return &chanVar[T]{ch: make(chan T, 1)}
	case CondVar:
		cv := &condVar[T]{}
		cv.cond = sync.NewCond(&cv.mu)
		return cv
	default:
		panic(fmt.Sprintf("asyncvar: unknown impl %d", int(impl)))
	}
}

// twoLockVar is the paper's two-lock realization.  State invariant when no
// operation is in flight: empty ⇔ E locked ∧ F unlocked; full ⇔ F locked ∧
// E unlocked.  During a transfer both are briefly locked, which is what
// serializes concurrent producers (they queue on F) and concurrent
// consumers (they queue on E).
type twoLockVar[T any] struct {
	e, f lock.Lock
	val  T
	pc   *poison.Cell
	// full mirrors the lock-encoded state for IsFull/Void; writes happen
	// while both locks are held, so a mutex-free bool would race only
	// with the advisory readers — we guard it with its own tiny lock to
	// stay race-detector clean.
	stMu sync.Mutex
	full bool
}

var _ V[int] = (*twoLockVar[int])(nil)
var _ Poisonable = (*twoLockVar[int])(nil)

// SetPoison binds the E/F waits to the cell.  The two locks encode the
// full/empty condition — a consumer waits in E's acquire until some
// producer runs — so acquisition goes through lock.Acquire.
func (v *twoLockVar[T]) SetPoison(c *poison.Cell) { v.pc = c }

// Produce follows the paper: "Lock F / Write to the asynchronous variable /
// Unlock E."  Other producers find F locked and wait.
func (v *twoLockVar[T]) Produce(x T) {
	faultinject.Fire(faultinject.AsyncProduce, -1, v.pc)
	lock.Acquire(v.f, v.pc)
	v.val = x
	v.setFull(true)
	v.e.Unlock()
}

// Consume follows the paper: "Lock E / Read from the asynchronous variable /
// Unlock F."  While a Produce is in progress a consumer waits until E is
// unlocked.
func (v *twoLockVar[T]) Consume() T {
	faultinject.Fire(faultinject.AsyncConsume, -1, v.pc)
	lock.Acquire(v.e, v.pc)
	x := v.val
	v.setFull(false)
	v.f.Unlock()
	return x
}

// Copy waits for full (E unlocked), reads, and restores E, leaving the
// variable full.
func (v *twoLockVar[T]) Copy() T {
	faultinject.Fire(faultinject.AsyncCopy, -1, v.pc)
	lock.Acquire(v.e, v.pc)
	x := v.val
	v.e.Unlock()
	return x
}

// Void forces the empty state.  If the variable is full it performs the
// lock half of a Consume and discards the value; if already empty it is a
// no-op.  See the interface comment for the non-concurrency requirement.
func (v *twoLockVar[T]) Void() {
	v.stMu.Lock()
	wasFull := v.full
	v.stMu.Unlock()
	if !wasFull {
		return
	}
	lock.Acquire(v.e, v.pc)
	var zero T
	v.val = zero
	v.setFull(false)
	v.f.Unlock()
}

// IsFull reports the advisory state.
func (v *twoLockVar[T]) IsFull() bool {
	v.stMu.Lock()
	defer v.stMu.Unlock()
	return v.full
}

func (v *twoLockVar[T]) setFull(b bool) {
	v.stMu.Lock()
	v.full = b
	v.stMu.Unlock()
}

// chanVar models the HEP hardware full/empty cell with a capacity-1
// channel: send ⇔ produce (blocks while full), receive ⇔ consume (blocks
// while empty).
type chanVar[T any] struct {
	ch chan T
	pc *poison.Cell
}

var _ V[int] = (*chanVar[int])(nil)
var _ Poisonable = (*chanVar[int])(nil)

// SetPoison binds the channel waits to the cell: blocked sends and
// receives additionally select on the cell's wake channel.
func (v *chanVar[T]) SetPoison(c *poison.Cell) { v.pc = c }

// Produce sends into the cell, blocking while it is full.
func (v *chanVar[T]) Produce(x T) {
	faultinject.Fire(faultinject.AsyncProduce, -1, v.pc)
	if v.pc == nil {
		v.ch <- x
		return
	}
	select {
	case v.ch <- x:
	case <-v.pc.Done():
		v.pc.Check()
	}
}

// Consume receives from the cell, blocking while it is empty.
func (v *chanVar[T]) Consume() T {
	faultinject.Fire(faultinject.AsyncConsume, -1, v.pc)
	if v.pc == nil {
		return <-v.ch
	}
	select {
	case x := <-v.ch:
		return x
	case <-v.pc.Done():
		v.pc.Check()
		return <-v.ch // unreachable: Done fired means Check panics
	}
}

// Copy reads the value and immediately restores it.  The cell is briefly
// observable as empty between the two steps; the HEP's read-preserving
// access had no such window, but no Force construct depends on its absence.
func (v *chanVar[T]) Copy() T {
	faultinject.Fire(faultinject.AsyncCopy, -1, v.pc)
	x := v.Consume()
	if v.pc == nil {
		v.ch <- x
		return x
	}
	select {
	case v.ch <- x:
	case <-v.pc.Done():
		// Restore before unwinding so the abort does not leave a
		// variable empty that Copy promised to leave full; if a racing
		// producer refilled the cell, it is full anyway.
		select {
		case v.ch <- x:
		default:
		}
		v.pc.Check()
	}
	return x
}

// Void drains the cell if it holds a value.
func (v *chanVar[T]) Void() {
	select {
	case <-v.ch:
	default:
	}
}

// IsFull reports whether the cell currently holds a value.
func (v *chanVar[T]) IsFull() bool { return len(v.ch) == 1 }

// condVar is the parked implementation: one mutex, one condition variable,
// an explicit full bit.
type condVar[T any] struct {
	mu    sync.Mutex
	cond  *sync.Cond
	val   T
	full  bool
	pc    *poison.Cell
	unsub func()
}

var _ V[int] = (*condVar[int])(nil)
var _ Poisonable = (*condVar[int])(nil)

// SetPoison binds the parked waiters to the cell.  Waiters park on the
// condition variable, which a poison cannot close, so the variable
// subscribes a broadcast hook; rebinding (or binding nil) cancels the
// previous subscription.
func (v *condVar[T]) SetPoison(c *poison.Cell) {
	v.unsub = poison.Rebind(v.unsub, c, &v.mu, v.cond)
	v.pc = c
}

// await parks until cond(v) holds, unwinding with poison.Abort when the
// force is poisoned first.  Called with mu held; returns with mu held.
func (v *condVar[T]) await(ready func() bool) {
	for !ready() && !v.pc.Poisoned() {
		v.cond.Wait()
	}
	if !ready() {
		v.mu.Unlock()
		v.pc.Check()
	}
}

// Produce waits for empty under the mutex, writes, and wakes waiters.
func (v *condVar[T]) Produce(x T) {
	faultinject.Fire(faultinject.AsyncProduce, -1, v.pc)
	v.mu.Lock()
	v.await(func() bool { return !v.full })
	v.val = x
	v.full = true
	v.mu.Unlock()
	v.cond.Broadcast()
}

// Consume waits for full under the mutex, reads, and wakes waiters.
func (v *condVar[T]) Consume() T {
	faultinject.Fire(faultinject.AsyncConsume, -1, v.pc)
	v.mu.Lock()
	v.await(func() bool { return v.full })
	x := v.val
	v.full = false
	v.mu.Unlock()
	v.cond.Broadcast()
	return x
}

// Copy waits for full and reads without emptying.
func (v *condVar[T]) Copy() T {
	faultinject.Fire(faultinject.AsyncCopy, -1, v.pc)
	v.mu.Lock()
	v.await(func() bool { return v.full })
	x := v.val
	v.mu.Unlock()
	return x
}

// Void forces the empty state.
func (v *condVar[T]) Void() {
	v.mu.Lock()
	var zero T
	v.val = zero
	v.full = false
	v.mu.Unlock()
	v.cond.Broadcast()
}

// IsFull reports the current state.
func (v *condVar[T]) IsFull() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.full
}
