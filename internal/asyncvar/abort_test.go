package asyncvar

import (
	"errors"
	"testing"
	"time"

	"repro/internal/poison"
)

// expectAbort runs op in a goroutine and asserts it unwinds with
// poison.Abort after the cell is poisoned.
func expectAbort(t *testing.T, c *poison.Cell, op func()) {
	t.Helper()
	unwound := make(chan any, 1)
	go func() {
		defer func() { unwound <- recover() }()
		op()
	}()
	time.Sleep(5 * time.Millisecond)
	c.Poison(errors.New("process died"))
	select {
	case r := <-unwound:
		if _, ok := r.(poison.Abort); !ok {
			t.Fatalf("blocked op unwound with %v (%T), want poison.Abort", r, r)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("blocked op did not wake on poison")
	}
}

// TestPoisonWakesBlockedOps: for every implementation, a Consume/Copy
// on an empty variable and a Produce on a full one unwind on poison.
func TestPoisonWakesBlockedOps(t *testing.T) {
	for _, impl := range Impls() {
		t.Run(impl.String()+"/consume-empty", func(t *testing.T) {
			c := poison.NewCell()
			v := New[int](impl, nil)
			SetPoison(v, c)
			expectAbort(t, c, func() { v.Consume() })
		})
		t.Run(impl.String()+"/copy-empty", func(t *testing.T) {
			c := poison.NewCell()
			v := New[int](impl, nil)
			SetPoison(v, c)
			expectAbort(t, c, func() { v.Copy() })
		})
		t.Run(impl.String()+"/produce-full", func(t *testing.T) {
			c := poison.NewCell()
			v := New[int](impl, nil)
			SetPoison(v, c)
			v.Produce(1)
			expectAbort(t, c, func() { v.Produce(2) })
		})
	}
}

// TestPoisonBoundTransferStillWorks: a bound but unpoisoned variable
// behaves exactly like an unbound one.
func TestPoisonBoundTransferStillWorks(t *testing.T) {
	for _, impl := range Impls() {
		c := poison.NewCell()
		v := New[int](impl, nil)
		SetPoison(v, c)
		go v.Produce(42)
		if got := v.Consume(); got != 42 {
			t.Fatalf("%s: Consume = %d, want 42", impl, got)
		}
		if v.IsFull() {
			t.Fatalf("%s: full after Consume", impl)
		}
	}
}

// TestArraySetPoison: array cells are bound collectively.
func TestArraySetPoison(t *testing.T) {
	for _, impl := range Impls() {
		c := poison.NewCell()
		a := NewArray[int](impl, nil, 4)
		a.SetPoison(c)
		expectAbort(t, c, func() { a.Consume(2) })
	}
}
