package asyncvar

import (
	"sync"
	"testing"

	"repro/internal/lock"
)

func TestArrayBasics(t *testing.T) {
	for _, impl := range Impls() {
		a := NewArray[int](impl, lock.Factory(lock.TTAS), 8)
		if a.Len() != 8 {
			t.Fatalf("%v: Len = %d", impl, a.Len())
		}
		if a.FullCount() != 0 {
			t.Errorf("%v: fresh array has full cells", impl)
		}
		a.Produce(3, 33)
		a.Produce(5, 55)
		if a.FullCount() != 2 {
			t.Errorf("%v: FullCount = %d, want 2", impl, a.FullCount())
		}
		if got := a.Copy(3); got != 33 {
			t.Errorf("%v: Copy(3) = %d", impl, got)
		}
		if got := a.Consume(3); got != 33 {
			t.Errorf("%v: Consume(3) = %d", impl, got)
		}
		if a.At(5).IsFull() != true || a.At(3).IsFull() != false {
			t.Errorf("%v: cell independence broken", impl)
		}
		a.VoidAll()
		if a.FullCount() != 0 {
			t.Errorf("%v: VoidAll left full cells", impl)
		}
	}
}

// TestArrayCellsIndependent: producing one cell never unblocks a consumer
// of a different cell.
func TestArrayCellsIndependent(t *testing.T) {
	a := NewArray[int](Channel, nil, 4)
	got := make(chan int, 1)
	go func() { got <- a.Consume(2) }()
	a.Produce(1, 11) // different cell: consumer must stay blocked
	select {
	case v := <-got:
		t.Fatalf("Consume(2) returned %d after Produce(1)", v)
	default:
	}
	a.Produce(2, 22)
	if v := <-got; v != 22 {
		t.Fatalf("Consume(2) = %d, want 22", v)
	}
}

// TestArrayCopySemantics pins the Copy contract on every realization
// (the two-lock protocol of the non-HEP machines, the channel standing
// in for HEP hardware, and the parked condvar shape): Copy waits for
// full, returns the value, and leaves the cell full — repeatedly.
func TestArrayCopySemantics(t *testing.T) {
	for _, impl := range Impls() {
		a := NewArray[int](impl, lock.Factory(lock.TTAS), 4)
		a.Produce(1, 77)
		for i := 0; i < 5; i++ {
			if got := a.Copy(1); got != 77 {
				t.Fatalf("%v: Copy #%d = %d, want 77", impl, i, got)
			}
		}
		if !a.At(1).IsFull() {
			t.Errorf("%v: Copy emptied the cell", impl)
		}
		// Copy blocks on an empty cell until a Produce fills it.
		got := make(chan int, 1)
		go func() { got <- a.Copy(2) }()
		select {
		case v := <-got:
			t.Fatalf("%v: Copy(2) returned %d from an empty cell", impl, v)
		default:
		}
		a.Produce(2, 5)
		if v := <-got; v != 5 {
			t.Fatalf("%v: Copy(2) = %d, want 5", impl, v)
		}
		// The value is still there for a real Consume.
		if v := a.Consume(2); v != 5 {
			t.Fatalf("%v: Consume after Copy = %d, want 5", impl, v)
		}
	}
}

// TestArrayConcurrentCopies hammers one full cell with concurrent Copy
// readers (the broadcast-style read the Force User's Manual added Copy
// for) while IsFull is polled — the -race job validates the internal
// synchronization of both the two-lock and the channel realizations.
func TestArrayConcurrentCopies(t *testing.T) {
	for _, impl := range Impls() {
		a := NewArray[int](impl, lock.Factory(lock.System), 2)
		a.Produce(0, 42)
		var wg sync.WaitGroup
		for r := 0; r < 8; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					if got := a.Copy(0); got != 42 {
						t.Errorf("%v: concurrent Copy = %d, want 42", impl, got)
						return
					}
					a.At(0).IsFull() // advisory read alongside
				}
			}()
		}
		wg.Wait()
		if got := a.Consume(0); got != 42 {
			t.Fatalf("%v: value damaged by concurrent Copies: %d", impl, got)
		}
	}
}

// TestArrayVoidSemantics pins the Void contract: voiding a full cell
// empties it (discarding the value), voiding an empty cell is a no-op,
// and the cell is usable for a fresh Produce/Consume cycle afterwards —
// per cell, without disturbing its neighbours.
func TestArrayVoidSemantics(t *testing.T) {
	for _, impl := range Impls() {
		a := NewArray[int](impl, lock.Factory(lock.TTAS), 3)
		a.Produce(0, 1)
		a.Produce(2, 3)
		a.Void(0) // full -> empty
		a.Void(1) // already empty: no-op
		if a.At(0).IsFull() || a.At(1).IsFull() {
			t.Errorf("%v: Void left a cell full", impl)
		}
		if !a.At(2).IsFull() {
			t.Errorf("%v: Void disturbed a neighbour cell", impl)
		}
		// A voided cell accepts a fresh transfer: Produce must not block
		// (it would if Void had left the two-lock state inconsistent).
		done := make(chan int, 1)
		go func() {
			a.Produce(0, 9)
			done <- a.Consume(0)
		}()
		if got := <-done; got != 9 {
			t.Fatalf("%v: fresh cycle after Void = %d, want 9", impl, got)
		}
		if got := a.Consume(2); got != 3 {
			t.Fatalf("%v: neighbour value = %d, want 3", impl, got)
		}
	}
}

// TestArrayWavefront uses per-cell full/empty state for dataflow-style
// dependency propagation, the HEP's signature idiom: each worker consumes
// its predecessor cell and produces its own.
func TestArrayWavefront(t *testing.T) {
	for _, impl := range Impls() {
		const n = 32
		a := NewArray[int](impl, lock.Factory(lock.System), n)
		var wg sync.WaitGroup
		for i := 1; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				prev := a.Consume(i - 1) // wait for predecessor
				a.Produce(i-1, prev)     // refill for verification
				a.Produce(i, prev+1)
			}()
		}
		a.Produce(0, 100)
		wg.Wait()
		for i := 0; i < n; i++ {
			if got := a.Consume(i); got != 100+i {
				t.Fatalf("%v: cell %d = %d, want %d", impl, i, got, 100+i)
			}
		}
	}
}
