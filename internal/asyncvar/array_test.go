package asyncvar

import (
	"sync"
	"testing"

	"repro/internal/lock"
)

func TestArrayBasics(t *testing.T) {
	for _, impl := range Impls() {
		a := NewArray[int](impl, lock.Factory(lock.TTAS), 8)
		if a.Len() != 8 {
			t.Fatalf("%v: Len = %d", impl, a.Len())
		}
		if a.FullCount() != 0 {
			t.Errorf("%v: fresh array has full cells", impl)
		}
		a.Produce(3, 33)
		a.Produce(5, 55)
		if a.FullCount() != 2 {
			t.Errorf("%v: FullCount = %d, want 2", impl, a.FullCount())
		}
		if got := a.Copy(3); got != 33 {
			t.Errorf("%v: Copy(3) = %d", impl, got)
		}
		if got := a.Consume(3); got != 33 {
			t.Errorf("%v: Consume(3) = %d", impl, got)
		}
		if a.At(5).IsFull() != true || a.At(3).IsFull() != false {
			t.Errorf("%v: cell independence broken", impl)
		}
		a.VoidAll()
		if a.FullCount() != 0 {
			t.Errorf("%v: VoidAll left full cells", impl)
		}
	}
}

// TestArrayCellsIndependent: producing one cell never unblocks a consumer
// of a different cell.
func TestArrayCellsIndependent(t *testing.T) {
	a := NewArray[int](Channel, nil, 4)
	got := make(chan int, 1)
	go func() { got <- a.Consume(2) }()
	a.Produce(1, 11) // different cell: consumer must stay blocked
	select {
	case v := <-got:
		t.Fatalf("Consume(2) returned %d after Produce(1)", v)
	default:
	}
	a.Produce(2, 22)
	if v := <-got; v != 22 {
		t.Fatalf("Consume(2) = %d, want 22", v)
	}
}

// TestArrayWavefront uses per-cell full/empty state for dataflow-style
// dependency propagation, the HEP's signature idiom: each worker consumes
// its predecessor cell and produces its own.
func TestArrayWavefront(t *testing.T) {
	for _, impl := range Impls() {
		const n = 32
		a := NewArray[int](impl, lock.Factory(lock.System), n)
		var wg sync.WaitGroup
		for i := 1; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				prev := a.Consume(i - 1) // wait for predecessor
				a.Produce(i-1, prev)     // refill for verification
				a.Produce(i, prev+1)
			}()
		}
		a.Produce(0, 100)
		wg.Wait()
		for i := 0; i < n; i++ {
			if got := a.Consume(i); got != 100+i {
				t.Fatalf("%v: cell %d = %d, want %d", impl, i, got, 100+i)
			}
		}
	}
}
