package asyncvar

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/lock"
)

func TestImplStringAndParse(t *testing.T) {
	for _, i := range Impls() {
		got, err := ParseImpl(i.String())
		if err != nil || got != i {
			t.Errorf("ParseImpl(%q) = %v, %v", i.String(), got, err)
		}
	}
	if _, err := ParseImpl("zzz"); err == nil {
		t.Error("ParseImpl(zzz) succeeded")
	}
	if got := Impl(9).String(); got != "asyncvar.Impl(9)" {
		t.Errorf("unknown impl String() = %q", got)
	}
}

func TestNewUnknownImplPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with unknown impl did not panic")
		}
	}()
	New[int](Impl(7), nil)
}

func TestStartsEmpty(t *testing.T) {
	for _, impl := range Impls() {
		v := New[int](impl, nil)
		if v.IsFull() {
			t.Errorf("%v: fresh variable is full", impl)
		}
	}
}

func TestProduceConsumeRoundTrip(t *testing.T) {
	for _, impl := range Impls() {
		v := New[string](impl, lock.Factory(lock.TTAS))
		v.Produce("hello")
		if !v.IsFull() {
			t.Errorf("%v: not full after Produce", impl)
		}
		if got := v.Consume(); got != "hello" {
			t.Errorf("%v: Consume = %q, want hello", impl, got)
		}
		if v.IsFull() {
			t.Errorf("%v: full after Consume", impl)
		}
	}
}

func TestCopyLeavesFull(t *testing.T) {
	for _, impl := range Impls() {
		v := New[int](impl, nil)
		v.Produce(42)
		if got := v.Copy(); got != 42 {
			t.Errorf("%v: Copy = %d, want 42", impl, got)
		}
		if !v.IsFull() {
			t.Errorf("%v: Copy emptied the variable", impl)
		}
		if got := v.Consume(); got != 42 {
			t.Errorf("%v: Consume after Copy = %d, want 42", impl, got)
		}
	}
}

func TestVoid(t *testing.T) {
	for _, impl := range Impls() {
		v := New[int](impl, nil)
		v.Void() // void of empty is a no-op
		if v.IsFull() {
			t.Errorf("%v: full after Void of empty", impl)
		}
		v.Produce(7)
		v.Void()
		if v.IsFull() {
			t.Errorf("%v: full after Void of full", impl)
		}
		// The variable must be usable again after Void.
		v.Produce(8)
		if got := v.Consume(); got != 8 {
			t.Errorf("%v: Consume after Void = %d, want 8", impl, got)
		}
	}
}

// TestProduceBlocksWhileFull: a second producer must wait until a consumer
// empties the variable.
func TestProduceBlocksWhileFull(t *testing.T) {
	for _, impl := range Impls() {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) {
			t.Parallel()
			v := New[int](impl, nil)
			v.Produce(1)
			second := make(chan struct{})
			go func() {
				v.Produce(2) // blocks until the Consume below
				close(second)
			}()
			select {
			case <-second:
				t.Fatal("second Produce completed while variable was full")
			default:
			}
			if got := v.Consume(); got != 1 {
				t.Fatalf("Consume = %d, want 1", got)
			}
			<-second // now the blocked produce must complete
			if got := v.Consume(); got != 2 {
				t.Fatalf("Consume = %d, want 2", got)
			}
		})
	}
}

// TestConsumeBlocksWhileEmpty: a consumer on an empty variable waits for a
// produce.
func TestConsumeBlocksWhileEmpty(t *testing.T) {
	for _, impl := range Impls() {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) {
			t.Parallel()
			v := New[int](impl, nil)
			got := make(chan int)
			go func() { got <- v.Consume() }()
			select {
			case x := <-got:
				t.Fatalf("Consume returned %d from an empty variable", x)
			default:
			}
			v.Produce(99)
			if x := <-got; x != 99 {
				t.Fatalf("Consume = %d, want 99", x)
			}
		})
	}
}

// TestManyProducersManyConsumers checks conservation: every produced value
// is consumed exactly once.
func TestManyProducersManyConsumers(t *testing.T) {
	const producers, perProducer = 4, 200
	for _, impl := range Impls() {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) {
			t.Parallel()
			v := New[int](impl, lock.Factory(lock.Combined))
			total := producers * perProducer
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						v.Produce(p*perProducer + i)
					}
				}(p)
			}
			seen := make([]bool, total)
			var mu sync.Mutex
			var cg sync.WaitGroup
			for c := 0; c < producers; c++ {
				cg.Add(1)
				go func() {
					defer cg.Done()
					for i := 0; i < perProducer; i++ {
						x := v.Consume()
						mu.Lock()
						if x < 0 || x >= total || seen[x] {
							t.Errorf("value %d out of range or duplicated", x)
						} else {
							seen[x] = true
						}
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			cg.Wait()
			for i, s := range seen {
				if !s {
					t.Fatalf("value %d was never consumed", i)
				}
			}
		})
	}
}

// TestPipeline chains variables into the classic produce/consume pipeline
// the construct exists to support.
func TestPipeline(t *testing.T) {
	const stages, items = 4, 100
	for _, impl := range Impls() {
		cells := make([]V[int], stages)
		for i := range cells {
			cells[i] = New[int](impl, nil)
		}
		var wg sync.WaitGroup
		for s := 0; s < stages-1; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < items; i++ {
					cells[s+1].Produce(cells[s].Consume() + 1)
				}
			}(s)
		}
		go func() {
			for i := 0; i < items; i++ {
				cells[0].Produce(i)
			}
		}()
		for i := 0; i < items; i++ {
			if got := cells[stages-1].Consume(); got != i+stages-1 {
				t.Fatalf("%v: pipeline item %d = %d, want %d", impl, i, got, i+stages-1)
			}
		}
		wg.Wait()
	}
}

// TestTwoLockWithEveryLockKind: the paper's protocol must hold over every
// lock category.
func TestTwoLockWithEveryLockKind(t *testing.T) {
	for _, lk := range lock.Kinds() {
		lk := lk
		t.Run(lk.String(), func(t *testing.T) {
			t.Parallel()
			v := New[int](TwoLock, lock.Factory(lk))
			done := make(chan struct{})
			go func() {
				for i := 0; i < 300; i++ {
					v.Produce(i)
				}
				close(done)
			}()
			for i := 0; i < 300; i++ {
				if got := v.Consume(); got != i {
					t.Fatalf("Consume = %d, want %d (FIFO through a single cell)", got, i)
				}
			}
			<-done
		})
	}
}

// Property: alternating produce/consume of random values always round-trips.
func TestQuickRoundTrip(t *testing.T) {
	prop := func(implIdx uint8, values []int64) bool {
		impls := Impls()
		impl := impls[int(implIdx)%len(impls)]
		v := New[int64](impl, nil)
		for _, x := range values {
			v.Produce(x)
			if v.Consume() != x {
				return false
			}
		}
		return !v.IsFull()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
