package asyncvar

import (
	"repro/internal/lock"
	"repro/internal/poison"
)

// Array is a vector of full/empty cells — the natural shape on the HEP,
// where *every* memory cell carried a hardware full/empty bit, and the
// one the Force User's Manual exposes as asynchronous arrays.  Cells are
// independent: producing A(i) does not affect A(j).
//
// On non-HEP machines each element costs a pair of locks, which is
// exactly the paper's "locks may be scarce resources" caveat (§4.1.3):
// constructing a large two-lock Array on the Cray-2 profile would have
// exhausted the machine's lock supply, while the channel realization
// models the HEP's free per-cell state.
type Array[T any] struct {
	cells []V[T]
}

// NewArray creates an array of n empty cells realized per impl.
func NewArray[T any](impl Impl, factory func() lock.Lock, n int) *Array[T] {
	a := &Array[T]{cells: make([]V[T], n)}
	for i := range a.cells {
		a.cells[i] = New[T](impl, factory)
	}
	return a
}

// SetPoison binds every cell's waits to the poison cell.
func (a *Array[T]) SetPoison(c *poison.Cell) {
	for _, cell := range a.cells {
		SetPoison(cell, c)
	}
}

// Len returns the number of cells.
func (a *Array[T]) Len() int { return len(a.cells) }

// At returns the i-th cell (0-based).
func (a *Array[T]) At(i int) V[T] { return a.cells[i] }

// Produce writes cell i, waiting for it to be empty.
func (a *Array[T]) Produce(i int, v T) { a.cells[i].Produce(v) }

// Consume reads cell i, waiting for it to be full, and empties it.
func (a *Array[T]) Consume(i int) T { return a.cells[i].Consume() }

// Copy reads cell i without emptying it.
func (a *Array[T]) Copy(i int) T { return a.cells[i].Copy() }

// Void forces cell i to empty.
func (a *Array[T]) Void(i int) { a.cells[i].Void() }

// VoidAll forces every cell to empty (array initialization).
func (a *Array[T]) VoidAll() {
	for _, c := range a.cells {
		c.Void()
	}
}

// FullCount reports how many cells are currently full (advisory, like
// IsFull).
func (a *Array[T]) FullCount() int {
	n := 0
	for _, c := range a.cells {
		if c.IsFull() {
			n++
		}
	}
	return n
}
