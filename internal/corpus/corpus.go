// Package corpus holds the cross-tier acceptance programs shared by the
// interpreter engines and the AOT (generated-Go) tier.  The interpreter
// equivalence tests (internal/interp), the aot parity integration tests
// (repo root), and CI's tier sweeps all iterate these same slices, so a
// new execution backend is held to exactly the same bar as the existing
// ones: byte-identical output (modulo print interleaving) and
// byte-identical runtime-error messages.
//
// Three families:
//
//   - Equiv: the PR-3 15-program equivalence corpus — one deterministic
//     program per language construct family (coercions, shared traffic,
//     2-D arrays, call chains, recursion, Pcase, Askfor, reductions,
//     asyncvars, DO WHILE, negative strides);
//   - RuntimeErrors / NonUniform: the PR-4 fault corpora — uniform error
//     sites (every process errs) and non-uniform ones (one process errs
//     while peers block in a collective), each with a pinned
//     "force runtime: line N: ..." message;
//   - Chunk: the PR-6 chunk matrix — programs chosen to hit the chunk
//     tier's edges (strides, empty ranges, two-index DOALLs,
//     disjointness proofs and their failures, accumulator folding,
//     final loop-variable values);
//   - Fusion / FusionFaults: the PR-10 fusion matrix — programs shaped
//     for the chunk tier's fusion pass (adjacent independent DOALLs,
//     overlapping must-NOT-fuse pairs, foldable reduction tails, a
//     reduction feeding a later DOALL, and a fault striking inside a
//     fused region).  Every tier, with fusion on and off, must print
//     the same lines and report the same errors: fusion is a barrier
//     count optimization, never a semantics change.
package corpus

// Program is one acceptance program.  NP is the force size the program
// was written for (0 means the test picks its own matrix).
type Program struct {
	Name string
	NP   int
	Src  string
}

// Equiv is the deterministic equivalence corpus: every execution tier
// must produce the same sorted output lines at the given NP.
var Equiv = []Program{
	{"hello", 4, `Force HELLO of NP ident ME
End Declarations
Print 'hello from', ME, 'of', NP
Join
`},
	{"coercions", 2, `Force CO of NP ident ME
Private Real X
Private Integer K
Private Logical B
End Declarations
IF (ME .EQ. 0) THEN
  X = 7
  K = 3.9
  B = 1 .LT. 2 .AND. .NOT. (2.0 .GE. 3.0)
  Print X, K, B
  Print INT(2.9), NINT(2.9), INT(7), MOD(9, 4), MOD(9.5, 4.0)
  Print MIN(3, 1, 2), MAX(1.5, 2), ABS(-3), ABS(-2.5), SQRT(16.0)
  Print -X, -K, 5 / 2, 5.0 / 2.0, 1 / 2
End IF
Join
`},
	{"shared-scalar-traffic", 4, `Force SST of NP ident ME
Shared Integer TOTAL
Shared Real ACC
Shared Logical FLAG
Private Integer I
End Declarations
Barrier
  TOTAL = 0
  ACC = 0.0
  FLAG = .FALSE.
End Barrier
Presched DO I = 1, 200
  Critical L
    TOTAL = TOTAL + I
    ACC = ACC + REAL(I) / 2.0
  End Critical
End Presched DO
Barrier
  FLAG = TOTAL .EQ. 20100
  Print TOTAL, ACC, FLAG
End Barrier
Join
`},
	{"arrays-2d", 3, `Force A2 of NP ident ME
Shared Real M(6,7)
Shared Real S
Private Integer I, J
End Declarations
Presched DO I = 1, 6 also J = 1, 7
  M(I, J) = REAL(I) + REAL(J) / 10.0
End Presched DO
Barrier
S = 0.0
End Barrier
Selfsched DO I = 1, 6
  DO J = 1, 7
    Critical L
      S = S + M(I, J)
    End Critical
  End DO
End Selfsched DO
Barrier
Print NINT(S * 10.0)
End Barrier
Join
`},
	{"call-chain-param-forwarding", 4, `Force CHAIN of NP ident ME
Shared Real A(6)
Shared Real S
Private Integer I
End Declarations
Presched DO I = 1, 6
  A(I) = REAL(I)
End Presched DO
Barrier
End Barrier
Call OUTER(A, S)
Barrier
  Print 'sum', NINT(S)
End Barrier
IF (ME .EQ. 0) THEN
  Call BUMP(A(2))
  Print 'bumped', A(2)
End IF
Join
Forcesub OUTER(X, T)
Shared Real X(6)
Shared Real T
End Declarations
Call INNER(X, T)
Endsub
Forcesub INNER(Y, U)
Shared Real Y(6)
Shared Real U
Private Integer K
End Declarations
Barrier
  U = 0.0
End Barrier
Presched DO K = 1, 6
  Critical LC
    U = U + Y(K)
  End Critical
End Presched DO
Barrier
End Barrier
IF (U .GT. 100.0) THEN
  Call BUMP(Y(1))
End IF
Endsub
Forcesub BUMP(Z)
Shared Real Z
End Declarations
Z = Z + 10.0
Endsub
`},
	{"recursive-sub", 2, `Force REC of NP ident ME
Private Integer N, R
End Declarations
IF (ME .EQ. 0) THEN
  N = 5
  R = 1
  Call FACT(N, R)
  Print 'fact', R
End IF
Join
Forcesub FACT(N, R)
Private Integer N, R
Private Integer M
End Declarations
IF (N .GT. 1) THEN
  R = R * N
  M = N - 1
  Call FACT(M, R)
End IF
Endsub
`},
	{"private-arrays-fresh-per-call", 2, `Force PA of NP ident ME
End Declarations
IF (ME .EQ. 0) THEN
  Call WORK
  Call WORK
End IF
Join
Forcesub WORK()
Private Real B(4)
Private Integer K, Z
End Declarations
Z = 0
DO K = 1, 4
  IF (B(K) .EQ. 0.0) THEN
    Z = Z + 1
  End IF
  B(K) = REAL(K)
End DO
Print 'zeros', Z
Endsub
`},
	{"unit-local-shared", 3, `Force PERSIST of NP ident ME
End Declarations
Call TICK
Call TICK
Barrier
End Barrier
Call REPORT
Join
Forcesub TICK()
Shared Integer COUNT
End Declarations
Barrier
COUNT = COUNT + 1
End Barrier
Endsub
Forcesub REPORT()
Shared Integer COUNT
End Declarations
Barrier
Print 'count', COUNT
End Barrier
Endsub
`},
	{"pcase", 2, `Force PC of NP ident ME
Shared Integer A, B, C
Shared Integer N
End Declarations
Barrier
N = 3
End Barrier
Pcase
Usect
  A = A + 1
Csect (N .GT. 2)
  B = B + 1
Csect (N .GT. 5)
  C = C + 100
End Pcase
Barrier
Print A, B, C
End Barrier
Join
`},
	{"askfor-put", 4, `Force AF of NP ident ME
Shared Integer SEEN
Private Integer T
End Declarations
Barrier
  SEEN = 0
End Barrier
Askfor T = 4
  Critical CL
    SEEN = SEEN + 1
  End Critical
  IF (T .GT. 1) THEN
    Put T - 1
    Put T - 1
  End IF
End Askfor
Barrier
  Print 'tasks', SEEN
End Barrier
Join
`},
	{"reductions", 4, `Force RD of NP ident ME
Shared Integer TOTAL
Shared Real BIG
Shared Logical ALLIN, ANYODD
Private Integer I, MINE
End Declarations
MINE = 0
Presched DO I = 1, 40
  MINE = MINE + I
End Presched DO
GSUM TOTAL = MINE
GMAX BIG = REAL(ME) + 0.5
GAND ALLIN = TOTAL .EQ. 820
GOR ANYODD = MOD(ME, 2) .EQ. 1
Barrier
  Print TOTAL, BIG, ALLIN, ANYODD
End Barrier
Join
`},
	{"async-wave", 5, `Force WAVE of NP ident ME
Async Integer CELLS(8)
Private Integer X
End Declarations
IF (ME .EQ. 0) THEN
  Produce CELLS(1) = 100
End IF
IF (ME .GT. 0) THEN
  Consume CELLS(ME) into X
  Produce CELLS(ME) = X
  Produce CELLS(ME + 1) = X + 1
End IF
Barrier
End Barrier
IF (ME .EQ. 0) THEN
  Consume CELLS(NP) into X
  Print 'end of wave:', X
End IF
Join
`},
	{"async-copy-void", 1, `Force CV of NP ident ME
Async Real V
Private Real A
Private Integer K
End Declarations
Produce V = 4.5
Copy V into A
Print A
Consume V into K
Print K
Produce V = 1.0
Void V
Produce V = 2.25
Consume V into A
Print A
Join
`},
	{"while-convergence", 5, `Force WH of NP ident ME
Shared Integer ROUNDS
Shared Logical DONE
End Declarations
Barrier
  DONE = .FALSE.
  ROUNDS = 0
End Barrier
DO WHILE (.NOT. DONE)
  Barrier
    ROUNDS = ROUNDS + 1
    IF (ROUNDS .GE. 7) THEN
      DONE = .TRUE.
    End IF
  End Barrier
End DO
Barrier
Print 'rounds', ROUNDS
End Barrier
Join
`},
	{"negative-step", 2, `Force NEG of NP ident ME
Private Integer I
Shared Integer S
End Declarations
Barrier
S = 0
End Barrier
Selfsched DO I = 10, 2, -2
  Critical L
    S = S + I
  End Critical
End Selfsched DO
Barrier
Print S
End Barrier
Join
`},
}

// RuntimeErrors is the uniform runtime-error corpus: every process hits
// the error, at any NP, and every tier must report the identical
// "force runtime: line N: ..." message.
var RuntimeErrors = []Program{
	{"subscript", 1, `Force E of NP ident ME
Shared Real A(3)
End Declarations
A(4) = 1.0
Join
`},
	{"subscript-2d", 1, `Force E of NP ident ME
Private Real M(3, 3)
Private Integer I
End Declarations
I = 0
M(2, I) = 1.0
Join
`},
	{"div-zero", 1, `Force E of NP ident ME
Private Integer I
End Declarations
I = 1 / 0
Join
`},
	{"sqrt-negative", 1, `Force E of NP ident ME
Private Real X
End Declarations
X = SQRT(-1.0)
Join
`},
	{"mod-zero", 1, `Force E of NP ident ME
Private Integer I
End Declarations
I = MOD(5, 0)
Join
`},
	{"zero-step", 1, `Force E of NP ident ME
Private Integer I
End Declarations
DO I = 1, 3, 0
End DO
Join
`},
	{"async-bounds", 1, `Force E of NP ident ME
Async Integer C(3)
End Declarations
Produce C(4) = 1
Join
`},
}

// NonUniform is the fault-containment corpus: the error strikes only
// some processes while their peers block in (or head toward) a
// collective construct.  Each program must return the force runtime
// error — not hang — at NP in {2, 8} under every tier.
var NonUniform = []Program{
	{"before-a-barrier", 2, `Force E of NP ident ME
Private Integer I
End Declarations
IF (ME .EQ. 1) THEN
I = 1 / 0
END IF
Barrier
End Barrier
Join
`},
	{"inside-critical", 2, `Force E of NP ident ME
Shared Integer S
Private Integer I
End Declarations
Critical C
IF (ME .EQ. 1) THEN
I = 1 / 0
END IF
S = S + 1
End Critical
Barrier
End Barrier
Join
`},
	{"inside-doall-body", 2, `Force E of NP ident ME
Shared Real A(100)
Private Integer I
End Declarations
Selfsched DO I = 1, 100
A(I) = 1.0 / (I - 7)
A(I) = A(I) * REAL(I / (I - 7))
End Selfsched DO
Join
`},
	{"peer-waits-in-askfor", 2, `Force E of NP ident ME
Private Integer W, I
End Declarations
Askfor W = 1
I = 1 / 0
End Askfor
Join
`},
	{"consume-never-produced", 2, `Force E of NP ident ME
Async Integer V
Private Integer I
End Declarations
IF (ME .EQ. 0) THEN
Consume V into I
END IF
IF (ME .EQ. 1) THEN
I = 1 / 0
END IF
Join
`},
	{"reduction-missing-contributor", 2, `Force E of NP ident ME
Shared Integer T
Private Integer I
End Declarations
IF (ME .EQ. 1) THEN
I = 1 / 0
END IF
GSUM T = ME
Join
`},
}

// Chunk is the chunk-tier edge matrix; tests pick their own NP sweep
// (typically {1, 2, 8}).
var Chunk = []Program{
	{"step-gt-1", 0, `Force S3 of NP ident ME
Shared Real A(100)
Private Integer I
Private Real T
End Declarations
Presched DO I = 1, 100
  A(I) = 0.0
End Presched DO
Barrier
End Barrier
Presched DO I = 1, 97, 3
  A(I) = REAL(I) * 2.0
End Presched DO
Barrier
  T = 0.0
  DO I = 1, 100
    T = T + A(I)
  End DO
  Print NINT(T)
End Barrier
Join
`},
	{"negative-step-accum", 0, `Force NEGC of NP ident ME
Shared Real A(64)
Shared Integer S
Private Integer I
Private Real T
End Declarations
Barrier
  S = 0
End Barrier
Presched DO I = 1, 64
  A(I) = 1.0
End Presched DO
Barrier
End Barrier
Presched DO I = 60, 4, -4
  A(I) = REAL(I) + 0.5
  S = S + I
End Presched DO
Barrier
  T = 0.0
  DO I = 1, 64
    T = T + A(I)
  End DO
  Print S, NINT(T * 2.0)
End Barrier
Join
`},
	{"empty-range", 0, `Force EMPTY of NP ident ME
Shared Real A(10)
Shared Integer S
Private Integer I
Private Real T
End Declarations
Barrier
  S = 0
End Barrier
Presched DO I = 1, 10
  A(I) = 1.0
End Presched DO
Barrier
End Barrier
Presched DO I = 5, 1
  A(I) = REAL(I) * 100.0
  S = S + 1
End Presched DO
Barrier
  T = 0.0
  DO I = 1, 10
    T = T + A(I)
  End DO
  Print S, NINT(T)
End Barrier
Join
`},
	{"doall2-nested", 0, `Force D2 of NP ident ME
Shared Real M(8, 12)
Private Integer I, J
Private Real T
End Declarations
Presched DO I = 1, 8 also J = 1, 12
  M(I, J) = REAL(I * 100 + J)
End Presched DO
Barrier
  T = 0.0
  DO I = 1, 8
    DO J = 1, 12
      T = T + M(I, J)
    End DO
  End DO
  Print NINT(T)
End Barrier
Join
`},
	{"same-element-fallback", 0, `Force SAMEF of NP ident ME
Shared Real A(4)
Shared Real B(40)
Private Integer I
Private Real T
End Declarations
Presched DO I = 1, 40
  A(MOD(I, 4) + 1) = 7.0
  B(I) = REAL(I)
End Presched DO
Barrier
  T = 0.0
  DO I = 1, 4
    T = T + A(I)
  End DO
  DO I = 1, 40
    T = T + B(I)
  End DO
  Print NINT(T)
End Barrier
Join
`},
	{"uniform-hoist", 0, `Force UHOIST of NP ident ME
Shared Real A(50)
Shared Real C1, C2
Private Integer I
Private Real X, T
End Declarations
Barrier
  C1 = 1.5
  C2 = 0.25
End Barrier
Presched DO I = 1, 50
  X = (C1 * 2.0 + C2) * REAL(I)
  A(I) = X + C1
End Presched DO
Barrier
  T = 0.0
  DO I = 1, 50
    T = T + A(I)
  End DO
  Print NINT(T * 4.0)
End Barrier
Join
`},
	{"selfsched-accum", 0, `Force SSACC of NP ident ME
Shared Real A(300)
Shared Integer S
Private Integer I
Private Real T
End Declarations
Barrier
  S = 100
End Barrier
Selfsched DO I = 1, 300
  A(I) = REAL(I)
  S = S + I
  S = S - 1
End Selfsched DO
Barrier
  T = 0.0
  DO I = 1, 300
    T = T + A(I)
  End DO
  Print S, NINT(T)
End Barrier
Join
`},
	{"if-and-seqdo", 0, `Force IFSD of NP ident ME
Shared Real A(40)
Private Integer I, J
Private Real T
End Declarations
Presched DO I = 1, 40
  T = 0.0
  DO J = 1, 5
    T = T + REAL(I * J)
  End DO
  IF (MOD(I, 2) .EQ. 0) THEN
    A(I) = T
  ELSE
    A(I) = 0.0 - T
  End IF
End Presched DO
Barrier
  T = 0.0
  DO I = 1, 40
    T = T + A(I)
  End DO
  Print NINT(T)
End Barrier
Join
`},
	{"written-subscript-fallback", 0, `Force WSUB of NP ident ME
Shared Real A(30)
Private Integer I, K
Private Real T
End Declarations
Presched DO I = 1, 30
  K = I + 1
  A(K - 1) = REAL(I) * 3.0
End Presched DO
Barrier
  T = 0.0
  DO I = 1, 30
    T = T + A(I)
  End DO
  Print NINT(T)
End Barrier
Join
`},
	{"loop-var-final", 0, `Force LVF of NP ident ME
Private Integer I
End Declarations
I = 0 - 9
Presched DO I = 1, 37
End Presched DO
Print 'me', ME, I
Join
`},
}

// Fusion is the fusion-pass matrix: programs shaped so the chunk tier's
// fusion pass fires (or must provably decline).  Output must be
// byte-identical across every execution tier, at np in {1, 2, 8}, with
// fusion on and off.
var Fusion = []Program{
	// Three adjacent prescheduled DOALLs chained through disjoint
	// shared arrays: the region fuses into one join, two exit barriers
	// elided, because iteration i of every member runs on the same
	// process and only touches its own elements.
	{"fuse-presched-chain", 0, `Force FCHAIN of NP ident ME
Shared Real A(96)
Shared Real B(96)
Shared Real C(96)
Private Integer I
Private Real T
End Declarations
Presched DO I = 1, 96
  A(I) = REAL(I) * 0.5
End Presched DO
Presched DO I = 1, 96
  B(I) = A(I) + 1.0
End Presched DO
Presched DO I = 1, 96
  C(I) = A(I) + B(I)
End Presched DO
Barrier
  T = 0.0
  DO I = 1, 96
    T = T + C(I)
  End DO
  Print NINT(T)
End Barrier
Join
`},
	// The second DOALL reads A mirrored (A(97-I)): the combined uses of
	// A are NOT element-disjoint across iterations, so the region must
	// keep its barrier — fusing would let one process read elements a
	// peer has not written yet.
	{"fuse-overlap-declines", 0, `Force FMIRROR of NP ident ME
Shared Real A(96)
Shared Real B(96)
Private Integer I
Private Real T
End Declarations
Presched DO I = 1, 96
  A(I) = REAL(I)
End Presched DO
Presched DO I = 1, 96
  B(I) = A(97 - I) * 2.0
End Presched DO
Barrier
  T = 0.0
  DO I = 1, 96
    T = T + B(I)
  End DO
  Print NINT(T)
End Barrier
Join
`},
	// A DOALL pair with a trailing GSUM of the (per-process final)
	// index variable: the reduction folds into the region's closing
	// collective instead of running its own episode.
	{"fuse-gsum-tail", 0, `Force FGSUM of NP ident ME
Shared Real A(80)
Shared Real B(80)
Shared Integer S
Private Integer I
Private Real T
End Declarations
Presched DO I = 1, 80
  A(I) = REAL(I) * 2.0
End Presched DO
Presched DO I = 1, 80
  B(I) = A(I) + 3.0
End Presched DO
GSUM S = I
Barrier
  T = 0.0
  DO I = 1, 80
    T = T + A(I) + B(I)
  End DO
  Print S, NINT(T)
End Barrier
Join
`},
	// A REAL GMAX tail: extrema fold bit-for-bit in any order, so the
	// REAL reduction folds into the join under every reduce strategy.
	{"fuse-gmax-real", 0, `Force FGMAX of NP ident ME
Shared Real A(72)
Shared Real TOP
Private Integer I
Private Real T
End Declarations
Presched DO I = 1, 72
  A(I) = REAL(I) * 1.5
End Presched DO
GMAX TOP = REAL(I) * 0.5
Barrier
  T = 0.0
  DO I = 1, 72
    T = T + A(I)
  End DO
  Print TOP, NINT(T)
End Barrier
Join
`},
	// A folded reduction whose result feeds the next DOALL: the second
	// region opens after the join, so every process reads the same
	// reduced value.
	{"fuse-reduce-feeds-doall", 0, `Force FFEED of NP ident ME
Shared Real A(60)
Shared Real B(60)
Shared Integer S
Private Integer I
Private Real T
End Declarations
Presched DO I = 1, 60
  A(I) = REAL(I)
End Presched DO
GSUM S = ME + 1
Presched DO I = 1, 60
  B(I) = A(I) + REAL(S)
End Presched DO
Barrier
  T = 0.0
  DO I = 1, 60
    T = T + B(I)
  End DO
  Print S, NINT(T)
End Barrier
Join
`},
	// Two selfscheduled DOALLs with no cross-member references: safe to
	// fuse even though span assignment is dynamic, because no datum
	// written by one member is touched by the other.
	{"fuse-selfsched-pair", 0, `Force FSELF of NP ident ME
Shared Real A(120)
Shared Real B(120)
Private Integer I
Private Real T
End Declarations
Selfsched DO I = 1, 120
  A(I) = REAL(I) * 3.0
End Selfsched DO
Selfsched DO I = 1, 120
  B(I) = REAL(121 - I)
End Selfsched DO
Barrier
  T = 0.0
  DO I = 1, 120
    T = T + A(I) + B(I)
  End DO
  Print NINT(T)
End Barrier
Join
`},
	// Selfscheduled members with a cross-member flow (B(I) = A(I)):
	// iteration i of different members may run on different processes,
	// so the region must NOT fuse even though the uses are disjoint —
	// the disjointness argument only holds under prescheduling.
	{"fuse-selfsched-conflict-declines", 0, `Force FSCON of NP ident ME
Shared Real A(90)
Shared Real B(90)
Private Integer I
Private Real T
End Declarations
Selfsched DO I = 1, 90
  A(I) = REAL(I) * 2.0
End Selfsched DO
Selfsched DO I = 1, 90
  B(I) = A(I) + 1.0
End Selfsched DO
Barrier
  T = 0.0
  DO I = 1, 90
    T = T + B(I)
  End DO
  Print NINT(T)
End Barrier
Join
`},
}

// FusionFaults is the fused-region fault matrix: the error strikes in
// the middle of a fused region (here the second member, on only the
// process owning the faulting index once np > 1), and every tier — with
// fusion on and off — must abort the whole force with the identical
// "force runtime: line N: ..." message naming the faulting member's
// line, not the region's.
var FusionFaults = []Program{
	{"fault-in-second-member", 0, `Force FFAULT of NP ident ME
Shared Real A(40)
Shared Real B(40)
Private Integer I
End Declarations
Presched DO I = 1, 40
  A(I) = REAL(I)
End Presched DO
Presched DO I = 1, 40
  B(I) = REAL(100 / (I - 20))
End Presched DO
Join
`},
}
