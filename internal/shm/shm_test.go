package shm

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{Private: "private", Shared: "shared", Async: "async"}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", int(c), got, want)
		}
	}
	if got := Class(9).String(); got != "shm.Class(9)" {
		t.Errorf("unknown class String() = %q", got)
	}
}

func TestClassIsShared(t *testing.T) {
	if Private.IsShared() {
		t.Error("Private.IsShared() = true")
	}
	if !Shared.IsShared() || !Async.IsShared() {
		t.Error("Shared/Async IsShared() = false")
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{
		CompileTime:      "compile-time",
		LinkTime:         "link-time",
		RunTimePadded:    "run-time-padded",
		RunTimePageStart: "run-time-page-start",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
	if got := Policy(9).String(); got != "shm.Policy(9)" {
		t.Errorf("unknown policy String() = %q", got)
	}
}

func TestNewArenaValidation(t *testing.T) {
	for _, bad := range []struct{ page, base int }{{0, 0}, {-1, 0}, {64, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewArena(%d,%d) did not panic", bad.page, bad.base)
				}
			}()
			NewArena(RunTimePadded, bad.page, bad.base)
		}()
	}
}

func TestRegisterValidation(t *testing.T) {
	a := NewArena(RunTimePadded, 64, 0)
	if err := a.Register("m", Decl{Name: "x", Class: Shared, Size: 0}); err == nil {
		t.Error("zero-size decl accepted")
	}
	if err := a.Register("m", Decl{Name: "", Class: Shared, Size: 4}); err == nil {
		t.Error("unnamed decl accepted")
	}
	if err := a.Register("m", Decl{Name: "x", Class: Shared, Size: 4}); err != nil {
		t.Errorf("valid decl rejected: %v", err)
	}
	if err := a.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := a.Register("m2", Decl{Name: "y", Class: Private, Size: 4}); err == nil {
		t.Error("Register after Finalize accepted")
	}
	if err := a.Finalize(); err == nil {
		t.Error("double Finalize accepted")
	}
}

// layoutArena builds a representative mixed-module program.
func layoutArena(t *testing.T, p Policy, page, base int) *Arena {
	t.Helper()
	a := NewArena(p, page, base)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(a.Register("main",
		Decl{Name: "A", Class: Shared, Size: 100},
		Decl{Name: "I", Class: Private, Size: 8},
		Decl{Name: "V", Class: Async, Size: 8},
	))
	must(a.Register("sub1",
		Decl{Name: "B", Class: Shared, Size: 33},
		Decl{Name: "T", Class: Private, Size: 16},
	))
	if p == LinkTime {
		a.LinkerCommands()
	}
	must(a.Finalize())
	return a
}

func TestSeparationAllPolicies(t *testing.T) {
	for _, p := range []Policy{CompileTime, LinkTime, RunTimePadded, RunTimePageStart} {
		for _, base := range []int{0, 1, 63, 64, 1000} {
			a := layoutArena(t, p, 64, base)
			if err := a.CheckSeparation(); err != nil {
				t.Errorf("%v base=%d: %v", p, base, err)
			}
		}
	}
}

func TestAlliantSharedAreaPageAligned(t *testing.T) {
	a := layoutArena(t, RunTimePageStart, 128, 37)
	lo, _ := a.SharedSpan()
	if lo%128 != 0 {
		t.Errorf("Alliant shared area starts at %d, not page-aligned", lo)
	}
}

func TestEncorePaddingBothEnds(t *testing.T) {
	a := layoutArena(t, RunTimePadded, 64, 37)
	lo, hi := a.SharedSpan()
	if lo%64 != 0 || hi%64 != 0 {
		t.Errorf("Encore shared span [%d,%d) not page-padded at both ends", lo, hi)
	}
	// Private data must start at or after hi.
	for _, r := range a.Regions() {
		if !r.Class.IsShared() && r.Addr < hi {
			t.Errorf("private %s.%s at %d inside padded span [%d,%d)", r.Module, r.Name, r.Addr, lo, hi)
		}
	}
}

func TestCompileTimeNoPadding(t *testing.T) {
	a := layoutArena(t, CompileTime, 64, 37)
	lo, hi := a.SharedSpan()
	if lo != 37 {
		t.Errorf("compile-time shared area starts at %d, want base 37", lo)
	}
	if want := 37 + 100 + 8 + 33; hi != want {
		t.Errorf("compile-time shared area ends at %d, want %d", hi, want)
	}
}

func TestLinkTimeRequiresFirstPass(t *testing.T) {
	a := NewArena(LinkTime, 64, 0)
	if err := a.Register("main", Decl{Name: "A", Class: Shared, Size: 8}); err != nil {
		t.Fatal(err)
	}
	if err := a.Finalize(); err == nil {
		t.Fatal("link-time Finalize without LinkerCommands accepted")
	} else if !strings.Contains(err.Error(), "two Sequent runs") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestLinkerCommands(t *testing.T) {
	a := NewArena(LinkTime, 64, 0)
	a.Register("main", Decl{Name: "A", Class: Shared, Size: 100}, Decl{Name: "I", Class: Private, Size: 8})
	a.Register("sub", Decl{Name: "V", Class: Async, Size: 8})
	cmds := a.LinkerCommands()
	want := []string{"-shared main.A,100", "-shared sub.V,8"}
	if len(cmds) != len(want) {
		t.Fatalf("LinkerCommands = %v, want %v", cmds, want)
	}
	for i := range want {
		if cmds[i] != want[i] {
			t.Errorf("cmd[%d] = %q, want %q", i, cmds[i], want[i])
		}
	}
	// Non-link-time arenas have no linker involvement.
	b := NewArena(RunTimePadded, 64, 0)
	b.Register("main", Decl{Name: "A", Class: Shared, Size: 4})
	if got := b.LinkerCommands(); got != nil {
		t.Errorf("RunTimePadded LinkerCommands = %v, want nil", got)
	}
}

func TestLookupAndRegions(t *testing.T) {
	a := layoutArena(t, RunTimePadded, 64, 0)
	r, ok := a.Lookup("sub1", "B")
	if !ok {
		t.Fatal("Lookup(sub1.B) failed")
	}
	if r.Size != 33 || !r.Class.IsShared() {
		t.Errorf("Lookup(sub1.B) = %+v", r)
	}
	if _, ok := a.Lookup("sub1", "missing"); ok {
		t.Error("Lookup of missing name succeeded")
	}
	regs := a.Regions()
	if len(regs) != 5 {
		t.Fatalf("Regions() has %d entries, want 5", len(regs))
	}
	// Shared regions come first and are contiguous.
	if !regs[0].Class.IsShared() || !regs[1].Class.IsShared() || !regs[2].Class.IsShared() {
		t.Error("shared regions not placed first")
	}
	if regs[1].Addr != regs[0].End() || regs[2].Addr != regs[1].End() {
		t.Error("shared regions not contiguous")
	}
}

func TestCheckSeparationBeforeFinalize(t *testing.T) {
	a := NewArena(RunTimePadded, 64, 0)
	if err := a.CheckSeparation(); err == nil {
		t.Error("CheckSeparation before Finalize accepted")
	}
}

func TestStartupChain(t *testing.T) {
	a := NewArena(RunTimePadded, 64, 0)
	c := NewStartupChain(a)
	if err := c.Startup("main", Decl{Name: "A", Class: Shared, Size: 8}); err != nil {
		t.Fatal(err)
	}
	if err := c.Startup("sub1", Decl{Name: "B", Class: Shared, Size: 8}); err != nil {
		t.Fatal(err)
	}
	if err := c.Startup("sub2", Decl{Name: "P", Class: Private, Size: 8}); err != nil {
		t.Fatal(err)
	}
	calls := c.Calls()
	want := []string{"main", "sub1", "sub2"}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("Calls() = %v, want %v", calls, want)
		}
	}
	if err := a.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckSeparation(); err != nil {
		t.Error(err)
	}
}

// Property: for random declaration mixes, bases and page sizes, every
// policy produces a layout that passes CheckSeparation.
func TestQuickSeparation(t *testing.T) {
	prop := func(policyIdx uint8, baseRaw uint16, sizes []uint8, classes []uint8) bool {
		policies := []Policy{CompileTime, LinkTime, RunTimePadded, RunTimePageStart}
		p := policies[int(policyIdx)%len(policies)]
		page := 64
		a := NewArena(p, page, int(baseRaw)%500)
		n := len(sizes)
		if len(classes) < n {
			n = len(classes)
		}
		for i := 0; i < n; i++ {
			size := int(sizes[i])%200 + 1
			class := Class(int(classes[i]) % 3)
			if err := a.Register("m", Decl{Name: fmt.Sprintf("v%d", i), Class: class, Size: size}); err != nil {
				return false
			}
		}
		if p == LinkTime {
			a.LinkerCommands()
		}
		if err := a.Finalize(); err != nil {
			return false
		}
		return a.CheckSeparation() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPageMap(t *testing.T) {
	a := NewArena(RunTimePadded, 64, 0)
	if a.PageMap() != "" {
		t.Error("PageMap before Finalize should be empty")
	}
	// 100 bytes shared (2 pages, second partially padding), 8 private.
	a.Register("m",
		Decl{Name: "A", Class: Shared, Size: 100},
		Decl{Name: "I", Class: Private, Size: 8},
	)
	if err := a.Finalize(); err != nil {
		t.Fatal(err)
	}
	got := a.PageMap()
	if got != "SSP" {
		t.Errorf("PageMap = %q, want SSP (two shared pages then a private page)", got)
	}
	// No page mixes shared and private markers by construction.
	for _, c := range got {
		if c != 'S' && c != 'P' && c != 'p' && c != '.' {
			t.Errorf("unexpected page marker %q", string(c))
		}
	}
}

func TestPageMapShowsPadding(t *testing.T) {
	// 8 shared bytes in a 64-byte page: the rest of the page is padding
	// ('p' only when no region touches it — here A covers page 0, so we
	// need a second page of pure padding; use page-start policy with a
	// shared size that leaves a padding tail page).
	a := NewArena(RunTimePadded, 64, 0)
	a.Register("m", Decl{Name: "A", Class: Shared, Size: 65}) // pages 0-1
	a.Register("m", Decl{Name: "Q", Class: Private, Size: 4})
	if err := a.Finalize(); err != nil {
		t.Fatal(err)
	}
	got := a.PageMap()
	if got != "SSP" {
		t.Errorf("PageMap = %q, want SSP", got)
	}
}

func TestPageMapEmptyArena(t *testing.T) {
	a := NewArena(CompileTime, 64, 0)
	if err := a.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := a.PageMap(); got != "" {
		t.Errorf("empty arena PageMap = %q", got)
	}
}

// TestLookupIndexed exercises the Finalize-built lookup index: hits
// across modules (including the same variable name registered by two
// modules), misses, and the unfinalized arena.
func TestLookupIndexed(t *testing.T) {
	a := NewArena(RunTimePadded, 64, 10)
	if _, ok := a.Lookup("main", "X"); ok {
		t.Error("Lookup before Finalize returned a region")
	}
	if err := a.Register("main",
		Decl{Name: "X", Class: Shared, Size: 8},
		Decl{Name: "Y", Class: Private, Size: 16},
	); err != nil {
		t.Fatal(err)
	}
	if err := a.Register("sub",
		Decl{Name: "X", Class: Shared, Size: 24},
		Decl{Name: "Q", Class: Async, Size: 8},
	); err != nil {
		t.Fatal(err)
	}
	if err := a.Finalize(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		module, name string
		size         int
		shared       bool
	}{
		{"main", "X", 8, true},
		{"main", "Y", 16, false},
		{"sub", "X", 24, true},
		{"sub", "Q", 8, true},
	} {
		r, ok := a.Lookup(tc.module, tc.name)
		if !ok {
			t.Fatalf("Lookup(%s, %s) missed", tc.module, tc.name)
		}
		if r.Size != tc.size || r.Class.IsShared() != tc.shared {
			t.Errorf("Lookup(%s, %s) = size %d shared %v, want size %d shared %v",
				tc.module, tc.name, r.Size, r.Class.IsShared(), tc.size, tc.shared)
		}
		// The indexed result must be the placed region.
		found := false
		for _, reg := range a.Regions() {
			if reg.Module == tc.module && reg.Name == tc.name && reg.Addr == r.Addr {
				found = true
			}
		}
		if !found {
			t.Errorf("Lookup(%s, %s) returned an unplaced region", tc.module, tc.name)
		}
	}
	if _, ok := a.Lookup("main", "NOPE"); ok {
		t.Error("Lookup of an unregistered name succeeded")
	}
	if _, ok := a.Lookup("ghost", "X"); ok {
		t.Error("Lookup of an unregistered module succeeded")
	}
}

// BenchmarkLookup measures the indexed decl lookup (formerly a linear
// scan over every region).
func BenchmarkLookup(b *testing.B) {
	a := NewArena(CompileTime, 64, 0)
	for m := 0; m < 16; m++ {
		mod := fmt.Sprintf("m%d", m)
		decls := make([]Decl, 64)
		for i := range decls {
			decls[i] = Decl{Name: fmt.Sprintf("V%d", i), Class: Shared, Size: 8}
		}
		if err := a.Register(mod, decls...); err != nil {
			b.Fatal(err)
		}
	}
	if err := a.Finalize(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := a.Lookup("m15", "V63"); !ok {
			b.Fatal("miss")
		}
	}
}
