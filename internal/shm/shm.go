// Package shm simulates the shared-memory designation layer of the Force's
// machine-dependent implementation (paper §4.1.2).
//
// The six host machines differed in *when* and *how* memory became shared:
//
//   - Flex/32 and HEP: variables are declared shared at compile time — the
//     preprocessor strips the word "shared" and places shared/async
//     variables in COMMON areas shared between processes;
//   - Sequent Balance: sharing happens at link time — every program module
//     gets a startup routine naming its shared variables, the main
//     program's startup calls each of them, and a first run emits linker
//     commands that a shell pipes into the real link-and-run;
//   - Encore Multimax: sharing happens at run time — shared variables are
//     stored in shared pages, and the Force "calculat[es] the address of
//     shared pages and padd[s] the extra space at the beginning and the
//     end of the shared area to ensure separation of shared and private
//     declarations";
//   - Alliant FX/8: like the Encore "except that all sharing must start at
//     the beginning of a page".
//
// This package models that layer with a symbolic address arena: modules
// register declarations, a startup chain mimics the generated startup
// routines, Finalize lays memory out under the machine's policy, and
// CheckSeparation verifies the property the padding exists to provide —
// no page contains both shared and private data.
package shm

import (
	"fmt"
	"sort"
)

// Class is the Force storage class of a declaration: the paper's
// shared/private classification "orthogonal to the Fortran local/common
// classification", plus async (shared with a full/empty state).
type Class int

const (
	// Private variables are strictly local to one process (the Force
	// default).
	Private Class = iota
	// Shared variables are uniformly shared among all processes.
	Shared
	// Async variables are shared and carry a full/empty state.
	Async
)

// String returns the Force keyword for the class.
func (c Class) String() string {
	switch c {
	case Private:
		return "private"
	case Shared:
		return "shared"
	case Async:
		return "async"
	default:
		return fmt.Sprintf("shm.Class(%d)", int(c))
	}
}

// IsShared reports whether the class lives in shared pages.
func (c Class) IsShared() bool { return c == Shared || c == Async }

// Policy is a machine's sharing mechanism.
type Policy int

const (
	// CompileTime sharing (HEP, Flex/32): shared declarations are placed
	// in COMMON areas at compile time; every module is self-contained and
	// no page padding is required because the hardware shares all memory.
	CompileTime Policy = iota
	// LinkTime sharing (Sequent): the linker must be given the names of
	// all shared variables; the model requires the two-pass protocol
	// (LinkerCommands before Finalize) and page-aligns the shared area.
	LinkTime
	// RunTimePadded sharing (Encore): the shared area may start anywhere;
	// the implementation pads to page boundaries at both ends.
	RunTimePadded
	// RunTimePageStart sharing (Alliant): as RunTimePadded, but the
	// shared area must begin exactly at a page boundary.
	RunTimePageStart
)

// String returns the policy's short name.
func (p Policy) String() string {
	switch p {
	case CompileTime:
		return "compile-time"
	case LinkTime:
		return "link-time"
	case RunTimePadded:
		return "run-time-padded"
	case RunTimePageStart:
		return "run-time-page-start"
	default:
		return fmt.Sprintf("shm.Policy(%d)", int(p))
	}
}

// Decl is one variable declaration contributed by a module.
type Decl struct {
	Name  string
	Class Class
	Size  int // bytes; must be positive
}

// Region is a placed declaration in the symbolic address space.
type Region struct {
	Decl
	Module string
	Addr   int
}

// End returns the first address past the region.
func (r Region) End() int { return r.Addr + r.Size }

// Arena is a symbolic address-space model for one Force program on one
// machine.  Usage: Register declarations module by module (the Force
// preprocessor's startup-routine generation), then Finalize, then query
// placements and run CheckSeparation.
type Arena struct {
	policy    Policy
	pageSize  int
	base      int // first address of the program's data segment
	modules   []string
	declsBy   map[string][]Decl
	finalized bool
	regions   []Region
	index     map[string]int // qualified name → regions index, built at Finalize
	sharedLo  int            // shared area span after Finalize (page-aligned outer bounds)
	sharedHi  int
	linkSeen  bool // LinkTime: LinkerCommands consulted (first pass done)
}

// NewArena creates an arena with the given policy and page size.  base is
// the simulated address where the program's data begins; a non-page-aligned
// base exercises the padding logic exactly as an arbitrary 1989 loader
// address did.
func NewArena(policy Policy, pageSize, base int) *Arena {
	if pageSize <= 0 {
		panic(fmt.Sprintf("shm: pageSize = %d, need > 0", pageSize))
	}
	if base < 0 {
		panic(fmt.Sprintf("shm: base = %d, need >= 0", base))
	}
	return &Arena{
		policy:   policy,
		pageSize: pageSize,
		base:     base,
		declsBy:  make(map[string][]Decl),
	}
}

// PageSize returns the arena's page size.
func (a *Arena) PageSize() int { return a.pageSize }

// Policy returns the arena's sharing policy.
func (a *Arena) Policy() Policy { return a.policy }

// Register contributes a module's declarations, in declaration order.
// Registering after Finalize is an error, mirroring the fact that the
// startup routines run before the force is created.
func (a *Arena) Register(module string, decls ...Decl) error {
	if a.finalized {
		return fmt.Errorf("shm: Register(%q) after Finalize", module)
	}
	for _, d := range decls {
		if d.Size <= 0 {
			return fmt.Errorf("shm: declaration %s.%s has size %d", module, d.Name, d.Size)
		}
		if d.Name == "" {
			return fmt.Errorf("shm: unnamed declaration in module %q", module)
		}
	}
	if _, seen := a.declsBy[module]; !seen {
		a.modules = append(a.modules, module)
	}
	a.declsBy[module] = append(a.declsBy[module], decls...)
	return nil
}

// LinkerCommands returns the per-variable commands the Sequent first pass
// produced for the linker ("the startup routine ... will provide the
// linker commands to a UNIX shell").  For LinkTime arenas this must be
// called before Finalize — the program ran twice on the Sequent, and
// skipping the first run is exactly the porting mistake the model rejects.
// For other policies it returns nil (no linker involvement).
func (a *Arena) LinkerCommands() []string {
	if a.policy != LinkTime {
		return nil
	}
	a.linkSeen = true
	var cmds []string
	for _, m := range a.modules {
		for _, d := range a.declsBy[m] {
			if d.Class.IsShared() {
				cmds = append(cmds, fmt.Sprintf("-shared %s,%d", qualify(m, d.Name), d.Size))
			}
		}
	}
	return cmds
}

func qualify(module, name string) string { return module + "." + name }

// roundUp rounds x up to the next multiple of align.
func roundUp(x, align int) int { return (x + align - 1) / align * align }

// Finalize lays out every registered declaration under the policy.  Shared
// and async declarations are placed contiguously in the shared area;
// private declarations are placed after it (conceptually: in each
// process's private segment).  The shared area's outer bounds are padded
// or aligned per policy so that CheckSeparation holds by construction.
func (a *Arena) Finalize() error {
	if a.finalized {
		return fmt.Errorf("shm: Finalize called twice")
	}
	if a.policy == LinkTime && !a.linkSeen {
		return fmt.Errorf("shm: link-time sharing requires LinkerCommands (the first of the two Sequent runs) before Finalize")
	}
	a.finalized = true

	// Gather in module order, shared first.
	var shared, private []Region
	for _, m := range a.modules {
		for _, d := range a.declsBy[m] {
			r := Region{Decl: d, Module: m}
			if d.Class.IsShared() {
				shared = append(shared, r)
			} else {
				private = append(private, r)
			}
		}
	}

	cursor := a.base
	switch a.policy {
	case CompileTime:
		// COMMON-area placement: shared data simply occupies the
		// front of the data segment; the machine shares everything,
		// so no alignment is needed.
	case RunTimePadded, LinkTime:
		// "Padding the extra space at the beginning ... of the shared
		// area": advance to the next page boundary so the first
		// shared page contains no earlier private data.
		cursor = roundUp(cursor, a.pageSize)
	case RunTimePageStart:
		// Alliant: "all sharing must start at the beginning of a
		// page" — identical start requirement, and we also verify it
		// below as a hard invariant.
		cursor = roundUp(cursor, a.pageSize)
	default:
		return fmt.Errorf("shm: unknown policy %d", int(a.policy))
	}

	a.sharedLo = cursor
	for i := range shared {
		shared[i].Addr = cursor
		cursor += shared[i].Size
	}
	sharedEnd := cursor
	switch a.policy {
	case CompileTime:
		a.sharedHi = sharedEnd
	default:
		// "...and the end of the shared area": pad the tail so the
		// last shared page contains no private data.
		a.sharedHi = roundUp(sharedEnd, a.pageSize)
		cursor = a.sharedHi
	}

	if a.policy == RunTimePageStart && a.sharedLo%a.pageSize != 0 {
		return fmt.Errorf("shm: internal: Alliant shared area starts at %d, not page-aligned", a.sharedLo)
	}

	for i := range private {
		private[i].Addr = cursor
		cursor += private[i].Size
	}

	a.regions = append(shared, private...)
	// Index the placements so Lookup is a map hit instead of a linear
	// scan over every region; the first registration of a qualified name
	// wins, matching the scan order the index replaces.
	a.index = make(map[string]int, len(a.regions))
	for i, r := range a.regions {
		q := qualify(r.Module, r.Name)
		if _, dup := a.index[q]; !dup {
			a.index[q] = i
		}
	}
	return nil
}

// Regions returns all placed regions (shared first, then private), valid
// after Finalize.
func (a *Arena) Regions() []Region {
	out := make([]Region, len(a.regions))
	copy(out, a.regions)
	return out
}

// Lookup returns the placed region for module.name, valid after
// Finalize (indexed: one map hit, not a scan over every region).
func (a *Arena) Lookup(module, name string) (Region, bool) {
	if i, ok := a.index[qualify(module, name)]; ok {
		return a.regions[i], true
	}
	return Region{}, false
}

// SharedSpan returns the outer bounds [lo, hi) of the shared area,
// including padding, valid after Finalize.
func (a *Arena) SharedSpan() (lo, hi int) { return a.sharedLo, a.sharedHi }

// pageOf returns the page number containing address x.
func (a *Arena) pageOf(x int) int { return x / a.pageSize }

// CheckSeparation verifies the property the Encore/Alliant padding exists
// to provide: no overlap between any two regions, every shared region lies
// within the shared span, every private region lies outside it, and — for
// the page-granular policies — no page holds both shared and private data.
// For CompileTime arenas the page condition is vacuous (hardware shares
// all of memory), but overlap checking still applies.
func (a *Arena) CheckSeparation() error {
	if !a.finalized {
		return fmt.Errorf("shm: CheckSeparation before Finalize")
	}
	// Overlap: sort by address and scan.
	rs := a.Regions()
	sort.Slice(rs, func(i, j int) bool { return rs[i].Addr < rs[j].Addr })
	for i := 1; i < len(rs); i++ {
		if rs[i].Addr < rs[i-1].End() {
			return fmt.Errorf("shm: regions %s and %s overlap",
				qualify(rs[i-1].Module, rs[i-1].Name), qualify(rs[i].Module, rs[i].Name))
		}
	}
	for _, r := range rs {
		if r.Class.IsShared() {
			if r.Addr < a.sharedLo || r.End() > a.sharedHi {
				return fmt.Errorf("shm: shared region %s outside shared span", qualify(r.Module, r.Name))
			}
		} else if r.Addr < a.sharedHi && r.End() > a.sharedLo {
			return fmt.Errorf("shm: private region %s inside shared span", qualify(r.Module, r.Name))
		}
	}
	if a.policy == CompileTime {
		return nil
	}
	// Page granularity: classify each touched page.
	type use struct{ shared, private bool }
	pages := make(map[int]*use)
	for _, r := range rs {
		for p := a.pageOf(r.Addr); p <= a.pageOf(r.End()-1); p++ {
			u := pages[p]
			if u == nil {
				u = &use{}
				pages[p] = u
			}
			if r.Class.IsShared() {
				u.shared = true
			} else {
				u.private = true
			}
		}
	}
	for p, u := range pages {
		if u.shared && u.private {
			return fmt.Errorf("shm: page %d holds both shared and private data", p)
		}
	}
	return nil
}

// PageMap renders the arena's page occupancy as one character per page —
// 'S' all-shared, 'P' all-private, 'p' shared-area padding, '.' untouched
// — the picture behind the Encore/Alliant padding rules.  Valid after
// Finalize.
func (a *Arena) PageMap() string {
	if !a.finalized {
		return ""
	}
	lastAddr := a.sharedHi
	for _, r := range a.regions {
		if r.End() > lastAddr {
			lastAddr = r.End()
		}
	}
	if lastAddr == 0 {
		return ""
	}
	nPages := a.pageOf(lastAddr-1) + 1
	cells := make([]byte, nPages)
	for i := range cells {
		cells[i] = '.'
	}
	// Padding: pages of the shared span not fully used by regions start
	// as 'p' and are upgraded below.
	for p := a.pageOf(a.sharedLo); a.sharedLo < a.sharedHi && p <= a.pageOf(a.sharedHi-1); p++ {
		cells[p] = 'p'
	}
	for _, r := range a.regions {
		mark := byte('P')
		if r.Class.IsShared() {
			mark = 'S'
		}
		for p := a.pageOf(r.Addr); p <= a.pageOf(r.End()-1); p++ {
			cells[p] = mark
		}
	}
	return string(cells)
}

// StartupChain models the generated startup subroutines: the main
// program's startup calls the startup routine of every Force subroutine so
// that all shared declarations are known in one place (the Sequent and
// Encore mechanism).  It is a thin recorded-call harness used by the
// preprocessor tests.
type StartupChain struct {
	arena *Arena
	calls []string
}

// NewStartupChain wraps an arena.
func NewStartupChain(a *Arena) *StartupChain {
	return &StartupChain{arena: a}
}

// Startup registers a module's declarations and records the call, exactly
// one call per program segment.
func (s *StartupChain) Startup(module string, decls ...Decl) error {
	s.calls = append(s.calls, module)
	return s.arena.Register(module, decls...)
}

// Calls returns the recorded startup-call order.
func (s *StartupChain) Calls() []string {
	out := make([]string, len(s.calls))
	copy(out, s.calls)
	return out
}
