// Package monitor implements the Argonne monitor abstraction of Lusk &
// Overbeek — the paper's citation [LO83], "Implementation of monitors
// with macros: A programming aid for the HEP and other parallel
// processors" — which is the machinery the Force's Askfor construct is
// built from (§3.3) and a second lineage (besides [AJ87]) for barrier
// implementations.
//
// A Monitor couples one machine lock (from the same generic lock layer
// the Force uses) with named delay queues.  Operations follow the macro
// set: enter/exit for mutual exclusion, delay to block on a queue while
// releasing the monitor, and continue (Resume here; continue is a Go
// keyword) to wake a waiter.  Resume uses Mesa semantics — the woken
// process re-enters the monitor rather than receiving it — which is what
// the spin-lock realizations of the original macros provided in effect;
// all monitor invariants must therefore be re-checked after Delay
// returns.
//
// On top of the core abstraction the package provides the two monitors
// the report is known for: the askfor monitor (a self-terminating work
// pool) and the barrier monitor.
package monitor

import (
	"fmt"

	"repro/internal/lock"
)

// Monitor is one Argonne-style monitor.
type Monitor struct {
	mu     lock.Lock
	queues map[string]*queue
}

// queue is a FIFO of parked waiters; each waiter owns a channel that is
// closed to wake it.
type queue struct {
	waiters []chan struct{}
}

// New creates a monitor whose lock comes from factory (nil defaults to
// system locks, the portable choice).
func New(factory func() lock.Lock) *Monitor {
	if factory == nil {
		factory = lock.Factory(lock.System)
	}
	return &Monitor{mu: factory(), queues: map[string]*queue{}}
}

// Enter acquires the monitor.
func (m *Monitor) Enter() { m.mu.Lock() }

// Exit releases the monitor.
func (m *Monitor) Exit() { m.mu.Unlock() }

// With runs body inside the monitor.
func (m *Monitor) With(body func()) {
	m.Enter()
	defer m.Exit()
	body()
}

func (m *Monitor) queue(name string) *queue {
	q, ok := m.queues[name]
	if !ok {
		q = &queue{}
		m.queues[name] = q
	}
	return q
}

// Delay atomically releases the monitor and parks the caller on the named
// queue; it re-enters the monitor before returning.  Must be called with
// the monitor held.  Mesa semantics: re-check the waited-for condition in
// a loop around Delay.
func (m *Monitor) Delay(name string) {
	ch := make(chan struct{})
	q := m.queue(name)
	q.waiters = append(q.waiters, ch)
	m.Exit()
	<-ch
	m.Enter()
}

// Resume wakes the longest-delayed waiter of the named queue, if any, and
// reports whether one was woken.  Must be called with the monitor held
// (the [LO83] continue operation).
func (m *Monitor) Resume(name string) bool {
	q := m.queue(name)
	if len(q.waiters) == 0 {
		return false
	}
	ch := q.waiters[0]
	q.waiters = q.waiters[1:]
	close(ch)
	return true
}

// ResumeAll wakes every waiter of the named queue and returns how many
// were woken.  Must be called with the monitor held.
func (m *Monitor) ResumeAll(name string) int {
	q := m.queue(name)
	n := len(q.waiters)
	for _, ch := range q.waiters {
		close(ch)
	}
	q.waiters = nil
	return n
}

// Waiting reports the number of processes delayed on the named queue.
// Must be called with the monitor held.
func (m *Monitor) Waiting(name string) int {
	return len(m.queue(name).waiters)
}

// AskFor is the [LO83] askfor monitor: a shared pool of work units with
// built-in termination detection.  Workers loop on Get; Put adds work
// (from inside or outside a work unit); Get returns ok=false exactly when
// the pool is empty and no work unit is still executing, at which point
// every present and future Get unblocks — "the problem is solved".
type AskFor struct {
	m           *Monitor
	stack       []any
	outstanding int // queued + executing work units
	done        bool
}

// NewAskFor creates an askfor monitor over the given lock factory.
func NewAskFor(factory func() lock.Lock) *AskFor {
	return &AskFor{m: New(factory)}
}

// Put adds one unit of work.  Calling Put after termination is an error
// in the [LO83] protocol; it panics here to surface protocol misuse.
func (a *AskFor) Put(work any) {
	a.m.Enter()
	defer a.m.Exit()
	if a.done {
		panic("monitor: Put after askfor termination")
	}
	a.stack = append(a.stack, work)
	a.outstanding++
	a.m.Resume("work")
}

// Get obtains the next unit of work, blocking while the pool is empty but
// work units are still executing.  The caller must call TaskDone after
// finishing the unit.  ok=false signals global termination.
func (a *AskFor) Get() (work any, ok bool) {
	a.m.Enter()
	defer a.m.Exit()
	for {
		if len(a.stack) > 0 {
			w := a.stack[len(a.stack)-1]
			a.stack = a.stack[:len(a.stack)-1]
			return w, true
		}
		if a.done || a.outstanding == 0 {
			a.done = true
			a.m.ResumeAll("work")
			return nil, false
		}
		a.m.Delay("work")
	}
}

// TaskDone reports completion of a work unit obtained from Get.  When the
// last outstanding unit completes with an empty pool, termination is
// broadcast.
func (a *AskFor) TaskDone() {
	a.m.Enter()
	defer a.m.Exit()
	if a.outstanding <= 0 {
		panic("monitor: TaskDone without matching Get")
	}
	a.outstanding--
	if a.outstanding == 0 && len(a.stack) == 0 {
		a.done = true
		a.m.ResumeAll("work")
	}
}

// Work runs the standard worker loop: repeatedly Get a unit, run body
// (which may Put new units), and mark it done, until termination.
func (a *AskFor) Work(body func(work any)) {
	for {
		w, ok := a.Get()
		if !ok {
			return
		}
		body(w)
		a.TaskDone()
	}
}

// Barrier is the [LO83] barrier monitor: processes Wait until n have
// arrived; the last arrival releases everyone.  It is a second,
// monitor-shaped implementation lineage beside the barrier package's
// lock-relay and log-depth algorithms.
type Barrier struct {
	m       *Monitor
	n       int
	arrived int
	episode uint64
}

// NewBarrier creates a monitor barrier for n processes.
func NewBarrier(n int, factory func() lock.Lock) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("monitor: barrier n = %d", n))
	}
	return &Barrier{m: New(factory), n: n}
}

// Wait blocks until all n processes of the episode have arrived.
func (b *Barrier) Wait() {
	b.m.Enter()
	defer b.m.Exit()
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.episode++
		b.m.ResumeAll("barrier")
		return
	}
	e := b.episode
	for b.episode == e {
		b.m.Delay("barrier")
	}
}
