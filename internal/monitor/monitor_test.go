package monitor

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/lock"
)

func TestMonitorMutualExclusion(t *testing.T) {
	for _, lk := range lock.Kinds() {
		lk := lk
		t.Run(lk.String(), func(t *testing.T) {
			t.Parallel()
			m := New(lock.Factory(lk))
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						m.With(func() { counter++ })
					}
				}()
			}
			wg.Wait()
			if counter != 3000 {
				t.Errorf("counter = %d", counter)
			}
		})
	}
}

func TestDelayResume(t *testing.T) {
	m := New(nil)
	ready := false
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Enter()
			for !ready {
				m.Delay("q")
			}
			m.Exit()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}()
	}
	// Wait until all three are delayed, then wake them.
	for {
		m.Enter()
		n := m.Waiting("q")
		if n == 3 {
			ready = true
			if woken := m.ResumeAll("q"); woken != 3 {
				t.Errorf("ResumeAll woke %d", woken)
			}
			m.Exit()
			break
		}
		m.Exit()
	}
	wg.Wait()
	if len(order) != 3 {
		t.Errorf("only %d waiters returned", len(order))
	}
}

func TestResumeOnEmptyQueue(t *testing.T) {
	m := New(nil)
	m.Enter()
	if m.Resume("nobody") {
		t.Error("Resume on empty queue reported a wake")
	}
	if m.ResumeAll("nobody") != 0 {
		t.Error("ResumeAll on empty queue woke someone")
	}
	m.Exit()
}

func TestResumeIsFIFO(t *testing.T) {
	m := New(nil)
	gate := make([]bool, 2)
	var first atomic.Int64
	first.Store(-1)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Enter()
			for !gate[i] {
				m.Delay("q")
			}
			m.Exit()
			first.CompareAndSwap(-1, int64(i))
		}()
		// Serialize arrival so the delay order is known.
		for {
			m.Enter()
			n := m.Waiting("q")
			m.Exit()
			if n == i+1 {
				break
			}
		}
	}
	// Wake one: must be waiter 0 (FIFO); its gate opens, waiter 1's not.
	m.Enter()
	gate[0] = true
	m.Resume("q")
	m.Exit()
	for first.Load() == -1 {
	}
	if first.Load() != 0 {
		t.Errorf("first woken = %d, want 0 (FIFO)", first.Load())
	}
	m.Enter()
	gate[1] = true
	m.ResumeAll("q")
	m.Exit()
	wg.Wait()
}

func TestAskForStaticPool(t *testing.T) {
	a := NewAskFor(nil)
	const tasks = 100
	for i := 0; i < tasks; i++ {
		a.Put(i)
	}
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.Work(func(work any) { done.Add(1) })
		}()
	}
	wg.Wait()
	if done.Load() != tasks {
		t.Errorf("completed %d tasks, want %d", done.Load(), tasks)
	}
	// After termination, Get keeps reporting done.
	if _, ok := a.Get(); ok {
		t.Error("Get returned work after termination")
	}
}

func TestAskForDynamicTree(t *testing.T) {
	a := NewAskFor(lock.Factory(lock.TTAS))
	a.Put(1)
	const depth = 9
	var nodes atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.Work(func(work any) {
				nodes.Add(1)
				if d := work.(int); d < depth {
					a.Put(d + 1)
					a.Put(d + 1)
				}
			})
		}()
	}
	wg.Wait()
	if want := int64(1<<depth - 1); nodes.Load() != want {
		t.Errorf("tree nodes = %d, want %d", nodes.Load(), want)
	}
}

func TestAskForProtocolViolations(t *testing.T) {
	a := NewAskFor(nil)
	if _, ok := a.Get(); ok { // empty pool, nothing outstanding
		t.Fatal("Get on empty pool returned work")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Put after termination did not panic")
			}
		}()
		a.Put(1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unmatched TaskDone did not panic")
			}
		}()
		a.TaskDone()
	}()
}

func TestBarrierMonitor(t *testing.T) {
	const np, episodes = 5, 40
	b := NewBarrier(np, nil)
	var counter atomic.Int64
	var bad atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < np; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := 1; e <= episodes; e++ {
				counter.Add(1)
				b.Wait()
				if counter.Load() < int64(np*e) {
					bad.Add(1)
				}
				b.Wait()
			}
		}()
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Errorf("%d premature releases", bad.Load())
	}
}

func TestBarrierMonitorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0, nil)
}

// Property: the askfor monitor conserves dynamically generated work for
// random spawn patterns and worker counts.
func TestQuickAskForConservation(t *testing.T) {
	prop := func(spawns []uint8, workersRaw uint8) bool {
		workers := int(workersRaw)%5 + 1
		a := NewAskFor(nil)
		want := int64(len(spawns))
		for i := range spawns {
			a.Put(int(spawns[i]) % 3)
		}
		if want == 0 {
			_, ok := a.Get()
			return !ok
		}
		var did atomic.Int64
		var spawned atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				a.Work(func(work any) {
					did.Add(1)
					// Each unit spawns work.(int) children once.
					for k := 0; k < work.(int); k++ {
						spawned.Add(1)
						a.Put(0)
					}
				})
			}()
		}
		wg.Wait()
		return did.Load() == want+spawned.Load()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
