package vet

// The flow pass: a forward dataflow walk over one unit's statements
// carrying, per private scalar, a point of the uniform/varying lattice
// (internal/uniform) and, per private INTEGER scalar, a known constant
// value.  The walk classifies every condition as uniform (every process
// evaluates the same value, so the force stays together) or varying
// (processes split), flags collective constructs reachable under a
// varying condition (FV001), and proves runtime faults: a divisor that
// is constant zero or provably reaches zero over an enclosing constant-
// bounds loop, a constant subscript outside the declared bounds, SQRT
// of a negative constant, MOD by zero, a zero loop step.  A provable
// fault under a varying condition is FV002 (a strict subset of
// processes aborts while the peers block at the next collective); on
// the uniform path it is FV003 (every process faults).
//
// Calls are analyzed inline: parameter levels are bound to the argument
// levels at the call site, and by-reference result levels propagate
// back.  Recursion is cut by marking reference arguments varying.

import (
	"repro/internal/forcelang"
	"repro/internal/shm"
	"repro/internal/uniform"
)

// loopRange is one enclosing DO loop with constant bounds, the space
// the divisor-reachability proof quantifies over.
type loopRange struct {
	v            string // normalized loop variable
	lo, hi, step int64
	constOK      bool
}

type flow struct {
	a    *analysis
	unit *unitInfo

	env    map[string]uniform.Level // normalized private name -> level (zero value Uniform)
	consts map[string]int64         // normalized private INTEGER scalar -> known constant
	loops  []loopRange

	callPath map[string]bool // subs on the current inline path (cycle guard)
	inlined  bool            // analyzing a callee inline (suppresses FV102)
	depth    int             // enclosing construct depth (FV102 fires only at depth 0)
	mute     int             // >0: fixpoint iteration, do not emit diagnostics
}

// flowUnit analyzes one unit.  paramLev is nil for the main program and
// for standalone subroutine analysis (parameters assumed uniform).
func (a *analysis) flowUnit(u *unitInfo, paramLev map[string]uniform.Level) {
	f := &flow{
		a:        a,
		unit:     u,
		env:      map[string]uniform.Level{},
		consts:   map[string]int64{},
		callPath: map[string]bool{},
	}
	for p, lv := range paramLev {
		f.env[p] = lv
	}
	f.stmts(u.body, uniform.Uniform)
}

func (f *flow) report(code string, sev Severity, line int, format string, args ...interface{}) {
	if f.mute > 0 {
		return
	}
	f.a.report(code, sev, line, format, args...)
}

// decl resolves a name in the unit's scope.
func (f *flow) decl(name string) (forcelang.Decl, bool) {
	return f.unit.scope.Lookup(name)
}

// isMe reports whether the declaration is the unit's implicit ident
// variable: slot 0 of the unit's private scalars.
func isMe(d forcelang.Decl) bool {
	return d.Class == shm.Private && len(d.Dims) == 0 && d.Slot == 0
}

// refLevel computes the lattice point of reading r.  Shared and async
// reads are uniform by convention — the synchronized-program reading
// the convergence idiom (DO WHILE over a barrier-maintained flag)
// depends on; the race and protocol passes own the cases where that
// convention is violated.
func (f *flow) refLevel(r *forcelang.Ref) uniform.Level {
	d, ok := f.decl(r.Name)
	if !ok {
		return uniform.Varying
	}
	lv := uniform.Uniform
	switch {
	case isMe(d):
		lv = uniform.Varying
	case d.Class == shm.Private:
		lv = f.env[norm(r.Name)]
	}
	// An element read through a varying subscript differs across
	// processes even when every element is uniform.
	for _, s := range r.Subs {
		lv = lv.Join(f.exprLevel(s))
	}
	return lv
}

func (f *flow) exprLevel(e forcelang.Expr) uniform.Level {
	switch t := e.(type) {
	case *forcelang.Ref:
		return f.refLevel(t)
	case *forcelang.Un:
		return f.exprLevel(t.X)
	case *forcelang.Bin:
		return f.exprLevel(t.L).Join(f.exprLevel(t.R))
	case *forcelang.Intrinsic:
		lv := uniform.Uniform
		for _, arg := range t.Args {
			lv = lv.Join(f.exprLevel(arg))
		}
		return lv
	default:
		return uniform.Uniform // literals
	}
}

// constEval folds e to an INTEGER constant using literals and the
// known-constant private scalars.
func (f *flow) constEval(e forcelang.Expr) (int64, bool) {
	switch t := e.(type) {
	case *forcelang.IntLit:
		return t.Value, true
	case *forcelang.Ref:
		if len(t.Subs) == 0 {
			v, ok := f.consts[norm(t.Name)]
			return v, ok
		}
	case *forcelang.Un:
		if t.Neg {
			v, ok := f.constEval(t.X)
			return -v, ok
		}
	case *forcelang.Bin:
		l, lok := f.constEval(t.L)
		r, rok := f.constEval(t.R)
		if !lok || !rok {
			return 0, false
		}
		switch t.Op {
		case forcelang.OpAdd:
			return l + r, true
		case forcelang.OpSub:
			return l - r, true
		case forcelang.OpMul:
			return l * r, true
		case forcelang.OpDiv:
			if r != 0 {
				return l / r, true
			}
		}
	}
	return 0, false
}

// constReal folds e to a REAL constant (literals only; integer
// constants promote).
func (f *flow) constReal(e forcelang.Expr) (float64, bool) {
	switch t := e.(type) {
	case *forcelang.RealLit:
		return t.Value, true
	case *forcelang.IntLit:
		return float64(t.Value), true
	case *forcelang.Ref:
		if len(t.Subs) == 0 {
			if v, ok := f.consts[norm(t.Name)]; ok {
				if d, found := f.decl(t.Name); found && d.Type == forcelang.TInt {
					return float64(v), true
				}
			}
		}
	case *forcelang.Un:
		if t.Neg {
			v, ok := f.constReal(t.X)
			return -v, ok
		}
	case *forcelang.Bin:
		l, lok := f.constReal(t.L)
		r, rok := f.constReal(t.R)
		if !lok || !rok {
			return 0, false
		}
		switch t.Op {
		case forcelang.OpAdd:
			return l + r, true
		case forcelang.OpSub:
			return l - r, true
		case forcelang.OpMul:
			return l * r, true
		case forcelang.OpDiv:
			if r != 0 {
				return l / r, true
			}
		}
	}
	return 0, false
}

// typeOf resolves an expression's type, returning ok=false on any
// checker-level inconsistency (which Check already reported).
func (f *flow) typeOf(e forcelang.Expr) (forcelang.Type, bool) {
	t, err := forcelang.TypeOf(f.a.prog, f.unit.scope, e)
	return t, err == nil
}

// fault reports a provable runtime fault: FV002 under a varying
// context, FV003 on the uniform path.
func (f *flow) fault(line int, ctx uniform.Level, format string, args ...interface{}) {
	if ctx == uniform.Varying {
		f.report("FV002", Error, line, "provable fault under non-uniform condition: "+format, args...)
	} else {
		f.report("FV003", Warning, line, "provable fault: "+format, args...)
	}
}

// zeroReachable proves an integer expression reaches zero over some
// enclosing constant-bounds loop: e must decompose as c*v + rest with
// nonzero literal coefficient c and constant rest, and -rest/c must be
// a value the loop actually visits.  Returns the loop variable and the
// witnessing value.
func (f *flow) zeroReachable(e forcelang.Expr) (string, int64, bool) {
	for i := len(f.loops) - 1; i >= 0; i-- {
		lr := f.loops[i]
		if !lr.constOK {
			continue
		}
		sp := &uniform.Space{Outer: lr.v, IntScalar: func(n string) bool {
			_, ok := f.consts[norm(n)]
			return ok
		}}
		ci, _, ok := sp.Coef(e)
		if !ok || ci == 0 {
			continue
		}
		// rest = e with the loop variable at zero.
		saved, had := f.consts[lr.v]
		f.consts[lr.v] = 0
		rest, rok := f.constEval(e)
		if had {
			f.consts[lr.v] = saved
		} else {
			delete(f.consts, lr.v)
		}
		if !rok || (-rest)%ci != 0 {
			continue
		}
		v := -rest / ci
		if lr.step > 0 {
			if v < lr.lo || v > lr.hi || (v-lr.lo)%lr.step != 0 {
				continue
			}
		} else {
			if v > lr.lo || v < lr.hi || (lr.lo-v)%(-lr.step) != 0 {
				continue
			}
		}
		return lr.v, v, true
	}
	return "", 0, false
}

// divisorFault proves an integer divisor is (or reaches) zero.
func (f *flow) divisorFault(div forcelang.Expr, line int, ctx uniform.Level, what string) {
	if v, ok := f.constEval(div); ok {
		if v == 0 {
			f.fault(line, ctx, "%s", what)
		}
		return
	}
	if lv, val, ok := f.zeroReachable(div); ok {
		f.fault(line, ctx, "%s when %s = %d", what, lv, val)
	}
}

// faultsExpr walks e proving runtime faults: integer division and MOD
// by a (reachably) zero divisor, SQRT of a negative constant, constant
// subscripts outside the declared bounds.
func (f *flow) faultsExpr(e forcelang.Expr, ctx uniform.Level) {
	switch t := e.(type) {
	case *forcelang.Ref:
		f.faultsRef(t, ctx)
	case *forcelang.Un:
		f.faultsExpr(t.X, ctx)
	case *forcelang.Bin:
		f.faultsExpr(t.L, ctx)
		f.faultsExpr(t.R, ctx)
		if t.Op == forcelang.OpDiv {
			lt, lok := f.typeOf(t.L)
			rt, rok := f.typeOf(t.R)
			if lok && rok && lt == forcelang.TInt && rt == forcelang.TInt {
				f.divisorFault(t.R, t.Pos(), ctx, "integer division by zero")
			}
		}
	case *forcelang.Intrinsic:
		for _, arg := range t.Args {
			f.faultsExpr(arg, ctx)
		}
		switch t.Name {
		case "MOD":
			if len(t.Args) == 2 {
				at, aok := f.typeOf(t.Args[1])
				if aok && at == forcelang.TInt {
					f.divisorFault(t.Args[1], t.Pos(), ctx, "MOD by zero")
				} else if v, ok := f.constReal(t.Args[1]); ok && v == 0 {
					f.fault(t.Pos(), ctx, "MOD by zero")
				}
			}
		case "SQRT":
			if len(t.Args) == 1 {
				if v, ok := f.constReal(t.Args[0]); ok && v < 0 {
					f.fault(t.Pos(), ctx, "SQRT of negative value %g", v)
				}
			}
		}
	}
}

// faultsRef checks constant subscripts against the declared bounds (and
// recurses into the subscript expressions).
func (f *flow) faultsRef(r *forcelang.Ref, ctx uniform.Level) {
	for _, s := range r.Subs {
		f.faultsExpr(s, ctx)
	}
	d, ok := f.decl(r.Name)
	if !ok || len(r.Subs) == 0 || len(d.Dims) != len(r.Subs) {
		return
	}
	for i, s := range r.Subs {
		if v, ok := f.constEval(s); ok && (v < 1 || v > int64(d.Dims[i])) {
			f.fault(r.Pos(), ctx, "subscript %d of %s out of range: %d not in [1,%d]", i+1, norm(r.Name), v, d.Dims[i])
		}
	}
}

// faultsAsyncSub checks an async array element designator.
func (f *flow) faultsAsyncSub(varName string, sub forcelang.Expr, line int, ctx uniform.Level) {
	if sub == nil {
		return
	}
	f.faultsExpr(sub, ctx)
	d, ok := f.decl(varName)
	if !ok || len(d.Dims) != 1 {
		return
	}
	if v, ok := f.constEval(sub); ok && (v < 1 || v > int64(d.Dims[0])) {
		f.fault(line, ctx, "subscript 1 of %s out of range: %d not in [1,%d]", norm(varName), v, d.Dims[0])
	}
}

// setPrivate records an assignment's effect on the lattice and
// constant environments.
func (f *flow) setPrivate(target *forcelang.Ref, expr forcelang.Expr, lv uniform.Level) {
	d, ok := f.decl(target.Name)
	if !ok || d.Class != shm.Private {
		return
	}
	key := norm(target.Name)
	if len(target.Subs) == 0 {
		f.env[key] = lv
		if v, cok := f.constEval(expr); cok && d.Type == forcelang.TInt {
			f.consts[key] = v
		} else {
			delete(f.consts, key)
		}
		return
	}
	// Array element: weak update — join subscript levels too, a
	// varying subscript leaves different elements per process.
	for _, s := range target.Subs {
		lv = lv.Join(f.exprLevel(s))
	}
	f.env[key] = f.env[key].Join(lv)
}

// writtenNames collects every name a statement list may write:
// assignment targets, loop variables, Consume/Copy targets, Askfor task
// variables, and (conservatively) every Call argument.
func writtenNames(list []forcelang.Stmt, out map[string]bool) {
	for _, st := range list {
		switch t := st.(type) {
		case *forcelang.Assign:
			out[norm(t.Target.Name)] = true
		case *forcelang.If:
			writtenNames(t.Then, out)
			writtenNames(t.Else, out)
		case *forcelang.SeqDo:
			out[norm(t.Var)] = true
			writtenNames(t.Body, out)
		case *forcelang.WhileDo:
			writtenNames(t.Body, out)
		case *forcelang.ParDo:
			out[norm(t.Var)] = true
			if t.Inner != nil {
				out[norm(t.Inner.Var)] = true
			}
			writtenNames(t.Body, out)
		case *forcelang.BarrierStmt:
			writtenNames(t.Section, out)
		case *forcelang.CriticalStmt:
			writtenNames(t.Body, out)
		case *forcelang.PcaseStmt:
			for _, b := range t.Blocks {
				writtenNames(b.Body, out)
			}
		case *forcelang.AskforStmt:
			out[norm(t.Var)] = true
			writtenNames(t.Body, out)
		case *forcelang.ConsumeStmt:
			out[norm(t.Target.Name)] = true
		case *forcelang.CopyStmt:
			out[norm(t.Target.Name)] = true
		case *forcelang.CallStmt:
			for i := range t.Args {
				out[norm(t.Args[i].Name)] = true
			}
		}
	}
}

// killWritten drops constants that a loop body may overwrite, so
// in-body constant facts come only from the current iteration's own
// straight-line assignments.
func (f *flow) killWritten(list []forcelang.Stmt) {
	w := map[string]bool{}
	writtenNames(list, w)
	for name := range w {
		delete(f.consts, name)
	}
}

func cloneLevels(m map[string]uniform.Level) map[string]uniform.Level {
	out := make(map[string]uniform.Level, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneConsts(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// joinInto merges b into a pointwise (missing keys are Uniform).
func joinInto(a, b map[string]uniform.Level) {
	for k, v := range b {
		a[k] = a[k].Join(v)
	}
}

// intersectConsts keeps only facts present and equal in both.
func intersectConsts(a, b map[string]int64) {
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			delete(a, k)
		}
	}
}

func levelsEqual(a, b map[string]uniform.Level) bool {
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	for k, v := range b {
		if a[k] != v {
			return false
		}
	}
	return true
}

// fixpoint iterates body until the lattice environment stabilizes
// (diagnostics muted), then runs one final reporting pass on the
// stable environment.
func (f *flow) fixpoint(body []forcelang.Stmt, ctx uniform.Level) {
	f.killWritten(body)
	f.mute++
	for i := 0; i < 10; i++ {
		before := cloneLevels(f.env)
		f.killWritten(body)
		f.stmts(body, ctx)
		joinInto(f.env, before)
		if levelsEqual(before, f.env) {
			break
		}
	}
	f.mute--
	f.killWritten(body)
	f.stmts(body, ctx)
}

func (f *flow) stmts(list []forcelang.Stmt, ctx uniform.Level) {
	for _, st := range list {
		f.stmt(st, ctx)
	}
}

// loopBounds evaluates a loop's constant range (step nil means 1).
func (f *flow) loopBounds(v string, from, to, step forcelang.Expr) loopRange {
	lr := loopRange{v: norm(v), step: 1}
	lo, lok := f.constEval(from)
	hi, hok := f.constEval(to)
	sok := true
	if step != nil {
		lr.step, sok = f.constEval(step)
	}
	lr.lo, lr.hi = lo, hi
	lr.constOK = lok && hok && sok && lr.step != 0
	return lr
}

func (f *flow) stmt(st forcelang.Stmt, ctx uniform.Level) {
	switch t := st.(type) {
	case *forcelang.Assign:
		f.faultsExpr(t.Expr, ctx)
		f.faultsRef(&t.Target, ctx)
		lv := f.exprLevel(t.Expr).Join(ctx)
		f.checkReplicatedStore(t, ctx)
		f.setPrivate(&t.Target, t.Expr, lv)

	case *forcelang.If:
		f.faultsExpr(t.Cond, ctx)
		cl := f.exprLevel(t.Cond).Join(ctx)
		envT, constT := cloneLevels(f.env), cloneConsts(f.consts)
		f.stmts(t.Then, cl)
		envT, f.env = f.env, envT
		constT, f.consts = f.consts, constT
		f.stmts(t.Else, cl)
		joinInto(f.env, envT)
		intersectConsts(f.consts, constT)

	case *forcelang.SeqDo:
		f.faultsExpr(t.From, ctx)
		f.faultsExpr(t.To, ctx)
		blv := f.exprLevel(t.From).Join(f.exprLevel(t.To))
		if t.Step != nil {
			f.faultsExpr(t.Step, ctx)
			blv = blv.Join(f.exprLevel(t.Step))
			if v, ok := f.constEval(t.Step); ok && v == 0 {
				f.fault(t.Pos(), ctx, "loop step is zero")
			}
		}
		lr := f.loopBounds(t.Var, t.From, t.To, t.Step)
		pre := cloneLevels(f.env)
		preConsts := cloneConsts(f.consts)
		f.env[norm(t.Var)] = blv.Join(ctx)
		delete(f.consts, norm(t.Var))
		f.loops = append(f.loops, lr)
		f.fixpoint(t.Body, ctx.Join(blv))
		f.loops = f.loops[:len(f.loops)-1]
		joinInto(f.env, pre)
		intersectConsts(f.consts, preConsts)

	case *forcelang.WhileDo:
		pre := cloneLevels(f.env)
		preConsts := cloneConsts(f.consts)
		f.faultsExpr(t.Cond, ctx)
		// The body context includes the condition's level; recompute
		// it at the fixpoint since body writes can raise it.
		f.mute++
		for i := 0; i < 10; i++ {
			before := cloneLevels(f.env)
			f.killWritten(t.Body)
			f.stmts(t.Body, ctx.Join(f.exprLevel(t.Cond)))
			joinInto(f.env, before)
			if levelsEqual(before, f.env) {
				break
			}
		}
		f.mute--
		f.killWritten(t.Body)
		f.stmts(t.Body, ctx.Join(f.exprLevel(t.Cond)))
		joinInto(f.env, pre)
		intersectConsts(f.consts, preConsts)

	case *forcelang.ParDo:
		if ctx == uniform.Varying {
			f.report("FV001", Error, t.Pos(), "collective %s DO reachable under non-uniform condition", t.Sched)
		}
		f.faultsExpr(t.From, ctx)
		f.faultsExpr(t.To, ctx)
		if t.Step != nil {
			f.faultsExpr(t.Step, ctx)
			if v, ok := f.constEval(t.Step); ok && v == 0 {
				f.fault(t.Pos(), ctx, "loop step is zero")
			}
		}
		outer := f.loopBounds(t.Var, t.From, t.To, t.Step)
		pre := cloneLevels(f.env)
		preConsts := cloneConsts(f.consts)
		f.env[norm(t.Var)] = uniform.Varying
		delete(f.consts, norm(t.Var))
		f.loops = append(f.loops, outer)
		if t.Inner != nil {
			f.faultsExpr(t.Inner.From, ctx)
			f.faultsExpr(t.Inner.To, ctx)
			if t.Inner.Step != nil {
				f.faultsExpr(t.Inner.Step, ctx)
				if v, ok := f.constEval(t.Inner.Step); ok && v == 0 {
					f.fault(t.Pos(), ctx, "loop step is zero")
				}
			}
			f.env[norm(t.Inner.Var)] = uniform.Varying
			delete(f.consts, norm(t.Inner.Var))
			f.loops = append(f.loops, f.loopBounds(t.Inner.Var, t.Inner.From, t.Inner.To, t.Inner.Step))
		}
		f.depth++
		f.fixpoint(t.Body, uniform.Varying)
		f.depth--
		if t.Inner != nil {
			f.loops = f.loops[:len(f.loops)-1]
		}
		f.loops = f.loops[:len(f.loops)-1]
		joinInto(f.env, pre)
		intersectConsts(f.consts, preConsts)
		// The loop variable's final value depends on the schedule.
		f.env[norm(t.Var)] = uniform.Varying

	case *forcelang.BarrierStmt:
		if ctx == uniform.Varying {
			f.report("FV001", Error, t.Pos(), "collective Barrier reachable under non-uniform condition")
		}
		// The section runs in exactly one process: its writes are
		// per-process facts, and a fault in it strikes one process
		// while the peers wait at the barrier.
		pre := cloneLevels(f.env)
		preConsts := cloneConsts(f.consts)
		f.depth++
		f.stmts(t.Section, uniform.Varying)
		f.depth--
		joinInto(f.env, pre)
		intersectConsts(f.consts, preConsts)

	case *forcelang.CriticalStmt:
		f.depth++
		f.stmts(t.Body, ctx)
		f.depth--

	case *forcelang.PcaseStmt:
		if ctx == uniform.Varying {
			f.report("FV001", Error, t.Pos(), "collective Pcase reachable under non-uniform condition")
		}
		pre := cloneLevels(f.env)
		preConsts := cloneConsts(f.consts)
		merged := cloneLevels(pre)
		for _, b := range t.Blocks {
			if b.Cond != nil {
				f.faultsExpr(b.Cond, ctx)
			}
			f.env = cloneLevels(pre)
			f.consts = cloneConsts(preConsts)
			f.depth++
			f.stmts(b.Body, uniform.Varying)
			f.depth--
			joinInto(merged, f.env)
		}
		f.env = merged
		f.consts = preConsts
		f.killWrittenBlocks(t.Blocks)

	case *forcelang.AskforStmt:
		if ctx == uniform.Varying {
			f.report("FV001", Error, t.Pos(), "collective Askfor reachable under non-uniform condition")
		}
		f.faultsExpr(t.Seed, ctx)
		pre := cloneLevels(f.env)
		preConsts := cloneConsts(f.consts)
		f.env[norm(t.Var)] = uniform.Varying
		delete(f.consts, norm(t.Var))
		f.depth++
		f.fixpoint(t.Body, uniform.Varying)
		f.depth--
		joinInto(f.env, pre)
		intersectConsts(f.consts, preConsts)
		f.env[norm(t.Var)] = uniform.Varying

	case *forcelang.PutStmt:
		f.faultsExpr(t.Expr, ctx)

	case *forcelang.ReduceStmt:
		if ctx == uniform.Varying {
			f.report("FV001", Error, t.Pos(), "collective %s reachable under non-uniform condition", t.Op)
		}
		f.faultsExpr(t.Expr, ctx)
		f.faultsRef(&t.Target, ctx)
		// Every process receives the combined value.
		if d, ok := f.decl(t.Target.Name); ok && d.Class == shm.Private {
			key := norm(t.Target.Name)
			if len(t.Target.Subs) == 0 {
				f.env[key] = uniform.Uniform.Join(ctx)
				delete(f.consts, key)
			} else {
				lv := uniform.Uniform.Join(ctx)
				for _, s := range t.Target.Subs {
					lv = lv.Join(f.exprLevel(s))
				}
				f.env[key] = f.env[key].Join(lv)
			}
		}

	case *forcelang.ProduceStmt:
		f.faultsAsyncSub(t.Var, t.Sub, t.Pos(), ctx)
		f.faultsExpr(t.Expr, ctx)

	case *forcelang.ConsumeStmt:
		f.faultsAsyncSub(t.Var, t.Sub, t.Pos(), ctx)
		f.faultsRef(&t.Target, ctx)
		f.consumeTarget(&t.Target)

	case *forcelang.CopyStmt:
		f.faultsAsyncSub(t.Var, t.Sub, t.Pos(), ctx)
		f.faultsRef(&t.Target, ctx)
		f.consumeTarget(&t.Target)

	case *forcelang.VoidStmt:
		f.faultsAsyncSub(t.Var, t.Sub, t.Pos(), ctx)

	case *forcelang.PrintStmt:
		for _, item := range t.Items {
			f.faultsExpr(item, ctx)
		}

	case *forcelang.CallStmt:
		f.call(t, ctx)
	}
}

// killWrittenBlocks drops constants Pcase blocks may overwrite.
func (f *flow) killWrittenBlocks(blocks []forcelang.PcaseBlock) {
	for _, b := range blocks {
		w := map[string]bool{}
		writtenNames(b.Body, w)
		for name := range w {
			delete(f.consts, name)
		}
	}
}

// consumeTarget marks a Consume/Copy destination varying: full/empty
// hand-offs deliver different values to different processes.
func (f *flow) consumeTarget(target *forcelang.Ref) {
	d, ok := f.decl(target.Name)
	if !ok || d.Class != shm.Private {
		return
	}
	key := norm(target.Name)
	if len(target.Subs) == 0 {
		f.env[key] = uniform.Varying
		delete(f.consts, key)
		return
	}
	f.env[key] = uniform.Varying
}

// call analyzes a call site: FV001 when the callee transitively
// contains a collective and the context is varying, then an inline
// walk of the callee with parameter levels bound to the arguments.
func (f *flow) call(t *forcelang.CallStmt, ctx uniform.Level) {
	for i := range t.Args {
		f.faultsRef(&t.Args[i], ctx)
	}
	key := norm(t.Name)
	u, ok := f.a.subs[key]
	if !ok {
		return
	}
	siteFlagged := false
	if ctx == uniform.Varying && f.a.hasCollective(t.Name, map[string]bool{}) {
		f.report("FV001", Error, t.Pos(), "collective construct in %s reachable under non-uniform condition (call site)", norm(t.Name))
		siteFlagged = true
	}
	if f.callPath[key] {
		// Recursion: assume every by-reference argument varies.
		for i := range t.Args {
			if d, found := f.decl(t.Args[i].Name); found && d.Class == shm.Private {
				f.env[norm(t.Args[i].Name)] = uniform.Varying
			}
			delete(f.consts, norm(t.Args[i].Name))
		}
		return
	}
	sub := f.a.prog.Sub(t.Name)
	if sub == nil || len(sub.Params) != len(t.Args) {
		return
	}
	cf := &flow{
		a:        f.a,
		unit:     u,
		env:      map[string]uniform.Level{},
		consts:   map[string]int64{},
		callPath: map[string]bool{},
		inlined:  true,
		mute:     f.mute,
	}
	if siteFlagged {
		// The call-site diagnostic already covers every collective in
		// the callee; walk it only for level propagation.
		cf.mute++
	}
	for k := range f.callPath {
		cf.callPath[k] = true
	}
	cf.callPath[key] = true
	for i, p := range sub.Params {
		cf.env[norm(p)] = f.refLevel(&t.Args[i])
	}
	cf.stmts(u.body, ctx)
	// Propagate by-reference results back to scalar arguments.
	for i, p := range sub.Params {
		if len(t.Args[i].Subs) > 0 {
			continue
		}
		d, found := f.decl(t.Args[i].Name)
		if !found {
			continue
		}
		akey := norm(t.Args[i].Name)
		delete(f.consts, akey)
		if d.Class == shm.Private {
			f.env[akey] = f.env[akey].Join(cf.env[norm(p)])
		}
	}
}

// checkReplicatedStore flags FV102: at force level of the main program
// (outside every construct, on the uniform path, not inside an inline
// call walk) every process executes the same assignment; a shared
// scalar target with a varying value or a read-modify-write is a
// replicated unsynchronized store.
func (f *flow) checkReplicatedStore(t *forcelang.Assign, ctx uniform.Level) {
	if f.unit.name != "" || f.inlined || f.depth > 0 || ctx == uniform.Varying {
		return
	}
	d, ok := f.decl(t.Target.Name)
	if !ok || !d.Class.IsShared() || d.Class == shm.Async || f.unit.isParam(t.Target.Name) {
		return
	}
	lv := f.exprLevel(t.Expr)
	if len(t.Target.Subs) == 0 {
		if uniform.RefersTo(t.Expr, t.Target.Name) {
			f.report("FV102", Warning, t.Pos(), "shared %s updated by every process at force level without synchronization (read-modify-write)", norm(t.Target.Name))
		} else if lv == uniform.Varying {
			f.report("FV102", Warning, t.Pos(), "shared %s stored by every process at force level with differing values", norm(t.Target.Name))
		}
		return
	}
	subsUniform := true
	for _, s := range t.Target.Subs {
		if f.exprLevel(s) == uniform.Varying {
			subsUniform = false
		}
	}
	if subsUniform && lv == uniform.Varying {
		f.report("FV102", Warning, t.Pos(), "every process stores a differing value into the same element of shared %s at force level", norm(t.Target.Name))
	}
}
