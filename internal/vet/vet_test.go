package vet

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/forcelang"
)

func analyzeSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	prog, err := forcelang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags, err := Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return diags
}

// codeLines renders diagnostics as "CODE@line" for compact golden
// comparison.
func codeLines(diags []Diagnostic) string {
	parts := make([]string, len(diags))
	for i, d := range diags {
		parts[i] = fmt.Sprintf("%s@%d", d.Code, d.Line)
	}
	return strings.Join(parts, " ")
}

// TestNonUniformCorpus pins the exact code and line forcevet reports for
// every program in the PR-4 non-uniform abort corpus: each one must be
// caught statically, at the faulting (or protocol-breaking) statement.
func TestNonUniformCorpus(t *testing.T) {
	want := map[string]string{
		"before-a-barrier":              "FV002@5",
		"inside-critical":               "FV002@7",
		"inside-doall-body":             "FV002@7",
		"peer-waits-in-askfor":          "FV002@5",
		"consume-never-produced":        "FV201@6 FV002@9",
		"reduction-missing-contributor": "FV002@6",
	}
	for _, p := range corpus.NonUniform {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			got := codeLines(analyzeSrc(t, p.Src))
			if got != want[p.Name] {
				t.Errorf("diagnostics = %q, want %q", got, want[p.Name])
			}
		})
	}
}

// TestRuntimeErrorCorpus pins the uniform-path fault warnings for the
// PR-4 uniform fault corpus.
func TestRuntimeErrorCorpus(t *testing.T) {
	want := map[string]string{
		"subscript":     "FV003@4",
		"subscript-2d":  "FV003@6",
		"div-zero":      "FV003@4",
		"sqrt-negative": "FV003@4",
		"mod-zero":      "FV003@4",
		"zero-step":     "FV003@4",
		"async-bounds":  "FV003@4",
	}
	for _, p := range corpus.RuntimeErrors {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			got := codeLines(analyzeSrc(t, p.Src))
			if got != want[p.Name] {
				t.Errorf("diagnostics = %q, want %q", got, want[p.Name])
			}
		})
	}
}

// TestCleanCorpus: the equivalence corpus, the chunk matrix and the
// fusion matrix are correct programs — forcevet must stay silent on
// every one (zero false positives).
func TestCleanCorpus(t *testing.T) {
	for _, fam := range []struct {
		name  string
		progs []corpus.Program
	}{{"equiv", corpus.Equiv}, {"chunk", corpus.Chunk}, {"fusion", corpus.Fusion}} {
		for _, p := range fam.progs {
			p := p
			t.Run(fam.name+"/"+p.Name, func(t *testing.T) {
				if diags := analyzeSrc(t, p.Src); len(diags) != 0 {
					t.Errorf("unexpected diagnostics:\n%s", renderAll(diags))
				}
			})
		}
	}
}

// TestCleanExamples: every .force source shipped in examples/ must be
// diagnostic-free.
func TestCleanExamples(t *testing.T) {
	paths, err := filepath.Glob("../../examples/*/*.force")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example sources found: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if diags := analyzeSrc(t, string(src)); len(diags) != 0 {
				t.Errorf("unexpected diagnostics:\n%s", renderAll(diags))
			}
		})
	}
}

func renderAll(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// --- FV001: collective consistency ------------------------------------

func TestFV001BarrierUnderVaryingBranch(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
End Declarations
IF (ME .EQ. 0) THEN
Barrier
End Barrier
END IF
Join
`)
	if got := codeLines(diags); got != "FV001@4" {
		t.Errorf("got %q, want FV001@4\n%s", got, renderAll(diags))
	}
	if diags[0].Sev != Error {
		t.Error("FV001 must be an error")
	}
	if !strings.Contains(diags[0].Message, "Barrier") {
		t.Errorf("message should name the construct: %s", diags[0].Message)
	}
}

func TestFV001ReductionUnderVaryingBranch(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Integer S
End Declarations
IF (ME .GT. 0) THEN
GSUM S = ME
END IF
Join
`)
	if got := codeLines(diags); got != "FV001@5" {
		t.Errorf("got %q, want FV001@5\n%s", got, renderAll(diags))
	}
	if !strings.Contains(diags[0].Message, "GSUM") {
		t.Errorf("message should name the operator: %s", diags[0].Message)
	}
}

func TestFV001DoallUnderVaryingWhile(t *testing.T) {
	// The varying condition flows through an assignment chain first.
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Real A(10)
Private Integer I, K
End Declarations
K = ME + 1
IF (K .GT. 1) THEN
Presched DO I = 1, 10
A(I) = 1.0
End Presched DO
END IF
Join
`)
	if got := codeLines(diags); got != "FV001@7" {
		t.Errorf("got %q, want FV001@7\n%s", got, renderAll(diags))
	}
}

func TestFV001ThroughCall(t *testing.T) {
	// The collective hides inside a subroutine; the call site under the
	// varying branch is flagged.
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Integer S
End Declarations
IF (ME .EQ. 0) THEN
Call SYNC()
END IF
Join
Forcesub SYNC()
End Declarations
Barrier
End Barrier
Endsub
`)
	if got := codeLines(diags); got != "FV001@5" {
		t.Errorf("got %q, want FV001@5\n%s", got, renderAll(diags))
	}
	if !strings.Contains(diags[0].Message, "call site") {
		t.Errorf("message should mention the call site: %s", diags[0].Message)
	}
}

func TestFV001VaryingFromConsume(t *testing.T) {
	// A consumed value is varying: each process may read a different
	// cell state, so a collective guarded by it is inconsistent.
	diags := analyzeSrc(t, `Force T of NP ident ME
Async Integer V
Private Integer I
End Declarations
Produce V = 1
Consume V into I
IF (I .EQ. 1) THEN
Barrier
End Barrier
END IF
Join
`)
	if got := codeLines(diags); got != "FV001@8" {
		t.Errorf("got %q, want FV001@8\n%s", got, renderAll(diags))
	}
}

func TestFV001UniformGuardIsClean(t *testing.T) {
	// A collective under a branch on uniform shared data is fine.
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Integer N
Shared Real A(10)
Private Integer I
End Declarations
Barrier
N = 5
End Barrier
IF (N .GT. 0) THEN
Presched DO I = 1, 10
A(I) = 1.0
End Presched DO
END IF
Join
`)
	if len(diags) != 0 {
		t.Errorf("uniform guard should be clean:\n%s", renderAll(diags))
	}
}

// --- FV002/FV003 details ----------------------------------------------

func TestFV002LoopRangeWitness(t *testing.T) {
	// The divisor hits zero at I = 7 within the loop's range.
	diags := analyzeSrc(t, `Force T of NP ident ME
Private Integer I, K
End Declarations
IF (ME .EQ. 0) THEN
DO I = 1, 10
K = 100 / (I - 7)
End DO
END IF
Join
`)
	if got := codeLines(diags); got != "FV002@6" {
		t.Errorf("got %q, want FV002@6\n%s", got, renderAll(diags))
	}
	if !strings.Contains(diags[0].Message, "I = 7") {
		t.Errorf("message should name the witness: %s", diags[0].Message)
	}
}

func TestFV002StrideMissesZero(t *testing.T) {
	// I runs 1,3,...,9: never 7±0 divisor zero? (I-7) = 0 at I=7 which
	// the stride does hit; (I-8) = 0 at I=8 which it does not.
	diags := analyzeSrc(t, `Force T of NP ident ME
Private Integer I, K
End Declarations
IF (ME .EQ. 0) THEN
DO I = 1, 9, 2
K = 100 / (I - 8)
End DO
END IF
Join
`)
	if len(diags) != 0 {
		t.Errorf("stride 2 never reaches I=8, should be clean:\n%s", renderAll(diags))
	}
}

func TestFV003RealDivisionNeverFaults(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
Private Real X
End Declarations
X = 1.0 / 0.0
Join
`)
	if len(diags) != 0 {
		t.Errorf("real division follows IEEE semantics, no fault:\n%s", renderAll(diags))
	}
}

// --- FV101: shared-memory races ---------------------------------------

func TestFV101SharedScalarInDoall(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Real S
Private Integer I
End Declarations
Presched DO I = 1, 10
S = S + 1.0
End Presched DO
Join
`)
	if got := codeLines(diags); got != "FV101@6" {
		t.Errorf("got %q, want FV101@6\n%s", got, renderAll(diags))
	}
	if diags[0].Sev != Warning {
		t.Error("FV101 is a warning")
	}
}

func TestFV101CriticalMakesItClean(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Real S
Private Integer I
End Declarations
Presched DO I = 1, 10
Critical L
S = S + 1.0
End Critical
End Presched DO
Join
`)
	if len(diags) != 0 {
		t.Errorf("single-critical access should be clean:\n%s", renderAll(diags))
	}
}

func TestFV101TwoDifferentCriticals(t *testing.T) {
	// Two different locks exclude nothing.
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Real S
Private Integer I
End Declarations
Presched DO I = 1, 10
IF (I .GT. 5) THEN
Critical L1
S = S + 1.0
End Critical
ELSE
Critical L2
S = S + 1.0
End Critical
END IF
End Presched DO
Join
`)
	if got := codeLines(diags); got != "FV101@8" {
		t.Errorf("got %q, want FV101@8\n%s", got, renderAll(diags))
	}
}

func TestFV101IntAccumulatorIsClean(t *testing.T) {
	// The chunk tier folds pure integer accumulators deterministically.
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Integer S
Private Integer I
End Declarations
Selfsched DO I = 1, 100
S = S + I
End Selfsched DO
Join
`)
	if len(diags) != 0 {
		t.Errorf("integer accumulator should be clean:\n%s", renderAll(diags))
	}
}

func TestFV101DisjointArrayIsClean(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Real A(11)
Private Integer I
End Declarations
Presched DO I = 1, 10
A(I + 1) = REAL(I)
End Presched DO
Join
`)
	if len(diags) != 0 {
		t.Errorf("A(I+1) is injective, should be clean:\n%s", renderAll(diags))
	}
}

func TestFV101OverlappingArrayForms(t *testing.T) {
	// A(I) and A(I+1) collide across iterations.
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Real A(11)
Private Integer I
End Declarations
Presched DO I = 1, 10
A(I + 1) = A(I) + 1.0
End Presched DO
Join
`)
	if got := codeLines(diags); got != "FV101@6" {
		t.Errorf("got %q, want FV101@6\n%s", got, renderAll(diags))
	}
}

func TestFV101AskforBody(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Real S
Private Integer W
End Declarations
Askfor W = 3
S = S + REAL(W)
End Askfor
Join
`)
	if got := codeLines(diags); got != "FV101@6" {
		t.Errorf("got %q, want FV101@6\n%s", got, renderAll(diags))
	}
}

func TestFV101PcaseCrossBlock(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Integer S
End Declarations
Pcase
Usect
S = 1
Usect
S = 2
End Pcase
Join
`)
	if got := codeLines(diags); got != "FV101@6" {
		t.Errorf("got %q, want FV101@6\n%s", got, renderAll(diags))
	}
}

// --- FV102: replicated force-level stores ------------------------------

func TestFV102VaryingStore(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Integer S
End Declarations
S = ME
Join
`)
	if got := codeLines(diags); got != "FV102@4" {
		t.Errorf("got %q, want FV102@4\n%s", got, renderAll(diags))
	}
}

func TestFV102ReadModifyWrite(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Integer S
End Declarations
S = S + 1
Join
`)
	if got := codeLines(diags); got != "FV102@4" {
		t.Errorf("got %q, want FV102@4\n%s", got, renderAll(diags))
	}
	if !strings.Contains(diags[0].Message, "read-modify-write") {
		t.Errorf("message should say read-modify-write: %s", diags[0].Message)
	}
}

func TestFV102UniformInitIsClean(t *testing.T) {
	// Idempotent replicated initialization is the dialect's idiom.
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Integer S
Shared Real A(4)
End Declarations
S = 0
A(1) = 0.0
Join
`)
	if len(diags) != 0 {
		t.Errorf("uniform stores are clean:\n%s", renderAll(diags))
	}
}

func TestFV102PerProcessElementIsClean(t *testing.T) {
	// A(ME+1): each process owns its element.
	diags := analyzeSrc(t, `Force T of NP ident ME
Shared Real A(64)
End Declarations
A(ME + 1) = REAL(ME)
Join
`)
	if len(diags) != 0 {
		t.Errorf("per-process element stores are clean:\n%s", renderAll(diags))
	}
}

// --- FV201/FV202: asyncvar protocol ------------------------------------

func TestFV201CopyNeverProduced(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
Async Real V
Private Real X
End Declarations
Copy V into X
Join
`)
	if got := codeLines(diags); got != "FV201@5" {
		t.Errorf("got %q, want FV201@5\n%s", got, renderAll(diags))
	}
	if !strings.Contains(diags[0].Message, "Copy") {
		t.Errorf("message should name the operation: %s", diags[0].Message)
	}
}

func TestFV201ProducedInSubIsClean(t *testing.T) {
	// The Produce lives in a subroutine: whole-program analysis finds it.
	diags := analyzeSrc(t, `Force T of NP ident ME
Async Integer V
Private Integer I
End Declarations
Call FILL()
Consume V into I
Join
Forcesub FILL()
End Declarations
Barrier
Produce V = 7
End Barrier
Endsub
`)
	if len(diags) != 0 {
		t.Errorf("V is produced in FILL, should be clean:\n%s", renderAll(diags))
	}
}

func TestFV202DoubleProduce(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
Async Integer V
End Declarations
IF (ME .EQ. 0) THEN
Produce V = 1
Produce V = 2
END IF
Join
`)
	if got := codeLines(diags); got != "FV202@6" {
		t.Errorf("got %q, want FV202@6\n%s", got, renderAll(diags))
	}
}

func TestFV202VoidBetweenIsClean(t *testing.T) {
	diags := analyzeSrc(t, `Force T of NP ident ME
Async Integer V
Private Integer I
End Declarations
IF (ME .EQ. 0) THEN
Produce V = 1
Consume V into I
Produce V = 2
Void V
END IF
Join
`)
	if len(diags) != 0 {
		t.Errorf("consume between produces, should be clean:\n%s", renderAll(diags))
	}
}

func TestFV202DistinctElements(t *testing.T) {
	// Different canonical subscripts are different cells.
	diags := analyzeSrc(t, `Force T of NP ident ME
Async Integer C(4)
End Declarations
IF (ME .EQ. 0) THEN
Produce C(1) = 1
Produce C(2) = 2
END IF
Join
`)
	if len(diags) != 0 {
		t.Errorf("distinct elements, should be clean:\n%s", renderAll(diags))
	}
}

// --- Explain ------------------------------------------------------------

func TestExplainCoversEveryReportedCode(t *testing.T) {
	for _, code := range []string{"FV001", "FV002", "FV003", "FV101", "FV102", "FV201", "FV202"} {
		text := Explain(code)
		if text == "" {
			t.Errorf("no explanation for %s", code)
			continue
		}
		if !strings.HasPrefix(text, code+":") {
			t.Errorf("%s explanation should lead with its code", code)
		}
	}
	if Explain("fv001") == "" {
		t.Error("codes should match case-insensitively")
	}
	if Explain("FV999") != "" {
		t.Error("unknown codes return empty")
	}
	if len(Codes()) != 7 {
		t.Errorf("Codes() = %v, want 7 entries", Codes())
	}
}

// TestDiagnosticString pins the canonical rendering integration layers
// rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Code: "FV001", Sev: Error, Line: 5, Message: "collective Barrier reachable under non-uniform condition"}
	want := "line 5: FV001 error: collective Barrier reachable under non-uniform condition"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}
