package vet

import (
	"sort"
	"strings"
)

// explanations holds the long-form rule text behind each diagnostic
// code, printed by `forcec -explain FVnnn` and `forcevet -explain`.
var explanations = map[string]string{
	"FV001": `FV001: collective construct reachable under a non-uniform condition (error)

Barrier, Presched/Selfsched DO, Pcase, Askfor and the global reduction
statements (GSUM, GPROD, GMAX, GMIN, GAND, GOR) are collective: every
process of the force must arrive at the construct together.  The Force
compiles to SPMD code, so a collective nested under an IF whose
condition can differ between processes — one that reads the process
identifier (ME), a consumed async value, or anything derived from them
— is reached by only a subset of the force.  The peers wait at the
collective for processes that will never arrive, and without the
runtime's poison protocol the whole force deadlocks.

forcevet tracks a uniform/varying level for every private scalar (the
same two-point lattice the chunk compiler uses): ME is varying, shared
and async reads are uniform, and assignments propagate levels through
expressions.  A collective statement — or a Call whose callee
transitively contains one — inside a branch or loop whose controlling
expression is varying is reported as FV001.

Fix: hoist the collective out of the varying branch, or make the
condition uniform (derive it from shared data every process reads
identically).  To run something in one process only, use a Barrier
section: every process arrives, exactly one executes the section.`,

	"FV002": `FV002: provable fault under a non-uniform condition (error)

The statement provably faults at run time — integer division by zero,
MOD by zero, SQRT of a negative value, an out-of-range subscript, a
zero DO step — but only in a strict subset of processes, because the
faulting path is guarded by (or indexed with) a varying value such as
ME.  The faulting process aborts; its peers head for the next
collective and block until the runtime's abort protocol (poisoned
barrier/reduction cells, PR 4) wakes them.  The program can never
complete normally, so this is an error even though the runtime contains
it.

forcevet proves faults with constant folding plus loop-range analysis:
a divisor that is zero for some value of an enclosing DO variable
within its constant bounds and stride is "reachable zero".  The
diagnostic names the witness (e.g. "when I = 7").

Fix: remove the fault (guard the divisor, fix the subscript) — the
non-uniform guard is not the bug, the fault is.`,

	"FV003": `FV003: provable fault on the uniform path (warning)

The statement provably faults at run time — integer division by zero,
MOD by zero, SQRT of a negative value, an out-of-range subscript, a
zero DO step — and the path to it is uniform, so every process faults
together.  The runtime reports it cleanly (same fault, every process),
which is why this is a warning rather than an error: the behavior is
deterministic, just wrong.

Note that only INTEGER division faults; REAL division follows IEEE
semantics (infinities and NaNs) and is never reported.

Fix: correct the constant or the loop bounds feeding the fault.`,

	"FV101": `FV101: unsynchronized shared write in a parallel body (warning)

A shared scalar or array is written inside a DOALL body, an Askfor task
body, or across Pcase blocks, where distinct processes execute
concurrently, and none of the proofs forcevet (and the chunk compiler)
accepts applies:

  - every access to the name sits inside one Critical section with a
    single name (two different locks exclude nothing);
  - the scalar is a pure integer accumulator (every write has the
    shape S = S +/- e, and S is never read except in those writes);
  - the array subscripts use one affine form in the loop indices that
    is injective, so iterations touch disjoint elements;
  - the name is write-only in the body and every stored value is the
    same in every process and iteration (idempotent stores).

Anything else is a data race: the result depends on interleaving.

By-reference subroutine parameters are not tracked (the caller owns
their synchronization), and a shared variable passed to a Call inside
the body is conservatively treated as read and written there.

Fix: wrap the accesses in a Critical section with one name, convert
the pattern to a global reduction (GSUM et al.), or restructure the
subscripts so each iteration owns its elements.`,

	"FV102": `FV102: replicated unsynchronized store at force level (warning)

At force level — outside any parallel construct — every process of the
force executes every statement.  A plain assignment to a shared scalar
(or to one fixed element of a shared array) is therefore executed by
all processes at once.  If the stored value can differ between
processes (it is varying), the final contents depend on which process
writes last: a race the paper's model makes easy to write by accident.
A read-modify-write of a shared scalar (e.g. N = N + 1 at force level)
is flagged even for uniform values, since the interleaved
read/increment/store sequences lose updates.

Uniform stores of identical values are permitted — they are the
dialect's idiomatic way to initialize shared data — as are stores
indexed by varying subscripts such as A(ME+1), which give each process
its own element.

Fix: initialize shared data in a Barrier section (one process runs
it), use a global reduction, or index the array by process.`,

	"FV201": `FV201: Consume or Copy of an async variable that is never Produced (error)

Async variables are HEP-style full/empty cells: Consume blocks until
the cell is full.  No statement anywhere in the program Produces this
variable, so the cell can never become full and the consuming process
blocks forever; only the runtime's hang detector or an external
deadline frees it.  Because the checker rejects Async subroutine
parameters, "never Produced" is decidable by a whole-program walk.

Fix: add the Produce (typically in a barrier section or a designated
block), or remove the dead Consume.`,

	"FV202": `FV202: second Produce without an intervening Consume or Void (warning)

Produce blocks while the cell is full.  Two Produces of the same cell
(same variable, same canonical subscript form) on one straight-line
statement path with no Consume or Void between them means the second
Produce blocks on its own full cell — unless some other process
Consumes in the window, which cannot happen on a private path and is a
fragile protocol even on a shared one.

The analysis is deliberately local: it only examines straight-line
runs and forgets its state at any compound statement (loop, branch,
barrier, ...), so cross-iteration pairs where another process may
legitimately interleave are not reported.

Fix: Consume or Void the cell before refilling it, or Produce a
different element.`,
}

// Explain returns the long-form explanation for a diagnostic code, or
// "" if the code is unknown.  Codes are matched case-insensitively.
func Explain(code string) string {
	return explanations[strings.ToUpper(strings.TrimSpace(code))]
}

// Codes lists every diagnostic code with an explanation, sorted.
func Codes() []string {
	out := make([]string, 0, len(explanations))
	for c := range explanations {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
