// Package vet is forcevet: a whole-program static analyzer over the
// checked forcelang AST.  It emits structured diagnostics for the three
// failure families the runtime's fault-containment layer (PR 4) catches
// dynamically, so a broken program can be rejected at submit time
// instead of occupying a force:
//
//	FV001  collective consistency: a Barrier, DOALL, Pcase, Askfor or
//	       global reduction reachable under a non-uniform condition
//	       (one that depends on ME, a consumed value, or another
//	       varying input), including through Call — only some
//	       processes would arrive, deadlocking the force without the
//	       poison protocol.
//	FV002  provable fault under a non-uniform condition: a statement
//	       that provably faults (division by zero, bad subscript, ...)
//	       in a strict subset of processes; the peers head for a
//	       collective and block until the abort protocol wakes them.
//	FV003  provable fault on the uniform path: every process faults.
//	FV101  shared-memory race: a shared scalar or array written inside
//	       a DOALL/Pcase/Askfor body outside Critical and not provably
//	       safe (affine-injective disjoint subscripts, pure integer
//	       accumulator, or idempotent uniform stores).
//	FV102  replicated unsynchronized store: every process writes a
//	       shared scalar (or one element) with differing values at
//	       force level, outside any construct.
//	FV201  asyncvar protocol: Consume/Copy of a variable no statement
//	       ever Produces — the consumer blocks forever.
//	FV202  asyncvar protocol: a second Produce of the same variable on
//	       a straight-line path with no intervening Consume or Void —
//	       the producer blocks on its own full cell.
//
// The uniform/varying lattice and the affine-subscript disjointness
// proofs are shared with the chunk compiler through internal/uniform:
// one notion of "uniform" serves both the optimizer and the analyzer.
//
// Analyze requires a program that already passed forcelang.Check (Parse
// runs it); the checker's own guarantees (no collectives inside
// single-stream contexts, declaration and type consistency) are assumed
// and not re-reported.
package vet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/forcelang"
)

// Severity is the weight of a diagnostic.
type Severity int

const (
	// Warning marks a diagnostic that does not fail the build by
	// default (-vet=err promotes it).
	Warning Severity = iota
	// Error marks a definite protocol violation: the program cannot
	// run to completion on the flagged path.
	Error
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Code    string // "FV001" ...
	Sev     Severity
	Line    int
	Message string
}

// String renders the diagnostic in the canonical single-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("line %d: %s %s: %s", d.Line, d.Code, d.Sev, d.Message)
}

// analysis carries the shared per-program state of all passes.
type analysis struct {
	prog       *forcelang.Program
	main       *unitInfo
	subs       map[string]*unitInfo
	collective map[string]bool // sub name -> transitively contains a collective construct
	diags      []Diagnostic
}

// unitInfo is one compilation unit (the main program or a subroutine)
// with its resolved scope.
type unitInfo struct {
	name   string // "" for the main program
	scope  *forcelang.Scope
	body   []forcelang.Stmt
	params map[string]bool // normalized parameter names; nil for main
	sub    *forcelang.Subroutine
}

func norm(s string) string { return strings.ToUpper(s) }

// isParam reports whether name is a by-reference parameter of the unit.
func (u *unitInfo) isParam(name string) bool { return u.params[norm(name)] }

// Analyze runs every pass over a checked program and returns the
// deduplicated diagnostics sorted by line, then code.
func Analyze(prog *forcelang.Program) ([]Diagnostic, error) {
	global, err := forcelang.GlobalScope(prog)
	if err != nil {
		return nil, err
	}
	a := &analysis{
		prog:       prog,
		main:       &unitInfo{scope: global, body: prog.Body},
		subs:       map[string]*unitInfo{},
		collective: map[string]bool{},
	}
	for _, sub := range prog.Subs {
		scope, err := forcelang.SubScope(prog, sub)
		if err != nil {
			return nil, err
		}
		params := map[string]bool{}
		for _, p := range sub.Params {
			params[norm(p)] = true
		}
		a.subs[norm(sub.Name)] = &unitInfo{name: sub.Name, scope: scope, body: sub.Body, params: params, sub: sub}
	}
	for name := range a.subs {
		a.hasCollective(name, map[string]bool{})
	}

	// Flow pass: uniformity dataflow, collective consistency (FV001),
	// provable faults (FV002/FV003), replicated stores (FV102).  The
	// main program is the entry point; calls are analyzed inline with
	// argument levels bound to parameters.  Every subroutine is also
	// analyzed standalone (parameters uniform) so unit-local issues
	// surface even on call paths the inline walk does not reach.
	a.flowUnit(a.main, nil)
	for _, u := range a.subs {
		a.flowUnit(u, nil)
	}

	// Race pass: FV101 over every parallel construct body.
	a.racePass(a.main)
	for _, u := range a.subs {
		a.racePass(u)
	}

	// Asyncvar protocol pass: FV201/FV202.
	a.asyncPass()

	return finish(a.diags), nil
}

// report appends a diagnostic.
func (a *analysis) report(code string, sev Severity, line int, format string, args ...interface{}) {
	a.diags = append(a.diags, Diagnostic{Code: code, Sev: sev, Line: line, Message: fmt.Sprintf(format, args...)})
}

// finish deduplicates (identical code+line+message pairs arise from
// fixpoint re-walks and repeated call sites), drops FV003 at any line
// that also carries FV002 (the non-uniform verdict subsumes the uniform
// one for the same fault), and sorts by line then code.
func finish(diags []Diagnostic) []Diagnostic {
	fv002 := map[int]bool{}
	for _, d := range diags {
		if d.Code == "FV002" {
			fv002[d.Line] = true
		}
	}
	seen := map[string]bool{}
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if d.Code == "FV003" && fv002[d.Line] {
			continue
		}
		key := fmt.Sprintf("%s|%d|%s", d.Code, d.Line, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// hasCollective reports whether the named subroutine transitively
// contains a collective construct (Barrier, DOALL, Pcase, Askfor,
// global reduction), memoized; path guards call cycles.
func (a *analysis) hasCollective(name string, path map[string]bool) bool {
	key := norm(name)
	if v, ok := a.collective[key]; ok {
		return v
	}
	if path[key] {
		return false // cycle: this path adds nothing new
	}
	u, ok := a.subs[key]
	if !ok {
		return false
	}
	path[key] = true
	v := a.stmtsHaveCollective(u.body, path)
	delete(path, key)
	a.collective[key] = v
	return v
}

func (a *analysis) stmtsHaveCollective(list []forcelang.Stmt, path map[string]bool) bool {
	for _, st := range list {
		switch t := st.(type) {
		case *forcelang.BarrierStmt, *forcelang.ParDo, *forcelang.PcaseStmt,
			*forcelang.AskforStmt, *forcelang.ReduceStmt:
			return true
		case *forcelang.If:
			if a.stmtsHaveCollective(t.Then, path) || a.stmtsHaveCollective(t.Else, path) {
				return true
			}
		case *forcelang.SeqDo:
			if a.stmtsHaveCollective(t.Body, path) {
				return true
			}
		case *forcelang.WhileDo:
			if a.stmtsHaveCollective(t.Body, path) {
				return true
			}
		case *forcelang.CriticalStmt:
			if a.stmtsHaveCollective(t.Body, path) {
				return true
			}
		case *forcelang.CallStmt:
			if a.hasCollective(t.Name, path) {
				return true
			}
		}
	}
	return false
}
